package v6class

// One benchmark per table and figure of the paper's evaluation section,
// plus ablation benches for the design choices called out in DESIGN.md.
// Each benchmark regenerates its experiment end to end from the synthetic
// world; b.N iterations re-run the analysis (the lab caches generated days,
// so steady-state iterations measure classification, not data synthesis).

import (
	"math/rand"
	"sort"
	"testing"

	"v6class/experiments"
	"v6class/internal/ipaddr"
	"v6class/internal/spatial"
	"v6class/internal/temporal"
	"v6class/internal/trie"
	"v6class/synth"
)

// benchLab is shared across benchmarks; experiments only read from it.
var benchLab = experiments.NewLab(synth.Config{Seed: 7, Scale: 0.05})

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1(benchLab)
		if len(r.Daily) != 3 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table2(benchLab)
		if len(r.AddrDaily) != 3 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table3(benchLab)
		if len(r.Rows) != 12 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure2(benchLab)
		if len(r.University.Bits) == 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure3(benchLab)
		if len(r.Curves) != 5 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure4(benchLab)
		if len(r.Days) != 21 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFigure5a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure5a(benchLab)
		if r.ASNs == 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFigure5b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure5b(benchLab)
		if r.Prefixes == 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFigure5cToH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure5Plots(benchLab)
		if len(r.All.Bits) == 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkRouterDiscovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RouterDiscovery(benchLab)
		if r.StableRouters == 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkPTRHarvest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.PTRHarvest(benchLab)
		if r.HarvestNames == 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkEUI64Churn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.EUI64Churn(benchLab)
		if r.NotStableEUI64 == 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkLongestStablePrefixes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.LongestStablePrefixes(benchLab)
		if len(r.Prefixes) == 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkSignatureCensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.SignatureCensus(benchLab)
		if r.Prefixes == 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkHighlights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Highlights(benchLab)
		if r.Top5AddrShare == 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkGrowth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Growth(benchLab)
		if len(r.Epochs) != 3 {
			b.Fatal("bad result")
		}
	}
}

// ---- Ablations ----

// benchAddrs returns a deterministic population of clustered addresses.
func benchAddrs(n int) []ipaddr.Addr {
	r := rand.New(rand.NewSource(17))
	out := make([]ipaddr.Addr, n)
	for i := range out {
		var buf [16]byte
		r.Read(buf[:])
		copy(buf[:6], []byte{0x20, 0x01, 0x0d, 0xb8, byte(r.Intn(8)), byte(r.Intn(16))})
		out[i] = ipaddr.AddrFrom16(buf)
	}
	return out
}

// BenchmarkAggregateCountsTrie measures the one-pass trie computation of
// all 129 aggregate counts n_p.
func BenchmarkAggregateCountsTrie(b *testing.B) {
	addrs := benchAddrs(100000)
	var tr trie.Trie
	for _, a := range addrs {
		tr.AddAddr(a)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := tr.AggregateCounts()
		if c[128] == 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkAggregateCountsSort measures the sort-based alternative the
// paper's appendix sketches (fixed-width hex, sort, cut, uniq) for a single
// prefix length — the trie computes all 129 lengths in about the time this
// takes for one.
func BenchmarkAggregateCountsSort(b *testing.B) {
	addrs := benchAddrs(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keys := make([]string, len(addrs))
		for j, a := range addrs {
			keys[j] = a.HexString()[:112/4]
		}
		sort.Strings(keys)
		n := 0
		for j := range keys {
			if j == 0 || keys[j] != keys[j-1] {
				n++
			}
		}
		if n == 0 {
			b.Fatal("bad result")
		}
	}
}

// denseBenchAddrs returns a population with genuine 2@/112-dense prefixes:
// clusters of four numerically adjacent addresses per occupied /112.
func denseBenchAddrs(n int) []ipaddr.Addr {
	bases := benchAddrs(n / 4)
	out := make([]ipaddr.Addr, 0, n)
	for _, a := range bases {
		base := ipaddr.PrefixFrom(a, 112).Addr()
		for j := uint64(0); j < 4; j++ {
			out = append(out, base.WithIID(base.IID()|j))
		}
	}
	return out
}

// BenchmarkDensifyTrie measures least-specific densification via the trie,
// including the trie construction the sweep rests on — the unit of work a
// cold serve dense query performs.
func BenchmarkDensifyTrie(b *testing.B) {
	addrs := denseBenchAddrs(100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tr trie.Trie
		for _, a := range addrs {
			tr.AddAddr(a)
		}
		if len(tr.DensePrefixes(2, 112)) == 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkDensifyFixedBucket measures the fixed-length alternative
// (truncate to /p and bucket), which answers only one prefix length.
func BenchmarkDensifyFixedBucket(b *testing.B) {
	addrs := benchAddrs(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := make(map[ipaddr.Prefix]uint64, len(addrs))
		for _, a := range addrs {
			counts[ipaddr.PrefixFrom(a, 112)]++
		}
		dense := 0
		for _, c := range counts {
			if c >= 2 {
				dense++
			}
		}
		_ = dense
	}
}

// BenchmarkStabilityWindowSweep measures daily stability classification
// across window sizes, the Section 6.1.1 "more research is warranted"
// parameter sweep.
func BenchmarkStabilityWindowSweep(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	store := temporal.NewStore[ipaddr.Addr](30)
	addrs := benchAddrs(30000)
	for _, a := range addrs {
		for d := 0; d < 30; d++ {
			if r.Intn(4) == 0 {
				store.Observe(a, temporal.Day(d))
			}
		}
	}
	for _, w := range []int{3, 7, 15} {
		w := w
		b.Run(windowName(w), func(b *testing.B) {
			opts := temporal.Options{Window: temporal.Window{Before: w / 2, After: w / 2}}
			for i := 0; i < b.N; i++ {
				_ = store.ClassifyDay(15, 3, opts)
			}
		})
	}
}

func windowName(w int) string {
	switch w {
	case 3:
		return "window3d"
	case 7:
		return "window7d"
	default:
		return "window15d"
	}
}

// BenchmarkMRAWeekMedium measures the full MRA computation over a week of
// the medium population — the headline spatial-analysis workload.
func BenchmarkMRAWeekMedium(b *testing.B) {
	var set spatial.AddressSet
	for d := synth.EpochMar2015; d < synth.EpochMar2015+7; d++ {
		for _, rec := range benchLab.Day(d).Records {
			set.Add(rec.Addr)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := set.MRA()
		if m.N == 0 {
			b.Fatal("bad result")
		}
	}
}
