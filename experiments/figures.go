package experiments

import (
	"fmt"
	"sort"
	"strings"

	"v6class/internal/ccdfplot"

	"v6class/bgp"
	"v6class/internal/addrclass"
	"v6class/internal/core"
	"v6class/internal/ipaddr"
	"v6class/internal/netmodel"
	"v6class/internal/spatial"
	"v6class/mraplot"
	"v6class/stats"
	"v6class/synth"
)

// Figure2Result holds the two contrasting MRA plots of Figure 2: a
// university whose structured plan uses few nybble values below its /32,
// and a network with tightly packed low-bit addresses.
type Figure2Result struct {
	University mraplot.Plot // Figure 2a
	DensePack  mraplot.Plot // Figure 2b
}

// Figure2 regenerates Figure 2 over one epoch week.
func Figure2(l *Lab) Figure2Result {
	week := l.WeekAddrs(synth.EpochMar2015)
	var uni, dense spatial.AddressSet
	uniOp, _ := l.World.OperatorByName("us-university")
	denseOp, _ := l.World.OperatorByName("eu-univ-dept")
	for _, log := range week {
		for _, r := range log.Records {
			switch o, ok := l.World.Table.Lookup(r.Addr); {
			case !ok:
			case o.ASN == uniOp.ASN:
				uni.Add(r.Addr)
			case o.ASN == denseOp.ASN:
				dense.Add(r.Addr)
			}
		}
	}
	return Figure2Result{
		University: mraplot.New(fmt.Sprintf("Fig 2a: US university, %d addrs", uni.Len()), uni.MRA()),
		DensePack:  mraplot.New(fmt.Sprintf("Fig 2b: dense low-bit network, %d addrs", dense.Len()), dense.MRA()),
	}
}

// Render prints both plots as ASCII charts.
func (r Figure2Result) Render() string {
	return r.University.ASCII() + "\n" + r.DensePack.ASCII()
}

// Figure3Curve is one aggregate-population CCDF curve.
type Figure3Curve struct {
	Label string
	CCDF  []stats.CCDFPoint
}

// Figure3Result reproduces Figure 3: aggregate population distributions of
// addresses and /64s over a week.
type Figure3Result struct {
	Addrs  int
	P64s   int
	Curves []Figure3Curve
}

// Figure3 regenerates the paper's Figure 3 over the last epoch week.
func Figure3(l *Lab) Figure3Result {
	c := l.Census([2]int{synth.EpochMar2015, synth.EpochMar2015 + 6})
	days := make([]int, 7)
	for i := range days {
		days[i] = synth.EpochMar2015 + i
	}
	addrSet := c.NativeSet(days...)
	p64Set := c.Prefix64Set(days...)
	res := Figure3Result{Addrs: addrSet.Len(), P64s: p64Set.Len()}
	add := func(label string, set *spatial.AddressSet, p int) {
		pops := set.AggregatePopulations(p)
		res.Curves = append(res.Curves, Figure3Curve{
			Label: label,
			CCDF:  stats.CCDF(stats.Counts(pops)),
		})
	}
	add("32-agg. of IPv6 addrs", addrSet, 32)
	add("32-agg. of /64s", p64Set, 32)
	add("48-agg. of IPv6 addrs", addrSet, 48)
	add("48-agg. of /64s", p64Set, 48)
	add("112-agg. of IPv6 addrs", addrSet, 112)
	return res
}

// Plot assembles the curves into a renderable log-log CCDF chart.
func (r Figure3Result) Plot() ccdfplot.Plot {
	p := ccdfplot.Plot{
		Title: fmt.Sprintf("Figure 3: aggregate populations (%s addrs, %s /64s)",
			fmtCount(uint64(r.Addrs)), fmtCount(uint64(r.P64s))),
		XLabel: "Aggregate Population, log scale",
	}
	for _, c := range r.Curves {
		p.Series = append(p.Series, ccdfplot.Series{Label: c.Label, Points: c.CCDF})
	}
	return p
}

// Render prints the log-log chart plus each curve at log-spaced values.
func (r Figure3Result) Render() string {
	var b strings.Builder
	b.WriteString(r.Plot().ASCII())
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "%s:\n", c.Label)
		if len(c.CCDF) == 0 {
			b.WriteString("  (empty)\n")
			continue
		}
		max := c.CCDF[len(c.CCDF)-1].Value
		for _, v := range stats.LogBuckets(max) {
			fmt.Fprintf(&b, "  pop >= %-9.0f  proportion %.2e\n", v, stats.CCDFAt(c.CCDF, v))
		}
	}
	return b.String()
}

// Figure4Result reproduces Figure 4: per-day active counts and the overlap
// with two reference days, for addresses (a) and /64s (b).
type Figure4Result struct {
	Days       []int // absolute study days of the window
	Ref1, Ref2 int
	// ActiveAddrs[i] is the active address count on Days[i]; Overlap1/2
	// are the subsets also active on the reference days.
	ActiveAddrs, Addr1, Addr2 []int
	ActiveP64s, P641, P642    []int
}

// Figure4 regenerates Figure 4 around the final epoch (the paper's March
// 10-30 window with references March 17 and 23).
func Figure4(l *Lab) Figure4Result {
	ref1 := synth.EpochMar2015
	ref2 := synth.EpochMar2015 + 6
	from, to := ref1-7, ref2+7
	c := l.Census([2]int{from, to})
	res := Figure4Result{Ref1: ref1, Ref2: ref2}
	for d := from; d <= to; d++ {
		res.Days = append(res.Days, d)
		res.ActiveAddrs = append(res.ActiveAddrs, c.ActiveCount(core.Addresses, d))
		res.ActiveP64s = append(res.ActiveP64s, c.ActiveCount(core.Prefixes64, d))
	}
	res.Addr1 = c.OverlapSeries(core.Addresses, ref1, 7, to-ref1)
	res.Addr2 = c.OverlapSeries(core.Addresses, ref2, ref2-from, 7)
	res.P641 = c.OverlapSeries(core.Prefixes64, ref1, 7, to-ref1)
	res.P642 = c.OverlapSeries(core.Prefixes64, ref2, ref2-from, 7)
	return res
}

// Render prints the series as aligned columns.
func (r Figure4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: stability study around days %d and %d\n", r.Ref1, r.Ref2)
	header := []string{"day", "active addrs", "ref1 overlap", "ref2 overlap", "active /64s", "ref1 /64s", "ref2 /64s"}
	var rows [][]string
	for i, d := range r.Days {
		rows = append(rows, []string{
			fmt.Sprintf("%d", d),
			fmtCount(uint64(r.ActiveAddrs[i])),
			overlapCell(r.Addr1, i),
			overlapCell(r.Addr2, i),
			fmtCount(uint64(r.ActiveP64s[i])),
			overlapCell(r.P641, i),
			overlapCell(r.P642, i),
		})
	}
	b.WriteString(table(header, rows))
	return b.String()
}

func overlapCell(series []int, i int) string {
	if i < 0 || i >= len(series) {
		return ""
	}
	return fmtCount(uint64(series[i]))
}

// Figure5aResult reproduces Figure 5a: CCDFs of per-ASN counts.
type Figure5aResult struct {
	ASNs           int
	AddrsPerASN    []stats.CCDFPoint
	P64sPerASN     []stats.CCDFPoint
	EUI64PerASN    []stats.CCDFPoint
	Stable64PerASN []stats.CCDFPoint
	TopASNAddrs    uint64 // the largest per-ASN address count
	TopASNShare    float64
	Top5AddrShare  float64
	Top5P64Share   float64
}

// Figure5a regenerates the per-ASN distributions of Figure 5a over the last
// epoch week, including the 6-month-stable /64 curve.
func Figure5a(l *Lab) Figure5aResult {
	week := l.WeekAddrs(synth.EpochMar2015)
	prevWeek := l.WeekAddrs(synth.EpochSep2014)

	type tally struct {
		addrs, eui uint64
		p64s       map[ipaddr.Prefix]bool
		stable64   uint64
	}
	byASN := map[bgp.ASN]*tally{}
	get := func(asn bgp.ASN) *tally {
		t := byASN[asn]
		if t == nil {
			t = &tally{p64s: make(map[ipaddr.Prefix]bool)}
			byASN[asn] = t
		}
		return t
	}
	seen := map[ipaddr.Addr]bool{}
	for _, log := range week {
		for _, r := range log.Records {
			if seen[r.Addr] {
				continue
			}
			seen[r.Addr] = true
			kind := addrclass.Classify(r.Addr)
			if kind.IsTransition() {
				continue
			}
			o, ok := l.World.Table.Lookup(r.Addr)
			if !ok {
				continue
			}
			t := get(o.ASN)
			t.addrs++
			t.p64s[ipaddr.PrefixFrom(r.Addr, 64)] = true
			if kind == addrclass.KindEUI64 {
				t.eui++
			}
		}
	}
	// 6-month-stable /64s per ASN: /64s active in both epoch weeks.
	prev64 := map[ipaddr.Prefix]bool{}
	for _, log := range prevWeek {
		for _, r := range log.Records {
			if !addrclass.Classify(r.Addr).IsTransition() {
				prev64[ipaddr.PrefixFrom(r.Addr, 64)] = true
			}
		}
	}
	for asn, t := range byASN {
		for p := range t.p64s {
			if prev64[p] {
				t.stable64++
			}
		}
		_ = asn
	}

	var addrs, p64s, eui, stable []float64
	var totalAddrs, total64 uint64
	type asnCount struct {
		addrs uint64
		p64s  uint64
	}
	var perASN []asnCount
	for _, t := range byASN {
		addrs = append(addrs, float64(t.addrs))
		p64s = append(p64s, float64(len(t.p64s)))
		perASN = append(perASN, asnCount{t.addrs, uint64(len(t.p64s))})
		totalAddrs += t.addrs
		total64 += uint64(len(t.p64s))
		if t.eui > 0 {
			eui = append(eui, float64(t.eui))
		}
		if t.stable64 > 0 {
			stable = append(stable, float64(t.stable64))
		}
	}
	sort.Slice(perASN, func(i, j int) bool { return perASN[i].addrs > perASN[j].addrs })
	res := Figure5aResult{
		ASNs:           len(byASN),
		AddrsPerASN:    stats.CCDF(addrs),
		P64sPerASN:     stats.CCDF(p64s),
		EUI64PerASN:    stats.CCDF(eui),
		Stable64PerASN: stats.CCDF(stable),
	}
	if len(perASN) > 0 && totalAddrs > 0 {
		res.TopASNAddrs = perASN[0].addrs
		res.TopASNShare = float64(perASN[0].addrs) / float64(totalAddrs)
		var a5, p5 uint64
		for i := 0; i < len(perASN) && i < 5; i++ {
			a5 += perASN[i].addrs
		}
		sort.Slice(perASN, func(i, j int) bool { return perASN[i].p64s > perASN[j].p64s })
		for i := 0; i < len(perASN) && i < 5; i++ {
			p5 += perASN[i].p64s
		}
		res.Top5AddrShare = float64(a5) / float64(totalAddrs)
		if total64 > 0 {
			res.Top5P64Share = float64(p5) / float64(total64)
		}
	}
	return res
}

// Plot assembles the per-ASN curves into a renderable log-log CCDF chart.
func (r Figure5aResult) Plot() ccdfplot.Plot {
	return ccdfplot.Plot{
		Title:  fmt.Sprintf("Figure 5a: per-ASN counts, %d ASNs", r.ASNs),
		XLabel: "Count, log scale",
		Series: []ccdfplot.Series{
			{Label: "active addresses per ASN", Points: r.AddrsPerASN},
			{Label: "active /64s per ASN", Points: r.P64sPerASN},
			{Label: "EUI-64 addresses per ASN", Points: r.EUI64PerASN},
			{Label: "6m-stable /64s per ASN", Points: r.Stable64PerASN},
		},
	}
}

// Render prints summary statistics and curve excerpts.
func (r Figure5aResult) Render() string {
	var b strings.Builder
	b.WriteString(r.Plot().ASCII())
	fmt.Fprintf(&b, "Figure 5a: per-ASN count distributions, %d active ASNs\n", r.ASNs)
	fmt.Fprintf(&b, "  top ASN: %s addrs (%.0f%% of all)\n", fmtCount(r.TopASNAddrs), 100*r.TopASNShare)
	fmt.Fprintf(&b, "  top-5 ASNs: %.0f%% of addrs, %.0f%% of /64s\n", 100*r.Top5AddrShare, 100*r.Top5P64Share)
	curve := func(label string, c []stats.CCDFPoint) {
		fmt.Fprintf(&b, "  %s: ", label)
		if len(c) == 0 {
			b.WriteString("(empty)\n")
			return
		}
		max := c[len(c)-1].Value
		for _, v := range []float64{1, 10, 100, 1000, 10000, 100000} {
			if v > max {
				break
			}
			fmt.Fprintf(&b, ">=%.0f:%.3f ", v, stats.CCDFAt(c, v))
		}
		b.WriteByte('\n')
	}
	curve("active addrs per ASN", r.AddrsPerASN)
	curve("active /64s per ASN", r.P64sPerASN)
	curve("EUI-64 addrs per ASN", r.EUI64PerASN)
	curve("6m-stable /64s per ASN", r.Stable64PerASN)
	return b.String()
}

// Figure5bResult reproduces Figure 5b: distributions of 16-bit-segment
// aggregation ratios across BGP prefixes.
type Figure5bResult struct {
	Prefixes int
	// Boxes[i] summarizes the gamma^16 ratios of segment [16i, 16i+16)
	// across prefixes.
	Boxes [8]stats.BoxSummary
}

// Figure5b regenerates the box-plot distributions over the last epoch week.
func Figure5b(l *Lab) Figure5bResult {
	week := l.WeekAddrs(synth.EpochMar2015)
	sets := map[ipaddr.Prefix]*spatial.AddressSet{}
	for _, log := range week {
		for _, r := range log.Records {
			if addrclass.Classify(r.Addr).IsTransition() {
				continue
			}
			o, ok := l.World.Table.Lookup(r.Addr)
			if !ok {
				continue
			}
			s := sets[o.Prefix]
			if s == nil {
				s = &spatial.AddressSet{}
				sets[o.Prefix] = s
			}
			s.Add(r.Addr)
		}
	}
	var ratios [8][]float64
	for _, s := range sets {
		m := s.MRA()
		for seg := 0; seg < 8; seg++ {
			ratios[seg] = append(ratios[seg], m.Ratio(16*seg, 16))
		}
	}
	res := Figure5bResult{Prefixes: len(sets)}
	for seg := 0; seg < 8; seg++ {
		if len(ratios[seg]) > 0 {
			res.Boxes[seg] = stats.Box(ratios[seg])
		}
	}
	return res
}

// Render prints one box summary per 16-bit segment.
func (r Figure5bResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5b: 16-bit segment aggregation ratio distributions, %d BGP prefixes\n", r.Prefixes)
	header := []string{"segment", "median", "p25", "p75", "p5", "p95", "p99", "max"}
	var rows [][]string
	for seg, box := range r.Boxes {
		rows = append(rows, []string{
			fmt.Sprintf("%d-%d", 16*seg, 16*seg+16),
			trim3(box.Median), trim3(box.P25), trim3(box.P75),
			trim3(box.P5), trim3(box.P95), trim3(box.P99), trim3(box.Max),
		})
	}
	b.WriteString(table(header, rows))
	return b.String()
}

// Figure5PlotsResult reproduces the six MRA plots of Figure 5c-5h.
type Figure5PlotsResult struct {
	All      mraplot.Plot // 5c: all native client addresses
	SixToF   mraplot.Plot // 5d: 6to4 clients
	USMobile mraplot.Plot // 5e: a U.S. mobile carrier
	EUISP    mraplot.Plot // 5f: a European ISP BGP prefix
	Dept     mraplot.Plot // 5g: one department /64
	JPISP    mraplot.Plot // 5h: a Japanese ISP BGP prefix
}

// Figure5Plots regenerates Figures 5c through 5h over the last epoch week.
func Figure5Plots(l *Lab) Figure5PlotsResult {
	week := l.WeekAddrs(synth.EpochMar2015)
	var all, sixToF, mobile, eu, dept, jp spatial.AddressSet
	mobileOp, _ := l.World.OperatorByName("us-mobile-1")
	euOp, _ := l.World.OperatorByName("eu-isp")
	deptOp, _ := l.World.OperatorByName("eu-univ-dept")
	jpOp, _ := l.World.OperatorByName("jp-isp")
	deptPlan := deptOp.Plan.(*netmodel.DHCPDensePlan)
	jpPrefix := jpOp.Prefixes[0]
	seen := map[ipaddr.Addr]bool{}
	for _, log := range week {
		for _, r := range log.Records {
			if seen[r.Addr] {
				continue
			}
			seen[r.Addr] = true
			kind := addrclass.Classify(r.Addr)
			if kind == addrclass.Kind6to4 {
				sixToF.Add(r.Addr)
				continue
			}
			if kind.IsTransition() {
				continue
			}
			all.Add(r.Addr)
			o, ok := l.World.Table.Lookup(r.Addr)
			if !ok {
				continue
			}
			switch {
			case o.ASN == mobileOp.ASN:
				mobile.Add(r.Addr)
			case o.ASN == euOp.ASN:
				eu.Add(r.Addr)
			case o.ASN == deptOp.ASN && deptPlan.Network.Contains(r.Addr):
				dept.Add(r.Addr)
			case o.ASN == jpOp.ASN && jpPrefix.Contains(r.Addr):
				jp.Add(r.Addr)
			}
		}
	}
	plot := func(label string, s *spatial.AddressSet) mraplot.Plot {
		return mraplot.New(fmt.Sprintf("%s: %s addrs", label, fmtCount(uint64(s.Len()))), s.MRA())
	}
	return Figure5PlotsResult{
		All:      plot("Fig 5c: all native clients", &all),
		SixToF:   plot("Fig 5d: 6to4 clients", &sixToF),
		USMobile: plot("Fig 5e: US mobile carrier", &mobile),
		EUISP:    plot("Fig 5f: EU ISP prefix", &eu),
		Dept:     plot("Fig 5g: EU univ dept /64", &dept),
		JPISP:    plot("Fig 5h: JP ISP prefix", &jp),
	}
}

// Render prints all six ASCII plots.
func (r Figure5PlotsResult) Render() string {
	plots := []mraplot.Plot{r.All, r.SixToF, r.USMobile, r.EUISP, r.Dept, r.JPISP}
	var b strings.Builder
	for _, p := range plots {
		b.WriteString(p.ASCII())
		b.WriteByte('\n')
	}
	return b.String()
}
