package experiments

import (
	"fmt"
	"sort"
	"strings"

	"v6class/bgp"
	"v6class/internal/addrclass"
	"v6class/internal/cdnlog"
	"v6class/internal/ipaddr"
	"v6class/internal/spatial"
	"v6class/synth"
)

// SignatureCensusResult is the MRA-based classification of every active BGP
// prefix — the future work the paper defers at the end of Section 5.2.1,
// here applied in situ like the other classifiers.
type SignatureCensusResult struct {
	Prefixes int
	// BySignature tallies prefixes per spatial signature.
	BySignature map[spatial.Signature]int
	// Examples maps each signature to a few example prefixes.
	Examples map[spatial.Signature][]ipaddr.Prefix
}

// SignatureCensus classifies every BGP prefix's weekly population by MRA
// signature.
func SignatureCensus(l *Lab) SignatureCensusResult {
	week := l.WeekAddrs(synth.EpochMar2015)
	sets := map[ipaddr.Prefix]*spatial.AddressSet{}
	for _, log := range week {
		for _, r := range log.Records {
			o, ok := l.World.Table.Lookup(r.Addr)
			if !ok {
				continue
			}
			s := sets[o.Prefix]
			if s == nil {
				s = &spatial.AddressSet{}
				sets[o.Prefix] = s
			}
			s.Add(r.Addr)
		}
	}
	res := SignatureCensusResult{
		Prefixes:    len(sets),
		BySignature: make(map[spatial.Signature]int),
		Examples:    make(map[spatial.Signature][]ipaddr.Prefix),
	}
	// Deterministic order for examples.
	prefixes := make([]ipaddr.Prefix, 0, len(sets))
	for p := range sets {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Cmp(prefixes[j]) < 0 })
	for _, p := range prefixes {
		sig := spatial.ClassifySignature(sets[p].MRA())
		res.BySignature[sig]++
		if len(res.Examples[sig]) < 3 {
			res.Examples[sig] = append(res.Examples[sig], p)
		}
	}
	return res
}

// Render prints the tally with example prefixes.
func (r SignatureCensusResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MRA signature census (Sec 5.2.1 future work): %d active BGP prefixes\n", r.Prefixes)
	for sig := spatial.SigEmpty; sig <= spatial.SigEmbeddedIPv4; sig++ {
		n := r.BySignature[sig]
		if n == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-18s %4d", sig, n)
		for _, p := range r.Examples[sig] {
			fmt.Fprintf(&b, "  %v", p)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// HighlightsResult reproduces the bulleted measurement highlights of the
// paper's introduction (Section 1) that are not already covered by a table:
// top-ASN dominance, the one-ASN share of six-month-stable /64s, /64 reuse,
// and the dense-region share of ASNs.
type HighlightsResult struct {
	// Top5P64Share: "the top 5 ASNs represent 85% of active /64s".
	Top5P64Share float64
	// Top5AddrShare: "... and 59% of all active addresses".
	Top5AddrShare float64
	// OneASNStable64Share: "74% of the /64s observed as active during two
	// weeks separated by 6 months are associated with just 1 ASN".
	OneASNStable64Share float64
	// ReusedMobile64Share is the fraction of one day's mobile /64s that
	// appear again within a week under a different fixed-IID address —
	// the "/64s are reused, certainly within a week" bullet.
	ReusedMobile64Share float64
	// DenseASNShare: "49% of active IPv6 ASNs have BGP prefixes
	// containing [dense] regions, e.g. /112 prefixes containing multiple
	// active WWW client addresses".
	DenseASNShare float64
}

// Highlights computes the Section 1 headline figures over the final epoch.
func Highlights(l *Lab) HighlightsResult {
	week := l.WeekAddrs(synth.EpochMar2015)
	prevWeek := l.WeekAddrs(synth.EpochSep2014)
	var res HighlightsResult

	// Per-ASN address and /64 tallies (native only).
	type tally struct {
		addrs uint64
		p64s  map[ipaddr.Prefix]bool
		set   *spatial.AddressSet
	}
	byASN := map[bgp.ASN]*tally{}
	for _, a := range cdnlog.UniqueAddrs(week) {
		if addrclass.Classify(a).IsTransition() {
			continue
		}
		o, ok := l.World.Table.Lookup(a)
		if !ok {
			continue
		}
		t := byASN[o.ASN]
		if t == nil {
			t = &tally{p64s: make(map[ipaddr.Prefix]bool), set: &spatial.AddressSet{}}
			byASN[o.ASN] = t
		}
		t.addrs++
		t.p64s[ipaddr.PrefixFrom(a, 64)] = true
		t.set.Add(a)
	}
	var totalAddrs, total64 uint64
	type cnt struct{ a, p uint64 }
	var counts []cnt
	denseASNs := 0
	for _, t := range byASN {
		counts = append(counts, cnt{t.addrs, uint64(len(t.p64s))})
		totalAddrs += t.addrs
		total64 += uint64(len(t.p64s))
		if len(t.set.DenseFixed(spatial.DensityClass{N: 2, P: 112}).Prefixes) > 0 {
			denseASNs++
		}
	}
	if len(byASN) > 0 {
		res.DenseASNShare = float64(denseASNs) / float64(len(byASN))
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i].a > counts[j].a })
	var a5 uint64
	for i := 0; i < len(counts) && i < 5; i++ {
		a5 += counts[i].a
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i].p > counts[j].p })
	var p5 uint64
	for i := 0; i < len(counts) && i < 5; i++ {
		p5 += counts[i].p
	}
	if totalAddrs > 0 {
		res.Top5AddrShare = float64(a5) / float64(totalAddrs)
	}
	if total64 > 0 {
		res.Top5P64Share = float64(p5) / float64(total64)
	}

	// Six-month-stable /64s by ASN: the one-ASN share.
	prev64 := map[ipaddr.Prefix]bool{}
	for _, a := range cdnlog.UniqueAddrs(prevWeek) {
		if !addrclass.Classify(a).IsTransition() {
			prev64[ipaddr.PrefixFrom(a, 64)] = true
		}
	}
	stableByASN := map[bgp.ASN]uint64{}
	var stableTotal uint64
	for asn, t := range byASN {
		for p := range t.p64s {
			if prev64[p] {
				stableByASN[asn]++
				stableTotal++
			}
		}
	}
	var stableMax uint64
	for _, n := range stableByASN {
		if n > stableMax {
			stableMax = n
		}
	}
	if stableTotal > 0 {
		res.OneASNStable64Share = float64(stableMax) / float64(stableTotal)
	}

	// Mobile /64 reuse within a week: of the /64s a mobile carrier used
	// on the first day, how many recur later in the week under a
	// different address (a different subscriber's device)?
	mobile, _ := l.World.OperatorByName("us-mobile-1")
	day0 := map[ipaddr.Prefix]ipaddr.Addr{}
	for _, r := range week[0].Records {
		if o, ok := l.World.Table.Lookup(r.Addr); ok && o.ASN == mobile.ASN {
			day0[ipaddr.PrefixFrom(r.Addr, 64)] = r.Addr
		}
	}
	reused := map[ipaddr.Prefix]bool{}
	for _, log := range week[1:] {
		for _, r := range log.Records {
			p64 := ipaddr.PrefixFrom(r.Addr, 64)
			if first, ok := day0[p64]; ok && first != r.Addr {
				reused[p64] = true
			}
		}
	}
	if len(day0) > 0 {
		res.ReusedMobile64Share = float64(len(reused)) / float64(len(day0))
	}
	return res
}

// Render prints the highlight bullets with the paper's figures alongside.
func (r HighlightsResult) Render() string {
	return fmt.Sprintf(
		"Section 1 highlights:\n"+
			"  top-5 ASNs: %.0f%% of active /64s (paper: 85%%), %.0f%% of addresses (paper: 59%%)\n"+
			"  6m-stable /64s in one ASN: %.0f%% (paper: 74%%)\n"+
			"  mobile /64s reused within a week: %.0f%% (paper: \"certainly within a week\")\n"+
			"  ASNs with 2@/112-dense client regions: %.0f%% (paper: 49%%)\n",
		100*r.Top5P64Share, 100*r.Top5AddrShare,
		100*r.OneASNStable64Share, 100*r.ReusedMobile64Share, 100*r.DenseASNShare)
}
