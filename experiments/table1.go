package experiments

import (
	"strings"

	"v6class/internal/addrclass"
	"v6class/internal/cdnlog"
	"v6class/internal/ipaddr"
)

// Table1Epoch holds the address characteristics of one epoch, one column of
// the paper's Table 1 (per day or per week).
type Table1Epoch struct {
	Label   string
	Teredo  uint64
	ISATAP  uint64
	SixToF  uint64
	Other   uint64 // native addresses
	Total   uint64
	Other64 uint64  // native /64 prefixes
	AvgPer  float64 // average native addresses per /64
	EUI64   uint64  // EUI-64 addresses, excluding 6to4
	MACs    uint64  // distinct EUI-64 IIDs (MACs)
}

// Table1Result reproduces Table 1: daily (a) and weekly (b) characteristics
// at the three epochs.
type Table1Result struct {
	Daily  []Table1Epoch
	Weekly []Table1Epoch
}

// Table1 regenerates the paper's Table 1 from the synthetic world.
func Table1(l *Lab) Table1Result {
	var res Table1Result
	for _, e := range Epochs() {
		res.Daily = append(res.Daily, characterize(e.Label, []cdnlog.DayLog{l.Day(e.Day)}))
		res.Weekly = append(res.Weekly, characterize(e.Label+" wk", l.WeekAddrs(e.Day)))
	}
	return res
}

// characterize computes one Table 1 column over the distinct addresses of
// the given logs.
func characterize(label string, logs []cdnlog.DayLog) Table1Epoch {
	col := Table1Epoch{Label: label}
	p64 := make(map[ipaddr.Prefix]bool)
	macs := make(map[addrclass.MAC]bool)
	for _, a := range cdnlog.UniqueAddrs(logs) {
		col.Total++
		kind := addrclass.Classify(a)
		switch kind {
		case addrclass.KindTeredo:
			col.Teredo++
			continue
		case addrclass.KindISATAP:
			col.ISATAP++
			continue
		case addrclass.Kind6to4:
			col.SixToF++
			continue
		}
		col.Other++
		p64[ipaddr.PrefixFrom(a, 64)] = true
		if kind == addrclass.KindEUI64 {
			col.EUI64++
			if mac, ok := addrclass.EUI64MAC(a); ok {
				macs[mac] = true
			}
		}
	}
	col.Other64 = uint64(len(p64))
	col.MACs = uint64(len(macs))
	if col.Other64 > 0 {
		col.AvgPer = float64(col.Other) / float64(col.Other64)
	}
	return col
}

// Render prints the result in the paper's row layout.
func (r Table1Result) Render() string {
	var b strings.Builder
	render := func(title string, cols []Table1Epoch) {
		b.WriteString(title + "\n")
		header := []string{"Characteristic"}
		for _, c := range cols {
			header = append(header, c.Label)
		}
		row := func(name string, f func(Table1Epoch) string) []string {
			cells := []string{name}
			for _, c := range cols {
				cells = append(cells, f(c))
			}
			return cells
		}
		rows := [][]string{
			row("Teredo addresses", func(c Table1Epoch) string { return fmtCount(c.Teredo) + " (" + fmtPct(c.Teredo, c.Total) + ")" }),
			row("ISATAP addresses", func(c Table1Epoch) string { return fmtCount(c.ISATAP) + " (" + fmtPct(c.ISATAP, c.Total) + ")" }),
			row("6to4 addresses", func(c Table1Epoch) string { return fmtCount(c.SixToF) + " (" + fmtPct(c.SixToF, c.Total) + ")" }),
			row("Other addresses", func(c Table1Epoch) string { return fmtCount(c.Other) + " (" + fmtPct(c.Other, c.Total) + ")" }),
			row("Other /64 prefixes", func(c Table1Epoch) string { return fmtCount(c.Other64) }),
			row("ave. addrs per /64", func(c Table1Epoch) string { return trim3(c.AvgPer) }),
			row("EUI-64 addr (!6to4)", func(c Table1Epoch) string { return fmtCount(c.EUI64) + " (" + fmtPct(c.EUI64, c.Total) + ")" }),
			row("EUI-64 IIDs (MACs)", func(c Table1Epoch) string { return fmtCount(c.MACs) }),
		}
		b.WriteString(table(header, rows))
		b.WriteByte('\n')
	}
	render("Table 1a: address characteristics per day", r.Daily)
	render("Table 1b: address characteristics per week", r.Weekly)
	return b.String()
}
