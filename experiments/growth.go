package experiments

import (
	"fmt"
	"strings"

	"v6class/bgp"
	"v6class/internal/core"
	"v6class/internal/temporal"
	"v6class/synth"
)

// GrowthResult reproduces the Section 4.1 deployment-growth observations:
// active BGP prefixes, origin ASNs, and countries at each epoch (the paper
// sees 5,531 prefixes / 3,842 ASNs in March 2014 growing to 6,872 / 4,420
// a year later, with clients in 133 countries).
type GrowthResult struct {
	Epochs    []string
	Prefixes  []int
	ASNs      []int
	Countries []int
	Addresses []int
}

// Growth measures deployment growth across the three epochs, over each
// epoch day's active population.
func Growth(l *Lab) GrowthResult {
	var res GrowthResult
	for _, e := range Epochs() {
		day := l.Day(e.Day)
		prefixes := map[string]bool{}
		asns := map[bgp.ASN]bool{}
		countries := map[string]bool{}
		for _, r := range day.Records {
			o, ok := l.World.Table.Lookup(r.Addr)
			if !ok {
				continue
			}
			prefixes[o.Prefix.String()] = true
			asns[o.ASN] = true
			if op, _ := l.World.OperatorByName(o.Name); op != nil {
				countries[op.Country] = true
			}
		}
		res.Epochs = append(res.Epochs, e.Label)
		res.Prefixes = append(res.Prefixes, len(prefixes))
		res.ASNs = append(res.ASNs, len(asns))
		res.Countries = append(res.Countries, len(countries))
		res.Addresses = append(res.Addresses, len(day.Records))
	}
	return res
}

// Render prints the growth table.
func (r GrowthResult) Render() string {
	var b strings.Builder
	b.WriteString("Deployment growth (Sec 4.1):\n")
	header := []string{"epoch", "addresses", "BGP prefixes", "origin ASNs", "countries"}
	var rows [][]string
	for i := range r.Epochs {
		rows = append(rows, []string{
			r.Epochs[i],
			fmtCount(uint64(r.Addresses[i])),
			fmt.Sprintf("%d", r.Prefixes[i]),
			fmt.Sprintf("%d", r.ASNs[i]),
			fmt.Sprintf("%d", r.Countries[i]),
		})
	}
	b.WriteString(table(header, rows))
	return b.String()
}

// WindowSweepResult is the Section 6.1.1 parameter exploration: how the
// stable population varies with n and with the sliding-window size.
type WindowSweepResult struct {
	Ref int
	// Spectrum[n-1] is the count of nd-stable addresses under the default
	// window for n in [1, len].
	Spectrum []int
	Active   int
	// ByWindow maps window half-width to the 3d-stable count.
	ByWindow map[int]int
}

// WindowSweep sweeps n and window size at the final epoch.
func WindowSweep(l *Lab) WindowSweepResult {
	ref := synth.EpochMar2015
	c := l.Census([2]int{ref - 7, ref + 7})
	res := WindowSweepResult{Ref: ref, ByWindow: make(map[int]int)}
	st := c.Stability(core.Addresses, ref, 1)
	res.Active = st.Active

	for n := 1; n <= 7; n++ {
		res.Spectrum = append(res.Spectrum, c.Stability(core.Addresses, ref, n).Stable)
	}
	for _, half := range []int{1, 3, 5, 7} {
		cw := core.NewCensus(core.CensusConfig{
			StudyDays: l.World.StudyLength(),
			StabilityOptions: temporal.Options{
				Window: temporal.Window{Before: half, After: half},
			},
		})
		for d := ref - 7; d <= ref+7; d++ {
			cw.AddDay(l.Day(d))
		}
		res.ByWindow[half] = cw.Stability(core.Addresses, ref, 3).Stable
	}
	return res
}

// Render prints the sweep.
func (r WindowSweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Stability parameter sweep (Sec 6.1.1), day %d, %d active:\n", r.Ref, r.Active)
	b.WriteString("  nd-stable spectrum (window -7d,+7d):\n")
	for n, count := range r.Spectrum {
		fmt.Fprintf(&b, "    n=%d: %d (%.1f%%)\n", n+1, count, 100*float64(count)/float64(r.Active))
	}
	b.WriteString("  3d-stable by window half-width:\n")
	for _, half := range []int{1, 3, 5, 7} {
		fmt.Fprintf(&b, "    (-%dd,+%dd): %d\n", half, half, r.ByWindow[half])
	}
	return b.String()
}
