package experiments

import (
	"testing"

	"v6class/internal/core"
	"v6class/synth"
)

// TestInvariantsAcrossSeeds guards against overfitting the reproduction to
// one random world: the paper's headline orderings must hold for any seed.
func TestInvariantsAcrossSeeds(t *testing.T) {
	for _, seed := range []uint64{11, 23, 99} {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			l := NewLab(synth.Config{Seed: seed, Scale: 0.03})
			ref := synth.EpochMar2015
			c := l.Census([2]int{ref - 7, ref + 7})

			// /64 stability >> address stability.
			a := c.Stability(core.Addresses, ref, 3)
			p := c.Stability(core.Prefixes64, ref, 3)
			if a.Active == 0 || p.Active == 0 {
				t.Fatal("empty world")
			}
			aFrac := float64(a.Stable) / float64(a.Active)
			pFrac := float64(p.Stable) / float64(p.Active)
			if pFrac <= aFrac {
				t.Errorf("seed %d: /64 stability %v <= addr stability %v", seed, pFrac, aFrac)
			}
			if aFrac < 0.02 || aFrac > 0.5 {
				t.Errorf("seed %d: addr 3d-stable fraction %v outside paper band", seed, aFrac)
			}

			// Router discovery: stable targets win.
			d := RouterDiscovery(l)
			if d.PctMore <= 0 {
				t.Errorf("seed %d: discovery gain %+.0f%%", seed, d.PctMore)
			}

			// Dense prefixes exist and the PTR sweep finds extra names.
			ptr := PTRHarvest(l)
			if ptr.DensePrefixes == 0 || ptr.AdditionalName <= 0 {
				t.Errorf("seed %d: ptr harvest = %+v", seed, ptr)
			}

			// Highlights: mobile /64 reuse within a week.
			h := Highlights(l)
			if h.ReusedMobile64Share < 0.3 {
				t.Errorf("seed %d: mobile reuse %v", seed, h.ReusedMobile64Share)
			}
		})
	}
}
