package experiments

import (
	"fmt"
	"sort"
	"strings"

	"v6class/dnssim"
	"v6class/internal/addrclass"
	"v6class/internal/core"
	"v6class/internal/ipaddr"
	"v6class/internal/spatial"
	"v6class/probe"
	"v6class/synth"
)

// RouterDiscoveryResult reproduces the Section 6.1.1 experiment: probing a
// randomly selected subset of 3d-stable addresses discovers far more router
// addresses than the long-standing IPv4-style strategy (recursive resolver
// addresses plus randomly selected active WWW clients).
type RouterDiscoveryResult struct {
	Targets         int // targets per strategy
	BaselineRouters int
	StableRouters   int
	PctMore         float64 // paper: +129%
}

// RouterDiscovery runs the target-selection comparison. Classification uses
// the final epoch; probing happens two weeks later, by which time ephemeral
// targets have gone dark.
func RouterDiscovery(l *Lab) RouterDiscoveryResult {
	classifyDay := synth.EpochMar2015
	probeDay := classifyDay + 14
	c := l.Census([2]int{classifyDay - 7, classifyDay + 7})
	topo := probe.NewTopology(l.World, probeDay)

	// The stores return keys in map order; sort so the "every kth" sample
	// below is genuinely deterministic, run to run and engine to engine.
	actives := c.AddrsActiveOn(classifyDay)
	sort.Slice(actives, func(i, j int) bool { return actives[i].Less(actives[j]) })
	stable := c.StableAddrs(classifyDay, 3)
	sort.Slice(stable, func(i, j int) bool { return stable[i].Less(stable[j]) })
	n := len(stable)
	if len(actives) < n {
		n = len(actives)
	}
	// Deterministic "random" subsets: every kth element.
	sample := func(s []ipaddr.Addr, n int) []ipaddr.Addr {
		if len(s) <= n {
			return s
		}
		out := make([]ipaddr.Addr, 0, n)
		step := len(s) / n
		for i := 0; i < len(s) && len(out) < n; i += step {
			out = append(out, s[i])
		}
		return out
	}
	resolvers := topo.Resolvers()
	baselineTargets := append(append([]ipaddr.Addr{}, resolvers...), sample(actives, n)...)
	stableTargets := append(append([]ipaddr.Addr{}, resolvers...), sample(stable, n)...)

	baseline := topo.Discover(baselineTargets)
	withStable := topo.Discover(stableTargets)
	res := RouterDiscoveryResult{
		Targets:         n + len(resolvers),
		BaselineRouters: len(baseline),
		StableRouters:   len(withStable),
	}
	if res.BaselineRouters > 0 {
		res.PctMore = 100 * float64(res.StableRouters-res.BaselineRouters) / float64(res.BaselineRouters)
	}
	return res
}

// Render summarizes the comparison.
func (r RouterDiscoveryResult) Render() string {
	return fmt.Sprintf(
		"Router discovery (Sec 6.1.1): %d targets per strategy\n"+
			"  IPv4-style strategy (resolvers + random actives): %d routers\n"+
			"  3d-stable strategy:                               %d routers (%+.0f%%)\n",
		r.Targets, r.BaselineRouters, r.StableRouters, r.PctMore)
}

// PTRHarvestResult reproduces the Section 6.2.3 experiment: sweeping
// ip6.arpa PTR queries across the 3@/120-dense prefixes of the router
// dataset yields names beyond those of the already-known addresses.
type PTRHarvestResult struct {
	DensePrefixes  int
	Queries        uint64
	BaselineNames  int // names of known router + client addresses
	HarvestNames   int // names found by sweeping dense prefixes
	AdditionalName int // harvest-only names (paper: +47K)
}

// PTRHarvest runs the dense-prefix PTR sweep against the synthetic zone.
func PTRHarvest(l *Lab) PTRHarvestResult {
	probeDay := synth.EpochMar2015 - 28
	topo := probe.NewTopology(l.World, probeDay)
	zone := dnssim.NewZone(topo)

	routers := RouterDatasetFor(l)
	var set spatial.AddressSet
	for _, a := range routers {
		set.Add(a)
	}
	dense := set.DenseFixed(spatial.DensityClass{N: 3, P: 120})
	prefixes := make([]ipaddr.Prefix, len(dense.Prefixes))
	for i, pc := range dense.Prefixes {
		prefixes[i] = pc.Prefix
	}

	// Baseline: names resolvable for addresses already known — the router
	// dataset plus the active WWW clients of the probe day.
	known := append(append([]ipaddr.Addr{}, routers...), l.Day(probeDay).Addrs()...)
	baseline := zone.HarvestAddrs(known)

	names, queries, err := zone.HarvestPrefixes(prefixes, 16)
	if err != nil {
		panic(fmt.Sprintf("experiments: dense sweep failed: %v", err))
	}
	baseSet := make(map[string]bool, len(baseline))
	for _, n := range baseline {
		baseSet[n] = true
	}
	extra := 0
	for _, n := range names {
		if !baseSet[n] {
			extra++
		}
	}
	return PTRHarvestResult{
		DensePrefixes:  len(prefixes),
		Queries:        queries,
		BaselineNames:  len(baseline),
		HarvestNames:   len(names),
		AdditionalName: extra,
	}
}

// Render summarizes the harvest.
func (r PTRHarvestResult) Render() string {
	return fmt.Sprintf(
		"PTR harvest (Sec 6.2.3): %d 3@/120-dense prefixes, %d queries\n"+
			"  names from known addresses:   %d\n"+
			"  names from dense-prefix sweep: %d (%d additional)\n",
		r.DensePrefixes, r.Queries, r.BaselineNames, r.HarvestNames, r.AdditionalName)
}

// EUI64ChurnResult reproduces the Section 6.1.1 EUI-64 analysis: of the
// EUI-64 addresses classified "not 3d-stable" in the September week, the
// fraction whose IID appears in more than one address (the subnet moved
// under a stable IID) and the fraction whose IID also appears in a
// 3d-stable address.
type EUI64ChurnResult struct {
	NotStableEUI64   int
	MultiAddrIIDPct  float64 // paper: 62%
	AlsoStableIIDPct float64 // paper: 14%
}

// EUI64Churn runs the analysis over the September epoch week.
func EUI64Churn(l *Lab) EUI64ChurnResult {
	epoch := synth.EpochSep2014
	c := l.Census([2]int{epoch - 7, epoch + 13})

	// Precompute the weekly 3d-stable address set: stable on any
	// reference day of the week.
	weeklyStable := make(map[ipaddr.Addr]bool)
	for ref := epoch; ref < epoch+7; ref++ {
		for _, a := range c.StableAddrs(ref, 3) {
			weeklyStable[a] = true
		}
	}

	// Classify every EUI-64 address seen in the week.
	stableIIDs := make(map[uint64]bool)
	iidAddrs := make(map[uint64]map[ipaddr.Addr]bool)
	notStable := make(map[ipaddr.Addr]uint64) // addr -> iid
	for d := epoch; d < epoch+7; d++ {
		for _, a := range c.AddrsActiveOn(d) {
			if !addrclass.IsEUI64(a) {
				continue
			}
			iid := a.IID()
			m := iidAddrs[iid]
			if m == nil {
				m = make(map[ipaddr.Addr]bool)
				iidAddrs[iid] = m
			}
			m[a] = true
			if weeklyStable[a] {
				stableIIDs[iid] = true
				delete(notStable, a)
			} else {
				notStable[a] = iid
			}
		}
	}
	res := EUI64ChurnResult{NotStableEUI64: len(notStable)}
	if len(notStable) == 0 {
		return res
	}
	multi, also := 0, 0
	for _, iid := range notStable {
		if len(iidAddrs[iid]) > 1 {
			multi++
		}
		if stableIIDs[iid] {
			also++
		}
	}
	res.MultiAddrIIDPct = 100 * float64(multi) / float64(len(notStable))
	res.AlsoStableIIDPct = 100 * float64(also) / float64(len(notStable))
	return res
}

// Render summarizes the churn analysis.
func (r EUI64ChurnResult) Render() string {
	return fmt.Sprintf(
		"EUI-64 churn (Sec 6.1.1): %d not-3d-stable EUI-64 addresses\n"+
			"  IID appears in >1 address:      %.0f%% (paper: 62%%)\n"+
			"  IID also in a 3d-stable address: %.0f%% (paper: 14%%)\n",
		r.NotStableEUI64, r.MultiAddrIIDPct, r.AlsoStableIIDPct)
}

// LSPResult reproduces the Section 7.2 future-work proposal: automatically
// discovered longest stable prefixes across the two final epochs.
type LSPResult struct {
	Prefixes []core.LongestStablePrefix
	// ByLength tallies discovered prefixes by length bucket.
	ByLength map[int]int
}

// LongestStablePrefixes discovers stable network identifiers between the
// September and March epoch weeks.
func LongestStablePrefixes(l *Lab) LSPResult {
	c := l.Census(
		[2]int{synth.EpochSep2014, synth.EpochSep2014 + 6},
		[2]int{synth.EpochMar2015, synth.EpochMar2015 + 6},
	)
	got := c.LongestStablePrefixes(
		synth.EpochSep2014, synth.EpochSep2014+6,
		synth.EpochMar2015, synth.EpochMar2015+6,
		32, 4,
	)
	res := LSPResult{Prefixes: got, ByLength: make(map[int]int)}
	for _, p := range got {
		res.ByLength[p.Prefix.Bits()/16*16]++
	}
	return res
}

// Render summarizes the discovered prefixes.
func (r LSPResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Longest stable prefixes (Sec 7.2): %d discovered\n", len(r.Prefixes))
	for _, bucket := range []int{32, 48, 64, 80, 96, 112} {
		if n := r.ByLength[bucket]; n > 0 {
			fmt.Fprintf(&b, "  /%d-/%d: %d\n", bucket, bucket+15, n)
		}
	}
	show := r.Prefixes
	if len(show) > 10 {
		show = show[:10]
	}
	for _, p := range show {
		fmt.Fprintf(&b, "  %v (support %d)\n", p.Prefix, p.Support)
	}
	return b.String()
}
