// Package experiments contains one driver per table and figure of Plonka &
// Berger (IMC 2015), each regenerating its result from the synthetic world
// and rendering rows comparable with the paper's. EXPERIMENTS.md records
// paper-versus-measured values for every driver.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"v6class/internal/cdnlog"
	"v6class/internal/core"
	"v6class/synth"
)

// Lab wires a synthetic world to the analysis engine and caches generated
// days so the many experiments sharing epochs do not regenerate them. A Lab
// is safe for concurrent use: drivers running in parallel (RunAll) share
// one day cache, and a day is generated exactly once no matter how many
// drivers race for it.
type Lab struct {
	World *synth.World

	mu   sync.Mutex
	days map[int]*labDay
}

// labDay is one cache slot; the once gates generation so concurrent callers
// of Lab.Day block on the generating goroutine instead of duplicating work.
type labDay struct {
	once sync.Once
	log  cdnlog.DayLog
}

// NewLab builds a lab over a fresh world.
func NewLab(cfg synth.Config) *Lab {
	return &Lab{World: synth.NewWorld(cfg), days: make(map[int]*labDay)}
}

// Day returns the aggregated log for a study day, generating it on first
// use. Safe for concurrent use.
func (l *Lab) Day(d int) cdnlog.DayLog {
	l.mu.Lock()
	e := l.days[d]
	if e == nil {
		e = &labDay{}
		l.days[d] = e
	}
	l.mu.Unlock()
	e.once.Do(func() { e.log = l.World.Day(d) })
	return e.log
}

// Census builds a sequential Census ingesting the given inclusive day
// ranges.
func (l *Lab) Census(ranges ...[2]int) *core.Census {
	c := core.NewCensus(core.CensusConfig{StudyDays: l.World.StudyLength()})
	for _, r := range ranges {
		for d := r[0]; d <= r[1]; d++ {
			c.AddDay(l.Day(d))
		}
	}
	return c
}

// ShardedCensus builds a frozen concurrent census over the given inclusive
// day ranges via the sharded ingestion pipeline; it is interchangeable with
// Census for every analysis.
func (l *Lab) ShardedCensus(ranges ...[2]int) *core.ShardedCensus {
	c := core.NewShardedCensus(core.CensusConfig{StudyDays: l.World.StudyLength()})
	var logs []cdnlog.DayLog
	for _, r := range ranges {
		for d := r[0]; d <= r[1]; d++ {
			logs = append(logs, l.Day(d))
		}
	}
	c.AddDays(logs)
	c.Freeze()
	return c
}

// EpochRanges returns the day ranges every stability experiment ingests:
// a ±7-day analysis window around each epoch week.
func EpochRanges() [][2]int {
	return [][2]int{
		{synth.EpochMar2014 - 7, synth.EpochMar2014 + 13},
		{synth.EpochSep2014 - 7, synth.EpochSep2014 + 13},
		{synth.EpochMar2015 - 7, synth.EpochMar2015 + 13},
	}
}

// Epochs returns the three epoch reference days with their labels.
func Epochs() []Epoch {
	return []Epoch{
		{Label: "Mar 2014", Day: synth.EpochMar2014},
		{Label: "Sep 2014", Day: synth.EpochSep2014},
		{Label: "Mar 2015", Day: synth.EpochMar2015},
	}
}

// Epoch is one of the study's three sampling points.
type Epoch struct {
	Label string
	Day   int
}

// WeekAddrs returns the distinct addresses of an epoch week.
func (l *Lab) WeekAddrs(epochDay int) []cdnlog.DayLog {
	logs := make([]cdnlog.DayLog, 0, 7)
	for d := epochDay; d < epochDay+7; d++ {
		logs = append(logs, l.Day(d))
	}
	return logs
}

// fmtCount renders a count the way the paper's tables do: three significant
// figures with a magnitude suffix (e.g. "13.7M", "588K", "1.81B").
func fmtCount(n uint64) string {
	f := float64(n)
	switch {
	case f >= 1e9:
		return trim3(f/1e9) + "B"
	case f >= 1e6:
		return trim3(f/1e6) + "M"
	case f >= 1e3:
		return trim3(f/1e3) + "K"
	}
	return fmt.Sprintf("%d", n)
}

// trim3 formats to three significant figures.
func trim3(f float64) string {
	switch {
	case f >= 100:
		return fmt.Sprintf("%.0f", f)
	case f >= 10:
		return fmt.Sprintf("%.1f", f)
	}
	return fmt.Sprintf("%.2f", f)
}

// fmtPct renders a proportion as the paper does ("9.44%", "0.103%").
func fmtPct(num, den uint64) string {
	if den == 0 {
		return "-"
	}
	p := 100 * float64(num) / float64(den)
	switch {
	case p >= 10:
		return fmt.Sprintf("%.1f%%", p)
	case p >= 1:
		return fmt.Sprintf("%.2f%%", p)
	}
	return fmt.Sprintf("%.3f%%", p)
}

// table renders rows of cells as an aligned text table.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
