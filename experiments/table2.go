package experiments

import (
	"strings"

	"v6class/internal/core"
)

// Table2Cell is one stability figure: a count and its base population.
type Table2Cell struct {
	Count uint64
	Of    uint64
}

// Table2Column is one epoch column of a stability table.
type Table2Column struct {
	Label    string
	Stable3d Table2Cell
	Not3d    Table2Cell
	Stable6m Table2Cell // zero at the first epoch
	Stable1y Table2Cell // only at the last epoch
}

// Table2Result reproduces Table 2: daily and weekly stability of addresses
// and /64 prefixes across the three epochs.
type Table2Result struct {
	AddrDaily  []Table2Column // Table 2a
	P64Daily   []Table2Column // Table 2b
	AddrWeekly []Table2Column // Table 2c
	P64Weekly  []Table2Column // Table 2d
}

// Table2 regenerates the paper's Table 2 from the synthetic world. The
// census ingests a ±7-day window around each epoch week, matching the
// paper's sliding-window methodology.
func Table2(l *Lab) Table2Result {
	c := l.Census(EpochRanges()...)
	epochs := Epochs()
	var res Table2Result
	for i, e := range epochs {
		// Daily stability at the epoch day.
		for _, pop := range []core.Population{core.Addresses, core.Prefixes64} {
			st := c.Stability(pop, e.Day, 3)
			col := Table2Column{
				Label:    e.Label,
				Stable3d: Table2Cell{uint64(st.Stable), uint64(st.Active)},
				Not3d:    Table2Cell{uint64(st.NotStable), uint64(st.Active)},
			}
			// 6m-stable (-6m): active on this epoch day and on the day six
			// months earlier.
			if i > 0 {
				prev := epochs[i-1].Day
				n := uint64(c.EpochStable(pop, prev, prev, e.Day, e.Day))
				col.Stable6m = Table2Cell{n, uint64(st.Active)}
			}
			// 1y-stable (-1y): active on this epoch day and a year earlier.
			if i == 2 {
				first := epochs[0].Day
				n := uint64(c.EpochStable(pop, first, first, e.Day, e.Day))
				col.Stable1y = Table2Cell{n, uint64(st.Active)}
			}
			if pop == core.Addresses {
				res.AddrDaily = append(res.AddrDaily, col)
			} else {
				res.P64Daily = append(res.P64Daily, col)
			}
		}
		// Weekly stability over the epoch week.
		for _, pop := range []core.Population{core.Addresses, core.Prefixes64} {
			wk := c.WeeklyStability(pop, e.Day, 3)
			col := Table2Column{
				Label:    e.Label + " wk",
				Stable3d: Table2Cell{uint64(wk.Stable), uint64(wk.Active)},
				Not3d:    Table2Cell{uint64(wk.NotStable), uint64(wk.Active)},
			}
			if i > 0 {
				prev := epochs[i-1].Day
				n := uint64(c.EpochStable(pop, prev, prev+6, e.Day, e.Day+6))
				col.Stable6m = Table2Cell{n, uint64(wk.Active)}
			}
			if i == 2 {
				first := epochs[0].Day
				n := uint64(c.EpochStable(pop, first, first+6, e.Day, e.Day+6))
				col.Stable1y = Table2Cell{n, uint64(wk.Active)}
			}
			if pop == core.Addresses {
				res.AddrWeekly = append(res.AddrWeekly, col)
			} else {
				res.P64Weekly = append(res.P64Weekly, col)
			}
		}
	}
	return res
}

// Render prints the four sub-tables in the paper's layout.
func (r Table2Result) Render() string {
	var b strings.Builder
	sub := func(title string, cols []Table2Column) {
		b.WriteString(title + "\n")
		header := []string{"class"}
		for _, c := range cols {
			header = append(header, c.Label)
		}
		cell := func(c Table2Cell) string {
			if c.Of == 0 && c.Count == 0 {
				return ""
			}
			return fmtCount(c.Count) + " (" + fmtPct(c.Count, c.Of) + ")"
		}
		rows := [][]string{
			{"3d-stable"}, {"not 3d-stable"}, {"6m-stable (-6m)"}, {"1y-stable (-1y)"},
		}
		for _, c := range cols {
			rows[0] = append(rows[0], cell(c.Stable3d))
			rows[1] = append(rows[1], cell(c.Not3d))
			rows[2] = append(rows[2], cell(c.Stable6m))
			rows[3] = append(rows[3], cell(c.Stable1y))
		}
		b.WriteString(table(header, rows))
		b.WriteByte('\n')
	}
	sub("Table 2a: stability of IPv6 addresses per day", r.AddrDaily)
	sub("Table 2b: stability of /64 prefixes per day", r.P64Daily)
	sub("Table 2c: stability of IPv6 addresses per week", r.AddrWeekly)
	sub("Table 2d: stability of /64 prefixes per week", r.P64Weekly)
	return b.String()
}
