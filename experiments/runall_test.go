package experiments

import (
	"sync"
	"testing"

	"v6class/synth"
)

// TestRunAllParallelMatchesSequential regenerates every driver on one
// worker and on a pool, and requires identical rendered output in
// identical order — the cells are independent, so parallelism must be
// invisible in the results.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every experiment twice")
	}
	l := NewLab(synth.Config{Seed: 7, Scale: 0.01})
	seq := RunAll(l, 1)
	par := RunAll(l, 4)
	if len(seq) != len(par) || len(seq) != len(Drivers()) {
		t.Fatalf("got %d sequential and %d parallel results for %d drivers",
			len(seq), len(par), len(Drivers()))
	}
	for i := range seq {
		if seq[i].Name != par[i].Name {
			t.Fatalf("result %d: name %q vs %q", i, seq[i].Name, par[i].Name)
		}
		if seq[i].Output != par[i].Output {
			t.Errorf("driver %s: parallel output differs from sequential", seq[i].Name)
		}
		if seq[i].Output == "" {
			t.Errorf("driver %s: empty output", seq[i].Name)
		}
	}
}

// TestRunDriver exercises the per-request entry point: named lookup,
// concurrent single-driver runs, and unknown-name errors.
func TestRunDriver(t *testing.T) {
	if _, ok := FindDriver("table1"); !ok {
		t.Fatal("table1 driver not registered")
	}
	if _, ok := FindDriver("bogus"); ok {
		t.Fatal("bogus driver should not resolve")
	}
	names := DriverNames()
	if len(names) != len(Drivers()) || names[0] != "table1" {
		t.Fatalf("DriverNames: %v", names)
	}
	if _, err := RunDriver(nil, "bogus"); err == nil {
		t.Error("unknown driver should error")
	}

	l := NewLab(synth.Config{Seed: 7, Scale: 0.002})
	want, err := RunDriver(l, "table1")
	if err != nil {
		t.Fatal(err)
	}
	if want.Output == "" || want.Name != "table1" {
		t.Fatalf("RunDriver result %+v", want)
	}
	// Per-request means concurrent: same driver from several goroutines
	// over the shared lab must agree (exercised under -race in CI).
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := RunDriver(l, "table1")
			if err != nil || got.Output != want.Output {
				t.Errorf("concurrent RunDriver: err %v, output equal %v", err, got.Output == want.Output)
			}
		}()
	}
	wg.Wait()
}

// TestLabDayConcurrent hammers the shared day cache; with -race this
// verifies the generate-once gate.
func TestLabDayConcurrent(t *testing.T) {
	l := NewLab(synth.Config{Seed: 9, Scale: 0.01})
	want := l.World.Day(3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := 0; d < 6; d++ {
				got := l.Day(3)
				if len(got.Records) != len(want.Records) {
					t.Errorf("Day(3) returned %d records, want %d", len(got.Records), len(want.Records))
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestLabShardedCensusMatchesCensus checks the lab's two census builders
// agree on a representative analysis.
func TestLabShardedCensusMatchesCensus(t *testing.T) {
	l := NewLab(synth.Config{Seed: 8, Scale: 0.01})
	r := [2]int{synth.EpochMar2014 - 7, synth.EpochMar2014 + 13}
	seq := l.Census(r)
	sh := l.ShardedCensus(r)
	for d := r[0]; d <= r[1]; d++ {
		if seq.Summary(d).Total != sh.Summary(d).Total {
			t.Fatalf("Summary(%d) mismatch", d)
		}
	}
	ref := synth.EpochMar2014
	if seq.Stability(0, ref, 3) != sh.Stability(0, ref, 3) {
		t.Fatal("Stability mismatch")
	}
}
