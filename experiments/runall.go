package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Parallel experiment regeneration: every table and figure driver is an
// independent cell, so the full reproduction fans out over a bounded worker
// pool sharing one Lab (whose day cache is concurrency-safe). Results come
// back in registry order regardless of completion order, so sequential and
// parallel runs render identically.

// Driver is one registered experiment: a name and a function regenerating
// the experiment from a lab and rendering it as text.
type Driver struct {
	Name string
	Run  func(*Lab) string
}

// Drivers returns the registry of every table/figure/application driver, in
// the paper's presentation order.
func Drivers() []Driver {
	return []Driver{
		{"table1", func(l *Lab) string { return Table1(l).Render() }},
		{"table2", func(l *Lab) string { return Table2(l).Render() }},
		{"table3", func(l *Lab) string { return Table3(l).Render() }},
		{"figure2", func(l *Lab) string { return Figure2(l).Render() }},
		{"figure3", func(l *Lab) string { return Figure3(l).Render() }},
		{"figure4", func(l *Lab) string { return Figure4(l).Render() }},
		{"figure5a", func(l *Lab) string { return Figure5a(l).Render() }},
		{"figure5b", func(l *Lab) string { return Figure5b(l).Render() }},
		{"figure5c-h", func(l *Lab) string { return Figure5Plots(l).Render() }},
		{"routers", func(l *Lab) string { return RouterDiscovery(l).Render() }},
		{"ptr-harvest", func(l *Lab) string { return PTRHarvest(l).Render() }},
		{"eui64-churn", func(l *Lab) string { return EUI64Churn(l).Render() }},
		{"lsp", func(l *Lab) string { return LongestStablePrefixes(l).Render() }},
		{"signature-census", func(l *Lab) string { return SignatureCensus(l).Render() }},
		{"highlights", func(l *Lab) string { return Highlights(l).Render() }},
		{"growth", func(l *Lab) string { return Growth(l).Render() }},
		{"window-sweep", func(l *Lab) string { return WindowSweep(l).Render() }},
		{"lifetimes", func(l *Lab) string { return Lifetimes(l).Render() }},
	}
}

// FindDriver returns the registered driver with the given name.
func FindDriver(name string) (Driver, bool) {
	for _, d := range Drivers() {
		if d.Name == name {
			return d, true
		}
	}
	return Driver{}, false
}

// DriverNames returns every registered driver name in presentation order.
func DriverNames() []string {
	ds := Drivers()
	names := make([]string, len(ds))
	for i, d := range ds {
		names[i] = d.Name
	}
	return names
}

// RunDriver regenerates one named experiment — the per-request entry point
// used by serving layers, as opposed to the batch RunAll. The Lab is safe
// for concurrent use, so any number of RunDriver calls may run at once.
func RunDriver(l *Lab, name string) (DriverResult, error) {
	d, ok := FindDriver(name)
	if !ok {
		return DriverResult{}, fmt.Errorf("experiments: unknown driver %q", name)
	}
	start := time.Now()
	out := d.Run(l)
	return DriverResult{Name: d.Name, Output: out, Elapsed: time.Since(start)}, nil
}

// DriverResult is one driver's rendered output, with its wall-clock cost
// (measured under whatever pool contention the run had).
type DriverResult struct {
	Name    string
	Output  string
	Elapsed time.Duration
}

// RunAll regenerates every registered experiment on a pool of at most
// workers goroutines (0 means GOMAXPROCS) and returns the results in
// registry order.
func RunAll(l *Lab, workers int) []DriverResult {
	return RunDrivers(l, workers, Drivers())
}

// RunDrivers runs an explicit driver subset on a bounded pool, returning
// results in the given order.
func RunDrivers(l *Lab, workers int, drivers []Driver) []DriverResult {
	out := make([]DriverResult, 0, len(drivers))
	RunDriversStream(l, workers, drivers, func(r DriverResult) { out = append(out, r) })
	return out
}

// RunDriversStream runs a driver subset on a bounded pool, calling emit
// with each result as soon as it and all its predecessors have completed —
// output stays in the given order but streams instead of waiting for the
// slowest driver. emit runs on the calling goroutine.
func RunDriversStream(l *Lab, workers int, drivers []Driver, emit func(DriverResult)) {
	if len(drivers) == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(drivers) {
		workers = len(drivers)
	}
	type indexed struct {
		i int
		r DriverResult
	}
	next := make(chan int)
	results := make(chan indexed, len(drivers))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				d := drivers[i]
				start := time.Now()
				results <- indexed{i, DriverResult{Name: d.Name, Output: d.Run(l), Elapsed: time.Since(start)}}
			}
		}()
	}
	go func() {
		for i := range drivers {
			next <- i
		}
		close(next)
	}()
	pending := make(map[int]DriverResult, len(drivers))
	emitNext := 0
	for received := 0; received < len(drivers); received++ {
		ir := <-results
		pending[ir.i] = ir.r
		for {
			r, ok := pending[emitNext]
			if !ok {
				break
			}
			delete(pending, emitNext)
			emit(r)
			emitNext++
		}
	}
	wg.Wait()
}
