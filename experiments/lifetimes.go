package experiments

import (
	"fmt"
	"strings"

	"v6class/internal/ipaddr"
	"v6class/internal/temporal"
	"v6class/synth"
)

// LifetimesResult quantifies the paper's Section 1 motivation — "the vast
// majority of IPv6 addresses exist for short periods, e.g., 24 hours or
// less, and in all likelihood will never be used again" — over a 15-day
// window: observed lifespans, the single-day share, and the day-over-day
// return probability behind Figure 4's decay.
type LifetimesResult struct {
	Addrs      temporal.LifetimeStats
	P64s       temporal.LifetimeStats
	AddrReturn []float64 // return probability by gap (index = gap days)
	P64Return  []float64
}

// Lifetimes measures address and /64 lifetimes over the final epoch's
// 15-day window.
func Lifetimes(l *Lab) LifetimesResult {
	from := synth.EpochMar2015 - 7
	to := synth.EpochMar2015 + 7
	addrs := temporal.NewStore[ipaddr.Addr](l.World.StudyLength())
	p64s := temporal.NewStore[ipaddr.Prefix](l.World.StudyLength())
	for d := from; d <= to; d++ {
		for _, r := range l.Day(d).Records {
			addrs.Observe(r.Addr, temporal.Day(d))
			p64s.Observe(ipaddr.PrefixFrom(r.Addr, 64), temporal.Day(d))
		}
	}
	return LifetimesResult{
		Addrs:      addrs.Lifetimes(temporal.Day(from), temporal.Day(to)),
		P64s:       p64s.Lifetimes(temporal.Day(from), temporal.Day(to)),
		AddrReturn: addrs.ReturnProbability(temporal.Day(from), temporal.Day(to), 7),
		P64Return:  p64s.ReturnProbability(temporal.Day(from), temporal.Day(to), 7),
	}
}

// Render prints the lifetime comparison.
func (r LifetimesResult) Render() string {
	var b strings.Builder
	b.WriteString("Address and /64 lifetimes over 15 days (Sec 1 motivation):\n")
	line := func(name string, st temporal.LifetimeStats) {
		fmt.Fprintf(&b, "  %-10s %7d keys, %4.1f%% single-day, median span %d day(s)\n",
			name, st.Keys, 100*st.SingleDayShare(), st.MedianSpan())
	}
	line("addresses", r.Addrs)
	line("/64s", r.P64s)
	b.WriteString("  return probability by gap (addresses vs /64s):\n")
	for g := 1; g < len(r.AddrReturn) && g < len(r.P64Return); g++ {
		fmt.Fprintf(&b, "    +%dd: %.3f vs %.3f\n", g, r.AddrReturn[g], r.P64Return[g])
	}
	return b.String()
}
