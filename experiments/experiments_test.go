package experiments

import (
	"fmt"
	"strings"
	"testing"

	"v6class/internal/spatial"
	"v6class/stats"
	"v6class/synth"
)

// labCache shares one small lab across tests; experiments only read from it.
var labCache *Lab

func lab(t *testing.T) *Lab {
	t.Helper()
	if labCache == nil {
		labCache = NewLab(synth.Config{Seed: 7, Scale: 0.1})
	}
	return labCache
}

func TestTable1ShapesMatchPaper(t *testing.T) {
	r := Table1(lab(t))
	if len(r.Daily) != 3 || len(r.Weekly) != 3 {
		t.Fatalf("columns: %d daily, %d weekly", len(r.Daily), len(r.Weekly))
	}
	for i, c := range r.Daily {
		if c.Total == 0 {
			t.Fatalf("daily column %d empty", i)
		}
		// Native transport dominates.
		if frac := float64(c.Other) / float64(c.Total); frac < 0.8 {
			t.Errorf("col %d: native fraction %v", i, frac)
		}
		// Weekly counts exceed daily counts (privacy churn).
		if r.Weekly[i].Total <= c.Total {
			t.Errorf("col %d: weekly %d <= daily %d", i, r.Weekly[i].Total, c.Total)
		}
		// Avg addresses per /64 in a plausible band (paper: 2.4-5.9).
		if c.AvgPer < 1 || c.AvgPer > 10 {
			t.Errorf("col %d: avg per /64 = %v", i, c.AvgPer)
		}
		// Weekly avg per /64 exceeds daily (paper: 2.63 vs 5.88).
		if r.Weekly[i].AvgPer <= c.AvgPer {
			t.Errorf("col %d: weekly avg %v <= daily %v", i, r.Weekly[i].AvgPer, c.AvgPer)
		}
		// MAC count does not exceed EUI-64 address count.
		if c.MACs > c.EUI64 {
			t.Errorf("col %d: MACs %d > EUI64 %d", i, c.MACs, c.EUI64)
		}
	}
	// Growth across the year.
	if r.Daily[2].Total <= r.Daily[0].Total {
		t.Error("population should grow across epochs")
	}
	out := r.Render()
	for _, want := range []string{"Teredo addresses", "6to4 addresses", "ave. addrs per /64", "EUI-64 IIDs (MACs)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable2ShapesMatchPaper(t *testing.T) {
	r := Table2(lab(t))
	if len(r.AddrDaily) != 3 || len(r.P64Daily) != 3 || len(r.AddrWeekly) != 3 || len(r.P64Weekly) != 3 {
		t.Fatal("missing columns")
	}
	for i := range r.AddrDaily {
		a, p := r.AddrDaily[i], r.P64Daily[i]
		if a.Stable3d.Of == 0 || p.Stable3d.Of == 0 {
			t.Fatalf("column %d empty", i)
		}
		addrFrac := float64(a.Stable3d.Count) / float64(a.Stable3d.Of)
		p64Frac := float64(p.Stable3d.Count) / float64(p.Stable3d.Of)
		// The paper's headline: /64s are far stabler than addresses
		// (89.8% vs 9.44% daily).
		if p64Frac <= addrFrac {
			t.Errorf("col %d: /64 stability %v <= addr stability %v", i, p64Frac, addrFrac)
		}
		if addrFrac > 0.5 {
			t.Errorf("col %d: addr 3d-stable fraction %v too high", i, addrFrac)
		}
		if p64Frac < 0.3 {
			t.Errorf("col %d: /64 3d-stable fraction %v too low", i, p64Frac)
		}
		// Partition: stable + not = active.
		if a.Stable3d.Count+a.Not3d.Count != a.Stable3d.Of {
			t.Errorf("col %d: daily partition broken", i)
		}
	}
	// 6m-stable present from the second epoch; 1y-stable only at the last.
	if r.AddrDaily[0].Stable6m.Count != 0 || r.AddrDaily[1].Stable6m.Count == 0 {
		t.Error("6m-stable column placement wrong")
	}
	if r.AddrDaily[2].Stable1y.Count == 0 {
		t.Error("1y-stable missing at final epoch")
	}
	// Weekly address stability is lower than daily in relative terms
	// (papers: 3.82% weekly vs 9.44% daily) because the base is much
	// larger.
	aD := r.AddrDaily[2]
	aW := r.AddrWeekly[2]
	if float64(aW.Stable3d.Count)/float64(aW.Stable3d.Of) >= float64(aD.Stable3d.Count)/float64(aD.Stable3d.Of) {
		t.Error("weekly stable fraction should be below daily")
	}
	// 1y-stable /64 count far exceeds 1y-stable address count.
	if r.P64Weekly[2].Stable1y.Count <= r.AddrWeekly[2].Stable1y.Count {
		t.Error("1y-stable /64s should exceed 1y-stable addresses")
	}
	out := r.Render()
	if !strings.Contains(out, "Table 2a") || !strings.Contains(out, "1y-stable (-1y)") {
		t.Error("render incomplete")
	}
}

func TestTable3ShapesMatchPaper(t *testing.T) {
	r := Table3(lab(t))
	if r.RouterAddrs < 100 {
		t.Fatalf("router dataset = %d", r.RouterAddrs)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i, row := range r.Rows {
		if row.CoveredAddresses > uint64(r.RouterAddrs) {
			t.Errorf("row %d covers more addresses than exist", i)
		}
		if len(row.Prefixes) > 0 && row.Density() <= 0 {
			t.Errorf("row %d density = %v", i, row.Density())
		}
	}
	// Within the /112 family, larger n gives fewer (or equal) dense
	// prefixes — rows 4..9 are 64,32,16,8,4,2 @ /112.
	for i := 4; i < 9; i++ {
		if len(r.Rows[i].Prefixes) > len(r.Rows[i+1].Prefixes) {
			t.Errorf("n@/112 monotonicity broken at row %d", i)
		}
	}
	// Density decreases as the prefix widens at fixed n=2 (rows 9,10,11:
	// /112, /108, /104), as in the paper.
	if r.Rows[9].Density() < r.Rows[10].Density() || r.Rows[10].Density() < r.Rows[11].Density() {
		t.Error("density should fall with wider prefixes")
	}
	// Dense prefixes exist at the classic 2@/112 class.
	if len(r.Rows[9].Prefixes) == 0 {
		t.Error("no 2@/112-dense prefixes found")
	}
	out := r.Render()
	if !strings.Contains(out, "2 @ /112") || !strings.Contains(out, "Possible Addresses") {
		t.Error("render incomplete")
	}
}

func TestFigure2Contrast(t *testing.T) {
	r := Figure2(lab(t))
	// Dept: DHCP addresses packed in the low bits, so the 112-128 16-bit
	// segment carries heavy aggregation; the university's random privacy
	// IIDs leave it near 1.
	uniSeg := seg16Ratio(r.University, 112)
	denseSeg := seg16Ratio(r.DensePack, 112)
	if denseSeg < 4 {
		t.Errorf("dense network 112-128 segment ratio = %v, want large", denseSeg)
	}
	if denseSeg <= uniSeg {
		t.Errorf("dense segment ratio (%v) should exceed university (%v)", denseSeg, uniSeg)
	}
	// University: structured subnetting means the 32-48 segment splits
	// into a limited number of values, far fewer than the 16-bit maximum.
	uni32 := seg16Ratio(r.University, 32)
	if uni32 <= 1 || uni32 > 16384 {
		t.Errorf("university 32-48 segment ratio = %v", uni32)
	}
	if !strings.Contains(r.Render(), "Fig 2a") {
		t.Error("render incomplete")
	}
}

func TestFigure3CurvesMatchPaperShape(t *testing.T) {
	r := Figure3(lab(t))
	if len(r.Curves) != 5 {
		t.Fatalf("curves = %d", len(r.Curves))
	}
	for _, c := range r.Curves {
		if len(c.CCDF) == 0 {
			t.Fatalf("curve %q empty", c.Label)
		}
		if c.CCDF[0].Proportion != 1 {
			t.Errorf("curve %q should start at 1", c.Label)
		}
	}
	// The 112-agg curve must fall off far faster than the 32-agg curve: a
	// tiny share of /112s hold 10+ addresses vs a large share of /32s.
	agg32 := ccdfAt(r.Curves[0].CCDF, 10)
	agg112 := ccdfAt(r.Curves[4].CCDF, 10)
	if agg112 >= agg32 {
		t.Errorf("112-agg P(pop>=10) %v should be far below 32-agg %v", agg112, agg32)
	}
	if !strings.Contains(r.Render(), "112-agg") {
		t.Error("render incomplete")
	}
}

func ccdfAt(c []stats.CCDFPoint, v float64) float64 {
	return stats.CCDFAt(c, v)
}

// fmtSscan parses a "p\tk\tratio" data row.
func fmtSscan(line string, pp, k *int, r *float64) (int, error) {
	return fmt.Sscanf(line, "%d\t%d\t%g", pp, k, r)
}

func TestFigure4StepwiseOverlap(t *testing.T) {
	r := Figure4(lab(t))
	if len(r.Days) != 21 {
		t.Fatalf("window = %d days", len(r.Days))
	}
	// The overlap at the reference day equals that day's active count.
	refIdx := 7
	if r.Addr1[refIdx] != r.ActiveAddrs[refIdx] {
		t.Errorf("ref overlap %d != active %d", r.Addr1[refIdx], r.ActiveAddrs[refIdx])
	}
	// Overlap falls moving away from the reference day (paper's stepwise
	// decline), comparing day 1 away vs 5 away.
	if r.Addr1[refIdx-1] <= r.Addr1[refIdx-5] {
		t.Errorf("overlap should decay with distance: 1-away %d, 5-away %d",
			r.Addr1[refIdx-1], r.Addr1[refIdx-5])
	}
	// /64 overlap declines far more slowly than address overlap.
	addrDecay := float64(r.Addr1[refIdx-1]) / float64(r.Addr1[refIdx])
	p64Decay := float64(r.P641[refIdx-1]) / float64(r.P641[refIdx])
	if p64Decay <= addrDecay {
		t.Errorf("/64 overlap decay %v should exceed addr decay %v", p64Decay, addrDecay)
	}
	if !strings.Contains(r.Render(), "Figure 4") {
		t.Error("render incomplete")
	}
}

func TestFigure5aDominance(t *testing.T) {
	r := Figure5a(lab(t))
	if r.ASNs < 20 {
		t.Fatalf("ASNs = %d", r.ASNs)
	}
	// The paper: top 5 ASNs hold 59% of addresses, 85% of /64s; accept a
	// broad band around dominance.
	if r.Top5AddrShare < 0.35 {
		t.Errorf("top-5 address share = %v", r.Top5AddrShare)
	}
	if r.Top5P64Share < 0.35 {
		t.Errorf("top-5 /64 share = %v", r.Top5P64Share)
	}
	if len(r.Stable64PerASN) == 0 {
		t.Error("no 6m-stable /64 curve")
	}
	if !strings.Contains(r.Render(), "per-ASN") {
		t.Error("render incomplete")
	}
}

func TestFigure5bSegments(t *testing.T) {
	r := Figure5b(lab(t))
	if r.Prefixes < 20 {
		t.Fatalf("prefixes = %d", r.Prefixes)
	}
	// Paper: most aggregation happens between bits 32 and 80; the
	// median ratio of segment 48-64 or 64-80 should dominate segment
	// 0-16 (which is inside every BGP prefix, hence ratio 1).
	if r.Boxes[0].Median > r.Boxes[3].Median {
		t.Errorf("segment 0-16 median %v should not exceed 48-64 median %v",
			r.Boxes[0].Median, r.Boxes[3].Median)
	}
	// The 64-80 segment (privacy IIDs) should show strong aggregation.
	if r.Boxes[4].Median < 2 {
		t.Errorf("segment 64-80 median = %v, want > 2", r.Boxes[4].Median)
	}
	if !strings.Contains(r.Render(), "16-bit segment") {
		t.Error("render incomplete")
	}
}

func TestFigure5PlotsSignatures(t *testing.T) {
	r := Figure5Plots(lab(t))
	// 5e US mobile: dense pool utilization in bits 44-64 => the 48-64
	// 16-bit segment ratio is large.
	mobile48 := seg16Ratio(r.USMobile, 48)
	if mobile48 < 8 {
		t.Errorf("mobile 48-64 segment ratio = %v, want large (dense pools)", mobile48)
	}
	// 5h JP ISP: one active /64 per /48 => 48-64 segment ratio near 1.
	jp48 := seg16Ratio(r.JPISP, 48)
	if jp48 > 2 {
		t.Errorf("JP 48-64 segment ratio = %v, want ~1 (no aggregation)", jp48)
	}
	// 5g dept: aggregation concentrated at 112-128.
	dept112 := seg16Ratio(r.Dept, 112)
	if dept112 < 8 {
		t.Errorf("dept 112-128 segment ratio = %v, want large", dept112)
	}
	// 5d 6to4: the embedded IPv4 bits 16-48 dominate.
	sixToF16 := seg16Ratio(r.SixToF, 16)
	if sixToF16 < 4 {
		t.Errorf("6to4 16-32 segment ratio = %v, want large", sixToF16)
	}
	if !strings.Contains(r.Render(), "Fig 5c") {
		t.Error("render incomplete")
	}
}

// seg16Ratio extracts the 16-bit-segment ratio at p from a plot's data rows.
func seg16Ratio(p interface{ DataRows() string }, at int) float64 {
	var ratio float64
	for _, line := range strings.Split(p.DataRows(), "\n") {
		var pp, k int
		var r float64
		if n, _ := fmtSscan(line, &pp, &k, &r); n == 3 && k == 16 && pp == at {
			ratio = r
		}
	}
	return ratio
}

func TestRouterDiscoveryStableWins(t *testing.T) {
	r := RouterDiscovery(lab(t))
	if r.BaselineRouters == 0 || r.StableRouters == 0 {
		t.Fatalf("empty discovery: %+v", r)
	}
	// The paper's effect: stable targets discover substantially more
	// routers (+129% at paper scale; attenuated here because the shared
	// infrastructure base is proportionally larger in a small world).
	if r.PctMore < 15 {
		t.Errorf("stable strategy gained only %+.0f%%", r.PctMore)
	}
	if !strings.Contains(r.Render(), "3d-stable strategy") {
		t.Error("render incomplete")
	}
}

func TestPTRHarvestFindsExtraNames(t *testing.T) {
	r := PTRHarvest(lab(t))
	if r.DensePrefixes == 0 {
		t.Fatal("no dense prefixes to sweep")
	}
	if r.AdditionalName <= 0 {
		t.Errorf("sweep found no additional names: %+v", r)
	}
	if !strings.Contains(r.Render(), "additional") {
		t.Error("render incomplete")
	}
}

func TestEUI64ChurnShape(t *testing.T) {
	r := EUI64Churn(lab(t))
	if r.NotStableEUI64 == 0 {
		t.Fatal("no not-3d-stable EUI-64 addresses")
	}
	// A substantial share of unstable EUI-64 IIDs recur under other
	// network identifiers (paper: 62%).
	if r.MultiAddrIIDPct < 10 {
		t.Errorf("multi-address IID share = %v%%", r.MultiAddrIIDPct)
	}
	if r.AlsoStableIIDPct < 0 || r.AlsoStableIIDPct > 100 {
		t.Errorf("also-stable share = %v%%", r.AlsoStableIIDPct)
	}
	if !strings.Contains(r.Render(), "EUI-64 churn") {
		t.Error("render incomplete")
	}
}

func TestLongestStablePrefixes(t *testing.T) {
	r := LongestStablePrefixes(lab(t))
	if len(r.Prefixes) == 0 {
		t.Fatal("no stable prefixes discovered")
	}
	// The static ISPs and mobile pools should surface stable prefixes at
	// /48-or-longer granularity.
	deep := 0
	for _, p := range r.Prefixes {
		if p.Prefix.Bits() >= 48 {
			deep++
		}
	}
	if deep == 0 {
		t.Error("no deep stable prefixes found")
	}
	if !strings.Contains(r.Render(), "Longest stable prefixes") {
		t.Error("render incomplete")
	}
}

func TestSignatureCensus(t *testing.T) {
	r := SignatureCensus(lab(t))
	if r.Prefixes < 20 {
		t.Fatalf("prefixes = %d", r.Prefixes)
	}
	// The world contains all the shapes: privacy ISPs, mobile pools, and
	// the dense department must each be recognized somewhere.
	if r.BySignature[spatial.SigPrivacySparse] == 0 {
		t.Error("no privacy-sparse prefixes found")
	}
	if r.BySignature[spatial.SigDensePacked] == 0 {
		t.Error("no dense-packed prefixes found")
	}
	total := 0
	for _, n := range r.BySignature {
		total += n
	}
	if total != r.Prefixes {
		t.Errorf("tallies sum to %d, want %d", total, r.Prefixes)
	}
	if !strings.Contains(r.Render(), "signature census") {
		t.Error("render incomplete")
	}
}

func TestHighlights(t *testing.T) {
	r := Highlights(lab(t))
	// Dominance of the top-5 ASNs (paper: 85% of /64s, 59% of addrs).
	if r.Top5AddrShare < 0.35 || r.Top5AddrShare > 1 {
		t.Errorf("top-5 addr share = %v", r.Top5AddrShare)
	}
	if r.Top5P64Share < 0.35 || r.Top5P64Share > 1 {
		t.Errorf("top-5 /64 share = %v", r.Top5P64Share)
	}
	// A single ASN dominates the 6m-stable /64s (paper: 74%).
	if r.OneASNStable64Share < 0.2 {
		t.Errorf("one-ASN stable-64 share = %v", r.OneASNStable64Share)
	}
	// Mobile /64s are reused within the week (paper's key observation).
	if r.ReusedMobile64Share < 0.5 {
		t.Errorf("mobile reuse share = %v", r.ReusedMobile64Share)
	}
	// Dense client regions exist in a substantial share of ASNs.
	if r.DenseASNShare <= 0 || r.DenseASNShare > 1 {
		t.Errorf("dense ASN share = %v", r.DenseASNShare)
	}
	if !strings.Contains(r.Render(), "highlights") {
		t.Error("render incomplete")
	}
}

func TestGrowth(t *testing.T) {
	r := Growth(lab(t))
	if len(r.Epochs) != 3 {
		t.Fatalf("epochs = %v", r.Epochs)
	}
	// ASNs and addresses grow across the study (the paper's 3,842 ->
	// 4,420 ASNs and near-doubling of addresses).
	if r.ASNs[2] <= r.ASNs[0] {
		t.Errorf("ASNs should grow: %v", r.ASNs)
	}
	if r.Addresses[2] <= r.Addresses[0] {
		t.Errorf("addresses should grow: %v", r.Addresses)
	}
	if r.Countries[0] < 5 {
		t.Errorf("countries = %v", r.Countries)
	}
	if !strings.Contains(r.Render(), "Deployment growth") {
		t.Error("render incomplete")
	}
}

func TestWindowSweep(t *testing.T) {
	r := WindowSweep(lab(t))
	if r.Active == 0 || len(r.Spectrum) != 7 {
		t.Fatalf("sweep = %+v", r)
	}
	// Monotone: nd-stable implies (n-1)d-stable.
	for i := 1; i < len(r.Spectrum); i++ {
		if r.Spectrum[i] > r.Spectrum[i-1] {
			t.Errorf("spectrum not monotone at n=%d: %v", i+1, r.Spectrum)
		}
	}
	// Wider windows find at least as many stable addresses.
	if r.ByWindow[7] < r.ByWindow[3] || r.ByWindow[3] < r.ByWindow[1] {
		t.Errorf("window monotonicity broken: %v", r.ByWindow)
	}
	if !strings.Contains(r.Render(), "parameter sweep") {
		t.Error("render incomplete")
	}
}

func TestLifetimes(t *testing.T) {
	r := Lifetimes(lab(t))
	if r.Addrs.Keys == 0 || r.P64s.Keys == 0 {
		t.Fatal("empty lifetime stats")
	}
	// The paper's motivation: most addresses are short-lived; /64s are
	// far less ephemeral.
	if r.Addrs.SingleDayShare() < 0.3 {
		t.Errorf("single-day address share = %v, want majority-ish", r.Addrs.SingleDayShare())
	}
	if r.P64s.SingleDayShare() >= r.Addrs.SingleDayShare() {
		t.Errorf("/64 single-day share %v should be below address share %v",
			r.P64s.SingleDayShare(), r.Addrs.SingleDayShare())
	}
	// Return probability decays for addresses and stays high for /64s.
	if r.AddrReturn[1] <= r.AddrReturn[5] {
		t.Errorf("address return probability should decay: %v", r.AddrReturn)
	}
	if r.P64Return[1] < r.AddrReturn[1] {
		t.Errorf("/64 return probability %v below address %v", r.P64Return[1], r.AddrReturn[1])
	}
	if !strings.Contains(r.Render(), "lifetimes") {
		t.Error("render incomplete")
	}
}
