package experiments

import (
	"fmt"
	"strings"

	"v6class/internal/ipaddr"
	"v6class/internal/spatial"
	"v6class/probe"
	"v6class/synth"
)

// Table3Classes are the twelve density classes of the paper's Table 3, in
// its row order.
var Table3Classes = []spatial.DensityClass{
	{N: 2, P: 124},
	{N: 3, P: 120},
	{N: 2, P: 120},
	{N: 2, P: 116},
	{N: 64, P: 112},
	{N: 32, P: 112},
	{N: 16, P: 112},
	{N: 8, P: 112},
	{N: 4, P: 112},
	{N: 2, P: 112},
	{N: 2, P: 108},
	{N: 2, P: 104},
}

// Table3Result reproduces Table 3: dense prefixes identified at various
// densities over the router-address dataset.
type Table3Result struct {
	RouterAddrs int
	Rows        []spatial.DensityResult
	// Dataset is the router-address set, exposed for the downstream PTR
	// harvesting experiment.
	Dataset []ipaddr.Addr
}

// RouterDatasetFor synthesizes the Section 4.2 router dataset: probing in
// "February 2015" (a month before the last epoch) against the paper's three
// target types — resolvers, CDN-server-location proxies, and a mix of WWW
// client addresses including previously identified stable ones.
func RouterDatasetFor(l *Lab) []ipaddr.Addr {
	probeDay := synth.EpochMar2015 - 28
	topo := probe.NewTopology(l.World, probeDay)

	// Client targets: actives from the probe day plus stable addresses
	// identified at the earlier epochs (the paper's 18M-target mix).
	targets := l.Day(probeDay).Addrs()
	c := l.Census([2]int{synth.EpochSep2014 - 7, synth.EpochSep2014 + 7})
	targets = append(targets, c.StableAddrs(synth.EpochSep2014, 3)...)
	return topo.RouterDataset(targets)
}

// Table3 regenerates the paper's Table 3.
func Table3(l *Lab) Table3Result {
	routers := RouterDatasetFor(l)
	var set spatial.AddressSet
	for _, a := range routers {
		set.Add(a)
	}
	res := Table3Result{RouterAddrs: len(routers), Dataset: routers}
	for _, cls := range Table3Classes {
		res.Rows = append(res.Rows, set.DenseFixed(cls))
	}
	return res
}

// Render prints the table in the paper's column layout.
func (r Table3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: dense prefixes for %s router addresses\n", fmtCount(uint64(r.RouterAddrs)))
	header := []string{"Density Class", "Dense Prefixes", "Router Addresses", "Possible Addresses", "Address Density"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Class.String(),
			fmtCount(uint64(len(row.Prefixes))),
			fmtCount(row.CoveredAddresses),
			fmtCount(uint64(row.PossibleAddresses)),
			fmt.Sprintf("%.10f", row.Density()),
		})
	}
	b.WriteString(table(header, rows))
	return b.String()
}
