module v6class

go 1.24
