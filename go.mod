module v6class

// 1.23 so CI's version matrix (1.23, 1.24) exercises both supported
// toolchains; the code uses no 1.24-only language features or APIs.
go 1.23
