package v6class

import (
	"fmt"
	"io"

	"v6class/internal/cdnlog"
)

// The live write path: a frozen Engine spawns an ingesting successor
// generation (Successor) that layers new daily logs over the predecessor's
// immutable state while the predecessor keeps serving reads; freezing the
// successor yields the next query-ready generation. The successor also
// answers the incremental spatial query (SpatialSetFrom) that lets a
// serving layer extend a predecessor's AddressSet by the generation's
// delta — a clone plus O(|delta|) trie inserts — instead of rebuilding it
// from the whole population.

// LiveEngine is the Engine of a successor generation: the full Engine
// lifecycle plus the generational delta query.
type LiveEngine interface {
	Engine

	// SpatialSetFrom is SpatialSet(pop, days...) computed incrementally
	// from base, the predecessor generation's set for the SAME population
	// and day selection: base is cloned and the keys newly qualifying this
	// generation (active on a selected day now, on none of them before) are
	// absorbed. Because a radix trie's shape is a pure function of the item
	// set, the result is bit-identical to SpatialSet built from scratch.
	// A nil base falls back to the full build. Requires Freeze; base is
	// never modified.
	SpatialSetFrom(base *AddressSet, pop Population, days ...int) (*AddressSet, error)
}

// Successor returns an ingesting LiveEngine layered over parent, which must
// be a frozen Engine constructed by this package (New, Open, or a previous
// Successor). The parent is not mutated and keeps answering queries
// throughout the successor's lifecycle; the two generations share the
// parent's immutable slabs until the successor freezes, so the successor's
// memory cost during ingestion is proportional to the new days' churn, not
// the whole population.
func Successor(parent Engine) (LiveEngine, error) {
	e, ok := parent.(*engine)
	if !ok {
		return nil, fmt.Errorf("%w: Successor requires an Engine constructed by this package", ErrConfig)
	}
	if !e.Frozen() {
		return nil, ErrNotFrozen
	}
	child := &engine{opts: e.opts, keep: e.keep}
	switch {
	case e.sh != nil:
		child.sh = e.sh.Successor()
		child.a = child.sh
	case e.seq != nil:
		child.seq = e.seq.Successor()
		child.a = child.seq
	default:
		// FromAnalyzer over a foreign Analyzer: no concrete census to layer
		// over.
		return nil, fmt.Errorf("%w: Successor requires an Engine backed by a census, not a foreign Analyzer", ErrConfig)
	}
	return child, nil
}

// SpatialSetFrom implements LiveEngine. The delta is exactly the set of
// keys whose day words gained their first selected-day bit this generation:
// a key already active on any selected day in the predecessor is already in
// base, and the day-mask sweeps deduplicate, so each qualifying key is
// absorbed exactly once with count 1 — matching the from-scratch build.
func (e *engine) SpatialSetFrom(base *AddressSet, pop Population, days ...int) (*AddressSet, error) {
	if err := e.popQuery(pop); err != nil {
		return nil, err
	}
	if base == nil {
		return e.SpatialSet(pop, days...)
	}
	// The selected-day mask, mirroring the temporal layer's dayMask:
	// out-of-period days are skipped, so the qualification test agrees with
	// the full build's sweep for every selection, including degenerate ones.
	stride := (e.a.StudyDays() + 63) / 64
	mask := make([]uint64, stride)
	for _, d := range days {
		if d >= 0 && d < e.a.StudyDays() {
			mask[d/64] |= 1 << (uint(d) % 64)
		}
	}
	hit := func(w []uint64) bool {
		for i, m := range mask {
			if m != 0 && w[i]&m != 0 {
				return true
			}
		}
		return false
	}
	var delta AddressSet
	if pop == Prefixes64 {
		e.a.ChangedPrefix64s(func(p Prefix, prev, cur []uint64) bool {
			if hit(cur) && !hit(prev) {
				delta.AddPrefix(p)
			}
			return true
		})
	} else {
		e.a.ChangedAddrs(func(a Addr, prev, cur []uint64) bool {
			if hit(cur) && !hit(prev) {
				delta.Add(a)
			}
			return true
		})
	}
	out := base.Clone()
	out.Absorb(&delta)
	return out, nil
}

// ParseLogs parses aggregated daily logs ("#day N" sections, the text
// format of ReadLogs) from a stream — the ingest-endpoint form of ReadLogs,
// which reads files.
func ParseLogs(r io.Reader) ([]DayLog, error) { return cdnlog.ReadAll(r) }
