package synth

import (
	"testing"

	"v6class/internal/addrclass"
	"v6class/internal/cdnlog"
	"v6class/internal/temporal"
)

func testWorld() *World {
	return NewWorld(Config{Seed: 7, Scale: 0.02})
}

func TestWorldConstruction(t *testing.T) {
	w := testWorld()
	if len(w.Operators) < 45 {
		t.Fatalf("only %d operators", len(w.Operators))
	}
	if w.Table.Len() < 50 {
		t.Errorf("only %d BGP prefixes", w.Table.Len())
	}
	if _, i := w.OperatorByName("us-mobile-1"); i < 0 {
		t.Error("us-mobile-1 missing")
	}
	if op, _ := w.OperatorByName("no-such"); op != nil {
		t.Error("unknown operator should be nil")
	}
	if w.StudyLength() != StudyDays {
		t.Errorf("StudyLength = %d", w.StudyLength())
	}
}

func TestWorldDeterminism(t *testing.T) {
	w1 := testWorld()
	w2 := testWorld()
	d1 := w1.Day(EpochMar2015)
	d2 := w2.Day(EpochMar2015)
	if len(d1.Records) != len(d2.Records) {
		t.Fatalf("different record counts: %d vs %d", len(d1.Records), len(d2.Records))
	}
	for i := range d1.Records {
		if d1.Records[i] != d2.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	// A different seed must differ.
	w3 := NewWorld(Config{Seed: 8, Scale: 0.02})
	d3 := w3.Day(EpochMar2015)
	if len(d3.Records) == len(d1.Records) {
		same := true
		for i := range d1.Records {
			if d1.Records[i] != d3.Records[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical logs")
		}
	}
}

func TestDayCompositionMatchesPaperShape(t *testing.T) {
	w := testWorld()
	day := w.Day(EpochMar2015)
	if len(day.Records) < 500 {
		t.Fatalf("day too small: %d records", len(day.Records))
	}
	sum := addrclass.Summarize(day.Addrs())

	// Native transport dominates (paper: >90% "Other").
	native := float64(sum.Native()) / float64(sum.Total)
	if native < 0.85 {
		t.Errorf("native fraction = %v, want > 0.85", native)
	}
	// 6to4 is the only significant transition mechanism (paper: ~4-8%
	// daily, Teredo and ISATAP well under 1%).
	sixToFour := float64(sum.ByKind[addrclass.Kind6to4]) / float64(sum.Total)
	if sixToFour < 0.005 || sixToFour > 0.15 {
		t.Errorf("6to4 fraction = %v, want a few percent", sixToFour)
	}
	teredo := float64(sum.ByKind[addrclass.KindTeredo]) / float64(sum.Total)
	if teredo > 0.01 {
		t.Errorf("teredo fraction = %v, want tiny", teredo)
	}
	isatap := float64(sum.ByKind[addrclass.KindISATAP]) / float64(sum.Total)
	if isatap > 0.02 {
		t.Errorf("isatap fraction = %v, want tiny", isatap)
	}
	// EUI-64 present but a small share of native (paper: ~1-2%).
	eui := float64(sum.ByKind[addrclass.KindEUI64]) / float64(sum.Total)
	if eui < 0.001 || eui > 0.35 {
		t.Errorf("EUI-64 fraction = %v", eui)
	}
}

func TestGrowthAcrossEpochs(t *testing.T) {
	w := testWorld()
	d14 := len(w.Day(EpochMar2014).Records)
	d15 := len(w.Day(EpochMar2015).Records)
	if d15 <= d14 {
		t.Errorf("population should grow: Mar14=%d Mar15=%d", d14, d15)
	}
	// Paper: daily addresses roughly doubled over the year.
	ratio := float64(d15) / float64(d14)
	if ratio < 1.3 || ratio > 3.5 {
		t.Errorf("growth ratio = %v, want around 2", ratio)
	}
}

func TestWeeklyExceedsDaily(t *testing.T) {
	w := testWorld()
	week := w.Days(EpochMar2015, EpochMar2015+7)
	uniq := len(cdnlog.UniqueAddrs(week))
	daily := len(week[0].Records)
	// Paper: weekly uniques ~5-6x daily (privacy churn).
	if uniq < daily*2 {
		t.Errorf("weekly uniques %d vs daily %d: churn too low", uniq, daily)
	}
	if uniq > daily*10 {
		t.Errorf("weekly uniques %d vs daily %d: churn too high", uniq, daily)
	}
}

func TestTopASNsDominate(t *testing.T) {
	w := testWorld()
	day := w.Day(EpochMar2015)
	byASN := w.Table.GroupByASN(day.Addrs())
	if n := len(byASN[0]); n > 0 {
		t.Errorf("%d addresses matched no BGP prefix", n)
	}
	// Count addresses of the top named operators.
	top := 0
	for _, name := range []string{"us-mobile-1", "us-mobile-2", "eu-isp", "jp-isp", "us-isp"} {
		op, _ := w.OperatorByName(name)
		top += len(byASN[op.ASN])
	}
	frac := float64(top) / float64(len(day.Records))
	if frac < 0.4 {
		t.Errorf("top-5 share = %v, want dominant (paper: 59%%)", frac)
	}
}

func TestOperatorStartDayGating(t *testing.T) {
	w := testWorld()
	early, late := 0, 0
	for i, op := range w.Operators {
		if op.StartDay == 0 {
			continue
		}
		if len(w.OperatorDay(i, op.StartDay-1)) != 0 {
			early++
		}
		if op.StartDay < w.StudyLength() && len(w.OperatorDay(i, op.StartDay+5)) == 0 {
			late++
		}
	}
	if early > 0 {
		t.Errorf("%d operators active before StartDay", early)
	}
}

func TestScaleFloor(t *testing.T) {
	w := NewWorld(Config{Seed: 1, Scale: 0.0001})
	for _, op := range w.Operators {
		if op.Subscribers < 1 {
			t.Errorf("operator %s scaled to zero subscribers", op.Name)
		}
	}
}

func TestMergedHitsAcrossOperators(t *testing.T) {
	// Teredo/6to4 worlds can in principle collide; the aggregator must sum
	// rather than duplicate. Just assert records are unique by address.
	w := testWorld()
	day := w.Day(EpochMar2015)
	seen := make(map[string]bool, len(day.Records))
	for _, r := range day.Records {
		k := r.Addr.String()
		if seen[k] {
			t.Fatalf("duplicate record for %s", k)
		}
		seen[k] = true
	}
}

func TestTimestampSlew(t *testing.T) {
	base := NewWorld(Config{Seed: 7, Scale: 0.02})
	slewed := NewWorld(Config{Seed: 7, Scale: 0.02, SlewProb: 0.3})
	day := EpochMar2015

	// The slewed world's log for a day is a mix of that day's and the
	// previous day's activity.
	rawToday := map[string]bool{}
	for _, r := range base.Day(day).Records {
		rawToday[r.Addr.String()] = true
	}
	rawYesterday := map[string]bool{}
	for _, r := range base.Day(day - 1).Records {
		rawYesterday[r.Addr.String()] = true
	}
	fromToday, fromYesterday, other := 0, 0, 0
	for _, r := range slewed.Day(day).Records {
		switch s := r.Addr.String(); {
		case rawToday[s]:
			fromToday++
		case rawYesterday[s]:
			fromYesterday++
		default:
			other++
		}
	}
	if fromYesterday == 0 {
		t.Error("slew should pull some of yesterday's observations forward")
	}
	if fromToday == 0 {
		t.Error("most of today should still be present")
	}
	// Only day-0-adjacent activity can appear; nothing invented.
	if float64(other) > 0.02*float64(fromToday+fromYesterday) {
		t.Errorf("unexplained records: %d (today %d, yesterday %d)", other, fromToday, fromYesterday)
	}
	// Slew must preserve determinism.
	a := slewed.Day(day)
	b := NewWorld(Config{Seed: 7, Scale: 0.02, SlewProb: 0.3}).Day(day)
	if len(a.Records) != len(b.Records) {
		t.Error("slewed day not deterministic")
	}
}

func TestSlewHeuristicCompensates(t *testing.T) {
	// With slew, a same-address pair at gap g may really be gap g±1; the
	// SlewDays option demands one extra day of separation. Verify the
	// conservative classifier never reports more stable addresses than
	// the plain one on slewed data.
	w := NewWorld(Config{Seed: 7, Scale: 0.02, SlewProb: 0.25})
	plain := temporal.NewStore[string](StudyDays)
	for d := EpochMar2015 - 7; d <= EpochMar2015+7; d++ {
		for _, r := range w.Day(d).Records {
			plain.Observe(r.Addr.String(), temporal.Day(d))
		}
	}
	ref := temporal.Day(EpochMar2015)
	loose := plain.ClassifyDay(ref, 3, temporal.Options{})
	tight := plain.ClassifyDay(ref, 3, temporal.Options{SlewDays: 1})
	if tight.Stable > loose.Stable {
		t.Errorf("slew-aware classification (%d) should not exceed plain (%d)",
			tight.Stable, loose.Stable)
	}
	if tight.Stable == 0 {
		t.Error("slew-aware classification should still find stable addresses")
	}
}
