// Package synth assembles the synthetic Internet that stands in for the
// study's proprietary data sources (Section 4 of Plonka & Berger, IMC 2015):
// a world of network operators with realistic addressing plans, a BGP table
// attributing prefixes to origin ASNs, and a generator producing the CDN's
// aggregated daily logs for any study day on demand.
//
// The default world reproduces the population structure the paper reports —
// two dominant mobile carriers with dynamic /64 pools, large European,
// Japanese and American ISPs, a structured university, a DHCPv6 department,
// a 6to4 client cloud, and a long tail of smaller networks — at a
// configurable scale (the paper's hundreds of millions of daily addresses
// scale down by roughly four orders of magnitude by default).
package synth

import (
	"fmt"
	"runtime"
	"sync"

	"v6class/bgp"
	"v6class/internal/cdnlog"
	"v6class/internal/ipaddr"
	"v6class/internal/netmodel"
)

// Study epoch day indices. The study timeline places the paper's three
// sampling epochs with a 7-day analysis margin before the first.
const (
	// StudyDays is the length of the simulated study period.
	StudyDays = 392
	// EpochMar2014 is the day index of "March 17, 2014".
	EpochMar2014 = 7
	// EpochSep2014 is the day index of "September 17, 2014" (+6 months).
	EpochSep2014 = 191
	// EpochMar2015 is the day index of "March 17, 2015" (+1 year).
	EpochMar2015 = 372
)

// Config parameterizes world construction.
type Config struct {
	// Seed drives all deterministic choices. Worlds with equal configs
	// are identical.
	Seed uint64
	// Scale multiplies every operator's subscriber population. 1.0 is
	// the "medium" world (~50K daily addresses); tests use much smaller
	// values.
	Scale float64
	// StudyDays overrides the study length; 0 means StudyDays.
	StudyDays int
	// SlewProb is the probability an observation is attributed to the
	// following day's aggregated log rather than its activity day,
	// modelling the paper's timestamp slew: "the time epoch of the
	// completion of processing ... might be offset by as much as a day
	// from when the requests actually occurred" (Section 4.1).
	SlewProb float64
}

func (c Config) studyDays() int {
	if c.StudyDays > 0 {
		return c.StudyDays
	}
	return StudyDays
}

// World is the assembled synthetic Internet.
type World struct {
	Cfg       Config
	Operators []*netmodel.Operator
	Table     *bgp.Table
}

// scaled returns n scaled by the config, with a floor of 1.
func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

func mustPfx(s string) ipaddr.Prefix {
	p, err := ipaddr.ParsePrefix(s)
	if err != nil {
		panic(fmt.Sprintf("synth: bad prefix literal %q: %v", s, err))
	}
	return p
}

// NewWorld builds the default operator roster at the configured scale.
func NewWorld(cfg Config) *World {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	w := &World{Cfg: cfg, Table: &bgp.Table{}}

	// Two dominant U.S. mobile carriers (Figure 5e): dynamic /64 pools
	// across many /44s, fixed device IIDs from a small shared set.
	mobile1Pools := make([]ipaddr.Prefix, 8)
	for i := range mobile1Pools {
		mobile1Pools[i] = mustPfx(fmt.Sprintf("2600:10%x0::/44", i))
	}
	w.add(&netmodel.Operator{
		Name: "us-mobile-1", ASN: 64501, Country: "US",
		Prefixes: mobile1Pools,
		Plan: &netmodel.MobilePlan{
			Pools: mobile1Pools, PoolBits: poolBits(cfg.scaled(12000), 8),
			FixedIIDs: 48, EUI64Frac: 0.10, PrivacyFrac: 0.25,
		},
		Subscribers: cfg.scaled(12000), Growth: 2.1, ActiveDaily: 0.7,
	})
	mobile2Pools := make([]ipaddr.Prefix, 4)
	for i := range mobile2Pools {
		mobile2Pools[i] = mustPfx(fmt.Sprintf("2600:20%x0::/44", i))
	}
	w.add(&netmodel.Operator{
		Name: "us-mobile-2", ASN: 64502, Country: "US",
		Prefixes: mobile2Pools,
		Plan: &netmodel.MobilePlan{
			Pools: mobile2Pools, PoolBits: poolBits(cfg.scaled(7000), 4),
			FixedIIDs: 64, EUI64Frac: 0.08, PrivacyFrac: 0.3,
		},
		Subscribers: cfg.scaled(7000), Growth: 2.3, ActiveDaily: 0.65,
	})

	// The European ISP with on-demand pseudorandom subnet rotation
	// (Figure 5f).
	w.add(&netmodel.Operator{
		Name: "eu-isp", ASN: 64503, Country: "DE",
		Prefixes: []ipaddr.Prefix{mustPfx("2a02:8000::/24")},
		Plan: &netmodel.PrivacySubnetISPPlan{
			Base: mustPfx("2a02:8000::/24"), Pops: 48,
			MeanRotationDays: 45, HostsMax: 5, EUI64Prob: 0.05, StaticHostProb: 0.08, RFC7217Prob: 0.06,
		},
		Subscribers: cfg.scaled(6000), Growth: 1.8, ActiveDaily: 0.65,
	})

	// The Japanese ISP with static per-subscriber /48s (Figure 5h).
	jpBases := []ipaddr.Prefix{mustPfx("2400:2650::/32"), mustPfx("2400:2651::/32")}
	w.add(&netmodel.Operator{
		Name: "jp-isp", ASN: 64504, Country: "JP",
		Prefixes:    jpBases,
		Plan:        &netmodel.StaticISPPlan{Bases: jpBases, HostsMax: 5, EUI64Prob: 0.06, StaticHostProb: 0.12},
		Subscribers: cfg.scaled(5000), Growth: 1.7, ActiveDaily: 0.6,
	})

	// A large U.S. cable ISP, statically addressed.
	usBases := []ipaddr.Prefix{mustPfx("2601:0100::/32"), mustPfx("2601:0200::/32")}
	w.add(&netmodel.Operator{
		Name: "us-isp", ASN: 64505, Country: "US",
		Prefixes:    usBases,
		Plan:        &netmodel.StaticISPPlan{Bases: usBases, HostsMax: 5, EUI64Prob: 0.04, StaticHostProb: 0.10},
		Subscribers: cfg.scaled(4000), Growth: 2.0, ActiveDaily: 0.6,
	})

	// The U.S. university with a structured plan using three nybble
	// values (Figure 2a).
	w.add(&netmodel.Operator{
		Name: "us-university", ASN: 64510, Country: "US",
		Prefixes: []ipaddr.Prefix{mustPfx("2607:f010::/32")},
		Plan: &netmodel.UniversityPlan{
			Base: mustPfx("2607:f010::/32"), NybbleValues: []uint64{0x0, 0x1, 0x8},
			Departments: 200, HostsMax: 6,
		},
		Subscribers: cfg.scaled(400), Growth: 1.4, ActiveDaily: 0.5,
	})

	// The European university department on DHCPv6 in one /64
	// (Figure 5g). Population is the department itself.
	w.add(&netmodel.Operator{
		Name: "eu-univ-dept", ASN: 64511, Country: "NL",
		Prefixes: []ipaddr.Prefix{mustPfx("2a00:1450:100::/48")},
		Plan: &netmodel.DHCPDensePlan{
			Network: mustPfx("2a00:1450:100:64::/64"), PoolBase: 0x1000,
			Hosts: 110, ActiveProb: 0.75,
		},
		Subscribers: 1, Growth: 1, ActiveDaily: 1,
	})

	// The 6to4 client cloud (Figure 5d); its reserved /16 is attributed
	// to the relay operators' ASN for segregation, as the paper does.
	w.add(&netmodel.Operator{
		Name: "6to4-clients", ASN: 64520, Country: "ZZ",
		Prefixes: []ipaddr.Prefix{mustPfx("2002::/16")},
		Plan: &netmodel.SixToFourPlan{
			V4Pools:      []uint32{0xc633, 0xcb00, 0x1801, 0x2e04, 0x5bcd},
			RenumberDays: 10,
		},
		Subscribers: cfg.scaled(2500), Growth: 0.9, ActiveDaily: 0.5,
	})

	// Residual Teredo and ISATAP populations (Table 1's top rows).
	w.add(&netmodel.Operator{
		Name: "teredo-clients", ASN: 64521, Country: "ZZ",
		Prefixes:    []ipaddr.Prefix{mustPfx("2001::/32")},
		Plan:        &netmodel.TeredoPlan{},
		Subscribers: cfg.scaled(60), Growth: 4.0, ActiveDaily: 0.4,
	})
	w.add(&netmodel.Operator{
		Name: "isatap-enterprise", ASN: 64522, Country: "US",
		Prefixes: []ipaddr.Prefix{mustPfx("2620:0100::/44")},
		Plan: &netmodel.ISATAPPlan{
			Base: mustPfx("2620:0100::/48"), V4Base: 0x0a00,
		},
		Subscribers: cfg.scaled(120), Growth: 1.3, ActiveDaily: 0.5,
	})

	// A long tail of smaller ISPs with varied plans and countries; a
	// third of them appear mid-study, modelling ASN growth (the paper
	// sees 3,842 -> 4,420 active ASNs over the year).
	countries := []string{"US", "DE", "JP", "FR", "GB", "BR", "IN", "CN", "AU", "CA", "SE", "NL", "CZ", "PL", "KR", "MX", "ZA", "IT", "ES", "NO"}
	for i := 0; i < 40; i++ {
		base := mustPfx(fmt.Sprintf("2a0c:%x00::/32", 0x10+i))
		subs := cfg.scaled(150 + (i*331)%1100)
		startDay := 0
		if i%3 == 2 {
			startDay = 60 + (i*37)%280
		}
		var plan netmodel.Plan
		switch i % 4 {
		case 0:
			plan = &netmodel.StaticISPPlan{Bases: []ipaddr.Prefix{base}, HostsMax: 3, EUI64Prob: 0.05, StaticHostProb: 0.10, RFC7217Prob: 0.05}
		case 1:
			plan = &netmodel.PrivacySubnetISPPlan{
				Base: ipaddr.PrefixFrom(base.Addr(), 24), Pops: 8,
				MeanRotationDays: 60, HostsMax: 2, EUI64Prob: 0.04, StaticHostProb: 0.08, RFC7217Prob: 0.05,
			}
		case 2:
			plan = &netmodel.MobilePlan{
				Pools: []ipaddr.Prefix{ipaddr.PrefixFrom(base.Addr(), 44)}, PoolBits: poolBits(subs, 1),
				FixedIIDs: 32, EUI64Frac: 0.08, PrivacyFrac: 0.2,
			}
		default:
			plan = &netmodel.UniversityPlan{
				Base: base, NybbleValues: []uint64{0x0, 0x4, 0xc},
				Departments: 60, HostsMax: 4,
			}
		}
		w.add(&netmodel.Operator{
			Name: fmt.Sprintf("tail-isp-%02d", i), ASN: bgp.ASN(64600 + i),
			Country:     countries[i%len(countries)],
			Prefixes:    []ipaddr.Prefix{base},
			Plan:        plan,
			Subscribers: subs, Growth: 1.2 + float64(i%7)*0.2,
			ActiveDaily: 0.45 + float64(i%5)*0.08,
			StartDay:    startDay,
		})
	}
	return w
}

// poolBits sizes a mobile pool: enough /64 slots per pool prefix to hold
// about 1.5x the per-pool subscriber share, so that daily reassignment
// keeps pools densely utilized (the Figure 5e signature).
func poolBits(subs, pools int) int {
	perPool := subs * 3 / 2 / pools
	b := 1
	for 1<<b < perPool {
		b++
	}
	if b > 20 { // a /44 has 2^20 /64s
		b = 20
	}
	return b
}

// add registers an operator and announces its prefixes.
func (w *World) add(op *netmodel.Operator) {
	w.Operators = append(w.Operators, op)
	for _, p := range op.Prefixes {
		w.Table.Add(p, op.ASN, op.Name)
	}
}

// Env returns the hashing environment for operator index i.
func (w *World) Env(i int) netmodel.Env {
	return netmodel.Env{Seed: w.Cfg.Seed, OpID: uint64(i + 1), StudyDays: w.Cfg.studyDays()}
}

// StudyLength returns the configured study period in days.
func (w *World) StudyLength() int { return w.Cfg.studyDays() }

// OperatorDay generates operator i's observations for a day.
func (w *World) OperatorDay(i, day int) []netmodel.Observation {
	return w.Operators[i].Day(w.Env(i), day)
}

// Day generates the full aggregated log for one study day, merging all
// operators (duplicate addresses across operators sum their hits, as the
// CDN's aggregation would). With a nonzero SlewProb, a slice of each day's
// observations lands in the following day's log instead.
// Operators generate concurrently; the aggregation step makes the result
// deterministic regardless of completion order.
func (w *World) Day(day int) cdnlog.DayLog {
	perOp := make([][]netmodel.Observation, len(w.Operators))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range w.Operators {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			perOp[i] = w.operatorDaySlewed(i, day)
		}(i)
	}
	wg.Wait()

	agg := cdnlog.NewAggregator()
	for _, obs := range perOp {
		for _, o := range obs {
			agg.Add(day, o.Addr, o.Hits)
		}
	}
	return agg.Day(day)
}

// operatorDaySlewed returns operator i's observations attributed to the
// given log day, applying timestamp slew when configured.
func (w *World) operatorDaySlewed(i, day int) []netmodel.Observation {
	if w.Cfg.SlewProb <= 0 {
		return w.OperatorDay(i, day)
	}
	var out []netmodel.Observation
	// Today's observations that are processed on time...
	for _, o := range w.OperatorDay(i, day) {
		if !w.slewed(o, day) {
			out = append(out, o)
		}
	}
	// ...plus yesterday's that slipped into today's aggregation.
	if day > 0 {
		for _, o := range w.OperatorDay(i, day-1) {
			if w.slewed(o, day-1) {
				out = append(out, o)
			}
		}
	}
	return out
}

// slewed reports whether an observation of a given activity day lands in
// the next day's log.
func (w *World) slewed(o netmodel.Observation, day int) bool {
	u := o.Addr.Uint128()
	return netmodel.HashChance(w.Cfg.SlewProb, w.Cfg.Seed, u.Hi, u.Lo, uint64(day), 0x51e3)
}

// Days generates a contiguous range of daily logs [from, to).
func (w *World) Days(from, to int) []cdnlog.DayLog {
	out := make([]cdnlog.DayLog, 0, to-from)
	for d := from; d < to; d++ {
		out = append(out, w.Day(d))
	}
	return out
}

// OperatorByName returns the operator and its index, or nil and -1.
func (w *World) OperatorByName(name string) (*netmodel.Operator, int) {
	for i, op := range w.Operators {
		if op.Name == name {
			return op, i
		}
	}
	return nil, -1
}
