package v6class

import (
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// Persistence benchmarks over the million-address ingest world: cold Open
// of both on-disk formats, and serialization of the default format. The
// point of format v2 is visible here — Open(v1) decodes the whole stream
// back into fresh stores, Open(v2) maps the file and adopts the sections
// in place, so its cost is near-constant in the census size.

var (
	persistBenchOnce sync.Once
	persistBenchEng  Engine
	persistV1Path    string
	persistV2Path    string
	persistBenchErr  error
)

// persistBench builds the benchmark census once per process and saves it
// in both formats. The temp directory lives until process exit, like every
// per-process benchmark fixture.
func persistBench(tb testing.TB) (eng Engine, v1, v2 string) {
	tb.Helper()
	persistBenchOnce.Do(func() {
		logs, _ := ingestWorld()
		e, err := New(WithStudyDays(ingestStudyDays), WithSequential())
		if err != nil {
			persistBenchErr = err
			return
		}
		if err := e.AddDays(logs); err != nil {
			persistBenchErr = err
			return
		}
		dir, err := os.MkdirTemp("", "v6class-persist-bench-")
		if err != nil {
			persistBenchErr = err
			return
		}
		persistV1Path = filepath.Join(dir, "census.v1")
		persistV2Path = filepath.Join(dir, "census.v2")
		if err := SaveSnapshot(e, persistV1Path, FormatV1); err != nil {
			persistBenchErr = err
			return
		}
		if err := SaveSnapshot(e, persistV2Path, FormatV2); err != nil {
			persistBenchErr = err
			return
		}
		persistBenchEng = e
	})
	if persistBenchErr != nil {
		tb.Fatal(persistBenchErr)
	}
	return persistBenchEng, persistV1Path, persistV2Path
}

// benchOpen measures a cold Open of path; SetBytes reports throughput
// against the file size so the two formats compare as MB/s too.
func benchOpen(b *testing.B, path string) {
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fi.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := Open(path, WithSequential())
		if err != nil {
			b.Fatal(err)
		}
		if eng.StudyDays() != ingestStudyDays {
			b.Fatal("bad snapshot")
		}
	}
}

func BenchmarkOpenV1(b *testing.B) {
	_, v1, _ := persistBench(b)
	benchOpen(b, v1)
}

func BenchmarkOpenV2(b *testing.B) {
	_, _, v2 := persistBench(b)
	benchOpen(b, v2)
}

// BenchmarkSaveV2 measures serializing the census into the v2 layout (the
// Save path minus the filesystem rename dance).
func BenchmarkSaveV2(b *testing.B) {
	eng, _, v2 := persistBench(b)
	fi, err := os.Stat(v2)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fi.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
