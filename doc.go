// Package v6class classifies active IPv6 addresses — a production-scale
// implementation of "Temporal and Spatial Classification of Active IPv6
// Addresses" (Plonka & Berger, IMC 2015).
//
// The package root is the public API: a single Engine interface over the
// whole census lifecycle, constructed with functional options and queried
// through scalar results, streaming iterators, and the spatial
// classification surface. The engine implementations — the sequential
// engine, the sharded concurrent pipeline, the slab-backed temporal
// matrix, the arena trie — live under internal/ and are reachable only
// through this surface; the supporting toolkit (serve, synth, experiments,
// mraplot, stats, bgp, probe, dnssim) ships as public sibling packages.
//
// # Lifecycle
//
// An Engine moves through exactly two phases:
//
//	eng, err := v6class.New(
//		v6class.WithStudyDays(365),   // required
//		v6class.WithShards(16),       // optional: size the concurrent engine
//	)
//	...
//	eng.AddDays(logs)   // phase 1: ingestion (concurrent on the sharded engine)
//	eng.Freeze()        // the barrier: ingestion ends, queries begin
//	st, err := eng.Stability(v6class.Addresses, ref, 3)   // phase 2: queries
//
// Ingestion methods return ErrFrozen once Freeze has been called; query
// methods return ErrNotFrozen until it has. Both are typed sentinels for
// errors.Is, so lifecycle misuse is a handleable error, never a panic out
// of an internal layer. Freeze is idempotent; after it the engine is
// immutable and every query is lock-free and safe under unbounded
// concurrency.
//
// New picks the implementation from the options: WithSequential (or
// WithShards(1)) selects the single-goroutine engine, WithShards(k)
// the hash-partitioned concurrent pipeline, and with neither the choice
// follows GOMAXPROCS. Both produce identical results for the same logs;
// the root equivalence tests hold them to that.
//
// # Options
//
// Functional options configure construction only; they never mutate a
// built engine. Invalid values and contradictory combinations (a negative
// study length, WithSequential plus WithShards(8), WithWorkers on the
// sequential engine) are reported by New and Open as errors wrapping
// ErrConfig. WithWindow and WithStabilityOptions set the engine's default
// nd-stable classification options; WithMACFilter drops EUI-64 records
// whose embedded hardware address fails a predicate before they reach the
// census.
//
// # Streaming queries
//
// The bulk enumerations return Go iterators (iter.Seq / iter.Seq2) backed
// directly by the engine's dense row storage:
//
//	addrs, err := eng.StableAddrs(ref, 3)
//	...
//	for a := range addrs {
//		if enough() {
//			break   // stops the row sweep; nothing leaks
//		}
//		probe(a)
//	}
//
// Enumeration allocates nothing per element, an early break stops the
// underlying sweep at the current row (no goroutines are involved), and
// every returned Seq restarts from the beginning on each range. Where a
// slice is genuinely needed, collect one explicitly:
//
//	targets := slices.Collect(addrs)
//
// Keys and Lifetimes yield every key as a Prefix — full addresses as
// /128s, subnet keys as /64s — so one iterator shape serves both
// populations.
//
// # Spatial classification
//
// The Section 5.2 classifiers operate on an AddressSet, a population of
// addresses (or fixed-length prefixes) over a counting radix trie. Build
// one incrementally with Add/AddPrefix, or — the fast path — ask a frozen
// engine for a whole day selection:
//
//	set, err := eng.SpatialSet(v6class.Addresses, 10, 11, 12, 13)
//	...
//	mra := set.MRA()                                        // n_p counts, γ ratios
//	sig := v6class.ClassifySignature(mra)                   // Figure 2/5 shape class
//	dense := set.DenseLeastSpecific(v6class.DensityClass{N: 2, P: 112})
//	top := set.TopAggregates(48, 10)                        // most populated /48s
//	profile := set.AguriProfile(0.01)                       // aguri traffic profile
//
// SpatialSet partitions the engine's dense row sweeps across a bounded
// worker pool — each worker consumes its own shard or row-range sweep into
// a private arena-backed sub-trie, and the sub-tries are grafted under a
// spine of top-bit branch nodes. A radix trie's shape is a pure function
// of the item set, so the parallel build is bit-identical to sequential
// insertion; the returned set is immutable in use and safe for any number
// of concurrent readers. The trie itself stores nodes in index-addressed
// slabs (internal/trie), so building a million-address population costs a
// few hundred allocations rather than one per address.
//
// # Persistence
//
// Save/WriteTo serialize a census snapshot in an engine-agnostic format;
// Open/Read restore one into either implementation. An opened engine is
// ingesting: the daily pipeline extends yesterday's snapshot with today's
// log and saves again, while a serving process Opens, Freezes and queries.
// Save writes temp-and-rename, so an interrupted write never destroys the
// existing snapshot.
//
// Two on-disk formats exist, distinguished by a 16-byte magic and read
// transparently by Open/Read/SniffSnapshot:
//
//	v2 (default)  the mmap layout: fixed header, section table, and
//	              checksummed 8-aligned sections holding the key tables
//	              and day-word slabs exactly as the engine stores them
//	              in memory
//	v1 (legacy)   the streaming format of earlier releases
//
// A v2 file is laid out as
//
//	offset 0     magic "v6census-state-2" (16 bytes)
//	offset 16    header: flags, study days, section count, reserved (4 u32)
//	offset 32    section table: 6 entries of {kind, count, offset, length}
//	offset 176   the sections, 8-aligned and tightly packed, in kind order:
//	             address keys, address day-rows, /64 keys, /64 day-rows,
//	             kind summaries, MAC sets
//	EOF-28       trailer: six per-section CRC-32Cs plus the header CRC-32C
//
// Because v2 sections are the in-memory layout, Open maps the file
// (copy-on-write, falling back to a plain read where mmap is unavailable)
// and adopts the sections in place instead of decoding them: opening a
// million-address census costs milliseconds and a few hundred allocations
// rather than seconds and one per key, and untouched sections stay on
// disk until queries fault them in. Both formats round-trip byte
// identically — an engine opened from either writes the same snapshot —
// so archives convert losslessly in both directions (v6census convert).
// SaveSnapshot/WriteSnapshot select a format explicitly, SnapshotFormat
// naming the choice; SniffSnapshot reports a file's format version and
// size without loading it. Every section of a v2 file is CRC-protected
// and bounds-checked against the section table, so a truncated, bit
// flipped or foreign file surfaces as an error wrapping the corruption
// sentinel — never a panic, and never a silently wrong census.
//
// # Generations
//
// A frozen engine can also grow in place, without the save/reopen cycle:
// Successor returns an ingesting LiveEngine layered over the frozen parent.
// The parent keeps answering every query, untouched, while the successor
// absorbs new day logs; its memory cost during ingestion is proportional
// to the new days' churn, because the two generations share the parent's
// immutable slabs until the successor's own Freeze merges them. A frozen
// successor answers exactly like an engine fed every generation's logs
// directly — and can spawn the next generation in turn. For spatial state
// the successor adds SpatialSetFrom, which extends a parent-generation
// AddressSet by the generation's delta (a clone plus O(new keys) trie
// inserts) instead of rebuilding it, bit-identical to the from-scratch
// build. This is the substrate of package serve's live write path
// (/v1/ingest + /v1/freeze).
//
// # Serving
//
// Package serve (run as cmd/v6served) exposes frozen engines over HTTP —
// point lookups, stability tables, dense-prefix sweeps, top-k aggregates,
// overlap series — resolving snapshots RCU-style so reloads never disturb
// in-flight queries. It consumes exactly this package's API: the handlers
// render JSON straight off the streaming iterators, and each snapshot
// memoizes its SpatialSet builds so every spatial query shape over the
// same days shares one trie. See examples/queryclient for an end-to-end
// walkthrough.
//
// # Cluster tier
//
// Package remote closes the loop: remote.Dial(url) returns an Engine —
// this same interface — backed by a serve instance over HTTP, so any
// program written against the façade runs unchanged whether its census is
// in-process or behind the network. Scalar queries map to single
// requests; the streaming enumerations walk the server's cursor-paged
// endpoints and restart transparently if the snapshot is reloaded
// mid-walk, so an iterator never splices two generations. Errors arrive
// as the same typed sentinels (ErrConfig, ErrDayRange, ErrNotFrozen, ...)
// via the wire protocol's stable error codes.
//
// remote.NewCoordinator composes several such backends into one Engine
// over a partitioned census: ingest splits each day's records by /64
// partition, point queries route to the owning backend, scalars and
// histograms merge by summation, ranked aggregates gather and re-rank,
// and the ordered enumerations are heap-merged into one globally sorted
// stream. cmd/v6served -backend wires this up as a serving tier: a
// coordinator process dials N shard servers and serves the merged census
// through the identical HTTP API, so clients cannot tell a cluster from
// a single box. See examples/cluster for the full walkthrough.
//
// # Resilience
//
// The cluster tier assumes backends fail. The remote client retries
// transport errors, 5xx and 429 responses with capped exponential backoff
// and full jitter (remote.WithBackoff), honoring a server's Retry-After
// as the floor; each attempt runs under its own deadline
// (remote.WithAttemptTimeout) inside a whole-call budget
// (remote.WithTimeout), so a hung backend costs one attempt, never the
// call. When the budget runs out the error wraps ErrUnavailable — the
// availability sentinel — alongside the last wire failure.
//
// The coordinator watches each backend through a consecutive-failure
// circuit breaker (remote.WithBreaker): a partition failing repeatedly
// stops being asked at all until a cooldown admits a half-open probe.
// Every scatter-gather runs under a fan-out deadline
// (remote.WithFanoutTimeout), and point queries can hedge a duplicate
// request to the owner after a delay (remote.WithHedge). By default the
// cluster is strict: any backend failure fails the query with an error
// naming the partition (index and URL). Opting in to
// remote.WithPartialResults degrades instead: when a minority of
// partitions is down with availability faults, merges proceed over the
// answering majority and the error wraps ErrDegraded, with the exact
// per-partition Coverage reachable via errors.As on
// *remote.DegradedError. Writes and point queries never degrade.
//
// Package remote/chaos is the fault-injection harness behind the
// resilience tests: a seeded, deterministic injector of 5xx bursts,
// connection resets, hangs, truncated bodies and flapping, usable as an
// http.RoundTripper (client side) or a reverse proxy (server side).
//
// # Measurement loop
//
// Package target closes the loop the paper opens in Section 6.2: the
// census's spatial knowledge drives new active measurement, and the
// results feed back through ingestion. target.NewGenerator trains a
// per-nybble conditional-probability model on an AddressSet's dense
// regions and emits a ranked stream of candidate addresses not already
// in the census — deterministically seeded, budgeted, with a per-/64
// fairness cap. target.Scan drives candidates through a pluggable
// Prober (probe.Topology and dnssim.Zone in-tree) on a bounded,
// rate-limited worker pool, while target.NewAliasDetector filters
// fully-responsive aliased prefixes: K pseudorandom probes under a
// suspect /64 all answering marks it aliased, suppressing generation
// there for a cooldown. target.NewLoop composes the full cycle —
// generate → scan → ingest (via Successor) → freeze — each round
// training on the census the previous round grew, with the parent
// generation untouched throughout.
//
// Serve instances expose the generator as GET /v1/targets, and
// cmd/v6probe runs the whole loop against the synthetic world,
// reporting per-round hit-rates against a uniform-random baseline. See
// examples/v6probe for the walkthrough.
//
// # Reproduction of the paper
//
// Package experiments regenerates every table and figure of the paper's
// evaluation over a synthetic world (cmd/v6report prints them all); the
// benchmarks in this package and package serve track the ingest, sweep,
// spatial-build and serving paths in CI. See DESIGN.md for the system
// inventory and the package docs for the storage and concurrency models.
package v6class
