// Package v6class classifies active IPv6 addresses — a production-scale
// implementation of "Temporal and Spatial Classification of Active IPv6
// Addresses" (Plonka & Berger, IMC 2015).
//
// The package root is the public API: a single Engine interface over the
// whole census lifecycle, constructed with functional options and queried
// through scalar results and streaming iterators. The implementations —
// the sequential engine, the sharded concurrent pipeline, the slab-backed
// temporal matrix, the snapshot service — live under internal/ and are
// reachable only through this surface.
//
// # Lifecycle
//
// An Engine moves through exactly two phases:
//
//	eng, err := v6class.New(
//		v6class.WithStudyDays(365),   // required
//		v6class.WithShards(16),       // optional: size the concurrent engine
//	)
//	...
//	eng.AddDays(logs)   // phase 1: ingestion (concurrent on the sharded engine)
//	eng.Freeze()        // the barrier: ingestion ends, queries begin
//	st, err := eng.Stability(v6class.Addresses, ref, 3)   // phase 2: queries
//
// Ingestion methods return ErrFrozen once Freeze has been called; query
// methods return ErrNotFrozen until it has. Both are typed sentinels for
// errors.Is, so lifecycle misuse is a handleable error, never a panic out
// of an internal layer. Freeze is idempotent; after it the engine is
// immutable and every query is lock-free and safe under unbounded
// concurrency.
//
// New picks the implementation from the options: WithSequential (or
// WithShards(1)) selects the single-goroutine engine, WithShards(k)
// the hash-partitioned concurrent pipeline, and with neither the choice
// follows GOMAXPROCS. Both produce identical results for the same logs;
// the root equivalence tests hold them to that.
//
// # Options
//
// Functional options configure construction only; they never mutate a
// built engine. Invalid values and contradictory combinations (a negative
// study length, WithSequential plus WithShards(8), WithWorkers on the
// sequential engine) are reported by New and Open as errors wrapping
// ErrConfig. WithWindow and WithStabilityOptions set the engine's default
// nd-stable classification options; WithMACFilter drops EUI-64 records
// whose embedded hardware address fails a predicate before they reach the
// census.
//
// # Streaming queries
//
// The bulk enumerations return Go iterators (iter.Seq / iter.Seq2) backed
// directly by the engine's dense row storage:
//
//	addrs, err := eng.StableAddrs(ref, 3)
//	...
//	for a := range addrs {
//		if enough() {
//			break   // stops the row sweep; nothing leaks
//		}
//		probe(a)
//	}
//
// Enumeration allocates nothing per element, an early break stops the
// underlying sweep at the current row (no goroutines are involved), and
// every returned Seq restarts from the beginning on each range. Where a
// slice is genuinely needed, collect one explicitly:
//
//	targets := slices.Collect(addrs)
//
// Keys and Lifetimes yield every key as a Prefix — full addresses as
// /128s, subnet keys as /64s — so one iterator shape serves both
// populations.
//
// # Persistence
//
// Save/WriteTo serialize a census snapshot in an engine-agnostic format;
// Open/Read restore one into either implementation. An opened engine is
// ingesting: the daily pipeline extends yesterday's snapshot with today's
// log and saves again, while a serving process Opens, Freezes and queries.
// Save writes temp-and-rename, so an interrupted write never destroys the
// existing snapshot.
//
// # Serving
//
// internal/serve (run as cmd/v6served) exposes frozen engines over HTTP —
// point lookups, stability tables, dense-prefix sweeps, top-k aggregates,
// overlap series — resolving snapshots RCU-style so reloads never disturb
// in-flight queries. It consumes exactly this package's API: the handlers
// render JSON straight off the streaming iterators. See
// examples/queryclient for an end-to-end walkthrough.
//
// # Reproduction of the paper
//
// internal/experiments regenerates every table and figure of the paper's
// evaluation over a synthetic world (cmd/v6report prints them all); the
// benchmarks in this package and internal/serve track the ingest, sweep
// and serving paths in CI. See DESIGN.md for the system inventory and the
// internal package docs for the storage and concurrency models.
package v6class
