// Package v6class reproduces "Temporal and Spatial Classification of Active
// IPv6 Addresses" (Plonka & Berger, IMC 2015) as a Go library.
//
// The implementation lives under internal/: see internal/core for the
// classification engine, internal/experiments for the per-table/figure
// reproduction drivers, and DESIGN.md for the full system inventory. The
// benchmarks in this package regenerate every table and figure of the
// paper's evaluation; run them with:
//
//	go test -bench=. -benchmem
//
// # Concurrency model
//
// The paper's datasets are a year of daily CDN logs with millions of
// distinct addresses per day, so ingestion is built to scale with cores
// while every analysis stays reproducible:
//
//   - core.Census is the sequential engine: one goroutine ingests with
//     AddDay; analyses may run concurrently once ingestion is done.
//   - core.ShardedCensus is the concurrent engine. AddDays/Ingest split
//     logs into record chunks, classify them on a GOMAXPROCS-sized worker
//     pool, and route the surviving observations by key hash over
//     per-shard channels into temporal.ShardedStore shards (each shard an
//     independent key map with its own per-day counters). Because
//     observations are idempotent day-bits and the Table 1 tallies are
//     sums, the result is identical to the sequential engine no matter how
//     the scheduler interleaves the pipeline — the equivalence suite in
//     internal/core enforces this.
//   - Freeze is the barrier between the two phases of a ShardedCensus:
//     before it, any number of goroutines may ingest; after it, ingestion
//     panics, every query is lock-free, and analyses fan out across shards
//     in parallel.
//   - internal/experiments regenerates independent table/figure cells on a
//     bounded worker pool (experiments.RunAll) over a concurrency-safe
//     shared Lab; sequential and parallel runs render identical output.
//
// BenchmarkIngest in this package compares the two engines over a
// million-address synthetic world; sweep core counts with
//
//	go test -bench=BenchmarkIngest -cpu=1,2,4,8
//
// # Serving layer
//
// Above both engines sits the online query path (internal/serve, run as
// cmd/v6served): persisted census snapshots are loaded through the
// sharded engine, frozen, and served over HTTP to any number of
// concurrent clients — per-prefix lookups (format classification,
// activity, availability/volatility, nd-stability), stability tables,
// densify sweeps, top-k aggregates, and overlap series, all answered by
// the same exported query API of internal/core that the batch tools use,
// so served and batch results are identical by construction. Expensive
// analyses go through a sharded result cache keyed by snapshot epoch, and
// snapshots swap at runtime RCU-style (POST /v1/reload) without dropping
// in-flight queries. See internal/serve for the architecture and endpoint
// reference, examples/queryclient for a walkthrough, and
// BenchmarkServe* in internal/serve for the serving-path benchmarks that
// run next to the ingestion benchmarks in CI.
package v6class
