// Package v6class reproduces "Temporal and Spatial Classification of Active
// IPv6 Addresses" (Plonka & Berger, IMC 2015) as a Go library.
//
// The implementation lives under internal/: see internal/core for the
// classification engine, internal/experiments for the per-table/figure
// reproduction drivers, and DESIGN.md for the full system inventory. The
// benchmarks in this package regenerate every table and figure of the
// paper's evaluation; run them with:
//
//	go test -bench=. -benchmem
package v6class
