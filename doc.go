// Package v6class reproduces "Temporal and Spatial Classification of Active
// IPv6 Addresses" (Plonka & Berger, IMC 2015) as a Go library.
//
// The implementation lives under internal/: see internal/core for the
// classification engine, internal/experiments for the per-table/figure
// reproduction drivers, and DESIGN.md for the full system inventory. The
// benchmarks in this package regenerate every table and figure of the
// paper's evaluation; run them with:
//
//	go test -bench=. -benchmem
//
// # Concurrency model
//
// The paper's datasets are a year of daily CDN logs with millions of
// distinct addresses per day, so ingestion is built to scale with cores
// while every analysis stays reproducible:
//
//   - core.Census is the sequential engine: one goroutine ingests with
//     AddDay; analyses may run concurrently once ingestion is done.
//   - core.ShardedCensus is the concurrent engine. AddDays/Ingest split
//     logs into record chunks, classify them on a GOMAXPROCS-sized worker
//     pool, and route the surviving observations by key hash over
//     per-shard channels into temporal.ShardedStore shards (each shard an
//     independent slab-backed store with its own per-day counters);
//     applied batches recycle to the workers through free lists, so
//     steady-state routing allocates nothing. Because observations are
//     idempotent day-bits and the Table 1 tallies are sums, the result is
//     identical to the sequential engine no matter how the scheduler
//     interleaves the pipeline — the equivalence suite in internal/core
//     enforces this.
//   - Freeze is the barrier between the two phases of a ShardedCensus:
//     before it, any number of goroutines may ingest; after it, ingestion
//     panics, every shard's slab is compacted into one contiguous block,
//     every query is lock-free, and bulk analyses partition the frozen row
//     space into row-range tiles executed on a bounded worker pool (see
//     Performance below).
//   - internal/experiments regenerates independent table/figure cells on a
//     bounded worker pool (experiments.RunAll) over a concurrency-safe
//     shared Lab; sequential and parallel runs render identical output.
//
// BenchmarkIngest in this package compares the two engines over a
// million-address synthetic world; sweep core counts with
//
//	go test -bench=BenchmarkIngest -cpu=1,2,4,8
//
// # Performance
//
// The temporal stores are the hot path of both ingestion and serving, and
// their layout is built around the study period being fixed per census:
//
//   - Slab layout. Every key's activity occupies a fixed-stride window of
//     a shared slab — stride = ceil(StudyDays/64) uint64 words — indexed
//     by a dense row table (map[K]uint32, rows in insertion order). Rows
//     live in arena chunks of 4096 rows, so growth never copies existing
//     rows and a million-address day costs a few hundred slab allocations
//     instead of a million heap bitsets; ingest allocations drop by more
//     than an order of magnitude versus the per-key *BitSet layout.
//   - Word-level sweeps. Stability, weekly, epoch, overlap and range
//     analyses are linear scans over dense rows using word AND/OR masks
//     and popcount — no per-key pointer chasing, no per-day Get probes. A
//     40-day study has stride 1: classifying a million-key day reads one
//     contiguous word per key.
//   - Freeze compaction. ShardedStore.Freeze fuses each shard's chunks
//     into one exactly-sized contiguous slab (in parallel across shards)
//     before flipping read-only, so post-freeze sweeps run over compact
//     memory with zero slack.
//   - Tiled parallel sweeps. Post-freeze bulk queries cut the frozen row
//     space into row-range tiles — subdividing within shards whenever
//     GOMAXPROCS exceeds the shard count, with a 4096-row floor per tile —
//     and run them on a bounded worker pool, merging the per-tile partial
//     results additively. Sweeps therefore parallelize to the machine
//     regardless of how the snapshot was sharded (a snapshot loaded on a
//     larger machine than wrote it still uses every core).
//   - Zero-allocation ingest parsing. cdnlog.ReadAll scans byte slices in
//     place (cdnlog.ParseLine) and addresses parse through the
//     ipaddr.ParseAddrBytes fast path, held to byte-for-byte agreement
//     with the string parser by fuzzing; day tallies are pre-sized.
//
// BenchmarkStability and BenchmarkOverlap track the sweep paths,
// BenchmarkIngest the ingest path; CI publishes all of them with -benchmem
// as BENCH_pr.json next to the committed pre-slab BENCH_baseline.json.
//
// # Serving layer
//
// Above both engines sits the online query path (internal/serve, run as
// cmd/v6served): persisted census snapshots are loaded through the
// sharded engine, frozen, and served over HTTP to any number of
// concurrent clients — per-prefix lookups (format classification,
// activity, availability/volatility, nd-stability), stability tables,
// densify sweeps, top-k aggregates, and overlap series, all answered by
// the same exported query API of internal/core that the batch tools use,
// so served and batch results are identical by construction. Expensive
// analyses go through a sharded result cache keyed by snapshot epoch, and
// snapshots swap at runtime RCU-style (POST /v1/reload) without dropping
// in-flight queries. See internal/serve for the architecture and endpoint
// reference, examples/queryclient for a walkthrough, and
// BenchmarkServe* in internal/serve for the serving-path benchmarks that
// run next to the ingestion benchmarks in CI.
package v6class
