package v6class_test

// The Engine conformance suite: every implementation of the v6class.Engine
// interface — the sequential engine, the sharded concurrent engine, a
// remote engine speaking the serve wire API over httptest, and a
// scatter-gather coordinator over three partitioned remote backends — must
// answer every query identically. The suite builds the same deterministic
// census four ways and deep-compares each implementation against the
// sequential reference: scalars exactly, ordered enumerations in exact
// order, unordered enumerations as sorted sets.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"slices"
	"sync"
	"sync/atomic"
	"testing"

	"v6class"
	"v6class/remote"
	"v6class/serve"
)

const confStudyDays = 30

// confLogs generates the deterministic conformance census: 60 addresses
// across 12 /64s under 3 /48s, each key active on its own period-and-phase
// schedule, so the data mixes daily, intermittent and rare keys without
// any randomness.
func confLogs() []v6class.DayLog {
	var addrs []v6class.Addr
	for net := 0; net < 12; net++ {
		for h := 0; h < 5; h++ {
			addrs = append(addrs, v6class.MustParseAddr(
				fmt.Sprintf("2001:db8:%x:%x::%x", net/4, net, h+1)))
		}
	}
	logs := make([]v6class.DayLog, confStudyDays)
	for day := 0; day < confStudyDays; day++ {
		logs[day].Day = day
		for i, a := range addrs {
			period := 1 + i%7
			if (day+i)%period != 0 {
				continue
			}
			logs[day].Records = append(logs[day].Records,
				v6class.Record{Addr: a, Hits: uint64(1 + (i+day)%4)})
		}
	}
	return logs
}

// buildLocal constructs and freezes a local engine over the conformance
// census.
func buildLocal(t *testing.T, opts ...v6class.Option) v6class.Engine {
	t.Helper()
	eng, err := v6class.New(append([]v6class.Option{v6class.WithStudyDays(confStudyDays)}, opts...)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := eng.AddDays(confLogs()); err != nil {
		t.Fatalf("AddDays: %v", err)
	}
	if err := eng.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	return eng
}

// serveEngine publishes an engine through a serve instance and dials it
// back as a remote engine with a deliberately small page size, so every
// enumeration crosses page boundaries.
func serveEngine(t *testing.T, eng v6class.Engine) v6class.Engine {
	t.Helper()
	s := serve.New(serve.Options{})
	s.Install("census", "", eng)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	re, err := remote.Dial(srv.URL, remote.WithSnapshot("census"), remote.WithPageSize(7))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	return re
}

// buildCoordinator partitions the census across three backends, each
// published over its own httptest serve instance and dialed back, and
// composes them with the scatter-gather coordinator — the full cluster
// path, wire and all.
func buildCoordinator(t *testing.T) v6class.Engine {
	t.Helper()
	const n = 3
	part := remote.PartitionByNetworkID(n)
	split := remote.SplitLogs(confLogs(), n, part)
	backends := make([]v6class.Engine, n)
	for i := range backends {
		eng, err := v6class.New(v6class.WithStudyDays(confStudyDays), v6class.WithSequential())
		if err != nil {
			t.Fatalf("New backend %d: %v", i, err)
		}
		if err := eng.AddDays(split[i]); err != nil {
			t.Fatalf("AddDays backend %d: %v", i, err)
		}
		if err := eng.Freeze(); err != nil {
			t.Fatalf("Freeze backend %d: %v", i, err)
		}
		backends[i] = serveEngine(t, eng)
	}
	coord, err := remote.NewCoordinator(backends, part)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	return coord
}

// openSnapshotEngine saves the conformance census as a v2 snapshot and
// reopens it from disk — the mmap/attach read path — with the given engine
// options, so the suite holds snapshot-opened engines to the same answers.
func openSnapshotEngine(t *testing.T, opts ...v6class.Option) v6class.Engine {
	t.Helper()
	path := filepath.Join(t.TempDir(), "conformance.v6census")
	if err := buildLocal(t, v6class.WithSequential()).Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	eng, err := v6class.Open(path, opts...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := eng.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	return eng
}

// conformanceEngines returns the reference engine plus every implementation
// under test.
func conformanceEngines(t *testing.T) (ref v6class.Engine, under map[string]v6class.Engine) {
	t.Helper()
	ref = buildLocal(t, v6class.WithSequential())
	return ref, map[string]v6class.Engine{
		"sharded":           buildLocal(t, v6class.WithShards(4)),
		"remote":            serveEngine(t, buildLocal(t, v6class.WithSequential())),
		"coordinator":       buildCoordinator(t),
		"opened-v2":         openSnapshotEngine(t, v6class.WithSequential()),
		"opened-v2-sharded": openSnapshotEngine(t, v6class.WithShards(4)),
	}
}

// readAll drains and closes a response body.
func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return data
}

// jsonDecode decodes a response body into out.
func jsonDecode(resp *http.Response, out any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

func TestEngineConformanceScalars(t *testing.T) {
	ref, under := conformanceEngines(t)
	type scalarCase struct {
		name string
		eval func(e v6class.Engine) (any, error)
	}
	opts := v6class.StabilityOptions{Window: v6class.StabilityWindow{Before: 3, After: 2}}
	probe := v6class.MustParseAddr("2001:db8:1:5::3")
	probeMiss := v6class.MustParseAddr("2001:db8:ffff:ffff::1")
	p64 := v6class.MustParsePrefix("2001:db8:2:9::/64")
	cases := []scalarCase{
		{"studyDays", func(e v6class.Engine) (any, error) { return e.StudyDays(), nil }},
		{"numAddrs", func(e v6class.Engine) (any, error) { return e.NumKeys(v6class.Addresses) }},
		{"num64s", func(e v6class.Engine) (any, error) { return e.NumKeys(v6class.Prefixes64) }},
		{"summary0", func(e v6class.Engine) (any, error) { return e.Summary(0) }},
		{"summary13", func(e v6class.Engine) (any, error) { return e.Summary(13) }},
		{"active7", func(e v6class.Engine) (any, error) { return e.ActiveCount(v6class.Addresses, 7) }},
		{"active64s7", func(e v6class.Engine) (any, error) { return e.ActiveCount(v6class.Prefixes64, 7) }},
		{"activeRange", func(e v6class.Engine) (any, error) { return e.ActiveInRange(v6class.Addresses, 5, 12) }},
		{"stability", func(e v6class.Engine) (any, error) { return e.Stability(v6class.Addresses, 14, 3) }},
		{"stabilityWith", func(e v6class.Engine) (any, error) { return e.StabilityWith(v6class.Prefixes64, 10, 2, opts) }},
		{"weekly", func(e v6class.Engine) (any, error) { return e.WeeklyStability(v6class.Addresses, 7, 5) }},
		{"epoch", func(e v6class.Engine) (any, error) { return e.EpochStable(v6class.Addresses, 0, 6, 20, 29) }},
		{"lookupAddr", func(e v6class.Engine) (any, error) { return e.LookupAddr(probe) }},
		{"lookupMiss", func(e v6class.Engine) (any, error) { return e.LookupAddr(probeMiss) }},
		{"lookup64", func(e v6class.Engine) (any, error) { return e.LookupPrefix64(p64) }},
		{"addrStable", func(e v6class.Engine) (any, error) { return e.AddrStable(probe, 14, 3, opts) }},
		{"p64Stable", func(e v6class.Engine) (any, error) { return e.Prefix64Stable(p64, 14, 3, opts) }},
		{"lifetimeStats", func(e v6class.Engine) (any, error) { return e.LifetimeStats(v6class.Addresses, 0, 29) }},
		{"returnProb", func(e v6class.Engine) (any, error) { return e.ReturnProbability(v6class.Addresses, 0, 29, 7) }},
		{"returnCounts", func(e v6class.Engine) (any, error) {
			num, den, err := e.ReturnCounts(v6class.Prefixes64, 0, 29, 7)
			return [2][]int{num, den}, err
		}},
		{"lsp", func(e v6class.Engine) (any, error) { return e.LongestStablePrefixes(0, 9, 20, 29, 32, 2) }},
	}
	for _, tc := range cases {
		want, err := tc.eval(ref)
		if err != nil {
			t.Fatalf("%s: reference: %v", tc.name, err)
		}
		for name, e := range under {
			got, err := tc.eval(e)
			if err != nil {
				t.Errorf("%s: %s: %v", tc.name, name, err)
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: %s = %+v, reference %+v", tc.name, name, got, want)
			}
		}
	}
}

func TestEngineConformanceOrdered(t *testing.T) {
	ref, under := conformanceEngines(t)
	type seqCase struct {
		name string
		eval func(e v6class.Engine) (any, error)
	}
	keyStrings := func(s []v6class.Prefix) []string {
		out := make([]string, len(s))
		for i, p := range s {
			out[i] = p.String()
		}
		return out
	}
	addrStrings := func(s []v6class.Addr) []string {
		out := make([]string, len(s))
		for i, a := range s {
			out[i] = a.String()
		}
		return out
	}
	cases := []seqCase{
		{"keysOrderedAddrs", func(e v6class.Engine) (any, error) {
			seq, err := e.KeysOrdered(v6class.Addresses)
			if err != nil {
				return nil, err
			}
			return keyStrings(slices.Collect(seq)), nil
		}},
		{"keysOrdered64sDays", func(e v6class.Engine) (any, error) {
			seq, err := e.KeysOrdered(v6class.Prefixes64, 3, 9, 21)
			if err != nil {
				return nil, err
			}
			return keyStrings(slices.Collect(seq)), nil
		}},
		{"lifetimesOrdered", func(e v6class.Engine) (any, error) {
			seq, err := e.LifetimesOrdered(v6class.Addresses)
			if err != nil {
				return nil, err
			}
			var out []string
			for p, act := range seq {
				out = append(out, fmt.Sprintf("%s f%d l%d a%d r%d", p, act.First, act.Last, act.ActiveDays, act.Runs))
			}
			return out, nil
		}},
		{"stableOrdered", func(e v6class.Engine) (any, error) {
			seq, err := e.StableAddrsOrdered(14, 3)
			if err != nil {
				return nil, err
			}
			return addrStrings(slices.Collect(seq)), nil
		}},
		{"topAggregates48", func(e v6class.Engine) (any, error) {
			seq, err := e.TopAggregates(v6class.Addresses, 48, 0, 0, 1, 2, 3, 4, 5, 6)
			if err != nil {
				return nil, err
			}
			var out []string
			for agg := range seq {
				out = append(out, fmt.Sprintf("%s=%d", agg.Prefix, agg.Count))
			}
			return out, nil
		}},
		{"topAggregates64k2", func(e v6class.Engine) (any, error) {
			seq, err := e.TopAggregates(v6class.Prefixes64, 48, 2, 10, 11, 12)
			if err != nil {
				return nil, err
			}
			var out []string
			for agg := range seq {
				out = append(out, fmt.Sprintf("%s=%d", agg.Prefix, agg.Count))
			}
			return out, nil
		}},
		{"overlap", func(e v6class.Engine) (any, error) {
			seq, err := e.OverlapSeries(v6class.Addresses, 14, 4, 4)
			if err != nil {
				return nil, err
			}
			var out []string
			for day, n := range seq {
				out = append(out, fmt.Sprintf("%d=%d", day, n))
			}
			return out, nil
		}},
		{"mra", func(e v6class.Engine) (any, error) {
			set, err := e.SpatialSet(v6class.Addresses, 0, 1, 2)
			if err != nil {
				return nil, err
			}
			m := set.MRA()
			return fmt.Sprintf("n=%d c64=%d c48=%d c32=%d total=%d", m.N, m.Counts[64], m.Counts[48], m.Counts[32], set.Total()), nil
		}},
		// Unordered enumerations conform as sorted sets.
		{"addrsActiveOn", func(e v6class.Engine) (any, error) {
			seq, err := e.AddrsActiveOn(4, 5)
			if err != nil {
				return nil, err
			}
			out := addrStrings(slices.Collect(seq))
			slices.Sort(out)
			return out, nil
		}},
		{"prefixes64ActiveOn", func(e v6class.Engine) (any, error) {
			seq, err := e.Prefixes64ActiveOn(8)
			if err != nil {
				return nil, err
			}
			out := keyStrings(slices.Collect(seq))
			slices.Sort(out)
			return out, nil
		}},
		{"keysUnordered", func(e v6class.Engine) (any, error) {
			seq, err := e.Keys(v6class.Prefixes64)
			if err != nil {
				return nil, err
			}
			out := keyStrings(slices.Collect(seq))
			slices.Sort(out)
			return out, nil
		}},
	}
	for _, tc := range cases {
		want, err := tc.eval(ref)
		if err != nil {
			t.Fatalf("%s: reference: %v", tc.name, err)
		}
		for name, e := range under {
			got, err := tc.eval(e)
			if err != nil {
				t.Errorf("%s: %s: %v", tc.name, name, err)
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: %s = %v, reference %v", tc.name, name, got, want)
			}
		}
	}
}

// TestEngineConformanceResume verifies the resumable forms: enumerations
// resumed strictly after a mid-stream key must exactly produce the suffix
// of the full stream, on every implementation.
func TestEngineConformanceResume(t *testing.T) {
	ref, under := conformanceEngines(t)
	fullSeq, err := ref.KeysOrdered(v6class.Addresses)
	if err != nil {
		t.Fatalf("reference KeysOrdered: %v", err)
	}
	full := slices.Collect(fullSeq)
	if len(full) < 6 {
		t.Fatalf("conformance census too small: %d keys", len(full))
	}
	cut := len(full) / 3
	after := full[cut]
	wantSuffix := full[cut+1:]
	for name, e := range under {
		seq, err := e.KeysOrderedAfter(v6class.Addresses, after)
		if err != nil {
			t.Errorf("%s: KeysOrderedAfter: %v", name, err)
			continue
		}
		got := slices.Collect(seq)
		if !slices.Equal(got, wantSuffix) {
			t.Errorf("%s: resumed stream has %d keys, want %d", name, len(got), len(wantSuffix))
		}
		// Early break must be safe and re-iteration must restart.
		n := 0
		for range seq {
			n++
			if n == 2 {
				break
			}
		}
		m := 0
		for range seq {
			m++
		}
		if m != len(wantSuffix) {
			t.Errorf("%s: re-iteration after early break yields %d keys, want %d", name, m, len(wantSuffix))
		}
	}

	// Stable-address resumption.
	stableSeq, err := ref.StableAddrsOrdered(14, 3)
	if err != nil {
		t.Fatalf("reference StableAddrsOrdered: %v", err)
	}
	stable := slices.Collect(stableSeq)
	if len(stable) < 3 {
		t.Fatalf("too few stable addresses: %d", len(stable))
	}
	sAfter := stable[len(stable)/2]
	sWant := stable[len(stable)/2+1:]
	for name, e := range under {
		seq, err := e.StableAddrsOrderedAfter(14, 3, sAfter)
		if err != nil {
			t.Errorf("%s: StableAddrsOrderedAfter: %v", name, err)
			continue
		}
		if got := slices.Collect(seq); !slices.Equal(got, sWant) {
			t.Errorf("%s: resumed stable stream mismatch: %d addrs, want %d", name, len(got), len(sWant))
		}
	}

	// Lifetime resumption.
	for name, e := range under {
		seq, err := e.LifetimesOrderedAfter(v6class.Addresses, after)
		if err != nil {
			t.Errorf("%s: LifetimesOrderedAfter: %v", name, err)
			continue
		}
		var got []v6class.Prefix
		for p := range seq {
			got = append(got, p)
		}
		if !slices.Equal(got, wantSuffix) {
			t.Errorf("%s: resumed lifetimes stream mismatch: %d keys, want %d", name, len(got), len(wantSuffix))
		}
	}
}

// TestEngineConformanceTypedErrors verifies that typed sentinel errors
// survive every transport: a misconfigured call answers an error that
// errors.Is-matches the same façade sentinel on every implementation.
func TestEngineConformanceTypedErrors(t *testing.T) {
	_, under := conformanceEngines(t)
	badAfter := v6class.MustParsePrefix("2001:db8::/64") // /64 key against the /128 population
	for name, e := range under {
		if _, err := e.KeysOrderedAfter(v6class.Addresses, badAfter); !errors.Is(err, v6class.ErrConfig) {
			t.Errorf("%s: KeysOrderedAfter with mismatched key: err = %v, want ErrConfig", name, err)
		}
		if _, err := e.ReturnProbability(v6class.Addresses, 0, 29, -1); !errors.Is(err, v6class.ErrConfig) {
			t.Errorf("%s: ReturnProbability(maxGap=-1): err = %v, want ErrConfig", name, err)
		}
	}
}

// TestRemoteIngest drives the full wire write path: a remote engine
// ingests the conformance census into an empty served snapshot, freezes
// it, and the served census must then answer like a locally built one.
func TestRemoteIngest(t *testing.T) {
	empty, err := v6class.New(v6class.WithStudyDays(confStudyDays), v6class.WithSequential())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s := serve.New(serve.Options{})
	s.Install("census", "", empty)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	re, err := remote.Dial(srv.URL, remote.WithSnapshot("census"), remote.WithPageSize(9))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if !re.Frozen() {
		t.Fatal("a dialed engine must report frozen")
	}
	if err := re.AddDays(confLogs()); err != nil {
		t.Fatalf("AddDays over the wire: %v", err)
	}
	if re.Frozen() {
		t.Fatal("ingesting engine must report unfrozen")
	}
	// Out-of-period ingestion must surface the typed day-range error.
	if err := re.AddDay(v6class.DayLog{Day: confStudyDays + 5}); !errors.Is(err, v6class.ErrDayRange) {
		t.Fatalf("out-of-period AddDay: err = %v, want ErrDayRange", err)
	}
	if err := re.Freeze(); err != nil {
		t.Fatalf("Freeze over the wire: %v", err)
	}
	if !re.Frozen() {
		t.Fatal("frozen engine must report frozen")
	}

	ref := buildLocal(t, v6class.WithSequential())
	wantKeys, _ := ref.NumKeys(v6class.Addresses)
	gotKeys, err := re.NumKeys(v6class.Addresses)
	if err != nil {
		t.Fatalf("NumKeys: %v", err)
	}
	if gotKeys != wantKeys {
		t.Fatalf("ingested census has %d addresses, want %d", gotKeys, wantKeys)
	}
	wantStab, _ := ref.Stability(v6class.Addresses, 14, 3)
	gotStab, err := re.Stability(v6class.Addresses, 14, 3)
	if err != nil {
		t.Fatalf("Stability: %v", err)
	}
	if !reflect.DeepEqual(gotStab, wantStab) {
		t.Fatalf("ingested stability %+v, want %+v", gotStab, wantStab)
	}
}

// reloadableServer persists the reference census to a file and serves it,
// so tests can force generation swaps with Reload.
func reloadableServer(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	eng := buildLocal(t, v6class.WithSequential())
	path := filepath.Join(t.TempDir(), "census.state")
	if err := eng.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	s := serve.New(serve.Options{})
	if _, err := s.LoadFile("census", path); err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

// TestCursorExpiredOnReload holds a page cursor across a snapshot reload
// and asserts the enumeration fails closed: the server answers HTTP 410
// with the cursor_expired envelope code, and the remote Pager surfaces an
// error unwrapping serve.ErrCursorExpired instead of splicing generations.
func TestCursorExpiredOnReload(t *testing.T) {
	s, srv := reloadableServer(t)

	// Raw wire level: fetch a first page, swap generations, replay the
	// cursor.
	resp, err := http.Get(srv.URL + "/v1/keys?limit=5")
	if err != nil {
		t.Fatalf("first page: %v", err)
	}
	var page struct {
		Cursor string `json:"cursor"`
	}
	if err := jsonDecode(resp, &page); err != nil {
		t.Fatalf("decoding first page: %v", err)
	}
	if page.Cursor == "" {
		t.Fatal("first page carries no cursor; lower the limit")
	}
	if _, err := s.Reload("census", ""); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	resp, err = http.Get(srv.URL + "/v1/keys?limit=5&cursor=" + page.Cursor)
	if err != nil {
		t.Fatalf("stale page: %v", err)
	}
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stale cursor answered %d, want %d", resp.StatusCode, http.StatusGone)
	}
	body := readAll(t, resp)
	werr := serve.DecodeError(resp.StatusCode, body)
	if werr.Code != serve.CodeCursorExpired {
		t.Fatalf("stale cursor code %q, want %q", werr.Code, serve.CodeCursorExpired)
	}
	if !errors.Is(werr, serve.ErrCursorExpired) {
		t.Fatalf("envelope error %v does not unwrap to ErrCursorExpired", werr)
	}

	// Pager level: the page-at-a-time client must surface the same typed
	// error, never restart silently.
	re, err := remote.Dial(srv.URL, remote.WithSnapshot("census"), remote.WithPageSize(5))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	pager := re.KeysPager(v6class.Addresses)
	if _, more, err := pager.Next(); err != nil || !more {
		t.Fatalf("first Pager page: more=%v err=%v", more, err)
	}
	if _, err := s.Reload("census", ""); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if _, _, err := pager.Next(); !errors.Is(err, serve.ErrCursorExpired) {
		t.Fatalf("Pager across reload: err = %v, want ErrCursorExpired", err)
	}
}

// TestEnumerationStreamsLazily asserts the windowed streaming of the
// remote enumerations: breaking out of an iteration early must leave the
// remaining pages unfetched, and a full drain must fetch them one page
// request at a time rather than materializing the census up front.
func TestEnumerationStreamsLazily(t *testing.T) {
	s, _ := reloadableServer(t)
	var pageRequests atomic.Int64
	h := s.Handler()
	counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/keys" {
			pageRequests.Add(1)
		}
		h.ServeHTTP(w, r)
	}))
	defer counting.Close()

	re, err := remote.Dial(counting.URL, remote.WithSnapshot("census"), remote.WithPageSize(5))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	total, err := re.NumKeys(v6class.Addresses)
	if err != nil {
		t.Fatal(err)
	}
	wantPages := int64((total + 4) / 5)
	if wantPages < 3 {
		t.Fatalf("census too small (%d keys) to observe paging", total)
	}

	// Early break: only the eagerly fetched first page crosses the wire.
	pageRequests.Store(0)
	seq, err := re.KeysOrdered(v6class.Addresses)
	if err != nil {
		t.Fatal(err)
	}
	for range seq {
		break
	}
	if n := pageRequests.Load(); n != 1 {
		t.Errorf("abandoned enumeration fetched %d pages, want 1", n)
	}

	// Re-iterating the same Seq replays the cached first page and walks
	// the rest lazily: a full drain costs the remaining pages only.
	var drained int
	for range seq {
		drained++
	}
	if drained != total {
		t.Errorf("drained %d keys, want %d", drained, total)
	}
	if n := pageRequests.Load(); n != wantPages {
		t.Errorf("full drain fetched %d pages total, want %d", n, wantPages)
	}
}

// TestEnumerationRestartsAcrossReload reloads the snapshot between the
// first and second page of an enumeration and asserts the streaming
// iterator resumes transparently — strictly after the last yielded key,
// against the new generation — returning the complete ascending stream
// with no duplicates.
func TestEnumerationRestartsAcrossReload(t *testing.T) {
	s, _ := reloadableServer(t)

	// Trip exactly one reload after the first /v1/keys page is served.
	var once sync.Once
	h := s.Handler()
	tripping := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(w, r)
		if r.URL.Path == "/v1/keys" {
			once.Do(func() {
				if _, err := s.Reload("census", ""); err != nil {
					t.Errorf("Reload: %v", err)
				}
			})
		}
	}))
	defer tripping.Close()

	re, err := remote.Dial(tripping.URL, remote.WithSnapshot("census"), remote.WithPageSize(5))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	ref := buildLocal(t, v6class.WithSequential())
	wantSeq, _ := ref.KeysOrdered(v6class.Addresses)
	want := slices.Collect(wantSeq)
	gotSeq, err := re.KeysOrdered(v6class.Addresses)
	if err != nil {
		t.Fatalf("KeysOrdered across reload: %v", err)
	}
	if got := slices.Collect(gotSeq); !slices.Equal(got, want) {
		t.Fatalf("restarted enumeration yields %d keys, want %d", len(got), len(want))
	}
}

// TestConcurrentQueriesAndReloads hammers the remote engine from several
// goroutines while the server swaps generations underneath — the -race
// exercise for the RCU registry, the paged enumerations and the retry
// policy. Every enumeration must come back complete (both generations hold
// the same census, so content never varies — only the generation does).
func TestConcurrentQueriesAndReloads(t *testing.T) {
	s, srv := reloadableServer(t)
	re, err := remote.Dial(srv.URL, remote.WithSnapshot("census"),
		remote.WithPageSize(5), remote.WithRetries(10))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	ref := buildLocal(t, v6class.WithSequential())
	wantSeq, _ := ref.KeysOrdered(v6class.Addresses)
	want := slices.Collect(wantSeq)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				seq, err := re.KeysOrdered(v6class.Addresses)
				if err != nil {
					t.Errorf("KeysOrdered under reloads: %v", err)
					return
				}
				if got := slices.Collect(seq); !slices.Equal(got, want) {
					t.Errorf("enumeration under reloads yields %d keys, want %d", len(got), len(want))
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := s.Reload("census", ""); err != nil {
				t.Errorf("Reload: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}
