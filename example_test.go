package v6class_test

import (
	"fmt"
	"log"

	"v6class"
)

// Example walks the full Engine lifecycle: construct with functional
// options, ingest a toy two-week study, Freeze, then query — scalar
// results and a streaming iterator with an early break.
func Example() {
	// One engine API; options pick and size the implementation.
	census, err := v6class.New(
		v6class.WithStudyDays(15),
		v6class.WithSequential(),
	)
	if err != nil {
		log.Fatal(err)
	}

	// A stable host visits every third day; a privacy host regenerates
	// its address daily inside the same /64.
	network := v6class.MustParseAddr("2001:db8:42:1::")
	stable := v6class.MustParseAddr("2001:db8:42:1::103")
	for day := 0; day < 15; day++ {
		logDay := v6class.DayLog{Day: day}
		if day%3 == 0 {
			logDay.Records = append(logDay.Records, v6class.Record{Addr: stable, Hits: 3})
		}
		privacy := network.WithIID(0x1a2b<<48 | uint64(day)*0x9e3779b97f4a7c15>>16)
		logDay.Records = append(logDay.Records, v6class.Record{Addr: privacy, Hits: 5})
		if err := census.AddDay(logDay); err != nil {
			log.Fatal(err)
		}
	}

	// Queries before Freeze fail with the typed lifecycle error.
	if _, err := census.Stability(v6class.Addresses, 6, 3); err != nil {
		fmt.Println(err)
	}
	census.Freeze()

	// The Table 2 cell: of the population active on day 6, who is
	// 3d-stable within the paper's (-7d,+7d) window?
	st, err := census.Stability(v6class.Addresses, 6, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 6: active %d, 3d-stable %d\n", st.Active, st.Stable)

	// Streaming enumeration: the iterator sweeps the engine's dense rows;
	// breaking out stops the sweep.
	addrs, err := census.StableAddrs(6, 3)
	if err != nil {
		log.Fatal(err)
	}
	for a := range addrs {
		fmt.Printf("probe target: %v\n", a)
		break
	}

	// Output:
	// v6class: engine is not frozen (call Freeze before querying)
	// day 6: active 2, 3d-stable 1
	// probe target: 2001:db8:42:1::103
}
