// Package bgp models the routing-registry side of the measurement study: a
// table of advertised BGP prefixes with originating autonomous systems, and
// longest-prefix-match lookup to attribute observed client addresses to
// their origin ASN and covering BGP prefix, as Section 4 of Plonka & Berger
// (IMC 2015) does when grouping addresses by network.
package bgp

import (
	"fmt"
	"sort"

	"v6class/internal/ipaddr"
	"v6class/internal/trie"
)

// ASN is an autonomous system number.
type ASN uint32

// Origin describes one advertised prefix.
type Origin struct {
	Prefix ipaddr.Prefix
	ASN    ASN
	Name   string // operator name, for reports
}

// Table is a longest-prefix-match routing table. The zero value is an empty
// table ready for use. Tables are not safe for concurrent mutation.
type Table struct {
	lpm     trie.Trie
	origins map[ipaddr.Prefix]Origin
	byASN   map[ASN][]ipaddr.Prefix
}

// Add announces prefix p originated by asn. Announcing the same prefix twice
// replaces its origin (as a routing update would).
func (t *Table) Add(p ipaddr.Prefix, asn ASN, name string) {
	if t.origins == nil {
		t.origins = make(map[ipaddr.Prefix]Origin)
		t.byASN = make(map[ASN][]ipaddr.Prefix)
	}
	if old, ok := t.origins[p]; ok {
		// Withdraw from the old ASN's list.
		l := t.byASN[old.ASN]
		for i, q := range l {
			if q == p {
				t.byASN[old.ASN] = append(l[:i], l[i+1:]...)
				break
			}
		}
	} else {
		t.lpm.Add(p, 1)
	}
	t.origins[p] = Origin{Prefix: p, ASN: asn, Name: name}
	t.byASN[asn] = append(t.byASN[asn], p)
}

// Len returns the number of advertised prefixes.
func (t *Table) Len() int { return len(t.origins) }

// ASNs returns the distinct origin ASNs in ascending order.
func (t *Table) ASNs() []ASN {
	out := make([]ASN, 0, len(t.byASN))
	for a := range t.byASN {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PrefixesOf returns the prefixes advertised by asn, in prefix order.
func (t *Table) PrefixesOf(asn ASN) []ipaddr.Prefix {
	out := append([]ipaddr.Prefix(nil), t.byASN[asn]...)
	sort.Slice(out, func(i, j int) bool { return out[i].Cmp(out[j]) < 0 })
	return out
}

// Lookup returns the origin of the longest advertised prefix covering a.
func (t *Table) Lookup(a ipaddr.Addr) (Origin, bool) {
	p, _, ok := t.lpm.LongestPrefixMatch(a)
	if !ok {
		return Origin{}, false
	}
	o, ok := t.origins[p]
	return o, ok
}

// Prefixes returns all advertised prefixes in prefix order.
func (t *Table) Prefixes() []ipaddr.Prefix {
	out := make([]ipaddr.Prefix, 0, len(t.origins))
	for p := range t.origins {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cmp(out[j]) < 0 })
	return out
}

// GroupByASN partitions addresses by origin ASN. Addresses matching no
// advertised prefix are grouped under the zero ASN.
func (t *Table) GroupByASN(addrs []ipaddr.Addr) map[ASN][]ipaddr.Addr {
	out := make(map[ASN][]ipaddr.Addr)
	for _, a := range addrs {
		o, ok := t.Lookup(a)
		if !ok {
			out[0] = append(out[0], a)
			continue
		}
		out[o.ASN] = append(out[o.ASN], a)
	}
	return out
}

// GroupByPrefix partitions addresses by covering advertised prefix,
// dropping addresses that match none.
func (t *Table) GroupByPrefix(addrs []ipaddr.Addr) map[ipaddr.Prefix][]ipaddr.Addr {
	out := make(map[ipaddr.Prefix][]ipaddr.Addr)
	for _, a := range addrs {
		if o, ok := t.Lookup(a); ok {
			out[o.Prefix] = append(out[o.Prefix], a)
		}
	}
	return out
}

func (o Origin) String() string {
	return fmt.Sprintf("%v AS%d (%s)", o.Prefix, o.ASN, o.Name)
}
