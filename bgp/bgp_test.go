package bgp

import (
	"testing"

	"v6class/internal/ipaddr"
)

func mustAddr(t *testing.T, s string) ipaddr.Addr {
	t.Helper()
	a, err := ipaddr.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func mustPfx(t *testing.T, s string) ipaddr.Prefix {
	t.Helper()
	p, err := ipaddr.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func buildTable(t *testing.T) *Table {
	t.Helper()
	tbl := &Table{}
	tbl.Add(mustPfx(t, "2001:db8::/32"), 64500, "ExampleNet")
	tbl.Add(mustPfx(t, "2001:db8:ff::/48"), 64501, "MoreSpecific")
	tbl.Add(mustPfx(t, "2600::/24"), 64502, "BigISP")
	tbl.Add(mustPfx(t, "2a00::/16"), 64503, "EUCarrier")
	return tbl
}

func TestLookupLongestMatch(t *testing.T) {
	tbl := buildTable(t)
	cases := []struct {
		addr string
		asn  ASN
		ok   bool
	}{
		{"2001:db8::1", 64500, true},
		{"2001:db8:ff::1", 64501, true}, // more-specific wins
		{"2001:db8:fe::1", 64500, true},
		{"2600:42::1", 64502, true}, // third byte 0x00 stays inside the /24
		{"2a00:1:2:3::4", 64503, true},
		{"3fff::1", 0, false},
	}
	for _, c := range cases {
		o, ok := tbl.Lookup(mustAddr(t, c.addr))
		if ok != c.ok {
			t.Errorf("Lookup(%s) ok = %v, want %v", c.addr, ok, c.ok)
			continue
		}
		if ok && o.ASN != c.asn {
			t.Errorf("Lookup(%s) = AS%d, want AS%d", c.addr, o.ASN, c.asn)
		}
	}
}

func TestReAnnounceReplacesOrigin(t *testing.T) {
	tbl := buildTable(t)
	tbl.Add(mustPfx(t, "2001:db8::/32"), 64999, "NewOwner")
	o, ok := tbl.Lookup(mustAddr(t, "2001:db8::1"))
	if !ok || o.ASN != 64999 {
		t.Errorf("after re-announce, Lookup = %v (%v)", o, ok)
	}
	if tbl.Len() != 4 {
		t.Errorf("Len = %d, want 4 (replace, not add)", tbl.Len())
	}
	// The old ASN no longer advertises it.
	if got := tbl.PrefixesOf(64500); len(got) != 0 {
		t.Errorf("old ASN still has %v", got)
	}
	if got := tbl.PrefixesOf(64999); len(got) != 1 {
		t.Errorf("new ASN has %v", got)
	}
}

func TestASNsAndPrefixes(t *testing.T) {
	tbl := buildTable(t)
	asns := tbl.ASNs()
	want := []ASN{64500, 64501, 64502, 64503}
	if len(asns) != len(want) {
		t.Fatalf("ASNs = %v", asns)
	}
	for i := range want {
		if asns[i] != want[i] {
			t.Errorf("ASNs[%d] = %d, want %d", i, asns[i], want[i])
		}
	}
	prefixes := tbl.Prefixes()
	if len(prefixes) != 4 {
		t.Fatalf("Prefixes = %v", prefixes)
	}
	for i := 1; i < len(prefixes); i++ {
		if prefixes[i-1].Cmp(prefixes[i]) >= 0 {
			t.Error("Prefixes not sorted")
		}
	}
}

func TestGroupByASN(t *testing.T) {
	tbl := buildTable(t)
	addrs := []ipaddr.Addr{
		mustAddr(t, "2001:db8::1"),
		mustAddr(t, "2001:db8::2"),
		mustAddr(t, "2600::1"),
		mustAddr(t, "3fff::1"), // unrouted
	}
	groups := tbl.GroupByASN(addrs)
	if len(groups[64500]) != 2 {
		t.Errorf("AS64500 group = %v", groups[64500])
	}
	if len(groups[64502]) != 1 {
		t.Errorf("AS64502 group = %v", groups[64502])
	}
	if len(groups[0]) != 1 {
		t.Errorf("unrouted group = %v", groups[0])
	}
}

func TestGroupByPrefix(t *testing.T) {
	tbl := buildTable(t)
	addrs := []ipaddr.Addr{
		mustAddr(t, "2001:db8::1"),
		mustAddr(t, "2001:db8:ff::1"),
		mustAddr(t, "3fff::1"),
	}
	groups := tbl.GroupByPrefix(addrs)
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[mustPfx(t, "2001:db8::/32")]) != 1 {
		t.Error("covering /32 should have exactly the less-specific client")
	}
	if len(groups[mustPfx(t, "2001:db8:ff::/48")]) != 1 {
		t.Error("/48 should capture its more-specific client")
	}
}

func TestEmptyTable(t *testing.T) {
	var tbl Table
	if _, ok := tbl.Lookup(mustAddr(t, "::1")); ok {
		t.Error("empty table should not match")
	}
	if tbl.Len() != 0 || len(tbl.ASNs()) != 0 {
		t.Error("empty table should be empty")
	}
}

func TestOriginString(t *testing.T) {
	o := Origin{Prefix: mustPfx(t, "2001:db8::/32"), ASN: 64500, Name: "X"}
	if got := o.String(); got != "2001:db8::/32 AS64500 (X)" {
		t.Errorf("String = %q", got)
	}
}
