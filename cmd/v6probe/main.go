// Command v6probe runs the closed measurement loop end to end against a
// synthetic world: each round trains the census-driven target generator
// on the current population, scans its ranked candidates through the
// world's probe topology, ingests the hits into a successor generation,
// freezes it, and reports the round's hit-rate — next to a uniform-random
// baseline drawn from the same dense regions, the comparison the paper's
// Section 6.2 motivates.
//
// Usage:
//
//	v6probe [-seed N] [-scale F] [-rounds N] [-budget N] [-inject-aliased P ...]
//
// Example: three daily rounds over a small world, with a known aliased
// /64 injected to exercise the detector:
//
//	v6probe -rounds 3 -inject-aliased 2a00:1450:100:a11a::/64
//
// The run is fully deterministic: the same flags produce byte-identical
// output, including the candidate streams and per-round hit sets — the
// property the loop's conformance suite builds on.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"v6class"
	"v6class/probe"
	"v6class/synth"
	"v6class/target"
)

// options is the parsed command line, separated from flag handling so the
// determinism test can call run directly.
type options struct {
	seed      uint64
	scale     float64
	studyDays int
	trainDays int
	probeDay  int
	rounds    int
	budget    int
	n         int
	p         int
	per64     int
	workers   int
	aliasK    int
	aliasTrig int
	aliasCool int
	injected  []v6class.Prefix
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("v6probe: ")
	var opts options
	flag.Uint64Var(&opts.seed, "seed", 7, "world and generator seed")
	flag.Float64Var(&opts.scale, "scale", 0.05, "population scale of the synthetic world")
	flag.IntVar(&opts.studyDays, "study-days", 16, "study period length")
	flag.IntVar(&opts.trainDays, "train-days", 1, "world days ingested into the initial census")
	flag.IntVar(&opts.probeDay, "probe-day", 8, "study day of the first round's hits (advances daily)")
	flag.IntVar(&opts.rounds, "rounds", 3, "generate-scan-ingest-freeze rounds to run")
	flag.IntVar(&opts.budget, "budget", 256, "candidate budget per round")
	flag.IntVar(&opts.n, "n", 3, "density class count (dense regions have >= n members)")
	flag.IntVar(&opts.p, "p", 116, "density class prefix length")
	flag.IntVar(&opts.per64, "per64", 64, "per-/64 fairness cap on generation")
	flag.IntVar(&opts.workers, "workers", 4, "scan worker pool size")
	flag.IntVar(&opts.aliasK, "alias-k", 8, "probes per alias check")
	flag.IntVar(&opts.aliasTrig, "alias-trigger", 3, "hits under one prefix before an alias check fires")
	flag.IntVar(&opts.aliasCool, "alias-cooldown", 8, "rounds an alias verdict is remembered")
	flag.Func("inject-aliased", "mark this prefix fully-responsive in the topology (repeatable)", func(v string) error {
		p, err := v6class.ParsePrefix(v)
		if err != nil {
			return err
		}
		opts.injected = append(opts.injected, p)
		return nil
	})
	flag.Parse()

	out, err := run(opts)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.WriteString(out)
}

// run executes the whole loop and returns its report as one string, so
// the output is assembled deterministically and testable byte for byte.
func run(opts options) (string, error) {
	if opts.trainDays <= 0 || opts.trainDays > opts.probeDay {
		return "", fmt.Errorf("train-days %d must be in [1, probe-day %d]", opts.trainDays, opts.probeDay)
	}
	if opts.rounds <= 0 || opts.probeDay+opts.rounds > opts.studyDays {
		return "", fmt.Errorf("rounds %d from probe-day %d exceed the %d-day study", opts.rounds, opts.probeDay, opts.studyDays)
	}
	world := synth.NewWorld(synth.Config{Seed: opts.seed, Scale: opts.scale, StudyDays: opts.studyDays})
	eng, err := v6class.New(v6class.WithStudyDays(opts.studyDays))
	if err != nil {
		return "", err
	}
	if err := eng.AddDays(world.Days(0, opts.trainDays)); err != nil {
		return "", err
	}
	if err := eng.Freeze(); err != nil {
		return "", err
	}
	topoFor := func(day int) *probe.Topology {
		topo := probe.NewTopology(world, day)
		for _, p := range opts.injected {
			topo.MarkAliased(p)
		}
		return topo
	}
	days := make([]int, opts.trainDays)
	for i := range days {
		days[i] = i
	}
	loop, err := target.NewLoop(eng, topoFor(opts.probeDay), target.LoopConfig{
		Seed:     opts.seed,
		Budget:   opts.budget,
		Density:  v6class.DensityClass{N: uint64(opts.n), P: opts.p},
		Per64:    opts.per64,
		Days:     days,
		ProbeDay: opts.probeDay,
		Workers:  opts.workers,
		Alias:    target.AliasConfig{K: opts.aliasK, Trigger: opts.aliasTrig, Cooldown: opts.aliasCool},
		Baseline: true,
	})
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "world seed=%d scale=%g study=%dd; census of days [0,%d): %d addresses\n",
		opts.seed, opts.scale, opts.studyDays, opts.trainDays, loop.Set().Len())
	totalHits := 0
	for r := 0; r < opts.rounds; r++ {
		day := opts.probeDay + r
		if r > 0 {
			if err := loop.AdvanceProbeDay(day, topoFor(day)); err != nil {
				return "", err
			}
		}
		rep, err := loop.Round(context.Background())
		if err != nil {
			return "", err
		}
		totalHits += rep.Hits
		// Probes and Suppressed are scheduling-dependent around a mid-scan
		// alias detection; everything printed here is deterministic.
		fmt.Fprintf(&b, "round %d day %d: regions=%d candidates=%d hits=%d rate=%.4f baseline=%d/%d rate=%.4f census=%d",
			rep.Round, day, rep.Regions, rep.Candidates, rep.Hits, rep.HitRate,
			rep.BaselineHits, rep.BaselineCandidates, rep.BaselineRate, rep.CensusAddrs)
		if len(rep.NewAliased) > 0 {
			fmt.Fprintf(&b, " new-aliased=%v", rep.NewAliased)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "total: %d hits over %d rounds; census %d addresses\n",
		totalHits, opts.rounds, loop.Set().Len())
	var aliased []string
	for p := range loop.Detector().Aliased() {
		aliased = append(aliased, p.String())
	}
	if len(aliased) > 0 {
		fmt.Fprintf(&b, "aliased: %s\n", strings.Join(aliased, " "))
	}
	return b.String(), nil
}
