package main

import (
	"strings"
	"testing"

	"v6class"
)

func defaultOpts() options {
	return options{
		seed: 7, scale: 0.05, studyDays: 16, trainDays: 1, probeDay: 8,
		rounds: 3, budget: 256, n: 3, p: 116, per64: 64, workers: 4,
		aliasK: 8, aliasTrig: 3, aliasCool: 8,
	}
}

// TestRunDeterministic is the command-level acceptance check: two runs
// with the same options produce byte-identical output — candidate
// streams, hit sets and all.
func TestRunDeterministic(t *testing.T) {
	a, err := run(defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := run(defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("runs diverge:\n--- run 1:\n%s--- run 2:\n%s", a, b)
	}
	if !strings.Contains(a, "round 2 day 10:") {
		t.Errorf("missing final round line:\n%s", a)
	}
	for _, line := range strings.Split(a, "\n") {
		if strings.Contains(line, "hits=0 ") {
			t.Errorf("round with zero hits: %q", line)
		}
	}
}

// TestRunInjectedAliased injects a ground-truth aliased /64 and expects
// the loop to detect and report it.
func TestRunInjectedAliased(t *testing.T) {
	opts := defaultOpts()
	opts.injected = []v6class.Prefix{v6class.MustParsePrefix("2a00:1450:100:64::/64")}
	out, err := run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "aliased: 2a00:1450:100:64::/64") {
		t.Errorf("injected aliased prefix not reported:\n%s", out)
	}
}

// TestRunValidation rejects impossible day plans.
func TestRunValidation(t *testing.T) {
	opts := defaultOpts()
	opts.rounds = 20
	if _, err := run(opts); err == nil {
		t.Error("rounds overflowing the study accepted")
	}
	opts = defaultOpts()
	opts.trainDays = 12
	if _, err := run(opts); err == nil {
		t.Error("training window past the probe day accepted")
	}
}
