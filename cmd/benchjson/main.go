// Command benchjson converts `go test -bench` output (the benchstat text
// format) on standard input into a JSON document on standard output, so CI
// can publish machine-readable benchmark artifacts alongside the raw text:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | tee bench.txt | benchjson > BENCH_pr.json
//
// Context lines (goos, goarch, cpu) are collected into a context object;
// each benchmark line becomes one record carrying its package (from the
// preceding pkg: line), sub-benchmark name, iteration count, and every
// reported metric — the standard ns/op, B/op, allocs/op plus any custom
// b.ReportMetric units such as records/s.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Result is the whole converted run.
type Result struct {
	Context    map[string]string `json:"context"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

// contextKeys are the benchstat header lines hoisted into Result.Context;
// pkg: is tracked separately because it changes per package.
var contextKeys = map[string]bool{"goos": true, "goarch": true, "cpu": true}

// parseBench reads `go test -bench` text output and extracts every
// benchmark line. Unrecognized lines (test chatter, PASS/ok trailers) are
// skipped, so the converter accepts the raw output of a multi-package run.
func parseBench(r io.Reader) (Result, error) {
	res := Result{Context: map[string]string{}, Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if key, val, ok := strings.Cut(line, ": "); ok && !strings.Contains(key, " ") {
			switch {
			case key == "pkg":
				pkg = val
			case contextKeys[key]:
				res.Context[key] = val
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is: name, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Package: pkg, Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return res, fmt.Errorf("benchjson: bad metric value %q in %q", fields[i], line)
			}
			b.Metrics[fields[i+1]] = v
		}
		res.Benchmarks = append(res.Benchmarks, b)
	}
	return res, sc.Err()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	res, err := parseBench(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		log.Fatal(err)
	}
}
