package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: v6class
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkIngest/sequential-8         	       1	1462049864 ns/op	    721017 records/s
BenchmarkIngest/sharded-8            	       1	 544961317 ns/op	   1934347 records/s
BenchmarkIngestStream-8              	       1	 640847210 ns/op	   1644939 records/s	51200 B/op	  12 allocs/op
PASS
ok  	v6class	12.921s
pkg: v6class/serve
BenchmarkServeLookup-8               	       1	  68938929 ns/op
some unrelated test log line
BenchmarkServeStabilityCached-8      	       1	     47931 ns/op
PASS
ok  	v6class/serve	0.163s
`

func TestParseBench(t *testing.T) {
	res, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if res.Context["goos"] != "linux" || res.Context["goarch"] != "amd64" {
		t.Errorf("context: %v", res.Context)
	}
	if res.Context["cpu"] != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu context: %q", res.Context["cpu"])
	}
	if len(res.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(res.Benchmarks))
	}
	first := res.Benchmarks[0]
	if first.Package != "v6class" || first.Name != "BenchmarkIngest/sequential-8" || first.Iterations != 1 {
		t.Errorf("first benchmark: %+v", first)
	}
	if first.Metrics["ns/op"] != 1462049864 || first.Metrics["records/s"] != 721017 {
		t.Errorf("first metrics: %v", first.Metrics)
	}
	stream := res.Benchmarks[2]
	if stream.Metrics["B/op"] != 51200 || stream.Metrics["allocs/op"] != 12 {
		t.Errorf("benchmem metrics: %v", stream.Metrics)
	}
	serveLookup := res.Benchmarks[3]
	if serveLookup.Package != "v6class/serve" {
		t.Errorf("package tracking across pkg: lines broke: %+v", serveLookup)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	res, err := parseBench(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Benchmarks) != 0 {
		t.Errorf("parsed %d benchmarks from chatter", len(res.Benchmarks))
	}
}
