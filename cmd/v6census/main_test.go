package main

import (
	"v6class"

	"os"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected to a pipe and returns what it
// printed.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	defer func() {
		os.Stdout = old
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

// sampleLog writes a small two-day dataset and returns its path.
func sampleLog(t *testing.T) string {
	t.Helper()
	rec := func(s string, hits uint64) v6class.Record {
		return v6class.Record{Addr: v6class.MustParseAddr(s), Hits: hits}
	}
	logs := []v6class.DayLog{
		{Day: 10, Records: []v6class.Record{
			rec("2001:db8:1:1::103", 5),
			rec("2001:db8:1:1:21e:c2ff:fec0:11db", 2),
			rec("2001:db8:1:2:3031:f3fd:bbdd:2c2a", 9),
			rec("2001:db8:1:3::1", 1),
			rec("2001:db8:1:3::2", 1),
			rec("2002:c000:204::1", 3),
		}},
		{Day: 13, Records: []v6class.Record{
			rec("2001:db8:1:1::103", 4),
			rec("2001:db8:1:2:aaaa:bbbb:cccc:dddd", 2),
		}},
	}
	path := t.TempDir() + "/sample.log"
	if err := v6class.WriteLogs(path, logs); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdSummary(t *testing.T) {
	path := sampleLog(t)
	out := capture(t, func() { cmdSummary([]string{"-in", path}) })
	for _, want := range []string{"unique addresses:   7", "6to4:", "EUI-64 addresses:   1", "native /64s:        3"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdStability(t *testing.T) {
	path := sampleLog(t)
	out := capture(t, func() { cmdStability([]string{"-in", path, "-ref", "13", "-n", "3"}) })
	if !strings.Contains(out, "3d-stable") {
		t.Errorf("stability output:\n%s", out)
	}
	// 2001:db8:1:1::103 was seen on days 10 and 13: 3d-stable.
	if !strings.Contains(out, "3d-stable (-7d,+7d): 1") {
		t.Errorf("expected one stable address:\n%s", out)
	}
}

func TestCmdMRAFormats(t *testing.T) {
	path := sampleLog(t)
	ascii := capture(t, func() { cmdMRA([]string{"-in", path, "-format", "ascii"}) })
	if !strings.Contains(ascii, "ratio (log2)") {
		t.Errorf("ascii output:\n%s", ascii)
	}
	svg := capture(t, func() { cmdMRA([]string{"-in", path, "-format", "svg"}) })
	if !strings.HasPrefix(svg, "<svg") {
		t.Error("svg output should start with <svg")
	}
	data := capture(t, func() { cmdMRA([]string{"-in", path, "-format", "data"}) })
	if !strings.Contains(data, "\t16\t") {
		t.Error("data output missing k=16 rows")
	}
}

func TestCmdDense(t *testing.T) {
	path := sampleLog(t)
	out := capture(t, func() { cmdDense([]string{"-in", path, "-n", "2", "-p", "112"}) })
	if !strings.Contains(out, "dense prefixes:     1") {
		t.Errorf("dense output:\n%s", out)
	}
	if !strings.Contains(out, "2001:db8:1:3::/112") {
		t.Errorf("expected the ::1/::2 block listed:\n%s", out)
	}
	least := capture(t, func() { cmdDense([]string{"-in", path, "-n", "2", "-p", "112", "-least-specific"}) })
	if !strings.Contains(least, "dense prefixes:") {
		t.Errorf("least-specific output:\n%s", least)
	}
}

func TestCmdPopDist(t *testing.T) {
	path := sampleLog(t)
	out := capture(t, func() { cmdPopDist([]string{"-in", path, "-agg", "48", "-of", "addrs"}) })
	if !strings.Contains(out, "48-aggregates of addrs") {
		t.Errorf("popdist output:\n%s", out)
	}
	out64 := capture(t, func() { cmdPopDist([]string{"-in", path, "-agg", "48", "-of", "64s"}) })
	if !strings.Contains(out64, "48-aggregates of 64s") {
		t.Errorf("popdist /64 output:\n%s", out64)
	}
}

func TestCmdAguri(t *testing.T) {
	path := sampleLog(t)
	out := capture(t, func() { cmdAguri([]string{"-in", path, "-min-frac", "0.10"}) })
	if !strings.Contains(out, "aguri profile") {
		t.Errorf("aguri output:\n%s", out)
	}
}

func TestCmdClassifyArgs(t *testing.T) {
	out := capture(t, func() {
		cmdClassify([]string{"2001:db8:0:1cdf:21e:c2ff:fec0:11db", "2002:c000:204::1", "bogus"})
	})
	if !strings.Contains(out, "eui64 mac=00:1e:c2:c0:11:db") {
		t.Errorf("classify output:\n%s", out)
	}
	if !strings.Contains(out, "6to4") || !strings.Contains(out, "v4=192.0.2.4") {
		t.Errorf("6to4 classification missing:\n%s", out)
	}
	if !strings.Contains(out, "invalid") {
		t.Errorf("bogus input should report invalid:\n%s", out)
	}
}

func TestCmdSignature(t *testing.T) {
	path := sampleLog(t)
	out := capture(t, func() { cmdSignature([]string{"-in", path}) })
	if !strings.Contains(out, "signature:") || !strings.Contains(out, "u-bit notch:") {
		t.Errorf("signature output:\n%s", out)
	}
}

func TestCmdLSP(t *testing.T) {
	// Two periods sharing one stable /64 with rotated privacy hosts.
	mk := func(day int, iids ...uint64) v6class.DayLog {
		l := v6class.DayLog{Day: day}
		base := v6class.MustParseAddr("2001:db8:77:1::")
		for _, iid := range iids {
			l.Records = append(l.Records, v6class.Record{Addr: base.WithIID(iid), Hits: 1})
		}
		return l
	}
	dir := t.TempDir()
	a := dir + "/a.log"
	b := dir + "/b.log.gz"
	// High-entropy privacy IIDs: the longest common prefix between the
	// two periods is the /64 network identifier (plus at most a few
	// coincidental IID bits).
	if err := v6class.WriteLogs(a, []v6class.DayLog{mk(0,
		0x1a2b3c4d5e6f7081, 0x9b8c7d6e5f4a3b2c, 0x2f3e4d5c6b7a8901, 0xe1d2c3b4a5968778)}); err != nil {
		t.Fatal(err)
	}
	if err := v6class.WriteLogs(b, []v6class.DayLog{mk(0,
		0x7a8b9cadbecfd0e1, 0x31425364758697a8, 0xc9dae8f708192a3b, 0x5f6e7d8c9badcabe)}); err != nil {
		t.Fatal(err)
	}
	out := capture(t, func() {
		cmdLSP([]string{"-a", a, "-b", b, "-min-bits", "48", "-min-support", "4"})
	})
	if !strings.Contains(out, "stable prefixes") {
		t.Errorf("lsp output:\n%s", out)
	}
	if !strings.Contains(out, "2001:db8:77:1:") {
		t.Errorf("expected a stable prefix within the shared /64:\n%s", out)
	}
}

func TestCmdLifetime(t *testing.T) {
	path := sampleLog(t)
	out := capture(t, func() { cmdLifetime([]string{"-in", path}) })
	if !strings.Contains(out, "single-day") || !strings.Contains(out, "return probability") {
		t.Errorf("lifetime output:\n%s", out)
	}
}

func TestCmdIngestAndStabilityFromState(t *testing.T) {
	dir := t.TempDir()
	path := sampleLog(t)
	state := dir + "/census.state"
	out := capture(t, func() { cmdIngest([]string{"-in", path, "-state", state}) })
	if !strings.Contains(out, "ingested 2 day(s)") {
		t.Fatalf("ingest output:\n%s", out)
	}
	// Re-ingest the same file (idempotent observations, summaries double:
	// acceptable for counts derived from temporal stores).
	out2 := capture(t, func() { cmdIngest([]string{"-in", path, "-state", state}) })
	if !strings.Contains(out2, "ingested") {
		t.Fatalf("second ingest output:\n%s", out2)
	}
	// Classify from the snapshot.
	st := capture(t, func() { cmdStability([]string{"-state", state, "-ref", "13", "-n", "3"}) })
	if !strings.Contains(st, "3d-stable (-7d,+7d): 1") {
		t.Errorf("state-based stability:\n%s", st)
	}
}

// TestIngestRefusesToOverwriteForeignState covers the -force protection:
// a -state path holding anything but a readable census snapshot must not
// be silently overwritten.
func TestIngestRefusesToOverwriteForeignState(t *testing.T) {
	path := sampleLog(t)
	dir := t.TempDir()

	t.Run("foreign file", func(t *testing.T) {
		state := dir + "/precious.dat"
		if err := os.WriteFile(state, []byte("user data, not a census"), 0o644); err != nil {
			t.Fatal(err)
		}
		err := runIngest([]string{"-in", path, "-state", state})
		if err == nil || !strings.Contains(err.Error(), "-force") {
			t.Fatalf("ingest into a foreign file should refuse and mention -force, got: %v", err)
		}
		// The file must be untouched after the refusal.
		got, rerr := os.ReadFile(state)
		if rerr != nil || string(got) != "user data, not a census" {
			t.Fatalf("refused ingest modified the state file: %q, %v", got, rerr)
		}
		// With -force it is replaced by a valid snapshot.
		out := capture(t, func() {
			if err := runIngest([]string{"-in", path, "-state", state, "-force"}); err != nil {
				t.Errorf("forced ingest: %v", err)
			}
		})
		if !strings.Contains(out, "ingested 2 day(s)") {
			t.Errorf("forced ingest output:\n%s", out)
		}
		st := capture(t, func() { cmdStability([]string{"-state", state, "-ref", "13", "-n", "3"}) })
		if !strings.Contains(st, "3d-stable") {
			t.Errorf("forced snapshot unreadable:\n%s", st)
		}
	})

	t.Run("truncated snapshot", func(t *testing.T) {
		state := dir + "/truncated.state"
		good := dir + "/good.state"
		if err := runIngest([]string{"-in", path, "-state", good}); err != nil {
			t.Fatal(err)
		}
		full, err := os.ReadFile(good)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(state, full[:len(full)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := runIngest([]string{"-in", path, "-state", state}); err == nil || !strings.Contains(err.Error(), "-force") {
			t.Fatalf("ingest into a truncated snapshot should refuse, got: %v", err)
		}
		// The parallel reader takes the same protection.
		if err := runIngest([]string{"-in", path, "-state", state, "-parallel"}); err == nil || !strings.Contains(err.Error(), "-force") {
			t.Fatalf("parallel ingest into a truncated snapshot should refuse, got: %v", err)
		}
	})

	t.Run("unopenable path", func(t *testing.T) {
		// A directory can be os.Open'd but never read as a snapshot.
		state := dir + "/subdir"
		if err := os.Mkdir(state, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := runIngest([]string{"-in", path, "-state", state}); err == nil {
			t.Fatal("ingest into a directory should fail")
		}
	})

	t.Run("missing state still created without force", func(t *testing.T) {
		state := dir + "/new.state"
		if err := runIngest([]string{"-in", path, "-state", state}); err != nil {
			t.Fatalf("creating a fresh snapshot must not need -force: %v", err)
		}
	})

	t.Run("days beyond the study length are refused, not dropped", func(t *testing.T) {
		// A snapshot sized for 20 days cannot absorb a day-25 log: the
		// temporal stores would silently ignore it.
		state := dir + "/short.state"
		if err := runIngest([]string{"-in", path, "-state", state, "-study-days", "20"}); err != nil {
			t.Fatal(err)
		}
		late := dir + "/late.log"
		if err := v6class.WriteLogs(late, []v6class.DayLog{{Day: 25, Records: []v6class.Record{
			{Addr: v6class.MustParseAddr("2001:db8:1:1::103"), Hits: 1},
		}}}); err != nil {
			t.Fatal(err)
		}
		err := runIngest([]string{"-in", late, "-state", state})
		if err == nil || !strings.Contains(err.Error(), "study length") {
			t.Fatalf("over-length ingest should refuse, got: %v", err)
		}
		// Creating a fresh snapshot with too small an explicit length is
		// refused the same way.
		if err := runIngest([]string{"-in", late, "-state", dir + "/tiny.state", "-study-days", "5"}); err == nil {
			t.Fatal("creating a snapshot too small for its logs should fail")
		}
	})

	t.Run("bad flag returns an error instead of exiting", func(t *testing.T) {
		if err := runIngest([]string{"-no-such-flag"}); err == nil {
			t.Fatal("unknown flag should surface as an error")
		}
	})

	t.Run("missing input returns an error instead of exiting", func(t *testing.T) {
		if err := runIngest([]string{"-in", dir + "/no/such.log", "-state", dir + "/x.state"}); err == nil {
			t.Fatal("unreadable -in should surface as an error")
		}
	})
}

func TestCmdOverlap(t *testing.T) {
	path := sampleLog(t)
	out := capture(t, func() { cmdOverlap([]string{"-in", path, "-ref", "13"}) })
	if !strings.Contains(out, "ref overlap") {
		t.Errorf("overlap output:\n%s", out)
	}
	// Day 13 has 2 actives, 1 of which (::103) was active on day 10 too.
	if !strings.Contains(out, "10    ") {
		t.Errorf("day rows missing:\n%s", out)
	}
}

// TestCmdConvert exercises the format converter: ingest saves v2 by
// default (or v1 under -format), and convert rewrites between the formats
// losslessly — a v1→v2→v1 round trip reproduces the original file.
func TestCmdConvert(t *testing.T) {
	path := sampleLog(t)
	dir := t.TempDir()
	v1 := dir + "/census.v1"
	if err := runIngest([]string{"-in", path, "-state", v1, "-format", "v1"}); err != nil {
		t.Fatal(err)
	}
	if info, err := v6class.SniffSnapshot(v1); err != nil || info.Version != 1 {
		t.Fatalf("ingest -format v1 wrote version %d (err %v), want 1", info.Version, err)
	}

	v2 := dir + "/census.v2"
	if err := runConvert([]string{"-in", v1, "-out", v2}); err != nil {
		t.Fatal(err)
	}
	if info, err := v6class.SniffSnapshot(v2); err != nil || info.Version != 2 {
		t.Fatalf("convert wrote version %d (err %v), want 2", info.Version, err)
	}

	back := dir + "/census.back"
	if err := runConvert([]string{"-in", v2, "-out", back, "-format", "v1"}); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(v1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(orig) != string(got) {
		t.Error("v1 -> v2 -> v1 round trip changed the snapshot bytes")
	}

	// In-place upgrade: -out defaults to -in.
	if err := runConvert([]string{"-in", v1}); err != nil {
		t.Fatal(err)
	}
	if info, _ := v6class.SniffSnapshot(v1); info.Version != 2 {
		t.Fatalf("in-place convert left version %d, want 2", info.Version)
	}

	// A converted snapshot still answers queries like the original census.
	eng, err := v6class.Open(v1, v6class.WithSequential())
	if err != nil {
		t.Fatal(err)
	}
	eng.Freeze()
	n, err := eng.NumKeys(v6class.Addresses)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("converted census has %d addresses, want 6", n)
	}

	for _, bad := range [][]string{
		{},                                 // missing -in
		{"-in", v1, "-format", "v9"},       // unknown format
		{"-in", dir + "/nope", "-out", v2}, // unreadable input
	} {
		if err := runConvert(bad); err == nil {
			t.Errorf("runConvert(%v) succeeded, want error", bad)
		}
	}
}
