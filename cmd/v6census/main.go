// Command v6census classifies active IPv6 addresses from aggregated daily
// logs (as produced by v6gen, or any data in the same text format),
// implementing the temporal and spatial classifiers of Plonka & Berger
// (IMC 2015).
//
// Usage:
//
//	v6census summary   [-in FILE]                      Table 1-style format tally
//	v6census stability [-in FILE] [-ref DAY] [-n N]    nd-stable classification
//	v6census mra       [-in FILE] [-format ascii|svg|data] [-title T]
//	v6census dense     [-in FILE] [-n N] [-p P] [-least-specific]
//	v6census popdist   [-in FILE] [-agg P] [-of addrs|64s]
//	v6census aguri     [-in FILE] [-min-frac F]
//	v6census classify  [ADDR...]                       format-classify addresses
//	v6census signature [-in FILE]                      MRA-based spatial signature
//	v6census lsp       -a FILE -b FILE [-min-bits N] [-min-support N]
//	v6census lifetime  [-in FILE]                      lifespan and return-rate stats
//	v6census ingest    -in FILE -state FILE [-force]   add logs to a census snapshot
//	v6census overlap   [-in FILE] [-ref DAY]           Figure 4 overlap series
//
// All subcommands read every "#day N" section of the input; files ending
// in ".gz" are decompressed transparently. The stability, ingest and
// overlap subcommands accept -parallel to ingest through the sharded
// concurrent pipeline (identical results, GOMAXPROCS-scaled throughput).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"v6class/internal/addrclass"
	"v6class/internal/cdnlog"
	"v6class/internal/core"
	"v6class/internal/ipaddr"
	"v6class/internal/mraplot"
	"v6class/internal/spatial"
	"v6class/internal/stats"
	"v6class/internal/temporal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("v6census: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "summary":
		cmdSummary(args)
	case "stability":
		cmdStability(args)
	case "mra":
		cmdMRA(args)
	case "dense":
		cmdDense(args)
	case "popdist":
		cmdPopDist(args)
	case "aguri":
		cmdAguri(args)
	case "classify":
		cmdClassify(args)
	case "signature":
		cmdSignature(args)
	case "lsp":
		cmdLSP(args)
	case "lifetime":
		cmdLifetime(args)
	case "ingest":
		cmdIngest(args)
	case "overlap":
		cmdOverlap(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: v6census {summary|stability|mra|dense|popdist|aguri|classify|signature|lsp|lifetime|ingest|overlap} [flags]")
	os.Exit(2)
}

// readLogs loads all day sections from the input (gzip transparent).
func readLogs(path string) []cdnlog.DayLog {
	logs, err := cdnlog.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	if len(logs) == 0 {
		log.Fatal("no day sections in input")
	}
	return logs
}

// buildCensus constructs the chosen ingestion engine and feeds it logs.
// With parallel true the sharded concurrent pipeline ingests and freezes
// the census; both engines answer every analysis identically.
func buildCensus(logs []cdnlog.DayLog, cfg core.CensusConfig, parallel bool) core.Analyzer {
	if parallel {
		c := core.NewShardedCensus(cfg)
		c.AddDays(logs)
		c.Freeze()
		return c
	}
	c := core.NewCensus(cfg)
	for _, l := range logs {
		c.AddDay(l)
	}
	return c
}

// censusOf ingests logs into a census sized to fit them.
func censusOf(logs []cdnlog.DayLog, parallel bool) core.Analyzer {
	maxDay := 0
	for _, l := range logs {
		if l.Day > maxDay {
			maxDay = l.Day
		}
	}
	return buildCensus(logs, core.CensusConfig{StudyDays: maxDay + 1}, parallel)
}

func cmdSummary(args []string) {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	in := fs.String("in", "-", "input log file (- for stdin)")
	fs.Parse(args)
	logs := readLogs(*in)

	sum := addrclass.Summarize(cdnlog.UniqueAddrs(logs))
	p64 := make(map[ipaddr.Prefix]bool)
	macs := make(map[addrclass.MAC]bool)
	for _, a := range cdnlog.UniqueAddrs(logs) {
		k := addrclass.Classify(a)
		if k.IsTransition() {
			continue
		}
		p64[ipaddr.PrefixFrom(a, 64)] = true
		if mac, ok := addrclass.EUI64MAC(a); ok {
			macs[mac] = true
		}
	}
	fmt.Printf("days:               %d\n", len(logs))
	fmt.Printf("unique addresses:   %d\n", sum.Total)
	for _, k := range []addrclass.Kind{addrclass.KindTeredo, addrclass.KindISATAP, addrclass.Kind6to4} {
		fmt.Printf("%-19s %d (%.2f%%)\n", k.String()+":", sum.ByKind[k], 100*float64(sum.ByKind[k])/float64(sum.Total))
	}
	fmt.Printf("other (native):     %d (%.2f%%)\n", sum.Native(), 100*float64(sum.Native())/float64(sum.Total))
	fmt.Printf("native /64s:        %d\n", len(p64))
	if len(p64) > 0 {
		fmt.Printf("avg addrs per /64:  %.2f\n", float64(sum.Native())/float64(len(p64)))
	}
	fmt.Printf("EUI-64 addresses:   %d\n", sum.ByKind[addrclass.KindEUI64])
	fmt.Printf("EUI-64 MACs:        %d\n", len(macs))
}

func cmdStability(args []string) {
	fs := flag.NewFlagSet("stability", flag.ExitOnError)
	in := fs.String("in", "", "input log file (- for stdin)")
	state := fs.String("state", "", "census snapshot to classify instead of raw logs")
	ref := fs.Int("ref", -1, "reference day (default: middle day of input)")
	n := fs.Int("n", 3, "the n of nd-stable")
	window := fs.Int("window", 7, "window half-width in days")
	parallel := fs.Bool("parallel", false, "ingest with the sharded concurrent pipeline")
	fs.Parse(args)

	var c core.Analyzer
	switch {
	case *state != "":
		f, err := os.Open(*state)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if *parallel {
			sc, err := core.ReadShardedCensus(f)
			if err != nil {
				log.Fatal(err)
			}
			sc.Freeze()
			c = sc
		} else {
			c, err = core.ReadCensus(f)
			if err != nil {
				log.Fatal(err)
			}
		}
		if *ref < 0 {
			log.Fatal("-state requires an explicit -ref day")
		}
	default:
		if *in == "" {
			*in = "-"
		}
		logs := readLogs(*in)
		c = censusOf(logs, *parallel)
		if *ref < 0 {
			*ref = logs[len(logs)/2].Day
		}
	}

	opts := temporal.Options{Window: temporal.Window{Before: *window, After: *window}}
	for _, pop := range []struct {
		name string
		p    core.Population
	}{{"addresses", core.Addresses}, {"/64 prefixes", core.Prefixes64}} {
		st := c.StabilityWith(pop.p, *ref, *n, opts)
		fmt.Printf("%s active on day %d: %d\n", pop.name, *ref, st.Active)
		fmt.Printf("  %dd-stable (-%dd,+%dd): %d (%.2f%%)\n",
			*n, *window, *window, st.Stable, pct(st.Stable, st.Active))
		fmt.Printf("  not %dd-stable:        %d (%.2f%%)\n", *n, st.NotStable, pct(st.NotStable, st.Active))
	}
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func cmdMRA(args []string) {
	fs := flag.NewFlagSet("mra", flag.ExitOnError)
	in := fs.String("in", "-", "input log file (- for stdin)")
	format := fs.String("format", "ascii", "output format: ascii, svg, or data")
	title := fs.String("title", "MRA plot", "plot title")
	native := fs.Bool("native-only", true, "exclude transition-mechanism addresses")
	fs.Parse(args)
	logs := readLogs(*in)

	var set spatial.AddressSet
	for _, a := range cdnlog.UniqueAddrs(logs) {
		if *native && addrclass.Classify(a).IsTransition() {
			continue
		}
		set.Add(a)
	}
	plot := mraplot.New(fmt.Sprintf("%s (%d addrs)", *title, set.Len()), set.MRA())
	switch *format {
	case "ascii":
		fmt.Print(plot.ASCII())
	case "svg":
		fmt.Print(plot.SVG())
	case "data":
		fmt.Print(plot.DataRows())
	default:
		log.Fatalf("unknown format %q", *format)
	}
}

func cmdDense(args []string) {
	fs := flag.NewFlagSet("dense", flag.ExitOnError)
	in := fs.String("in", "-", "input log file (- for stdin)")
	n := fs.Uint64("n", 2, "minimum addresses per dense prefix")
	p := fs.Int("p", 112, "dense prefix length")
	least := fs.Bool("least-specific", false, "report least-specific dense prefixes (densify)")
	limit := fs.Int("limit", 20, "example prefixes to print")
	fs.Parse(args)
	logs := readLogs(*in)

	var set spatial.AddressSet
	for _, a := range cdnlog.UniqueAddrs(logs) {
		set.Add(a)
	}
	cls := spatial.DensityClass{N: *n, P: *p}
	var res spatial.DensityResult
	if *least {
		res = set.DenseLeastSpecific(cls)
	} else {
		res = set.DenseFixed(cls)
	}
	fmt.Printf("density class:      %v\n", cls)
	fmt.Printf("dense prefixes:     %d\n", len(res.Prefixes))
	fmt.Printf("covered addresses:  %d\n", res.CoveredAddresses)
	fmt.Printf("possible addresses: %.0f\n", res.PossibleAddresses)
	fmt.Printf("address density:    %.10f\n", res.Density())
	_, examples := spatial.ScanTargets(res, *limit)
	for _, ex := range examples {
		fmt.Printf("  %v\n", ex)
	}
}

func cmdPopDist(args []string) {
	fs := flag.NewFlagSet("popdist", flag.ExitOnError)
	in := fs.String("in", "-", "input log file (- for stdin)")
	agg := fs.Int("agg", 48, "aggregate prefix length")
	of := fs.String("of", "addrs", "population unit: addrs or 64s")
	fs.Parse(args)
	logs := readLogs(*in)

	var set spatial.AddressSet
	for _, a := range cdnlog.UniqueAddrs(logs) {
		switch *of {
		case "addrs":
			set.Add(a)
		case "64s":
			set.AddPrefix(ipaddr.PrefixFrom(a, 64))
		default:
			log.Fatalf("unknown unit %q", *of)
		}
	}
	pops := set.AggregatePopulations(*agg)
	ccdf := stats.CCDF(stats.Counts(pops))
	fmt.Printf("%d-aggregates of %s: %d occupied\n", *agg, *of, len(pops))
	if len(ccdf) == 0 {
		return
	}
	max := ccdf[len(ccdf)-1].Value
	for _, v := range stats.LogBuckets(max) {
		fmt.Printf("  population >= %-9.0f proportion %.3e\n", v, stats.CCDFAt(ccdf, v))
	}
}

func cmdAguri(args []string) {
	fs := flag.NewFlagSet("aguri", flag.ExitOnError)
	in := fs.String("in", "-", "input log file (- for stdin)")
	frac := fs.Float64("min-frac", 0.01, "minimum fraction of total hits per reported prefix")
	fs.Parse(args)
	logs := readLogs(*in)

	// Hits weight the aguri profile, as Cho et al.'s traffic profiler does.
	var set spatial.AddressSet
	for _, l := range logs {
		for _, rec := range l.Records {
			set.Trie().Add(ipaddr.PrefixFrom(rec.Addr, 128), rec.Hits)
		}
	}
	min := uint64(float64(set.Total()) * *frac)
	if min == 0 {
		min = 1
	}
	out := set.Trie().AguriAggregate(min)
	fmt.Printf("aguri profile (threshold %.2f%% = %d hits):\n", *frac*100, min)
	for _, pc := range out {
		fmt.Printf("  %-45v %10d (%.2f%%)\n", pc.Prefix, pc.Count, 100*float64(pc.Count)/float64(set.Total()))
	}
}

// cmdClassify format-classifies addresses given as arguments, or one per
// line on standard input when no arguments are given.
func cmdClassify(args []string) {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	fs.Parse(args)
	classifyOne := func(s string) {
		a, err := ipaddr.ParseAddr(s)
		if err != nil {
			fmt.Printf("%-42s invalid: %v\n", s, err)
			return
		}
		kind := addrclass.Classify(a)
		fmt.Printf("%-42s %v", a, kind)
		if mac, ok := addrclass.EUI64MAC(a); ok {
			fmt.Printf(" mac=%v", mac)
		}
		if v4, ok := addrclass.Embedded6to4IPv4(a); ok {
			fmt.Printf(" v4=%d.%d.%d.%d", v4>>24, v4>>16&0xff, v4>>8&0xff, v4&0xff)
		}
		fmt.Println()
	}
	if fs.NArg() > 0 {
		for _, s := range fs.Args() {
			classifyOne(s)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			classifyOne(line)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

// cmdSignature reports the MRA-based spatial signature of the input
// population, plus the key ratios the classification rests on.
func cmdSignature(args []string) {
	fs := flag.NewFlagSet("signature", flag.ExitOnError)
	in := fs.String("in", "-", "input log file (- for stdin)")
	fs.Parse(args)
	logs := readLogs(*in)

	var set spatial.AddressSet
	for _, a := range cdnlog.UniqueAddrs(logs) {
		set.Add(a)
	}
	m := set.MRA()
	fmt.Printf("population:      %d addresses\n", set.Len())
	fmt.Printf("signature:       %v\n", spatial.ClassifySignature(m))
	fmt.Printf("u-bit notch:     %v\n", m.UBitNotch())
	fmt.Printf("gamma16 @ 16-32: %.2f\n", m.Ratio(16, 16))
	fmt.Printf("gamma16 @ 32-48: %.2f\n", m.Ratio(32, 16))
	fmt.Printf("gamma16 @ 48-64: %.2f\n", m.Ratio(48, 16))
	fmt.Printf("gamma16 @112-128:%.2f\n", m.Ratio(112, 16))
}

// cmdLSP discovers the longest stable prefixes between two log files
// covering separated periods (the Section 7.2 proposal).
func cmdLSP(args []string) {
	fs := flag.NewFlagSet("lsp", flag.ExitOnError)
	fileA := fs.String("a", "", "first-period log file")
	fileB := fs.String("b", "", "second-period log file")
	minBits := fs.Int("min-bits", 32, "minimum stable prefix length")
	minSupport := fs.Uint64("min-support", 4, "minimum supporting addresses")
	limit := fs.Int("limit", 30, "prefixes to print")
	fs.Parse(args)
	if *fileA == "" || *fileB == "" {
		log.Fatal("lsp requires -a and -b")
	}
	logsA := readLogs(*fileA)
	logsB := readLogs(*fileB)

	// Re-day the logs into one census: period A keeps its days, period B
	// is shifted past A if they overlap.
	maxA := 0
	for _, l := range logsA {
		if l.Day > maxA {
			maxA = l.Day
		}
	}
	shift := 0
	minB := int(^uint(0) >> 1)
	for _, l := range logsB {
		if l.Day < minB {
			minB = l.Day
		}
	}
	if minB <= maxA {
		shift = maxA + 1 - minB
	}
	maxB := 0
	for _, l := range logsB {
		if l.Day+shift > maxB {
			maxB = l.Day + shift
		}
	}
	c := core.NewCensus(core.CensusConfig{StudyDays: maxB + 1})
	for _, l := range logsA {
		c.AddDay(l)
	}
	for _, l := range logsB {
		l.Day += shift
		c.AddDay(l)
	}
	got := c.LongestStablePrefixes(0, maxA, logsB[0].Day+shift, maxB, *minBits, *minSupport)
	fmt.Printf("%d stable prefixes (>= /%d, support >= %d):\n", len(got), *minBits, *minSupport)
	for i, p := range got {
		if i >= *limit {
			fmt.Printf("  ... %d more\n", len(got)-*limit)
			break
		}
		fmt.Printf("  %-45v support %d\n", p.Prefix, p.Support)
	}
}

// cmdLifetime reports lifespan statistics and day-over-day return
// probabilities for the input's addresses and /64s.
func cmdLifetime(args []string) {
	fs := flag.NewFlagSet("lifetime", flag.ExitOnError)
	in := fs.String("in", "-", "input log file (- for stdin)")
	fs.Parse(args)
	logs := readLogs(*in)

	minDay, maxDay := logs[0].Day, logs[0].Day
	for _, l := range logs {
		if l.Day < minDay {
			minDay = l.Day
		}
		if l.Day > maxDay {
			maxDay = l.Day
		}
	}
	addrs := temporal.NewStore[ipaddr.Addr](maxDay + 1)
	p64s := temporal.NewStore[ipaddr.Prefix](maxDay + 1)
	for _, l := range logs {
		for _, r := range l.Records {
			addrs.Observe(r.Addr, temporal.Day(l.Day))
			p64s.Observe(ipaddr.PrefixFrom(r.Addr, 64), temporal.Day(l.Day))
		}
	}
	report := func(name string, st temporal.LifetimeStats) {
		fmt.Printf("%s: %d keys, %.1f%% single-day, median span %d day(s)\n",
			name, st.Keys, 100*st.SingleDayShare(), st.MedianSpan())
	}
	report("addresses", addrs.Lifetimes(temporal.Day(minDay), temporal.Day(maxDay)))
	report("/64s", p64s.Lifetimes(temporal.Day(minDay), temporal.Day(maxDay)))
	maxGap := maxDay - minDay
	if maxGap > 7 {
		maxGap = 7
	}
	if maxGap >= 1 {
		rp := addrs.ReturnProbability(temporal.Day(minDay), temporal.Day(maxDay), maxGap)
		rp64 := p64s.ReturnProbability(temporal.Day(minDay), temporal.Day(maxDay), maxGap)
		fmt.Println("return probability by gap (addresses vs /64s):")
		for g := 1; g <= maxGap; g++ {
			fmt.Printf("  +%dd: %.3f vs %.3f\n", g, rp[g], rp64[g])
		}
	}
}

// cmdIngest adds a log file's days to a census snapshot, creating the
// snapshot when absent. The snapshot's study length must accommodate every
// ingested day.
func cmdIngest(args []string) {
	if err := runIngest(args); err != nil {
		log.Fatal(err)
	}
}

// runIngest is cmdIngest's testable body. An existing -state file that can
// be read as a census snapshot is extended (the incremental workflow);
// one that cannot — a foreign file, a truncated snapshot, an unreadable
// path — is never silently overwritten: ingestion refuses unless -force is
// given, in which case a fresh census replaces it.
func runIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ContinueOnError)
	in := fs.String("in", "-", "input log file (- for stdin)")
	state := fs.String("state", "", "census snapshot path (created if missing)")
	studyDays := fs.Int("study-days", 0, "study length for a new snapshot (default: max day + 30)")
	parallel := fs.Bool("parallel", false, "ingest with the sharded concurrent pipeline")
	force := fs.Bool("force", false, "replace an existing -state file that is not a readable census snapshot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *state == "" {
		return fmt.Errorf("ingest requires -state")
	}
	logs, err := cdnlog.ReadFile(*in)
	if err != nil {
		return err
	}
	if len(logs) == 0 {
		return fmt.Errorf("no day sections in input")
	}

	maxDay := 0
	for _, l := range logs {
		if l.Day > maxDay {
			maxDay = l.Day
		}
	}
	newDays := *studyDays
	if newDays == 0 {
		newDays = maxDay + 30
	}
	// Observations beyond a census's study length are silently ignored by
	// the temporal stores, so refusing up front is the only way to avoid
	// quiet data loss.
	checkFits := func(c core.Analyzer) error {
		if maxDay >= c.StudyDays() {
			return fmt.Errorf("snapshot %s has study length %d and cannot hold day %d; re-create it with a larger -study-days", *state, c.StudyDays(), maxDay)
		}
		return nil
	}

	// fresh reports whether overwriting state with a newly built census is
	// permitted: always for a path that does not exist yet, only under
	// -force when something unreadable is already there.
	fresh := func(reason error) (core.Analyzer, error) {
		if reason != nil && !*force {
			return nil, fmt.Errorf("refusing to overwrite %s: %v (use -force to replace it)", *state, reason)
		}
		if *studyDays > 0 && maxDay >= *studyDays {
			return nil, fmt.Errorf("-study-days %d cannot hold day %d", *studyDays, maxDay)
		}
		return buildCensus(logs, core.CensusConfig{StudyDays: newDays}, *parallel), nil
	}

	var c core.Analyzer
	f, err := os.Open(*state)
	switch {
	case err == nil && *parallel:
		sc, rerr := core.ReadShardedCensus(f)
		f.Close()
		if rerr != nil {
			if c, err = fresh(fmt.Errorf("not a readable census snapshot: %w", rerr)); err != nil {
				return err
			}
		} else {
			if err := checkFits(sc); err != nil {
				return err
			}
			sc.AddDays(logs)
			c = sc
		}
	case err == nil:
		seq, rerr := core.ReadCensus(f)
		f.Close()
		if rerr != nil {
			if c, err = fresh(fmt.Errorf("not a readable census snapshot: %w", rerr)); err != nil {
				return err
			}
		} else {
			if err := checkFits(seq); err != nil {
				return err
			}
			for _, l := range logs {
				seq.AddDay(l)
			}
			c = seq
		}
	case os.IsNotExist(err):
		if c, err = fresh(nil); err != nil {
			return err
		}
	default:
		// The path exists but cannot even be opened (permissions, a
		// directory, ...): clobbering it was the old silent-overwrite bug.
		if c, err = fresh(err); err != nil {
			return err
		}
	}
	// Write to a temp file and rename over the target, so a failed or
	// interrupted write can never destroy the existing snapshot.
	tmp, err := os.CreateTemp(filepath.Dir(*state), ".v6census-state-*")
	if err != nil {
		return err
	}
	if _, err := c.WriteTo(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// CreateTemp makes the file 0600; restore the conventional snapshot
	// mode so other daily-pipeline users (v6served, backups) can read it.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), *state); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	fmt.Printf("ingested %d day(s) into %s (study length %d)\n", len(logs), *state, c.StudyDays())
	return nil
}

// cmdOverlap prints the Figure 4 series: per-day active counts and the
// overlap of each day's population with a reference day.
func cmdOverlap(args []string) {
	fs := flag.NewFlagSet("overlap", flag.ExitOnError)
	in := fs.String("in", "-", "input log file (- for stdin)")
	ref := fs.Int("ref", -1, "reference day (default: middle day of input)")
	parallel := fs.Bool("parallel", false, "ingest with the sharded concurrent pipeline")
	fs.Parse(args)
	logs := readLogs(*in)
	c := censusOf(logs, *parallel)
	if *ref < 0 {
		*ref = logs[len(logs)/2].Day
	}
	minDay, maxDay := logs[0].Day, logs[0].Day
	for _, l := range logs {
		if l.Day < minDay {
			minDay = l.Day
		}
		if l.Day > maxDay {
			maxDay = l.Day
		}
	}
	series := c.OverlapSeries(core.Addresses, *ref, *ref-minDay, maxDay-*ref)
	series64 := c.OverlapSeries(core.Prefixes64, *ref, *ref-minDay, maxDay-*ref)
	fmt.Printf("%-6s %12s %12s %12s %12s\n", "day", "active", "ref overlap", "active /64s", "ref /64s")
	for d := minDay; d <= maxDay; d++ {
		i := d - minDay
		fmt.Printf("%-6d %12d %12d %12d %12d\n", d,
			c.ActiveCount(core.Addresses, d), series[i],
			c.ActiveCount(core.Prefixes64, d), series64[i])
	}
}
