// Command v6census classifies active IPv6 addresses from aggregated daily
// logs (as produced by v6gen, or any data in the same text format),
// implementing the temporal and spatial classifiers of Plonka & Berger
// (IMC 2015).
//
// Usage:
//
//	v6census summary   [-in FILE]                      Table 1-style format tally
//	v6census stability [-in FILE] [-ref DAY] [-n N]    nd-stable classification
//	v6census mra       [-in FILE] [-format ascii|svg|data] [-title T]
//	v6census dense     [-in FILE] [-n N] [-p P] [-least-specific]
//	v6census popdist   [-in FILE] [-agg P] [-of addrs|64s]
//	v6census aguri     [-in FILE] [-min-frac F]
//	v6census classify  [ADDR...]                       format-classify addresses
//	v6census signature [-in FILE]                      MRA-based spatial signature
//	v6census lsp       -a FILE -b FILE [-min-bits N] [-min-support N]
//	v6census lifetime  [-in FILE]                      lifespan and return-rate stats
//	v6census ingest    -in FILE -state FILE [-force] [-format v1|v2]   add logs to a census snapshot
//	v6census overlap   [-in FILE] [-ref DAY]           Figure 4 overlap series
//	v6census convert   -in SNAP -out SNAP [-format v1|v2]   rewrite a snapshot between formats
//
// All subcommands read every "#day N" section of the input; files ending
// in ".gz" are decompressed transparently. The stability, ingest and
// overlap subcommands accept -parallel to ingest through the sharded
// concurrent pipeline (identical results, GOMAXPROCS-scaled throughput).
//
// Snapshots save in format v2 (the mmap layout Open maps in O(1)) unless
// -format v1 selects the legacy stream; convert rewrites existing files
// either way, so archives from older builds upgrade in place.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"v6class"
	"v6class/mraplot"
	"v6class/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("v6census: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "summary":
		cmdSummary(args)
	case "stability":
		cmdStability(args)
	case "mra":
		cmdMRA(args)
	case "dense":
		cmdDense(args)
	case "popdist":
		cmdPopDist(args)
	case "aguri":
		cmdAguri(args)
	case "classify":
		cmdClassify(args)
	case "signature":
		cmdSignature(args)
	case "lsp":
		cmdLSP(args)
	case "lifetime":
		cmdLifetime(args)
	case "ingest":
		cmdIngest(args)
	case "overlap":
		cmdOverlap(args)
	case "convert":
		cmdConvert(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: v6census {summary|stability|mra|dense|popdist|aguri|classify|signature|lsp|lifetime|ingest|overlap|convert} [flags]")
	os.Exit(2)
}

// parseFormat maps the -format flag onto the façade's snapshot formats.
func parseFormat(s string) (v6class.SnapshotFormat, error) {
	switch s {
	case "", "v2":
		return v6class.FormatV2, nil
	case "v1":
		return v6class.FormatV1, nil
	default:
		return 0, fmt.Errorf("unknown snapshot format %q (want v1 or v2)", s)
	}
}

// readLogs loads all day sections from the input (gzip transparent).
func readLogs(path string) []v6class.DayLog {
	logs, err := v6class.ReadLogs(path)
	if err != nil {
		log.Fatal(err)
	}
	if len(logs) == 0 {
		log.Fatal("no day sections in input")
	}
	return logs
}

// engineOpts translates the -parallel flag into façade options: the
// sequential engine by default, the sharded concurrent pipeline with
// GOMAXPROCS-scaled defaults under -parallel.
func engineOpts(parallel bool, extra ...v6class.Option) []v6class.Option {
	if !parallel {
		extra = append(extra, v6class.WithSequential())
	}
	return extra
}

// buildCensus constructs the chosen ingestion engine, feeds it logs, and
// leaves it ingesting (callers freeze when they are done adding days).
func buildCensus(logs []v6class.DayLog, studyDays int, parallel bool, extra ...v6class.Option) v6class.Engine {
	opts := engineOpts(parallel, append(extra, v6class.WithStudyDays(studyDays))...)
	eng, err := v6class.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.AddDays(logs); err != nil {
		log.Fatal(err)
	}
	return eng
}

// censusOf ingests logs into a frozen, query-ready census sized to fit
// them.
func censusOf(logs []v6class.DayLog, parallel bool, extra ...v6class.Option) v6class.Engine {
	maxDay := 0
	for _, l := range logs {
		if l.Day > maxDay {
			maxDay = l.Day
		}
	}
	eng := buildCensus(logs, maxDay+1, parallel, extra...)
	eng.Freeze()
	return eng
}

func cmdSummary(args []string) {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	in := fs.String("in", "-", "input log file (- for stdin)")
	fs.Parse(args)
	logs := readLogs(*in)

	addrs := v6class.UniqueAddrs(logs)
	sum := v6class.Summarize(addrs)
	p64 := make(map[v6class.Prefix]bool)
	macs := make(map[v6class.MAC]bool)
	for _, a := range addrs {
		k := v6class.Classify(a)
		if k.IsTransition() {
			continue
		}
		p64[v6class.PrefixFrom(a, 64)] = true
		if mac, ok := v6class.EUI64MAC(a); ok {
			macs[mac] = true
		}
	}
	fmt.Printf("days:               %d\n", len(logs))
	fmt.Printf("unique addresses:   %d\n", sum.Total)
	for _, k := range []v6class.Kind{v6class.KindTeredo, v6class.KindISATAP, v6class.Kind6to4} {
		fmt.Printf("%-19s %d (%.2f%%)\n", k.String()+":", sum.ByKind[k], 100*float64(sum.ByKind[k])/float64(sum.Total))
	}
	fmt.Printf("other (native):     %d (%.2f%%)\n", sum.Native(), 100*float64(sum.Native())/float64(sum.Total))
	fmt.Printf("native /64s:        %d\n", len(p64))
	if len(p64) > 0 {
		fmt.Printf("avg addrs per /64:  %.2f\n", float64(sum.Native())/float64(len(p64)))
	}
	fmt.Printf("EUI-64 addresses:   %d\n", sum.ByKind[v6class.KindEUI64])
	fmt.Printf("EUI-64 MACs:        %d\n", len(macs))
}

func cmdStability(args []string) {
	fs := flag.NewFlagSet("stability", flag.ExitOnError)
	in := fs.String("in", "", "input log file (- for stdin)")
	state := fs.String("state", "", "census snapshot to classify instead of raw logs")
	ref := fs.Int("ref", -1, "reference day (default: middle day of input)")
	n := fs.Int("n", 3, "the n of nd-stable")
	window := fs.Int("window", 7, "window half-width in days")
	parallel := fs.Bool("parallel", false, "ingest with the sharded concurrent pipeline")
	fs.Parse(args)

	var c v6class.Engine
	switch {
	case *state != "":
		eng, err := v6class.Open(*state, engineOpts(*parallel)...)
		if err != nil {
			log.Fatal(err)
		}
		eng.Freeze()
		c = eng
		if *ref < 0 {
			log.Fatal("-state requires an explicit -ref day")
		}
	default:
		if *in == "" {
			*in = "-"
		}
		logs := readLogs(*in)
		c = censusOf(logs, *parallel)
		if *ref < 0 {
			*ref = logs[len(logs)/2].Day
		}
	}

	opts := v6class.StabilityOptions{Window: v6class.StabilityWindow{Before: *window, After: *window}}
	for _, pop := range []struct {
		name string
		p    v6class.Population
	}{{"addresses", v6class.Addresses}, {"/64 prefixes", v6class.Prefixes64}} {
		st, err := c.StabilityWith(pop.p, *ref, *n, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s active on day %d: %d\n", pop.name, *ref, st.Active)
		fmt.Printf("  %dd-stable (-%dd,+%dd): %d (%.2f%%)\n",
			*n, *window, *window, st.Stable, pct(st.Stable, st.Active))
		fmt.Printf("  not %dd-stable:        %d (%.2f%%)\n", *n, st.NotStable, pct(st.NotStable, st.Active))
	}
}

// must unwraps a façade query result, exiting on lifecycle errors (which
// indicate a bug in this command, not bad user input).
func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func cmdMRA(args []string) {
	fs := flag.NewFlagSet("mra", flag.ExitOnError)
	in := fs.String("in", "-", "input log file (- for stdin)")
	format := fs.String("format", "ascii", "output format: ascii, svg, or data")
	title := fs.String("title", "MRA plot", "plot title")
	native := fs.Bool("native-only", true, "exclude transition-mechanism addresses")
	fs.Parse(args)
	logs := readLogs(*in)

	var set v6class.AddressSet
	for _, a := range v6class.UniqueAddrs(logs) {
		if *native && v6class.Classify(a).IsTransition() {
			continue
		}
		set.Add(a)
	}
	plot := mraplot.New(fmt.Sprintf("%s (%d addrs)", *title, set.Len()), set.MRA())
	switch *format {
	case "ascii":
		fmt.Print(plot.ASCII())
	case "svg":
		fmt.Print(plot.SVG())
	case "data":
		fmt.Print(plot.DataRows())
	default:
		log.Fatalf("unknown format %q", *format)
	}
}

func cmdDense(args []string) {
	fs := flag.NewFlagSet("dense", flag.ExitOnError)
	in := fs.String("in", "-", "input log file (- for stdin)")
	n := fs.Uint64("n", 2, "minimum addresses per dense prefix")
	p := fs.Int("p", 112, "dense prefix length")
	least := fs.Bool("least-specific", false, "report least-specific dense prefixes (densify)")
	limit := fs.Int("limit", 20, "example prefixes to print")
	fs.Parse(args)
	logs := readLogs(*in)

	var set v6class.AddressSet
	for _, a := range v6class.UniqueAddrs(logs) {
		set.Add(a)
	}
	cls := v6class.DensityClass{N: *n, P: *p}
	var res v6class.DensityResult
	if *least {
		res = set.DenseLeastSpecific(cls)
	} else {
		res = set.DenseFixed(cls)
	}
	fmt.Printf("density class:      %v\n", cls)
	fmt.Printf("dense prefixes:     %d\n", len(res.Prefixes))
	fmt.Printf("covered addresses:  %d\n", res.CoveredAddresses)
	fmt.Printf("possible addresses: %.0f\n", res.PossibleAddresses)
	fmt.Printf("address density:    %.10f\n", res.Density())
	_, examples := v6class.ScanTargets(res, *limit)
	for _, ex := range examples {
		fmt.Printf("  %v\n", ex)
	}
}

func cmdPopDist(args []string) {
	fs := flag.NewFlagSet("popdist", flag.ExitOnError)
	in := fs.String("in", "-", "input log file (- for stdin)")
	agg := fs.Int("agg", 48, "aggregate prefix length")
	of := fs.String("of", "addrs", "population unit: addrs or 64s")
	fs.Parse(args)
	logs := readLogs(*in)

	var set v6class.AddressSet
	for _, a := range v6class.UniqueAddrs(logs) {
		switch *of {
		case "addrs":
			set.Add(a)
		case "64s":
			set.AddPrefix(v6class.PrefixFrom(a, 64))
		default:
			log.Fatalf("unknown unit %q", *of)
		}
	}
	pops := set.AggregatePopulations(*agg)
	ccdf := stats.CCDF(stats.Counts(pops))
	fmt.Printf("%d-aggregates of %s: %d occupied\n", *agg, *of, len(pops))
	if len(ccdf) == 0 {
		return
	}
	max := ccdf[len(ccdf)-1].Value
	for _, v := range stats.LogBuckets(max) {
		fmt.Printf("  population >= %-9.0f proportion %.3e\n", v, stats.CCDFAt(ccdf, v))
	}
}

func cmdAguri(args []string) {
	fs := flag.NewFlagSet("aguri", flag.ExitOnError)
	in := fs.String("in", "-", "input log file (- for stdin)")
	frac := fs.Float64("min-frac", 0.01, "minimum fraction of total hits per reported prefix")
	fs.Parse(args)
	logs := readLogs(*in)

	// Hits weight the aguri profile, as Cho et al.'s traffic profiler does.
	var set v6class.AddressSet
	for _, l := range logs {
		for _, rec := range l.Records {
			set.Trie().Add(v6class.PrefixFrom(rec.Addr, 128), rec.Hits)
		}
	}
	min := uint64(float64(set.Total()) * *frac)
	if min == 0 {
		min = 1
	}
	out := set.Trie().AguriAggregate(min)
	fmt.Printf("aguri profile (threshold %.2f%% = %d hits):\n", *frac*100, min)
	for _, pc := range out {
		fmt.Printf("  %-45v %10d (%.2f%%)\n", pc.Prefix, pc.Count, 100*float64(pc.Count)/float64(set.Total()))
	}
}

// cmdClassify format-classifies addresses given as arguments, or one per
// line on standard input when no arguments are given.
func cmdClassify(args []string) {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	fs.Parse(args)
	classifyOne := func(s string) {
		a, err := v6class.ParseAddr(s)
		if err != nil {
			fmt.Printf("%-42s invalid: %v\n", s, err)
			return
		}
		kind := v6class.Classify(a)
		fmt.Printf("%-42s %v", a, kind)
		if mac, ok := v6class.EUI64MAC(a); ok {
			fmt.Printf(" mac=%v", mac)
		}
		if v4, ok := v6class.Embedded6to4IPv4(a); ok {
			fmt.Printf(" v4=%d.%d.%d.%d", v4>>24, v4>>16&0xff, v4>>8&0xff, v4&0xff)
		}
		fmt.Println()
	}
	if fs.NArg() > 0 {
		for _, s := range fs.Args() {
			classifyOne(s)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			classifyOne(line)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

// cmdSignature reports the MRA-based spatial signature of the input
// population, plus the key ratios the classification rests on.
func cmdSignature(args []string) {
	fs := flag.NewFlagSet("signature", flag.ExitOnError)
	in := fs.String("in", "-", "input log file (- for stdin)")
	fs.Parse(args)
	logs := readLogs(*in)

	var set v6class.AddressSet
	for _, a := range v6class.UniqueAddrs(logs) {
		set.Add(a)
	}
	m := set.MRA()
	fmt.Printf("population:      %d addresses\n", set.Len())
	fmt.Printf("signature:       %v\n", v6class.ClassifySignature(m))
	fmt.Printf("u-bit notch:     %v\n", m.UBitNotch())
	fmt.Printf("gamma16 @ 16-32: %.2f\n", m.Ratio(16, 16))
	fmt.Printf("gamma16 @ 32-48: %.2f\n", m.Ratio(32, 16))
	fmt.Printf("gamma16 @ 48-64: %.2f\n", m.Ratio(48, 16))
	fmt.Printf("gamma16 @112-128:%.2f\n", m.Ratio(112, 16))
}

// cmdLSP discovers the longest stable prefixes between two log files
// covering separated periods (the Section 7.2 proposal).
func cmdLSP(args []string) {
	fs := flag.NewFlagSet("lsp", flag.ExitOnError)
	fileA := fs.String("a", "", "first-period log file")
	fileB := fs.String("b", "", "second-period log file")
	minBits := fs.Int("min-bits", 32, "minimum stable prefix length")
	minSupport := fs.Uint64("min-support", 4, "minimum supporting addresses")
	limit := fs.Int("limit", 30, "prefixes to print")
	fs.Parse(args)
	if *fileA == "" || *fileB == "" {
		log.Fatal("lsp requires -a and -b")
	}
	logsA := readLogs(*fileA)
	logsB := readLogs(*fileB)

	// Re-day the logs into one census: period A keeps its days, period B
	// is shifted past A if they overlap.
	maxA := 0
	for _, l := range logsA {
		if l.Day > maxA {
			maxA = l.Day
		}
	}
	shift := 0
	minB := int(^uint(0) >> 1)
	for _, l := range logsB {
		if l.Day < minB {
			minB = l.Day
		}
	}
	if minB <= maxA {
		shift = maxA + 1 - minB
	}
	maxB := 0
	for _, l := range logsB {
		if l.Day+shift > maxB {
			maxB = l.Day + shift
		}
	}
	c := buildCensus(logsA, maxB+1, false)
	for _, l := range logsB {
		l.Day += shift
		if err := c.AddDay(l); err != nil {
			log.Fatal(err)
		}
	}
	c.Freeze()
	got := must(c.LongestStablePrefixes(0, maxA, logsB[0].Day+shift, maxB, *minBits, *minSupport))
	fmt.Printf("%d stable prefixes (>= /%d, support >= %d):\n", len(got), *minBits, *minSupport)
	for i, p := range got {
		if i >= *limit {
			fmt.Printf("  ... %d more\n", len(got)-*limit)
			break
		}
		fmt.Printf("  %-45v support %d\n", p.Prefix, p.Support)
	}
}

// cmdLifetime reports lifespan statistics and day-over-day return
// probabilities for the input's addresses and /64s.
func cmdLifetime(args []string) {
	fs := flag.NewFlagSet("lifetime", flag.ExitOnError)
	in := fs.String("in", "-", "input log file (- for stdin)")
	fs.Parse(args)
	logs := readLogs(*in)

	minDay, maxDay := logs[0].Day, logs[0].Day
	for _, l := range logs {
		if l.Day < minDay {
			minDay = l.Day
		}
		if l.Day > maxDay {
			maxDay = l.Day
		}
	}
	// Transition-mechanism addresses stay in the stores here: lifetime
	// statistics describe every observed address, not just the native
	// population the classifiers run on.
	c := buildCensus(logs, maxDay+1, false, v6class.WithKeepTransition())
	c.Freeze()
	report := func(name string, st v6class.LifetimeStats) {
		fmt.Printf("%s: %d keys, %.1f%% single-day, median span %d day(s)\n",
			name, st.Keys, 100*st.SingleDayShare(), st.MedianSpan())
	}
	report("addresses", must(c.LifetimeStats(v6class.Addresses, minDay, maxDay)))
	report("/64s", must(c.LifetimeStats(v6class.Prefixes64, minDay, maxDay)))
	maxGap := maxDay - minDay
	if maxGap > 7 {
		maxGap = 7
	}
	if maxGap >= 1 {
		rp := must(c.ReturnProbability(v6class.Addresses, minDay, maxDay, maxGap))
		rp64 := must(c.ReturnProbability(v6class.Prefixes64, minDay, maxDay, maxGap))
		fmt.Println("return probability by gap (addresses vs /64s):")
		for g := 1; g <= maxGap; g++ {
			fmt.Printf("  +%dd: %.3f vs %.3f\n", g, rp[g], rp64[g])
		}
	}
}

// cmdIngest adds a log file's days to a census snapshot, creating the
// snapshot when absent. The snapshot's study length must accommodate every
// ingested day.
func cmdIngest(args []string) {
	if err := runIngest(args); err != nil {
		log.Fatal(err)
	}
}

// runIngest is cmdIngest's testable body. An existing -state file that can
// be read as a census snapshot is extended (the incremental workflow);
// one that cannot — a foreign file, a truncated snapshot, an unreadable
// path — is never silently overwritten: ingestion refuses unless -force is
// given, in which case a fresh census replaces it.
func runIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ContinueOnError)
	in := fs.String("in", "-", "input log file (- for stdin)")
	state := fs.String("state", "", "census snapshot path (created if missing)")
	studyDays := fs.Int("study-days", 0, "study length for a new snapshot (default: max day + 30)")
	parallel := fs.Bool("parallel", false, "ingest with the sharded concurrent pipeline")
	force := fs.Bool("force", false, "replace an existing -state file that is not a readable census snapshot")
	formatFlag := fs.String("format", "v2", "snapshot format to save: v2 (mmap layout) or v1 (legacy stream)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *state == "" {
		return fmt.Errorf("ingest requires -state")
	}
	format, err := parseFormat(*formatFlag)
	if err != nil {
		return err
	}
	logs, err := v6class.ReadLogs(*in)
	if err != nil {
		return err
	}
	if len(logs) == 0 {
		return fmt.Errorf("no day sections in input")
	}

	maxDay := 0
	for _, l := range logs {
		if l.Day > maxDay {
			maxDay = l.Day
		}
	}
	newDays := *studyDays
	if newDays == 0 {
		newDays = maxDay + 30
	}

	// fresh reports whether overwriting state with a newly built census is
	// permitted: always for a path that does not exist yet, only under
	// -force when something unreadable is already there.
	fresh := func(reason error) (v6class.Engine, error) {
		if reason != nil && !*force {
			return nil, fmt.Errorf("refusing to overwrite %s: %v (use -force to replace it)", *state, reason)
		}
		if *studyDays > 0 && maxDay >= *studyDays {
			return nil, fmt.Errorf("-study-days %d cannot hold day %d", *studyDays, maxDay)
		}
		eng, err := v6class.New(engineOpts(*parallel, v6class.WithStudyDays(newDays))...)
		if err != nil {
			return nil, err
		}
		if err := eng.AddDays(logs); err != nil {
			return nil, err
		}
		return eng, nil
	}

	var c v6class.Engine
	eng, err := v6class.Open(*state, engineOpts(*parallel)...)
	switch {
	case err == nil:
		// Observations beyond a census's study length are silently ignored
		// by the temporal stores, so refusing up front is the only way to
		// avoid quiet data loss.
		if maxDay >= eng.StudyDays() {
			return fmt.Errorf("snapshot %s has study length %d and cannot hold day %d; re-create it with a larger -study-days", *state, eng.StudyDays(), maxDay)
		}
		if err := eng.AddDays(logs); err != nil {
			return err
		}
		c = eng
	case errors.Is(err, os.ErrNotExist):
		if c, err = fresh(nil); err != nil {
			return err
		}
	default:
		// Something is at the path but it cannot be read as a snapshot — a
		// foreign file, a truncated snapshot, a directory, a permissions
		// problem. Clobbering it was the old silent-overwrite bug.
		if c, err = fresh(err); err != nil {
			return err
		}
	}
	// SaveSnapshot writes temp-and-rename, so a failed or interrupted write
	// can never destroy the existing snapshot, and the file lands 0644 for
	// other daily-pipeline users (v6served, backups).
	if err := v6class.SaveSnapshot(c, *state, format); err != nil {
		return err
	}
	fmt.Printf("ingested %d day(s) into %s (study length %d)\n", len(logs), *state, c.StudyDays())
	return nil
}

// cmdConvert rewrites a census snapshot between the on-disk formats.
func cmdConvert(args []string) {
	if err := runConvert(args); err != nil {
		log.Fatal(err)
	}
}

// runConvert is cmdConvert's testable body: sniff and open the input
// snapshot (either format), then save it in the requested one. Opening and
// re-saving is exact — both formats round-trip the census byte-for-byte —
// so converting v1→v2→v1 reproduces the original file.
func runConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	in := fs.String("in", "", "input snapshot path")
	out := fs.String("out", "", "output snapshot path (default: -in, converted in place via temp-and-rename)")
	formatFlag := fs.String("format", "v2", "target snapshot format: v2 (mmap layout) or v1 (legacy stream)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("convert requires -in")
	}
	if *out == "" {
		*out = *in
	}
	format, err := parseFormat(*formatFlag)
	if err != nil {
		return err
	}
	srcInfo, err := v6class.SniffSnapshot(*in)
	if err != nil {
		return err
	}
	eng, err := v6class.Open(*in, v6class.WithSequential())
	if err != nil {
		return err
	}
	if err := v6class.SaveSnapshot(eng, *out, format); err != nil {
		return err
	}
	dstInfo, err := v6class.SniffSnapshot(*out)
	if err != nil {
		return err
	}
	fmt.Printf("converted %s (v%d, %d bytes) -> %s (v%d, %d bytes)\n",
		*in, srcInfo.Version, srcInfo.Size, *out, dstInfo.Version, dstInfo.Size)
	return nil
}

// cmdOverlap prints the Figure 4 series: per-day active counts and the
// overlap of each day's population with a reference day.
func cmdOverlap(args []string) {
	fs := flag.NewFlagSet("overlap", flag.ExitOnError)
	in := fs.String("in", "-", "input log file (- for stdin)")
	ref := fs.Int("ref", -1, "reference day (default: middle day of input)")
	parallel := fs.Bool("parallel", false, "ingest with the sharded concurrent pipeline")
	fs.Parse(args)
	logs := readLogs(*in)
	c := censusOf(logs, *parallel)
	if *ref < 0 {
		*ref = logs[len(logs)/2].Day
	}
	minDay, maxDay := logs[0].Day, logs[0].Day
	for _, l := range logs {
		if l.Day < minDay {
			minDay = l.Day
		}
		if l.Day > maxDay {
			maxDay = l.Day
		}
	}
	// The overlap curves stream straight off the engine; collect them into
	// day-indexed slices to print next to the per-day active counts.
	collect := func(pop v6class.Population) []int {
		out := make([]int, 0, maxDay-minDay+1)
		for _, n := range must(c.OverlapSeries(pop, *ref, *ref-minDay, maxDay-*ref)) {
			out = append(out, n)
		}
		return out
	}
	series := collect(v6class.Addresses)
	series64 := collect(v6class.Prefixes64)
	fmt.Printf("%-6s %12s %12s %12s %12s\n", "day", "active", "ref overlap", "active /64s", "ref /64s")
	for d := minDay; d <= maxDay; d++ {
		i := d - minDay
		fmt.Printf("%-6d %12d %12d %12d %12d\n", d,
			must(c.ActiveCount(v6class.Addresses, d)), series[i],
			must(c.ActiveCount(v6class.Prefixes64, d)), series64[i])
	}
}
