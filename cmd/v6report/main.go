// Command v6report runs the full paper reproduction: every table and
// figure of the evaluation section of Plonka & Berger (IMC 2015),
// regenerated from the synthetic world and printed in the paper's layout.
//
// Usage:
//
//	v6report [-seed N] [-scale F] [-only LIST] [-workers N] [-svg DIR] [-data DIR]
//
// -only selects a comma-separated subset of: table1, table2, table3, fig2,
// fig3, fig4, fig5a, fig5b, fig5plots, discovery, ptr, eui64, lsp,
// signatures, highlights, growth, sweep, lifetimes (the registry names of
// package experiments are accepted as synonyms).
// -workers bounds the pool regenerating independent experiments in
// parallel (0 = GOMAXPROCS, 1 = sequential).
// -svg writes the MRA plots as SVG files into the given directory.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"v6class/experiments"
	"v6class/mraplot"
	"v6class/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("v6report: ")
	var (
		seed    = flag.Uint64("seed", 7, "world seed")
		scale   = flag.Float64("scale", 0.1, "population scale (1.0 = medium world)")
		only    = flag.String("only", "", "comma-separated experiment subset")
		workers = flag.Int("workers", 0, "experiment worker pool size (0 = GOMAXPROCS)")
		svg     = flag.String("svg", "", "directory to write MRA plot SVGs into")
		data    = flag.String("data", "", "directory to write figure data series (gnuplot rows) into")
	)
	flag.Parse()
	if err := report(os.Stdout, *seed, *scale, *only, *workers, *svg, *data); err != nil {
		log.Fatal(err)
	}
}

// reportAliases maps experiment registry names to this command's
// historical short names (identity where absent).
var reportAliases = map[string]string{
	"figure2":          "fig2",
	"figure3":          "fig3",
	"figure4":          "fig4",
	"figure5a":         "fig5a",
	"figure5b":         "fig5b",
	"figure5c-h":       "fig5plots",
	"routers":          "discovery",
	"ptr-harvest":      "ptr",
	"eui64-churn":      "eui64",
	"signature-census": "signatures",
	"window-sweep":     "sweep",
}

// report runs the selected experiments against a fresh world on a bounded
// worker pool and writes the rendered results to w.
func report(w io.Writer, seed uint64, scale float64, only string, workers int, svgDir, dataDir string) error {
	selected := map[string]bool{}
	for _, name := range strings.Split(only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			selected[name] = true
		}
	}
	display := func(registry string) string {
		if short, ok := reportAliases[registry]; ok {
			return short
		}
		return registry
	}
	want := func(registry string) bool {
		return len(selected) == 0 || selected[registry] || selected[display(registry)]
	}

	lab := experiments.NewLab(synth.Config{Seed: seed, Scale: scale})
	fmt.Fprintf(w, "v6class reproduction of Plonka & Berger, IMC 2015\n")
	fmt.Fprintf(w, "world: seed=%d scale=%g (epochs at days %d, %d, %d)\n\n",
		seed, scale, synth.EpochMar2014, synth.EpochSep2014, synth.EpochMar2015)

	// The plot-file outputs need the figure objects, not just their
	// rendering; when requested, swap in capturing closures so each figure
	// is computed exactly once, inside the pool (RunDrivers joins its
	// workers, so the captures are visible afterwards).
	var fig5plots experiments.Figure5PlotsResult
	var fig3 experiments.Figure3Result
	var fig5a experiments.Figure5aResult
	plotsNeeded := dataDir != "" || svgDir != ""
	var drivers []experiments.Driver
	for _, d := range experiments.Drivers() {
		if !want(d.Name) {
			continue
		}
		if plotsNeeded {
			switch d.Name {
			case "figure3":
				d.Run = func(l *experiments.Lab) string { fig3 = experiments.Figure3(l); return fig3.Render() }
			case "figure5a":
				d.Run = func(l *experiments.Lab) string { fig5a = experiments.Figure5a(l); return fig5a.Render() }
			case "figure5c-h":
				d.Run = func(l *experiments.Lab) string { fig5plots = experiments.Figure5Plots(l); return fig5plots.Render() }
			}
		}
		drivers = append(drivers, d)
	}
	experiments.RunDriversStream(lab, workers, drivers, func(r experiments.DriverResult) {
		fmt.Fprintf(w, "== %s (%.1fs) ==\n%s\n", display(r.Name), r.Elapsed.Seconds(), r.Output)
	})

	if dataDir != "" {
		if err := os.MkdirAll(dataDir, 0o755); err != nil {
			return err
		}
		writeData := func(name, rows string) error {
			path := filepath.Join(dataDir, name)
			if err := os.WriteFile(path, []byte(rows), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", path)
			return nil
		}
		if want("figure3") {
			if err := writeData("fig3.dat", fig3.Plot().DataRows()); err != nil {
				return err
			}
		}
		if want("figure5a") {
			if err := writeData("fig5a.dat", fig5a.Plot().DataRows()); err != nil {
				return err
			}
		}
		if want("figure5c-h") {
			for name, plot := range map[string]mraplot.Plot{
				"fig5c.dat": fig5plots.All, "fig5d.dat": fig5plots.SixToF,
				"fig5e.dat": fig5plots.USMobile, "fig5f.dat": fig5plots.EUISP,
				"fig5g.dat": fig5plots.Dept, "fig5h.dat": fig5plots.JPISP,
			} {
				if err := writeData(name, plot.DataRows()); err != nil {
					return err
				}
			}
		}
	}

	if svgDir != "" && (want("figure5c-h") || want("figure3") || want("figure5a")) {
		if err := os.MkdirAll(svgDir, 0o755); err != nil {
			return err
		}
		if want("figure3") {
			if err := writeSVG(w, svgDir, "fig3-populations.svg", fig3.Plot().SVG()); err != nil {
				return err
			}
		}
		if want("figure5a") {
			if err := writeSVG(w, svgDir, "fig5a-per-asn.svg", fig5a.Plot().SVG()); err != nil {
				return err
			}
		}
	}
	if svgDir != "" && want("figure5c-h") {
		plots := map[string]mraplot.Plot{
			"fig5c-all.svg":       fig5plots.All,
			"fig5d-6to4.svg":      fig5plots.SixToF,
			"fig5e-us-mobile.svg": fig5plots.USMobile,
			"fig5f-eu-isp.svg":    fig5plots.EUISP,
			"fig5g-dept.svg":      fig5plots.Dept,
			"fig5h-jp-isp.svg":    fig5plots.JPISP,
		}
		for name, plot := range plots {
			if err := writeSVG(w, svgDir, name, plot.SVG()); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSVG writes one SVG document into dir and logs the path.
func writeSVG(w io.Writer, dir, name, svg string) error {
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}
