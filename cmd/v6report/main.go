// Command v6report runs the full paper reproduction: every table and
// figure of the evaluation section of Plonka & Berger (IMC 2015),
// regenerated from the synthetic world and printed in the paper's layout.
//
// Usage:
//
//	v6report [-seed N] [-scale F] [-only LIST] [-svg DIR] [-data DIR]
//
// -only selects a comma-separated subset of: table1, table2, table3, fig2,
// fig3, fig4, fig5a, fig5b, fig5plots, discovery, ptr, eui64, lsp,
// signatures, highlights, growth, sweep, lifetimes.
// -svg writes the MRA plots as SVG files into the given directory.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"v6class/internal/experiments"
	"v6class/internal/mraplot"
	"v6class/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("v6report: ")
	var (
		seed  = flag.Uint64("seed", 7, "world seed")
		scale = flag.Float64("scale", 0.1, "population scale (1.0 = medium world)")
		only  = flag.String("only", "", "comma-separated experiment subset")
		svg   = flag.String("svg", "", "directory to write MRA plot SVGs into")
		data  = flag.String("data", "", "directory to write figure data series (gnuplot rows) into")
	)
	flag.Parse()
	if err := report(os.Stdout, *seed, *scale, *only, *svg, *data); err != nil {
		log.Fatal(err)
	}
}

// report runs the selected experiments against a fresh world and writes
// the rendered results to w.
func report(w io.Writer, seed uint64, scale float64, only, svgDir, dataDir string) error {
	selected := map[string]bool{}
	for _, name := range strings.Split(only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			selected[name] = true
		}
	}
	want := func(name string) bool { return len(selected) == 0 || selected[name] }

	lab := experiments.NewLab(synth.Config{Seed: seed, Scale: scale})
	fmt.Fprintf(w, "v6class reproduction of Plonka & Berger, IMC 2015\n")
	fmt.Fprintf(w, "world: seed=%d scale=%g (epochs at days %d, %d, %d)\n\n",
		seed, scale, synth.EpochMar2014, synth.EpochSep2014, synth.EpochMar2015)

	run := func(name string, f func() string) {
		if !want(name) {
			return
		}
		start := time.Now()
		out := f()
		fmt.Fprintf(w, "== %s (%.1fs) ==\n%s\n", name, time.Since(start).Seconds(), out)
	}

	var fig5plots experiments.Figure5PlotsResult
	var fig3 experiments.Figure3Result
	var fig5a experiments.Figure5aResult
	run("table1", func() string { return experiments.Table1(lab).Render() })
	run("table2", func() string { return experiments.Table2(lab).Render() })
	run("table3", func() string { return experiments.Table3(lab).Render() })
	run("fig2", func() string { return experiments.Figure2(lab).Render() })
	run("fig3", func() string { fig3 = experiments.Figure3(lab); return fig3.Render() })
	run("fig4", func() string { return experiments.Figure4(lab).Render() })
	run("fig5a", func() string { fig5a = experiments.Figure5a(lab); return fig5a.Render() })
	run("fig5b", func() string { return experiments.Figure5b(lab).Render() })
	run("fig5plots", func() string {
		fig5plots = experiments.Figure5Plots(lab)
		return fig5plots.Render()
	})
	run("discovery", func() string { return experiments.RouterDiscovery(lab).Render() })
	run("ptr", func() string { return experiments.PTRHarvest(lab).Render() })
	run("eui64", func() string { return experiments.EUI64Churn(lab).Render() })
	run("lsp", func() string { return experiments.LongestStablePrefixes(lab).Render() })
	run("signatures", func() string { return experiments.SignatureCensus(lab).Render() })
	run("highlights", func() string { return experiments.Highlights(lab).Render() })
	run("growth", func() string { return experiments.Growth(lab).Render() })
	run("sweep", func() string { return experiments.WindowSweep(lab).Render() })
	run("lifetimes", func() string { return experiments.Lifetimes(lab).Render() })

	if dataDir != "" {
		if err := os.MkdirAll(dataDir, 0o755); err != nil {
			return err
		}
		writeData := func(name, rows string) error {
			path := filepath.Join(dataDir, name)
			if err := os.WriteFile(path, []byte(rows), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", path)
			return nil
		}
		if want("fig3") {
			if err := writeData("fig3.dat", fig3.Plot().DataRows()); err != nil {
				return err
			}
		}
		if want("fig5a") {
			if err := writeData("fig5a.dat", fig5a.Plot().DataRows()); err != nil {
				return err
			}
		}
		if want("fig5plots") {
			for name, plot := range map[string]mraplot.Plot{
				"fig5c.dat": fig5plots.All, "fig5d.dat": fig5plots.SixToF,
				"fig5e.dat": fig5plots.USMobile, "fig5f.dat": fig5plots.EUISP,
				"fig5g.dat": fig5plots.Dept, "fig5h.dat": fig5plots.JPISP,
			} {
				if err := writeData(name, plot.DataRows()); err != nil {
					return err
				}
			}
		}
	}

	if svgDir != "" && (want("fig5plots") || want("fig3") || want("fig5a")) {
		if err := os.MkdirAll(svgDir, 0o755); err != nil {
			return err
		}
		if want("fig3") {
			if err := writeSVG(w, svgDir, "fig3-populations.svg", fig3.Plot().SVG()); err != nil {
				return err
			}
		}
		if want("fig5a") {
			if err := writeSVG(w, svgDir, "fig5a-per-asn.svg", fig5a.Plot().SVG()); err != nil {
				return err
			}
		}
	}
	if svgDir != "" && want("fig5plots") {
		plots := map[string]mraplot.Plot{
			"fig5c-all.svg":       fig5plots.All,
			"fig5d-6to4.svg":      fig5plots.SixToF,
			"fig5e-us-mobile.svg": fig5plots.USMobile,
			"fig5f-eu-isp.svg":    fig5plots.EUISP,
			"fig5g-dept.svg":      fig5plots.Dept,
			"fig5h-jp-isp.svg":    fig5plots.JPISP,
		}
		for name, plot := range plots {
			if err := writeSVG(w, svgDir, name, plot.SVG()); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSVG writes one SVG document into dir and logs the path.
func writeSVG(w io.Writer, dir, name, svg string) error {
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}
