package main

import (
	"os"
	"strings"
	"testing"
)

func TestReportSubset(t *testing.T) {
	var b strings.Builder
	if err := report(&b, 7, 0.02, "table1,growth", 1, "", ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== table1", "Teredo addresses", "== growth", "Deployment growth"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Unselected experiments must not run.
	if strings.Contains(out, "== table2") {
		t.Error("unselected experiment ran")
	}
}

func TestReportSVGOutput(t *testing.T) {
	dir := t.TempDir() + "/plots"
	var b strings.Builder
	if err := report(&b, 7, 0.02, "fig5plots", 0, dir, ""); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 {
		t.Fatalf("wrote %d SVGs, want 6", len(entries))
	}
	data, err := os.ReadFile(dir + "/fig5e-us-mobile.svg")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("not an SVG document")
	}
}

func TestReportFullSmallWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("full report in -short mode")
	}
	var b strings.Builder
	if err := report(&b, 7, 0.02, "", 0, "", ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Every experiment header must appear.
	for _, name := range []string{
		"table1", "table2", "table3", "fig2", "fig3", "fig4", "fig5a",
		"fig5b", "fig5plots", "discovery", "ptr", "eui64", "lsp",
		"signatures", "highlights", "growth", "sweep",
	} {
		if !strings.Contains(out, "== "+name+" (") {
			t.Errorf("experiment %q missing from full report", name)
		}
	}
}

func TestReportDataOutput(t *testing.T) {
	dir := t.TempDir() + "/data"
	var b strings.Builder
	if err := report(&b, 7, 0.02, "fig3,fig5plots", 2, "", dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 7 { // fig3 + six MRA plots
		t.Fatalf("wrote %d data files, want 7", len(entries))
	}
	raw, err := os.ReadFile(dir + "/fig3.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "32-agg. of IPv6 addrs\t") {
		t.Error("fig3 data rows malformed")
	}
}
