package main

// Graceful-shutdown tests for runServer: a cancelled context drains the
// in-flight requests within the drain budget and reports the count, and a
// request that outlives the budget is force-aborted, also reported.

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

type runResult struct {
	summary string
	err     error
}

// startRunServer launches runServer over a fresh loopback listener and
// returns the base URL, the cancel that simulates SIGTERM, and the result
// channel.
func startRunServer(t *testing.T, h http.Handler, drain time.Duration) (string, context.CancelFunc, <-chan runResult) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	rc := make(chan runResult, 1)
	go func() {
		s, err := runServer(ctx, ln, h, drain)
		rc <- runResult{s, err}
	}()
	return "http://" + ln.Addr().String(), cancel, rc
}

func TestRunServerDrainsInflight(t *testing.T) {
	inHandler := make(chan struct{}, 1)
	release := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inHandler <- struct{}{}
		<-release
		io.WriteString(w, "done") //nolint:errcheck
	})
	base, cancel, rc := startRunServer(t, h, 5*time.Second)

	got := make(chan string, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		got <- string(body)
	}()
	<-inHandler

	// SIGTERM lands mid-request: shutdown must wait for it.
	cancel()
	time.Sleep(50 * time.Millisecond) // let Shutdown begin refusing new work
	close(release)

	if body := <-got; body != "done" {
		t.Fatalf("in-flight request during drain got %q, want \"done\"", body)
	}
	r := <-rc
	if r.err != nil {
		t.Fatalf("runServer: %v", r.err)
	}
	if !strings.Contains(r.summary, "drained 1 in-flight") {
		t.Fatalf("summary = %q, want it to report draining 1 in-flight request", r.summary)
	}
}

func TestRunServerAbortsOnDrainTimeout(t *testing.T) {
	inHandler := make(chan struct{}, 1)
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inHandler <- struct{}{}
		// Never finishes on its own; only the forced close ends it.
		<-r.Context().Done()
	})
	base, cancel, rc := startRunServer(t, h, 60*time.Millisecond)

	go func() {
		resp, err := http.Get(base + "/stuck")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-inHandler

	cancel()
	r := <-rc
	if r.err != nil {
		t.Fatalf("runServer: %v", r.err)
	}
	if !strings.Contains(r.summary, "drain timeout") || !strings.Contains(r.summary, "aborted") {
		t.Fatalf("summary = %q, want a drain-timeout abort report", r.summary)
	}
}

func TestRunServerServeError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close() // Serve on a closed listener fails immediately
	if _, err := runServer(context.Background(), ln, http.NotFoundHandler(), time.Second); err == nil {
		t.Fatal("runServer on a closed listener returned no error")
	}
}
