// Command v6served is the online census query service: it loads one or
// more persisted census snapshots (as written by "v6census ingest -state",
// or any Census/ShardedCensus WriteTo), freezes them, and serves
// concurrent read-only queries over HTTP — per-prefix lookups, stability
// tables, dense-prefix sweeps, top-k aggregates, overlap series, and (in
// demo mode) per-request experiment regeneration.
//
// Usage:
//
//	v6served -state census.state [-state name=other.state ...] [-listen :8470]
//	v6served -demo [-demo-scale F] [-demo-seed N]
//
// Each -state may be a bare path (the snapshot is named after the file
// base name, extension stripped) or an explicit NAME=PATH pair. The most
// recently given -state snapshot serves unqualified queries; clients
// select others with ?snap=NAME. Snapshots can be swapped at runtime
// without dropping in-flight queries:
//
//	curl -X POST 'localhost:8470/v1/reload?snap=census'
//
// That re-reads the snapshot's recorded file. Pointing a reload at a
// different path is an admin operation requiring -admin-token:
//
//	v6served -state census.state -admin-token SECRET
//	curl -X POST -H 'Authorization: Bearer SECRET' \
//	  'localhost:8470/v1/reload?snap=census&path=/new/census.state'
//
// The server can also grow a snapshot in place. POST /v1/ingest streams
// aggregated day logs (the "#day N" text format) into an unfrozen
// successor generation layered over the named snapshot — reads keep
// hitting the frozen generation, untouched — and POST /v1/freeze installs
// the successor as the next generation in one atomic swap:
//
//	curl -X POST --data-binary @day15.log 'localhost:8470/v1/ingest?snap=census'
//	curl -X POST 'localhost:8470/v1/freeze?snap=census'
//
// With -admin-token both write endpoints require the bearer token; with
// -readonly they are disabled entirely (reloads stay available).
//
// The server can also front a cluster. Repeatable -backend flags name the
// serve instances holding one key-partitioned census (split with
// remote.SplitLogs or ingested through a coordinator); v6served dials each
// backend, composes them with a scatter-gather coordinator, and installs
// the cluster as one queryable snapshot (-coordinator-name, default
// "cluster"):
//
//	v6served -backend http://census-a:8470 -backend http://census-b:8470
//	curl 'localhost:8470/v1/meta?snap=cluster'   # shards: 2
//
// Point queries route to the owning backend, counts and histograms merge,
// and the paged enumerations k-way merge the backends' ordered streams, so
// clients see one census. The coordinator snapshot is read-only from the
// wire (its census lives on the backends).
//
// Historical snapshots mount as a time-travel catalog. Each repeatable
// -catalog flag maps a calendar date range onto a snapshot file,
//
//	v6served -state live.state \
//	  -catalog 2015-03=/data/2015-03.state@2015-03-01..2015-03-30 \
//	  -catalog 2015-04=/data/2015-04.state@2015-04-01..2015-04-30
//	curl 'localhost:8470/v1/at/summary?date=2015-03-17'
//
// where the range start is the snapshot's study day 0. Catalog snapshots
// load lazily on first query (format v2 files map in O(1)) and at most
// -catalog-resident of them (default 4) stay in memory under LRU; they are
// separate from the -state registry and never serve unqualified queries.
// See the "Time travel" section of package serve.
//
// With -demo the server generates a small synthetic world instead of (or
// in addition to) loading files, installs a census of its first epoch
// window as snapshot "demo", and enables the /v1/experiments endpoints.
// See package serve for the endpoint reference, and examples/queryclient
// for a walkthrough.
//
// The server shuts down gracefully: SIGTERM or SIGINT stops accepting new
// connections and drains in-flight requests for -drain-timeout (default
// 10s) before force-closing the stragglers, logging a one-line summary.
// -sweep-limit bounds concurrent expensive sweeps (excess requests are
// shed with 429 + Retry-After; see package serve), and -partial-results
// lets a -backend cluster coordinator answer degraded — from the live
// majority, with a coverage annotation — instead of failing when a
// minority of backends is down. -access-log FILE appends one structured
// line per request (time, method, path, the snapshot name and epoch that
// answered, status, duration, bytes); "-" logs to stdout.
//
// For diagnosing serve-path regressions in production, -pprof-addr serves
// the standard net/http/pprof profiles on a separate side listener (off by
// default, and never exposed on the query listener):
//
//	v6served -state census.state -pprof-addr localhost:6060
//	go tool pprof http://localhost:6060/debug/pprof/profile
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"v6class"
	"v6class/experiments"
	"v6class/remote"
	"v6class/serve"
	"v6class/synth"
)

// statePath is one -state argument: a snapshot name and its file path.
type statePath struct {
	name, path string
}

// config is the parsed command line, separated from flag handling so tests
// can build servers directly.
type config struct {
	states          []statePath
	backends        []string
	coordName       string
	catalog         []serve.CatalogEntry
	catalogResident int
	demo            bool
	demoScale       float64
	demoSeed        uint64
	cache           int
	sweepLimit      int
	partial         bool
	adminToken      string
	readOnly        bool
	accessLog       string
}

// parseState splits a -state argument into its name and path; bare paths
// are named after the file base name with the extension stripped.
func parseState(arg string) statePath {
	if name, path, ok := strings.Cut(arg, "="); ok && name != "" && !strings.Contains(name, "/") {
		return statePath{name: name, path: path}
	}
	base := filepath.Base(arg)
	return statePath{name: strings.TrimSuffix(base, filepath.Ext(base)), path: arg}
}

// parseCatalog splits a -catalog argument, NAME=PATH@START..END with
// YYYY-MM-DD dates, into a catalog entry.
func parseCatalog(arg string) (serve.CatalogEntry, error) {
	name, rest, ok := strings.Cut(arg, "=")
	if !ok || name == "" {
		return serve.CatalogEntry{}, fmt.Errorf("catalog spec %q: want NAME=PATH@START..END", arg)
	}
	path, dates, ok := strings.Cut(rest, "@")
	if !ok || path == "" {
		return serve.CatalogEntry{}, fmt.Errorf("catalog spec %q: want NAME=PATH@START..END", arg)
	}
	startStr, endStr, ok := strings.Cut(dates, "..")
	if !ok {
		return serve.CatalogEntry{}, fmt.Errorf("catalog spec %q: want date range START..END", arg)
	}
	start, err := time.ParseInLocation("2006-01-02", startStr, time.UTC)
	if err != nil {
		return serve.CatalogEntry{}, fmt.Errorf("catalog spec %q: bad start date: %v", arg, err)
	}
	end, err := time.ParseInLocation("2006-01-02", endStr, time.UTC)
	if err != nil {
		return serve.CatalogEntry{}, fmt.Errorf("catalog spec %q: bad end date: %v", arg, err)
	}
	if end.Before(start) {
		return serve.CatalogEntry{}, fmt.Errorf("catalog spec %q: end date precedes start", arg)
	}
	return serve.CatalogEntry{Name: name, Path: path, Start: start, End: end}, nil
}

// buildServer assembles the query service: loaded snapshot files plus,
// in demo mode, a generated census and the experiments lab.
func buildServer(cfg config) (*serve.Server, error) {
	opts := serve.Options{
		CacheEntries:     cfg.cache,
		SweepConcurrency: cfg.sweepLimit,
		AdminToken:       cfg.adminToken,
		ReadOnly:         cfg.readOnly,
		Catalog:          cfg.catalog,
		CatalogResident:  cfg.catalogResident,
	}
	switch cfg.accessLog {
	case "":
	case "-":
		opts.AccessLog = os.Stdout
	default:
		f, err := os.OpenFile(cfg.accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("opening access log: %w", err)
		}
		opts.AccessLog = f
	}
	scale := cfg.demoScale
	if scale <= 0 {
		scale = 0.02
	}
	var lab *experiments.Lab
	if cfg.demo {
		lab = experiments.NewLab(synth.Config{Seed: cfg.demoSeed, Scale: scale})
		opts.Lab = lab
	}
	s := serve.New(opts)
	if cfg.demo {
		// The demo snapshot covers the first epoch's analysis window, the
		// densest slice of the synthetic study. It installs first so a
		// real -state snapshot, when also given, stays the default.
		c := lab.ShardedCensus([2]int{synth.EpochMar2014 - 7, synth.EpochMar2014 + 13})
		// no file source: generated, not reloadable
		s.Install("demo", "", v6class.FromAnalyzer(c))
		log.Printf("installed generated snapshot %q (seed %d, scale %g)", "demo", cfg.demoSeed, scale)
	}
	for _, st := range cfg.states {
		if _, err := s.LoadFile(st.name, st.path); err != nil {
			return nil, err
		}
		log.Printf("loaded snapshot %q from %s", st.name, st.path)
	}
	if len(cfg.backends) > 0 {
		engines := make([]v6class.Engine, len(cfg.backends))
		for i, u := range cfg.backends {
			eng, err := remote.Dial(u)
			if err != nil {
				return nil, fmt.Errorf("dialing backend %s: %w", u, err)
			}
			engines[i] = eng
		}
		var copts []remote.CoordinatorOption
		if cfg.partial {
			copts = append(copts, remote.WithPartialResults())
		}
		coord, err := remote.NewCoordinator(engines, nil, copts...)
		if err != nil {
			return nil, err
		}
		name := cfg.coordName
		if name == "" {
			name = "cluster"
		}
		// no file source: the census lives on the backends
		s.Install(name, "", coord)
		log.Printf("installed coordinator snapshot %q over %d backends", name, len(engines))
	}
	if len(cfg.catalog) > 0 {
		log.Printf("mounted a catalog of %d historical snapshot(s)", len(cfg.catalog))
	}
	if len(s.Names()) == 0 && len(cfg.catalog) == 0 {
		return nil, fmt.Errorf("nothing to serve: give at least one -state snapshot, -backend, -catalog or -demo")
	}
	return s, nil
}

// pprofHandler builds the net/http/pprof mux served on the side listener
// selected by -pprof-addr. The profiles stay off the query listener
// entirely: diagnosing a serve-path regression in production must not
// expose profiling to query clients.
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// countInflight wraps h so runServer can report, at shutdown, how many
// requests the drain waited on.
func countInflight(h http.Handler, n *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		defer n.Add(-1)
		h.ServeHTTP(w, r)
	})
}

// runServer serves h on ln until ctx is cancelled (SIGTERM/SIGINT in
// production), then drains: new connections are refused, in-flight
// requests get up to drain to finish, and the returned summary says
// whether they all did. The server carries conservative read-header and
// idle timeouts so a stalled or idle peer cannot pin a connection — the
// query handlers themselves are fast or admission-limited (see serve
// Options.SweepConcurrency).
func runServer(ctx context.Context, ln net.Listener, h http.Handler, drain time.Duration) (string, error) {
	var inflight atomic.Int64
	srv := &http.Server{
		Handler:           countInflight(h, &inflight),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return "", err
	case <-ctx.Done():
	}
	waiting := inflight.Load()
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
		return fmt.Sprintf("shutdown: drain timeout after %v, aborted %d in-flight request(s)", drain, inflight.Load()), nil
	}
	return fmt.Sprintf("shutdown: drained %d in-flight request(s)", waiting), nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("v6served: ")
	var cfg config
	listen := flag.String("listen", ":8470", "listen address")
	flag.Func("state", "census snapshot to serve: PATH or NAME=PATH (repeatable)", func(v string) error {
		cfg.states = append(cfg.states, parseState(v))
		return nil
	})
	flag.Func("backend", "cluster backend base URL (repeatable); all backends compose into one coordinator snapshot", func(v string) error {
		cfg.backends = append(cfg.backends, v)
		return nil
	})
	flag.StringVar(&cfg.coordName, "coordinator-name", "cluster", "snapshot name of the composed cluster coordinator")
	flag.Func("catalog", "historical snapshot for /v1/at: NAME=PATH@START..END with YYYY-MM-DD dates (repeatable)", func(v string) error {
		e, err := parseCatalog(v)
		if err != nil {
			return err
		}
		cfg.catalog = append(cfg.catalog, e)
		return nil
	})
	flag.IntVar(&cfg.catalogResident, "catalog-resident", 0, "max catalog snapshots kept loaded under LRU (0 = default 4)")
	flag.BoolVar(&cfg.demo, "demo", false, "serve a generated synthetic census and enable /v1/experiments")
	flag.Float64Var(&cfg.demoScale, "demo-scale", 0.02, "population scale of the demo world")
	flag.Uint64Var(&cfg.demoSeed, "demo-seed", 7, "seed of the demo world")
	flag.IntVar(&cfg.cache, "cache", 0, "result cache entries (0 = default)")
	flag.IntVar(&cfg.sweepLimit, "sweep-limit", 0, "max concurrent expensive sweep requests before shedding with 429 (0 = default 16, negative = unlimited)")
	flag.BoolVar(&cfg.partial, "partial-results", false, "cluster coordinator answers degraded (with coverage annotation) when a minority of backends is down")
	drain := flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight requests before aborting them")
	flag.StringVar(&cfg.adminToken, "admin-token", "", "token authorizing /v1/ingest, /v1/freeze and /v1/reload with an explicit path= (unset: open writes, source-only reloads)")
	flag.BoolVar(&cfg.readOnly, "readonly", false, "disable the write endpoints (/v1/ingest, /v1/freeze) entirely")
	flag.StringVar(&cfg.accessLog, "access-log", "", "append one structured line per request to this file (\"-\" = stdout; empty: disabled)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this side address (e.g. localhost:6060; empty: disabled)")
	flag.Parse()

	s, err := buildServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *pprofAddr != "" {
		// Bind synchronously so a bad -pprof-addr fails startup instead of
		// killing an already-serving process from the goroutine.
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("pprof listener: %v", err)
		}
		log.Printf("pprof on %s/debug/pprof/", ln.Addr())
		go func() {
			log.Fatal(http.Serve(ln, pprofHandler()))
		}()
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("serving %v on %s", s.Names(), ln.Addr())
	summary, err := runServer(ctx, ln, s.Handler(), *drain)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print(summary)
}
