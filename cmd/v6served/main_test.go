package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"v6class"
	"v6class/synth"
)

func TestParseState(t *testing.T) {
	for _, tc := range []struct {
		arg, name, path string
	}{
		{"census.state", "census", "census.state"},
		{"/data/mar2015.state", "mar2015", "/data/mar2015.state"},
		{"live=/data/today.state", "live", "/data/today.state"},
		{"a=b=c", "a", "b=c"},
		// A '=' inside a path with a directory-ish "name" is a path.
		{"/data/odd=name.state", "odd=name", "/data/odd=name.state"},
	} {
		got := parseState(tc.arg)
		if got.name != tc.name || got.path != tc.path {
			t.Errorf("parseState(%q) = %+v, want {%s %s}", tc.arg, got, tc.name, tc.path)
		}
	}
}

// writeSnapshot builds a small census through the public façade and
// persists it, as the daily pipeline would.
func writeSnapshot(t *testing.T) string {
	t.Helper()
	w := synth.NewWorld(synth.Config{Seed: 3, Scale: 0.005, StudyDays: 20})
	c, err := v6class.New(v6class.WithStudyDays(20), v6class.WithSequential())
	if err != nil {
		t.Fatal(err)
	}
	for d := 3; d <= 12; d++ {
		if err := c.AddDay(w.Day(d)); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "census.state")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildServerFromState(t *testing.T) {
	path := writeSnapshot(t)
	s, err := buildServer(config{states: []statePath{parseState(path)}})
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest("GET", "/v1/meta", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != 200 {
		t.Fatalf("meta status %d: %s", w.Code, w.Body.String())
	}
	var meta struct {
		Snapshot  string `json:"snapshot"`
		StudyDays int    `json:"studyDays"`
		Addresses int    `json:"addresses"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Snapshot != "census" || meta.StudyDays != 20 || meta.Addresses == 0 {
		t.Errorf("unexpected meta %+v", meta)
	}

	// Experiments must be disabled without -demo.
	r = httptest.NewRequest("GET", "/v1/experiments", nil)
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != 404 {
		t.Errorf("experiments without -demo: status %d, want 404", w.Code)
	}
}

// TestDemoDoesNotStealDefault asserts that combining -demo with -state
// keeps the real snapshot as the default for unqualified queries.
func TestDemoDoesNotStealDefault(t *testing.T) {
	path := writeSnapshot(t)
	s, err := buildServer(config{demo: true, demoScale: 0.002, demoSeed: 7, states: []statePath{parseState(path)}})
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest("GET", "/v1/meta", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	var meta struct {
		Snapshot string `json:"snapshot"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Snapshot != "census" {
		t.Errorf("default snapshot %q, want the -state census", meta.Snapshot)
	}
	// The demo snapshot and experiments remain reachable.
	r = httptest.NewRequest("GET", "/v1/meta?snap=demo", nil)
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != 200 {
		t.Errorf("demo snapshot unreachable: %d", w.Code)
	}
}

func TestBuildServerDemo(t *testing.T) {
	s, err := buildServer(config{demo: true, demoScale: 0.002, demoSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/v1/meta?snap=demo", "/v1/experiments", "/healthz"} {
		r := httptest.NewRequest("GET", path, nil)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, r)
		if w.Code != 200 {
			t.Errorf("GET %s: status %d: %s", path, w.Code, w.Body.String())
		}
	}
}

func TestBuildServerErrors(t *testing.T) {
	if _, err := buildServer(config{}); err == nil {
		t.Error("empty config should refuse to serve")
	}
	if _, err := buildServer(config{states: []statePath{{name: "x", path: "/does/not/exist"}}}); err == nil {
		t.Error("missing snapshot file should fail")
	}
	// A file that is not a census snapshot must be rejected, not served.
	bogus := filepath.Join(t.TempDir(), "bogus.state")
	if err := os.WriteFile(bogus, []byte("definitely not a census"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := buildServer(config{states: []statePath{parseState(bogus)}}); err == nil {
		t.Error("foreign file should fail to load")
	}
}

func TestPprofHandler(t *testing.T) {
	h := pprofHandler()
	for path, want := range map[string]int{
		"/debug/pprof/":        200,
		"/debug/pprof/cmdline": 200,
		"/debug/pprof/symbol":  200,
		"/other":               404,
	} {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != want {
			t.Errorf("GET %s = %d, want %d", path, rec.Code, want)
		}
	}
}

func TestParseCatalog(t *testing.T) {
	e, err := parseCatalog("2015-03=/data/mar.state@2015-03-01..2015-03-30")
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "2015-03" || e.Path != "/data/mar.state" ||
		e.Start.Format("2006-01-02") != "2015-03-01" || e.End.Format("2006-01-02") != "2015-03-30" {
		t.Errorf("parsed %+v", e)
	}
	for _, bad := range []string{
		"",
		"name-only",
		"a=path-no-dates",
		"a=p@2015-03-01",             // no range
		"a=p@2015-99-01..2015-03-30", // bad start
		"a=p@2015-03-01..nope",       // bad end
		"a=p@2015-03-30..2015-03-01", // inverted
		"=p@2015-03-01..2015-03-30",  // empty name
	} {
		if _, err := parseCatalog(bad); err == nil {
			t.Errorf("parseCatalog(%q) succeeded, want error", bad)
		}
	}
}
