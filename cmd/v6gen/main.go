// Command v6gen generates synthetic CDN aggregated logs: the stand-in for
// the study's proprietary data source. It writes one "#day N" section per
// study day in the cdnlog text format, consumable by v6census.
//
// Usage:
//
//	v6gen [-seed N] [-scale F] [-from DAY] [-to DAY] [-o FILE]
//
// Example: generate the final epoch week of the medium world:
//
//	v6gen -scale 1 -from 372 -to 379 -o week.log.gz
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"v6class"

	"v6class/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("v6gen: ")
	var (
		seed  = flag.Uint64("seed", 7, "world seed")
		scale = flag.Float64("scale", 0.1, "population scale (1.0 = medium world)")
		from  = flag.Int("from", synth.EpochMar2015, "first study day (inclusive)")
		to    = flag.Int("to", synth.EpochMar2015+7, "last study day (exclusive)")
		out   = flag.String("o", "-", "output file (- for stdout; .gz compresses)")
	)
	flag.Parse()
	days, records, err := generate(*seed, *scale, *from, *to, *out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "v6gen: wrote %d days, %d records\n", days, records)
}

// generate builds the world and writes the requested day range to out,
// returning the number of days and records written.
func generate(seed uint64, scale float64, from, to int, out string) (days, records int, err error) {
	if from < 0 || to > synth.StudyDays || from >= to {
		return 0, 0, fmt.Errorf("bad day range [%d,%d); study period is [0,%d)", from, to, synth.StudyDays)
	}
	world := synth.NewWorld(synth.Config{Seed: seed, Scale: scale})
	logs := world.Days(from, to)
	for _, day := range logs {
		records += len(day.Records)
	}
	if err := v6class.WriteLogs(out, logs); err != nil {
		return 0, 0, err
	}
	return len(logs), records, nil
}
