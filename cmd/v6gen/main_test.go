package main

import (
	"testing"
	"v6class"

	"v6class/synth"
)

func TestGenerateRoundTrip(t *testing.T) {
	path := t.TempDir() + "/out.log"
	days, records, err := generate(7, 0.02, synth.EpochMar2015, synth.EpochMar2015+2, path)
	if err != nil {
		t.Fatal(err)
	}
	if days != 2 || records == 0 {
		t.Fatalf("generated %d days, %d records", days, records)
	}
	logs, err := v6class.ReadLogs(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 2 || logs[0].Day != synth.EpochMar2015 {
		t.Fatalf("read back %d days starting %d", len(logs), logs[0].Day)
	}
	n := 0
	for _, l := range logs {
		n += len(l.Records)
	}
	if n != records {
		t.Fatalf("read %d records, wrote %d", n, records)
	}
}

func TestGenerateGzipAndDeterminism(t *testing.T) {
	dir := t.TempDir()
	a := dir + "/a.log.gz"
	b := dir + "/b.log.gz"
	if _, _, err := generate(9, 0.02, 100, 102, a); err != nil {
		t.Fatal(err)
	}
	if _, _, err := generate(9, 0.02, 100, 102, b); err != nil {
		t.Fatal(err)
	}
	la, err := v6class.ReadLogs(a)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := v6class.ReadLogs(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(la) != len(lb) {
		t.Fatal("nondeterministic day count")
	}
	for i := range la {
		if len(la[i].Records) != len(lb[i].Records) {
			t.Fatalf("day %d differs", i)
		}
		for j := range la[i].Records {
			if la[i].Records[j] != lb[i].Records[j] {
				t.Fatalf("record %d/%d differs", i, j)
			}
		}
	}
}

func TestGenerateBadRanges(t *testing.T) {
	for _, c := range []struct{ from, to int }{
		{-1, 5}, {5, 5}, {10, 5}, {0, synth.StudyDays + 1},
	} {
		if _, _, err := generate(1, 0.01, c.from, c.to, t.TempDir()+"/x.log"); err == nil {
			t.Errorf("range [%d,%d) should fail", c.from, c.to)
		}
	}
}
