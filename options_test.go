package v6class

import (
	"errors"
	"strings"
	"testing"
)

// TestOptionValidation covers the rejection matrix of New: zero and
// negative study lengths, bad shard/worker counts, and contradictory
// option combinations, all reported as errors wrapping ErrConfig.
func TestOptionValidation(t *testing.T) {
	bad := []struct {
		name string
		opts []Option
		want string // substring of the error
	}{
		{"no options", nil, "WithStudyDays is required"},
		{"zero study days", []Option{WithStudyDays(0)}, "at least one day"},
		{"negative study days", []Option{WithStudyDays(-7)}, "at least one day"},
		{"zero shards", []Option{WithStudyDays(10), WithShards(0)}, "must be positive"},
		{"negative shards", []Option{WithStudyDays(10), WithShards(-4)}, "must be positive"},
		{"zero workers", []Option{WithStudyDays(10), WithWorkers(0)}, "must be positive"},
		{"sequential vs shards", []Option{WithStudyDays(10), WithSequential(), WithShards(8)}, "conflicts"},
		{"shards vs sequential (order)", []Option{WithStudyDays(10), WithShards(8), WithSequential()}, "conflicts"},
		{"workers on sequential", []Option{WithStudyDays(10), WithSequential(), WithWorkers(4)}, "sequential"},
		{"workers on shards=1", []Option{WithStudyDays(10), WithShards(1), WithWorkers(4)}, "sequential"},
		{"empty window", []Option{WithStudyDays(10), WithWindow(0, 0)}, "window"},
		{"negative window", []Option{WithStudyDays(10), WithWindow(-1, 7)}, "window"},
		{"window vs stability options", []Option{WithStudyDays(10), WithWindow(3, 3), WithStabilityOptions(StabilityOptions{SlewDays: 1})}, "conflicts"},
		{"nil mac filter", []Option{WithStudyDays(10), WithMACFilter(nil)}, "filter function"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := New(tc.opts...)
			if err == nil {
				t.Fatalf("New(%s) accepted an invalid configuration (engine %v)", tc.name, eng)
			}
			if !errors.Is(err, ErrConfig) {
				t.Errorf("error %v does not wrap ErrConfig", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestShardClampingAndRounding asserts WithShards lands on the engine as a
// power of two and huge requests clamp instead of failing.
func TestShardClampingAndRounding(t *testing.T) {
	for _, tc := range []struct {
		in, want int
	}{
		{2, 2}, {3, 4}, {5, 8}, {16, 16}, {1000, 1024},
		{1 << 19, maxShards}, // clamped, then a power of two already
	} {
		eng, err := New(WithStudyDays(10), WithShards(tc.in))
		if err != nil {
			t.Fatalf("WithShards(%d): %v", tc.in, err)
		}
		if got := eng.Shards(); got != tc.want {
			t.Errorf("WithShards(%d) -> %d shards, want %d", tc.in, got, tc.want)
		}
	}
	// WithShards(1) is the sequential engine.
	eng, err := New(WithStudyDays(10), WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Shards() != 1 {
		t.Errorf("WithShards(1) -> %d shards, want the sequential engine", eng.Shards())
	}
}

// TestOpenRejectsSnapshotPinnedOptions asserts Open refuses options whose
// values a snapshot already records.
func TestOpenRejectsSnapshotPinnedOptions(t *testing.T) {
	path := t.TempDir() + "/s.state"
	eng, err := New(WithStudyDays(10), WithSequential())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, WithStudyDays(20)); !errors.Is(err, ErrConfig) {
		t.Errorf("Open with WithStudyDays: %v, want ErrConfig", err)
	}
	if _, err := Open(path, WithKeepTransition()); !errors.Is(err, ErrConfig) {
		t.Errorf("Open with WithKeepTransition: %v, want ErrConfig", err)
	}
	// Engine-shape options are fine and select the implementation.
	seq, err := Open(path, WithSequential())
	if err != nil {
		t.Fatal(err)
	}
	if seq.Shards() != 1 {
		t.Errorf("sequential open: %d shards", seq.Shards())
	}
	sh, err := Open(path, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if sh.Shards() != 4 || sh.StudyDays() != 10 {
		t.Errorf("sharded open: %d shards, %d days", sh.Shards(), sh.StudyDays())
	}
}
