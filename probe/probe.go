// Package probe simulates the active-measurement side of the study: the
// TTL-limited probing of Section 4.2 of Plonka & Berger (IMC 2015) that
// collects router interface addresses from ICMPv6 Time Exceeded responses,
// and the Section 6.1.1 experiment showing that 3d-stable WWW client
// addresses make far better traceroute targets than the classic IPv4-style
// selection.
//
// The simulated topology hangs off the synthetic world's BGP table: probing
// any routed address reveals a border router, a point-to-point link
// interface, and an aggregation router for the target's region; the
// last-hop router is revealed only when the target address is still active
// on the probe day — which is exactly why ephemeral privacy addresses are
// poor targets and stable addresses are good ones.
package probe

import (
	"context"

	"v6class/bgp"
	"v6class/internal/ipaddr"
	"v6class/internal/netmodel"
	"v6class/internal/uint128"
	"v6class/synth"
)

// Topology is the simulated router infrastructure of a world.
type Topology struct {
	world *synth.World
	// active is the set of client addresses live on the probe day. The
	// collection methodology counts only ICMPv6 Time Exceeded responses
	// (Section 4.2); a probe toward a vanished host dies at the edge
	// with Destination Unreachable instead, so the last-hop router is
	// observed only for targets that are still live — the mechanism
	// behind the paper's Section 6.1.1 result.
	active map[ipaddr.Addr]bool
	// aliased holds prefixes injected by MarkAliased: every routed address
	// under one of them answers probes, the signature of a CPE or
	// firewall terminating a whole delegated prefix.
	aliased []ipaddr.Prefix
}

// NewTopology builds the router topology of w, with probes happening on
// the given study day (whose active address set gates last-hop
// observability).
func NewTopology(w *synth.World, probeDay int) *Topology {
	t := &Topology{world: w, active: make(map[ipaddr.Addr]bool)}
	for _, r := range w.Day(probeDay).Records {
		t.active[r.Addr] = true
	}
	return t
}

// World returns the underlying synthetic world.
func (t *Topology) World() *synth.World { return t.world }

// Router interface IIDs live in per-prefix infrastructure /64s: the top
// /64 of each advertised prefix, which no client plan allocates from.
const (
	// lastHopIID marks last-hop (subscriber-side) router interfaces.
	lastHopIID = 0xfffffffffffffffe
	// aggIIDBase marks aggregation router interfaces.
	aggIIDBase = 0xffffffff00000000
	// groupShift sizes a last-hop router's coverage: one last-hop (CPE or
	// subscriber-edge) router per /64.
	groupShift = 0
)

// infraNet returns the infrastructure /64 of an advertised prefix.
func infraNet(p ipaddr.Prefix) uint64 {
	return ipaddr.PrefixFrom(p.Last(), 64).Addr().NetworkID()
}

// BorderRouters returns the border-router interface addresses of prefix p:
// a dense run ::1..::n in the infrastructure /64 (the dense /112 blocks of
// Table 3), plus /127 point-to-point interfaces and a couple of EUI-64
// interfaces. Only the "responding" subset appears in traceroute paths; see
// AllInterfaces for the full set (used by the DNS harvesting experiment).
func (t *Topology) BorderRouters(p ipaddr.Prefix, op *netmodel.Operator) []ipaddr.Addr {
	net := infraNet(p)
	n := routersFor(op)
	out := make([]ipaddr.Addr, 0, n+n/2+2)
	for i := 1; i <= n; i++ {
		out = append(out, addr64(net, uint64(i)))
	}
	// Point-to-point /127 pairs at a dense offset block.
	for i := 0; i < n/2; i++ {
		out = append(out, addr64(net, 0x10000+uint64(2*i)))
	}
	// A couple of EUI-64-addressed interfaces.
	out = append(out,
		addr64(net, 0x021122fffe000001),
		addr64(net, 0x021122fffe000002),
	)
	return out
}

// AllInterfaces returns every router interface with a DNS PTR record in
// prefix p's infrastructure: twice the responding border set (silent
// standby interfaces still have names), both ends of each /127, and the
// EUI-64 pair. The DNS harvesting experiment of Section 6.2.3 finds these
// extra interfaces by sweeping dense prefixes.
func (t *Topology) AllInterfaces(p ipaddr.Prefix, op *netmodel.Operator) []ipaddr.Addr {
	net := infraNet(p)
	n := routersFor(op)
	out := make([]ipaddr.Addr, 0, 3*n+2)
	for i := 1; i <= 2*n; i++ {
		out = append(out, addr64(net, uint64(i)))
	}
	for i := 0; i < n; i++ {
		out = append(out, addr64(net, 0x10000+uint64(i)))
	}
	out = append(out,
		addr64(net, 0x021122fffe000001),
		addr64(net, 0x021122fffe000002),
	)
	return out
}

// routersFor sizes a prefix's border-router count by operator population.
func routersFor(op *netmodel.Operator) int {
	switch {
	case op.Subscribers >= 5000:
		return 48
	case op.Subscribers >= 1000:
		return 16
	default:
		return 6
	}
}

// Resolvers returns the recursive DNS server addresses of the world: one or
// two per operator, in the infrastructure /64 at the conventional :53
// offsets. These are the paper's first probe-target type.
func (t *Topology) Resolvers() []ipaddr.Addr {
	var out []ipaddr.Addr
	for _, op := range t.world.Operators {
		net := infraNet(op.Prefixes[0])
		out = append(out, addr64(net, 0x5300))
		if op.Subscribers > 2000 {
			out = append(out, addr64(net, 0x5301))
		}
	}
	return out
}

// aggRouter returns the aggregation router interface for a client /64.
// Aggregation is coarse — four region routers per advertised prefix — so
// probing many dead targets quickly exhausts the aggregation layer's
// contribution to discovery; further gains require live targets.
func aggRouter(p ipaddr.Prefix, clientNet uint64) ipaddr.Addr {
	region := clientNet >> 18 & 0x3
	return addr64(infraNet(p), aggIIDBase|region)
}

// lastHopRouter returns the last-hop router interface for a client /64:
// one per 2^groupShift consecutive /64s, addressed within the group's
// first /64.
func lastHopRouter(clientNet uint64) ipaddr.Addr {
	group := clientNet >> groupShift << groupShift
	return addr64(group, lastHopIID)
}

// Trace simulates a TTL-limited probe toward target, returning the router
// interfaces that answer with ICMPv6 Time Exceeded, in hop order. An
// unrouted target yields no responses. The last hop answers only when the
// target address is active on the probe day.
func (t *Topology) Trace(target ipaddr.Addr) []ipaddr.Addr {
	origin, ok := t.world.Table.Lookup(target)
	if !ok {
		return nil
	}
	op, _ := t.world.OperatorByName(origin.Name)
	if op == nil {
		return nil
	}
	// Border router: paths to a region consistently cross the same
	// border, so dead targets exhaust the border layer quickly.
	borders := t.BorderRouters(origin.Prefix, op)
	region := target.NetworkID() >> 18 & 0x3
	b := borders[int(region)%routersFor(op)]
	// Distribution hop: the ingress interface of a /127 point-to-point
	// link, one of up to 64 per prefix packed in a dense block — the
	// paper's Table 3 finds 64@/112-dense infrastructure exactly because
	// router link interfaces are numbered adjacently.
	p2p := addr64(infraNet(origin.Prefix), 0x10000+2*(target.NetworkID()>>8&0x3f))
	path := []ipaddr.Addr{b, p2p, aggRouter(origin.Prefix, target.NetworkID())}
	if t.active[target] || t.isInfra(origin.Prefix, op, target) {
		path = append(path, lastHopRouter(target.NetworkID()))
	}
	return path
}

// isInfra reports whether target is itself infrastructure (resolvers and
// router interfaces always respond).
func (t *Topology) isInfra(p ipaddr.Prefix, op *netmodel.Operator, target ipaddr.Addr) bool {
	return target.NetworkID() == infraNet(p)
}

// MarkAliased injects an aliased prefix into the world: every routed
// address under p answers echo requests from then on, simulating a CPE or
// load balancer that terminates its whole delegated prefix. Alias-detection
// experiments use this to plant ground truth. Not safe concurrently with
// Responds; inject before probing starts.
func (t *Topology) MarkAliased(p ipaddr.Prefix) {
	t.aliased = append(t.aliased, p)
}

// Aliased returns the prefixes injected by MarkAliased.
func (t *Topology) Aliased() []ipaddr.Prefix {
	return append([]ipaddr.Prefix(nil), t.aliased...)
}

// Responds reports whether an echo request toward target elicits an echo
// reply from the target itself: the address must be routed, and must be a
// client address active on the probe day, an infrastructure interface, or
// covered by an injected aliased prefix. This is the probe primitive of
// the measurement loop (Trace is the TTL-limited path primitive).
func (t *Topology) Responds(target ipaddr.Addr) bool {
	origin, ok := t.world.Table.Lookup(target)
	if !ok {
		return false
	}
	if t.active[target] {
		return true
	}
	op, _ := t.world.OperatorByName(origin.Name)
	if op != nil && t.isInfra(origin.Prefix, op, target) {
		return true
	}
	for _, p := range t.aliased {
		if p.Contains(target) {
			return true
		}
	}
	return false
}

// Probe implements the target package's Prober over the simulated world:
// a hit is an echo reply from the target (Responds). The context is
// accepted for interface conformance; the simulation never blocks.
func (t *Topology) Probe(_ context.Context, target ipaddr.Addr) (bool, error) {
	return t.Responds(target), nil
}

// Discover probes every target and returns the distinct router interfaces
// observed, the Section 4.2 collection methodology.
func (t *Topology) Discover(targets []ipaddr.Addr) []ipaddr.Addr {
	seen := make(map[ipaddr.Addr]bool)
	var out []ipaddr.Addr
	for _, tgt := range targets {
		for _, r := range t.Trace(tgt) {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	return out
}

// RouterDataset synthesizes the Section 4.2 router-address dataset by
// probing the three target types the paper used: recursive resolver
// addresses, the CDN's own server locations (modelled as resolvers of the
// largest operators), and a mixed selection of WWW client addresses. The
// result feeds Table 3's dense-prefix analysis.
func (t *Topology) RouterDataset(clientTargets []ipaddr.Addr) []ipaddr.Addr {
	targets := t.Resolvers()
	targets = append(targets, clientTargets...)
	return t.Discover(targets)
}

func addr64(net, iid uint64) ipaddr.Addr {
	return ipaddr.AddrFrom128(uint128.New(net, iid))
}

// ASNOf is a convenience for reports: the origin ASN of an address.
func (t *Topology) ASNOf(a ipaddr.Addr) (bgp.ASN, bool) {
	o, ok := t.world.Table.Lookup(a)
	return o.ASN, ok
}
