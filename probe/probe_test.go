package probe

import (
	"testing"

	"v6class/internal/ipaddr"
	"v6class/internal/uint128"
	"v6class/synth"
)

func topo(t *testing.T) *Topology {
	t.Helper()
	w := synth.NewWorld(synth.Config{Seed: 7, Scale: 0.02})
	return NewTopology(w, synth.EpochMar2015)
}

func TestTraceRoutedTarget(t *testing.T) {
	tp := topo(t)
	day := tp.World().Day(synth.EpochMar2015)
	if len(day.Records) == 0 {
		t.Fatal("empty day")
	}
	// An active client address traces to four hops: border, p2p link,
	// aggregation, last-hop.
	target := day.Records[0].Addr
	path := tp.Trace(target)
	if len(path) != 4 {
		t.Fatalf("active target path = %v", path)
	}
	// Path routers belong to the target's operator space or group.
	for _, r := range path {
		if r == target {
			t.Error("router must differ from target")
		}
	}
	// Determinism.
	path2 := tp.Trace(target)
	for i := range path {
		if path[i] != path2[i] {
			t.Fatal("trace not deterministic")
		}
	}
}

func TestTraceInactiveTargetStopsEarly(t *testing.T) {
	tp := topo(t)
	// A routed but never-assigned /64: mobile pools are packed from the
	// bottom of each /44 and infrastructure sits in the top /64, so a /64
	// just below the top is never live.
	op, _ := tp.World().OperatorByName("us-mobile-1")
	deadNet := ipaddr.PrefixFrom(op.Prefixes[0].Last(), 64).Addr().NetworkID() - 2
	target := addrAt(deadNet, 0xdeadbeefdeadbeef)
	path := tp.Trace(target)
	if len(path) != 3 {
		t.Fatalf("dead-subnet target should stop at aggregation: %v", path)
	}
}

// addrAt builds an address from a /64 network identifier and IID.
func addrAt(net, iid uint64) ipaddr.Addr {
	return ipaddr.AddrFrom128(uint128.New(net, iid))
}

func TestTraceUnroutedTarget(t *testing.T) {
	tp := topo(t)
	target := ipaddr.MustParseAddr("3fff::1")
	if path := tp.Trace(target); len(path) != 0 {
		t.Fatalf("unrouted target path = %v", path)
	}
}

func TestResolversAreProbeable(t *testing.T) {
	tp := topo(t)
	res := tp.Resolvers()
	if len(res) < 40 {
		t.Fatalf("only %d resolvers", len(res))
	}
	// Resolvers are infrastructure: their traces reach the last hop.
	for _, r := range res[:10] {
		if path := tp.Trace(r); len(path) != 4 {
			t.Fatalf("resolver %v path = %v", r, path)
		}
	}
}

func TestDiscoverDeduplicates(t *testing.T) {
	tp := topo(t)
	day := tp.World().Day(synth.EpochMar2015)
	targets := day.Addrs()
	if len(targets) > 500 {
		targets = targets[:500]
	}
	found := tp.Discover(targets)
	seen := map[ipaddr.Addr]bool{}
	for _, r := range found {
		if seen[r] {
			t.Fatalf("duplicate router %v", r)
		}
		seen[r] = true
	}
	if len(found) < 10 {
		t.Errorf("discovered only %d routers", len(found))
	}
}

func TestLiveTargetsBeatDeadTargets(t *testing.T) {
	// The Section 6.1.1 effect in miniature: targets that have gone dark
	// (expired privacy addresses) reveal fewer routers than targets still
	// live at probe time, because only live targets' paths expose the
	// last-hop routers.
	w := synth.NewWorld(synth.Config{Seed: 7, Scale: 0.05})
	probeDay := synth.EpochMar2015 + 14
	tp := NewTopology(w, probeDay)

	older := w.Day(synth.EpochMar2015) // two weeks before probing
	activeNow := map[ipaddr.Addr]bool{}
	for _, r := range w.Day(probeDay).Records {
		activeNow[r.Addr] = true
	}
	var dead, live []ipaddr.Addr
	for _, a := range older.Addrs() {
		if len(dead) >= 500 && len(live) >= 500 {
			break
		}
		if activeNow[a] {
			live = append(live, a)
		} else {
			dead = append(dead, a)
		}
	}
	if len(live) < 100 || len(dead) < 100 {
		t.Skipf("degenerate split: %d live, %d dead", len(live), len(dead))
	}
	n := len(live)
	if n > len(dead) {
		n = len(dead)
	}
	liveRouters := tp.Discover(live[:n])
	deadRouters := tp.Discover(dead[:n])
	if len(liveRouters) <= len(deadRouters) {
		t.Errorf("live targets found %d routers, dead %d; want live > dead",
			len(liveRouters), len(deadRouters))
	}
}

func TestBorderRoutersDense(t *testing.T) {
	tp := topo(t)
	op, _ := tp.World().OperatorByName("us-mobile-1")
	routers := tp.BorderRouters(op.Prefixes[0], op)
	if len(routers) < 10 {
		t.Fatalf("border set = %d", len(routers))
	}
	// The ::1..::n run is numerically adjacent (dense /112 material).
	if routers[0].IID() != 1 || routers[1].IID() != 2 {
		t.Errorf("border run should start ::1, ::2; got %v %v", routers[0], routers[1])
	}
	all := tp.AllInterfaces(op.Prefixes[0], op)
	if len(all) <= len(routers) {
		t.Errorf("AllInterfaces (%d) should exceed responding set (%d)", len(all), len(routers))
	}
	// The responding set is a subset of the named set.
	named := map[ipaddr.Addr]bool{}
	for _, a := range all {
		named[a] = true
	}
	miss := 0
	for _, a := range routers {
		if !named[a] {
			miss++
		}
	}
	if miss > len(routers)/2 {
		t.Errorf("%d responding interfaces missing from AllInterfaces", miss)
	}
}

func TestRouterDataset(t *testing.T) {
	tp := topo(t)
	day := tp.World().Day(synth.EpochMar2015)
	clients := day.Addrs()
	if len(clients) > 1000 {
		clients = clients[:1000]
	}
	routers := tp.RouterDataset(clients)
	if len(routers) < 50 {
		t.Errorf("router dataset = %d", len(routers))
	}
	// All router addresses re-resolve to an ASN (they live in advertised
	// space).
	for _, r := range routers[:20] {
		if _, ok := tp.ASNOf(r); !ok {
			t.Errorf("router %v outside advertised space", r)
		}
	}
}
