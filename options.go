package v6class

import (
	"errors"
	"fmt"
	"runtime"
)

// Lifecycle and configuration errors. Every Engine method that can fail
// returns one of these (possibly wrapped with detail), so callers branch
// with errors.Is instead of matching panic strings from internal layers.
var (
	// ErrFrozen is returned by ingestion methods after Freeze: a frozen
	// engine is immutable.
	ErrFrozen = errors.New("v6class: engine is frozen")
	// ErrNotFrozen is returned by query methods before Freeze: queries
	// require the immutable, lock-free post-freeze state.
	ErrNotFrozen = errors.New("v6class: engine is not frozen (call Freeze before querying)")
	// ErrConfig is wrapped by New and Open for invalid or conflicting
	// functional options, and by queries for parameters outside their
	// domain (an unknown population, a negative window).
	ErrConfig = errors.New("v6class: invalid engine configuration")
	// ErrDayRange is wrapped by ingestion methods refusing a log whose
	// day falls outside [0, StudyDays): the temporal stores would silently
	// drop its observations, which is quiet data loss, never acceptable.
	ErrDayRange = errors.New("v6class: log day outside the study period")
	// ErrUnavailable is wrapped by cluster-backed engines (package remote)
	// when a backend cannot be reached: the retry budget ran out, the
	// circuit breaker is open, or the fan-out deadline passed. It marks an
	// infrastructure failure, never a property of the census — retrying
	// later may succeed where reformulating the query will not.
	ErrUnavailable = errors.New("v6class: backend unavailable")
	// ErrDegraded is wrapped by cluster coordinators running in opt-in
	// partial-results mode when a merge proceeded without a minority of
	// partitions. The accompanying result is valid but incomplete; the
	// error unwraps (errors.As) to a remote.DegradedError carrying the
	// exact Coverage. Strict mode — the default — never returns it.
	ErrDegraded = errors.New("v6class: partial results (some partitions unavailable)")
)

// maxShards caps WithShards; larger requests clamp rather than error, so a
// config tuned for a bigger machine still runs. 4096 shards saturate any
// plausible host long before per-shard overhead would.
const maxShards = 1 << 12

// config is the resolved option set of New/Open.
type config struct {
	studyDays      int
	keepTransition bool
	stability      StabilityOptions
	hasStability   bool
	window         *StabilityWindow
	shards         int // 0 = auto, 1 = sequential, >1 = sharded
	sequential     bool
	workers        int
	macFilter      func(MAC) bool
	err            error // first option error, reported by New/Open
}

// Option configures an Engine under construction. Options are applied in
// order; contradictory combinations are reported by New or Open as errors
// wrapping ErrConfig.
type Option func(*config)

// fail records the first option error.
func (c *config) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("%w: %s", ErrConfig, fmt.Sprintf(format, args...))
	}
}

// WithStudyDays sets the study period length in days. It is required by New
// and rejected by Open, whose study length comes from the snapshot.
func WithStudyDays(n int) Option {
	return func(c *config) {
		if n <= 0 {
			c.fail("WithStudyDays(%d): study period must have at least one day", n)
			return
		}
		c.studyDays = n
	}
}

// WithKeepTransition retains Teredo/ISATAP/6to4 addresses in the temporal
// stores instead of segregating them. The paper's analyses run without it.
func WithKeepTransition() Option {
	return func(c *config) { c.keepTransition = true }
}

// WithWindow sets the default nd-stable sliding window to (-before d,
// +after d); the engine's Stability, WeeklyStability and StableAddrs use
// it. Unset, the paper's (-7d,+7d) window applies.
func WithWindow(before, after int) Option {
	return func(c *config) {
		if before < 0 || after < 0 || before+after == 0 {
			c.fail("WithWindow(%d, %d): window must extend at least one day on one side", before, after)
			return
		}
		c.window = &StabilityWindow{Before: before, After: after}
	}
}

// WithStabilityOptions sets the full default classification options
// (window, slew, pair rule). It conflicts with WithWindow.
func WithStabilityOptions(opts StabilityOptions) Option {
	return func(c *config) {
		c.stability = opts
		c.hasStability = true
	}
}

// WithShards selects the concurrent sharded engine with k temporal shards
// (rounded up to a power of two, clamped to an implementation maximum).
// WithShards(1) selects the sequential engine. Unset, New picks the engine
// from GOMAXPROCS.
func WithShards(k int) Option {
	return func(c *config) {
		if k <= 0 {
			c.fail("WithShards(%d): shard count must be positive", k)
			return
		}
		if k > maxShards {
			k = maxShards
		}
		c.shards = k
	}
}

// WithSequential selects the sequential engine: ingestion on the caller's
// goroutine, no pipeline. It conflicts with WithShards(k > 1) and
// WithWorkers.
func WithSequential() Option {
	return func(c *config) { c.sequential = true }
}

// WithWorkers sets the classification worker count of the sharded
// ingestion pipeline (default GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *config) {
		if n <= 0 {
			c.fail("WithWorkers(%d): worker count must be positive", n)
			return
		}
		c.workers = n
	}
}

// WithMACFilter drops EUI-64 records whose embedded hardware address fails
// keep before they reach the census — e.g. to exclude a known OUI from a
// study. Records of every other format class always pass.
func WithMACFilter(keep func(MAC) bool) Option {
	return func(c *config) {
		if keep == nil {
			c.fail("WithMACFilter(nil): a filter function is required")
			return
		}
		c.macFilter = keep
	}
}

// resolve applies the options and settles cross-option conflicts. forOpen
// relaxes the StudyDays requirement (the snapshot provides it) and instead
// rejects options a snapshot already pins.
func resolve(opts []Option, forOpen bool) (config, error) {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if c.err != nil {
		return c, c.err
	}
	if c.sequential && c.shards > 1 {
		c.fail("WithSequential conflicts with WithShards(%d)", c.shards)
	}
	if c.sequential || c.shards == 1 {
		if c.workers > 0 {
			c.fail("WithWorkers(%d) configures the sharded pipeline and conflicts with the sequential engine", c.workers)
		}
		c.sequential = true
		c.shards = 1
	}
	if c.hasStability && c.window != nil {
		c.fail("WithStabilityOptions conflicts with WithWindow; set the window inside the options")
	}
	if c.window != nil {
		c.stability.Window = *c.window
	}
	if forOpen {
		if c.studyDays != 0 {
			c.fail("WithStudyDays(%d): the study length of an opened engine comes from the snapshot", c.studyDays)
		}
		if c.keepTransition {
			c.fail("WithKeepTransition: transition handling of an opened engine comes from the snapshot")
		}
	} else if c.studyDays <= 0 && c.err == nil {
		c.fail("WithStudyDays is required")
	}
	if c.err != nil {
		return c, c.err
	}
	if !c.sequential && c.shards == 0 && c.workers == 0 && runtime.GOMAXPROCS(0) == 1 {
		// Auto mode on a single-core machine: the routing pipeline would
		// pay its overhead for nothing. An explicit WithWorkers request
		// keeps the pipeline — the option must mean the same thing on
		// every host shape, never be silently discarded on one of them.
		c.sequential = true
		c.shards = 1
	}
	return c, nil
}
