package v6class_test

// Conformance under faults: the cluster stays byte-identical to the
// sequential reference while a backend misbehaves (strict mode retries
// through the faults), fails fast naming the broken partition when one is
// gone for good, and — only when explicitly asked — degrades to the
// answering majority with an exact Coverage report.

import (
	"errors"
	"net/http/httptest"
	"reflect"
	"slices"
	"strings"
	"testing"
	"time"

	"v6class"
	"v6class/remote"
	"v6class/remote/chaos"
	"v6class/serve"
)

// confBackendEngines builds the three partitioned backend engines of the
// conformance census.
func confBackendEngines(t *testing.T, part remote.Partition) []v6class.Engine {
	t.Helper()
	const n = 3
	split := remote.SplitLogs(confLogs(), n, part)
	engines := make([]v6class.Engine, n)
	for i := range engines {
		eng, err := v6class.New(v6class.WithStudyDays(confStudyDays), v6class.WithSequential())
		if err != nil {
			t.Fatalf("New backend %d: %v", i, err)
		}
		if err := eng.AddDays(split[i]); err != nil {
			t.Fatalf("AddDays backend %d: %v", i, err)
		}
		if err := eng.Freeze(); err != nil {
			t.Fatalf("Freeze backend %d: %v", i, err)
		}
		engines[i] = eng
	}
	return engines
}

// serveBackend publishes one engine over httptest and returns the server
// (so a test can kill it) and its handler URL.
func serveBackend(t *testing.T, eng v6class.Engine) *httptest.Server {
	t.Helper()
	s := serve.New(serve.Options{})
	s.Install("census", "", eng)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// collectKeys drains an ordered enumeration into a slice.
func collectKeys(t *testing.T, e v6class.Engine, pop v6class.Population) []v6class.Prefix {
	t.Helper()
	seq, err := e.KeysOrdered(pop)
	if err != nil && !errors.Is(err, v6class.ErrDegraded) {
		t.Fatalf("KeysOrdered: %v", err)
	}
	var out []v6class.Prefix
	for p := range seq {
		out = append(out, p)
	}
	return out
}

// TestClusterConformanceUnderFaults puts a chaos proxy — seeded 30% 503
// bursts plus occasional connection resets — in front of one of the three
// partitions and proves the strict-mode cluster still answers every query
// byte-identical to the sequential reference: the client retry tier
// absorbs every injected fault.
func TestClusterConformanceUnderFaults(t *testing.T) {
	ref := buildLocal(t, v6class.WithSequential())
	part := remote.PartitionByNetworkID(3)
	engines := confBackendEngines(t, part)
	in := chaos.NewInjector(chaos.Policy{Seed: 42, FailRate: 0.25, ResetRate: 0.05})
	backends := make([]v6class.Engine, len(engines))
	for i, eng := range engines {
		srv := serveBackend(t, eng)
		dialURL := srv.URL
		if i == 1 {
			px, err := chaos.NewProxy(in, srv.URL)
			if err != nil {
				t.Fatalf("NewProxy: %v", err)
			}
			front := httptest.NewServer(px)
			t.Cleanup(front.Close)
			dialURL = front.URL
		}
		re, err := remote.Dial(dialURL, remote.WithSnapshot("census"),
			remote.WithPageSize(7), remote.WithRetries(10),
			remote.WithBackoff(remote.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond}))
		if err != nil {
			t.Fatalf("Dial backend %d: %v", i, err)
		}
		backends[i] = re
	}
	coord, err := remote.NewCoordinator(backends, part)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}

	type q struct {
		name string
		eval func(e v6class.Engine) (any, error)
	}
	cases := []q{
		{"numAddrs", func(e v6class.Engine) (any, error) { return e.NumKeys(v6class.Addresses) }},
		{"num64s", func(e v6class.Engine) (any, error) { return e.NumKeys(v6class.Prefixes64) }},
		{"summary13", func(e v6class.Engine) (any, error) { return e.Summary(13) }},
		{"active7", func(e v6class.Engine) (any, error) { return e.ActiveCount(v6class.Addresses, 7) }},
		{"stability", func(e v6class.Engine) (any, error) { return e.Stability(v6class.Addresses, 14, 3) }},
		{"lifetimes", func(e v6class.Engine) (any, error) { return e.LifetimeStats(v6class.Addresses, 0, 29) }},
	}
	for round := 0; round < 3; round++ {
		for _, tc := range cases {
			want, err := tc.eval(ref)
			if err != nil {
				t.Fatalf("%s: reference: %v", tc.name, err)
			}
			got, err := tc.eval(coord)
			if err != nil {
				t.Fatalf("round %d %s through faults: %v", round, tc.name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d %s = %+v, reference %+v", round, tc.name, got, want)
			}
		}
		if got, want := collectKeys(t, coord, v6class.Addresses), collectKeys(t, ref, v6class.Addresses); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d ordered enumeration diverged under faults: %d vs %d keys", round, len(got), len(want))
		}
	}
	st := in.Stats()
	if st.Faults == 0 {
		t.Fatal("the chaos proxy injected no faults — the test proved nothing")
	}
	t.Logf("conformance held through %d injected faults across %d proxied requests", st.Faults, st.Requests)
}

// deadClusterSetup builds a 3-partition cluster, kills the given backends'
// servers, and composes the rest into a coordinator. It returns the
// coordinator, the per-partition local engines, and the killed servers'
// URLs.
func deadClusterSetup(t *testing.T, dead []int, copts ...remote.CoordinatorOption) (*remote.Coordinator, []v6class.Engine, []string) {
	t.Helper()
	part := remote.PartitionByNetworkID(3)
	engines := confBackendEngines(t, part)
	backends := make([]v6class.Engine, len(engines))
	urls := make([]string, len(engines))
	var killed []*httptest.Server
	for i, eng := range engines {
		srv := serveBackend(t, eng)
		urls[i] = srv.URL
		re, err := remote.Dial(srv.URL, remote.WithSnapshot("census"),
			remote.WithPageSize(7), remote.WithRetries(1),
			remote.WithBackoff(remote.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}),
			remote.WithAttemptTimeout(2*time.Second))
		if err != nil {
			t.Fatalf("Dial backend %d: %v", i, err)
		}
		backends[i] = re
		for _, d := range dead {
			if d == i {
				killed = append(killed, srv)
			}
		}
	}
	for _, srv := range killed {
		srv.Close()
	}
	coord, err := remote.NewCoordinator(backends, part, copts...)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	return coord, engines, urls
}

// TestClusterFailsFastNamingBackend: the default strict cluster with one
// partition gone answers with an error that wraps ErrUnavailable and names
// exactly the dead backend — index and URL.
func TestClusterFailsFastNamingBackend(t *testing.T) {
	coord, _, urls := deadClusterSetup(t, []int{1})
	_, err := coord.NumKeys(v6class.Addresses)
	if !errors.Is(err, v6class.ErrUnavailable) {
		t.Fatalf("strict query with a dead backend: %v, want ErrUnavailable", err)
	}
	if !strings.Contains(err.Error(), "backend 1") {
		t.Fatalf("error does not name the dead backend's index: %v", err)
	}
	if !strings.Contains(err.Error(), urls[1]) {
		t.Fatalf("error does not name the dead backend's URL %s: %v", urls[1], err)
	}
}

// TestClusterDegradedCoverage: with WithPartialResults, a minority outage
// yields the answering partitions' merge plus an exact Coverage report
// behind ErrDegraded; point queries owned by the dead partition still fail
// strictly; and ordered enumerations merge exactly the live partitions.
func TestClusterDegradedCoverage(t *testing.T) {
	coord, engines, urls := deadClusterSetup(t, []int{1}, remote.WithPartialResults())

	liveKeys := 0
	for _, i := range []int{0, 2} {
		n, err := engines[i].NumKeys(v6class.Addresses)
		if err != nil {
			t.Fatal(err)
		}
		liveKeys += n
	}
	got, err := coord.NumKeys(v6class.Addresses)
	if !errors.Is(err, v6class.ErrDegraded) {
		t.Fatalf("degraded NumKeys err = %v, want ErrDegraded", err)
	}
	if got != liveKeys {
		t.Fatalf("degraded NumKeys = %d, want %d (sum of live partitions)", got, liveKeys)
	}
	var de *remote.DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("degraded error is not a *DegradedError: %v", err)
	}
	cov := de.Coverage
	if cov.Backends != 3 || cov.Answered != 2 || len(cov.Failed) != 1 {
		t.Fatalf("Coverage = %+v, want 2/3 with one failure", cov)
	}
	if f := cov.Failed[0]; f.Index != 1 || f.URL != urls[1] || !errors.Is(f.Err, v6class.ErrUnavailable) {
		t.Fatalf("Coverage.Failed[0] = %+v, want backend 1 at %s wrapping ErrUnavailable", f, urls[1])
	}

	// The ordered enumeration merges exactly the live partitions, still in
	// global key order.
	var want []v6class.Prefix
	want = append(want, collectKeys(t, engines[0], v6class.Addresses)...)
	want = append(want, collectKeys(t, engines[2], v6class.Addresses)...)
	sortPrefixes(want)
	gotKeys := collectKeys(t, coord, v6class.Addresses)
	if !reflect.DeepEqual(gotKeys, want) {
		t.Fatalf("degraded enumeration yielded %d keys, want %d from the live partitions", len(gotKeys), len(want))
	}

	// A point query owned by the dead partition has no degraded answer:
	// it fails strictly, naming the backend.
	part := remote.PartitionByNetworkID(3)
	var deadAddr, liveAddr v6class.Addr
	var haveDead, haveLive bool
	for _, rec := range confLogs()[0].Records {
		owner := part(v6class.PrefixFrom(rec.Addr, 64))
		switch {
		case owner == 1 && !haveDead:
			deadAddr, haveDead = rec.Addr, true
		case owner != 1 && !haveLive:
			liveAddr, haveLive = rec.Addr, true
		}
	}
	if !haveDead || !haveLive {
		t.Fatal("conformance census has no address on both sides of the partition split")
	}
	if _, err := coord.LookupAddr(deadAddr); !errors.Is(err, v6class.ErrUnavailable) {
		t.Fatalf("point query to the dead owner: %v, want ErrUnavailable", err)
	} else if !strings.Contains(err.Error(), "backend 1") {
		t.Fatalf("point-query error does not name the dead backend: %v", err)
	}
	if _, err := coord.LookupAddr(liveAddr); err != nil {
		t.Fatalf("point query to a live owner under degradation: %v", err)
	}
}

// sortPrefixes orders prefixes in the canonical key order used by every
// ordered enumeration.
func sortPrefixes(ps []v6class.Prefix) {
	slices.SortFunc(ps, v6class.Prefix.Cmp)
}

// TestClusterMajorityDownNeverDegrades: even in partial mode, losing two
// of three partitions fails the query outright — answering from a minority
// of the census would be worse than failing.
func TestClusterMajorityDownNeverDegrades(t *testing.T) {
	coord, _, _ := deadClusterSetup(t, []int{0, 2}, remote.WithPartialResults())
	_, err := coord.NumKeys(v6class.Addresses)
	if !errors.Is(err, v6class.ErrUnavailable) {
		t.Fatalf("majority-down query: %v, want ErrUnavailable", err)
	}
	if errors.Is(err, v6class.ErrDegraded) {
		t.Fatalf("majority-down query degraded instead of failing: %v", err)
	}
}
