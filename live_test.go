package v6class

import (
	"bytes"
	"errors"
	"testing"

	"v6class/internal/core"
	"v6class/synth"
)

// The generational façade suite: Successor lifecycle and error paths, and
// the SpatialSetFrom equivalence — a set extended by the generation's delta
// must be bit-identical to one built from scratch over the successor.

// splitLogs generates a deterministic study and cuts it into two
// generations at day split.
func splitLogs(t testing.TB, days, split int) (gen1, gen2 []DayLog) {
	t.Helper()
	w := synth.NewWorld(synth.Config{Seed: 9, Scale: 0.005, StudyDays: days})
	logs := make([]DayLog, days)
	for d := 0; d < days; d++ {
		logs[d] = w.Day(d)
	}
	return logs[:split], logs[split:]
}

func TestSuccessorErrors(t *testing.T) {
	eng, err := New(WithStudyDays(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Successor(eng); !errors.Is(err, ErrNotFrozen) {
		t.Fatalf("Successor of an unfrozen engine: %v, want ErrNotFrozen", err)
	}

	// A foreign Analyzer (neither census implementation) has nothing to
	// layer over.
	var fake fakeAnalyzer
	if _, err := Successor(FromAnalyzer(&fake)); !errors.Is(err, ErrConfig) {
		t.Fatalf("Successor of a foreign Analyzer: %v, want ErrConfig", err)
	}
}

// fakeAnalyzer is a non-census Analyzer: just enough surface for
// FromAnalyzer to adopt it.
type fakeAnalyzer struct{ core.Census }

func TestSuccessorLifecycle(t *testing.T) {
	const days, split = 20, 14
	gen1, gen2 := splitLogs(t, days, split)

	for _, shape := range []struct {
		name string
		opt  Option
	}{{"sequential", WithSequential()}, {"sharded", WithShards(4)}} {
		t.Run(shape.name, func(t *testing.T) {
			parent := frozenEngine(t, gen1, WithStudyDays(days), shape.opt)
			live, err := Successor(parent)
			if err != nil {
				t.Fatal(err)
			}
			if live.Frozen() {
				t.Fatal("fresh successor reports frozen")
			}
			// The successor is gated like any ingesting engine.
			if _, err := live.Stability(Addresses, 5, 3); !errors.Is(err, ErrNotFrozen) {
				t.Fatalf("query on ingesting successor: %v, want ErrNotFrozen", err)
			}
			if _, err := live.SpatialSetFrom(nil, Addresses, 5); !errors.Is(err, ErrNotFrozen) {
				t.Fatalf("SpatialSetFrom on ingesting successor: %v, want ErrNotFrozen", err)
			}
			if err := live.AddDays(gen2); err != nil {
				t.Fatal(err)
			}
			if err := live.AddDay(DayLog{Day: days + 5}); !errors.Is(err, ErrDayRange) {
				t.Fatalf("out-of-period ingest: %v, want ErrDayRange", err)
			}
			if err := live.Freeze(); err != nil {
				t.Fatal(err)
			}
			if err := live.AddDays(gen2); !errors.Is(err, ErrFrozen) {
				t.Fatalf("ingest after Freeze: %v, want ErrFrozen", err)
			}

			// The frozen successor answers like an engine fed both
			// generations directly.
			ref := frozenEngine(t, append(append([]DayLog{}, gen1...), gen2...), WithStudyDays(days), shape.opt)
			for d := 0; d < days; d++ {
				if g, w := must(live.ActiveCount(Addresses, d)), must(ref.ActiveCount(Addresses, d)); g != w {
					t.Fatalf("ActiveCount(day %d) = %d, want %d", d, g, w)
				}
				if g, w := must(live.Summary(d)), must(ref.Summary(d)); g.Total != w.Total || g.MACs != w.MACs || g.Native != w.Native {
					t.Fatalf("Summary(%d) = %+v, want %+v", d, g, w)
				}
			}
			if g, w := must(live.Stability(Addresses, split, 3)), must(ref.Stability(Addresses, split, 3)); g != w {
				t.Fatalf("Stability = %+v, want %+v", g, w)
			}
			if g, w := must(live.NumKeys(Prefixes64)), must(ref.NumKeys(Prefixes64)); g != w {
				t.Fatalf("NumKeys = %d, want %d", g, w)
			}

			// The parent generation is untouched: same answers as a
			// gen1-only engine, and still below the successor's key count.
			refParent := frozenEngine(t, gen1, WithStudyDays(days), shape.opt)
			for d := 0; d < split; d++ {
				if g, w := must(parent.ActiveCount(Addresses, d)), must(refParent.ActiveCount(Addresses, d)); g != w {
					t.Fatalf("parent ActiveCount(day %d) = %d, want %d", d, g, w)
				}
			}
			if pk, lk := must(parent.NumKeys(Addresses)), must(live.NumKeys(Addresses)); pk >= lk {
				t.Fatalf("parent keys %d not below successor keys %d; the synthetic world should add addresses", pk, lk)
			}

			// Chain: a frozen successor spawns the next generation.
			if _, err := Successor(live); err != nil {
				t.Fatal(err)
			}

			// Snapshot round-trip of the merged generation.
			var buf bytes.Buffer
			if _, err := live.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := Read(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if err := back.Freeze(); err != nil {
				t.Fatal(err)
			}
			if g, w := must(back.NumKeys(Addresses)), must(live.NumKeys(Addresses)); g != w {
				t.Fatalf("round-tripped NumKeys = %d, want %d", g, w)
			}
			if g, w := must(back.Summary(3)), must(live.Summary(3)); g.MACs != w.MACs {
				t.Fatalf("round-tripped Summary(3).MACs = %d, want %d (parent-generation MAC sets must persist)", g.MACs, w.MACs)
			}
		})
	}
}

// TestSpatialSetFromEquivalence is the incremental spatial property at the
// façade level: extending the parent's set by the generation's delta must
// render the same trie, node for node, as the from-scratch build — for both
// populations, several day selections (old-only, new-only, spanning,
// out-of-period) and both engines.
func TestSpatialSetFromEquivalence(t *testing.T) {
	const days, split = 20, 14
	gen1, gen2 := splitLogs(t, days, split)

	selections := [][]int{
		{split - 1},                          // predecessor-only day: empty delta
		{split + 2},                          // successor-only day
		{split - 1, split + 2},               // spanning selection
		{2, 5, split, split + 1, split + 3},  // wide union
		{days + 7},                           // out-of-period: both sides empty
		{},                                   // empty selection
		{split + 2, split + 2, days + 7, -1}, // duplicates and junk days
	}

	for _, shape := range []struct {
		name string
		opt  Option
	}{{"sequential", WithSequential()}, {"sharded", WithShards(4)}} {
		t.Run(shape.name, func(t *testing.T) {
			parent := frozenEngine(t, gen1, WithStudyDays(days), shape.opt)
			live, err := Successor(parent)
			if err != nil {
				t.Fatal(err)
			}
			if err := live.AddDays(gen2); err != nil {
				t.Fatal(err)
			}
			if err := live.Freeze(); err != nil {
				t.Fatal(err)
			}

			for _, sel := range selections {
				for _, pop := range []Population{Addresses, Prefixes64} {
					base := must(parent.SpatialSet(pop, sel...))
					got := must(live.SpatialSetFrom(base, pop, sel...))
					want := must(live.SpatialSet(pop, sel...))
					if g, w := got.Trie().String(), want.Trie().String(); g != w {
						t.Fatalf("pop %v days %v: incremental set differs from full build\ngot:\n%s\nwant:\n%s", pop, sel, g, w)
					}
					if got.Len() != want.Len() || got.Total() != want.Total() {
						t.Fatalf("pop %v days %v: len/total %d/%d, want %d/%d", pop, sel, got.Len(), got.Total(), want.Len(), want.Total())
					}
					// base must never be modified.
					if g, w := base.Trie().String(), must(parent.SpatialSet(pop, sel...)).Trie().String(); g != w {
						t.Fatalf("pop %v days %v: SpatialSetFrom modified its base", pop, sel)
					}
				}
			}

			// nil base falls back to the full build.
			got := must(live.SpatialSetFrom(nil, Addresses, split+1))
			want := must(live.SpatialSet(Addresses, split+1))
			if got.Trie().String() != want.Trie().String() {
				t.Fatal("nil-base SpatialSetFrom differs from full build")
			}
		})
	}
}
