// V6probe: the closed measurement loop, piece by piece — Section 6.2's
// promise that spatial classification makes active IPv6 measurement
// feasible, taken literally. A census trains a per-nybble probability
// model over its dense regions, the model proposes addresses the census
// has never seen, a bounded scan probes them (with aliased prefixes
// detected and suppressed), and the hits are ingested into a successor
// generation so the next round's model knows what this round found.
package main

import (
	"context"
	"fmt"

	"v6class"
	"v6class/probe"
	"v6class/synth"
	"v6class/target"
)

func main() {
	// A census: one observed day of the synthetic world. Everything the
	// loop discovers beyond this day is genuinely new to the model.
	world := synth.NewWorld(synth.Config{Seed: 7, Scale: 0.05, StudyDays: 16})
	eng, err := v6class.New(v6class.WithStudyDays(16))
	check(err)
	check(eng.AddDays(world.Days(0, 1)))
	check(eng.Freeze())
	set, err := eng.SpatialSet(v6class.Addresses, 0)
	check(err)
	fmt.Printf("census: %d addresses\n\n", set.Len())

	// Train the generator on the 3@/116-dense regions and peek at the
	// ranking: candidates stream best-first by log2 model probability.
	gen, err := target.NewGenerator(set,
		target.WithSeed(7),
		target.WithDensity(v6class.DensityClass{N: 3, P: 116}),
		target.WithPer64(64))
	check(err)
	fmt.Printf("model: %d dense regions; top candidates:\n", len(gen.Regions()))
	n := 0
	for c := range gen.Candidates(256) {
		if n < 3 {
			fmt.Printf("  %s\n", c.Encode())
		}
		n++
	}
	fmt.Printf("  ... %d candidates in the round's budget\n\n", n)

	// Scan them through the world's probe topology. One of the model's
	// own dense /64s is injected as aliased — it answers for every
	// address under it — and the detector catches it with K pseudorandom
	// probes, dropping its phantom hits from the result.
	topo := probe.NewTopology(world, 8)
	topo.MarkAliased(v6class.MustParsePrefix("2600:2010:0:ee::/64"))
	det := target.NewAliasDetector(target.AliasConfig{K: 8, Trigger: 3, Cooldown: 8, Seed: 7})
	res, err := target.Scan(context.Background(), topo, gen.Candidates(256),
		target.ScanConfig{Workers: 4, Detector: det})
	check(err)
	fmt.Printf("scan: %d hits / %d candidates (rate %.4f)\n", len(res.Hits), res.Candidates, res.HitRate())
	fmt.Printf("aliased detected: %v\n\n", res.NewAliased)

	// The Loop automates the cycle — generate → scan → ingest → freeze —
	// with a uniform-random baseline over the same regions for contrast.
	// The parent engine above stays frozen and untouched; each round's
	// hits land in a new generation via v6class.Successor.
	loop, err := target.NewLoop(eng, topo, target.LoopConfig{
		Seed:     7,
		Budget:   256,
		Density:  v6class.DensityClass{N: 3, P: 116},
		Per64:    64,
		Days:     []int{0},
		ProbeDay: 8,
		Workers:  4,
		Alias:    target.AliasConfig{K: 8, Trigger: 3, Cooldown: 8},
		Baseline: true,
	})
	check(err)
	for r := 0; r < 3; r++ {
		day := 8 + r
		if r > 0 {
			check(loop.AdvanceProbeDay(day, probe.NewTopology(world, day)))
		}
		rep, err := loop.Round(context.Background())
		check(err)
		fmt.Printf("round %d day %d: hits=%d rate=%.4f (uniform baseline %.4f) census=%d\n",
			rep.Round, day, rep.Hits, rep.HitRate, rep.BaselineRate, rep.CensusAddrs)
	}
	fmt.Printf("\nloop engine is generation %d rounds in; parent still frozen at %d addresses\n",
		loop.Rounds(), set.Len())
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
