// Stability: run the paper's temporal classification over a month of
// synthetic CDN logs — the Table 2 / Figure 4 methodology end to end —
// and use the result to pick probe targets.
package main

import (
	"fmt"

	"v6class/internal/core"
	"v6class/internal/synth"
)

func main() {
	world := synth.NewWorld(synth.Config{Seed: 7, Scale: 0.05})
	census := core.NewCensus(core.CensusConfig{StudyDays: synth.StudyDays})

	// Ingest a three-week window around the final epoch.
	ref := synth.EpochMar2015
	fmt.Printf("ingesting days %d..%d of the synthetic study...\n", ref-7, ref+13)
	for d := ref - 7; d <= ref+13; d++ {
		census.AddDay(world.Day(d))
	}

	// Daily stability at the reference day, for several n.
	fmt.Printf("\nstability of the population active on day %d:\n", ref)
	for _, n := range []int{1, 2, 3, 5, 7} {
		st := census.Stability(core.Addresses, ref, n)
		fmt.Printf("  %dd-stable addresses: %6d / %d (%.2f%%)\n",
			n, st.Stable, st.Active, 100*float64(st.Stable)/float64(st.Active))
	}
	st64 := census.Stability(core.Prefixes64, ref, 3)
	fmt.Printf("  3d-stable /64s:      %6d / %d (%.2f%%)\n",
		st64.Stable, st64.Active, 100*float64(st64.Stable)/float64(st64.Active))

	// Weekly roll-up (the Table 2c/2d methodology).
	wk := census.WeeklyStability(core.Addresses, ref, 3)
	fmt.Printf("\nweekly: %d unique actives, %d 3d-stable (%.2f%%)\n",
		wk.Active, wk.Stable, 100*float64(wk.Stable)/float64(wk.Active))

	// The Figure 4 overlap curve: how quickly does today's population
	// evaporate?
	series := census.OverlapSeries(core.Addresses, ref, 7, 7)
	fmt.Printf("\noverlap with day %d (Figure 4):\n", ref)
	for i, v := range series {
		day := ref - 7 + i
		bar := ""
		for j := 0; j < 40*v/series[7]; j++ {
			bar += "#"
		}
		fmt.Printf("  day %3d %6d %s\n", day, v, bar)
	}

	// Stable addresses are the paper's probe-target recommendation.
	targets := census.StableAddrs(ref, 3)
	fmt.Printf("\n%d 3d-stable addresses selected as probe targets; first 5:\n", len(targets))
	for i := 0; i < len(targets) && i < 5; i++ {
		fmt.Printf("  %v\n", targets[i])
	}
}
