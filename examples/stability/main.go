// Stability: run the paper's temporal classification over a month of
// synthetic CDN logs — the Table 2 / Figure 4 methodology end to end —
// through the public v6class façade, and use the streaming iterators to
// pick probe targets without materializing the population.
package main

import (
	"fmt"
	"log"

	"v6class"
	"v6class/synth"
)

// must unwraps a query that cannot fail after Freeze.
func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func main() {
	world := synth.NewWorld(synth.Config{Seed: 7, Scale: 0.05})
	census, err := v6class.New(v6class.WithStudyDays(synth.StudyDays))
	if err != nil {
		log.Fatal(err)
	}

	// Ingest a three-week window around the final epoch, then freeze:
	// ingestion ends and every query below is valid.
	ref := synth.EpochMar2015
	fmt.Printf("ingesting days %d..%d of the synthetic study...\n", ref-7, ref+13)
	for d := ref - 7; d <= ref+13; d++ {
		if err := census.AddDay(world.Day(d)); err != nil {
			log.Fatal(err)
		}
	}
	census.Freeze()

	// Daily stability at the reference day, for several n.
	fmt.Printf("\nstability of the population active on day %d:\n", ref)
	for _, n := range []int{1, 2, 3, 5, 7} {
		st := must(census.Stability(v6class.Addresses, ref, n))
		fmt.Printf("  %dd-stable addresses: %6d / %d (%.2f%%)\n",
			n, st.Stable, st.Active, 100*float64(st.Stable)/float64(st.Active))
	}
	st64 := must(census.Stability(v6class.Prefixes64, ref, 3))
	fmt.Printf("  3d-stable /64s:      %6d / %d (%.2f%%)\n",
		st64.Stable, st64.Active, 100*float64(st64.Stable)/float64(st64.Active))

	// Weekly roll-up (the Table 2c/2d methodology).
	wk := must(census.WeeklyStability(v6class.Addresses, ref, 3))
	fmt.Printf("\nweekly: %d unique actives, %d 3d-stable (%.2f%%)\n",
		wk.Active, wk.Stable, 100*float64(wk.Stable)/float64(wk.Active))

	// The Figure 4 overlap curve: how quickly does today's population
	// evaporate? The series streams as (day, overlap) pairs.
	series := make(map[int]int)
	for day, n := range must(census.OverlapSeries(v6class.Addresses, ref, 7, 7)) {
		series[day] = n
	}
	fmt.Printf("\noverlap with day %d (Figure 4):\n", ref)
	for day := ref - 7; day <= ref+7; day++ {
		v := series[day]
		bar := ""
		for j := 0; j < 40*v/series[ref]; j++ {
			bar += "#"
		}
		fmt.Printf("  day %3d %6d %s\n", day, v, bar)
	}

	// Stable addresses are the paper's probe-target recommendation: take
	// the first five straight off the streaming iterator — the break stops
	// the underlying row sweep — with the total from the scalar split.
	st := must(census.Stability(v6class.Addresses, ref, 3))
	fmt.Printf("\n%d 3d-stable addresses selected as probe targets; first 5:\n", st.Stable)
	shown := 0
	for a := range must(census.StableAddrs(ref, 3)) {
		if shown++; shown > 5 {
			break
		}
		fmt.Printf("  %v\n", a)
	}
}
