// Asnreport: a per-network census — group a week of client addresses by
// origin ASN, then characterize each network's addressing practice with the
// format, temporal, and MRA-signature classifiers. This is the paper's
// Section 7.1 conclusion in action: estimating users from /64 counts
// requires knowing each network's addressing practice first.
package main

import (
	"fmt"
	"sort"

	"log"

	"v6class"
	"v6class/bgp"
	"v6class/synth"
)

func main() {
	world := synth.NewWorld(synth.Config{Seed: 7, Scale: 0.05})
	census, err := v6class.New(v6class.WithStudyDays(synth.StudyDays))
	if err != nil {
		log.Fatal(err)
	}
	ref := synth.EpochMar2015
	for d := ref - 7; d <= ref+7; d++ {
		if err := census.AddDay(world.Day(d)); err != nil {
			log.Fatal(err)
		}
	}
	census.Freeze()

	// Group the week's native addresses by ASN.
	type netStats struct {
		name   string
		addrs  []v6class.Addr
		p64s   map[v6class.Prefix]bool
		eui64  int
		stable int
	}
	byASN := map[bgp.ASN]*netStats{}
	// The stable set and each day's actives stream off the engine; only
	// the per-ASN grouping below materializes anything.
	stableAddrs, err := census.StableAddrs(ref, 3)
	if err != nil {
		log.Fatal(err)
	}
	stable := map[v6class.Addr]bool{}
	for a := range stableAddrs {
		stable[a] = true
	}
	for d := ref; d < ref+7; d++ {
		actives, err := census.AddrsActiveOn(d)
		if err != nil {
			log.Fatal(err)
		}
		for a := range actives {
			o, ok := world.Table.Lookup(a)
			if !ok {
				continue
			}
			ns := byASN[o.ASN]
			if ns == nil {
				ns = &netStats{name: o.Name, p64s: map[v6class.Prefix]bool{}}
				byASN[o.ASN] = ns
			}
			ns.addrs = append(ns.addrs, a)
			ns.p64s[v6class.PrefixFrom(a, 64)] = true
			if v6class.IsEUI64(a) {
				ns.eui64++
			}
			if stable[a] {
				ns.stable++
			}
		}
	}

	// Rank by address count and report the top networks.
	type row struct {
		asn bgp.ASN
		ns  *netStats
	}
	rows := make([]row, 0, len(byASN))
	for asn, ns := range byASN {
		rows = append(rows, row{asn, ns})
	}
	sort.Slice(rows, func(i, j int) bool { return len(rows[i].ns.addrs) > len(rows[j].ns.addrs) })

	fmt.Printf("%-6s %-16s %8s %8s %7s %7s %6s  %s\n",
		"ASN", "operator", "addrs", "/64s", "a//64", "eui64", "stable", "MRA signature")
	for i, r := range rows {
		if i >= 12 {
			break
		}
		ns := r.ns
		var set v6class.AddressSet
		seen := map[v6class.Addr]bool{}
		for _, a := range ns.addrs {
			if !seen[a] {
				seen[a] = true
				set.Add(a)
			}
		}
		sig := v6class.ClassifySignature(set.MRA())
		uniq := set.Len()
		fmt.Printf("%-6d %-16s %8d %8d %7.2f %6.1f%% %5.1f%%  %v\n",
			r.asn, ns.name, uniq, len(ns.p64s),
			float64(uniq)/float64(len(ns.p64s)),
			100*float64(ns.eui64)/float64(len(ns.addrs)),
			100*float64(ns.stable)/float64(len(ns.addrs)),
			sig)
	}

	// The Section 7.1 point: /64 counts misestimate subscribers in both
	// directions depending on practice.
	fmt.Println("\nsubscriber estimation caveats (Sec 7.1):")
	for _, name := range []string{"us-mobile-1", "jp-isp", "eu-univ-dept"} {
		op, i := world.OperatorByName(name)
		if op == nil {
			continue
		}
		active := op.ProvisionedSubscribers(world.Env(i), ref)
		var p64s map[v6class.Prefix]bool
		for asn, ns := range byASN {
			if asn == op.ASN {
				p64s = ns.p64s
			}
		}
		fmt.Printf("  %-14s provisioned subscribers %6d, weekly active /64s %6d\n",
			name, active, len(p64s))
	}
}
