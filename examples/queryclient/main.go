// Queryclient walks through the v6served HTTP API end to end: it builds a
// small census through the public v6class façade, persists it with
// Engine.Save, serves it with package serve in-process, and then asks
// every kind of question a network operator would — who is this address,
// is it stable, where are the dense blocks, which aggregates dominate —
// finishing with a live snapshot swap under load.
//
// The same walkthrough against a standalone server, with curl:
//
//	# build a snapshot and start the service
//	v6gen -days 15 -scale 0.01 -out logs.txt
//	v6census ingest -in logs.txt -state census.state
//	v6served -state census.state -listen :8470 &
//
//	# what is loaded?
//	curl -s localhost:8470/healthz
//	curl -s localhost:8470/v1/meta
//
//	# one day's Table-1 format tally
//	curl -s 'localhost:8470/v1/summary?day=7'
//
//	# the nd-stable split on the middle day (Table 2 cell, any window)
//	curl -s 'localhost:8470/v1/stability?pop=addrs&ref=7&n=3&window=7'
//	curl -s 'localhost:8470/v1/stability?pop=64s&ref=7&n=3&weekly=true'
//
//	# everything known about one address and its /64
//	curl -s 'localhost:8470/v1/lookup?addr=2001:db8::1&ref=7'
//	curl -s 'localhost:8470/v1/lookup?p64=2001:db8::/64'
//
//	# spatial structure: dense blocks and the busiest /48 aggregates
//	curl -s 'localhost:8470/v1/dense?from=0&to=14&n=2&p=112&least=true'
//	curl -s 'localhost:8470/v1/topk?pop=addrs&p=48&k=5&day=7'
//
//	# extend the snapshot with tomorrow's log, then swap it in without
//	# dropping a single query
//	v6census ingest -in tomorrow.txt -state census.state
//	curl -s -X POST 'localhost:8470/v1/reload?snap=census'
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"v6class"
	"v6class/serve"
	"v6class/synth"
)

func main() {
	log.SetFlags(0)

	// Build a 15-day census through the façade and persist it, as a daily
	// pipeline would with "v6census ingest -state".
	w := synth.NewWorld(synth.Config{Seed: 11, Scale: 0.01, StudyDays: 15})
	c, err := v6class.New(v6class.WithStudyDays(15))
	if err != nil {
		log.Fatal(err)
	}
	for d := 0; d < 15; d++ {
		if err := c.AddDay(w.Day(d)); err != nil {
			log.Fatal(err)
		}
	}
	dir, err := os.MkdirTemp("", "queryclient")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	state := filepath.Join(dir, "census.state")
	if err := c.Save(state); err != nil {
		log.Fatal(err)
	}
	c.Freeze() // done ingesting; the lookup below queries the engine directly

	// Serve it, as "v6served -state census.state" would.
	s := serve.New(serve.Options{})
	if _, err := s.LoadFile("census", state); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	get := func(path string) {
		resp, err := http.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("GET %s\n  %s\n", path, body)
	}

	fmt.Println("--- service state ---")
	get("/healthz")
	get("/v1/meta")

	fmt.Println("\n--- temporal classification ---")
	get("/v1/summary?day=7")
	get("/v1/stability?pop=addrs&ref=7&n=3&window=7")
	get("/v1/stability?pop=64s&ref=7&n=3&window=7")

	fmt.Println("\n--- per-prefix lookup ---")
	// Pull one probe-worthy address off the streaming enumeration; the
	// break below stops the row sweep after the first hit.
	if addrs, err := c.AddrsActiveOn(7); err == nil {
		for a := range addrs {
			get("/v1/lookup?addr=" + a.String() + "&ref=7")
			break
		}
	}

	fmt.Println("\n--- spatial classification ---")
	get("/v1/dense?from=0&to=14&n=2&p=112&least=true")
	get("/v1/topk?pop=addrs&p=48&k=5&day=7")

	// Reload: swap the same snapshot back in (a daily pipeline would have
	// extended it first); in-flight queries keep their generation.
	fmt.Println("\n--- snapshot reload ---")
	resp, err := http.Post(base+"/v1/reload?snap=census", "", nil)
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("POST /v1/reload?snap=census\n  %s\n", body)
	get("/v1/meta") // note the bumped epoch
}
