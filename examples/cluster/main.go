// Cluster walks through the scatter-gather tier end to end: it partitions
// a synthetic census across three shard servers, dials each one with
// remote.Dial, composes the dialed engines into one remote.Coordinator,
// and serves the merged census through the identical HTTP API — then asks
// the cluster the same questions a single box would answer, including a
// cursor-paged walk of the globally ordered key stream.
//
// The same topology with standalone processes, with curl:
//
//	# three shard servers, each holding one partition of the census
//	# (a real deployment builds each partition with remote.SplitLogs or
//	# by routing its collector feed by /64 hash)
//	v6served -state shard0.state -listen :8471 &
//	v6served -state shard1.state -listen :8472 &
//	v6served -state shard2.state -listen :8473 &
//
//	# one coordinator over all three, serving the merged census
//	v6served -backend http://localhost:8471 \
//	         -backend http://localhost:8472 \
//	         -backend http://localhost:8473 \
//	         -listen :8470 &
//
//	# the cluster answers exactly like a single server
//	curl -s localhost:8470/v1/meta                 # note "shards": 3
//	curl -s 'localhost:8470/v1/summary?day=7'
//	curl -s 'localhost:8470/v1/stability?pop=addrs&ref=7&n=3'
//	curl -s 'localhost:8470/v1/lookup?addr=2001:db8::1&ref=7'
//	curl -s 'localhost:8470/v1/topk?pop=addrs&p=48&k=5&day=7'
//
//	# page through every key in global address order; each response
//	# carries a cursor token for the next page (absent on the last page)
//	curl -s 'localhost:8470/v1/keys?pop=addrs&limit=500'
//	curl -s "localhost:8470/v1/keys?pop=addrs&limit=500&cursor=$CURSOR"
//
//	# a reload on any tier invalidates in-flight cursors fail-closed:
//	# the next page answers HTTP 410 {"error":{"code":"cursor_expired",...}}
//	# and the client restarts the walk (package remote does so itself)
//
//	# resilience: kill a shard and the strict coordinator answers HTTP 503
//	# {"error":{"code":"unavailable",...}} naming the dead partition; a
//	# coordinator started with -partial-results keeps answering from the
//	# live majority instead, annotating results with their coverage
//	kill %2
//	curl -s localhost:8470/v1/summary?day=7   # 503, names the dead backend
//
// The walkthrough below ends by doing exactly that in-process: it kills
// shard 1 and shows the strict failure next to the degraded answer.
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"

	"v6class"
	"v6class/remote"
	"v6class/serve"
	"v6class/synth"
)

const (
	studyDays = 15
	backends  = 3
)

// serveEngine installs eng in a fresh serve instance on a loopback
// listener and returns its base URL, as "v6served -state" would, plus a
// stop function that kills the server — the walkthrough uses it to take a
// shard down mid-demo.
func serveEngine(name string, eng v6class.Engine) (string, func()) {
	s := serve.New(serve.Options{})
	s.Install(name, "", eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }
}

func main() {
	log.SetFlags(0)

	// One synthetic world, split into three partitions by /64 hash — the
	// same partition function the coordinator uses to route point queries,
	// so an address and its covering /64 always land on the same shard.
	w := synth.NewWorld(synth.Config{Seed: 11, Scale: 0.01, StudyDays: studyDays})
	logs := w.Days(0, studyDays-1)
	parts := remote.SplitLogs(logs, backends, remote.PartitionByNetworkID(backends))

	// Build and serve each partition as its own census.
	urls := make([]string, backends)
	stops := make([]func(), backends)
	for i, part := range parts {
		eng, err := v6class.New(v6class.WithStudyDays(studyDays))
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.AddDays(part); err != nil {
			log.Fatal(err)
		}
		if err := eng.Freeze(); err != nil {
			log.Fatal(err)
		}
		urls[i], stops[i] = serveEngine("census", eng)
		fmt.Printf("shard %d: %s (%d keys)\n", i, urls[i], mustKeys(eng))
	}

	// Dial each shard and compose the cluster, as "v6served -backend ×3"
	// would. A nil partition defaults to PartitionByNetworkID.
	engines := make([]v6class.Engine, backends)
	for i, u := range urls {
		e, err := remote.Dial(u, remote.WithSnapshot("census"))
		if err != nil {
			log.Fatal(err)
		}
		engines[i] = e
	}
	coord, err := remote.NewCoordinator(engines, nil)
	if err != nil {
		log.Fatal(err)
	}

	// The coordinator is itself a v6class.Engine: query it directly...
	st, err := coord.Stability(v6class.Addresses, 7, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncluster stability(ref=7, n=3): active=%d stable=%d not-stable=%d\n",
		st.Active, st.Stable, st.NotStable)

	// ...or serve it, so clients cannot tell the cluster from a single box.
	base, _ := serveEngine("cluster", coord)
	get := func(path string) {
		resp, err := http.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("GET %s\n  %s\n", path, trim(body))
	}

	fmt.Println("\n--- the cluster over HTTP ---")
	get("/v1/meta") // shards counts the backends
	get("/v1/summary?day=7")
	get("/v1/stability?pop=addrs&ref=7&n=3&window=7")
	get("/v1/topk?pop=addrs&p=48&k=3&day=7")

	// The ordered enumeration merges the three shards into one globally
	// sorted stream; page through it exactly as a remote client does.
	fmt.Println("\n--- cursor-paged ordered keys ---")
	get("/v1/keys?pop=64s&limit=5")

	// Or let package remote do the paging: dial the cluster itself.
	top, err := remote.Dial(base, remote.WithSnapshot("cluster"), remote.WithPageSize(512))
	if err != nil {
		log.Fatal(err)
	}
	keys, err := top.KeysOrdered(v6class.Prefixes64)
	if err != nil {
		log.Fatal(err)
	}
	n, first, last := 0, "", ""
	for p := range keys {
		if n == 0 {
			first = p.String()
		}
		last = p.String()
		n++
	}
	fmt.Printf("\nremote.Dial(cluster): %d /64 keys in order, %s .. %s\n", n, first, last)

	// --- resilience: losing a shard ---
	//
	// A second coordinator over the same backends, opted into degraded
	// answers. (The default is strict: every partition or nothing.)
	partial, err := remote.NewCoordinator(engines, nil, remote.WithPartialResults())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- killing shard 1 ---")
	stops[1]()

	// The strict cluster fails fast, and the error names exactly the dead
	// partition — index and URL — behind the ErrUnavailable sentinel.
	if _, err := coord.NumKeys(v6class.Addresses); errors.Is(err, v6class.ErrUnavailable) {
		fmt.Printf("strict cluster:   %v\n", err)
	}

	// The partial cluster answers from the two live shards and annotates
	// the result with exactly what is missing.
	nKeys, err := partial.NumKeys(v6class.Addresses)
	var de *remote.DegradedError
	if errors.As(err, &de) {
		fmt.Printf("degraded cluster: %d keys, coverage %s\n", nKeys, de.Coverage)
	} else if err != nil {
		log.Fatal(err)
	}
}

func mustKeys(eng v6class.Engine) int {
	n, err := eng.NumKeys(v6class.Addresses)
	if err != nil {
		log.Fatal(err)
	}
	return n
}

func trim(b []byte) []byte {
	const max = 200
	if len(b) > max {
		return append(b[:max:max], "..."...)
	}
	return b
}
