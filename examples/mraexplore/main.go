// Mraexplore: contrast the MRA plots of operators with different
// addressing practices — the Figure 2 / Figure 5 exploration — and apply
// aguri aggregation to read an operator's address plan off its traffic.
package main

import (
	"fmt"
	"v6class"

	"v6class/mraplot"
	"v6class/synth"
)

func main() {
	world := synth.NewWorld(synth.Config{Seed: 7, Scale: 0.05})

	// One week of activity, split by operator.
	sets := map[string]*v6class.AddressSet{}
	for _, name := range []string{"us-mobile-1", "eu-isp", "jp-isp", "eu-univ-dept"} {
		sets[name] = &v6class.AddressSet{}
	}
	for d := synth.EpochMar2015; d < synth.EpochMar2015+7; d++ {
		for _, rec := range world.Day(d).Records {
			o, ok := world.Table.Lookup(rec.Addr)
			if !ok {
				continue
			}
			if set := sets[o.Name]; set != nil {
				set.Add(rec.Addr)
			}
		}
	}

	for _, name := range []string{"us-mobile-1", "eu-isp", "jp-isp", "eu-univ-dept"} {
		set := sets[name]
		m := set.MRA()
		fmt.Print(mraplot.New(fmt.Sprintf("%s (%d addrs)", name, set.Len()), m).ASCII())
		// Read off the signature numbers the paper discusses.
		fmt.Printf("  γ16 at 48 (subnetting density): %.1f\n", m.Ratio(48, 16))
		fmt.Printf("  γ1 at 70 (privacy u bit):       %.2f\n", m.Ratio(70, 1))
		fmt.Printf("  γ16 at 112 (low-bit packing):   %.1f\n\n", m.Ratio(112, 16))
	}

	// Aguri aggregation reveals where the traffic concentrates in the
	// mobile carrier's pools.
	mob := sets["us-mobile-1"]
	fmt.Println("aguri profile of us-mobile-1 (>= 5% of addresses per prefix):")
	min := uint64(float64(mob.Total()) * 0.05)
	for _, pc := range mob.Trie().AguriAggregate(min) {
		fmt.Printf("  %-30v %6d\n", pc.Prefix, pc.Count)
	}
}
