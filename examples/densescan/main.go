// Densescan: discover dense prefixes in a router-address dataset and turn
// them into feasible scan targets — the Table 3 / Section 6.2 application.
// A /112 covers 65,536 addresses, the same as an IPv4 /16, so dense /112s
// are practical targets where scanning a /64 is not.
package main

import (
	"fmt"
	"v6class"

	"v6class/dnssim"
	"v6class/probe"
	"v6class/synth"
)

func main() {
	world := synth.NewWorld(synth.Config{Seed: 7, Scale: 0.05})
	topo := probe.NewTopology(world, synth.EpochMar2015)

	// Collect router addresses by TTL-limited probing (Section 4.2).
	day := world.Day(synth.EpochMar2015)
	routers := topo.RouterDataset(day.Addrs())
	fmt.Printf("router dataset: %d interface addresses\n\n", len(routers))

	var set v6class.AddressSet
	for _, a := range routers {
		set.Add(a)
	}

	// Sweep the paper's density classes.
	fmt.Println("class        prefixes  covered  possible    density")
	for _, cls := range []v6class.DensityClass{
		{N: 2, P: 124}, {N: 3, P: 120}, {N: 2, P: 116}, {N: 2, P: 112},
	} {
		r := set.DenseFixed(cls)
		fmt.Printf("%-12v %8d  %7d  %10.0f  %.8f\n",
			cls, len(r.Prefixes), r.CoveredAddresses, r.PossibleAddresses, r.Density())
	}

	// Expand one class into concrete scan targets.
	res := set.DenseFixed(v6class.DensityClass{N: 3, P: 120})
	total, examples := v6class.ScanTargets(res, 5)
	fmt.Printf("\n3@/120-dense: %.0f probe-able addresses across %d prefixes; examples:\n",
		total, len(res.Prefixes))
	for _, p := range examples {
		fmt.Printf("  %v\n", p)
	}

	// And run the Section 6.2.3 PTR harvest over them.
	zone := dnssim.NewZone(topo)
	var prefixes = res.Prefixes
	names := 0
	queries := uint64(0)
	for _, pc := range prefixes {
		got, err := zone.HarvestPrefix(pc.Prefix, 16)
		if err != nil {
			panic(err)
		}
		names += len(got)
		queries += pc.Prefix.NumAddresses()
	}
	fmt.Printf("\nPTR harvest: %d queries over dense prefixes yielded %d names\n", queries, names)
	baseline := zone.HarvestAddrs(routers)
	fmt.Printf("(querying only the known router addresses yields %d)\n", len(baseline))
}
