// Quickstart: classify a handful of IPv6 addresses by format, run a
// temporal stability analysis over a two-week toy log, and compute an MRA
// plot — the three classifiers of Plonka & Berger (IMC 2015) in one page.
package main

import (
	"fmt"

	"v6class/internal/addrclass"
	"v6class/internal/cdnlog"
	"v6class/internal/core"
	"v6class/internal/ipaddr"
	"v6class/internal/mraplot"
)

func main() {
	// --- Format classification (paper Figure 1 examples) ---
	fmt.Println("Format classification:")
	for _, s := range []string{
		"2001:db8:10:1::103",                     // fixed IID
		"2001:db8:167:1109::10:901",              // structured IID
		"2001:db8:0:1cdf:21e:c2ff:fec0:11db",     // SLAAC EUI-64
		"2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a", // privacy address
		"2002:c000:204::1",                       // 6to4
	} {
		a := ipaddr.MustParseAddr(s)
		kind := addrclass.Classify(a)
		fmt.Printf("  %-42s %v\n", a, kind)
		if mac, ok := addrclass.EUI64MAC(a); ok {
			fmt.Printf("  %-42s embedded MAC %v\n", "", mac)
		}
	}

	// --- Temporal classification ---
	// A 15-day toy study: one stable host and one privacy host in the
	// same /64.
	census := core.NewCensus(core.CensusConfig{StudyDays: 15})
	stable := ipaddr.MustParseAddr("2001:db8:42:1::103")
	network := ipaddr.MustParseAddr("2001:db8:42:1::")
	for day := 0; day < 15; day++ {
		log := cdnlog.DayLog{Day: day}
		if day%3 == 0 { // the stable host visits every third day
			log.Records = append(log.Records, cdnlog.Record{Addr: stable, Hits: 3})
		}
		// The privacy host regenerates its address daily.
		privacy := network.WithIID(0x1a2b<<48 | uint64(day)*0x9e3779b97f4a7c15>>16)
		log.Records = append(log.Records, cdnlog.Record{Addr: privacy, Hits: 5})
		census.AddDay(log)
	}
	st := census.Stability(core.Addresses, 6, 3)
	fmt.Printf("\nTemporal classification at day 6 (3d-stable, -7d,+7d):\n")
	fmt.Printf("  active %d: stable %d, not stable %d\n", st.Active, st.Stable, st.NotStable)
	st64 := census.Stability(core.Prefixes64, 6, 3)
	fmt.Printf("  /64s: active %d, stable %d (the /64 outlives its addresses)\n",
		st64.Active, st64.Stable)

	// --- Spatial classification ---
	set := census.NativeSet(0, 3, 6, 9, 12)
	fmt.Printf("\nMRA plot of all observed addresses (%d):\n", set.Len())
	fmt.Print(mraplot.New("quickstart population", set.MRA()).ASCII())
}
