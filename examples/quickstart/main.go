// Quickstart: the public v6class API in one page — format-classify a
// handful of IPv6 addresses, run a temporal stability analysis over a
// two-week toy log, and stream the spatial aggregates, all through the
// module-root façade (no internal imports).
package main

import (
	"fmt"
	"log"

	"v6class"
)

func main() {
	// --- Format classification (paper Figure 1 examples) ---
	// Classify is a pure function of the address bits; no engine needed.
	fmt.Println("Format classification:")
	for _, s := range []string{
		"2001:db8:10:1::103",                     // fixed IID
		"2001:db8:167:1109::10:901",              // structured IID
		"2001:db8:0:1cdf:21e:c2ff:fec0:11db",     // SLAAC EUI-64
		"2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a", // privacy address
		"2002:c000:204::1",                       // 6to4
	} {
		a := v6class.MustParseAddr(s)
		fmt.Printf("  %-42s %v\n", a, v6class.Classify(a))
		if mac, ok := v6class.EUI64MAC(a); ok {
			fmt.Printf("  %-42s embedded MAC %v\n", "", mac)
		}
	}

	// --- Temporal classification ---
	// A 15-day toy study: one stable host and one privacy host in the
	// same /64. The engine lifecycle is ingest -> Freeze -> query.
	census, err := v6class.New(v6class.WithStudyDays(15), v6class.WithSequential())
	if err != nil {
		log.Fatal(err)
	}
	stable := v6class.MustParseAddr("2001:db8:42:1::103")
	network := v6class.MustParseAddr("2001:db8:42:1::")
	for day := 0; day < 15; day++ {
		logDay := v6class.DayLog{Day: day}
		if day%3 == 0 { // the stable host visits every third day
			logDay.Records = append(logDay.Records, v6class.Record{Addr: stable, Hits: 3})
		}
		// The privacy host regenerates its address daily.
		privacy := network.WithIID(0x1a2b<<48 | uint64(day)*0x9e3779b97f4a7c15>>16)
		logDay.Records = append(logDay.Records, v6class.Record{Addr: privacy, Hits: 5})
		if err := census.AddDay(logDay); err != nil {
			log.Fatal(err)
		}
	}
	census.Freeze()

	st, err := census.Stability(v6class.Addresses, 6, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTemporal classification at day 6 (3d-stable, -7d,+7d):\n")
	fmt.Printf("  active %d: stable %d, not stable %d\n", st.Active, st.Stable, st.NotStable)
	st64, err := census.Stability(v6class.Prefixes64, 6, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  /64s: active %d, stable %d (the /64 outlives its addresses)\n",
		st64.Active, st64.Stable)

	// --- Streaming queries ---
	// The bulk enumerations are iterators over the engine's dense rows:
	// nothing is allocated per element, and breaking out stops the sweep.
	addrs, err := census.AddrsActiveOn(0, 3, 6, 9, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDistinct addresses active on the stable host's days:")
	n := 0
	for a := range addrs {
		if n++; n > 3 {
			fmt.Println("  ... (break: the sweep stops here)")
			break
		}
		fmt.Printf("  %v\n", a)
	}

	// Top /48 aggregates of the whole study, streamed largest-first.
	top, err := census.TopAggregates(v6class.Addresses, 48, 3, 0, 3, 6, 9, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBusiest /48 aggregates:")
	for agg := range top {
		fmt.Printf("  %-40v %d addresses\n", agg.Prefix, agg.Count)
	}
}
