package v6class

import (
	"sync"
	"testing"

	"v6class/internal/core"
)

// Analysis-sweep benchmarks: the temporal bulk queries that dominate the
// serving path on cache misses — stability classification, overlap series,
// and epoch/range sweeps — over the same million-address world as
// BenchmarkIngest, on both engines. Run with -benchmem: the storage layout
// of internal/temporal is the variable these exist to track, and allocs/op
// is as much the signal as ns/op.

var (
	stabilityOnce sync.Once
	stabilitySeq  *core.Census
	stabilitySh   *core.ShardedCensus
)

// stabilityWorld ingests the shared benchmark world into both engines once
// per process, returning them ready for read-only analyses.
func stabilityWorld() (*core.Census, *core.ShardedCensus) {
	stabilityOnce.Do(func() {
		logs, _ := ingestWorld()
		cfg := core.CensusConfig{StudyDays: ingestStudyDays}
		stabilitySeq = core.NewCensus(cfg)
		for _, l := range logs {
			stabilitySeq.AddDay(l)
		}
		stabilitySh = core.NewShardedCensus(cfg)
		stabilitySh.AddDays(logs)
		stabilitySh.Freeze()
	})
	return stabilitySeq, stabilitySh
}

// stabilityEngines returns the two engines behind their shared analysis
// interface, in deterministic bench order.
func stabilityEngines() []struct {
	name string
	a    core.Analyzer
} {
	seq, sh := stabilityWorld()
	return []struct {
		name string
		a    core.Analyzer
	}{
		{"sequential", seq},
		{"sharded", sh},
	}
}

// BenchmarkStability measures the daily and weekly nd-stable
// classifications (Table 2) plus the window-sweep spectrum over both
// populations — the per-key scans at the heart of Section 5.1.
func BenchmarkStability(b *testing.B) {
	for _, e := range stabilityEngines() {
		b.Run(e.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				day := e.a.Stability(core.Addresses, 12, 3)
				if day.Active == 0 {
					b.Fatal("bad result")
				}
				if p := e.a.Stability(core.Prefixes64, 12, 3); p.Active == 0 {
					b.Fatal("bad result")
				}
				if wk := e.a.WeeklyStability(core.Addresses, 10, 3); wk.Active == 0 {
					b.Fatal("bad result")
				}
			}
		})
	}
}

// BenchmarkOverlap measures the Figure 4 overlap curve and the epoch/range
// activity sweeps, the other word-level bulk scans of the serving path.
func BenchmarkOverlap(b *testing.B) {
	for _, e := range stabilityEngines() {
		b.Run(e.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if s := e.a.OverlapSeries(core.Addresses, 12, 7, 7); len(s) != 15 {
					b.Fatal("bad result")
				}
				if n := e.a.EpochStable(core.Addresses, 10, 11, 12, 13); n == 0 {
					b.Fatal("bad result")
				}
				if n := e.a.ActiveInRange(core.Prefixes64, 10, 13); n == 0 {
					b.Fatal("bad result")
				}
			}
		})
	}
}
