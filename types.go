package v6class

import (
	"io"

	"v6class/internal/addrclass"
	"v6class/internal/cdnlog"
	"v6class/internal/core"
	"v6class/internal/ipaddr"
	"v6class/internal/temporal"
)

// The façade vocabulary: aliases re-exporting the value types an Engine
// consumer needs, so no main package has to import internal packages to
// hold a result. Aliases (not definitions) keep the internal layers and the
// façade interchangeable within the module — package serve can hand a
// KeyReport straight through to JSON, and the equivalence tests can compare
// façade and core results without conversions.

// Addr is a 128-bit IPv6 address.
type Addr = ipaddr.Addr

// Prefix is an IPv6 prefix: an address plus a length in bits. The façade's
// key enumerations yield every key as a Prefix — full addresses as /128s,
// subnet keys as /64s — so one iterator type covers both populations.
type Prefix = ipaddr.Prefix

// Kind is an address-format class per Table 1 of the paper (EUI-64,
// privacy, Teredo, 6to4, ...).
type Kind = addrclass.Kind

// The format classes of Table 1.
const (
	KindOther         = addrclass.KindOther
	KindTeredo        = addrclass.KindTeredo
	Kind6to4          = addrclass.Kind6to4
	KindISATAP        = addrclass.KindISATAP
	KindEUI64         = addrclass.KindEUI64
	KindLowIID        = addrclass.KindLowIID
	KindStructuredIID = addrclass.KindStructuredIID
	KindEmbeddedIPv4  = addrclass.KindEmbeddedIPv4
)

// KindSummary tallies a population of addresses by format class.
type KindSummary = addrclass.Summary

// MAC is a 48-bit hardware address as embedded in EUI-64 IIDs.
type MAC = addrclass.MAC

// Record is one aggregated daily log line: an active client address and
// its hit count.
type Record = cdnlog.Record

// DayLog is the aggregated log of one study day.
type DayLog = cdnlog.DayLog

// Population selects which key population a temporal query classifies.
type Population = core.Population

const (
	// Addresses classifies full /128 client addresses.
	Addresses = core.Addresses
	// Prefixes64 classifies the /64 prefixes extracted from them.
	Prefixes64 = core.Prefixes64
)

// Day is a day index within the study period, as it appears inside result
// structs (DailyStability.Ref, Activity.First/Last). The Engine API itself
// takes plain ints; the alias exists so wire clients can reconstruct those
// structs from JSON without importing internal packages.
type Day = temporal.Day

// StabilityOptions configures nd-stable classification; the zero value uses
// the paper's (-7d,+7d) window.
type StabilityOptions = temporal.Options

// StabilityWindow is the sliding observation window of StabilityOptions,
// expressed as day offsets around the reference day.
type StabilityWindow = temporal.Window

// DailyStability is the nd-stable split of the population active on a
// reference day (one Table 2a/2b cell).
type DailyStability = temporal.DailyStability

// WeeklyStability is the weekly nd-stable split (one Table 2c/2d cell).
type WeeklyStability = temporal.WeeklyStability

// Activity is the temporal activity profile of one key: extent, active
// days, and contiguous runs.
type Activity = temporal.Activity

// LifetimeStats summarizes observed key lifetimes over a day range.
type LifetimeStats = temporal.LifetimeStats

// DaySummary is the Table 1 format tally of one ingested day.
type DaySummary = core.DaySummary

// KeyReport is everything the census knows about one key's activity.
type KeyReport = core.KeyReport

// AddrLookup is the full point-lookup result for one address.
type AddrLookup = core.AddrLookup

// TopAggregate is one occupied /p aggregate with its population.
type TopAggregate = core.TopAggregate

// LongestStablePrefix is one discovered stable network-identifier prefix
// (the Section 7.2 future-work proposal).
type LongestStablePrefix = core.LongestStablePrefix

// Analyzer is the engine-independent analysis interface of the underlying
// implementation. It appears in the façade only as the parameter of
// FromAnalyzer, the bridge for in-process callers (the experiments lab,
// tests) that have already built a census; external consumers never need to
// name it.
type Analyzer = core.Analyzer

// ParseAddr parses an IPv6 address in standard text form.
func ParseAddr(s string) (Addr, error) { return ipaddr.ParseAddr(s) }

// MustParseAddr is ParseAddr, panicking on invalid input.
func MustParseAddr(s string) Addr { return ipaddr.MustParseAddr(s) }

// ParsePrefix parses an IPv6 prefix in CIDR form.
func ParsePrefix(s string) (Prefix, error) { return ipaddr.ParsePrefix(s) }

// MustParsePrefix is ParsePrefix, panicking on invalid input.
func MustParsePrefix(s string) Prefix { return ipaddr.MustParsePrefix(s) }

// PrefixFrom returns the prefix of the first bits bits of a.
func PrefixFrom(a Addr, bits int) Prefix { return ipaddr.PrefixFrom(a, bits) }

// AddrFrom16 constructs an address from its 16-byte network-order form —
// the constructor for callers (the target generator) that assemble
// addresses nybble by nybble rather than parsing text.
func AddrFrom16(b [16]byte) Addr { return ipaddr.AddrFrom16(b) }

// Classify format-classifies an address per Table 1. It is a pure function
// of the address bits and needs no Engine.
func Classify(a Addr) Kind { return addrclass.Classify(a) }

// ParseKind inverts Kind.String: it returns the Kind with that name, or
// false for an unrecognized name. Wire clients (the remote engine) use it
// to reconstruct typed kinds from the serve API's JSON summaries.
func ParseKind(s string) (Kind, bool) { return addrclass.ParseKind(s) }

// Summarize format-classifies a whole population into a KindSummary.
func Summarize(addrs []Addr) KindSummary { return addrclass.Summarize(addrs) }

// IsEUI64 reports whether a has an EUI-64 expanded hardware-address IID.
func IsEUI64(a Addr) bool { return addrclass.IsEUI64(a) }

// EUI64MAC extracts the embedded hardware address of an EUI-64 IID; ok is
// false for addresses of any other format.
func EUI64MAC(a Addr) (MAC, bool) { return addrclass.EUI64MAC(a) }

// Embedded6to4IPv4 extracts the IPv4 address embedded in a 6to4 address;
// ok is false for any other format.
func Embedded6to4IPv4(a Addr) (uint32, bool) { return addrclass.Embedded6to4IPv4(a) }

// ReadLogs parses aggregated daily logs ("#day N" sections) from a file;
// "-" reads standard input and files ending in ".gz" are decompressed
// transparently.
func ReadLogs(path string) ([]DayLog, error) { return cdnlog.ReadFile(path) }

// WriteLogs writes aggregated daily logs in the text format ReadLogs
// parses; "-" writes standard output and files ending in ".gz" are
// compressed transparently.
func WriteLogs(path string, logs []DayLog) error { return cdnlog.WriteFile(path, logs) }

// FormatLogs writes aggregated daily logs in the "#day N" text format to
// any writer — the in-memory counterpart of WriteLogs and the inverse of
// ParseLogs. The remote engine serializes ingestion batches with it before
// POSTing them to a server's /v1/ingest.
func FormatLogs(w io.Writer, logs []DayLog) error {
	for _, l := range logs {
		if err := cdnlog.WriteDay(w, l); err != nil {
			return err
		}
	}
	return nil
}

// UniqueAddrs returns the distinct addresses over all days of logs, in
// first-appearance order.
func UniqueAddrs(logs []DayLog) []Addr { return cdnlog.UniqueAddrs(logs) }
