package uint128

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// toBig converts u to a math/big.Int for cross-checking against a reference
// implementation.
func toBig(u Uint128) *big.Int {
	b := new(big.Int).SetUint64(u.Hi)
	b.Lsh(b, 64)
	return b.Or(b, new(big.Int).SetUint64(u.Lo))
}

func fromBig(b *big.Int) Uint128 {
	mask := new(big.Int).SetUint64(^uint64(0))
	lo := new(big.Int).And(b, mask).Uint64()
	hi := new(big.Int).Rsh(b, 64)
	hi.And(hi, mask)
	return Uint128{Hi: hi.Uint64(), Lo: lo}
}

var mod128 = new(big.Int).Lsh(big.NewInt(1), 128)

func TestConstants(t *testing.T) {
	if !Zero.IsZero() {
		t.Error("Zero is not zero")
	}
	if One.Hi != 0 || One.Lo != 1 {
		t.Errorf("One = %v", One)
	}
	if Max.Hi != ^uint64(0) || Max.Lo != ^uint64(0) {
		t.Errorf("Max = %v", Max)
	}
	if Max.Add(One) != Zero {
		t.Error("Max+1 should wrap to zero")
	}
}

func TestAddSubKnown(t *testing.T) {
	cases := []struct {
		a, b, sum Uint128
	}{
		{Zero, Zero, Zero},
		{One, One, From64(2)},
		{From64(^uint64(0)), One, New(1, 0)},       // carry into Hi
		{New(0, ^uint64(0)), New(0, 1), New(1, 0)}, // same, explicit
		{New(^uint64(0), ^uint64(0)), One, Zero},   // full wrap
		{New(5, 10), New(7, 20), New(12, 30)},      // no carry
		{New(1, 1<<63), New(0, 1<<63), New(2, 0)},  // carry from Lo MSB
	}
	for _, c := range cases {
		if got := c.a.Add(c.b); got != c.sum {
			t.Errorf("%v + %v = %v, want %v", c.a, c.b, got, c.sum)
		}
		if got := c.sum.Sub(c.b); got != c.a {
			t.Errorf("%v - %v = %v, want %v", c.sum, c.b, got, c.a)
		}
	}
}

func TestAdd64Sub64(t *testing.T) {
	u := New(3, ^uint64(0))
	if got := u.Add64(1); got != New(4, 0) {
		t.Errorf("Add64 carry: got %v", got)
	}
	if got := New(4, 0).Sub64(1); got != u {
		t.Errorf("Sub64 borrow: got %v", got)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a    Uint128
		b    uint64
		want Uint128
	}{
		{From64(3), 4, From64(12)},
		{New(0, 1<<63), 2, New(1, 0)},
		{New(1, 0), 3, New(3, 0)},
		{Max, 1, Max},
	}
	for _, c := range cases {
		if got := c.a.Mul64(c.b); got != c.want {
			t.Errorf("%v * %d = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestShlShrKnown(t *testing.T) {
	u := New(0, 1)
	if got := u.Shl(64); got != New(1, 0) {
		t.Errorf("1<<64 = %v", got)
	}
	if got := u.Shl(127); got != New(1<<63, 0) {
		t.Errorf("1<<127 = %v", got)
	}
	if got := u.Shl(128); got != Zero {
		t.Errorf("1<<128 = %v", got)
	}
	v := New(1<<63, 0)
	if got := v.Shr(127); got != One {
		t.Errorf("MSB>>127 = %v", got)
	}
	if got := v.Shr(128); got != Zero {
		t.Errorf(">>128 = %v", got)
	}
	if got := New(0xabcd, 0x1234).Shl(0); got != New(0xabcd, 0x1234) {
		t.Errorf("<<0 changed value: %v", got)
	}
	if got := New(0xabcd, 0x1234).Shr(0); got != New(0xabcd, 0x1234) {
		t.Errorf(">>0 changed value: %v", got)
	}
}

func TestBitNumbering(t *testing.T) {
	// Bit 0 is the most-significant bit.
	u := New(1<<63, 0)
	if u.Bit(0) != 1 {
		t.Error("bit 0 of MSB-set value should be 1")
	}
	if u.Bit(1) != 0 {
		t.Error("bit 1 should be 0")
	}
	v := New(0, 1)
	if v.Bit(127) != 1 {
		t.Error("bit 127 of 1 should be 1")
	}
	if v.Bit(126) != 0 {
		t.Error("bit 126 of 1 should be 0")
	}
	// Bit 64 is the MSB of Lo.
	w := New(0, 1<<63)
	if w.Bit(64) != 1 {
		t.Error("bit 64 should be MSB of Lo")
	}
	// Out of range reads return 0.
	if u.Bit(-1) != 0 || u.Bit(128) != 0 {
		t.Error("out-of-range Bit should return 0")
	}
}

func TestSetBit(t *testing.T) {
	u := Zero
	for i := 0; i < 128; i++ {
		u = u.SetBit(i, 1)
		if u.Bit(i) != 1 {
			t.Fatalf("SetBit(%d,1) not visible via Bit", i)
		}
	}
	if u != Max {
		t.Errorf("setting all bits should give Max, got %v", u)
	}
	for i := 0; i < 128; i++ {
		u = u.SetBit(i, 0)
		if u.Bit(i) != 0 {
			t.Fatalf("SetBit(%d,0) not visible via Bit", i)
		}
	}
	if u != Zero {
		t.Errorf("clearing all bits should give Zero, got %v", u)
	}
	// Out of range is a no-op.
	if got := One.SetBit(200, 1); got != One {
		t.Errorf("out-of-range SetBit changed value: %v", got)
	}
}

func TestMask(t *testing.T) {
	if Mask(0) != Zero {
		t.Errorf("Mask(0) = %v", Mask(0))
	}
	if Mask(128) != Max {
		t.Errorf("Mask(128) = %v", Mask(128))
	}
	if Mask(-5) != Zero || Mask(200) != Max {
		t.Error("Mask should clamp out-of-range arguments")
	}
	if Mask(64) != New(^uint64(0), 0) {
		t.Errorf("Mask(64) = %v", Mask(64))
	}
	if Mask(1) != New(1<<63, 0) {
		t.Errorf("Mask(1) = %v", Mask(1))
	}
	for n := 0; n <= 128; n++ {
		m := Mask(n)
		if m.OnesCount() != n {
			t.Errorf("Mask(%d) has %d ones", n, m.OnesCount())
		}
		if n > 0 && m.Bit(0) != 1 {
			t.Errorf("Mask(%d) bit 0 should be set", n)
		}
		if n < 128 && m.Bit(127) != 0 {
			t.Errorf("Mask(%d) bit 127 should be clear", n)
		}
	}
}

func TestLeadingTrailingZeros(t *testing.T) {
	if Zero.LeadingZeros() != 128 || Zero.TrailingZeros() != 128 {
		t.Error("zero should have 128 leading and trailing zeros")
	}
	if One.LeadingZeros() != 127 || One.TrailingZeros() != 0 {
		t.Errorf("One: lz=%d tz=%d", One.LeadingZeros(), One.TrailingZeros())
	}
	if Max.LeadingZeros() != 0 || Max.TrailingZeros() != 0 {
		t.Error("Max should have no leading/trailing zeros")
	}
	u := New(0, 1<<20)
	if u.LeadingZeros() != 107 {
		t.Errorf("lz = %d", u.LeadingZeros())
	}
	if u.TrailingZeros() != 20 {
		t.Errorf("tz = %d", u.TrailingZeros())
	}
}

func TestCommonPrefixLen(t *testing.T) {
	a := New(0x20010db800000000, 0)
	if got := a.CommonPrefixLen(a); got != 128 {
		t.Errorf("cpl with self = %d", got)
	}
	b := a.SetBit(127, 1)
	if got := a.CommonPrefixLen(b); got != 127 {
		t.Errorf("cpl differing last bit = %d", got)
	}
	c := a.SetBit(0, 1) // a has bit 0 == 0 (0x2001... starts 0010)
	if got := a.CommonPrefixLen(c); got != 0 {
		t.Errorf("cpl differing first bit = %d", got)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	u := New(0x0123456789abcdef, 0xfedcba9876543210)
	b := u.Bytes()
	want := [16]byte{0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef,
		0xfe, 0xdc, 0xba, 0x98, 0x76, 0x54, 0x32, 0x10}
	if b != want {
		t.Errorf("Bytes() = %x, want %x", b, want)
	}
	if FromBytes(b) != u {
		t.Error("FromBytes(Bytes()) != identity")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		u    Uint128
		want string
	}{
		{Zero, "0x0"},
		{One, "0x1"},
		{From64(0xdeadbeef), "0xdeadbeef"},
		{New(1, 0), "0x10000000000000000"},
		{New(0x2001, 0x1), "0x20010000000000000001"},
	}
	for _, c := range cases {
		if got := c.u.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.u, got, c.want)
		}
	}
}

func TestCmpOrdering(t *testing.T) {
	ordered := []Uint128{Zero, One, From64(2), New(0, ^uint64(0)), New(1, 0), New(1, 1), Max}
	for i := range ordered {
		for j := range ordered {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := ordered[i].Cmp(ordered[j]); got != want {
				t.Errorf("Cmp(%v,%v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
			if got := ordered[i].Less(ordered[j]); got != (want < 0) {
				t.Errorf("Less(%v,%v) = %v", ordered[i], ordered[j], got)
			}
		}
	}
}

// ---- property-based tests against math/big ----

func randU128(r *rand.Rand) Uint128 {
	// Mix sparse and dense values so shifts and carries are well exercised.
	switch r.Intn(4) {
	case 0:
		return From64(r.Uint64())
	case 1:
		return New(r.Uint64(), 0)
	case 2:
		return One.Shl(uint(r.Intn(128)))
	}
	return New(r.Uint64(), r.Uint64())
}

func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 2000,
		Rand:     rand.New(rand.NewSource(1)),
		Values: func(args []reflect.Value, r *rand.Rand) {
			for i := range args {
				args[i] = reflect.ValueOf(randU128(r))
			}
		},
	}
}

func TestPropAddMatchesBig(t *testing.T) {
	f := func(a, b Uint128) bool {
		got := a.Add(b)
		want := new(big.Int).Add(toBig(a), toBig(b))
		want.Mod(want, mod128)
		return toBig(got).Cmp(want) == 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropSubMatchesBig(t *testing.T) {
	f := func(a, b Uint128) bool {
		got := a.Sub(b)
		want := new(big.Int).Sub(toBig(a), toBig(b))
		want.Mod(want, mod128)
		if want.Sign() < 0 {
			want.Add(want, mod128)
		}
		return toBig(got).Cmp(want) == 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropAddSubInverse(t *testing.T) {
	f := func(a, b Uint128) bool { return a.Add(b).Sub(b) == a }
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropShiftMatchesBig(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a := randU128(r)
		n := uint(r.Intn(140))
		gotL := toBig(a.Shl(n))
		wantL := new(big.Int).Lsh(toBig(a), n)
		wantL.Mod(wantL, mod128)
		if gotL.Cmp(wantL) != 0 {
			t.Fatalf("%v << %d: got %v want %v", a, n, gotL, wantL)
		}
		gotR := toBig(a.Shr(n))
		wantR := new(big.Int).Rsh(toBig(a), n)
		if gotR.Cmp(wantR) != 0 {
			t.Fatalf("%v >> %d: got %v want %v", a, n, gotR, wantR)
		}
	}
}

func TestPropBitwiseMatchesBig(t *testing.T) {
	f := func(a, b Uint128) bool {
		andOK := toBig(a.And(b)).Cmp(new(big.Int).And(toBig(a), toBig(b))) == 0
		orOK := toBig(a.Or(b)).Cmp(new(big.Int).Or(toBig(a), toBig(b))) == 0
		xorOK := toBig(a.Xor(b)).Cmp(new(big.Int).Xor(toBig(a), toBig(b))) == 0
		return andOK && orOK && xorOK
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropNotIsXorMax(t *testing.T) {
	f := func(a, b Uint128) bool { return a.Not() == a.Xor(Max) }
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropBytesRoundTrip(t *testing.T) {
	f := func(a, b Uint128) bool { return FromBytes(a.Bytes()) == a }
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropCmpMatchesBig(t *testing.T) {
	f := func(a, b Uint128) bool { return a.Cmp(b) == toBig(a).Cmp(toBig(b)) }
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropMul64MatchesBig(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		a := randU128(r)
		v := r.Uint64()
		got := toBig(a.Mul64(v))
		want := new(big.Int).Mul(toBig(a), new(big.Int).SetUint64(v))
		want.Mod(want, mod128)
		if got.Cmp(want) != 0 {
			t.Fatalf("%v * %d: got %v want %v", a, v, got, want)
		}
	}
}

func TestPropCommonPrefixLenDefinition(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		a, b := randU128(r), randU128(r)
		n := a.CommonPrefixLen(b)
		// First n bits agree.
		for j := 0; j < n; j++ {
			if a.Bit(j) != b.Bit(j) {
				t.Fatalf("bit %d differs within common prefix of length %d", j, n)
			}
		}
		// Bit n differs, unless identical.
		if n < 128 && a.Bit(n) == b.Bit(n) {
			t.Fatalf("bit %d should differ (cpl=%d)", n, n)
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	x, y := New(0x0123456789abcdef, 0xfedcba9876543210), New(1, ^uint64(0))
	for i := 0; i < b.N; i++ {
		x = x.Add(y)
	}
	_ = x
}

func BenchmarkShl(b *testing.B) {
	x := New(0x0123456789abcdef, 0xfedcba9876543210)
	for i := 0; i < b.N; i++ {
		x = x.Shl(uint(i & 127))
	}
	_ = x
}
