// Package uint128 implements 128-bit unsigned integer arithmetic.
//
// It is the numeric substrate for IPv6 address manipulation throughout this
// repository: addresses are 128-bit values, prefixes are masked 128-bit
// values, and the Multi-Resolution Aggregate and density computations of
// Plonka & Berger (IMC 2015) require shifting, masking, and comparing such
// values without resorting to big.Int allocations.
//
// Uint128 is a small value type; all operations return new values and none
// allocate.
package uint128

import (
	"fmt"
	"math/bits"
)

// Uint128 is an unsigned 128-bit integer comprising two 64-bit halves.
// The zero value is the number 0 and is ready to use.
type Uint128 struct {
	Hi uint64 // most-significant 64 bits
	Lo uint64 // least-significant 64 bits
}

// Zero is the number 0.
var Zero = Uint128{}

// One is the number 1.
var One = Uint128{Lo: 1}

// Max is the largest representable value, 2^128 - 1.
var Max = Uint128{Hi: ^uint64(0), Lo: ^uint64(0)}

// New returns a Uint128 from its two 64-bit halves.
func New(hi, lo uint64) Uint128 { return Uint128{Hi: hi, Lo: lo} }

// From64 returns a Uint128 holding the 64-bit value v.
func From64(v uint64) Uint128 { return Uint128{Lo: v} }

// FromBytes interprets the 16-byte big-endian array b as a Uint128.
func FromBytes(b [16]byte) Uint128 {
	var u Uint128
	for i := 0; i < 8; i++ {
		u.Hi = u.Hi<<8 | uint64(b[i])
		u.Lo = u.Lo<<8 | uint64(b[i+8])
	}
	return u
}

// Bytes returns the 16-byte big-endian representation of u.
func (u Uint128) Bytes() [16]byte {
	var b [16]byte
	for i := 0; i < 8; i++ {
		b[7-i] = byte(u.Hi >> (8 * i))
		b[15-i] = byte(u.Lo >> (8 * i))
	}
	return b
}

// IsZero reports whether u == 0.
func (u Uint128) IsZero() bool { return u.Hi == 0 && u.Lo == 0 }

// Cmp compares u and v, returning -1 if u < v, 0 if u == v, and +1 if u > v.
func (u Uint128) Cmp(v Uint128) int {
	switch {
	case u.Hi < v.Hi:
		return -1
	case u.Hi > v.Hi:
		return 1
	case u.Lo < v.Lo:
		return -1
	case u.Lo > v.Lo:
		return 1
	}
	return 0
}

// Less reports whether u < v.
func (u Uint128) Less(v Uint128) bool { return u.Cmp(v) < 0 }

// Add returns u + v, wrapping on overflow.
func (u Uint128) Add(v Uint128) Uint128 {
	lo, carry := bits.Add64(u.Lo, v.Lo, 0)
	hi, _ := bits.Add64(u.Hi, v.Hi, carry)
	return Uint128{Hi: hi, Lo: lo}
}

// AddCarry returns u + v and the outgoing carry (0 or 1).
func (u Uint128) AddCarry(v Uint128) (sum Uint128, carry uint64) {
	lo, c := bits.Add64(u.Lo, v.Lo, 0)
	hi, c2 := bits.Add64(u.Hi, v.Hi, c)
	return Uint128{Hi: hi, Lo: lo}, c2
}

// Add64 returns u + v, wrapping on overflow.
func (u Uint128) Add64(v uint64) Uint128 {
	lo, carry := bits.Add64(u.Lo, v, 0)
	return Uint128{Hi: u.Hi + carry, Lo: lo}
}

// Sub returns u - v, wrapping on underflow.
func (u Uint128) Sub(v Uint128) Uint128 {
	lo, borrow := bits.Sub64(u.Lo, v.Lo, 0)
	hi, _ := bits.Sub64(u.Hi, v.Hi, borrow)
	return Uint128{Hi: hi, Lo: lo}
}

// Sub64 returns u - v, wrapping on underflow.
func (u Uint128) Sub64(v uint64) Uint128 {
	lo, borrow := bits.Sub64(u.Lo, v, 0)
	return Uint128{Hi: u.Hi - borrow, Lo: lo}
}

// Mul64 returns u * v, wrapping on overflow.
func (u Uint128) Mul64(v uint64) Uint128 {
	hi, lo := bits.Mul64(u.Lo, v)
	return Uint128{Hi: hi + u.Hi*v, Lo: lo}
}

// And returns the bitwise AND of u and v.
func (u Uint128) And(v Uint128) Uint128 { return Uint128{Hi: u.Hi & v.Hi, Lo: u.Lo & v.Lo} }

// Or returns the bitwise OR of u and v.
func (u Uint128) Or(v Uint128) Uint128 { return Uint128{Hi: u.Hi | v.Hi, Lo: u.Lo | v.Lo} }

// Xor returns the bitwise XOR of u and v.
func (u Uint128) Xor(v Uint128) Uint128 { return Uint128{Hi: u.Hi ^ v.Hi, Lo: u.Lo ^ v.Lo} }

// Not returns the bitwise complement of u.
func (u Uint128) Not() Uint128 { return Uint128{Hi: ^u.Hi, Lo: ^u.Lo} }

// Shl returns u << n. Shifts of 128 or more return zero.
func (u Uint128) Shl(n uint) Uint128 {
	switch {
	case n >= 128:
		return Uint128{}
	case n >= 64:
		return Uint128{Hi: u.Lo << (n - 64)}
	case n == 0:
		return u
	}
	return Uint128{Hi: u.Hi<<n | u.Lo>>(64-n), Lo: u.Lo << n}
}

// Shr returns u >> n. Shifts of 128 or more return zero.
func (u Uint128) Shr(n uint) Uint128 {
	switch {
	case n >= 128:
		return Uint128{}
	case n >= 64:
		return Uint128{Lo: u.Hi >> (n - 64)}
	case n == 0:
		return u
	}
	return Uint128{Hi: u.Hi >> n, Lo: u.Lo>>n | u.Hi<<(64-n)}
}

// Bit returns the value (0 or 1) of the bit at position i, where position 0
// is the most-significant bit and 127 the least-significant. This big-endian
// numbering matches IPv6 prefix semantics: bit i of an address is the bit
// selected by a /i+1 prefix's final mask position.
func (u Uint128) Bit(i int) uint {
	if i < 0 || i > 127 {
		return 0
	}
	if i < 64 {
		return uint(u.Hi>>(63-i)) & 1
	}
	return uint(u.Lo>>(127-i)) & 1
}

// SetBit returns u with the bit at big-endian position i set to b (0 or 1).
func (u Uint128) SetBit(i int, b uint) Uint128 {
	if i < 0 || i > 127 {
		return u
	}
	if i < 64 {
		mask := uint64(1) << (63 - i)
		if b == 0 {
			u.Hi &^= mask
		} else {
			u.Hi |= mask
		}
		return u
	}
	mask := uint64(1) << (127 - i)
	if b == 0 {
		u.Lo &^= mask
	} else {
		u.Lo |= mask
	}
	return u
}

// LeadingZeros returns the number of leading (most-significant) zero bits in
// u; it returns 128 for u == 0.
func (u Uint128) LeadingZeros() int {
	if u.Hi != 0 {
		return bits.LeadingZeros64(u.Hi)
	}
	return 64 + bits.LeadingZeros64(u.Lo)
}

// TrailingZeros returns the number of trailing (least-significant) zero bits
// in u; it returns 128 for u == 0.
func (u Uint128) TrailingZeros() int {
	if u.Lo != 0 {
		return bits.TrailingZeros64(u.Lo)
	}
	return 64 + bits.TrailingZeros64(u.Hi)
}

// OnesCount returns the number of one bits ("population count") in u.
func (u Uint128) OnesCount() int {
	return bits.OnesCount64(u.Hi) + bits.OnesCount64(u.Lo)
}

// Mask returns a Uint128 whose first n most-significant bits are ones and the
// remaining bits are zeros. Mask(0) is zero; Mask(128) is Max. Values of n
// outside [0,128] are clamped.
func Mask(n int) Uint128 {
	if n <= 0 {
		return Uint128{}
	}
	if n >= 128 {
		return Max
	}
	return Max.Shl(uint(128 - n)) // ones in the top n bits only
}

// CommonPrefixLen returns the length, in bits, of the longest common prefix
// of u and v, counted from the most-significant bit. It is 128 when u == v.
func (u Uint128) CommonPrefixLen(v Uint128) int {
	return u.Xor(v).LeadingZeros()
}

// String returns the value in hexadecimal with a 0x prefix and no leading
// zeros beyond the minimum, e.g. "0x20010db8000000000000000000000001".
func (u Uint128) String() string {
	if u.Hi == 0 {
		return fmt.Sprintf("0x%x", u.Lo)
	}
	return fmt.Sprintf("0x%x%016x", u.Hi, u.Lo)
}
