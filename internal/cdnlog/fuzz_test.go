package cdnlog

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"v6class/internal/ipaddr"
)

// parseLineRef is the pre-slab string-path record parser, kept verbatim as
// the reference implementation: ParseLine's zero-allocation byte path must
// agree with it on arbitrary inputs.
func parseLineRef(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return Record{}, false
	}
	addr, err := ipaddr.ParseAddr(fields[0])
	if err != nil {
		return Record{}, false
	}
	hits, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil || hits == 0 {
		return Record{}, false
	}
	return Record{Addr: addr, Hits: hits}, true
}

// FuzzParseLine holds the byte-slice record parser to byte-for-byte
// agreement with the old string path: same accept/reject verdict, same
// address, same hit count. Inputs are pre-trimmed as ReadAll trims before
// dispatching to ParseLine.
func FuzzParseLine(f *testing.F) {
	for _, seed := range []string{
		"2001:db8::1 5",
		"2001:db8::1\t5",
		"2001:db8::1  18446744073709551615",
		"2001:db8::1 18446744073709551616", // overflow
		"2001:db8::1 0",
		"2001:db8::1 +5",
		"2001:db8::1 05",
		"::ffff:192.0.2.1 7",
		"2001:db8::1",
		"2001:db8::1 5 6",
		"not-an-addr 5",
		"2001:db8::zz 5",
		" 2001:db8::1 5",
		"#day 3",
		"2001:db8::1 5",    // non-ASCII whitespace separator
		"2001:db8::1 5",    // en quad: strings.Fields splits these
		"2001:db8::1 5 ",   // trailing unicode space
		"　2001:db8::1 5",   // leading ideographic space
		"2001:db8::1\xc25", // invalid UTF-8 must not split
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		line := string(bytes.TrimSpace([]byte(s)))
		if ref := strings.TrimSpace(s); line != ref {
			t.Fatalf("bytes.TrimSpace(%q) = %q, strings.TrimSpace = %q", s, line, ref)
		}
		want, wantOK := parseLineRef(line)
		got, err := ParseLine([]byte(line))
		if wantOK != (err == nil) {
			t.Fatalf("ParseLine(%q) err=%v, reference ok=%v", line, err, wantOK)
		}
		if wantOK && got != want {
			t.Fatalf("ParseLine(%q) = %+v, reference = %+v", line, got, want)
		}
	})
}
