// Package cdnlog models the study's primary data source: aggregated logs of
// WWW server activity containing hit counts per client IP address, rolled up
// over 24-hour intervals (Section 4.1 of Plonka & Berger, IMC 2015).
//
// The package provides the record model, a day-keyed aggregator that mirrors
// the CDN's 24-hour roll-up (including its timestamp slew: an observation
// can be attributed to the processing day rather than the activity day), and
// a line-oriented text serialization so datasets can be written to and read
// from disk by the command-line tools.
package cdnlog

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"unicode"
	"unicode/utf8"

	"v6class/internal/ipaddr"
)

// Record is one aggregated log entry: a client address and its successful
// request count for the day. Only successfully handled requests enter the
// aggregation, which is how the study avoids spoofed sources.
type Record struct {
	Addr ipaddr.Addr
	Hits uint64
}

// DayLog is the aggregated log for one study day.
type DayLog struct {
	Day     int
	Records []Record
}

// Addrs returns just the client addresses of the day.
func (d DayLog) Addrs() []ipaddr.Addr {
	out := make([]ipaddr.Addr, len(d.Records))
	for i, r := range d.Records {
		out[i] = r.Addr
	}
	return out
}

// TotalHits returns the day's total request count.
func (d DayLog) TotalHits() uint64 {
	var n uint64
	for _, r := range d.Records {
		n += r.Hits
	}
	return n
}

// Aggregator accumulates raw hits into per-day aggregated logs, as the CDN's
// log processing does.
type Aggregator struct {
	days map[int]map[ipaddr.Addr]uint64
}

// NewAggregator returns an empty Aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{days: make(map[int]map[ipaddr.Addr]uint64)}
}

// Add records hits from addr on the given day. Zero-hit adds are ignored.
func (a *Aggregator) Add(day int, addr ipaddr.Addr, hits uint64) {
	if hits == 0 {
		return
	}
	m := a.days[day]
	if m == nil {
		m = make(map[ipaddr.Addr]uint64)
		a.days[day] = m
	}
	m[addr] += hits
}

// Days returns the days with any activity, ascending.
func (a *Aggregator) Days() []int {
	out := make([]int, 0, len(a.days))
	for d := range a.days {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// Day returns the aggregated log for one day, with records in address order
// (deterministic output for serialization and tests).
func (a *Aggregator) Day(day int) DayLog {
	m := a.days[day]
	recs := make([]Record, 0, len(m))
	for addr, hits := range m {
		recs = append(recs, Record{Addr: addr, Hits: hits})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Addr.Less(recs[j].Addr) })
	return DayLog{Day: day, Records: recs}
}

// WriteDay serializes one day's aggregated log in the text format:
//
//	#day <n>
//	<address> <hits>
//	...
func WriteDay(w io.Writer, d DayLog) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "#day %d\n", d.Day); err != nil {
		return err
	}
	for _, r := range d.Records {
		if _, err := fmt.Fprintf(bw, "%s %d\n", r.Addr, r.Hits); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAll parses a stream of WriteDay-formatted logs (one or more days).
// Blank lines and lines beginning with "//" are ignored. The hot loop works
// on the scanner's byte slices in place — no per-line string, field split,
// or trim garbage — so reading a million-record day allocates only the
// records themselves.
func ReadAll(r io.Reader) ([]DayLog, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var out []DayLog
	var cur *DayLog
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || (len(line) >= 2 && line[0] == '/' && line[1] == '/') {
			continue
		}
		if day, ok := cutDayHeader(line); ok {
			dayNo, err := parseDayNumber(day)
			if err != nil {
				return nil, fmt.Errorf("cdnlog: line %d: bad day header %q", lineNo, line)
			}
			out = append(out, DayLog{Day: dayNo})
			cur = &out[len(out)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("cdnlog: line %d: record before any #day header", lineNo)
		}
		rec, err := ParseLine(line)
		if err != nil {
			return nil, fmt.Errorf("cdnlog: line %d: %v", lineNo, err)
		}
		cur.Records = append(cur.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ParseLine parses one aggregated-log record line, "addr hits" separated by
// whitespace, from a byte slice without allocating: the address goes
// through the ipaddr byte fast path and the hit count is decoded in place.
// Hit counts of zero are rejected (zero-hit addresses never enter the
// aggregation).
func ParseLine(line []byte) (Record, error) {
	addrField, rest := cutField(line)
	hitsField, extra := cutField(rest)
	if len(addrField) == 0 || len(hitsField) == 0 || len(extra) != 0 {
		return Record{}, fmt.Errorf("want \"addr hits\", got %q", line)
	}
	addr, err := ipaddr.ParseAddrBytes(addrField)
	if err != nil {
		return Record{}, err
	}
	hits, ok := parseHits(hitsField)
	if !ok || hits == 0 {
		return Record{}, fmt.Errorf("bad hit count %q", hitsField)
	}
	return Record{Addr: addr, Hits: hits}, nil
}

// isSpace matches the ASCII whitespace fast path; non-ASCII bytes go
// through the unicode.IsSpace slow path so the byte scanner splits exactly
// where strings.Fields and strings.TrimSpace did.
func isSpace(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\v', '\f', '\r':
		return true
	}
	return false
}

// leadingSpace returns the byte length of a whitespace rune at the start of
// b, or 0 when b does not start with whitespace.
func leadingSpace(b []byte) int {
	if len(b) == 0 {
		return 0
	}
	if b[0] < utf8.RuneSelf {
		if isSpace(b[0]) {
			return 1
		}
		return 0
	}
	if r, size := utf8.DecodeRune(b); unicode.IsSpace(r) {
		return size
	}
	return 0
}

// cutField splits b at its first whitespace run: the leading field and the
// remainder with the run consumed, splitting where strings.Fields would.
func cutField(b []byte) (field, rest []byte) {
	i := 0
	for i < len(b) {
		if b[i] < utf8.RuneSelf {
			if isSpace(b[i]) {
				break
			}
			i++
			continue
		}
		r, size := utf8.DecodeRune(b[i:])
		if unicode.IsSpace(r) {
			break
		}
		i += size
	}
	field = b[:i]
	rest = b[i:]
	for {
		n := leadingSpace(rest)
		if n == 0 {
			break
		}
		rest = rest[n:]
	}
	return field, rest
}

// cutDayHeader strips a "#day " prefix, returning the remainder trimmed.
func cutDayHeader(line []byte) ([]byte, bool) {
	const prefix = "#day "
	if len(line) < len(prefix) || string(line[:len(prefix)]) != prefix {
		return nil, false
	}
	return bytes.TrimSpace(line[len(prefix):]), true
}

// parseDayNumber decodes a day index with an optional sign, the grammar
// strconv.Atoi accepted here before the byte-path rewrite.
func parseDayNumber(b []byte) (int, error) {
	neg := false
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		b = b[1:]
	}
	if len(b) == 0 {
		return 0, fmt.Errorf("empty day number")
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad day number")
		}
		d := int(c - '0')
		if n > (math.MaxInt-d)/10 {
			return 0, fmt.Errorf("day number out of range")
		}
		n = n*10 + d
	}
	if neg {
		n = -n
	}
	return n, nil
}

// parseHits decodes a base-10 uint64 with strconv.ParseUint's strictness:
// digits only, no sign, overflow rejected.
func parseHits(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	const cutoff = math.MaxUint64/10 + 1
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n >= cutoff {
			return 0, false
		}
		n = n*10 + d
		if n < d {
			return 0, false
		}
	}
	return n, true
}

// Merge unions several day logs for the same or different days into one
// multi-day view keyed by day, summing hit counts for repeated addresses.
func Merge(logs []DayLog) []DayLog {
	agg := NewAggregator()
	for _, l := range logs {
		for _, r := range l.Records {
			agg.Add(l.Day, r.Addr, r.Hits)
		}
	}
	days := agg.Days()
	out := make([]DayLog, 0, len(days))
	for _, d := range days {
		out = append(out, agg.Day(d))
	}
	return out
}

// UniqueAddrs returns the distinct addresses across the given logs.
func UniqueAddrs(logs []DayLog) []ipaddr.Addr {
	seen := make(map[ipaddr.Addr]bool)
	var out []ipaddr.Addr
	for _, l := range logs {
		for _, r := range l.Records {
			if !seen[r.Addr] {
				seen[r.Addr] = true
				out = append(out, r.Addr)
			}
		}
	}
	return out
}
