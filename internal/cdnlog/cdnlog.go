// Package cdnlog models the study's primary data source: aggregated logs of
// WWW server activity containing hit counts per client IP address, rolled up
// over 24-hour intervals (Section 4.1 of Plonka & Berger, IMC 2015).
//
// The package provides the record model, a day-keyed aggregator that mirrors
// the CDN's 24-hour roll-up (including its timestamp slew: an observation
// can be attributed to the processing day rather than the activity day), and
// a line-oriented text serialization so datasets can be written to and read
// from disk by the command-line tools.
package cdnlog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"v6class/internal/ipaddr"
)

// Record is one aggregated log entry: a client address and its successful
// request count for the day. Only successfully handled requests enter the
// aggregation, which is how the study avoids spoofed sources.
type Record struct {
	Addr ipaddr.Addr
	Hits uint64
}

// DayLog is the aggregated log for one study day.
type DayLog struct {
	Day     int
	Records []Record
}

// Addrs returns just the client addresses of the day.
func (d DayLog) Addrs() []ipaddr.Addr {
	out := make([]ipaddr.Addr, len(d.Records))
	for i, r := range d.Records {
		out[i] = r.Addr
	}
	return out
}

// TotalHits returns the day's total request count.
func (d DayLog) TotalHits() uint64 {
	var n uint64
	for _, r := range d.Records {
		n += r.Hits
	}
	return n
}

// Aggregator accumulates raw hits into per-day aggregated logs, as the CDN's
// log processing does.
type Aggregator struct {
	days map[int]map[ipaddr.Addr]uint64
}

// NewAggregator returns an empty Aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{days: make(map[int]map[ipaddr.Addr]uint64)}
}

// Add records hits from addr on the given day. Zero-hit adds are ignored.
func (a *Aggregator) Add(day int, addr ipaddr.Addr, hits uint64) {
	if hits == 0 {
		return
	}
	m := a.days[day]
	if m == nil {
		m = make(map[ipaddr.Addr]uint64)
		a.days[day] = m
	}
	m[addr] += hits
}

// Days returns the days with any activity, ascending.
func (a *Aggregator) Days() []int {
	out := make([]int, 0, len(a.days))
	for d := range a.days {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// Day returns the aggregated log for one day, with records in address order
// (deterministic output for serialization and tests).
func (a *Aggregator) Day(day int) DayLog {
	m := a.days[day]
	recs := make([]Record, 0, len(m))
	for addr, hits := range m {
		recs = append(recs, Record{Addr: addr, Hits: hits})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Addr.Less(recs[j].Addr) })
	return DayLog{Day: day, Records: recs}
}

// WriteDay serializes one day's aggregated log in the text format:
//
//	#day <n>
//	<address> <hits>
//	...
func WriteDay(w io.Writer, d DayLog) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "#day %d\n", d.Day); err != nil {
		return err
	}
	for _, r := range d.Records {
		if _, err := fmt.Fprintf(bw, "%s %d\n", r.Addr, r.Hits); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAll parses a stream of WriteDay-formatted logs (one or more days).
// Blank lines and lines beginning with "//" are ignored.
func ReadAll(r io.Reader) ([]DayLog, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var out []DayLog
	var cur *DayLog
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		if strings.HasPrefix(line, "#day ") {
			day, err := strconv.Atoi(strings.TrimSpace(line[len("#day "):]))
			if err != nil {
				return nil, fmt.Errorf("cdnlog: line %d: bad day header %q", lineNo, line)
			}
			out = append(out, DayLog{Day: day})
			cur = &out[len(out)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("cdnlog: line %d: record before any #day header", lineNo)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("cdnlog: line %d: want \"addr hits\", got %q", lineNo, line)
		}
		addr, err := ipaddr.ParseAddr(fields[0])
		if err != nil {
			return nil, fmt.Errorf("cdnlog: line %d: %v", lineNo, err)
		}
		hits, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil || hits == 0 {
			return nil, fmt.Errorf("cdnlog: line %d: bad hit count %q", lineNo, fields[1])
		}
		cur.Records = append(cur.Records, Record{Addr: addr, Hits: hits})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Merge unions several day logs for the same or different days into one
// multi-day view keyed by day, summing hit counts for repeated addresses.
func Merge(logs []DayLog) []DayLog {
	agg := NewAggregator()
	for _, l := range logs {
		for _, r := range l.Records {
			agg.Add(l.Day, r.Addr, r.Hits)
		}
	}
	days := agg.Days()
	out := make([]DayLog, 0, len(days))
	for _, d := range days {
		out = append(out, agg.Day(d))
	}
	return out
}

// UniqueAddrs returns the distinct addresses across the given logs.
func UniqueAddrs(logs []DayLog) []ipaddr.Addr {
	seen := make(map[ipaddr.Addr]bool)
	var out []ipaddr.Addr
	for _, l := range logs {
		for _, r := range l.Records {
			if !seen[r.Addr] {
				seen[r.Addr] = true
				out = append(out, r.Addr)
			}
		}
	}
	return out
}
