package cdnlog

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"v6class/internal/ipaddr"
)

func rec(t *testing.T, addr string, hits uint64) Record {
	t.Helper()
	a, err := ipaddr.ParseAddr(addr)
	if err != nil {
		t.Fatal(err)
	}
	return Record{Addr: a, Hits: hits}
}

func TestAggregator(t *testing.T) {
	agg := NewAggregator()
	a1, _ := ipaddr.ParseAddr("2001:db8::1")
	a2, _ := ipaddr.ParseAddr("2001:db8::2")
	agg.Add(5, a1, 3)
	agg.Add(5, a1, 2)
	agg.Add(5, a2, 1)
	agg.Add(7, a2, 10)
	agg.Add(7, a1, 0) // ignored

	if days := agg.Days(); len(days) != 2 || days[0] != 5 || days[1] != 7 {
		t.Fatalf("Days = %v", days)
	}
	d5 := agg.Day(5)
	if len(d5.Records) != 2 {
		t.Fatalf("day 5 records = %v", d5.Records)
	}
	if d5.Records[0].Addr != a1 || d5.Records[0].Hits != 5 {
		t.Errorf("day 5 first record = %v", d5.Records[0])
	}
	if d5.TotalHits() != 6 {
		t.Errorf("TotalHits = %d", d5.TotalHits())
	}
	addrs := d5.Addrs()
	if len(addrs) != 2 || !addrs[0].Less(addrs[1]) {
		t.Errorf("Addrs = %v", addrs)
	}
	d7 := agg.Day(7)
	if len(d7.Records) != 1 || d7.Records[0].Hits != 10 {
		t.Errorf("day 7 = %v", d7.Records)
	}
	if got := agg.Day(99); len(got.Records) != 0 {
		t.Errorf("missing day should be empty, got %v", got.Records)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	logs := []DayLog{
		{Day: 17, Records: []Record{rec(t, "2001:db8::1", 5), rec(t, "2001:db8::2", 1)}},
		{Day: 18, Records: []Record{rec(t, "2002:c000:204::1", 7)}},
	}
	var buf bytes.Buffer
	for _, l := range logs {
		if err := WriteDay(&buf, l); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d days", len(got))
	}
	for i := range logs {
		if got[i].Day != logs[i].Day || len(got[i].Records) != len(logs[i].Records) {
			t.Fatalf("day %d mismatch: %+v", i, got[i])
		}
		for j := range logs[i].Records {
			if got[i].Records[j] != logs[i].Records[j] {
				t.Errorf("record mismatch: %v vs %v", got[i].Records[j], logs[i].Records[j])
			}
		}
	}
}

func TestReadAllTolerant(t *testing.T) {
	in := `
// a comment
#day 3

2001:db8::1 4
`
	logs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 1 || logs[0].Day != 3 || len(logs[0].Records) != 1 {
		t.Fatalf("logs = %+v", logs)
	}
}

func TestReadAllErrors(t *testing.T) {
	bad := []string{
		"2001:db8::1 4\n",           // record before header
		"#day x\n",                  // bad day
		"#day 1\nnot-an-addr 4\n",   // bad address
		"#day 1\n2001:db8::1 z\n",   // bad hits
		"#day 1\n2001:db8::1 0\n",   // zero hits
		"#day 1\n2001:db8::1\n",     // missing hits
		"#day 1\n2001:db8::1 1 2\n", // extra field
	}
	for _, in := range bad {
		if _, err := ReadAll(strings.NewReader(in)); err == nil {
			t.Errorf("ReadAll(%q) should fail", in)
		}
	}
}

func TestMerge(t *testing.T) {
	logs := []DayLog{
		{Day: 1, Records: []Record{rec(t, "2001:db8::1", 2)}},
		{Day: 1, Records: []Record{rec(t, "2001:db8::1", 3), rec(t, "2001:db8::2", 1)}},
		{Day: 2, Records: []Record{rec(t, "2001:db8::1", 1)}},
	}
	merged := Merge(logs)
	if len(merged) != 2 {
		t.Fatalf("merged = %+v", merged)
	}
	if merged[0].Day != 1 || len(merged[0].Records) != 2 || merged[0].Records[0].Hits != 5 {
		t.Errorf("merged day 1 = %+v", merged[0])
	}
}

func TestUniqueAddrs(t *testing.T) {
	logs := []DayLog{
		{Day: 1, Records: []Record{rec(t, "2001:db8::1", 2), rec(t, "2001:db8::2", 1)}},
		{Day: 2, Records: []Record{rec(t, "2001:db8::1", 1), rec(t, "2001:db8::3", 1)}},
	}
	got := UniqueAddrs(logs)
	if len(got) != 3 {
		t.Errorf("UniqueAddrs = %v", got)
	}
}

func TestReadWriteFilePlain(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/logs.txt"
	logs := []DayLog{
		{Day: 1, Records: []Record{rec(t, "2001:db8::1", 2)}},
		{Day: 2, Records: []Record{rec(t, "2001:db8::2", 5)}},
	}
	if err := WriteFile(path, logs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Records[0].Hits != 5 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestReadWriteFileGzip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/logs.txt.gz"
	logs := []DayLog{{Day: 7, Records: []Record{rec(t, "2001:db8::1", 1)}}}
	if err := WriteFile(path, logs); err != nil {
		t.Fatal(err)
	}
	// The file must actually be gzip (magic bytes 1f 8b).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatalf("not gzip: % x", raw[:2])
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Day != 7 {
		t.Fatalf("gzip round trip = %+v", got)
	}
}

func TestReadFileErrors(t *testing.T) {
	if _, err := ReadFile("/nonexistent/nope.log"); err == nil {
		t.Error("missing file should error")
	}
	dir := t.TempDir()
	bad := dir + "/bad.gz"
	if err := os.WriteFile(bad, []byte("not gzip at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil {
		t.Error("corrupt gzip should error")
	}
}
