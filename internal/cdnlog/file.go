package cdnlog

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// File helpers: real aggregated-log datasets are large, so the tools read
// and write gzip-compressed files transparently, selected by the ".gz"
// filename suffix.

// ReadFile loads all day sections from path, decompressing when the name
// ends in ".gz". "-" reads standard input (never decompressed).
func ReadFile(path string) ([]DayLog, error) {
	if path == "-" {
		return ReadAll(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("cdnlog: %s: %w", path, err)
		}
		defer zr.Close()
		r = zr
	}
	logs, err := ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("cdnlog: %s: %w", path, err)
	}
	return logs, nil
}

// WriteFile writes day logs to path, compressing when the name ends in
// ".gz". "-" writes standard output (never compressed).
func WriteFile(path string, logs []DayLog) (err error) {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, cerr := os.Create(path)
		if cerr != nil {
			return cerr
		}
		defer func() {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}()
		w = f
		if strings.HasSuffix(path, ".gz") {
			zw := gzip.NewWriter(f)
			defer func() {
				if cerr := zw.Close(); err == nil {
					err = cerr
				}
			}()
			w = zw
		}
	}
	for _, l := range logs {
		if err := WriteDay(w, l); err != nil {
			return err
		}
	}
	return nil
}
