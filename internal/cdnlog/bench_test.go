package cdnlog

import (
	"bufio"
	"bytes"
	"strings"
	"sync"
	"testing"

	"v6class/internal/ipaddr"
)

// Parse-path benchmark: the zero-allocation byte-slice reader against the
// old string-path line discipline (preserved as parseLineRef for fuzz
// parity), over one serialized aggregated day. Run with -benchmem; the
// byte path's point is the allocation column.

var (
	benchDayOnce sync.Once
	benchDayText []byte
	benchDayRecs int
)

func benchDay() ([]byte, int) {
	benchDayOnce.Do(func() {
		const n = 20000
		recs := make([]Record, 0, n)
		for i := 0; i < n; i++ {
			a := ipaddr.AddrFromSegments([8]uint16{
				0x2001, 0xdb8, uint16(i >> 8), uint16(i), 0, 0, uint16(i * 7), uint16(i*13 + 1),
			})
			recs = append(recs, Record{Addr: a, Hits: uint64(i%97 + 1)})
		}
		var buf bytes.Buffer
		if err := WriteDay(&buf, DayLog{Day: 5, Records: recs}); err != nil {
			panic(err)
		}
		benchDayText = buf.Bytes()
		benchDayRecs = n
	})
	return benchDayText, benchDayRecs
}

func BenchmarkIngestParse(b *testing.B) {
	data, n := benchDay()
	b.Run("bytes", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			logs, err := ReadAll(bytes.NewReader(data))
			if err != nil || len(logs) != 1 || len(logs[0].Records) != n {
				b.Fatalf("bad parse: %v", err)
			}
		}
	})
	b.Run("reference-strings", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			sc := bufio.NewScanner(bytes.NewReader(data))
			got := 0
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if line == "" || strings.HasPrefix(line, "#") {
					continue
				}
				if _, ok := parseLineRef(line); ok {
					got++
				}
			}
			if got != n {
				b.Fatalf("reference parsed %d records", got)
			}
		}
	})
}
