package ipaddr

import (
	"math/rand"
	"net/netip"
	"sort"
	"testing"
)

func TestParseAddrValid(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical RFC 5952 form
	}{
		{"::", "::"},
		{"::1", "::1"},
		{"1::", "1::"},
		{"2001:db8::1", "2001:db8::1"},
		{"2001:DB8::1", "2001:db8::1"},
		{"2001:0db8:0000:0000:0000:0000:0000:0001", "2001:db8::1"},
		{"2001:db8:0:0:1:0:0:1", "2001:db8::1:0:0:1"}, // leftmost longest run compressed
		{"2001:db8::0:1:0:0:1", "2001:db8::1:0:0:1"},  // same value
		{"fe80::1:2:3:4", "fe80::1:2:3:4"},
		{"2002:c000:0204::", "2002:c000:204::"},
		{"::ffff:192.0.2.128", "::ffff:c000:280"},                                            // IPv4-mapped
		{"64:ff9b::192.0.2.33", "64:ff9b::c000:221"},                                         // NAT64 WKP
		{"2001:db8:10:1::103", "2001:db8:10:1::103"},                                         // paper Figure 1 (i)
		{"2001:db8:167:1109::10:901", "2001:db8:167:1109::10:901"},                           // Figure 1 (ii)
		{"2001:db8:0:1cdf:21e:c2ff:fec0:11db", "2001:db8:0:1cdf:21e:c2ff:fec0:11db"},         // Figure 1 (iii)
		{"2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a", "2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a"}, // Figure 1 (iv)
		{"a:b:c:d:e:f:1:2", "a:b:c:d:e:f:1:2"},
		{"0:0:0:0:0:0:0:0", "::"},
		{"1:0:0:0:0:0:0:1", "1::1"},
		{"2001:db8::", "2001:db8::"},
	}
	for _, c := range cases {
		a, err := ParseAddr(c.in)
		if err != nil {
			t.Errorf("ParseAddr(%q): %v", c.in, err)
			continue
		}
		if got := a.String(); got != c.want {
			t.Errorf("ParseAddr(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseAddrInvalid(t *testing.T) {
	bad := []string{
		"",
		":",
		":::",
		"::1::",
		"1:2:3:4:5:6:7",      // too few
		"1:2:3:4:5:6:7:8:9",  // too many
		"12345::",            // segment too long
		"g::1",               // bad hex
		"1:2:3:4:5:6:7:8::",  // no room for ::
		"::1:2:3:4:5:6:7:8",  // no room for ::
		"2001:db8::1%eth0",   // zone not allowed
		"[::1]",              // brackets not allowed
		"1::2::3",            // double ellipsis
		"::ffff:192.0.2.999", // bad IPv4 octet
		"::ffff:192.0.2",     // short IPv4
		"::ffff:192.0.2.1.5", // long IPv4
		"::ffff:192.0.02.1",  // leading zero octet
		"1:",                 // trailing lone colon
		":1",                 // leading lone colon
		"fe80::1 ",           // stray space
	}
	for _, s := range bad {
		if a, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) = %v, want error", s, a)
		}
	}
}

// TestAgainstNetip cross-checks parsing and formatting against the standard
// library for a corpus of addresses, including randomly generated ones.
func TestAgainstNetip(t *testing.T) {
	corpus := []string{
		"::", "::1", "1::", "2001:db8::1", "fe80::1:2:3:4",
		"2001:db8:0:1cdf:21e:c2ff:fec0:11db",
		"2002:c000:204::", "ff02::fb", "64:ff9b::c000:221",
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		var b [16]byte
		r.Read(b[:])
		// Bias toward zero runs so "::" compression paths are exercised.
		if r.Intn(2) == 0 {
			start := r.Intn(14)
			n := r.Intn(16 - start)
			for j := start; j < start+n; j++ {
				b[j] = 0
			}
		}
		corpus = append(corpus, netip.AddrFrom16(b).String())
	}
	for _, s := range corpus {
		std, err := netip.ParseAddr(s)
		if err != nil {
			t.Fatalf("netip rejects corpus entry %q: %v", s, err)
		}
		ours, err := ParseAddr(s)
		if err != nil {
			t.Errorf("ParseAddr(%q): %v", s, err)
			continue
		}
		if ours.As16() != std.As16() {
			t.Errorf("ParseAddr(%q) bytes = %x, netip = %x", s, ours.As16(), std.As16())
		}
		if ours.String() != std.String() {
			t.Errorf("String mismatch for %q: ours %q, netip %q", s, ours.String(), std.String())
		}
	}
}

func TestSegmentsRoundTrip(t *testing.T) {
	s := [8]uint16{0x2001, 0xdb8, 0, 0x1cdf, 0x21e, 0xc2ff, 0xfec0, 0x11db}
	a := AddrFromSegments(s)
	if a.Segments() != s {
		t.Errorf("Segments round trip failed: %v", a.Segments())
	}
	if a.String() != "2001:db8:0:1cdf:21e:c2ff:fec0:11db" {
		t.Errorf("String = %q", a.String())
	}
}

func TestNybble(t *testing.T) {
	a := MustParseAddr("0123:4567:89ab:cdef:0123:4567:89ab:cdef")
	want := []uint8{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0xa, 0xb, 0xc, 0xd, 0xe, 0xf}
	for i := 0; i < 32; i++ {
		if got := a.Nybble(i); got != want[i%16] {
			t.Errorf("Nybble(%d) = %x, want %x", i, got, want[i%16])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Nybble(32) should panic")
		}
	}()
	a.Nybble(32)
}

func TestIIDAndNetworkID(t *testing.T) {
	a := MustParseAddr("2001:db8:1:2:aaaa:bbbb:cccc:dddd")
	if a.NetworkID() != 0x20010db800010002 {
		t.Errorf("NetworkID = %x", a.NetworkID())
	}
	if a.IID() != 0xaaaabbbbccccdddd {
		t.Errorf("IID = %x", a.IID())
	}
	b := a.WithIID(0x1234)
	if b.String() != "2001:db8:1:2::1234" {
		t.Errorf("WithIID = %q", b.String())
	}
}

func TestNextPrev(t *testing.T) {
	a := MustParseAddr("2001:db8::ffff:ffff:ffff:ffff")
	if got := a.Next().String(); got != "2001:db8:0:1::" {
		t.Errorf("Next = %q", got)
	}
	if a.Next().Prev() != a {
		t.Error("Next then Prev should be identity")
	}
	if MustParseAddr("::").Prev() != MustParseAddr("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff") {
		t.Error(":: Prev should wrap to all-ones")
	}
}

func TestMaskAddr(t *testing.T) {
	a := MustParseAddr("2001:db8:1234:5678:9abc:def0:1234:5678")
	cases := []struct {
		bits int
		want string
	}{
		{0, "::"},
		{16, "2001::"},
		{32, "2001:db8::"},
		{48, "2001:db8:1234::"},
		{64, "2001:db8:1234:5678::"},
		{128, "2001:db8:1234:5678:9abc:def0:1234:5678"},
		{67, "2001:db8:1234:5678:8000::"},
	}
	for _, c := range cases {
		if got := a.Mask(c.bits).String(); got != c.want {
			t.Errorf("Mask(%d) = %q, want %q", c.bits, got, c.want)
		}
	}
}

func TestAddrOrdering(t *testing.T) {
	addrs := []Addr{
		MustParseAddr("ff02::1"),
		MustParseAddr("::"),
		MustParseAddr("2001:db8::2"),
		MustParseAddr("2001:db8::1"),
		MustParseAddr("::1"),
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
	want := []string{"::", "::1", "2001:db8::1", "2001:db8::2", "ff02::1"}
	for i, a := range addrs {
		if a.String() != want[i] {
			t.Errorf("sorted[%d] = %q, want %q", i, a.String(), want[i])
		}
	}
}

func TestExpandedAndHexString(t *testing.T) {
	a := MustParseAddr("2001:db8::1")
	if got := a.Expanded(); got != "2001:0db8:0000:0000:0000:0000:0000:0001" {
		t.Errorf("Expanded = %q", got)
	}
	if got := a.HexString(); got != "20010db8000000000000000000000001" {
		t.Errorf("HexString = %q", got)
	}
}

func TestCommonPrefixLenAddrs(t *testing.T) {
	a := MustParseAddr("2001:db8::1")
	b := MustParseAddr("2001:db8::2")
	if got := a.CommonPrefixLen(b); got != 126 {
		t.Errorf("cpl = %d, want 126", got)
	}
	if got := a.CommonPrefixLen(a); got != 128 {
		t.Errorf("cpl self = %d", got)
	}
}

func BenchmarkParseAddr(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseAddr("2001:db8:0:1cdf:21e:c2ff:fec0:11db"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAddrString(b *testing.B) {
	a := MustParseAddr("2001:db8::1:0:0:1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.String()
	}
}
