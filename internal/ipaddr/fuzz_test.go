package ipaddr

import (
	"strings"
	"testing"
)

// FuzzParse exercises the RFC 4291 parser: any input either fails to parse
// or yields an address whose every text form (canonical, expanded, raw hex)
// survives a round trip back to the same 128-bit value.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"::",
		"::1",
		"1::",
		"2001:db8::1",
		"2001:0db8:0000:0000:0000:0000:0000:0001",
		"fe80::1:2:3:4",
		"2002:c633:6401::1",
		"::ffff:192.0.2.1",
		"1:2:3:4:5:6:7:8",
		"a:b:c:d:e:f:a:b",
		"2600:1000:0:64::",
		"::192.0.2.255",
		"1:2:3:4:5:6:192.0.2.1",
		"2001:db8::0:0:1", // non-canonical: "::" not at longest run
		"0:0:0:0:0:0:0:0",
		":::",
		"1:::2",
		"12345::",
		"::ffff:999.0.2.1",
		"2001:db8::1%eth0",
		"2001:db8::/32",
		" ::1",
		"g::1",
		"1:2:3:4:5:6:7",
		"1:2:3:4:5:6:7:8:9",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddr(s)
		// The []byte fast path is an independent implementation of the
		// same grammar; it must agree with the string path on every
		// input — same verdict, same value.
		ab, berr := ParseAddrBytes([]byte(s))
		if (err == nil) != (berr == nil) {
			t.Fatalf("ParseAddr(%q) err=%v but ParseAddrBytes err=%v", s, err, berr)
		}
		if err == nil && a != ab {
			t.Fatalf("ParseAddr(%q) = %v but ParseAddrBytes = %v", s, a, ab)
		}
		if err != nil {
			return
		}
		// The canonical form must reparse to the same value and already be
		// canonical.
		canon := a.String()
		b, err := ParseAddr(canon)
		if err != nil {
			t.Fatalf("ParseAddr(%q) ok but canonical %q fails: %v", s, canon, err)
		}
		if a != b {
			t.Fatalf("round trip changed value: %q -> %q -> %q", s, canon, b)
		}
		if again := b.String(); again != canon {
			t.Fatalf("String not canonical: %q renders %q then %q", s, canon, again)
		}
		if strings.ToLower(canon) != canon {
			t.Fatalf("String %q not lower-case", canon)
		}
		// The expanded form must reparse to the same value.
		exp := a.Expanded()
		if len(exp) != 39 {
			t.Fatalf("Expanded(%q) = %q, want 39 chars", s, exp)
		}
		c, err := ParseAddr(exp)
		if err != nil || c != a {
			t.Fatalf("Expanded round trip failed: %q -> %q (%v)", s, exp, err)
		}
		// The raw hex form must agree with the segments.
		hex := a.HexString()
		if len(hex) != 32 {
			t.Fatalf("HexString(%q) = %q, want 32 chars", s, hex)
		}
		var fromHex strings.Builder
		for i := 0; i < 32; i += 4 {
			if i > 0 {
				fromHex.WriteByte(':')
			}
			fromHex.WriteString(hex[i : i+4])
		}
		d, err := ParseAddr(fromHex.String())
		if err != nil || d != a {
			t.Fatalf("HexString round trip failed: %q -> %q (%v)", s, hex, err)
		}
	})
}
