package ipaddr

import (
	"math/rand"
	"testing"

	"v6class/internal/uint128"
)

func TestParsePrefix(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"2001:db8::/32", "2001:db8::/32"},
		{"2001:db8::1/32", "2001:db8::/32"}, // host bits masked off
		{"::/0", "::/0"},
		{"2002::/16", "2002::/16"},
		{"2001:db8::1/128", "2001:db8::1/128"},
		{"2001:db8:ffff::/33", "2001:db8:8000::/33"},
	}
	for _, c := range cases {
		p, err := ParsePrefix(c.in)
		if err != nil {
			t.Errorf("ParsePrefix(%q): %v", c.in, err)
			continue
		}
		if got := p.String(); got != c.want {
			t.Errorf("ParsePrefix(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	for _, s := range []string{"", "2001:db8::", "2001:db8::/129", "2001:db8::/-1", "2001:db8::/x", "bogus/64"} {
		if p, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) = %v, want error", s, p)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("2001:db8::/32")
	if !p.Contains(MustParseAddr("2001:db8::1")) {
		t.Error("should contain 2001:db8::1")
	}
	if !p.Contains(MustParseAddr("2001:db8:ffff:ffff:ffff:ffff:ffff:ffff")) {
		t.Error("should contain last address")
	}
	if p.Contains(MustParseAddr("2001:db9::")) {
		t.Error("should not contain 2001:db9::")
	}
	all := MustParsePrefix("::/0")
	if !all.Contains(MustParseAddr("ffff::1")) {
		t.Error("::/0 should contain everything")
	}
	host := MustParsePrefix("2001:db8::1/128")
	if !host.Contains(MustParseAddr("2001:db8::1")) || host.Contains(MustParseAddr("2001:db8::2")) {
		t.Error("/128 containment wrong")
	}
}

func TestPrefixContainsPrefixAndOverlaps(t *testing.T) {
	p32 := MustParsePrefix("2001:db8::/32")
	p48 := MustParsePrefix("2001:db8:1::/48")
	p48out := MustParsePrefix("2001:db9:1::/48")
	if !p32.ContainsPrefix(p48) {
		t.Error("/32 should contain /48 within it")
	}
	if p48.ContainsPrefix(p32) {
		t.Error("/48 should not contain its /32")
	}
	if p32.ContainsPrefix(p48out) {
		t.Error("should not contain outside /48")
	}
	if !p32.Overlaps(p48) || !p48.Overlaps(p32) {
		t.Error("nested prefixes overlap")
	}
	if p48.Overlaps(p48out) {
		t.Error("disjoint prefixes should not overlap")
	}
	if !p32.ContainsPrefix(p32) {
		t.Error("prefix contains itself")
	}
}

func TestPrefixFirstLast(t *testing.T) {
	p := MustParsePrefix("2001:db8::/32")
	if got := p.First().String(); got != "2001:db8::" {
		t.Errorf("First = %q", got)
	}
	if got := p.Last().String(); got != "2001:db8:ffff:ffff:ffff:ffff:ffff:ffff" {
		t.Errorf("Last = %q", got)
	}
	h := MustParsePrefix("::1/128")
	if h.First() != h.Last() {
		t.Error("/128 First != Last")
	}
}

func TestNumAddresses(t *testing.T) {
	if got := MustParsePrefix("2001:db8::/112").NumAddresses(); got != 65536 {
		t.Errorf("/112 spans %d", got)
	}
	if got := MustParsePrefix("2001:db8::1/128").NumAddresses(); got != 1 {
		t.Errorf("/128 spans %d", got)
	}
	if got := MustParsePrefix("2001:db8::/64").NumAddresses(); got != ^uint64(0) {
		t.Errorf("/64 should saturate, got %d", got)
	}
	if got := MustParsePrefix("2001:db8::/64").NumAddresses128(); got != uint128.New(1, 0) {
		t.Errorf("/64 exact = %v", got)
	}
	if got := MustParsePrefix("::/0").NumAddresses128(); got != uint128.Max {
		t.Errorf("::/0 should saturate to Max")
	}
}

func TestParentChildren(t *testing.T) {
	p := MustParsePrefix("2001:db8::/32")
	zero, one := p.Children()
	if zero.String() != "2001:db8::/33" {
		t.Errorf("zero child = %q", zero)
	}
	if one.String() != "2001:db8:8000::/33" {
		t.Errorf("one child = %q", one)
	}
	if zero.Parent() != p || one.Parent() != p {
		t.Error("Parent of children should be p")
	}
	if got := MustParsePrefix("::/0").Parent(); got != MustParsePrefix("::/0") {
		t.Errorf("Parent of ::/0 = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Children of /128 should panic")
		}
	}()
	MustParsePrefix("::1/128").Children()
}

func TestTruncateSupernet(t *testing.T) {
	p := MustParsePrefix("2001:db8:1234::/48")
	if got := p.Truncate(32).String(); got != "2001:db8::/32" {
		t.Errorf("Truncate(32) = %q", got)
	}
	if got := p.Truncate(64); got != p {
		t.Errorf("Truncate beyond length should be identity, got %v", got)
	}
	q := MustParsePrefix("2001:db8:ffff::/48")
	s := p.Supernet(q)
	if !s.ContainsPrefix(p) || !s.ContainsPrefix(q) {
		t.Errorf("Supernet %v does not contain both", s)
	}
	// 0x1234 and 0xffff differ in their first bit, so the supernet is /32.
	if s.String() != "2001:db8::/32" {
		t.Errorf("Supernet = %q", s)
	}
	if got := p.Supernet(p); got != p {
		t.Errorf("Supernet with self = %v", got)
	}
}

func TestPrefixCmp(t *testing.T) {
	a := MustParsePrefix("2001:db8::/32")
	b := MustParsePrefix("2001:db8::/48")
	c := MustParsePrefix("2001:db9::/32")
	if a.Cmp(b) >= 0 {
		t.Error("shorter prefix with same base sorts first")
	}
	if b.Cmp(c) >= 0 {
		t.Error("lower base sorts first regardless of length")
	}
	if a.Cmp(a) != 0 {
		t.Error("Cmp self != 0")
	}
}

func TestPrefixFromClamps(t *testing.T) {
	a := MustParseAddr("2001:db8::1")
	if got := PrefixFrom(a, -4).Bits(); got != 0 {
		t.Errorf("negative bits clamp: %d", got)
	}
	if got := PrefixFrom(a, 200).Bits(); got != 128 {
		t.Errorf("oversize bits clamp: %d", got)
	}
}

// Property: for random addresses and lengths, Contains(a) iff the masked
// address equals the base; children partition the parent.
func TestPropPrefixInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		var b [16]byte
		r.Read(b[:])
		a := AddrFrom16(b)
		bits := r.Intn(129)
		p := PrefixFrom(a, bits)
		if !p.Contains(a) {
			t.Fatalf("prefix %v should contain its seed address %v", p, a)
		}
		if p.First().Mask(bits) != p.Addr() {
			t.Fatalf("First not aligned for %v", p)
		}
		if !p.Contains(p.Last()) {
			t.Fatalf("Last not contained for %v", p)
		}
		if bits < 128 {
			zero, one := p.Children()
			if !p.ContainsPrefix(zero) || !p.ContainsPrefix(one) {
				t.Fatalf("children of %v not contained", p)
			}
			if zero.Overlaps(one) {
				t.Fatalf("children of %v overlap", p)
			}
			if zero.Contains(a) == one.Contains(a) {
				t.Fatalf("exactly one child of %v must contain %v", p, a)
			}
		}
	}
}

func BenchmarkPrefixContains(b *testing.B) {
	p := MustParsePrefix("2001:db8::/32")
	a := MustParseAddr("2001:db8:1:2:3:4:5:6")
	for i := 0; i < b.N; i++ {
		if !p.Contains(a) {
			b.Fatal("should contain")
		}
	}
}
