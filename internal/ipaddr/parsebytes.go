package ipaddr

import (
	"bytes"
	"fmt"
)

// ParseAddrBytes parses an IPv6 address from a byte slice in any RFC 4291
// text form, exactly as ParseAddr does for strings, but without allocating
// on the success path: fields are scanned in place into fixed-size segment
// arrays, so a log-ingest loop can hand it bufio.Scanner sub-slices
// directly. It is maintained as an independent implementation of the same
// grammar; FuzzParse holds the two paths to byte-for-byte agreement.
func ParseAddrBytes(b []byte) (Addr, error) {
	if len(b) == 0 {
		return Addr{}, fmt.Errorf("ipaddr: empty address")
	}
	// Reject zones and port-ish forms outright.
	for _, c := range b {
		switch c {
		case '%', '[', ']', '/', ' ':
			return Addr{}, fmt.Errorf("ipaddr: invalid character in %q", b)
		}
	}

	var segs [8]uint16 // parsed segments
	n := 0             // segments parsed so far
	ellipsis := -1     // index in segs where "::" appeared
	rest := b

	// Leading "::".
	if len(rest) >= 2 && rest[0] == ':' && rest[1] == ':' {
		ellipsis = 0
		rest = rest[2:]
		if len(rest) == 0 {
			return Addr{}, nil // "::"
		}
	} else if rest[0] == ':' {
		return Addr{}, fmt.Errorf("ipaddr: address %q begins with lone colon", b)
	}

	for len(rest) > 0 {
		i := bytes.IndexByte(rest, ':')
		// An embedded IPv4 suffix occupies the final two segments.
		firstField := rest
		if i >= 0 {
			firstField = rest[:i]
		}
		if bytes.IndexByte(firstField, '.') >= 0 {
			v4, err := parseIPv4Bytes(rest)
			if err != nil {
				return Addr{}, fmt.Errorf("ipaddr: bad IPv4 suffix in %q: %v", b, err)
			}
			if n > 6 {
				return Addr{}, fmt.Errorf("ipaddr: too many segments in %q", b)
			}
			segs[n] = uint16(v4 >> 16)
			segs[n+1] = uint16(v4)
			n += 2
			break
		}
		var field []byte
		if i < 0 {
			field, rest = rest, nil
		} else {
			field, rest = rest[:i], rest[i+1:]
			if len(rest) == 0 && len(field) != 0 {
				// Trailing single colon is only valid as part of "::".
				return Addr{}, fmt.Errorf("ipaddr: address %q ends with lone colon", b)
			}
		}
		if len(field) == 0 {
			// "::" in the middle.
			if ellipsis >= 0 {
				return Addr{}, fmt.Errorf("ipaddr: multiple \"::\" in %q", b)
			}
			ellipsis = n
			continue
		}
		if len(field) > 4 {
			return Addr{}, fmt.Errorf("ipaddr: segment %q too long in %q", field, b)
		}
		var v uint32
		for _, c := range field {
			d, ok := hexVal(c)
			if !ok {
				return Addr{}, fmt.Errorf("ipaddr: bad hex digit %q in %q", string(c), b)
			}
			v = v<<4 | uint32(d)
		}
		if n == 8 {
			return Addr{}, fmt.Errorf("ipaddr: too many segments in %q", b)
		}
		segs[n] = uint16(v)
		n++
	}

	var out [8]uint16
	if ellipsis < 0 {
		if n != 8 {
			return Addr{}, fmt.Errorf("ipaddr: %q has %d segments, want 8", b, n)
		}
		out = segs
	} else {
		if n >= 8 {
			return Addr{}, fmt.Errorf("ipaddr: %q has no room for \"::\"", b)
		}
		// Expand the ellipsis with zeros.
		copy(out[:], segs[:ellipsis])
		copy(out[8-(n-ellipsis):], segs[ellipsis:n])
	}
	return AddrFromSegments(out), nil
}

// parseIPv4Bytes parses a dotted-quad IPv4 address into its 32-bit value,
// with the same strictness as the string path: exactly four octets, no
// empty or over-long octets, no leading zeros, each at most 255.
func parseIPv4Bytes(b []byte) (uint32, error) {
	var v uint32
	octets := 0
	start := 0
	for i := 0; i <= len(b); i++ {
		if i < len(b) && b[i] != '.' {
			continue
		}
		p := b[start:i]
		start = i + 1
		if octets == 4 {
			return 0, fmt.Errorf("need 4 octets, have more")
		}
		if len(p) == 0 || len(p) > 3 {
			return 0, fmt.Errorf("bad octet %q", p)
		}
		if len(p) > 1 && p[0] == '0' {
			return 0, fmt.Errorf("octet %q has leading zero", p)
		}
		var o uint32
		for _, c := range p {
			if c < '0' || c > '9' {
				return 0, fmt.Errorf("bad octet %q", p)
			}
			o = o*10 + uint32(c-'0')
		}
		if o > 255 {
			return 0, fmt.Errorf("octet %q out of range", p)
		}
		v = v<<8 | o
		octets++
	}
	if octets != 4 {
		return 0, fmt.Errorf("need 4 octets, have %d", octets)
	}
	return v, nil
}
