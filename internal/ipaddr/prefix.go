package ipaddr

import (
	"fmt"
	"strconv"
	"strings"

	"v6class/internal/uint128"
)

// Prefix is an IPv6 address prefix: a base address and a length in bits.
// A valid Prefix always has its address masked to the prefix length; use
// PrefixFrom (which masks) or ParsePrefix to construct one. The zero value is
// ::/0, the prefix covering the whole address space. Prefix is comparable and
// suitable as a map key.
type Prefix struct {
	addr Addr
	bits uint8
}

// PrefixFrom returns the prefix of the given length containing addr. The
// address is masked down to the prefix length; bits is clamped to [0,128].
func PrefixFrom(addr Addr, bits int) Prefix {
	if bits < 0 {
		bits = 0
	}
	if bits > 128 {
		bits = 128
	}
	return Prefix{addr: addr.Mask(bits), bits: uint8(bits)}
}

// Addr returns the prefix's base (masked) address.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length.
func (p Prefix) Bits() int { return int(p.bits) }

// Contains reports whether the prefix covers addr.
func (p Prefix) Contains(a Addr) bool {
	return a.Mask(int(p.bits)) == p.addr
}

// ContainsPrefix reports whether p covers all of q, i.e. q is equal to or
// more specific than p and lies within it.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.bits >= p.bits && q.addr.Mask(int(p.bits)) == p.addr
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.ContainsPrefix(q) || q.ContainsPrefix(p)
}

// First returns the numerically lowest address in the prefix (the base
// address).
func (p Prefix) First() Addr { return p.addr }

// Last returns the numerically highest address in the prefix.
func (p Prefix) Last() Addr {
	return Addr{u: p.addr.u.Or(uint128.Mask(int(p.bits)).Not())}
}

// NumAddresses returns the number of addresses the prefix spans, saturating
// at 2^64-1 for prefixes shorter than /64 (whose true size does not fit in a
// uint64). Callers needing exact sizes for short prefixes should use
// NumAddresses128.
func (p Prefix) NumAddresses() uint64 {
	host := 128 - int(p.bits)
	if host >= 64 {
		return ^uint64(0)
	}
	return uint64(1) << host
}

// NumAddresses128 returns the exact number of addresses spanned, as a
// uint128; a /0 spans 2^128 which saturates to Max.
func (p Prefix) NumAddresses128() uint128.Uint128 {
	host := 128 - int(p.bits)
	if host >= 128 {
		return uint128.Max
	}
	return uint128.One.Shl(uint(host))
}

// Parent returns the prefix one bit shorter that contains p. Parent of ::/0
// is ::/0 itself.
func (p Prefix) Parent() Prefix {
	if p.bits == 0 {
		return p
	}
	return PrefixFrom(p.addr, int(p.bits)-1)
}

// Children returns the two prefixes one bit longer that partition p. It
// panics for a /128.
func (p Prefix) Children() (zero, one Prefix) {
	if p.bits >= 128 {
		panic("ipaddr: /128 prefix has no children")
	}
	n := int(p.bits)
	zero = Prefix{addr: p.addr, bits: uint8(n + 1)}
	one = Prefix{addr: Addr{u: p.addr.u.SetBit(n, 1)}, bits: uint8(n + 1)}
	return zero, one
}

// Truncate returns p shortened to bits (a no-op if p is already as short or
// shorter).
func (p Prefix) Truncate(bits int) Prefix {
	if bits >= int(p.bits) {
		return p
	}
	return PrefixFrom(p.addr, bits)
}

// Supernet returns the smallest prefix containing both p and q.
func (p Prefix) Supernet(q Prefix) Prefix {
	n := p.addr.CommonPrefixLen(q.addr)
	if n > int(p.bits) {
		n = int(p.bits)
	}
	if n > int(q.bits) {
		n = int(q.bits)
	}
	return PrefixFrom(p.addr, n)
}

// Cmp orders prefixes by base address, then by length (shorter first). This
// is the in-order traversal order of a binary trie.
func (p Prefix) Cmp(q Prefix) int {
	if c := p.addr.Cmp(q.addr); c != 0 {
		return c
	}
	switch {
	case p.bits < q.bits:
		return -1
	case p.bits > q.bits:
		return 1
	}
	return 0
}

// String returns the canonical "addr/bits" representation.
func (p Prefix) String() string {
	return p.addr.String() + "/" + strconv.Itoa(int(p.bits))
}

// MustParsePrefix is like ParsePrefix but panics on error; intended for
// constants and tests.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses an "addr/bits" prefix. The address part may have bits
// set beyond the prefix length; they are masked off, matching the paper's
// treatment of prefixes as aggregates.
func ParsePrefix(s string) (Prefix, error) {
	i := strings.LastIndexByte(s, '/')
	if i < 0 {
		return Prefix{}, fmt.Errorf("ipaddr: prefix %q missing '/'", s)
	}
	a, err := ParseAddr(s[:i])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[i+1:])
	if err != nil || bits < 0 || bits > 128 {
		return Prefix{}, fmt.Errorf("ipaddr: bad prefix length %q", s[i+1:])
	}
	return PrefixFrom(a, bits), nil
}
