// Package ipaddr provides IPv6 address and prefix value types built on
// 128-bit integer arithmetic.
//
// It implements its own RFC 4291 text parsing and RFC 5952 canonical
// formatting rather than delegating to net/netip so that the rest of the
// repository can manipulate addresses as numbers: the temporal and spatial
// classifiers of Plonka & Berger (IMC 2015) need arbitrary-length prefix
// extraction, bit and nybble inspection, and dense iteration over prefix
// ranges, all of which map directly onto the underlying uint128 value.
package ipaddr

import (
	"fmt"
	"strings"

	"v6class/internal/uint128"
)

// Addr is an IPv6 address: an immutable 128-bit value. The zero value is the
// unspecified address "::". Addr is comparable and suitable as a map key.
type Addr struct {
	u uint128.Uint128
}

// AddrFrom128 returns the address with numeric value u.
func AddrFrom128(u uint128.Uint128) Addr { return Addr{u: u} }

// AddrFrom16 returns the address for the 16-byte big-endian representation b.
func AddrFrom16(b [16]byte) Addr { return Addr{u: uint128.FromBytes(b)} }

// AddrFromSegments returns the address assembled from eight 16-bit segments,
// most-significant first, i.e. the eight colon-separated pieces of the
// presentation format.
func AddrFromSegments(s [8]uint16) Addr {
	var hi, lo uint64
	for i := 0; i < 4; i++ {
		hi = hi<<16 | uint64(s[i])
		lo = lo<<16 | uint64(s[i+4])
	}
	return Addr{u: uint128.New(hi, lo)}
}

// Uint128 returns the address's numeric value.
func (a Addr) Uint128() uint128.Uint128 { return a.u }

// As16 returns the 16-byte big-endian representation of the address.
func (a Addr) As16() [16]byte { return a.u.Bytes() }

// Segments returns the eight 16-bit segments of the address,
// most-significant first.
func (a Addr) Segments() [8]uint16 {
	var s [8]uint16
	for i := 0; i < 4; i++ {
		s[i] = uint16(a.u.Hi >> (48 - 16*i))
		s[i+4] = uint16(a.u.Lo >> (48 - 16*i))
	}
	return s
}

// IsZero reports whether a is the unspecified address "::".
func (a Addr) IsZero() bool { return a.u.IsZero() }

// Cmp compares two addresses numerically.
func (a Addr) Cmp(b Addr) int { return a.u.Cmp(b.u) }

// Less reports whether a sorts before b numerically.
func (a Addr) Less(b Addr) bool { return a.u.Less(b.u) }

// Bit returns the bit at position i (0 = most significant).
func (a Addr) Bit(i int) uint { return a.u.Bit(i) }

// Nybble returns the 4-bit value at nybble position i, where position 0 is
// the most-significant hexadecimal character of the fully expanded address
// and position 31 the least. It panics if i is out of range.
func (a Addr) Nybble(i int) uint8 {
	if i < 0 || i > 31 {
		panic(fmt.Sprintf("ipaddr: nybble index %d out of range", i))
	}
	if i < 16 {
		return uint8(a.u.Hi>>(60-4*i)) & 0xf
	}
	return uint8(a.u.Lo>>(60-4*(i-16))) & 0xf
}

// IID returns the low 64 bits of the address, the interface identifier under
// the canonical /64 subnetting of RFC 4291.
func (a Addr) IID() uint64 { return a.u.Lo }

// NetworkID returns the high 64 bits of the address, the canonical /64
// network identifier.
func (a Addr) NetworkID() uint64 { return a.u.Hi }

// Next returns the numerically next address, wrapping at the top of the
// space.
func (a Addr) Next() Addr { return Addr{u: a.u.Add64(1)} }

// Prev returns the numerically previous address, wrapping at zero.
func (a Addr) Prev() Addr { return Addr{u: a.u.Sub64(1)} }

// CommonPrefixLen returns the length of the longest common prefix of a and b
// in bits (128 when equal).
func (a Addr) CommonPrefixLen(b Addr) int { return a.u.CommonPrefixLen(b.u) }

// Mask returns the address with all but its first n bits zeroed, i.e. the
// base address of its /n prefix.
func (a Addr) Mask(n int) Addr { return Addr{u: a.u.And(uint128.Mask(n))} }

// WithIID returns the address with its low 64 bits replaced by iid.
func (a Addr) WithIID(iid uint64) Addr {
	return Addr{u: uint128.New(a.u.Hi, iid)}
}

// String returns the RFC 5952 canonical text representation: lower-case
// hexadecimal, leading zeros suppressed, and the single longest run of two or
// more zero segments (leftmost on tie) compressed to "::".
func (a Addr) String() string {
	s := a.Segments()

	// Find the longest run of zero segments of length >= 2.
	bestStart, bestLen := -1, 1
	runStart := -1
	for i := 0; i <= 8; i++ {
		if i < 8 && s[i] == 0 {
			if runStart < 0 {
				runStart = i
			}
			continue
		}
		if runStart >= 0 {
			if n := i - runStart; n > bestLen {
				bestStart, bestLen = runStart, n
			}
			runStart = -1
		}
	}

	var b strings.Builder
	b.Grow(41)
	appendHex := func(v uint16) {
		const hexdigits = "0123456789abcdef"
		started := false
		for shift := 12; shift >= 0; shift -= 4 {
			d := (v >> shift) & 0xf
			if d != 0 || started || shift == 0 {
				b.WriteByte(hexdigits[d])
				started = true
			}
		}
	}
	for i := 0; i < 8; i++ {
		if i == bestStart {
			b.WriteString("::")
			i += bestLen - 1 // loop increment advances past the run
			continue
		}
		// "::" already supplies the separator for the segment after the run.
		if i > 0 && !(bestStart >= 0 && i == bestStart+bestLen) {
			b.WriteByte(':')
		}
		appendHex(s[i])
	}
	return b.String()
}

// Expanded returns the fully expanded 39-character representation with all
// leading zeros, e.g. "2001:0db8:0000:0000:0000:0000:0000:0001".
func (a Addr) Expanded() string {
	s := a.Segments()
	parts := make([]string, 8)
	for i, v := range s {
		parts[i] = fmt.Sprintf("%04x", v)
	}
	return strings.Join(parts, ":")
}

// HexString returns the address as 32 contiguous hexadecimal characters with
// no separators, the "fixed-width hex format" the paper's appendix suggests
// for sort-based aggregation.
func (a Addr) HexString() string {
	return fmt.Sprintf("%016x%016x", a.u.Hi, a.u.Lo)
}

// MustParseAddr is like ParseAddr but panics on error; intended for
// constants and tests.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// ParseAddr parses an IPv6 address in any RFC 4291 text form, including "::"
// compression and an embedded dotted-quad IPv4 suffix
// (e.g. "::ffff:192.0.2.1").
func ParseAddr(s string) (Addr, error) {
	orig := s
	if s == "" {
		return Addr{}, fmt.Errorf("ipaddr: empty address")
	}
	// Reject zones and port-ish forms outright.
	if strings.ContainsAny(s, "%[]/ ") {
		return Addr{}, fmt.Errorf("ipaddr: invalid character in %q", orig)
	}

	var segs []uint16 // parsed segments
	ellipsis := -1    // index in segs where "::" appeared
	rest := s

	// Leading "::".
	if strings.HasPrefix(rest, "::") {
		ellipsis = 0
		rest = rest[2:]
		if rest == "" {
			return Addr{}, nil // "::"
		}
	} else if strings.HasPrefix(rest, ":") {
		return Addr{}, fmt.Errorf("ipaddr: address %q begins with lone colon", orig)
	}

	for rest != "" {
		// An embedded IPv4 suffix occupies the final two segments.
		if strings.Contains(firstField(rest), ".") {
			v4, err := parseIPv4(rest)
			if err != nil {
				return Addr{}, fmt.Errorf("ipaddr: bad IPv4 suffix in %q: %v", orig, err)
			}
			segs = append(segs, uint16(v4>>16), uint16(v4))
			rest = ""
			break
		}
		i := strings.IndexByte(rest, ':')
		var field string
		if i < 0 {
			field, rest = rest, ""
		} else {
			field, rest = rest[:i], rest[i+1:]
			if rest == "" && field != "" {
				// Trailing single colon is only valid as part of "::".
				return Addr{}, fmt.Errorf("ipaddr: address %q ends with lone colon", orig)
			}
		}
		if field == "" {
			// "::" in the middle.
			if ellipsis >= 0 {
				return Addr{}, fmt.Errorf("ipaddr: multiple \"::\" in %q", orig)
			}
			ellipsis = len(segs)
			continue
		}
		if len(field) > 4 {
			return Addr{}, fmt.Errorf("ipaddr: segment %q too long in %q", field, orig)
		}
		var v uint32
		for _, c := range []byte(field) {
			d, ok := hexVal(c)
			if !ok {
				return Addr{}, fmt.Errorf("ipaddr: bad hex digit %q in %q", string(c), orig)
			}
			v = v<<4 | uint32(d)
		}
		segs = append(segs, uint16(v))
		if len(segs) > 8 {
			return Addr{}, fmt.Errorf("ipaddr: too many segments in %q", orig)
		}
	}

	if ellipsis < 0 {
		if len(segs) != 8 {
			return Addr{}, fmt.Errorf("ipaddr: %q has %d segments, want 8", orig, len(segs))
		}
	} else {
		if len(segs) >= 8 {
			return Addr{}, fmt.Errorf("ipaddr: %q has no room for \"::\"", orig)
		}
		// Expand the ellipsis with zeros.
		expanded := make([]uint16, 8)
		copy(expanded, segs[:ellipsis])
		copy(expanded[8-(len(segs)-ellipsis):], segs[ellipsis:])
		segs = expanded
	}

	var s8 [8]uint16
	copy(s8[:], segs)
	return AddrFromSegments(s8), nil
}

// firstField returns s up to (not including) its first ':'.
func firstField(s string) string {
	if i := strings.IndexByte(s, ':'); i >= 0 {
		return s[:i]
	}
	return s
}

// parseIPv4 parses a dotted-quad IPv4 address into its 32-bit value.
func parseIPv4(s string) (uint32, error) {
	var v uint32
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("need 4 octets, have %d", len(parts))
	}
	for _, p := range parts {
		if p == "" || len(p) > 3 {
			return 0, fmt.Errorf("bad octet %q", p)
		}
		if len(p) > 1 && p[0] == '0' {
			return 0, fmt.Errorf("octet %q has leading zero", p)
		}
		var o uint32
		for _, c := range []byte(p) {
			if c < '0' || c > '9' {
				return 0, fmt.Errorf("bad octet %q", p)
			}
			o = o*10 + uint32(c-'0')
		}
		if o > 255 {
			return 0, fmt.Errorf("octet %q out of range", p)
		}
		v = v<<8 | o
	}
	return v, nil
}

func hexVal(c byte) (uint8, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
