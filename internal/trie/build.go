package trie

import (
	"iter"
	"runtime"
	"sync"
	"sync/atomic"

	"v6class/internal/ipaddr"
)

// Bulk parallel construction. BuildFromSeq consumes several item streams —
// typically the engine's per-shard/per-row-range sweeps — on a bounded
// worker pool: items are routed by their top spineBits address bits into
// 2^spineBits partitions, each partition accumulating into a private
// sub-arena (so two workers never insert into the same trie without the
// partition's lock, and batching keeps that lock cold). The finished
// sub-tries are then rebased into one contiguous arena and their roots
// grafted under a spine of branch nodes covering the top bits.
//
// A radix trie's shape is a pure function of the item multiset, so the
// parallel build produces a tree bitwise-equivalent (counts, totals, walk
// order) to sequential insertion in any order.

const (
	// spineBits is the partition fan-out: 2^6 = 64 top-bit regions, enough
	// to keep partition locks uncontended well past any realistic worker
	// count while the spine stays trivially small.
	spineBits = 6
	numParts  = 1 << spineBits

	// buildBatch is the per-worker, per-partition buffer length: one lock
	// acquisition amortizes over this many inserts.
	buildBatch = 256
)

// buildPart is one top-bit partition under construction.
type buildPart struct {
	mu sync.Mutex
	tr Trie
}

// BuildFromSeq constructs a Trie by consuming the given item streams
// concurrently. Parallelism is bounded by workers (<= 0 means GOMAXPROCS)
// and by len(sources) — each stream is consumed by exactly one worker, so
// callers wanting an n-way build pass n independent sweeps (see the
// temporal ...Seqs forms). Items with Count == 0 are ignored, duplicates
// merge as repeated Add calls would, and the result is identical to
// sequential insertion.
func BuildFromSeq(workers int, sources ...iter.Seq[PrefixCount]) *Trie {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	out := &Trie{}
	if len(sources) == 0 {
		return out
	}
	if workers <= 1 {
		for _, src := range sources {
			for pc := range src {
				out.Add(pc.Prefix, pc.Count)
			}
		}
		return out
	}

	parts := make([]buildPart, numParts)
	// Items shorter than the spine (rare: a /0../5 aggregate) span several
	// partitions and are inserted sequentially after the graft.
	var shortMu sync.Mutex
	var shorts []PrefixCount

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var bufs [numParts][]PrefixCount
			flush := func(i int) {
				p := &parts[i]
				p.mu.Lock()
				for _, pc := range bufs[i] {
					p.tr.Add(pc.Prefix, pc.Count)
				}
				p.mu.Unlock()
				bufs[i] = bufs[i][:0]
			}
			for {
				si := int(next.Add(1)) - 1
				if si >= len(sources) {
					break
				}
				for pc := range sources[si] {
					if pc.Count == 0 {
						continue
					}
					if pc.Prefix.Bits() < spineBits {
						shortMu.Lock()
						shorts = append(shorts, pc)
						shortMu.Unlock()
						continue
					}
					i := int(pc.Prefix.Addr().Uint128().Hi >> (64 - spineBits))
					if bufs[i] == nil {
						bufs[i] = make([]PrefixCount, 0, buildBatch)
					}
					bufs[i] = append(bufs[i], pc)
					if len(bufs[i]) == buildBatch {
						flush(i)
					}
				}
			}
			for i := range bufs {
				if len(bufs[i]) > 0 {
					flush(i)
				}
			}
		}()
	}
	wg.Wait()

	out.graft(parts, workers)
	for _, pc := range shorts {
		out.Add(pc.Prefix, pc.Count)
	}
	return out
}

// graft merges the partition sub-tries into t: every sub-arena is copied
// into t's arena at a precomputed base (rebasing child references; the
// copies write disjoint slot ranges, so they run on the worker pool), then
// the sub-roots are attached in partition order under a spine of pure
// branch nodes over the top spineBits bits.
func (t *Trie) graft(parts []buildPart, workers int) {
	var extra uint64
	for i := range parts {
		if sub := &parts[i].tr; sub.root != nilRef {
			extra += uint64(sub.n - 1)
		}
	}
	if extra == 0 {
		return
	}
	t.reserve(extra)
	bases := make([]ref, len(parts))
	roots := make([]ref, len(parts))
	live := make([]int, 0, len(parts))
	cur := t.n
	for i := range parts {
		sub := &parts[i].tr
		if sub.root == nilRef {
			continue
		}
		bases[i] = cur - 1 // sub reference j lands at bases[i]+j
		roots[i] = bases[i] + sub.root
		cur += sub.n - 1
		live = append(live, i)
		t.nodes += sub.nodes
		t.items += sub.items
	}
	t.n = cur

	if workers > len(live) {
		workers = len(live)
	}
	var nextPart atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				li := int(nextPart.Add(1)) - 1
				if li >= len(live) {
					return
				}
				i := live[li]
				t.rebaseCopy(&parts[i].tr, bases[i])
			}
		}()
	}
	wg.Wait()

	for _, i := range live {
		t.attach(roots[i])
	}
}

// reserve grows the chunk table so references [t.n, t.n+extra) are
// addressable without further allocation.
func (t *Trie) reserve(extra uint64) {
	if t.n == 0 {
		t.chunks = append(t.chunks, make([]node, chunkSize))
		t.n = 1
	}
	if uint64(t.n)+extra > uint64(^ref(0)) {
		panic("trie: arena full")
	}
	need := int((uint64(t.n) + extra + chunkMask) >> chunkShift)
	for len(t.chunks) < need {
		t.chunks = append(t.chunks, make([]node, chunkSize))
	}
}

// rebaseCopy copies sub's nodes into t's (already reserved) arena: sub
// reference j lands at base+j with child references shifted by base.
func (t *Trie) rebaseCopy(sub *Trie, base ref) {
	for j := ref(1); j < sub.n; j++ {
		dst := t.at(base + j)
		*dst = *sub.at(j)
		if dst.child[0] != nilRef {
			dst.child[0] += base
		}
		if dst.child[1] != nilRef {
			dst.child[1] += base
		}
	}
}

// attach grafts an already-adopted subtree root into the trie. The
// subtree's region must be disjoint from every stored region — true by
// construction for top-bit partitions — so the walk only ever descends
// through spine nodes and terminates at an empty slot or a divergence
// (where it creates a pure branch node, building the spine).
func (t *Trie) attach(r ref) {
	if t.root == nilRef {
		t.root = r
		return
	}
	sub := t.at(r)
	link := &t.root
	for {
		n := t.at(*link)
		cpl := n.prefix.Addr().CommonPrefixLen(sub.prefix.Addr())
		if cpl > n.prefix.Bits() {
			cpl = n.prefix.Bits()
		}
		if cpl > sub.prefix.Bits() {
			cpl = sub.prefix.Bits()
		}
		switch {
		case cpl == n.prefix.Bits() && cpl < sub.prefix.Bits():
			// Descend through the spine toward the subtree's region.
			n.total += sub.total
			child := &n.child[sub.prefix.Addr().Bit(n.prefix.Bits())]
			if *child == nilRef {
				*child = r
				return
			}
			link = child

		case cpl < n.prefix.Bits() && cpl < sub.prefix.Bits():
			// Divergence: splice a spine branch above both.
			old, oldTotal := *link, n.total
			oldBit := n.prefix.Addr().Bit(cpl)
			br := t.newNode(ipaddr.PrefixFrom(sub.prefix.Addr(), cpl), 0, oldTotal+sub.total)
			bn := t.at(br)
			bn.child[oldBit] = old
			bn.child[oldBit^1] = r
			*link = br
			return

		default:
			// Equal prefixes or one containing the other would mean two
			// partitions shared a region, which the top-bit routing
			// forbids.
			panic("trie: overlapping graft regions")
		}
	}
}
