package trie

import (
	"math/rand"
	"testing"

	"v6class/internal/ipaddr"
)

// Property tests tying SubtreeCount and AggregateCounts to brute-force
// references on random prefix sets: the two answer the same question —
// "how much sits under a /p region" — from opposite directions, so they
// must agree with each other and with a flat scan of the items.

// randPrefixSet builds a random mixed-length prefix set, clustered so that
// branch nodes, pure-branch nodes and nested items all occur.
func randPrefixSet(r *rand.Rand, n int) []PrefixCount {
	out := make([]PrefixCount, 0, n)
	for i := 0; i < n; i++ {
		var buf [16]byte
		r.Read(buf[:])
		if r.Intn(2) == 0 {
			copy(buf[:6], []byte{0x20, 0x01, 0x0d, 0xb8, byte(r.Intn(4)), byte(r.Intn(8))})
		}
		bits := []int{32, 48, 56, 64, 96, 112, 128}[r.Intn(7)]
		out = append(out, PrefixCount{
			Prefix: ipaddr.PrefixFrom(ipaddr.AddrFrom16(buf), bits),
			Count:  uint64(1 + r.Intn(5)),
		})
	}
	return out
}

// bruteSubtreeCount sums the counts of stored items covered by p.
func bruteSubtreeCount(items []PrefixCount, p ipaddr.Prefix) uint64 {
	var sum uint64
	for _, it := range items {
		if p.ContainsPrefix(it.Prefix) {
			sum += it.Count
		}
	}
	return sum
}

func TestPropSubtreeCountMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for round := 0; round < 30; round++ {
		set := randPrefixSet(r, 60)
		var tr Trie
		for _, pc := range set {
			tr.Add(pc.Prefix, pc.Count)
		}
		items := tr.Items()

		// Query every stored prefix, each of its ancestors at a few
		// lengths, and random unrelated prefixes.
		var queries []ipaddr.Prefix
		for _, pc := range set {
			queries = append(queries, pc.Prefix)
			for _, up := range []int{0, 16, 33, 64} {
				if up < pc.Prefix.Bits() {
					queries = append(queries, pc.Prefix.Truncate(up))
				}
			}
		}
		for i := 0; i < 40; i++ {
			var buf [16]byte
			r.Read(buf[:])
			queries = append(queries, ipaddr.PrefixFrom(ipaddr.AddrFrom16(buf), r.Intn(129)))
		}
		for _, q := range queries {
			if got, want := tr.SubtreeCount(q), bruteSubtreeCount(items, q); got != want {
				t.Fatalf("round %d: SubtreeCount(%v) = %d, brute force %d", round, q, got, want)
			}
		}
	}
}

// TestPropSubtreeAggregateConsistency checks the two aggregate views agree
// on uniform-depth /128 sets: AggregateCounts[p] equals the number of
// distinct /p truncations (brute force), which equals the number of /p
// regions with a nonzero SubtreeCount, and those regions' SubtreeCounts
// partition Total.
func TestPropSubtreeAggregateConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for round := 0; round < 15; round++ {
		var tr Trie
		addrs := make(map[ipaddr.Addr]bool)
		for i := 0; i < 200; i++ {
			var buf [16]byte
			r.Read(buf[:])
			if r.Intn(3) > 0 {
				copy(buf[:6], []byte{0x26, 0x00, byte(r.Intn(2)), 0x10, byte(r.Intn(4)), 0})
			}
			a := ipaddr.AddrFrom16(buf)
			if !addrs[a] {
				addrs[a] = true
				tr.AddAddr(a)
			}
		}
		counts := tr.AggregateCounts()
		for _, p := range []int{0, 1, 16, 24, 32, 47, 48, 64, 96, 127, 128} {
			distinct := make(map[ipaddr.Prefix]bool)
			for a := range addrs {
				distinct[ipaddr.PrefixFrom(a, p)] = true
			}
			if counts[p] != uint64(len(distinct)) {
				t.Fatalf("round %d: AggregateCounts[%d] = %d, brute force %d",
					round, p, counts[p], len(distinct))
			}
			var sum uint64
			for q := range distinct {
				sc := tr.SubtreeCount(q)
				if sc == 0 {
					t.Fatalf("round %d: occupied /%d region %v has zero SubtreeCount", round, p, q)
				}
				sum += sc
			}
			if sum != tr.Total() {
				t.Fatalf("round %d: /%d SubtreeCounts sum to %d, Total %d", round, p, sum, tr.Total())
			}
		}
	}
}
