package trie

import (
	"iter"
	"math/rand"
	"slices"
	"testing"

	"v6class/internal/ipaddr"
)

// sameTrie asserts two tries are bit-for-bit identical in every observable
// respect: structure (String renders every node with its counts in walk
// order), items, totals, node counts and the full aggregate-count spectrum.
func sameTrie(t *testing.T, got, want *Trie, label string) {
	t.Helper()
	if g, w := got.String(), want.String(); g != w {
		t.Fatalf("%s: structure differs\ngot:\n%s\nwant:\n%s", label, g, w)
	}
	if got.Len() != want.Len() || got.Total() != want.Total() || got.Nodes() != want.Nodes() {
		t.Fatalf("%s: len/total/nodes = %d/%d/%d, want %d/%d/%d",
			label, got.Len(), got.Total(), got.Nodes(), want.Len(), want.Total(), want.Nodes())
	}
	if !slices.Equal(got.Items(), want.Items()) {
		t.Fatalf("%s: items differ", label)
	}
	if got.AggregateCounts() != want.AggregateCounts() {
		t.Fatalf("%s: aggregate counts differ", label)
	}
}

func itemsSeq(items []PrefixCount) iter.Seq[PrefixCount] {
	return func(yield func(PrefixCount) bool) {
		for _, pc := range items {
			if !yield(pc) {
				return
			}
		}
	}
}

// TestAbsorbEquivalence is the incremental-build equivalence property:
// Clone(base) + Absorb(delta) must equal a from-scratch build over the
// union, bit for bit, for random mixed-length populations and random
// base/delta splits — including overlapping items, empty bases and empty
// deltas.
func TestAbsorbEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for round := 0; round < 40; round++ {
		all := randPrefixSet(r, 10+r.Intn(120))
		// Random split point; rounds 0 and 1 force the degenerate splits.
		cut := r.Intn(len(all) + 1)
		if round == 0 {
			cut = 0 // empty base
		}
		if round == 1 {
			cut = len(all) // empty delta
		}
		baseItems, deltaItems := all[:cut], all[cut:]

		var base, delta Trie
		for _, pc := range baseItems {
			base.Add(pc.Prefix, pc.Count)
		}
		for _, pc := range deltaItems {
			delta.Add(pc.Prefix, pc.Count)
		}

		got := base.Clone()
		got.Absorb(&delta)

		// The reference: one sequential build over the full multiset.
		var want Trie
		for _, pc := range all {
			want.Add(pc.Prefix, pc.Count)
		}
		sameTrie(t, got, &want, "absorb vs sequential")

		// And the parallel build, which shares the same canonical-shape
		// guarantee.
		built := BuildFromSeq(4, itemsSeq(baseItems), itemsSeq(deltaItems))
		sameTrie(t, got, built, "absorb vs BuildFromSeq")
	}
}

// TestCloneIndependence proves a clone is a genuinely separate arena:
// mutating either side never leaks into the other.
func TestCloneIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	var orig Trie
	for _, pc := range randPrefixSet(r, 200) {
		orig.Add(pc.Prefix, pc.Count)
	}
	before := orig.String()

	cl := orig.Clone()
	sameTrie(t, cl, &orig, "fresh clone")

	// Mutate the clone heavily; the original must not move.
	for _, pc := range randPrefixSet(r, 300) {
		cl.Add(pc.Prefix, pc.Count)
	}
	if got := orig.String(); got != before {
		t.Fatal("mutating the clone changed the original")
	}

	// And the other way around.
	snapshot := cl.String()
	orig.Add(ipaddr.PrefixFrom(ipaddr.MustParseAddr("2001:db8::42"), 128), 1)
	if got := cl.String(); got != snapshot {
		t.Fatal("mutating the original changed the clone")
	}
}

// TestCloneEmpty covers the zero-value edge: cloning an empty trie yields
// an independent empty trie that accepts inserts.
func TestCloneEmpty(t *testing.T) {
	var empty Trie
	cl := empty.Clone()
	if cl.Len() != 0 || cl.Nodes() != 0 {
		t.Fatalf("clone of empty trie has %d items, %d nodes", cl.Len(), cl.Nodes())
	}
	cl.AddAddr(ipaddr.MustParseAddr("2001:db8::1"))
	if cl.Len() != 1 || empty.Len() != 0 {
		t.Fatalf("after insert: clone len %d (want 1), original len %d (want 0)", cl.Len(), empty.Len())
	}
	empty.Absorb(cl)
	if empty.Len() != 1 {
		t.Fatalf("absorb into zero-value trie: len %d, want 1", empty.Len())
	}
}
