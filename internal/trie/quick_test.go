package trie

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"v6class/internal/ipaddr"
)

// insertion is one randomized trie operation for property testing.
type insertion struct {
	Addr  [16]byte
	Bits  uint8 // prefix length in [0,128]
	Count uint8 // observation count in [0,255]
}

func (insertion) Generate(r *rand.Rand, size int) reflect.Value {
	var ins insertion
	r.Read(ins.Addr[:])
	// Cluster half the keys to force shared paths and branch nodes.
	if r.Intn(2) == 0 {
		copy(ins.Addr[:5], []byte{0x20, 0x01, 0x0d, 0xb8, byte(r.Intn(2))})
	}
	ins.Bits = uint8(r.Intn(129))
	ins.Count = uint8(r.Intn(6))
	return reflect.ValueOf(ins)
}

func (ins insertion) prefix() ipaddr.Prefix {
	return ipaddr.PrefixFrom(ipaddr.AddrFrom16(ins.Addr), int(ins.Bits))
}

// TestQuickTrieAccounting checks, for arbitrary insertion sequences, that
// Total is conserved, Len counts distinct nonzero prefixes, and the root
// subtree covers everything.
func TestQuickTrieAccounting(t *testing.T) {
	f := func(ops []insertion) bool {
		var tr Trie
		want := make(map[ipaddr.Prefix]uint64)
		var total uint64
		for _, op := range ops {
			tr.Add(op.prefix(), uint64(op.Count))
			if op.Count > 0 {
				want[op.prefix()] += uint64(op.Count)
				total += uint64(op.Count)
			}
		}
		if tr.Total() != total {
			return false
		}
		if tr.Len() != len(want) {
			return false
		}
		if total > 0 && tr.SubtreeCount(ipaddr.PrefixFrom(ipaddr.Addr{}, 0)) != total {
			return false
		}
		// Exact counts for every inserted prefix.
		for p, c := range want {
			if tr.Count(p) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestQuickLPMMatchesBruteForce checks longest-prefix match against a
// linear scan for arbitrary tables and queries.
func TestQuickLPMMatchesBruteForce(t *testing.T) {
	f := func(ops []insertion, queryRaw [16]byte) bool {
		var tr Trie
		prefixes := make(map[ipaddr.Prefix]bool)
		for _, op := range ops {
			if op.Count == 0 {
				continue
			}
			tr.Add(op.prefix(), uint64(op.Count))
			prefixes[op.prefix()] = true
		}
		q := ipaddr.AddrFrom16(queryRaw)
		var best ipaddr.Prefix
		found := false
		for p := range prefixes {
			if p.Contains(q) && (!found || p.Bits() > best.Bits()) {
				best, found = p, true
			}
		}
		got, _, ok := tr.LongestPrefixMatch(q)
		if ok != found {
			return false
		}
		return !found || got == best
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	// Also query addresses biased into the clustered region so matches
	// are common, not just misses.
	f2 := func(ops []insertion) bool {
		var tr Trie
		prefixes := make(map[ipaddr.Prefix]bool)
		for _, op := range ops {
			if op.Count == 0 {
				continue
			}
			tr.Add(op.prefix(), uint64(op.Count))
			prefixes[op.prefix()] = true
		}
		q := ipaddr.MustParseAddr("2001:db8::42")
		var best ipaddr.Prefix
		found := false
		for p := range prefixes {
			if p.Contains(q) && (!found || p.Bits() > best.Bits()) {
				best, found = p, true
			}
		}
		got, _, ok := tr.LongestPrefixMatch(q)
		return ok == found && (!found || got == best)
	}
	if err := quick.Check(f2, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

// TestQuickDensifyInvariants checks that for arbitrary address sets the
// dense prefixes are non-overlapping, meet the reporting floor, and cover
// only observed counts.
func TestQuickDensifyInvariants(t *testing.T) {
	f := func(ops []insertion) bool {
		var tr Trie
		var total uint64
		for _, op := range ops {
			// Force full addresses for density semantics.
			tr.AddAddr(ipaddr.AddrFrom16(op.Addr))
			total++
		}
		for _, cls := range []struct {
			n uint64
			p int
		}{{2, 112}, {3, 120}, {2, 64}} {
			out := tr.DensePrefixes(cls.n, cls.p)
			var covered uint64
			for i, pc := range out {
				if pc.Count < cls.n {
					return false
				}
				covered += pc.Count
				for j := i + 1; j < len(out); j++ {
					if pc.Prefix.Overlaps(out[j].Prefix) {
						return false
					}
				}
			}
			if covered > total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}

// TestQuickAggregateCountsShape checks the structural laws of n_p for
// arbitrary populations: monotone, at-most-doubling, endpoints.
func TestQuickAggregateCountsShape(t *testing.T) {
	f := func(ops []insertion) bool {
		var tr Trie
		distinct := make(map[ipaddr.Addr]bool)
		for _, op := range ops {
			a := ipaddr.AddrFrom16(op.Addr)
			tr.AddAddr(a)
			distinct[a] = true
		}
		c := tr.AggregateCounts()
		if len(distinct) == 0 {
			return c[0] == 0 && c[128] == 0
		}
		if c[0] != 1 || c[128] != uint64(len(distinct)) {
			return false
		}
		for p := 1; p <= 128; p++ {
			if c[p] < c[p-1] || c[p] > 2*c[p-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}
