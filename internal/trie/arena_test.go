package trie

import (
	"iter"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"v6class/internal/ipaddr"
)

// The arena ≡ pointer-reference equivalence suite: identical random insert
// sequences must produce bit-identical answers from every analysis on the
// arena trie and the preserved recursive reference (reference_test.go).

// checkEquivalence asserts that tr and ref agree on every analysis surface.
func checkEquivalence(t *testing.T, tr *Trie, ref *refTrie, addrs []ipaddr.Addr, prefixes []ipaddr.Prefix) {
	t.Helper()
	if tr.Len() != ref.Len() {
		t.Fatalf("Len: arena %d, reference %d", tr.Len(), ref.Len())
	}
	if tr.Nodes() != ref.Nodes() {
		t.Fatalf("Nodes: arena %d, reference %d", tr.Nodes(), ref.Nodes())
	}
	if tr.Total() != ref.Total() {
		t.Fatalf("Total: arena %d, reference %d", tr.Total(), ref.Total())
	}
	if got, want := tr.Items(), ref.Items(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Items (walk order): arena %v, reference %v", got, want)
	}
	if got, want := tr.AggregateCounts(), ref.AggregateCounts(); got != want {
		t.Fatalf("AggregateCounts: arena %v, reference %v", got, want)
	}
	for _, cls := range []struct {
		n uint64
		p int
	}{{1, 64}, {2, 112}, {3, 120}, {2, 48}} {
		if got, want := tr.DensePrefixes(cls.n, cls.p), ref.DensePrefixes(cls.n, cls.p); !reflect.DeepEqual(got, want) {
			t.Fatalf("DensePrefixes(%d,%d): arena %v, reference %v", cls.n, cls.p, got, want)
		}
		if got, want := tr.FixedLengthDense(cls.n, cls.p), ref.FixedLengthDense(cls.n, cls.p); !reflect.DeepEqual(got, want) {
			t.Fatalf("FixedLengthDense(%d,%d): arena %v, reference %v", cls.n, cls.p, got, want)
		}
	}
	for _, min := range []uint64{1, 2, 5, 50} {
		if got, want := tr.AguriAggregate(min), ref.AguriAggregate(min); !reflect.DeepEqual(got, want) {
			t.Fatalf("AguriAggregate(%d): arena %v, reference %v", min, got, want)
		}
	}
	for _, p := range prefixes {
		if got, want := tr.Count(p), ref.Count(p); got != want {
			t.Fatalf("Count(%v): arena %d, reference %d", p, got, want)
		}
		if got, want := tr.SubtreeCount(p), ref.SubtreeCount(p); got != want {
			t.Fatalf("SubtreeCount(%v): arena %d, reference %d", p, got, want)
		}
	}
	for _, a := range addrs {
		gp, gc, gok := tr.LongestPrefixMatch(a)
		wp, wc, wok := ref.LongestPrefixMatch(a)
		if gp != wp || gc != wc || gok != wok {
			t.Fatalf("LongestPrefixMatch(%v): arena (%v,%d,%v), reference (%v,%d,%v)", a, gp, gc, gok, wp, wc, wok)
		}
		if got, want := tr.MaxCommonPrefixLen(a), ref.MaxCommonPrefixLen(a); got != want {
			t.Fatalf("MaxCommonPrefixLen(%v): arena %d, reference %d", a, got, want)
		}
	}
}

// TestPropArenaMatchesReference drives both implementations with random
// mixed-length insert sequences (duplicates, nested prefixes, clustered and
// scattered addresses) and requires full agreement.
func TestPropArenaMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for round := 0; round < 25; round++ {
		set := randPrefixSet(r, 50+r.Intn(300))
		var tr Trie
		var ref refTrie
		for _, pc := range set {
			tr.Add(pc.Prefix, pc.Count)
			ref.Add(pc.Prefix, pc.Count)
		}
		var addrs []ipaddr.Addr
		var prefixes []ipaddr.Prefix
		for _, pc := range set[:10] {
			addrs = append(addrs, pc.Prefix.Addr())
			prefixes = append(prefixes, pc.Prefix, pc.Prefix.Truncate(r.Intn(pc.Prefix.Bits()+1)))
		}
		for i := 0; i < 10; i++ {
			var buf [16]byte
			r.Read(buf[:])
			addrs = append(addrs, ipaddr.AddrFrom16(buf))
			prefixes = append(prefixes, ipaddr.PrefixFrom(ipaddr.AddrFrom16(buf), r.Intn(129)))
		}
		checkEquivalence(t, &tr, &ref, addrs, prefixes)
	}
}

// TestPropArenaMatchesReferenceAddrs is the uniform-depth /128 version —
// the address-population shape the spatial classifier uses.
func TestPropArenaMatchesReferenceAddrs(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	for round := 0; round < 10; round++ {
		var tr Trie
		var ref refTrie
		var addrs []ipaddr.Addr
		for i := 0; i < 500; i++ {
			var buf [16]byte
			r.Read(buf[:])
			if r.Intn(3) > 0 {
				copy(buf[:6], []byte{0x20, 0x01, 0x0d, 0xb8, byte(r.Intn(4)), byte(r.Intn(8))})
			}
			a := ipaddr.AddrFrom16(buf)
			tr.AddAddr(a)
			ref.AddAddr(a)
			if i%29 == 0 {
				addrs = append(addrs, a)
			}
		}
		checkEquivalence(t, &tr, &ref, addrs, nil)
	}
}

// sliceSources splits items into n streams for BuildFromSeq.
func sliceSources(items []PrefixCount, n int) []iter.Seq[PrefixCount] {
	out := make([]iter.Seq[PrefixCount], 0, n)
	for i := 0; i < n; i++ {
		part := items[len(items)*i/n : len(items)*(i+1)/n]
		out = append(out, func(yield func(PrefixCount) bool) {
			for _, pc := range part {
				if !yield(pc) {
					return
				}
			}
		})
	}
	return out
}

// TestBuildFromSeqMatchesSequential checks the partitioned parallel build
// against plain sequential insertion, including short (< spineBits)
// prefixes, duplicates across sources, and zero counts.
func TestBuildFromSeqMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	for round := 0; round < 10; round++ {
		items := randPrefixSet(r, 2000)
		// Salt in edge cases: short prefixes spanning partitions, an
		// explicit duplicate in two different sources, a zero count.
		items = append(items,
			PrefixCount{Prefix: ipaddr.PrefixFrom(ipaddr.MustParseAddr("2001:db8::"), 3), Count: 7},
			PrefixCount{Prefix: ipaddr.PrefixFrom(ipaddr.Addr{}, 0), Count: 2},
			PrefixCount{Prefix: ipaddr.MustParsePrefix("2600::/5"), Count: 1},
			PrefixCount{Prefix: ipaddr.MustParsePrefix("2001:db8::/64"), Count: 0},
			PrefixCount{Prefix: ipaddr.MustParsePrefix("fe80::1/128"), Count: 1},
			PrefixCount{Prefix: ipaddr.MustParsePrefix("fe80::1/128"), Count: 1},
		)
		var want Trie
		for _, pc := range items {
			want.Add(pc.Prefix, pc.Count)
		}
		for _, nsrc := range []int{1, 3, 8} {
			got := BuildFromSeq(4, sliceSources(items, nsrc)...)
			if got.Len() != want.Len() || got.Total() != want.Total() || got.Nodes() != want.Nodes() {
				t.Fatalf("round %d, %d sources: got len=%d total=%d nodes=%d, want len=%d total=%d nodes=%d",
					round, nsrc, got.Len(), got.Total(), got.Nodes(), want.Len(), want.Total(), want.Nodes())
			}
			if !reflect.DeepEqual(got.Items(), want.Items()) {
				t.Fatalf("round %d, %d sources: items diverge", round, nsrc)
			}
			if got.AggregateCounts() != want.AggregateCounts() {
				t.Fatalf("round %d, %d sources: aggregate counts diverge", round, nsrc)
			}
			if !reflect.DeepEqual(got.DensePrefixes(2, 112), want.DensePrefixes(2, 112)) {
				t.Fatalf("round %d, %d sources: dense prefixes diverge", round, nsrc)
			}
			if !reflect.DeepEqual(got.AguriAggregate(5), want.AguriAggregate(5)) {
				t.Fatalf("round %d, %d sources: aguri diverges", round, nsrc)
			}
		}
	}
}

// TestBuildFromSeqParallelRace forces the concurrent build path with more
// workers than cores would otherwise grant and verifies the result under
// the race detector: many sources, overlapping key ranges, sustained
// contention on the partition locks.
func TestBuildFromSeqParallelRace(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	r := rand.New(rand.NewSource(80))
	items := randPrefixSet(r, 20000)
	var want Trie
	for _, pc := range items {
		want.Add(pc.Prefix, pc.Count)
	}
	// Every source walks a strided view of the full set, so all sources
	// hit all partitions and duplicates merge across workers.
	const nsrc = 16
	sources := make([]iter.Seq[PrefixCount], nsrc)
	for s := 0; s < nsrc; s++ {
		s := s
		sources[s] = func(yield func(PrefixCount) bool) {
			for i := s; i < len(items); i += nsrc {
				if !yield(items[i]) {
					return
				}
			}
		}
	}
	var wg sync.WaitGroup
	results := make([]*Trie, 4)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = BuildFromSeq(8, sources...)
		}(g)
	}
	wg.Wait()
	for g, got := range results {
		if got.Len() != want.Len() || got.Total() != want.Total() || got.Nodes() != want.Nodes() {
			t.Fatalf("build %d: got len=%d total=%d nodes=%d, want len=%d total=%d nodes=%d",
				g, got.Len(), got.Total(), got.Nodes(), want.Len(), want.Total(), want.Nodes())
		}
		if !reflect.DeepEqual(got.Items(), want.Items()) {
			t.Fatalf("build %d: items diverge from sequential insertion", g)
		}
		if got.AggregateCounts() != want.AggregateCounts() {
			t.Fatalf("build %d: aggregate counts diverge", g)
		}
	}
}

// TestArenaDeepChain exercises the explicit traversal stacks at their bound:
// a maximal-depth chain of nested prefixes (one item per length).
func TestArenaDeepChain(t *testing.T) {
	var tr Trie
	var ref refTrie
	base := ipaddr.MustParseAddr("2001:db8::1")
	one := ipaddr.MustParseAddr("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff")
	for bits := 0; bits <= 128; bits++ {
		tr.Add(ipaddr.PrefixFrom(base, bits), 1)
		ref.Add(ipaddr.PrefixFrom(base, bits), 1)
	}
	// A second chain on the far side of the space forces branch points all
	// the way down.
	for bits := 1; bits <= 128; bits++ {
		tr.Add(ipaddr.PrefixFrom(one, bits), 1)
		ref.Add(ipaddr.PrefixFrom(one, bits), 1)
	}
	checkEquivalence(t, &tr, &ref, []ipaddr.Addr{base, one}, []ipaddr.Prefix{
		ipaddr.PrefixFrom(base, 64), ipaddr.PrefixFrom(one, 128), ipaddr.PrefixFrom(ipaddr.Addr{}, 0),
	})
}
