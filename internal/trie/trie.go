// Package trie implements a path-compressed binary radix (Patricia) trie
// keyed by IPv6 prefixes with per-item counts.
//
// It is the data structure behind the spatial classification of Plonka &
// Berger (IMC 2015): the aguri-style aggregation of Cho et al. (QofIS 2001),
// the "densify" operation of Section 5.2.3 that discovers least-specific
// dense prefixes, and the active-aggregate counts n_p of Kohler et al.
// (IMW 2002) from which Multi-Resolution Aggregate count ratios are derived.
//
// A Trie is not safe for concurrent mutation; concurrent readers are safe
// once construction is complete.
package trie

import (
	"fmt"
	"sort"
	"strings"

	"v6class/internal/ipaddr"
)

// node is a trie node. Internal nodes exist exactly at branch points (two
// children) or where an item (count > 0) was stored; path compression elides
// all other positions.
type node struct {
	prefix ipaddr.Prefix
	count  uint64 // count stored exactly at this prefix
	total  uint64 // count plus all descendants' counts (maintained on insert)
	child  [2]*node
}

// Trie is a prefix-keyed counting radix trie. The zero value is an empty
// trie ready for use.
type Trie struct {
	root  *node
	items int // number of distinct prefixes with count > 0
	nodes int // total node count, for introspection
}

// PrefixCount pairs a prefix with an observation count; it is the element
// type of aggregation and densification results.
type PrefixCount struct {
	Prefix ipaddr.Prefix
	Count  uint64
}

// Len returns the number of distinct prefixes stored (with nonzero count).
func (t *Trie) Len() int { return t.items }

// Nodes returns the total number of trie nodes, including pure branch nodes.
func (t *Trie) Nodes() int { return t.nodes }

// Total returns the sum of all stored counts.
func (t *Trie) Total() uint64 {
	if t.root == nil {
		return 0
	}
	return t.root.total
}

// AddAddr records one observation of the full address a (a /128 item).
func (t *Trie) AddAddr(a ipaddr.Addr) { t.Add(ipaddr.PrefixFrom(a, 128), 1) }

// Add records count observations of prefix p.
func (t *Trie) Add(p ipaddr.Prefix, count uint64) {
	if count == 0 {
		return
	}
	if t.root == nil {
		t.root = &node{prefix: p, count: count, total: count}
		t.items++
		t.nodes++
		return
	}
	t.root = t.insert(t.root, p, count)
}

func (t *Trie) insert(n *node, q ipaddr.Prefix, c uint64) *node {
	cpl := n.prefix.Addr().CommonPrefixLen(q.Addr())
	if cpl > n.prefix.Bits() {
		cpl = n.prefix.Bits()
	}
	if cpl > q.Bits() {
		cpl = q.Bits()
	}
	switch {
	case cpl == n.prefix.Bits() && cpl == q.Bits():
		// q is exactly this node.
		if n.count == 0 {
			t.items++
		}
		n.count += c
		n.total += c
		return n

	case cpl == n.prefix.Bits():
		// q lies below n; descend.
		n.total += c
		b := q.Addr().Bit(n.prefix.Bits())
		if n.child[b] == nil {
			n.child[b] = &node{prefix: q, count: c, total: c}
			t.items++
			t.nodes++
		} else {
			n.child[b] = t.insert(n.child[b], q, c)
		}
		return n

	case cpl == q.Bits():
		// q is an ancestor of n; splice a new item node above n.
		nn := &node{prefix: q, count: c, total: c + n.total}
		nn.child[n.prefix.Addr().Bit(cpl)] = n
		t.items++
		t.nodes++
		return nn

	default:
		// n and q diverge below cpl; create a pure branch node.
		br := &node{prefix: ipaddr.PrefixFrom(q.Addr(), cpl), total: n.total + c}
		br.child[n.prefix.Addr().Bit(cpl)] = n
		br.child[q.Addr().Bit(cpl)] = &node{prefix: q, count: c, total: c}
		t.items += 1
		t.nodes += 2
		return br
	}
}

// Count returns the count stored exactly at prefix p (not including more
// specific descendants).
func (t *Trie) Count(p ipaddr.Prefix) uint64 {
	n := t.root
	for n != nil {
		if !n.prefix.ContainsPrefix(p) {
			return 0
		}
		if n.prefix == p {
			return n.count
		}
		if n.prefix.Bits() >= p.Bits() {
			return 0
		}
		n = n.child[p.Addr().Bit(n.prefix.Bits())]
	}
	return 0
}

// SubtreeCount returns the sum of counts of all stored items covered by p
// (including p itself).
func (t *Trie) SubtreeCount(p ipaddr.Prefix) uint64 {
	n := t.root
	for n != nil {
		if p.ContainsPrefix(n.prefix) {
			return n.total
		}
		if !n.prefix.ContainsPrefix(p) {
			return 0
		}
		n = n.child[p.Addr().Bit(n.prefix.Bits())]
	}
	return 0
}

// LongestPrefixMatch returns the longest stored prefix (count > 0) that
// contains a, with its count. ok is false when no stored prefix covers a.
func (t *Trie) LongestPrefixMatch(a ipaddr.Addr) (p ipaddr.Prefix, count uint64, ok bool) {
	n := t.root
	for n != nil && n.prefix.Contains(a) {
		if n.count > 0 {
			p, count, ok = n.prefix, n.count, true
		}
		if n.prefix.Bits() == 128 {
			break
		}
		n = n.child[a.Bit(n.prefix.Bits())]
	}
	return p, count, ok
}

// MaxCommonPrefixLen returns the maximum common-prefix length, in bits,
// between a and any item stored in the trie; -1 for an empty trie. Because
// descending a binary trie by a's bits always reaches the subtree sharing
// the longest prefix, this is a single root-to-leaf walk.
func (t *Trie) MaxCommonPrefixLen(a ipaddr.Addr) int {
	n := t.root
	if n == nil {
		return -1
	}
	for {
		cpl := n.prefix.Addr().CommonPrefixLen(a)
		if cpl < n.prefix.Bits() {
			// Diverged inside this node's compressed path.
			return cpl
		}
		if n.prefix.Bits() == 128 {
			return 128
		}
		next := n.child[a.Bit(n.prefix.Bits())]
		if next == nil {
			// a's side is empty; the best match is this node's own
			// prefix (if it is an item) or anything below the other
			// child, all sharing exactly n.prefix.Bits() bits... unless
			// the node itself is an item whose prefix fully matches.
			return n.prefix.Bits()
		}
		n = next
	}
}

// Walk visits every stored item (count > 0) in lexicographic (in-order)
// prefix order. Returning false from fn stops the walk.
func (t *Trie) Walk(fn func(PrefixCount) bool) {
	t.walkNodes(t.root, func(n *node) bool {
		if n.count == 0 {
			return true
		}
		return fn(PrefixCount{Prefix: n.prefix, Count: n.count})
	})
}

// walkNodes visits every node in-order (parent before children; children in
// bit order — for a trie this yields prefixes in ipaddr.Prefix.Cmp order).
func (t *Trie) walkNodes(n *node, fn func(*node) bool) bool {
	if n == nil {
		return true
	}
	if !fn(n) {
		return false
	}
	return t.walkNodes(n.child[0], fn) && t.walkNodes(n.child[1], fn)
}

// Items returns all stored items in order. It is a convenience for tests and
// small result sets; prefer Walk for large tries.
func (t *Trie) Items() []PrefixCount {
	var out []PrefixCount
	t.Walk(func(pc PrefixCount) bool {
		out = append(out, pc)
		return true
	})
	return out
}

// AggregateCounts returns the active-aggregate counts n_p of Kohler et al.
// for all p in [0,128]: n_p is the number of distinct /p prefixes needed to
// cover the stored items. Items shorter than p count once (they are covered
// by a single /p region in the classifier's usage, where item sets are
// uniform-depth: all /128 addresses or all /64 prefixes).
//
// In a path-compressed binary trie each branch point at split bit s
// contributes exactly one additional /p aggregate for every p > s, so all
// 129 values come from one walk building a histogram of split bits.
func (t *Trie) AggregateCounts() [129]uint64 {
	var counts [129]uint64
	if t.root == nil {
		return counts
	}
	var hist [129]uint64 // hist[s]: branch points splitting at bit s
	t.walkNodes(t.root, func(n *node) bool {
		if n.child[0] != nil && n.child[1] != nil {
			hist[n.prefix.Bits()]++
		}
		return true
	})
	running := uint64(1)
	for p := 0; p <= 128; p++ {
		counts[p] = running
		if p < 128 {
			running += hist[p]
		}
	}
	return counts
}

// DensePrefixes implements the paper's densify operation (Section 5.2.3):
// given the density class parameters n and p (a prefix is "n@/p-dense" when
// a /p covers at least n observed items), it returns the least-specific,
// non-overlapping prefixes whose item density meets or exceeds n/2^(128-p),
// each carrying its covered item count. Prefixes with fewer than n items are
// skipped, mirroring the paper's reporting step. Results are in prefix order.
//
// The returned prefixes may be shorter than p (a /104 can be 2@/112-dense if
// it is dense enough overall); use FixedLengthDense for exactly-length-p
// classes.
func (t *Trie) DensePrefixes(n uint64, p int) []PrefixCount {
	if n == 0 {
		n = 1
	}
	var out []PrefixCount
	t.dense(t.root, n, p, &out)
	return out
}

// denseThreshold returns the minimum subtree count for a node at prefix
// length length to meet density n/2^(128-p), saturating on overflow.
func denseThreshold(n uint64, p, length int) uint64 {
	if length >= p {
		// 2^(p-length) <= 1: any single observation meets the density,
		// but the reporting floor of n still applies at the call site.
		return 1
	}
	shift := uint(p - length)
	if shift >= 64 || n > (^uint64(0))>>shift {
		return ^uint64(0) // unreachable density for so short a prefix
	}
	return n << shift
}

func (t *Trie) dense(nd *node, n uint64, p int, out *[]PrefixCount) {
	if nd == nil {
		return
	}
	if nd.total < n {
		// No descendant can reach the reporting floor.
		return
	}
	if nd.total >= denseThreshold(n, p, nd.prefix.Bits()) {
		*out = append(*out, PrefixCount{Prefix: nd.prefix, Count: nd.total})
		return
	}
	t.dense(nd.child[0], n, p, out)
	t.dense(nd.child[1], n, p, out)
}

// FixedLengthDense returns every length-p prefix covering at least n items,
// i.e. the paper's "n@/p-dense" class with the prefix length fixed, along
// with covered item counts, in prefix order. This matches the paper's
// shortcut of inserting items pre-truncated to /p.
func (t *Trie) FixedLengthDense(n uint64, p int) []PrefixCount {
	var out []PrefixCount
	t.fixedDense(t.root, n, p, &out)
	return out
}

func (t *Trie) fixedDense(nd *node, n uint64, p int, out *[]PrefixCount) {
	if nd == nil || nd.total < n {
		return
	}
	if nd.prefix.Bits() >= p {
		// The whole subtree lies within one /p; its covering prefix is the
		// node's truncation. (An ancestor cannot have emitted it: ancestors
		// are shorter than p or we would have stopped there.)
		*out = append(*out, PrefixCount{Prefix: nd.prefix.Truncate(p), Count: nd.total})
		return
	}
	t.fixedDense(nd.child[0], n, p, out)
	t.fixedDense(nd.child[1], n, p, out)
}

// AguriAggregate performs the aggregation of Cho et al.: items whose counts
// are below minCount are merged upward into ancestors until the accumulated
// count reaches minCount; the root absorbs any remainder. The result is the
// aggregated traffic profile in prefix order. The trie itself is not
// modified.
//
// Callers expressing the aguri threshold as a fraction of total observations
// should pass minCount = ceil(fraction * t.Total()).
func (t *Trie) AguriAggregate(minCount uint64) []PrefixCount {
	if minCount == 0 {
		minCount = 1
	}
	var out []PrefixCount
	rem := t.aguri(t.root, minCount, &out)
	if rem > 0 {
		// Remainder aggregates to the root of the address space.
		out = append(out, PrefixCount{Prefix: ipaddr.PrefixFrom(ipaddr.Addr{}, 0), Count: rem})
	}
	// Emit in prefix order: the recursion appends children before parents
	// (post-order); re-sort for a stable, readable profile.
	sortPrefixCounts(out)
	return out
}

// aguri returns the count that could not be emitted within nd's subtree and
// must aggregate into nd's ancestors.
func (t *Trie) aguri(nd *node, minCount uint64, out *[]PrefixCount) uint64 {
	if nd == nil {
		return 0
	}
	acc := nd.count
	acc += t.aguri(nd.child[0], minCount, out)
	acc += t.aguri(nd.child[1], minCount, out)
	if acc >= minCount {
		*out = append(*out, PrefixCount{Prefix: nd.prefix, Count: acc})
		return 0
	}
	return acc
}

func sortPrefixCounts(s []PrefixCount) {
	sort.Slice(s, func(i, j int) bool { return s[i].Prefix.Cmp(s[j].Prefix) < 0 })
}

// String renders the trie structure for debugging: one node per line,
// indented by tree depth, annotated with counts.
func (t *Trie) String() string {
	var b strings.Builder
	var rec func(n *node, depth int)
	rec = func(n *node, depth int) {
		if n == nil {
			return
		}
		fmt.Fprintf(&b, "%s%v count=%d total=%d\n", strings.Repeat("  ", depth), n.prefix, n.count, n.total)
		rec(n.child[0], depth+1)
		rec(n.child[1], depth+1)
	}
	rec(t.root, 0)
	return b.String()
}
