// Package trie implements a path-compressed binary radix (Patricia) trie
// keyed by IPv6 prefixes with per-item counts.
//
// It is the data structure behind the spatial classification of Plonka &
// Berger (IMC 2015): the aguri-style aggregation of Cho et al. (QofIS 2001),
// the "densify" operation of Section 5.2.3 that discovers least-specific
// dense prefixes, and the active-aggregate counts n_p of Kohler et al.
// (IMW 2002) from which Multi-Resolution Aggregate count ratios are derived.
//
// # Storage layout
//
// Nodes live in an index-based arena: fixed-size chunks of []node addressed
// by uint32 references, with reference 0 reserved as the nil sentinel.
// Children are indices, not pointers, so a million-item trie costs a few
// hundred chunk allocations instead of a million node allocations, nodes sit
// contiguously for cache-friendly walks, and the garbage collector sees a
// handful of slices instead of a pointer web. Chunks are never moved or
// resized once allocated, so node references (and Go pointers temporarily
// taken into the arena) stay valid across growth.
//
// Every operation — insert, point queries, walks, densify, aguri — is
// iterative with an explicit bounded stack (path compression caps the depth
// at 129), so deep tries cannot overflow the goroutine stack and walks
// allocate nothing.
//
// Bulk construction from streaming enumerations goes through BuildFromSeq
// (see build.go), which partitions the address space by top bits across a
// bounded worker pool and grafts the resulting sub-tries under a spine.
//
// A Trie is not safe for concurrent mutation; concurrent readers are safe
// once construction is complete.
package trie

import (
	"fmt"
	"sort"
	"strings"

	"v6class/internal/ipaddr"
)

// ref is an arena node reference; nilRef (0) is "no node".
type ref = uint32

const (
	nilRef ref = 0

	// chunkShift sizes arena chunks: 8192 nodes (~384 KiB) per chunk keeps
	// small tries cheap while a million-node trie needs ~128 allocations.
	chunkShift = 13
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1

	// maxDepth bounds every explicit traversal stack: path compression
	// means each level strictly lengthens the prefix, so a root-to-leaf
	// path has at most 129 nodes; +3 slack for pending siblings.
	maxDepth = 132
)

// node is a trie node. Internal nodes exist exactly at branch points (two
// children) or where an item (count > 0) was stored; path compression elides
// all other positions.
type node struct {
	prefix ipaddr.Prefix
	count  uint64 // count stored exactly at this prefix
	total  uint64 // count plus all descendants' counts (maintained on insert)
	child  [2]ref
}

// Trie is a prefix-keyed counting radix trie. The zero value is an empty
// trie ready for use.
type Trie struct {
	chunks [][]node
	n      ref // allocated nodes, including the reserved sentinel slot 0
	root   ref
	items  int // number of distinct prefixes with count > 0
	nodes  int // total node count, for introspection
}

// PrefixCount pairs a prefix with an observation count; it is the element
// type of aggregation and densification results (and of BuildFromSeq input
// streams).
type PrefixCount struct {
	Prefix ipaddr.Prefix
	Count  uint64
}

// at returns the node for reference i. The pointer stays valid across
// arena growth (chunks are never moved), but not across concurrent
// mutation.
func (t *Trie) at(i ref) *node {
	return &t.chunks[i>>chunkShift][i&chunkMask]
}

// newNode appends a node to the arena and returns its reference.
func (t *Trie) newNode(p ipaddr.Prefix, count, total uint64) ref {
	if t.n == 0 {
		t.chunks = append(t.chunks, make([]node, chunkSize))
		t.n = 1 // slot 0 is the nil sentinel
	}
	i := t.n
	if i == ^ref(0) {
		panic("trie: arena full")
	}
	if int(i>>chunkShift) == len(t.chunks) {
		t.chunks = append(t.chunks, make([]node, chunkSize))
	}
	t.n++
	nd := t.at(i)
	nd.prefix, nd.count, nd.total = p, count, total
	nd.child[0], nd.child[1] = nilRef, nilRef
	t.nodes++
	return i
}

// Len returns the number of distinct prefixes stored (with nonzero count).
func (t *Trie) Len() int { return t.items }

// Nodes returns the total number of trie nodes, including pure branch nodes.
func (t *Trie) Nodes() int { return t.nodes }

// Total returns the sum of all stored counts.
func (t *Trie) Total() uint64 {
	if t.root == nilRef {
		return 0
	}
	return t.at(t.root).total
}

// AddAddr records one observation of the full address a (a /128 item).
func (t *Trie) AddAddr(a ipaddr.Addr) { t.Add(ipaddr.PrefixFrom(a, 128), 1) }

// Add records count observations of prefix p. The insert is one iterative
// root-to-leaf walk rewriting at most one link; ancestors' totals are bumped
// on the way down.
func (t *Trie) Add(p ipaddr.Prefix, count uint64) {
	if count == 0 {
		return
	}
	if t.root == nilRef {
		t.root = t.newNode(p, count, count)
		t.items++
		return
	}
	link := &t.root
	for {
		n := t.at(*link)
		cpl := n.prefix.Addr().CommonPrefixLen(p.Addr())
		if cpl > n.prefix.Bits() {
			cpl = n.prefix.Bits()
		}
		if cpl > p.Bits() {
			cpl = p.Bits()
		}
		switch {
		case cpl == n.prefix.Bits() && cpl == p.Bits():
			// p is exactly this node.
			if n.count == 0 {
				t.items++
			}
			n.count += count
			n.total += count
			return

		case cpl == n.prefix.Bits():
			// p lies below n; descend.
			n.total += count
			child := &n.child[p.Addr().Bit(n.prefix.Bits())]
			if *child == nilRef {
				// newNode may grow the chunk table but never moves
				// existing chunks, so child stays a valid slot.
				*child = t.newNode(p, count, count)
				t.items++
				return
			}
			link = child

		case cpl == p.Bits():
			// p is an ancestor of n; splice a new item node above n.
			old, oldTotal := *link, n.total
			oldBit := n.prefix.Addr().Bit(cpl)
			nn := t.newNode(p, count, count+oldTotal)
			t.at(nn).child[oldBit] = old
			*link = nn
			t.items++
			return

		default:
			// n and p diverge below cpl; create a pure branch node.
			old, oldTotal := *link, n.total
			oldBit := n.prefix.Addr().Bit(cpl)
			br := t.newNode(ipaddr.PrefixFrom(p.Addr(), cpl), 0, oldTotal+count)
			leaf := t.newNode(p, count, count)
			bn := t.at(br)
			bn.child[oldBit] = old
			bn.child[oldBit^1] = leaf
			*link = br
			t.items++
			return
		}
	}
}

// Count returns the count stored exactly at prefix p (not including more
// specific descendants).
func (t *Trie) Count(p ipaddr.Prefix) uint64 {
	i := t.root
	for i != nilRef {
		n := t.at(i)
		if !n.prefix.ContainsPrefix(p) {
			return 0
		}
		if n.prefix == p {
			return n.count
		}
		if n.prefix.Bits() >= p.Bits() {
			return 0
		}
		i = n.child[p.Addr().Bit(n.prefix.Bits())]
	}
	return 0
}

// SubtreeCount returns the sum of counts of all stored items covered by p
// (including p itself).
func (t *Trie) SubtreeCount(p ipaddr.Prefix) uint64 {
	i := t.root
	for i != nilRef {
		n := t.at(i)
		if p.ContainsPrefix(n.prefix) {
			return n.total
		}
		if !n.prefix.ContainsPrefix(p) {
			return 0
		}
		i = n.child[p.Addr().Bit(n.prefix.Bits())]
	}
	return 0
}

// LongestPrefixMatch returns the longest stored prefix (count > 0) that
// contains a, with its count. ok is false when no stored prefix covers a.
func (t *Trie) LongestPrefixMatch(a ipaddr.Addr) (p ipaddr.Prefix, count uint64, ok bool) {
	i := t.root
	for i != nilRef {
		n := t.at(i)
		if !n.prefix.Contains(a) {
			break
		}
		if n.count > 0 {
			p, count, ok = n.prefix, n.count, true
		}
		if n.prefix.Bits() == 128 {
			break
		}
		i = n.child[a.Bit(n.prefix.Bits())]
	}
	return p, count, ok
}

// MaxCommonPrefixLen returns the maximum common-prefix length, in bits,
// between a and any item stored in the trie; -1 for an empty trie. Because
// descending a binary trie by a's bits always reaches the subtree sharing
// the longest prefix, this is a single root-to-leaf walk.
func (t *Trie) MaxCommonPrefixLen(a ipaddr.Addr) int {
	i := t.root
	if i == nilRef {
		return -1
	}
	for {
		n := t.at(i)
		cpl := n.prefix.Addr().CommonPrefixLen(a)
		if cpl < n.prefix.Bits() {
			// Diverged inside this node's compressed path.
			return cpl
		}
		if n.prefix.Bits() == 128 {
			return 128
		}
		next := n.child[a.Bit(n.prefix.Bits())]
		if next == nilRef {
			// a's side is empty; the best match is this node's own prefix
			// (if it is an item) or anything below the other child, all
			// sharing exactly n.prefix.Bits() bits.
			return n.prefix.Bits()
		}
		i = next
	}
}

// Walk visits every stored item (count > 0) in lexicographic (in-order)
// prefix order. Returning false from fn stops the walk.
func (t *Trie) Walk(fn func(PrefixCount) bool) {
	t.walkNodes(func(n *node) bool {
		if n.count == 0 {
			return true
		}
		return fn(PrefixCount{Prefix: n.prefix, Count: n.count})
	})
}

// walkNodes visits every node in-order (parent before children; children in
// bit order — for a trie this yields prefixes in ipaddr.Prefix.Cmp order),
// iteratively on a bounded explicit stack.
func (t *Trie) walkNodes(fn func(*node) bool) bool {
	if t.root == nilRef {
		return true
	}
	var stack [maxDepth]ref
	sp := 1
	stack[0] = t.root
	for sp > 0 {
		sp--
		n := t.at(stack[sp])
		if !fn(n) {
			return false
		}
		// Push child 1 first so child 0 pops (and is visited) first.
		if n.child[1] != nilRef {
			stack[sp] = n.child[1]
			sp++
		}
		if n.child[0] != nilRef {
			stack[sp] = n.child[0]
			sp++
		}
	}
	return true
}

// Items returns all stored items in order. It is a convenience for tests and
// small result sets; prefer Walk for large tries.
func (t *Trie) Items() []PrefixCount {
	var out []PrefixCount
	t.Walk(func(pc PrefixCount) bool {
		out = append(out, pc)
		return true
	})
	return out
}

// AggregateCounts returns the active-aggregate counts n_p of Kohler et al.
// for all p in [0,128]: n_p is the number of distinct /p prefixes needed to
// cover the stored items. Items shorter than p count once (they are covered
// by a single /p region in the classifier's usage, where item sets are
// uniform-depth: all /128 addresses or all /64 prefixes).
//
// In a path-compressed binary trie each branch point at split bit s
// contributes exactly one additional /p aggregate for every p > s, so all
// 129 values come from one walk building a histogram of split bits.
func (t *Trie) AggregateCounts() [129]uint64 {
	var counts [129]uint64
	if t.root == nilRef {
		return counts
	}
	var hist [129]uint64 // hist[s]: branch points splitting at bit s
	t.walkNodes(func(n *node) bool {
		if n.child[0] != nilRef && n.child[1] != nilRef {
			hist[n.prefix.Bits()]++
		}
		return true
	})
	running := uint64(1)
	for p := 0; p <= 128; p++ {
		counts[p] = running
		if p < 128 {
			running += hist[p]
		}
	}
	return counts
}

// DensePrefixes implements the paper's densify operation (Section 5.2.3):
// given the density class parameters n and p (a prefix is "n@/p-dense" when
// a /p covers at least n observed items), it returns the least-specific,
// non-overlapping prefixes whose item density meets or exceeds n/2^(128-p),
// each carrying its covered item count. Prefixes with fewer than n items are
// skipped, mirroring the paper's reporting step. Results are in prefix order.
//
// The returned prefixes may be shorter than p (a /104 can be 2@/112-dense if
// it is dense enough overall); use FixedLengthDense for exactly-length-p
// classes.
func (t *Trie) DensePrefixes(n uint64, p int) []PrefixCount {
	if n == 0 {
		n = 1
	}
	var out []PrefixCount
	t.prunedWalk(func(nd *node) bool {
		if nd.total < n {
			// No descendant can reach the reporting floor.
			return false
		}
		if nd.total >= denseThreshold(n, p, nd.prefix.Bits()) {
			out = append(out, PrefixCount{Prefix: nd.prefix, Count: nd.total})
			return false
		}
		return true
	})
	return out
}

// prunedWalk visits nodes in preorder (parent first, child 0 before child
// 1) on a bounded explicit stack; fn's return controls whether the walk
// descends into the node's children. It is the shared traversal of the
// subtree-pruning sweeps (densify, fixed-length dense).
func (t *Trie) prunedWalk(fn func(*node) bool) {
	if t.root == nilRef {
		return
	}
	var stack [maxDepth]ref
	sp := 1
	stack[0] = t.root
	for sp > 0 {
		sp--
		n := t.at(stack[sp])
		if !fn(n) {
			continue
		}
		if n.child[1] != nilRef {
			stack[sp] = n.child[1]
			sp++
		}
		if n.child[0] != nilRef {
			stack[sp] = n.child[0]
			sp++
		}
	}
}

// denseThreshold returns the minimum subtree count for a node at prefix
// length length to meet density n/2^(128-p), saturating on overflow.
func denseThreshold(n uint64, p, length int) uint64 {
	if length >= p {
		// 2^(p-length) <= 1: any single observation meets the density,
		// but the reporting floor of n still applies at the call site.
		return 1
	}
	shift := uint(p - length)
	if shift >= 64 || n > (^uint64(0))>>shift {
		return ^uint64(0) // unreachable density for so short a prefix
	}
	return n << shift
}

// FixedLengthDense returns every length-p prefix covering at least n items,
// i.e. the paper's "n@/p-dense" class with the prefix length fixed, along
// with covered item counts, in prefix order. This matches the paper's
// shortcut of inserting items pre-truncated to /p.
func (t *Trie) FixedLengthDense(n uint64, p int) []PrefixCount {
	var out []PrefixCount
	t.prunedWalk(func(nd *node) bool {
		if nd.total < n {
			return false
		}
		if nd.prefix.Bits() >= p {
			// The whole subtree lies within one /p; its covering prefix is
			// the node's truncation. (An ancestor cannot have emitted it:
			// ancestors are shorter than p or we would have stopped there.)
			out = append(out, PrefixCount{Prefix: nd.prefix.Truncate(p), Count: nd.total})
			return false
		}
		return true
	})
	return out
}

// aguriFrame is one explicit-stack frame of the post-order aguri walk: acc
// accumulates the node's own count plus whatever its children could not
// emit.
type aguriFrame struct {
	idx   ref
	stage uint8
	acc   uint64
}

// AguriAggregate performs the aggregation of Cho et al.: items whose counts
// are below minCount are merged upward into ancestors until the accumulated
// count reaches minCount; the root absorbs any remainder. The result is the
// aggregated traffic profile in prefix order. The trie itself is not
// modified.
//
// Callers expressing the aguri threshold as a fraction of total observations
// should pass minCount = ceil(fraction * t.Total()).
func (t *Trie) AguriAggregate(minCount uint64) []PrefixCount {
	if minCount == 0 {
		minCount = 1
	}
	var out []PrefixCount
	var rem uint64
	if t.root != nilRef {
		// Post-order on an explicit frame stack: a child frame's
		// unemitted remainder is added to its parent's accumulator when
		// the child pops.
		var stack [maxDepth]aguriFrame
		sp := 1
		stack[0] = aguriFrame{idx: t.root}
		for sp > 0 {
			f := &stack[sp-1]
			n := t.at(f.idx)
			switch f.stage {
			case 0:
				f.stage = 1
				f.acc = n.count
				if n.child[0] != nilRef {
					stack[sp] = aguriFrame{idx: n.child[0]}
					sp++
				}
			case 1:
				f.stage = 2
				if n.child[1] != nilRef {
					stack[sp] = aguriFrame{idx: n.child[1]}
					sp++
				}
			default:
				var up uint64
				if f.acc >= minCount {
					out = append(out, PrefixCount{Prefix: n.prefix, Count: f.acc})
				} else {
					up = f.acc
				}
				sp--
				if sp > 0 {
					stack[sp-1].acc += up
				} else {
					rem = up
				}
			}
		}
	}
	if rem > 0 {
		// Remainder aggregates to the root of the address space.
		out = append(out, PrefixCount{Prefix: ipaddr.PrefixFrom(ipaddr.Addr{}, 0), Count: rem})
	}
	// Emit in prefix order: the post-order walk appends children before
	// parents; re-sort for a stable, readable profile.
	sortPrefixCounts(out)
	return out
}

func sortPrefixCounts(s []PrefixCount) {
	sort.Slice(s, func(i, j int) bool { return s[i].Prefix.Cmp(s[j].Prefix) < 0 })
}

// String renders the trie structure for debugging: one node per line,
// indented by tree depth, annotated with counts.
func (t *Trie) String() string {
	var b strings.Builder
	if t.root == nilRef {
		return ""
	}
	type frame struct {
		idx   ref
		depth int
	}
	stack := make([]frame, 1, maxDepth)
	stack[0] = frame{idx: t.root}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := t.at(f.idx)
		fmt.Fprintf(&b, "%s%v count=%d total=%d\n", strings.Repeat("  ", f.depth), n.prefix, n.count, n.total)
		if n.child[1] != nilRef {
			stack = append(stack, frame{idx: n.child[1], depth: f.depth + 1})
		}
		if n.child[0] != nilRef {
			stack = append(stack, frame{idx: n.child[0], depth: f.depth + 1})
		}
	}
	return b.String()
}
