package trie

import (
	"v6class/internal/ipaddr"
)

// refTrie is the original pointer-per-node recursive trie, preserved
// verbatim as the equivalence oracle for the arena implementation: the
// property suite inserts identical random sequences into both and requires
// bit-identical answers from every analysis.

type refNode struct {
	prefix ipaddr.Prefix
	count  uint64
	total  uint64
	child  [2]*refNode
}

type refTrie struct {
	root  *refNode
	items int
	nodes int
}

func (t *refTrie) Len() int { return t.items }

func (t *refTrie) Nodes() int { return t.nodes }

func (t *refTrie) Total() uint64 {
	if t.root == nil {
		return 0
	}
	return t.root.total
}

func (t *refTrie) AddAddr(a ipaddr.Addr) { t.Add(ipaddr.PrefixFrom(a, 128), 1) }

func (t *refTrie) Add(p ipaddr.Prefix, count uint64) {
	if count == 0 {
		return
	}
	if t.root == nil {
		t.root = &refNode{prefix: p, count: count, total: count}
		t.items++
		t.nodes++
		return
	}
	t.root = t.insert(t.root, p, count)
}

func (t *refTrie) insert(n *refNode, q ipaddr.Prefix, c uint64) *refNode {
	cpl := n.prefix.Addr().CommonPrefixLen(q.Addr())
	if cpl > n.prefix.Bits() {
		cpl = n.prefix.Bits()
	}
	if cpl > q.Bits() {
		cpl = q.Bits()
	}
	switch {
	case cpl == n.prefix.Bits() && cpl == q.Bits():
		if n.count == 0 {
			t.items++
		}
		n.count += c
		n.total += c
		return n

	case cpl == n.prefix.Bits():
		n.total += c
		b := q.Addr().Bit(n.prefix.Bits())
		if n.child[b] == nil {
			n.child[b] = &refNode{prefix: q, count: c, total: c}
			t.items++
			t.nodes++
		} else {
			n.child[b] = t.insert(n.child[b], q, c)
		}
		return n

	case cpl == q.Bits():
		nn := &refNode{prefix: q, count: c, total: c + n.total}
		nn.child[n.prefix.Addr().Bit(cpl)] = n
		t.items++
		t.nodes++
		return nn

	default:
		br := &refNode{prefix: ipaddr.PrefixFrom(q.Addr(), cpl), total: n.total + c}
		br.child[n.prefix.Addr().Bit(cpl)] = n
		br.child[q.Addr().Bit(cpl)] = &refNode{prefix: q, count: c, total: c}
		t.items += 1
		t.nodes += 2
		return br
	}
}

func (t *refTrie) Count(p ipaddr.Prefix) uint64 {
	n := t.root
	for n != nil {
		if !n.prefix.ContainsPrefix(p) {
			return 0
		}
		if n.prefix == p {
			return n.count
		}
		if n.prefix.Bits() >= p.Bits() {
			return 0
		}
		n = n.child[p.Addr().Bit(n.prefix.Bits())]
	}
	return 0
}

func (t *refTrie) SubtreeCount(p ipaddr.Prefix) uint64 {
	n := t.root
	for n != nil {
		if p.ContainsPrefix(n.prefix) {
			return n.total
		}
		if !n.prefix.ContainsPrefix(p) {
			return 0
		}
		n = n.child[p.Addr().Bit(n.prefix.Bits())]
	}
	return 0
}

func (t *refTrie) LongestPrefixMatch(a ipaddr.Addr) (p ipaddr.Prefix, count uint64, ok bool) {
	n := t.root
	for n != nil && n.prefix.Contains(a) {
		if n.count > 0 {
			p, count, ok = n.prefix, n.count, true
		}
		if n.prefix.Bits() == 128 {
			break
		}
		n = n.child[a.Bit(n.prefix.Bits())]
	}
	return p, count, ok
}

func (t *refTrie) MaxCommonPrefixLen(a ipaddr.Addr) int {
	n := t.root
	if n == nil {
		return -1
	}
	for {
		cpl := n.prefix.Addr().CommonPrefixLen(a)
		if cpl < n.prefix.Bits() {
			return cpl
		}
		if n.prefix.Bits() == 128 {
			return 128
		}
		next := n.child[a.Bit(n.prefix.Bits())]
		if next == nil {
			return n.prefix.Bits()
		}
		n = next
	}
}

func (t *refTrie) Walk(fn func(PrefixCount) bool) {
	t.walkNodes(t.root, func(n *refNode) bool {
		if n.count == 0 {
			return true
		}
		return fn(PrefixCount{Prefix: n.prefix, Count: n.count})
	})
}

func (t *refTrie) walkNodes(n *refNode, fn func(*refNode) bool) bool {
	if n == nil {
		return true
	}
	if !fn(n) {
		return false
	}
	return t.walkNodes(n.child[0], fn) && t.walkNodes(n.child[1], fn)
}

func (t *refTrie) Items() []PrefixCount {
	var out []PrefixCount
	t.Walk(func(pc PrefixCount) bool {
		out = append(out, pc)
		return true
	})
	return out
}

func (t *refTrie) AggregateCounts() [129]uint64 {
	var counts [129]uint64
	if t.root == nil {
		return counts
	}
	var hist [129]uint64
	t.walkNodes(t.root, func(n *refNode) bool {
		if n.child[0] != nil && n.child[1] != nil {
			hist[n.prefix.Bits()]++
		}
		return true
	})
	running := uint64(1)
	for p := 0; p <= 128; p++ {
		counts[p] = running
		if p < 128 {
			running += hist[p]
		}
	}
	return counts
}

func (t *refTrie) DensePrefixes(n uint64, p int) []PrefixCount {
	if n == 0 {
		n = 1
	}
	var out []PrefixCount
	t.dense(t.root, n, p, &out)
	return out
}

func (t *refTrie) dense(nd *refNode, n uint64, p int, out *[]PrefixCount) {
	if nd == nil {
		return
	}
	if nd.total < n {
		return
	}
	if nd.total >= denseThreshold(n, p, nd.prefix.Bits()) {
		*out = append(*out, PrefixCount{Prefix: nd.prefix, Count: nd.total})
		return
	}
	t.dense(nd.child[0], n, p, out)
	t.dense(nd.child[1], n, p, out)
}

func (t *refTrie) FixedLengthDense(n uint64, p int) []PrefixCount {
	var out []PrefixCount
	t.fixedDense(t.root, n, p, &out)
	return out
}

func (t *refTrie) fixedDense(nd *refNode, n uint64, p int, out *[]PrefixCount) {
	if nd == nil || nd.total < n {
		return
	}
	if nd.prefix.Bits() >= p {
		*out = append(*out, PrefixCount{Prefix: nd.prefix.Truncate(p), Count: nd.total})
		return
	}
	t.fixedDense(nd.child[0], n, p, out)
	t.fixedDense(nd.child[1], n, p, out)
}

func (t *refTrie) AguriAggregate(minCount uint64) []PrefixCount {
	if minCount == 0 {
		minCount = 1
	}
	var out []PrefixCount
	rem := t.aguri(t.root, minCount, &out)
	if rem > 0 {
		out = append(out, PrefixCount{Prefix: ipaddr.PrefixFrom(ipaddr.Addr{}, 0), Count: rem})
	}
	sortPrefixCounts(out)
	return out
}

func (t *refTrie) aguri(nd *refNode, minCount uint64, out *[]PrefixCount) uint64 {
	if nd == nil {
		return 0
	}
	acc := nd.count
	acc += t.aguri(nd.child[0], minCount, out)
	acc += t.aguri(nd.child[1], minCount, out)
	if acc >= minCount {
		*out = append(*out, PrefixCount{Prefix: nd.prefix, Count: acc})
		return 0
	}
	return acc
}
