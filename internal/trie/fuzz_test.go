package trie

import (
	"testing"

	"v6class/internal/ipaddr"
)

// FuzzTrie feeds arbitrary prefix/count streams into the arena trie and
// holds its bookkeeping invariants — and full agreement with the pointer
// reference — for every input. Each 18-byte record of the corpus encodes
// one insert: 16 address bytes, a prefix length byte (mod 129), a count
// byte (mod 7; zero counts must be no-ops).
func FuzzTrie(f *testing.F) {
	seed := make([]byte, 0, 18*4)
	for _, s := range []string{
		"2001:db8::1", "2001:db8::", "fe80::1", "::",
	} {
		var rec [18]byte
		a16 := ipaddr.MustParseAddr(s).As16()
		copy(rec[:16], a16[:])
		rec[16] = 64
		rec[17] = 1
		seed = append(seed, rec[:]...)
	}
	f.Add(seed)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var tr Trie
		var ref refTrie
		counts := make(map[ipaddr.Prefix]uint64)
		var total uint64
		var prefixes []ipaddr.Prefix
		for len(data) >= 18 {
			var buf [16]byte
			copy(buf[:], data[:16])
			bits := int(data[16]) % 129
			count := uint64(data[17] % 7)
			data = data[18:]

			p := ipaddr.PrefixFrom(ipaddr.AddrFrom16(buf), bits)
			tr.Add(p, count)
			ref.Add(p, count)
			if count > 0 {
				counts[p] += count
				total += count
			}
			if len(prefixes) < 64 {
				prefixes = append(prefixes, p)
			}

			// Bookkeeping must hold after every single insert, not just at
			// the end — a transiently broken total would be invisible to a
			// final-state check.
			if tr.Total() != total {
				t.Fatalf("Total = %d, want %d", tr.Total(), total)
			}
			if tr.Len() != len(counts) {
				t.Fatalf("Len = %d, want %d", tr.Len(), len(counts))
			}
		}

		// Items/nodes/total bookkeeping against the flat model.
		if tr.Len() != len(counts) || tr.Total() != total {
			t.Fatalf("final bookkeeping: len=%d total=%d, want len=%d total=%d",
				tr.Len(), tr.Total(), len(counts), total)
		}
		if root := ipaddr.PrefixFrom(ipaddr.Addr{}, 0); tr.SubtreeCount(root) != total {
			t.Fatalf("SubtreeCount(::/0) = %d, want Total %d", tr.SubtreeCount(root), total)
		}
		// Count ≡ SubtreeCount consistency: the exact count never exceeds
		// the subtree count, and both match the model / the reference.
		for _, p := range prefixes {
			c, sc := tr.Count(p), tr.SubtreeCount(p)
			if c != counts[p] {
				t.Fatalf("Count(%v) = %d, want %d", p, c, counts[p])
			}
			if c > sc {
				t.Fatalf("Count(%v) = %d exceeds SubtreeCount %d", p, c, sc)
			}
			if rc, rsc := ref.Count(p), ref.SubtreeCount(p); c != rc || sc != rsc {
				t.Fatalf("reference divergence at %v: (%d,%d) vs (%d,%d)", p, c, sc, rc, rsc)
			}
		}
		// Node accounting: a binary radix trie over items distinct prefixes
		// needs at most 2*items-1 nodes, and every analysis agrees with the
		// reference.
		if tr.Nodes() != ref.Nodes() || (tr.Len() > 0 && tr.Nodes() > 2*tr.Len()-1) {
			t.Fatalf("Nodes = %d (reference %d) for %d items", tr.Nodes(), ref.Nodes(), tr.Len())
		}
		gotItems, wantItems := tr.Items(), ref.Items()
		if len(gotItems) != len(wantItems) {
			t.Fatalf("walk yields %d items, reference %d", len(gotItems), len(wantItems))
		}
		for i := range gotItems {
			if gotItems[i] != wantItems[i] {
				t.Fatalf("walk item %d: %v, reference %v", i, gotItems[i], wantItems[i])
			}
			if i > 0 && gotItems[i-1].Prefix.Cmp(gotItems[i].Prefix) >= 0 {
				t.Fatalf("walk order violation at %d: %v !< %v", i, gotItems[i-1].Prefix, gotItems[i].Prefix)
			}
		}
		if tr.AggregateCounts() != ref.AggregateCounts() {
			t.Fatal("AggregateCounts diverges from reference")
		}
	})
}
