package trie

// The incremental-build path: a frozen population trie is extended into the
// next generation's trie by deep-copying its arena (Clone) and replaying a
// small delta trie into the copy (Absorb), so a daily census update costs
// O(|delta| * depth) inserts plus one memcpy of the existing arena instead
// of a from-scratch BuildFromSeq over the whole population. Because a
// path-compressed radix trie's shape is a pure function of the item
// multiset, the absorbed trie is logically identical — same structure, same
// counts, same walk order — to one built from scratch over the union (the
// equivalence property test in absorb_test.go holds it to that, node for
// node).

// Clone returns a deep copy of the trie: an independent arena with the same
// node layout, so mutating the clone (Add, Absorb) never disturbs the
// original. Readers of the original may run concurrently with Clone; the
// original must not be mutated during the copy.
func (t *Trie) Clone() *Trie {
	out := &Trie{n: t.n, root: t.root, items: t.items, nodes: t.nodes}
	if len(t.chunks) > 0 {
		// One backing slab for every chunk copy: a per-chunk make would cost
		// one allocation per 8192 nodes, which for a census-sized trie is
		// most of the incremental path's allocation budget. Chunks are
		// always full-length (newNode allocates them whole) and only ever
		// indexed, never appended to; the capacity cap keeps a future bug
		// from bleeding one chunk into the next.
		backing := make([]node, len(t.chunks)<<chunkShift)
		out.chunks = make([][]node, len(t.chunks))
		for i, ch := range t.chunks {
			c := backing[i<<chunkShift : (i+1)<<chunkShift : (i+1)<<chunkShift]
			copy(c, ch)
			out.chunks[i] = c
		}
	}
	return out
}

// Absorb merges every item of delta into t, as if each had been inserted
// with Add. The delta trie is not modified. Items present in both tries
// accumulate their counts, exactly as repeated Add calls would.
func (t *Trie) Absorb(delta *Trie) {
	if delta == nil {
		return
	}
	delta.Walk(func(pc PrefixCount) bool {
		t.Add(pc.Prefix, pc.Count)
		return true
	})
}
