package trie

import (
	"math/rand"
	"sort"
	"testing"

	"v6class/internal/ipaddr"
	"v6class/internal/uint128"
)

func addr(t *testing.T, s string) ipaddr.Addr {
	t.Helper()
	a, err := ipaddr.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func pfx(t *testing.T, s string) ipaddr.Prefix {
	t.Helper()
	p, err := ipaddr.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEmptyTrie(t *testing.T) {
	var tr Trie
	if tr.Len() != 0 || tr.Total() != 0 || tr.Nodes() != 0 {
		t.Error("empty trie should have zero len/total/nodes")
	}
	if _, _, ok := tr.LongestPrefixMatch(ipaddr.Addr{}); ok {
		t.Error("LPM on empty trie should miss")
	}
	counts := tr.AggregateCounts()
	for p, c := range counts {
		if c != 0 {
			t.Errorf("n_%d = %d on empty trie", p, c)
		}
	}
	if got := tr.DensePrefixes(2, 112); len(got) != 0 {
		t.Errorf("DensePrefixes on empty trie: %v", got)
	}
	if got := tr.AguriAggregate(1); len(got) != 0 {
		t.Errorf("AguriAggregate on empty trie: %v", got)
	}
}

func TestAddAndCount(t *testing.T) {
	var tr Trie
	a := addr(t, "2001:db8::1")
	b := addr(t, "2001:db8::2")
	tr.AddAddr(a)
	tr.AddAddr(a)
	tr.AddAddr(b)
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
	if tr.Total() != 3 {
		t.Errorf("Total = %d, want 3", tr.Total())
	}
	if got := tr.Count(ipaddr.PrefixFrom(a, 128)); got != 2 {
		t.Errorf("Count(a) = %d, want 2", got)
	}
	if got := tr.Count(ipaddr.PrefixFrom(b, 128)); got != 1 {
		t.Errorf("Count(b) = %d, want 1", got)
	}
	if got := tr.Count(pfx(t, "2001:db8::/64")); got != 0 {
		t.Errorf("Count of non-item prefix = %d, want 0", got)
	}
	if got := tr.SubtreeCount(pfx(t, "2001:db8::/64")); got != 3 {
		t.Errorf("SubtreeCount(/64) = %d, want 3", got)
	}
	if got := tr.SubtreeCount(pfx(t, "2001:db9::/64")); got != 0 {
		t.Errorf("SubtreeCount of foreign prefix = %d", got)
	}
	tr.Add(pfx(t, "2001:db8::/32"), 0) // zero count is a no-op
	if tr.Len() != 2 {
		t.Error("zero-count Add should not create an item")
	}
}

func TestInsertShapes(t *testing.T) {
	// Exercise all four insertion cases: same node, descend, splice above,
	// and branch.
	var tr Trie
	tr.Add(pfx(t, "2001:db8::/48"), 1)     // initial root
	tr.Add(pfx(t, "2001:db8::/48"), 1)     // same node
	tr.Add(pfx(t, "2001:db8:0:1::/64"), 1) // descend below
	tr.Add(pfx(t, "2001:db8::/32"), 1)     // splice above root
	tr.Add(pfx(t, "2001:db9::/48"), 1)     // branch
	want := map[string]uint64{
		"2001:db8::/32":     1,
		"2001:db8::/48":     2,
		"2001:db8:0:1::/64": 1,
		"2001:db9::/48":     1,
	}
	items := tr.Items()
	if len(items) != len(want) {
		t.Fatalf("got %d items: %v", len(items), items)
	}
	for _, pc := range items {
		if want[pc.Prefix.String()] != pc.Count {
			t.Errorf("item %v count %d, want %d", pc.Prefix, pc.Count, want[pc.Prefix.String()])
		}
	}
	// In-order means sorted by Prefix.Cmp.
	if !sort.SliceIsSorted(items, func(i, j int) bool { return items[i].Prefix.Cmp(items[j].Prefix) < 0 }) {
		t.Errorf("Walk order not sorted: %v", items)
	}
	if tr.Total() != 5 {
		t.Errorf("Total = %d", tr.Total())
	}
}

func TestLongestPrefixMatch(t *testing.T) {
	var tr Trie
	tr.Add(pfx(t, "2001:db8::/32"), 10)
	tr.Add(pfx(t, "2001:db8:1::/48"), 20)
	tr.Add(pfx(t, "2001:db8:1:2::/64"), 30)

	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"2001:db8:1:2::5", "2001:db8:1:2::/64", true},
		{"2001:db8:1:3::5", "2001:db8:1::/48", true},
		{"2001:db8:9::1", "2001:db8::/32", true},
		{"2001:db9::1", "", false},
	}
	for _, c := range cases {
		p, _, ok := tr.LongestPrefixMatch(addr(t, c.in))
		if ok != c.ok {
			t.Errorf("LPM(%s) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && p.String() != c.want {
			t.Errorf("LPM(%s) = %v, want %s", c.in, p, c.want)
		}
	}
	// A pure branch node must not match: build a trie whose root is a branch.
	var tr2 Trie
	tr2.AddAddr(addr(t, "2001:db8::1"))
	tr2.AddAddr(addr(t, "3fff::1"))
	if _, _, ok := tr2.LongestPrefixMatch(addr(t, "2001:db8::2")); ok {
		t.Error("branch-only ancestors must not be LPM results")
	}
	if _, _, ok := tr2.LongestPrefixMatch(addr(t, "2001:db8::1")); !ok {
		t.Error("exact /128 should match itself")
	}
}

// TestAggregateCountsPaperExample reproduces the /56-/57 worked example from
// Section 5.2.1: when every /56 splits into two occupied /57s the ratio is 2;
// when no /56 splits, the ratio is 1.
func TestAggregateCountsPaperExample(t *testing.T) {
	// 100 /56 prefixes, each with two addresses that differ at bit 56
	// (so every /56 splits at /57). A /56 step is 2^72, i.e. bit 8 of the
	// high word; bit 56 of the address is 2^71, i.e. bit 7 of the high word.
	var split Trie
	base := addr(t, "2001:db8::")
	step56 := func(i int) ipaddr.Addr {
		return ipaddr.AddrFrom128(base.Uint128().Add(uint128.New(uint64(i)<<8, 0)))
	}
	bit56 := uint128.New(1<<7, 0)
	for i := 0; i < 100; i++ {
		p56 := step56(i)
		split.AddAddr(p56)                                          // bit 56 = 0
		split.AddAddr(ipaddr.AddrFrom128(p56.Uint128().Add(bit56))) // bit 56 = 1
	}
	c := split.AggregateCounts()
	if c[56] != 100 {
		t.Fatalf("n_56 = %d, want 100", c[56])
	}
	if c[57] != 200 {
		t.Fatalf("n_57 = %d, want 200", c[57])
	}

	// Same 100 /56s, but both addresses on the same side of bit 56.
	var nosplit Trie
	for i := 0; i < 100; i++ {
		p56 := step56(i)
		nosplit.AddAddr(p56)
		nosplit.AddAddr(ipaddr.AddrFrom128(p56.Uint128().Add64(1))) // differ at bit 127
	}
	c2 := nosplit.AggregateCounts()
	if c2[56] != 100 || c2[57] != 100 {
		t.Fatalf("n_56 = %d n_57 = %d, want 100 and 100", c2[56], c2[57])
	}
	if c2[128] != 200 {
		t.Fatalf("n_128 = %d, want 200", c2[128])
	}
}

func TestAggregateCountsBoundaries(t *testing.T) {
	var tr Trie
	addrs := []string{"2001:db8::1", "2001:db8::2", "2600::1", "3fff:ffff::1"}
	for _, s := range addrs {
		tr.AddAddr(addr(t, s))
	}
	c := tr.AggregateCounts()
	if c[0] != 1 {
		t.Errorf("n_0 = %d, want 1", c[0])
	}
	if c[128] != 4 {
		t.Errorf("n_128 = %d, want 4", c[128])
	}
	// Monotone nondecreasing.
	for p := 1; p <= 128; p++ {
		if c[p] < c[p-1] {
			t.Errorf("n_%d=%d < n_%d=%d", p, c[p], p-1, c[p-1])
		}
		if c[p] > 2*c[p-1] {
			t.Errorf("n_%d=%d > 2*n_%d=%d", p, c[p], p-1, c[p-1])
		}
	}
}

// Property: against a brute-force reference, n_p equals the number of
// distinct /p truncations for random address sets.
func TestPropAggregateCountsMatchBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		var tr Trie
		addrs := make([]ipaddr.Addr, 0, 200)
		n := 1 + r.Intn(200)
		for i := 0; i < n; i++ {
			var b [16]byte
			r.Read(b[:])
			// Cluster addresses to create shared prefixes.
			if r.Intn(2) == 0 {
				copy(b[:6], []byte{0x20, 0x01, 0x0d, 0xb8, 0, byte(r.Intn(4))})
			}
			a := ipaddr.AddrFrom16(b)
			addrs = append(addrs, a)
			tr.AddAddr(a)
		}
		got := tr.AggregateCounts()
		for _, p := range []int{0, 1, 7, 16, 32, 48, 63, 64, 65, 96, 112, 127, 128} {
			set := make(map[ipaddr.Prefix]bool)
			for _, a := range addrs {
				set[ipaddr.PrefixFrom(a, p)] = true
			}
			if got[p] != uint64(len(set)) {
				t.Fatalf("trial %d: n_%d = %d, brute force %d", trial, p, got[p], len(set))
			}
		}
	}
}

// TestDensePaperExample reproduces Section 5.2.2's example: with exactly
// 2001:db8::1 and 2001:db8::4 active, 2001:db8::/112 is the sole 2@/112-dense
// prefix; there is one 2@/125-dense prefix but no 2@/126-dense prefix.
func TestDensePaperExample(t *testing.T) {
	var tr Trie
	tr.AddAddr(addr(t, "2001:db8::1"))
	tr.AddAddr(addr(t, "2001:db8::4"))

	d112 := tr.FixedLengthDense(2, 112)
	if len(d112) != 1 || d112[0].Prefix.String() != "2001:db8::/112" || d112[0].Count != 2 {
		t.Errorf("2@/112-dense = %v, want [2001:db8::/112 x2]", d112)
	}
	d125 := tr.FixedLengthDense(2, 125)
	if len(d125) != 1 || d125[0].Prefix.String() != "2001:db8::/125" {
		t.Errorf("2@/125-dense = %v, want [2001:db8::/125]", d125)
	}
	if d126 := tr.FixedLengthDense(2, 126); len(d126) != 0 {
		t.Errorf("2@/126-dense = %v, want none", d126)
	}

	// The least-specific densify variant reports the shortest prefix meeting
	// the 2/2^(128-112) density: a /113..../125 ancestor qualifies before
	// /112 does only if its density is sufficient; here the pair {1,4} first
	// becomes dense at /125 (8 addresses, 2 observed >= 2*2^(125-112)/2^13?).
	dp := tr.DensePrefixes(2, 125)
	if len(dp) != 1 || dp[0].Prefix.String() != "2001:db8::/125" {
		t.Errorf("DensePrefixes(2,125) = %v", dp)
	}
}

func TestDensePrefixesLeastSpecific(t *testing.T) {
	// 64 consecutive addresses fill 2001:db8::0/122 completely half-full at
	// /121: density 64/2^(128-121) = 0.5. For class 2@/122 (min density
	// 2/64): the /121 has 64 addrs covering 128 slots => density 0.5 >=
	// 1/32, so the /121 (or shorter) should be reported, demonstrating
	// least-specific aggregation above /122.
	var tr Trie
	base := addr(t, "2001:db8::")
	for i := 0; i < 64; i++ {
		tr.AddAddr(ipaddr.AddrFrom128(base.Uint128().Add64(uint64(i))))
	}
	out := tr.DensePrefixes(2, 122)
	if len(out) != 1 {
		t.Fatalf("DensePrefixes = %v", out)
	}
	if got := out[0].Prefix.Bits(); got > 122 {
		t.Errorf("reported prefix /%d, want least-specific (<= /122)", got)
	}
	if out[0].Count != 64 {
		t.Errorf("count = %d, want 64", out[0].Count)
	}
	// Non-overlap invariant.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[i].Prefix.Overlaps(out[j].Prefix) {
				t.Errorf("dense prefixes overlap: %v %v", out[i], out[j])
			}
		}
	}
}

func TestDenseReportingFloor(t *testing.T) {
	// A lone address is "dense" at any length by ratio, but the reporting
	// floor of n addresses must exclude it.
	var tr Trie
	tr.AddAddr(addr(t, "2001:db8::1"))
	if out := tr.DensePrefixes(2, 112); len(out) != 0 {
		t.Errorf("singleton should not be 2@-dense: %v", out)
	}
	if out := tr.FixedLengthDense(2, 112); len(out) != 0 {
		t.Errorf("singleton should not be fixed 2@/112-dense: %v", out)
	}
	if out := tr.FixedLengthDense(1, 112); len(out) != 1 {
		t.Errorf("singleton is 1@/112-dense: %v", out)
	}
}

func TestFixedLengthDenseMultipleBlocks(t *testing.T) {
	var tr Trie
	// Three /112 blocks with 3, 2, and 1 addresses.
	blocks := []struct {
		base string
		n    int
	}{
		{"2001:db8:0:0:0:0:0:0", 3},
		{"2001:db8:0:0:0:0:1:0", 2},
		{"2001:db8:0:0:0:0:2:0", 1},
	}
	for _, blk := range blocks {
		b := addr(t, blk.base)
		for i := 0; i < blk.n; i++ {
			tr.AddAddr(ipaddr.AddrFrom128(b.Uint128().Add64(uint64(i * 7))))
		}
	}
	out := tr.FixedLengthDense(2, 112)
	if len(out) != 2 {
		t.Fatalf("want 2 dense /112s, got %v", out)
	}
	if out[0].Prefix.String() != "2001:db8::/112" || out[0].Count != 3 {
		t.Errorf("first dense block = %v", out[0])
	}
	if out[1].Prefix.String() != "2001:db8::1:0/112" || out[1].Count != 2 {
		t.Errorf("second dense block = %v", out[1])
	}
}

// Property: FixedLengthDense agrees with a brute-force map over truncations.
func TestPropFixedLengthDenseMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 20; trial++ {
		var tr Trie
		addrs := make([]ipaddr.Addr, 0, 300)
		for i := 0; i < 300; i++ {
			var b [16]byte
			r.Read(b[:])
			copy(b[:13], []byte{0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, byte(r.Intn(2))})
			a := ipaddr.AddrFrom16(b)
			addrs = append(addrs, a)
			tr.AddAddr(a)
		}
		for _, p := range []int{104, 112, 120, 124} {
			for _, n := range []uint64{2, 3, 8} {
				counts := make(map[ipaddr.Prefix]uint64)
				for _, a := range addrs {
					counts[ipaddr.PrefixFrom(a, p)]++
				}
				var want []PrefixCount
				for pr, c := range counts {
					if c >= n {
						want = append(want, PrefixCount{Prefix: pr, Count: c})
					}
				}
				sort.Slice(want, func(i, j int) bool { return want[i].Prefix.Cmp(want[j].Prefix) < 0 })
				got := tr.FixedLengthDense(n, p)
				if len(got) != len(want) {
					t.Fatalf("n=%d p=%d: got %d dense, want %d", n, p, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("n=%d p=%d [%d]: got %v, want %v", n, p, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestAguriAggregate(t *testing.T) {
	var tr Trie
	// One heavy hitter and a spray of small counts under one /48.
	tr.Add(pfx(t, "2001:db8:1::/64"), 100)
	for i := 0; i < 10; i++ {
		tr.Add(pfx(t, "2001:db8:2::/64").Truncate(64), 0) // no-op guard
		a := addr(t, "2001:db8:2::").Uint128().Add64(uint64(i) << 32)
		tr.Add(ipaddr.PrefixFrom(ipaddr.AddrFrom128(a), 96), 1)
	}
	out := tr.AguriAggregate(10)
	var total uint64
	hasHeavy := false
	for _, pc := range out {
		total += pc.Count
		if pc.Prefix.String() == "2001:db8:1::/64" && pc.Count == 100 {
			hasHeavy = true
		}
		if pc.Count < 10 {
			t.Errorf("emitted %v below threshold", pc)
		}
	}
	if !hasHeavy {
		t.Errorf("heavy hitter not preserved: %v", out)
	}
	if total != tr.Total() {
		t.Errorf("aggregate total %d != trie total %d (counts must be conserved)", total, tr.Total())
	}
}

func TestAguriConservationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		var tr Trie
		for i := 0; i < 200; i++ {
			var b [16]byte
			r.Read(b[:])
			tr.Add(ipaddr.PrefixFrom(ipaddr.AddrFrom16(b), 1+r.Intn(128)), uint64(1+r.Intn(5)))
		}
		for _, min := range []uint64{1, 2, 7, 50, 10000} {
			out := tr.AguriAggregate(min)
			var total uint64
			for _, pc := range out {
				total += pc.Count
				if pc.Count < min && pc.Prefix.Bits() != 0 {
					t.Fatalf("emitted %v below threshold %d", pc, min)
				}
			}
			if total != tr.Total() {
				t.Fatalf("min=%d: total %d != %d", min, total, tr.Total())
			}
		}
	}
}

func TestTrieStringSmoke(t *testing.T) {
	var tr Trie
	tr.AddAddr(addr(t, "2001:db8::1"))
	tr.AddAddr(addr(t, "2001:db8::2"))
	s := tr.String()
	if s == "" {
		t.Error("String should render nodes")
	}
}

func BenchmarkAddAddr(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	addrs := make([]ipaddr.Addr, 100000)
	for i := range addrs {
		var buf [16]byte
		r.Read(buf[:])
		addrs[i] = ipaddr.AddrFrom16(buf)
	}
	b.ResetTimer()
	var tr Trie
	for i := 0; i < b.N; i++ {
		tr.AddAddr(addrs[i%len(addrs)])
	}
}

func BenchmarkAggregateCounts(b *testing.B) {
	var tr Trie
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		var buf [16]byte
		r.Read(buf[:])
		tr.AddAddr(ipaddr.AddrFrom16(buf))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.AggregateCounts()
	}
}

func TestMaxCommonPrefixLen(t *testing.T) {
	var tr Trie
	if tr.MaxCommonPrefixLen(addr(t, "2001:db8::1")) != -1 {
		t.Error("empty trie should return -1")
	}
	tr.AddAddr(addr(t, "2001:db8::1"))
	tr.AddAddr(addr(t, "2001:db8:0:1::5"))
	tr.AddAddr(addr(t, "2600::9"))
	cases := []struct {
		in   string
		want int
	}{
		{"2001:db8::1", 128},     // exact member
		{"2001:db8::3", 126},     // ::1 vs ::3 differ at bit 126
		{"2001:db8:0:1::5", 128}, // exact member
		{"2001:db8:0:2::5", 62},  // subnet 1 vs 2 differ within bits 48-63
		{"2600::8", 124},         // ::9 vs ::8 (1001 vs 1000) differ at bit 124...
		{"3fff::1", 3},           // 0010/0011 vs 0x2/0x3... depends
	}
	for _, c := range cases {
		got := tr.MaxCommonPrefixLen(addr(t, c.in))
		// Verify against brute force over the three members instead of
		// trusting hand-derived expectations.
		best := -1
		for _, m := range []string{"2001:db8::1", "2001:db8:0:1::5", "2600::9"} {
			if cpl := addr(t, m).CommonPrefixLen(addr(t, c.in)); cpl > best {
				best = cpl
			}
		}
		if got != best {
			t.Errorf("MaxCommonPrefixLen(%s) = %d, brute force %d", c.in, got, best)
		}
		_ = c.want
	}
}

func TestPropMaxCommonPrefixLenMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		var tr Trie
		members := make([]ipaddr.Addr, 0, 100)
		for i := 0; i < 100; i++ {
			var b [16]byte
			r.Read(b[:])
			if r.Intn(2) == 0 {
				copy(b[:6], []byte{0x20, 0x01, 0x0d, 0xb8, 0, byte(r.Intn(3))})
			}
			a := ipaddr.AddrFrom16(b)
			members = append(members, a)
			tr.AddAddr(a)
		}
		for q := 0; q < 100; q++ {
			var b [16]byte
			r.Read(b[:])
			if r.Intn(2) == 0 {
				copy(b[:6], []byte{0x20, 0x01, 0x0d, 0xb8, 0, byte(r.Intn(3))})
			}
			query := ipaddr.AddrFrom16(b)
			best := -1
			for _, m := range members {
				if cpl := m.CommonPrefixLen(query); cpl > best {
					best = cpl
				}
			}
			if got := tr.MaxCommonPrefixLen(query); got != best {
				t.Fatalf("MaxCommonPrefixLen(%v) = %d, want %d", query, got, best)
			}
		}
	}
}
