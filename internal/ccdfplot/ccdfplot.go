// Package ccdfplot renders complementary-CDF plots on log-log axes — the
// presentation of Figures 3 and 5a of Plonka & Berger (IMC 2015) — without
// external plotting libraries, as ASCII charts, SVG documents, or raw data
// rows.
package ccdfplot

import (
	"fmt"
	"math"
	"strings"

	"v6class/stats"
)

// Series is one named CCDF curve.
type Series struct {
	Label  string
	Points []stats.CCDFPoint
}

// Plot is a renderable log-log CCDF chart.
type Plot struct {
	Title  string
	XLabel string
	Series []Series
}

// markers are assigned to series in order for the ASCII rendering.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// bounds returns the maximum x value and minimum nonzero proportion across
// all series; ok is false when the plot has no points.
func (p Plot) bounds() (maxX, minY float64, ok bool) {
	minY = 1.0
	for _, s := range p.Series {
		for _, pt := range s.Points {
			if pt.Value > maxX {
				maxX = pt.Value
			}
			if pt.Proportion > 0 && pt.Proportion < minY {
				minY = pt.Proportion
			}
			ok = true
		}
	}
	return maxX, minY, ok
}

// ASCII renders the chart with a log10 x-axis and a log10 y-axis. Each
// series draws with its own marker; later series overwrite earlier ones on
// shared cells.
func (p Plot) ASCII() string {
	const width, height = 64, 16
	maxX, minY, ok := p.bounds()
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", p.Title)
	if !ok {
		b.WriteString("(empty plot)\n")
		return b.String()
	}
	decadesX := math.Max(1, math.Ceil(math.Log10(math.Max(maxX, 2))))
	decadesY := math.Max(1, math.Ceil(-math.Log10(minY)))

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.Series {
		marker := markers[si%len(markers)]
		for _, pt := range s.Points {
			if pt.Proportion <= 0 || pt.Value < 1 {
				continue
			}
			col := int(math.Log10(pt.Value) / decadesX * float64(width-1))
			row := int(-math.Log10(pt.Proportion) / decadesY * float64(height-1))
			if col < 0 {
				col = 0
			}
			if col >= width {
				col = width - 1
			}
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = marker
		}
		fmt.Fprintf(&b, "  [%c] %s\n", marker, s.Label)
	}
	for i, row := range grid {
		// Left axis label: the proportion at this row.
		prop := math.Pow(10, -float64(i)/float64(height-1)*decadesY)
		fmt.Fprintf(&b, "%8.1e |%s\n", prop, row)
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  1%s%.0e\n", "", strings.Repeat(" ", width-8), math.Pow(10, decadesX))
	if p.XLabel != "" {
		fmt.Fprintf(&b, "%8s  %s\n", "", p.XLabel)
	}
	return b.String()
}

// SVG renders the chart as a standalone SVG document with log-log axes.
func (p Plot) SVG() string {
	const (
		w, h           = 640, 420
		mLeft, mBottom = 70, 50
		mTop, mRight   = 30, 20
	)
	maxX, minY, ok := p.bounds()
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="14">%s</text>`+"\n", mLeft, xmlEscape(p.Title))
	if !ok {
		b.WriteString("</svg>\n")
		return b.String()
	}
	decadesX := math.Max(1, math.Ceil(math.Log10(math.Max(maxX, 2))))
	decadesY := math.Max(1, math.Ceil(-math.Log10(minY)))
	plotW, plotH := float64(w-mLeft-mRight), float64(h-mTop-mBottom)
	x := func(v float64) float64 {
		if v < 1 {
			v = 1
		}
		return float64(mLeft) + plotW*math.Log10(v)/decadesX
	}
	y := func(prop float64) float64 {
		if prop <= 0 {
			prop = math.Pow(10, -decadesY)
		}
		return float64(mTop) + plotH*(-math.Log10(prop))/decadesY
	}
	// Grid lines per decade.
	for d := 0.0; d <= decadesX; d++ {
		xx := float64(mLeft) + plotW*d/decadesX
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`+"\n", xx, mTop, xx, h-mBottom)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">1e%d</text>`+"\n", xx, h-mBottom+16, int(d))
	}
	for d := 0.0; d <= decadesY; d++ {
		yy := float64(mTop) + plotH*d/decadesY
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n", mLeft, yy, w-mRight, yy)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">1e-%d</text>`+"\n", mLeft-6, yy+4, int(d))
	}
	colors := []string{"#cc2222", "#2244cc", "#228833", "#aa7700", "#7722aa", "#116677"}
	for si, s := range p.Series {
		color := colors[si%len(colors)]
		var pb strings.Builder
		for _, pt := range s.Points {
			if pt.Proportion <= 0 {
				continue
			}
			fmt.Fprintf(&pb, "%.1f,%.1f ", x(pt.Value), y(pt.Proportion))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.TrimSpace(pb.String()), color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="%s">%s</text>`+"\n",
			w-mRight-180, mTop+14+14*si, color, xmlEscape(s.Label))
	}
	if p.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
			mLeft+int(plotW/2), h-8, xmlEscape(p.XLabel))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// DataRows renders tab-separated (series, value, proportion) rows for
// external tooling.
func (p Plot) DataRows() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n# series\tvalue\tproportion\n", p.Title)
	for _, s := range p.Series {
		for _, pt := range s.Points {
			fmt.Fprintf(&b, "%s\t%g\t%g\n", s.Label, pt.Value, pt.Proportion)
		}
	}
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
