package ccdfplot

import (
	"math/rand"
	"strings"
	"testing"

	"v6class/stats"
)

func samplePlot() Plot {
	r := rand.New(rand.NewSource(2))
	heavy := make([]float64, 2000)
	for i := range heavy {
		heavy[i] = float64(1 + int(r.ExpFloat64()*500))
	}
	light := make([]float64, 500)
	for i := range light {
		light[i] = float64(1 + r.Intn(5))
	}
	return Plot{
		Title:  "aggregate populations",
		XLabel: "Aggregate Population, log scale",
		Series: []Series{
			{Label: "heavy tail", Points: stats.CCDF(heavy)},
			{Label: "light", Points: stats.CCDF(light)},
		},
	}
}

func TestASCII(t *testing.T) {
	out := samplePlot().ASCII()
	if !strings.Contains(out, "aggregate populations") {
		t.Error("title missing")
	}
	for _, want := range []string{"[*] heavy tail", "[o] light", "1.0e+00", "Aggregate Population"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII missing %q:\n%s", want, out)
		}
	}
	// Both markers must appear on the grid.
	if strings.Count(out, "*") < 3 {
		t.Error("heavy-tail series not plotted")
	}
}

func TestSVG(t *testing.T) {
	svg := samplePlot().SVG()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not a complete SVG")
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("want 2 polylines, got %d", strings.Count(svg, "<polyline"))
	}
	if !strings.Contains(svg, "heavy tail") {
		t.Error("legend missing")
	}
	// Decade labels on both axes.
	if !strings.Contains(svg, ">1e0<") || !strings.Contains(svg, ">1e-1<") {
		t.Error("axis labels missing")
	}
}

func TestDataRows(t *testing.T) {
	rows := samplePlot().DataRows()
	lines := strings.Split(strings.TrimSpace(rows), "\n")
	if len(lines) < 10 {
		t.Fatalf("rows = %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "# aggregate populations") {
		t.Error("title comment missing")
	}
	if !strings.Contains(rows, "heavy tail\t") {
		t.Error("series column missing")
	}
}

func TestEmptyPlot(t *testing.T) {
	p := Plot{Title: "empty"}
	if out := p.ASCII(); !strings.Contains(out, "(empty plot)") {
		t.Errorf("empty ASCII:\n%s", out)
	}
	if svg := p.SVG(); !strings.Contains(svg, "</svg>") {
		t.Error("empty SVG broken")
	}
}

func TestTitleEscaping(t *testing.T) {
	p := Plot{Title: `a <b> & "c"`, Series: []Series{{Label: "<x>", Points: stats.CCDF([]float64{1, 2})}}}
	svg := p.SVG()
	if strings.Contains(svg, "<b>") || strings.Contains(svg, "<x>") {
		t.Error("titles not escaped")
	}
}
