package netmodel

import (
	"v6class/internal/addrclass"
	"v6class/internal/ipaddr"
)

// MobilePlan models the U.S. mobile carriers of Figure 5e: user equipment
// receives a different /64 on each association, drawn least-recently-used
// from dense pools sized to gateway capacity, so /64s are reused by other
// subscribers within days. Devices use fixed interface identifiers from a
// small shared set — some of them EUI-64 expansions of duplicated MACs —
// plus optional daily privacy addresses.
type MobilePlan struct {
	// Pools are the /44-style pool prefixes /64s are drawn from.
	Pools []ipaddr.Prefix
	// PoolBits is the log2 number of /64s used per pool prefix, packed
	// densely from the bottom of the pool (bits 44-64 nearly fully used
	// at paper scale).
	PoolBits int
	// FixedIIDs is the size of the shared fixed-IID set; small values
	// force many devices to share the same IID simultaneously.
	FixedIIDs int
	// EUI64Frac is the fraction of devices whose fixed IID is an EUI-64
	// expansion (of a possibly duplicated MAC) rather than a small
	// integer.
	EUI64Frac float64
	// PrivacyFrac is the fraction of devices that also expose a
	// regenerated-daily privacy address.
	PrivacyFrac float64
}

func (p *MobilePlan) Name() string { return "mobile-dynamic64" }

// pool64 returns the /64 network identifier for pool slot idx.
func (p *MobilePlan) pool64(idx int) uint64 {
	pool := idx >> p.PoolBits
	offset := idx & (1<<p.PoolBits - 1)
	return p.Pools[pool].Addr().NetworkID() + uint64(offset)
}

// PoolSize returns the total number of /64s across all pools.
func (p *MobilePlan) PoolSize() int { return len(p.Pools) << p.PoolBits }

func (p *MobilePlan) SubscriberDay(env Env, op *Operator, sub, day int, out []ipaddr.Addr) []ipaddr.Addr {
	// A fresh association each day: the /64 is a pseudo-LRU pool slot,
	// keyed by day so tomorrow's assignment differs and the slot is
	// reused by a different subscriber.
	slot := pick(p.PoolSize(), env.Seed, env.OpID, uint64(sub), uint64(day), saltAssoc)
	net := p.pool64(slot)

	if chance(p.EUI64Frac, env.Seed, env.OpID, uint64(sub), saltDevKind) {
		// EUI-64 fixed IID; a quarter of such devices carry the
		// most-duplicated MAC (index 0).
		idx := pick(p.FixedIIDs, env.Seed, env.OpID, uint64(sub), saltFixedIID)
		if pick(4, env.Seed, env.OpID, uint64(sub), saltMAC) == 0 {
			idx = 0
		}
		out = append(out, addr64(net, addrclass.EUI64FromMAC(macForIndex(env, idx))))
	} else {
		// Small-integer fixed IID shared across many devices (::1-style).
		iid := uint64(1 + pick(p.FixedIIDs, env.Seed, env.OpID, uint64(sub), saltFixedIID))
		out = append(out, addr64(net, iid))
	}
	if chance(p.PrivacyFrac, env.Seed, env.OpID, uint64(sub), uint64(day), saltPrivacy) {
		out = append(out, addr64(net, privacyIID(env.Seed, env.OpID, uint64(sub), uint64(day), saltPrivacy)))
	}
	return out
}

// PrivacySubnetISPPlan models the European ISP of Figure 5f: the network
// identifier carries a pseudorandom 15-bit field (bits 41-55) that
// subscribers may rotate on demand, followed by a biased 8-bit field (bits
// 56-63) most often 0x00 or 0x01. Households run a few hosts using daily
// privacy addresses, with EUI-64 addresses surfacing occasionally.
type PrivacySubnetISPPlan struct {
	// Base is the operator prefix the subscriber field is placed under
	// (a /24-ish allocation).
	Base ipaddr.Prefix
	// Pops is the number of points of presence occupying bits 24-39.
	Pops int
	// MeanRotationDays is the average interval between a subscriber's
	// on-demand network-identifier rotations.
	MeanRotationDays int
	// HostsMax is the maximum devices per household (minimum 1).
	HostsMax int
	// EUI64Prob is the fraction of hosts that use EUI-64 SLAAC (exposing
	// a stable address) instead of privacy extensions.
	EUI64Prob float64
	// StaticHostProb is the fraction of hosts holding stable small-integer
	// addresses (DHCPv6 or manual assignment, the paper's Figure 1(i)).
	StaticHostProb float64
	// RFC7217Prob is the fraction of hosts using stable privacy addresses
	// (RFC 7217, the paper's footnote 1): the IID is pseudorandom in
	// content but constant for a given (host, network) pair, so only
	// temporal analysis can tell these from RFC 4941 privacy addresses.
	RFC7217Prob float64
}

func (p *PrivacySubnetISPPlan) Name() string { return "privacy-subnet-isp" }

// Network64 returns subscriber sub's /64 network identifier on the given
// day, exported so tests can verify the rotation and bias structure.
func (p *PrivacySubnetISPPlan) Network64(env Env, sub, day int) uint64 {
	base := p.Base.Addr().NetworkID()
	pop := uint64(pick(p.Pops, env.Seed, env.OpID, uint64(sub), saltSubnet))
	// Rotation epoch: the pseudorandom field holds within an epoch and
	// re-rolls across epochs; epoch length varies per subscriber around
	// the mean.
	period := 1 + p.MeanRotationDays/2 + pick(p.MeanRotationDays, env.Seed, env.OpID, uint64(sub), saltRotation)
	epoch := uint64(day / period)
	rnd15 := mix(env.Seed, env.OpID, uint64(sub), epoch, saltRotation) & 0x7fff
	// Biased final byte: 0x00 half the time, 0x01 a third, else varied.
	var biased uint64
	switch b := pick(6, env.Seed, env.OpID, uint64(sub), saltBiased); b {
	case 0, 1, 2:
		biased = 0x00
	case 3, 4:
		biased = 0x01
	default:
		biased = mix(env.Seed, env.OpID, uint64(sub), saltBiased) & 0xff
	}
	// Layout: bits 24-39 pop, bit 40 zero, bits 41-55 pseudorandom,
	// bits 56-63 biased byte.
	return base | pop<<24 | rnd15<<8 | biased
}

func (p *PrivacySubnetISPPlan) SubscriberDay(env Env, op *Operator, sub, day int, out []ipaddr.Addr) []ipaddr.Addr {
	net := p.Network64(env, sub, day)
	hosts := 1 + pick(p.HostsMax, env.Seed, env.OpID, uint64(sub), saltHosts)
	for h := 0; h < hosts; h++ {
		if h > 0 && !chance(0.6, env.Seed, env.OpID, uint64(sub), uint64(h), uint64(day), saltHostActive) {
			continue
		}
		// A host's addressing style is a property of the host: EUI-64
		// SLAAC, a stable small-integer (DHCPv6/manual) address, or
		// privacy extensions.
		switch r := unit(mix(env.Seed, env.OpID, uint64(sub), uint64(h), saltDevKind)); {
		case r < p.EUI64Prob:
			mac := macForIndex(env, 1+sub*16+h)
			out = append(out, addr64(net, addrclass.EUI64FromMAC(mac)))
		case r < p.EUI64Prob+p.StaticHostProb:
			iid := 0x100 + mix(env.Seed, env.OpID, uint64(sub), uint64(h), saltFixedIID)&0xfff
			out = append(out, addr64(net, iid))
		case r < p.EUI64Prob+p.StaticHostProb+p.RFC7217Prob:
			// Stable privacy: pseudorandom content keyed by (host, net),
			// constant until the network identifier changes.
			out = append(out, addr64(net, privacyIID(env.Seed, env.OpID, uint64(sub), uint64(h), net, saltPrivacy)))
		default:
			epoch := privacyEpoch(env, sub, h, day)
			out = append(out, addr64(net, privacyIID(env.Seed, env.OpID, uint64(sub), uint64(h), epoch, saltPrivacy)))
		}
	}
	return out
}

// StaticISPPlan models the Japanese ISP of Figure 5h: each subscriber holds
// a static /48 of which a single /64 is active (so the 48-64 bit segment
// shows no aggregation), making active /64 counts a reasonable subscriber
// estimate. Households run privacy-address hosts plus occasional EUI-64.
type StaticISPPlan struct {
	// Bases are /32-ish allocations subdivided into per-subscriber /48s.
	Bases []ipaddr.Prefix
	// HostsMax is the maximum devices per household (minimum 1).
	HostsMax int
	// EUI64Prob is the fraction of hosts that use EUI-64 SLAAC (exposing
	// a stable address) instead of privacy extensions.
	EUI64Prob float64
	// StaticHostProb is the fraction of hosts holding stable small-integer
	// addresses (DHCPv6 or manual assignment, the paper's Figure 1(i)).
	StaticHostProb float64
	// RFC7217Prob is the fraction of hosts using stable privacy addresses
	// (RFC 7217, the paper's footnote 1): the IID is pseudorandom in
	// content but constant for a given (host, network) pair, so only
	// temporal analysis can tell these from RFC 4941 privacy addresses.
	RFC7217Prob float64
}

func (p *StaticISPPlan) Name() string { return "static-isp" }

// Network64 returns the single active /64 of subscriber sub: a static /48
// (base + index) plus a per-subscriber constant 16-bit subnet value.
func (p *StaticISPPlan) Network64(env Env, sub int) uint64 {
	base := p.Bases[sub%len(p.Bases)]
	idx := uint64(sub/len(p.Bases)) & 0xffff // /48 index within the /32
	subnet16 := mix(env.Seed, env.OpID, uint64(sub), saltSubnet) & 0xffff
	return base.Addr().NetworkID() | idx<<16 | subnet16
}

func (p *StaticISPPlan) SubscriberDay(env Env, op *Operator, sub, day int, out []ipaddr.Addr) []ipaddr.Addr {
	net := p.Network64(env, sub)
	hosts := 1 + pick(p.HostsMax, env.Seed, env.OpID, uint64(sub), saltHosts)
	for h := 0; h < hosts; h++ {
		if h > 0 && !chance(0.6, env.Seed, env.OpID, uint64(sub), uint64(h), uint64(day), saltHostActive) {
			continue
		}
		// A host's addressing style is a property of the host: EUI-64
		// SLAAC, a stable small-integer (DHCPv6/manual) address, or
		// privacy extensions.
		switch r := unit(mix(env.Seed, env.OpID, uint64(sub), uint64(h), saltDevKind)); {
		case r < p.EUI64Prob:
			mac := macForIndex(env, 1+sub*16+h)
			out = append(out, addr64(net, addrclass.EUI64FromMAC(mac)))
		case r < p.EUI64Prob+p.StaticHostProb:
			iid := 0x100 + mix(env.Seed, env.OpID, uint64(sub), uint64(h), saltFixedIID)&0xfff
			out = append(out, addr64(net, iid))
		case r < p.EUI64Prob+p.StaticHostProb+p.RFC7217Prob:
			// Stable privacy: pseudorandom content keyed by (host, net),
			// constant until the network identifier changes.
			out = append(out, addr64(net, privacyIID(env.Seed, env.OpID, uint64(sub), uint64(h), net, saltPrivacy)))
		default:
			epoch := privacyEpoch(env, sub, h, day)
			out = append(out, addr64(net, privacyIID(env.Seed, env.OpID, uint64(sub), uint64(h), epoch, saltPrivacy)))
		}
	}
	return out
}

// UniversityPlan models the U.S. university of Figure 2a: a /32 whose
// subnet plan uses only three hexadecimal character values at the first
// nybble below the BGP prefix ("customer networks" and "large customer
// networks"), with sparse /64s populated by privacy-address clients.
type UniversityPlan struct {
	Base ipaddr.Prefix // the /32
	// NybbleValues are the (three) values observed at bits 32-35.
	NybbleValues []uint64
	// Departments bounds the subnet index at bits 36-47.
	Departments int
	// HostsMax is the maximum clients per subnet (minimum 1).
	HostsMax int
}

func (p *UniversityPlan) Name() string { return "university-structured" }

// Network64 returns the /64 for subnet sub, exported for tests.
func (p *UniversityPlan) Network64(env Env, sub int) uint64 {
	nyb := p.NybbleValues[pick(len(p.NybbleValues), env.Seed, env.OpID, uint64(sub), saltNybble)]
	dept := uint64(pick(p.Departments, env.Seed, env.OpID, uint64(sub), saltDept)) & 0xfff
	vlan := mix(env.Seed, env.OpID, uint64(sub), saltVLAN) & 0xf
	// Layout below the /32: bits 32-35 nybble, 36-47 department,
	// 48-59 zero, 60-63 vlan.
	return p.Base.Addr().NetworkID() | nyb<<28 | dept<<16 | vlan
}

func (p *UniversityPlan) SubscriberDay(env Env, op *Operator, sub, day int, out []ipaddr.Addr) []ipaddr.Addr {
	net := p.Network64(env, sub)
	hosts := 1 + pick(p.HostsMax, env.Seed, env.OpID, uint64(sub), saltHosts)
	for h := 0; h < hosts; h++ {
		if !chance(0.5, env.Seed, env.OpID, uint64(sub), uint64(h), uint64(day), saltHostActive) {
			continue
		}
		epoch := privacyEpoch(env, sub, h, day)
		out = append(out, addr64(net, privacyIID(env.Seed, env.OpID, uint64(sub), uint64(h), epoch, saltPrivacy)))
	}
	return out
}

// DHCPDensePlan models the European university department of Figure 5g: a
// single /64 serving on the order of a hundred hosts whose DHCPv6-assigned
// addresses sit numerically adjacent in the low bits, forming 2@/112-dense
// prefixes. Subscriber 0 is the whole department; plans of this kind are
// configured with Subscribers=1 on their operator.
type DHCPDensePlan struct {
	Network ipaddr.Prefix // the /64
	// PoolBase is the first assigned low-64-bit value (e.g. 0x1000).
	PoolBase uint64
	// Hosts is the DHCP client population.
	Hosts int
	// ActiveProb is the per-day probability a host is active.
	ActiveProb float64
}

func (p *DHCPDensePlan) Name() string { return "dhcpv6-dense" }

// HostAddr returns host h's stable DHCPv6 address, exported for the DNS
// simulator which publishes matching PTR records.
func (p *DHCPDensePlan) HostAddr(h int) ipaddr.Addr {
	return addr64(p.Network.Addr().NetworkID(), p.PoolBase+uint64(h))
}

func (p *DHCPDensePlan) SubscriberDay(env Env, op *Operator, sub, day int, out []ipaddr.Addr) []ipaddr.Addr {
	for h := 0; h < p.Hosts; h++ {
		if chance(p.ActiveProb, env.Seed, env.OpID, uint64(h), uint64(day), saltHostActive) {
			out = append(out, p.HostAddr(h))
		}
	}
	return out
}

// SixToFourPlan models remaining 6to4 (RFC 3056) clients: the IPv4 address
// embedded in bits 16-48 dominates aggregation (Figure 5d). Client IPv4
// addresses churn on a weekly-ish epoch.
type SixToFourPlan struct {
	// V4Pools are 16-bit IPv4 prefixes (upper halves of dotted quads,
	// e.g. 0xc633 for 198.51.0.0/16) client addresses are drawn from.
	V4Pools []uint32
	// RenumberDays is the epoch length after which a client's IPv4
	// address (and hence 6to4 prefix) changes.
	RenumberDays int
}

func (p *SixToFourPlan) Name() string { return "6to4" }

func (p *SixToFourPlan) SubscriberDay(env Env, op *Operator, sub, day int, out []ipaddr.Addr) []ipaddr.Addr {
	epoch := uint64(0)
	if p.RenumberDays > 0 {
		epoch = uint64(day / p.RenumberDays)
	}
	pool := p.V4Pools[pick(len(p.V4Pools), env.Seed, env.OpID, uint64(sub), saltV4)]
	v4 := uint64(pool)<<16 | mix(env.Seed, env.OpID, uint64(sub), epoch, saltV4)&0xffff
	// 2002:V4V4:V4V4:0000::/64
	net := uint64(0x2002)<<48 | v4<<16
	switch pick(10, env.Seed, env.OpID, uint64(sub), saltIIDKind) {
	case 0, 1, 2, 3, 4: // EUI-64 router/host interface
		mac := macForIndex(env, 1+sub)
		out = append(out, addr64(net, addrclass.EUI64FromMAC(mac)))
	case 5, 6, 7: // low fixed IID
		out = append(out, addr64(net, uint64(1+pick(16, env.Seed, env.OpID, uint64(sub), saltFixedIID))))
	default: // privacy
		out = append(out, addr64(net, privacyIID(env.Seed, env.OpID, uint64(sub), uint64(day), saltPrivacy)))
	}
	return out
}

// TeredoPlan models residual Teredo (RFC 4380) clients: addresses under
// 2001::/32 whose tail encodes server, flags, and obfuscated client
// address/port — effectively ephemeral random values.
type TeredoPlan struct{}

func (p *TeredoPlan) Name() string { return "teredo" }

func (p *TeredoPlan) SubscriberDay(env Env, op *Operator, sub, day int, out []ipaddr.Addr) []ipaddr.Addr {
	h := mix(env.Seed, env.OpID, uint64(sub), uint64(day), saltTeredo)
	server := uint64(0xc0000200) + h>>56 // a handful of servers
	net := uint64(0x20010000)<<32 | server
	return append(out, addr64(net, mix(h, saltTeredo)))
}

// ISATAPPlan models intra-site ISATAP (RFC 5214) hosts: native prefixes
// with the reserved 0000:5efe IID prefix and an embedded (stable) IPv4
// address.
type ISATAPPlan struct {
	Base ipaddr.Prefix // the site prefix (/48-ish)
	// V4Base is the upper 16 bits of the site's IPv4 network.
	V4Base uint32
}

func (p *ISATAPPlan) Name() string { return "isatap" }

func (p *ISATAPPlan) SubscriberDay(env Env, op *Operator, sub, day int, out []ipaddr.Addr) []ipaddr.Addr {
	subnet := uint64(pick(256, env.Seed, env.OpID, uint64(sub), saltSubnet))
	net := p.Base.Addr().NetworkID() | subnet
	v4 := uint64(p.V4Base)<<16 | mix(env.Seed, env.OpID, uint64(sub), saltV4)&0xffff
	iid := uint64(0x00005efe)<<32 | v4
	return append(out, addr64(net, iid))
}
