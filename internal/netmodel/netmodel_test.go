package netmodel

import (
	"testing"

	"v6class/internal/addrclass"
	"v6class/internal/ipaddr"
)

func env() Env { return Env{Seed: 42, OpID: 1, StudyDays: 380} }

func pfx(t *testing.T, s string) ipaddr.Prefix {
	t.Helper()
	p, err := ipaddr.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestHashDeterminism(t *testing.T) {
	if mix(1, 2, 3) != mix(1, 2, 3) {
		t.Error("mix not deterministic")
	}
	if mix(1, 2, 3) == mix(1, 2, 4) {
		t.Error("mix collision on trivially different keys")
	}
	if mix(1, 2) == mix(2, 1) {
		t.Error("mix should be order sensitive")
	}
	u := unit(mix(9))
	if u < 0 || u >= 1 {
		t.Errorf("unit out of range: %v", u)
	}
	if chance(0, 1) || !chance(1, 1) {
		t.Error("chance boundary behaviour wrong")
	}
	// pick must stay in range and be roughly uniform.
	var buckets [10]int
	for i := 0; i < 10000; i++ {
		v := pick(10, 5, uint64(i))
		if v < 0 || v >= 10 {
			t.Fatalf("pick out of range: %d", v)
		}
		buckets[v]++
	}
	for i, b := range buckets {
		if b < 700 || b > 1300 {
			t.Errorf("bucket %d badly skewed: %d/10000", i, b)
		}
	}
}

func TestProvisionedSubscribersGrowth(t *testing.T) {
	op := &Operator{Subscribers: 1000, Growth: 2.0}
	e := env()
	if got := op.ProvisionedSubscribers(e, 0); got != 1000 {
		t.Errorf("day 0: %d", got)
	}
	if got := op.ProvisionedSubscribers(e, e.StudyDays-1); got != 2000 {
		t.Errorf("last day: %d", got)
	}
	mid := op.ProvisionedSubscribers(e, e.StudyDays/2)
	if mid <= 1000 || mid >= 2000 {
		t.Errorf("midpoint: %d", mid)
	}
	// StartDay gates existence.
	late := &Operator{Subscribers: 10, Growth: 1, StartDay: 100}
	if late.ProvisionedSubscribers(e, 50) != 0 {
		t.Error("operator before StartDay should have no subscribers")
	}
	if late.ProvisionedSubscribers(e, 100) == 0 {
		t.Error("operator at StartDay should have subscribers")
	}
}

func TestMobilePlanBehaviour(t *testing.T) {
	plan := &MobilePlan{
		Pools:       []ipaddr.Prefix{pfx(t, "2600:1000::/44"), pfx(t, "2600:1010::/44")},
		PoolBits:    10,
		FixedIIDs:   8,
		EUI64Frac:   0.3,
		PrivacyFrac: 0.2,
	}
	op := &Operator{Name: "mobile", Plan: plan, Subscribers: 500, Growth: 1, ActiveDaily: 1}
	e := env()

	if plan.PoolSize() != 2048 {
		t.Errorf("PoolSize = %d", plan.PoolSize())
	}

	// Determinism: the same day generates identical output.
	d1 := op.Day(e, 10)
	d2 := op.Day(e, 10)
	if len(d1) != len(d2) {
		t.Fatalf("non-deterministic day: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("non-deterministic record %d", i)
		}
	}

	// /64s rotate across days for a given subscriber (with high
	// probability over 500 subscribers).
	day10 := map[uint64]bool{}
	var addrs10 []ipaddr.Addr
	for _, o := range d1 {
		day10[o.Addr.NetworkID()] = true
		addrs10 = append(addrs10, o.Addr)
	}
	d11 := op.Day(e, 11)
	changed := 0
	for i := 0; i < len(d11) && i < len(d1); i++ {
		if d1[i].Addr.NetworkID() != d11[i].Addr.NetworkID() {
			changed++
		}
	}
	if changed < len(d1)/2 {
		t.Errorf("only %d/%d mobile /64s changed across days", changed, len(d1))
	}

	// All /64s must come from the configured pools.
	for _, o := range d1 {
		in := false
		for _, pool := range plan.Pools {
			if pool.Contains(o.Addr) {
				in = true
				break
			}
		}
		if !in {
			t.Fatalf("address %v outside pools", o.Addr)
		}
	}

	// The duplicate-MAC signature: the same EUI-64 IID must appear under
	// multiple different /64s on one day.
	iidNets := map[uint64]map[uint64]bool{}
	for _, o := range d1 {
		if addrclass.IsEUI64(o.Addr) {
			m := iidNets[o.Addr.IID()]
			if m == nil {
				m = map[uint64]bool{}
				iidNets[o.Addr.IID()] = m
			}
			m[o.Addr.NetworkID()] = true
		}
	}
	multi := 0
	for _, nets := range iidNets {
		if len(nets) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("expected duplicated EUI-64 IIDs across /64s (shared-MAC devices)")
	}

	// Hits are positive.
	for _, o := range d1 {
		if o.Hits == 0 {
			t.Fatal("zero hit count")
		}
	}
}

func TestPrivacySubnetISPPlan(t *testing.T) {
	plan := &PrivacySubnetISPPlan{
		Base:             pfx(t, "2a02:8000::/24"),
		Pops:             16,
		MeanRotationDays: 30,
		HostsMax:         3,
		EUI64Prob:        0.3,
	}
	e := env()
	// Bit layout: bit 40 is always zero; the biased byte is most often 0x00
	// or 0x01.
	biasHits := 0
	const subs = 2000
	for sub := 0; sub < subs; sub++ {
		net := plan.Network64(e, sub, 10)
		if net>>23&1 != 0 {
			t.Fatalf("bit 40 set in network id %x", net)
		}
		if b := net & 0xff; b == 0x00 || b == 0x01 {
			biasHits++
		}
		// Network stays inside the /24.
		if net&^((1<<40)-1) != plan.Base.Addr().NetworkID() {
			t.Fatalf("network %x escapes base", net)
		}
	}
	if float64(biasHits)/subs < 0.7 {
		t.Errorf("biased byte hit only %d/%d", biasHits, subs)
	}

	// Rotation: the network eventually changes for (almost) every
	// subscriber across half a year, but holds within a day.
	rotated := 0
	for sub := 0; sub < 200; sub++ {
		if plan.Network64(e, sub, 0) != plan.Network64(e, sub, 180) {
			rotated++
		}
		if plan.Network64(e, sub, 50) != plan.Network64(e, sub, 50) {
			t.Fatal("same-day network must be stable")
		}
	}
	if rotated < 150 {
		t.Errorf("only %d/200 subscribers rotated over 180 days", rotated)
	}

	op := &Operator{Name: "eu", Plan: plan, Subscribers: 300, Growth: 1, ActiveDaily: 1}
	day := op.Day(e, 5)
	if len(day) < 300 {
		t.Errorf("day yields %d observations", len(day))
	}
	// Privacy addresses live one to three days: consecutive-day overlap is
	// substantial but bounded, while five days later only the stable
	// (EUI-64) addresses remain.
	set := map[ipaddr.Addr]bool{}
	for _, o := range day {
		set[o.Addr] = true
	}
	overlapAt := func(d int) int {
		n := 0
		for _, o := range op.Day(e, d) {
			if set[o.Addr] {
				n++
			}
		}
		return n
	}
	next := overlapAt(6)
	far := overlapAt(10)
	if float64(next) > 0.8*float64(len(day)) {
		t.Errorf("privacy addresses too stable: %d/%d next-day overlap", next, len(day))
	}
	if far >= next {
		t.Errorf("overlap should decay: next-day %d, five-days %d", next, far)
	}
	if float64(far) > 0.5*float64(len(day)) {
		t.Errorf("far overlap too high: %d/%d", far, len(day))
	}
}

func TestStaticISPPlan(t *testing.T) {
	plan := &StaticISPPlan{
		Bases:     []ipaddr.Prefix{pfx(t, "2400:2650::/32")},
		HostsMax:  3,
		EUI64Prob: 0.3,
	}
	e := env()
	// One active /64 per subscriber, constant across days.
	for sub := 0; sub < 100; sub++ {
		if plan.Network64(e, sub) != plan.Network64(e, sub) {
			t.Fatal("static network must be deterministic")
		}
	}
	// Distinct subscribers get distinct /48s (distinct idx), and their
	// /48's 16-bit subnet value is constant => one /64 per /48.
	seen48 := map[uint64]uint64{}
	for sub := 0; sub < 1000; sub++ {
		net := plan.Network64(e, sub)
		p48 := net >> 16
		if prev, ok := seen48[p48]; ok && prev != net {
			t.Fatalf("/48 %x carries two /64s: %x and %x", p48, prev, net)
		}
		seen48[p48] = net
	}

	op := &Operator{Name: "jp", Plan: plan, Subscribers: 200, Growth: 1, ActiveDaily: 1}
	d := op.Day(e, 3)
	// EUI-64 addresses appear.
	eui := 0
	for _, o := range d {
		if addrclass.IsEUI64(o.Addr) {
			eui++
		}
	}
	if eui == 0 {
		t.Error("expected some EUI-64 observations")
	}
}

func TestUniversityPlan(t *testing.T) {
	plan := &UniversityPlan{
		Base:         pfx(t, "2607:f8b0::/32"),
		NybbleValues: []uint64{0x0, 0x1, 0x8},
		Departments:  200,
		HostsMax:     6,
	}
	e := env()
	nybbles := map[uint64]bool{}
	for sub := 0; sub < 500; sub++ {
		net := plan.Network64(e, sub)
		nyb := net >> 28 & 0xf
		nybbles[nyb] = true
		ok := false
		for _, v := range plan.NybbleValues {
			if nyb == v {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("unexpected nybble %x", nyb)
		}
	}
	if len(nybbles) != 3 {
		t.Errorf("observed %d nybble values, want 3", len(nybbles))
	}
}

func TestDHCPDensePlan(t *testing.T) {
	plan := &DHCPDensePlan{
		Network:    pfx(t, "2001:db8:100:64::/64"),
		PoolBase:   0x1000,
		Hosts:      100,
		ActiveProb: 0.7,
	}
	e := env()
	op := &Operator{Name: "dept", Plan: plan, Subscribers: 1, Growth: 1, ActiveDaily: 1}
	d := op.Day(e, 0)
	if len(d) < 40 || len(d) > 100 {
		t.Errorf("active hosts = %d, want ~70", len(d))
	}
	// All in the /64, numerically adjacent region.
	for _, o := range d {
		if !plan.Network.Contains(o.Addr) {
			t.Fatalf("%v outside /64", o.Addr)
		}
		if o.Addr.IID() < 0x1000 || o.Addr.IID() >= 0x1000+uint64(plan.Hosts) {
			t.Fatalf("IID %x outside DHCP pool", o.Addr.IID())
		}
	}
	// Stable addresses: host addresses never change.
	if plan.HostAddr(5) != plan.HostAddr(5) {
		t.Error("HostAddr must be stable")
	}
}

func TestSixToFourPlan(t *testing.T) {
	plan := &SixToFourPlan{V4Pools: []uint32{0xc633, 0xcb00}, RenumberDays: 7}
	e := env()
	op := &Operator{Name: "6to4", Plan: plan, Subscribers: 300, Growth: 1, ActiveDaily: 1}
	d := op.Day(e, 0)
	for _, o := range d {
		if addrclass.Classify(o.Addr) != addrclass.Kind6to4 {
			t.Fatalf("%v not classified 6to4", o.Addr)
		}
		v4, _ := addrclass.Embedded6to4IPv4(o.Addr)
		hi := uint32(v4 >> 16)
		if hi != 0xc633 && hi != 0xcb00 {
			t.Fatalf("embedded v4 %x outside pools", v4)
		}
	}
	// Renumbering: across an epoch boundary many clients change prefix.
	d7 := op.Day(e, 7)
	same := 0
	for i := 0; i < len(d) && i < len(d7); i++ {
		if d[i].Addr.NetworkID() == d7[i].Addr.NetworkID() {
			same++
		}
	}
	if same > len(d)*9/10 {
		t.Errorf("6to4 prefixes too static across epochs: %d/%d", same, len(d))
	}
}

func TestTeredoAndISATAPPlans(t *testing.T) {
	e := env()
	top := &Operator{Name: "teredo", Plan: &TeredoPlan{}, Subscribers: 50, Growth: 1, ActiveDaily: 1}
	for _, o := range top.Day(e, 0) {
		if got := addrclass.Classify(o.Addr); got != addrclass.KindTeredo {
			t.Fatalf("%v classified %v, want teredo", o.Addr, got)
		}
	}
	iop := &Operator{
		Name:        "isatap",
		Plan:        &ISATAPPlan{Base: pfx(t, "2001:db8:5000::/48"), V4Base: 0xc0a8},
		Subscribers: 50, Growth: 1, ActiveDaily: 1,
	}
	for _, o := range iop.Day(e, 0) {
		if got := addrclass.Classify(o.Addr); got != addrclass.KindISATAP {
			t.Fatalf("%v classified %v, want isatap", o.Addr, got)
		}
	}
	// ISATAP addresses are stable across days.
	a0 := iop.Day(e, 0)
	a1 := iop.Day(e, 1)
	if len(a0) == 0 || len(a1) == 0 {
		t.Fatal("empty ISATAP days")
	}
	stable := 0
	seen := map[ipaddr.Addr]bool{}
	for _, o := range a0 {
		seen[o.Addr] = true
	}
	for _, o := range a1 {
		if seen[o.Addr] {
			stable++
		}
	}
	if stable == 0 {
		t.Error("ISATAP addresses should recur across days")
	}
}

func TestMacForIndex(t *testing.T) {
	e := env()
	if macForIndex(e, 0).String() != "00:11:22:33:44:56" {
		t.Errorf("index 0 should be the paper's duplicate MAC, got %v", macForIndex(e, 0))
	}
	if macForIndex(e, 1) == macForIndex(e, 2) {
		t.Error("distinct indexes should give distinct MACs")
	}
	if macForIndex(e, 1) != macForIndex(e, 1) {
		t.Error("MAC assignment must be deterministic")
	}
}

func TestRFC7217StablePrivacyHosts(t *testing.T) {
	plan := &StaticISPPlan{
		Bases:       []ipaddr.Prefix{pfx(t, "2400:2650::/32")},
		HostsMax:    1,
		RFC7217Prob: 1, // every host uses stable privacy addresses
	}
	e := env()
	op := &Operator{Name: "jp", Plan: plan, Subscribers: 100, Growth: 1, ActiveDaily: 1}
	d0 := op.Day(e, 0)
	d9 := op.Day(e, 9)
	if len(d0) == 0 {
		t.Fatal("empty day")
	}
	// Addresses look like RFC 4941 privacy addresses to the format
	// classifier...
	other := 0
	for _, o := range d0 {
		if addrclass.Classify(o.Addr) == addrclass.KindOther {
			other++
		}
	}
	if float64(other)/float64(len(d0)) < 0.95 {
		t.Errorf("only %d/%d stable-privacy addrs classified Other", other, len(d0))
	}
	// ...but are perfectly stable across days (static network identifier).
	seen := map[ipaddr.Addr]bool{}
	for _, o := range d0 {
		seen[o.Addr] = true
	}
	stable := 0
	for _, o := range d9 {
		if seen[o.Addr] {
			stable++
		}
	}
	// A subscriber active on both days produces the identical address, so
	// the overlap is bounded only by which subscribers (including the
	// rare visitors) happen to be active each day.
	min := len(d0)
	if len(d9) < min {
		min = len(d9)
	}
	if float64(stable) < 0.9*float64(min) {
		t.Errorf("stable-privacy addrs should mostly recur: day0 %d, day9 %d, overlap %d",
			len(d0), len(d9), stable)
	}
}

func TestPlanNames(t *testing.T) {
	plans := map[string]Plan{
		"mobile-dynamic64":      &MobilePlan{},
		"privacy-subnet-isp":    &PrivacySubnetISPPlan{},
		"static-isp":            &StaticISPPlan{},
		"university-structured": &UniversityPlan{},
		"dhcpv6-dense":          &DHCPDensePlan{},
		"6to4":                  &SixToFourPlan{},
		"teredo":                &TeredoPlan{},
		"isatap":                &ISATAPPlan{},
	}
	for want, p := range plans {
		if got := p.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestUniversityPlanDay(t *testing.T) {
	plan := &UniversityPlan{
		Base:         pfx(t, "2607:f010::/32"),
		NybbleValues: []uint64{0x0, 0x1, 0x8},
		Departments:  50,
		HostsMax:     6,
	}
	e := env()
	op := &Operator{Name: "uni", Plan: plan, Subscribers: 200, Growth: 1, ActiveDaily: 1}
	d := op.Day(e, 3)
	if len(d) == 0 {
		t.Fatal("empty university day")
	}
	for _, o := range d {
		if !plan.Base.Contains(o.Addr) {
			t.Fatalf("%v escapes the /32", o.Addr)
		}
		// All hosts use privacy addresses: classified Other.
		if k := addrclass.Classify(o.Addr); k != addrclass.KindOther {
			t.Fatalf("%v classified %v", o.Addr, k)
		}
	}
	// Privacy addresses persist for their 1-3 day lifetime then vanish.
	set := map[ipaddr.Addr]bool{}
	for _, o := range d {
		set[o.Addr] = true
	}
	far := 0
	for _, o := range op.Day(e, 13) {
		if set[o.Addr] {
			far++
		}
	}
	if far != 0 {
		t.Errorf("%d university privacy addrs survived 10 days", far)
	}
}

func TestExportedHash(t *testing.T) {
	if Hash(1, 2) != Hash(1, 2) || Hash(1, 2) == Hash(2, 1) {
		t.Error("Hash misbehaves")
	}
	if HashChance(0, 1) || !HashChance(1, 1) {
		t.Error("HashChance boundaries wrong")
	}
	hits := 0
	for i := 0; i < 10000; i++ {
		if HashChance(0.3, 42, uint64(i)) {
			hits++
		}
	}
	if hits < 2700 || hits > 3300 {
		t.Errorf("HashChance(0.3) hit %d/10000", hits)
	}
}
