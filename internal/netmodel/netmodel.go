// Package netmodel models network operators and their IPv6 addressing
// plans, the behavioural substrate that replaces the proprietary CDN logs
// of Plonka & Berger (IMC 2015).
//
// Every operator practice the paper observes in the wild is modelled
// explicitly so the classifiers have the same signal to find:
//
//   - a mobile carrier assigning /64s dynamically from dense pools, whose
//     devices use a small set of fixed interface identifiers (Figure 5e and
//     the duplicate-MAC footnote);
//   - a European ISP embedding an on-demand-rotated pseudorandom field in
//     the network identifier, with privacy-extension hosts (Figure 5f);
//   - a Japanese ISP with static per-subscriber assignment where every /48
//     contains a single active /64 (Figure 5h);
//   - a university with a structured subnet plan using few nybble values
//     (Figure 2a);
//   - a department running DHCPv6 in one /64, producing a dense /112
//     (Figure 5g);
//   - 6to4, Teredo and ISATAP transition-mechanism clients (Table 1).
//
// All behaviour is a deterministic function of (seed, operator, subscriber,
// day), so any study day can be regenerated independently.
package netmodel

import (
	"v6class/bgp"
	"v6class/internal/addrclass"
	"v6class/internal/ipaddr"
	"v6class/internal/uint128"
)

// Salt values separate the hash domains of unrelated decisions.
const (
	saltActive = iota + 1
	saltAssoc
	saltDevKind
	saltFixedIID
	saltMAC
	saltPrivacy
	saltHits
	saltHosts
	saltSubnet
	saltRotation
	saltBiased
	saltHostActive
	saltEUI64Seen
	saltNybble
	saltDept
	saltVLAN
	saltV4
	saltIIDKind
	saltTeredo
	saltExtra
	saltLife
	saltLifePhase
	saltRare
)

// Operator is one autonomous system with an addressing plan and a
// subscriber population.
type Operator struct {
	Name        string
	ASN         bgp.ASN
	Country     string
	Prefixes    []ipaddr.Prefix // advertised BGP prefixes
	Plan        Plan
	Subscribers int     // population at study start
	Growth      float64 // population multiplier across the whole study (1 = flat)
	ActiveDaily float64 // probability a provisioned subscriber is active on a day
	StartDay    int     // day the operator first appears (models ASN growth)
}

// Observation is one synthetic log fact: an address active on a day with a
// hit count.
type Observation struct {
	Addr ipaddr.Addr
	Hits uint64
}

// Env carries the study-wide parameters every plan decision hashes over.
type Env struct {
	Seed      uint64
	OpID      uint64 // stable operator index
	StudyDays int
}

// Plan generates the active addresses of one subscriber on one day.
type Plan interface {
	// Name identifies the plan kind in reports.
	Name() string
	// SubscriberDay appends subscriber sub's active addresses for the
	// given day to out and returns it. It is only called for subscribers
	// already decided to be active that day.
	SubscriberDay(env Env, op *Operator, sub, day int, out []ipaddr.Addr) []ipaddr.Addr
}

// ProvisionedSubscribers returns how many subscribers exist on the given
// day, growing linearly from Subscribers to Subscribers*Growth across the
// study.
func (op *Operator) ProvisionedSubscribers(env Env, day int) int {
	if day < op.StartDay {
		return 0
	}
	g := 1.0
	if env.StudyDays > 1 && op.Growth > 0 {
		g = 1 + (op.Growth-1)*float64(day)/float64(env.StudyDays-1)
	}
	n := int(float64(op.Subscribers) * g)
	if n < 0 {
		n = 0
	}
	return n
}

// Day generates the operator's aggregated observations for one day.
//
// A quarter of subscribers are rare visitors whose activity probability is
// an order of magnitude lower: the paper notes that even long-lived client
// addresses "return as WWW clients only infrequently" (Section 4.1), which
// is what keeps a tenth of daily /64s out of the 3d-stable class.
func (op *Operator) Day(env Env, day int) []Observation {
	var addrs []ipaddr.Addr
	n := op.ProvisionedSubscribers(env, day)
	for sub := 0; sub < n; sub++ {
		p := op.ActiveDaily
		if chance(0.25, env.Seed, env.OpID, uint64(sub), saltRare) {
			p *= 0.08
		}
		if !chance(p, env.Seed, env.OpID, uint64(sub), uint64(day), saltActive) {
			continue
		}
		addrs = op.Plan.SubscriberDay(env, op, sub, day, addrs)
	}
	out := make([]Observation, len(addrs))
	for i, a := range addrs {
		out[i] = Observation{Addr: a, Hits: hitCount(env, a, day)}
	}
	return out
}

// hitCount draws a deterministic, heavy-tailed daily request count for an
// address.
func hitCount(env Env, a ipaddr.Addr, day int) uint64 {
	u := a.Uint128()
	h := mix(env.Seed, u.Hi, u.Lo, uint64(day), saltHits)
	hits := 1 + h%9
	if h>>32%10 == 0 { // a tenth of clients are heavy
		hits += h >> 48 % 200
	}
	return hits
}

// addr64 assembles an address from a 64-bit network identifier and an IID.
func addr64(net, iid uint64) ipaddr.Addr {
	return ipaddr.AddrFrom128(uint128.New(net, iid))
}

// privacyIID draws an RFC 4941 pseudorandom IID (u bit cleared) for the
// given key, typically including the day or regeneration epoch so the
// address is periodically regenerated.
func privacyIID(vals ...uint64) uint64 {
	return mix(vals...) &^ (1 << 57)
}

// privacyEpoch returns the regeneration epoch of a host's privacy address
// on the given day. RFC 4941 default preferred lifetimes are 24 hours, but
// hosts keep an address across days while continuously attached, so
// lifetimes of one to three days (varying per host, with a per-host phase)
// model the stepwise activity-overlap decay of the paper's Figure 4.
func privacyEpoch(env Env, sub, host, day int) uint64 {
	life := 1 + pick(3, env.Seed, env.OpID, uint64(sub), uint64(host), saltLife)
	phase := pick(life, env.Seed, env.OpID, uint64(sub), uint64(host), saltLifePhase)
	return uint64((day + phase) / life)
}

// macForIndex deterministically assigns a MAC to an index within an
// operator's device pool. Index 0 is the paper's most-prevalent duplicate
// MAC, 00:11:22:33:44:56.
func macForIndex(env Env, idx int) addrclass.MAC {
	if idx == 0 {
		return addrclass.MAC{0x00, 0x11, 0x22, 0x33, 0x44, 0x56}
	}
	h := mix(env.Seed, env.OpID, uint64(idx), saltMAC)
	return addrclass.MAC{
		0x00, 0x1e, byte(h >> 40), byte(h >> 32), byte(h >> 24), byte(h >> 16),
	}
}
