package netmodel

// Deterministic hashing utilities: the synthetic world derives every choice
// (which subscribers are active, which /64 a mobile gateway hands out, a
// host's privacy IID for the day) from stateless hashes of structured keys,
// so that any study day can be regenerated independently and reproducibly
// without materializing the full year.

// splitmix64 is the finalizer of the SplitMix64 generator; a fast, well-
// mixed 64-bit permutation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix hashes a variadic key to a uint64. The empty key hashes the seed 0.
func mix(vals ...uint64) uint64 {
	h := uint64(0x243f6a8885a308d3) // pi, for want of nothing up the sleeve
	for _, v := range vals {
		h = splitmix64(h ^ v)
	}
	return h
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// chance reports a deterministic biased coin: true with probability p for
// the given key.
func chance(p float64, vals ...uint64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return unit(mix(vals...)) < p
}

// pick returns a deterministic value in [0, n) for the given key; n must be
// positive.
func pick(n int, vals ...uint64) int {
	return int(mix(vals...) % uint64(n))
}

// Hash exposes the deterministic mixing function to sibling packages (the
// synthetic world's timestamp slew) so every randomized decision in a world
// draws from one keyed stream.
func Hash(vals ...uint64) uint64 { return mix(vals...) }

// HashChance exposes the deterministic biased coin keyed like Hash.
func HashChance(p float64, vals ...uint64) bool { return chance(p, vals...) }
