package temporal

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// hash64 is a splitmix64-style mixer for test keys.
func hash64(k uint64) uint64 {
	k += 0x9e3779b97f4a7c15
	k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9
	k = (k ^ (k >> 27)) * 0x94d049bb133111eb
	return k ^ (k >> 31)
}

// randomObs returns a deterministic random observation stream.
func randomObs(seed int64, keys, n, numDays int) []Obs[uint64] {
	r := rand.New(rand.NewSource(seed))
	out := make([]Obs[uint64], n)
	for i := range out {
		out[i] = Obs[uint64]{Key: uint64(r.Intn(keys)), Day: Day(r.Intn(numDays))}
	}
	return out
}

// TestShardedStoreMatchesStore drives the same observation stream into a
// plain Store and a ShardedStore and asserts every query agrees.
func TestShardedStoreMatchesStore(t *testing.T) {
	const numDays = 40
	for _, shards := range []int{1, 4, 8} {
		seq := NewStore[uint64](numDays)
		sh := NewShardedStoreN[uint64](numDays, shards, hash64)
		obs := randomObs(int64(shards), 300, 20000, numDays)
		for _, o := range obs {
			seq.Observe(o.Key, o.Day)
			sh.Observe(o.Key, o.Day)
		}
		sh.Freeze()
		if !sh.Frozen() {
			t.Fatalf("shards=%d: store not frozen after Freeze", shards)
		}
		assertStoresAgree(t, seq, sh)
	}
}

// TestShardedStoreConcurrentObserve hammers Observe and ApplyBatch from
// many goroutines (the -race workhorse) and checks the result still
// matches a sequential Store.
func TestShardedStoreConcurrentObserve(t *testing.T) {
	const numDays = 30
	const writers = 8
	seq := NewStore[uint64](numDays)
	sh := NewShardedStoreN[uint64](numDays, 8, hash64)

	streams := make([][]Obs[uint64], writers)
	for w := range streams {
		streams[w] = randomObs(int64(100+w), 500, 5000, numDays)
		for _, o := range streams[w] {
			seq.Observe(o.Key, o.Day)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				// Route into per-shard batches, as the census pipeline does.
				batches := make([][]Obs[uint64], sh.NumShards())
				for _, o := range streams[w] {
					i := sh.ShardFor(o.Key)
					batches[i] = append(batches[i], o)
				}
				for i, b := range batches {
					if len(b) > 0 {
						sh.ApplyBatch(i, b)
					}
				}
			} else {
				for _, o := range streams[w] {
					sh.Observe(o.Key, o.Day)
				}
			}
		}(w)
	}
	// Concurrent pre-freeze reads must be safe too (they see an
	// in-progress census; only absence of races is asserted).
	var rg sync.WaitGroup
	for i := 0; i < 4; i++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for d := 0; d < numDays; d++ {
				_ = sh.ActiveCount(Day(d))
				_ = sh.ClassifyDay(Day(d), 3, Options{})
			}
		}()
	}
	wg.Wait()
	rg.Wait()
	sh.Freeze()
	assertStoresAgree(t, seq, sh)
}

func TestShardedStoreWriteAfterFreezePanics(t *testing.T) {
	sh := NewShardedStoreN[uint64](10, 2, hash64)
	sh.Observe(1, 2)
	sh.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("Observe after Freeze did not panic")
		}
	}()
	sh.Observe(3, 4)
}

func TestShardedStoreRestoreRoutes(t *testing.T) {
	sh := NewShardedStoreN[uint64](20, 4, hash64)
	b := NewBitSet(20)
	b.Set(3)
	b.Set(11)
	sh.Restore(42, b.Words())
	if got := sh.Days(42); !reflect.DeepEqual(got, []Day{3, 11}) {
		t.Fatalf("Days(42) = %v, want [3 11]", got)
	}
	if sh.ActiveCount(3) != 1 || sh.ActiveCount(11) != 1 || sh.ActiveCount(4) != 0 {
		t.Fatal("Restore did not update per-day counters")
	}
}

// assertStoresAgree checks every merged query against the sequential
// reference.
func assertStoresAgree(t *testing.T, seq *Store[uint64], sh *ShardedStore[uint64]) {
	t.Helper()
	numDays := seq.NumDays()
	if sh.Len() != seq.Len() {
		t.Fatalf("Len: sharded %d, sequential %d", sh.Len(), seq.Len())
	}
	if !reflect.DeepEqual(sh.ActivePerDay(), seq.ActivePerDay()) {
		t.Fatal("ActivePerDay mismatch")
	}
	opts := Options{Window: Window{Before: 5, After: 5}}
	for d := 0; d < numDays; d++ {
		day := Day(d)
		if sh.ActiveCount(day) != seq.ActiveCount(day) {
			t.Fatalf("ActiveCount(%d) mismatch", d)
		}
		if sh.ClassifyDay(day, 3, opts) != seq.ClassifyDay(day, 3, opts) {
			t.Fatalf("ClassifyDay(%d) mismatch", d)
		}
		if sh.ClassifyWeek(day, 3, opts) != seq.ClassifyWeek(day, 3, opts) {
			t.Fatalf("ClassifyWeek(%d) mismatch", d)
		}
		a := seq.KeysActiveOn(day)
		b := sh.KeysActiveOn(day)
		sortKeys(a)
		sortKeys(b)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("KeysActiveOn(%d) mismatch", d)
		}
		a = seq.StableKeys(day, 3, opts)
		b = sh.StableKeys(day, 3, opts)
		sortKeys(a)
		sortKeys(b)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("StableKeys(%d) mismatch", d)
		}
	}
	ref := Day(numDays / 2)
	if !reflect.DeepEqual(sh.OverlapSeries(ref, 7, 7), seq.OverlapSeries(ref, 7, 7)) {
		t.Fatal("OverlapSeries mismatch")
	}
	if sh.ActiveInRange(2, Day(numDays-3)) != seq.ActiveInRange(2, Day(numDays-3)) {
		t.Fatal("ActiveInRange mismatch")
	}
	if sh.EpochStable(0, 5, Day(numDays-6), Day(numDays-1)) != seq.EpochStable(0, 5, Day(numDays-6), Day(numDays-1)) {
		t.Fatal("EpochStable mismatch")
	}
	a := seq.EpochStableKeys(0, 5, Day(numDays-6), Day(numDays-1))
	b := sh.EpochStableKeys(0, 5, Day(numDays-6), Day(numDays-1))
	sortKeys(a)
	sortKeys(b)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("EpochStableKeys mismatch")
	}
	if !reflect.DeepEqual(sh.StabilitySpectrum(ref, 7, opts), seq.StabilitySpectrum(ref, 7, opts)) {
		t.Fatal("StabilitySpectrum mismatch")
	}
	// Range must visit every key exactly once.
	seen := make(map[uint64]int)
	sh.Range(func(k uint64, days []uint64) bool {
		seen[k]++
		return true
	})
	if len(seen) != seq.Len() {
		t.Fatalf("Range visited %d keys, want %d", len(seen), seq.Len())
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("Range visited key %d %d times", k, n)
		}
		if !reflect.DeepEqual(sh.Days(k), seq.Days(k)) {
			t.Fatalf("Days(%d) mismatch", k)
		}
	}
}

func sortKeys(s []uint64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
