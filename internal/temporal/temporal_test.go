package temporal

import (
	"math/rand"
	"testing"
)

// obs builds a store over numDays with the given key->active-days map.
func obs(numDays int, m map[string][]int) *Store[string] {
	s := NewStore[string](numDays)
	for k, days := range m {
		for _, d := range days {
			s.Observe(k, Day(d))
		}
	}
	return s
}

func TestObserveAndCounts(t *testing.T) {
	s := obs(30, map[string][]int{
		"a": {10, 11, 12},
		"b": {10},
		"c": {12, 20},
	})
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.ActiveCount(10) != 2 || s.ActiveCount(12) != 2 || s.ActiveCount(20) != 1 || s.ActiveCount(0) != 0 {
		t.Errorf("per-day counts wrong: %v", s.ActivePerDay())
	}
	if !s.Active("a", 10) || s.Active("a", 13) {
		t.Error("Active wrong")
	}
	// Idempotent observation.
	s.Observe("a", 10)
	if s.ActiveCount(10) != 2 {
		t.Error("duplicate Observe should not change counts")
	}
	// Out-of-range ignored.
	s.Observe("z", -1)
	s.Observe("z", 30)
	if s.Len() != 3 {
		t.Error("out-of-range Observe should be ignored")
	}
	days := s.Days("c")
	if len(days) != 2 || days[0] != 12 || days[1] != 20 {
		t.Errorf("Days(c) = %v", days)
	}
	if s.Days("missing") != nil {
		t.Error("Days of unknown key should be nil")
	}
}

// TestNDStablePaperDefinition verifies the paper's worked definition:
// seen March 17 and 18 => 1d-stable; seen March 17 and 19 => 2d-stable and
// also 1d-stable; classes are not mutually exclusive.
func TestNDStablePaperDefinition(t *testing.T) {
	// Day 17 = "March 17".
	s := obs(40, map[string][]int{
		"mar17+18": {17, 18},
		"mar17+19": {17, 19},
		"onlyone":  {17},
		"mar17+20": {17, 20},
	})
	opts := Options{}
	if !s.NDStable("mar17+18", 17, 1, opts) {
		t.Error("17+18 should be 1d-stable")
	}
	if s.NDStable("mar17+18", 17, 2, opts) {
		t.Error("17+18 should NOT be 2d-stable")
	}
	if !s.NDStable("mar17+19", 17, 2, opts) {
		t.Error("17+19 should be 2d-stable")
	}
	if !s.NDStable("mar17+19", 17, 1, opts) {
		t.Error("2d-stable implies 1d-stable")
	}
	if s.NDStable("onlyone", 17, 1, opts) {
		t.Error("single observation is never stable")
	}
	if !s.NDStable("mar17+20", 17, 3, opts) {
		t.Error("17+20 should be 3d-stable")
	}
	// Key inactive on the reference day is not classified.
	if s.NDStable("mar17+18", 19, 1, opts) {
		t.Error("inactive on ref day should not be stable")
	}
	if s.NDStable("nosuchkey", 17, 1, opts) {
		t.Error("unknown key should not be stable")
	}
}

func TestNDStableWindowClipping(t *testing.T) {
	// Partner day outside the (-7,+7) window must not count.
	s := obs(40, map[string][]int{
		"far":  {17, 30}, // 13 days later: outside +7
		"edge": {17, 24}, // exactly +7: inside
	})
	opts := Options{}
	if s.NDStable("far", 17, 3, opts) {
		t.Error("partner beyond window must not count")
	}
	if !s.NDStable("edge", 17, 7, opts) {
		t.Error("partner at window edge should count")
	}
	// A wider window accepts the far partner.
	wide := Options{Window: Window{Before: 15, After: 15}}
	if !s.NDStable("far", 17, 3, wide) {
		t.Error("wide window should accept far partner")
	}
}

func TestNDStableBeforeRef(t *testing.T) {
	s := obs(40, map[string][]int{"past": {10, 17}})
	if !s.NDStable("past", 17, 7, Options{}) {
		t.Error("partner 7 days before ref should count")
	}
	if s.NDStable("past", 17, 8, Options{}) {
		t.Error("8d-stable needs gap >= 8")
	}
}

func TestSlewDays(t *testing.T) {
	// With a 1-day slew allowance, a gap of n is no longer sufficient.
	s := obs(40, map[string][]int{"x": {17, 20}})
	if !s.NDStable("x", 17, 3, Options{}) {
		t.Error("gap 3 is 3d-stable without slew")
	}
	if s.NDStable("x", 17, 3, Options{SlewDays: 1}) {
		t.Error("gap 3 is not 3d-stable with 1-day slew")
	}
	s2 := obs(40, map[string][]int{"x": {17, 21}})
	if !s2.NDStable("x", 17, 3, Options{SlewDays: 1}) {
		t.Error("gap 4 satisfies 3d-stable with 1-day slew")
	}
}

func TestAnyPairOption(t *testing.T) {
	// Active on ref (17) and on 14+20: anchored pairs give max gap 3, but
	// the any-pair rule sees gap 6.
	s := obs(40, map[string][]int{"x": {14, 17, 20}})
	if s.NDStable("x", 17, 5, Options{}) {
		t.Error("anchored: max gap from ref is 3")
	}
	if !s.NDStable("x", 17, 5, Options{AnyPair: true}) {
		t.Error("any-pair: days 14 and 20 give gap 6")
	}
	// Anchored stability always implies any-pair stability.
	for n := 1; n <= 3; n++ {
		if s.NDStable("x", 17, n, Options{}) && !s.NDStable("x", 17, n, Options{AnyPair: true}) {
			t.Errorf("anchored %dd-stable must imply any-pair", n)
		}
	}
}

func TestClassifyDay(t *testing.T) {
	s := obs(40, map[string][]int{
		"stable1":  {17, 20},
		"stable2":  {14, 17},
		"unstable": {17},
		"adjacent": {17, 18}, // 1d- but not 3d-stable
		"absent":   {10, 13},
	})
	r := s.ClassifyDay(17, 3, Options{})
	if r.Active != 4 {
		t.Errorf("Active = %d, want 4", r.Active)
	}
	if r.Stable != 2 {
		t.Errorf("Stable = %d, want 2", r.Stable)
	}
	if r.NotStable != 2 {
		t.Errorf("NotStable = %d", r.NotStable)
	}
	keys := s.StableKeys(17, 3, Options{})
	if len(keys) != 2 {
		t.Errorf("StableKeys = %v", keys)
	}
}

func TestClassifyWeek(t *testing.T) {
	s := obs(40, map[string][]int{
		// Stable relative to day 19 (gap 3 within its window).
		"s1": {19, 22},
		// Active two days of the week but never 3 apart within any window
		// anchored at an active day... 20 and 21: gap 1. Not 3d-stable.
		"u1": {20, 21},
		// Active only outside the week.
		"out": {5, 9},
		// Stable via a pre-week partner: active day 17, also day 14.
		"s2": {14, 17},
	})
	r := s.ClassifyWeek(17, 3, Options{})
	if r.Active != 3 {
		t.Errorf("Active = %d, want 3", r.Active)
	}
	if r.Stable != 2 {
		t.Errorf("Stable = %d, want 2 (s1, s2)", r.Stable)
	}
	if r.NotStable != 1 {
		t.Errorf("NotStable = %d", r.NotStable)
	}
}

func TestClassifyWeekClipsAtStudyEnd(t *testing.T) {
	s := obs(20, map[string][]int{"x": {18, 19}})
	r := s.ClassifyWeek(15, 1, Options{})
	if r.Active != 1 || r.Stable != 1 {
		t.Errorf("clipped week: %+v", r)
	}
}

func TestOverlapSeries(t *testing.T) {
	s := obs(40, map[string][]int{
		"a": {15, 16, 17, 18},
		"b": {17},
		"c": {10, 17, 24},
		"d": {16, 18}, // not active on ref; excluded entirely
	})
	series := s.OverlapSeries(17, 7, 7)
	if len(series) != 15 {
		t.Fatalf("series length = %d", len(series))
	}
	// Index 7 is ref itself: all three ref-active keys.
	if series[7] != 3 {
		t.Errorf("ref overlap = %d, want 3", series[7])
	}
	// Day 16 (index 6): only "a".
	if series[6] != 1 {
		t.Errorf("day16 overlap = %d, want 1", series[6])
	}
	// Day 10 (index 0): only "c".
	if series[0] != 1 {
		t.Errorf("day10 overlap = %d, want 1", series[0])
	}
	// Day 24 (index 14): only "c".
	if series[14] != 1 {
		t.Errorf("day24 overlap = %d, want 1", series[14])
	}
}

func TestEpochStable(t *testing.T) {
	s := obs(400, map[string][]int{
		"yearlong": {10, 360},
		"once":     {10},
		"recent":   {360, 361},
		"both2":    {12, 355},
	})
	// "6 months": active in days [5,15] and in [350,365].
	if got := s.EpochStable(5, 15, 350, 365); got != 2 {
		t.Errorf("EpochStable = %d, want 2", got)
	}
	keys := s.EpochStableKeys(5, 15, 350, 365)
	if len(keys) != 2 {
		t.Errorf("EpochStableKeys = %v", keys)
	}
	if got := s.ActiveInRange(350, 365); got != 3 {
		t.Errorf("ActiveInRange = %d, want 3", got)
	}
}

func TestStabilitySpectrumMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	s := NewStore[int](60)
	for k := 0; k < 300; k++ {
		days := 1 + r.Intn(6)
		for i := 0; i < days; i++ {
			s.Observe(k, Day(20+r.Intn(15)-7))
		}
	}
	spec := s.StabilitySpectrum(20, 7, Options{})
	for i := 1; i < len(spec); i++ {
		if spec[i] > spec[i-1] {
			t.Fatalf("spectrum not monotone at n=%d: %v", i+1, spec)
		}
	}
	// n=1 equals count of keys active on ref with any partner day.
	want := 0
	for k := 0; k < 300; k++ {
		if s.NDStable(k, 20, 1, Options{}) {
			want++
		}
	}
	if spec[0] != want {
		t.Errorf("spectrum[0] = %d, want %d", spec[0], want)
	}
}

func TestKeysActiveOn(t *testing.T) {
	s := obs(30, map[string][]int{"a": {5}, "b": {5, 6}, "c": {6}})
	keys := s.KeysActiveOn(5)
	if len(keys) != 2 {
		t.Errorf("KeysActiveOn = %v", keys)
	}
}

func TestLongestGapStable(t *testing.T) {
	s := obs(100, map[string][]int{
		"wide":   {0, 90},
		"narrow": {10, 12},
		"mid":    {20, 60},
		"single": {50},
	})
	got := s.LongestGapStable(2)
	if len(got) != 2 || got[0] != "wide" || got[1] != "mid" {
		t.Errorf("LongestGapStable = %v", got)
	}
	// Limit larger than population.
	if got := s.LongestGapStable(10); len(got) != 3 {
		t.Errorf("LongestGapStable(10) = %v (single-day keys excluded)", got)
	}
}

func TestNewStorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewStore(0) should panic")
		}
	}()
	NewStore[string](0)
}

// Property: nd-stable implies (n-1)d-stable for all options combinations.
func TestPropStabilityMonotoneInN(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	s := NewStore[int](50)
	for k := 0; k < 500; k++ {
		for i := 0; i < 1+r.Intn(5); i++ {
			s.Observe(k, Day(r.Intn(50)))
		}
	}
	for _, opts := range []Options{{}, {AnyPair: true}, {SlewDays: 1}, {Window: Window{Before: 3, After: 3}}} {
		for k := 0; k < 500; k++ {
			for n := 2; n <= 8; n++ {
				if s.NDStable(k, 25, n, opts) && !s.NDStable(k, 25, n-1, opts) {
					t.Fatalf("key %d: %dd-stable but not %dd-stable (opts %+v)", k, n, n-1, opts)
				}
			}
		}
	}
}

func BenchmarkClassifyDay(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	s := NewStore[int](30)
	for k := 0; k < 100000; k++ {
		for i := 0; i < 3; i++ {
			s.Observe(k, Day(r.Intn(30)))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.ClassifyDay(15, 3, Options{})
	}
}
