package temporal

import "iter"

// Streaming forms of the bulk enumerations: every …Seq method returns an
// iter.Seq over the same dense row sweep as its slice-returning sibling,
// yielding keys straight out of the slab row table so enumeration allocates
// nothing per element. Breaking out of the range stops the sweep at the
// current row — no goroutines are involved, so an abandoned iterator leaks
// neither memory nor workers. Each Seq value is re-iterable: every range
// restarts the sweep from row 0.
//
// On a ShardedStore the …Seq forms require Freeze (they read every shard
// without locks); calling one on an unfrozen store panics. The façade at
// the module root converts that rule into its typed ErrNotFrozen before
// any sweep starts.

// KeysSeq yields every key ever observed, in row (insertion) order.
func (s *Store[K]) KeysSeq() iter.Seq[K] {
	return func(yield func(K) bool) {
		for r := range s.keys {
			if !yield(s.keys[r]) {
				return
			}
		}
	}
}

// StableKeysSeq yields the nd-stable keys for reference day ref, in row
// (insertion) order — the streaming form of StableKeys.
func (s *Store[K]) StableKeysSeq(ref Day, n int, opts Options) iter.Seq[K] {
	return func(yield func(K) bool) {
		for r := range s.keys {
			w := s.row(uint32(r))
			if wordGet(w, int(ref)) && ndStableActive(w, ref, n, opts) {
				if !yield(s.keys[r]) {
					return
				}
			}
		}
	}
}

// dayMask builds the stride-sized word mask with a bit set for every
// in-period day of days; ok is false when no day lands in the period.
func (s *Store[K]) dayMask(days []Day) (mask []uint64, ok bool) {
	mask = make([]uint64, s.stride)
	for _, d := range days {
		if d >= 0 && int(d) < s.numDays {
			mask[d/64] |= 1 << (uint(d) % 64)
			ok = true
		}
	}
	return mask, ok
}

// KeysActiveAnySeq yields every key active on at least one of the given
// days, in row (insertion) order, each key exactly once. The union is
// deduplicated by construction — one AND of the row against a day mask per
// key — so multi-day population builds need no seen-set.
func (s *Store[K]) KeysActiveAnySeq(days []Day) iter.Seq[K] {
	mask, any := s.dayMask(days)
	return s.keysActiveAnyRowsSeq(mask, any, 0, len(s.keys))
}

// keysActiveAnyRowsSeq is the row-range unit of KeysActiveAnySeq: the same
// day-mask sweep restricted to rows [r0, r1).
func (s *Store[K]) keysActiveAnyRowsSeq(mask []uint64, any bool, r0, r1 int) iter.Seq[K] {
	return func(yield func(K) bool) {
		if !any {
			return
		}
		for r := r0; r < r1; r++ {
			w := s.row(uint32(r))
			for wi, m := range mask {
				if m != 0 && w[wi]&m != 0 {
					if !yield(s.keys[r]) {
						return
					}
					break
				}
			}
		}
	}
}

// KeysActiveAnySeqs splits the KeysActiveAnySeq sweep into up to n
// independent streams over disjoint row ranges, for bounded fan-out
// consumers (the parallel spatial build) that give each worker its own
// sweep. Together the streams yield exactly the keys of KeysActiveAnySeq;
// tiny stores return fewer streams than asked (never more than one per
// minTileRows rows, matching the tiled analysis sweeps).
func (s *Store[K]) KeysActiveAnySeqs(n int, days []Day) []iter.Seq[K] {
	rows := len(s.keys)
	if most := (rows + minTileRows - 1) / minTileRows; n > most {
		n = most
	}
	if n < 1 {
		n = 1
	}
	mask, any := s.dayMask(days)
	out := make([]iter.Seq[K], 0, n)
	for t := 0; t < n; t++ {
		out = append(out, s.keysActiveAnyRowsSeq(mask, any, rows*t/n, rows*(t+1)/n))
	}
	return out
}

// ActivitySeq yields every key with its activity profile, in row
// (insertion) order — the streaming per-key form of the lifetime analyses.
func (s *Store[K]) ActivitySeq() iter.Seq2[K, Activity] {
	return func(yield func(K, Activity) bool) {
		for r := range s.keys {
			w := s.row(uint32(r))
			first := wordsFirst(w, 0)
			if first < 0 {
				continue
			}
			act := Activity{
				First:      Day(first),
				Last:       Day(wordsLast(w, s.numDays-1)),
				ActiveDays: wordsCount(w),
				Runs:       wordsRuns(w),
			}
			if !yield(s.keys[r], act) {
				return
			}
		}
	}
}

// seqFrozen guards the lock-free whole-store sweeps behind the streaming
// forms: before Freeze the shards may be mutating concurrently, and unlike
// the locking slice forms an iterator cannot hold a shard lock across a
// caller's loop body without inviting deadlock.
func (s *ShardedStore[K]) seqFrozen() {
	if !s.frozen.Load() {
		panic("temporal: streaming queries require a frozen ShardedStore")
	}
}

// KeysSeq yields every key ever observed, shard by shard in row order.
// Requires Freeze.
func (s *ShardedStore[K]) KeysSeq() iter.Seq[K] {
	s.seqFrozen()
	return func(yield func(K) bool) {
		for i := range s.shards {
			for k := range s.shards[i].st.KeysSeq() {
				if !yield(k) {
					return
				}
			}
		}
	}
}

// StableKeysSeq yields the nd-stable keys for reference day ref, shard by
// shard in row order. Requires Freeze.
func (s *ShardedStore[K]) StableKeysSeq(ref Day, n int, opts Options) iter.Seq[K] {
	s.seqFrozen()
	return func(yield func(K) bool) {
		for i := range s.shards {
			for k := range s.shards[i].st.StableKeysSeq(ref, n, opts) {
				if !yield(k) {
					return
				}
			}
		}
	}
}

// KeysActiveAnySeq yields every key active on at least one of the given
// days, each exactly once, shard by shard in row order. Requires Freeze.
func (s *ShardedStore[K]) KeysActiveAnySeq(days []Day) iter.Seq[K] {
	s.seqFrozen()
	return func(yield func(K) bool) {
		for i := range s.shards {
			for k := range s.shards[i].st.KeysActiveAnySeq(days) {
				if !yield(k) {
					return
				}
			}
		}
	}
}

// KeysActiveAnySeqs splits the day-mask union sweep into up to n
// independent streams: at least one per shard, shards split further into
// row ranges when there are fewer shards than requested streams, mirroring
// the tiling of the bounded analysis sweeps. Requires Freeze (the streams
// read the compacted shards lock-free, possibly concurrently).
func (s *ShardedStore[K]) KeysActiveAnySeqs(n int, days []Day) []iter.Seq[K] {
	s.seqFrozen()
	if n < 1 {
		n = 1
	}
	perShard := (n + len(s.shards) - 1) / len(s.shards)
	out := make([]iter.Seq[K], 0, len(s.shards)*perShard)
	for i := range s.shards {
		out = append(out, s.shards[i].st.KeysActiveAnySeqs(perShard, days)...)
	}
	return out
}

// ActivitySeq yields every key with its activity profile, shard by shard in
// row order. Requires Freeze.
func (s *ShardedStore[K]) ActivitySeq() iter.Seq2[K, Activity] {
	s.seqFrozen()
	return func(yield func(K, Activity) bool) {
		for i := range s.shards {
			for k, act := range s.shards[i].st.ActivitySeq() {
				if !yield(k, act) {
					return
				}
			}
		}
	}
}
