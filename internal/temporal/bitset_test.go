package temporal

import (
	"math/rand"
	"testing"
)

func TestBitSetBasics(t *testing.T) {
	b := NewBitSet(100)
	if b.Count() != 0 {
		t.Error("new bitset should be empty")
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(99)
	for _, i := range []int{0, 63, 64, 99} {
		if !b.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	for _, i := range []int{1, 62, 65, 98} {
		if b.Get(i) {
			t.Errorf("bit %d should be clear", i)
		}
	}
	if b.Count() != 4 {
		t.Errorf("Count = %d", b.Count())
	}
	// Out of range is ignored / false.
	b.Set(-1)
	b.Set(1000)
	if b.Get(-1) || b.Get(1000) {
		t.Error("out-of-range Get should be false")
	}
	if b.Count() != 4 {
		t.Error("out-of-range Set should be ignored")
	}
	// Idempotent set.
	b.Set(0)
	if b.Count() != 4 {
		t.Error("re-Set should not change Count")
	}
}

func TestBitSetAnyInRange(t *testing.T) {
	b := NewBitSet(200)
	b.Set(70)
	cases := []struct {
		from, to int
		want     bool
	}{
		{0, 69, false},
		{0, 70, true},
		{70, 70, true},
		{71, 199, false},
		{70, 199, true},
		{-10, 300, true}, // clamped
		{80, 60, false},  // inverted range
	}
	for _, c := range cases {
		if got := b.AnyInRange(c.from, c.to); got != c.want {
			t.Errorf("AnyInRange(%d,%d) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
	empty := NewBitSet(64)
	if empty.AnyInRange(0, 63) {
		t.Error("empty AnyInRange should be false")
	}
}

func TestBitSetFirstLast(t *testing.T) {
	b := NewBitSet(300)
	if b.First(0) != -1 || b.Last(299) != -1 {
		t.Error("empty bitset First/Last should be -1")
	}
	for _, i := range []int{5, 64, 128, 250} {
		b.Set(i)
	}
	if got := b.First(0); got != 5 {
		t.Errorf("First(0) = %d", got)
	}
	if got := b.First(6); got != 64 {
		t.Errorf("First(6) = %d", got)
	}
	if got := b.First(251); got != -1 {
		t.Errorf("First(251) = %d", got)
	}
	if got := b.Last(299); got != 250 {
		t.Errorf("Last(299) = %d", got)
	}
	if got := b.Last(249); got != 128 {
		t.Errorf("Last(249) = %d", got)
	}
	if got := b.Last(4); got != -1 {
		t.Errorf("Last(4) = %d", got)
	}
	if got := b.First(-10); got != 5 {
		t.Errorf("First(-10) = %d", got)
	}
	if got := b.Last(1000); got != 250 {
		t.Errorf("Last(1000) = %d", got)
	}
}

// Property test against a brute-force boolean slice.
func TestPropBitSetMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(400)
		b := NewBitSet(n)
		ref := make([]bool, n)
		for i := 0; i < n/3+1; i++ {
			x := r.Intn(n)
			b.Set(x)
			ref[x] = true
		}
		for i := 0; i < n; i++ {
			if b.Get(i) != ref[i] {
				t.Fatalf("Get(%d) mismatch", i)
			}
		}
		// Count.
		want := 0
		for _, v := range ref {
			if v {
				want++
			}
		}
		if b.Count() != want {
			t.Fatalf("Count = %d, want %d", b.Count(), want)
		}
		// Random ranges.
		for q := 0; q < 30; q++ {
			from, to := r.Intn(n), r.Intn(n)
			wantAny := false
			lo, hi := from, to
			if lo < 0 {
				lo = 0
			}
			for i := lo; i <= hi && i < n; i++ {
				if ref[i] {
					wantAny = true
					break
				}
			}
			if got := b.AnyInRange(from, to); got != wantAny {
				t.Fatalf("AnyInRange(%d,%d) = %v, want %v", from, to, got, wantAny)
			}
			// First/Last against reference.
			wantFirst := -1
			for i := from; i >= 0 && i < n; i++ {
				if ref[i] {
					wantFirst = i
					break
				}
			}
			if from < 0 {
				wantFirst = -2 // unused
			}
			if got := b.First(from); from >= 0 && got != wantFirst {
				t.Fatalf("First(%d) = %d, want %d", from, got, wantFirst)
			}
			wantLast := -1
			for i := to; i >= 0; i-- {
				if i < n && ref[i] {
					wantLast = i
					break
				}
			}
			if got := b.Last(to); got != wantLast {
				t.Fatalf("Last(%d) = %d, want %d", to, got, wantLast)
			}
		}
	}
}
