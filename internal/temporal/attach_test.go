package temporal

import (
	"fmt"
	"testing"
)

// attachFixture builds a conventional store, serializes its slab via Range,
// and returns an attached reconstruction alongside the original.
func attachFixture(t *testing.T, numDays, nKeys int) (orig, att *Store[string]) {
	t.Helper()
	orig = NewStore[string](numDays)
	for i := 0; i < nKeys; i++ {
		k := fmt.Sprintf("k%04d", i)
		orig.Observe(k, Day(i%numDays))
		orig.Observe(k, Day((i*7+3)%numDays))
	}
	stride := (numDays + 63) / 64
	keys := make([]string, 0, nKeys)
	slab := make([]uint64, 0, nKeys*stride)
	orig.Range(func(k string, days []uint64) bool {
		keys = append(keys, k)
		slab = append(slab, days...)
		return true
	})
	return orig, AttachStore(numDays, keys, slab, nil)
}

func TestAttachStoreEquivalence(t *testing.T) {
	for _, nKeys := range []int{0, 3, 4096, 5000} {
		t.Run(fmt.Sprintf("keys=%d", nKeys), func(t *testing.T) {
			const numDays = 40
			orig, att := attachFixture(t, numDays, nKeys)
			if att.Len() != orig.Len() {
				t.Fatalf("Len = %d, want %d", att.Len(), orig.Len())
			}
			for d := 0; d < numDays; d++ {
				if got, want := att.ActiveCount(Day(d)), orig.ActiveCount(Day(d)); got != want {
					t.Fatalf("ActiveCount(%d) = %d, want %d", d, got, want)
				}
			}
			// Point queries exercise the lazily built key index.
			for i := 0; i < nKeys; i += 97 {
				k := fmt.Sprintf("k%04d", i)
				if att.Days(k) == nil {
					t.Fatalf("key %q lost in attach", k)
				}
				if !att.Active(k, Day(i%numDays)) {
					t.Fatalf("key %q inactive on its day", k)
				}
			}
			got := att.ClassifyDay(3, 2, Options{})
			want := orig.ClassifyDay(3, 2, Options{})
			if got != want {
				t.Fatalf("ClassifyDay = %+v, want %+v", got, want)
			}
		})
	}
}

// TestAttachStoreCompactInPlace proves the open → freeze fast path: when no
// keys were added since attach, Compact re-adopts the attached slab without
// allocating a new one, including tail-chunk write-back of post-attach
// observes.
func TestAttachStoreCompactInPlace(t *testing.T) {
	const numDays = 40
	orig, att := attachFixture(t, numDays, 5000)
	// Mutate an existing key in the copied tail chunk and one in a full
	// chunk view before compacting.
	att.Observe("k4999", 11)
	att.Observe("k0001", 12)
	orig.Observe("k4999", 11)
	orig.Observe("k0001", 12)
	slab := att.attached
	att.Compact()
	if !att.sealed {
		t.Fatal("Compact did not seal the store")
	}
	if len(att.chunks) != 1 || &att.chunks[0][0] != &slab[0] {
		t.Fatal("Compact copied the attached slab instead of re-adopting it")
	}
	if !att.Active("k4999", 11) || !att.Active("k0001", 12) {
		t.Fatal("post-attach observes lost by in-place compact")
	}
	if got, want := att.ClassifyDay(3, 2, Options{}), orig.ClassifyDay(3, 2, Options{}); got != want {
		t.Fatalf("ClassifyDay after compact = %+v, want %+v", got, want)
	}
}

// TestAttachStoreGrowth checks that an attached store accepts new keys (the
// daily-pipeline extension path) and that Compact then falls back to the
// copying path, releasing the attached slab.
func TestAttachStoreGrowth(t *testing.T) {
	const numDays = 40
	_, att := attachFixture(t, numDays, 5000)
	att.Observe("fresh-key", 7)
	if !att.Active("fresh-key", 7) {
		t.Fatal("new key not observable after attach")
	}
	if att.Len() != 5001 {
		t.Fatalf("Len = %d, want 5001", att.Len())
	}
	att.Compact()
	if att.attached != nil {
		t.Fatal("grown store kept the attached slab after copying compact")
	}
	if !att.Active("fresh-key", 7) || !att.Active("k0000", 0) {
		t.Fatal("rows lost in copying compact")
	}
}

func TestAttachShardedStoreEquivalence(t *testing.T) {
	const numDays = 40
	hash := func(k string) uint64 {
		var h uint64 = 1469598103934665603
		for i := 0; i < len(k); i++ {
			h = (h ^ uint64(k[i])) * 1099511628211
		}
		return h
	}
	orig, _ := attachFixture(t, numDays, 5000)
	stride := (numDays + 63) / 64
	var keys []string
	slab := make([]uint64, 0, 5000*stride)
	orig.Range(func(k string, days []uint64) bool {
		keys = append(keys, k)
		slab = append(slab, days...)
		return true
	})
	sh := AttachShardedStore(numDays, 8, hash, keys, slab)
	if sh.Len() != orig.Len() {
		t.Fatalf("Len = %d, want %d", sh.Len(), orig.Len())
	}
	for d := 0; d < numDays; d++ {
		if got, want := sh.ActiveCount(Day(d)), orig.ActiveCount(Day(d)); got != want {
			t.Fatalf("ActiveCount(%d) = %d, want %d", d, got, want)
		}
	}
	if got, want := sh.ClassifyDay(3, 2, Options{}), orig.ClassifyDay(3, 2, Options{}); got != want {
		t.Fatalf("ClassifyDay = %+v, want %+v", got, want)
	}
	// Still ingesting: new keys route to shards, then Freeze.
	sh.Observe("fresh-key", 7)
	sh.Freeze()
	if !sh.Active("fresh-key", 7) {
		t.Fatal("new key lost through freeze")
	}
	// Per-shard row order must match the v1 route-in-file-order layout.
	want := NewShardedStoreN(numDays, 8, hash)
	for i := range keys {
		want.Restore(keys[i], slab[i*stride:(i+1)*stride])
	}
	want.Observe("fresh-key", 7)
	want.Freeze()
	var gotOrder, wantOrder []string
	sh.Range(func(k string, _ []uint64) bool { gotOrder = append(gotOrder, k); return true })
	want.Range(func(k string, _ []uint64) bool { wantOrder = append(wantOrder, k); return true })
	if len(gotOrder) != len(wantOrder) {
		t.Fatalf("Range count %d, want %d", len(gotOrder), len(wantOrder))
	}
	for i := range gotOrder {
		if gotOrder[i] != wantOrder[i] {
			t.Fatalf("Range order diverges at %d: %q vs %q", i, gotOrder[i], wantOrder[i])
		}
	}
}
