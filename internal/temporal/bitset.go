package temporal

import "math/bits"

// BitSet is a fixed-capacity bit set indexed by day number. It is the
// per-address activity record: bit i is set when the address was observed
// active on study day i.
type BitSet struct {
	w []uint64
}

// NewBitSet returns a BitSet able to hold days [0, n).
func NewBitSet(n int) *BitSet {
	return &BitSet{w: make([]uint64, (n+63)/64)}
}

// Set marks day i active. Out-of-range days are ignored.
func (b *BitSet) Set(i int) {
	if i < 0 || i >= len(b.w)*64 {
		return
	}
	b.w[i/64] |= 1 << (i % 64)
}

// Get reports whether day i is active.
func (b *BitSet) Get(i int) bool {
	if i < 0 || i >= len(b.w)*64 {
		return false
	}
	return b.w[i/64]&(1<<(i%64)) != 0
}

// Count returns the number of active days.
func (b *BitSet) Count() int {
	n := 0
	for _, w := range b.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// AnyInRange reports whether any day in [from, to] (inclusive) is active.
func (b *BitSet) AnyInRange(from, to int) bool {
	if from < 0 {
		from = 0
	}
	max := len(b.w)*64 - 1
	if to > max {
		to = max
	}
	for i := from; i <= to; {
		word, bit := i/64, i%64
		w := b.w[word] >> bit
		// Bits remaining in this word that are still within range.
		remain := 64 - bit
		if span := to - i + 1; span < remain {
			remain = span
		}
		if w&maskLow(remain) != 0 {
			return true
		}
		i += remain
	}
	return false
}

// First returns the first active day at or after from, or -1 if none.
func (b *BitSet) First(from int) int {
	if from < 0 {
		from = 0
	}
	for i := from / 64; i < len(b.w); i++ {
		w := b.w[i]
		if i == from/64 {
			w &^= maskLow(from % 64)
		}
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Last returns the last active day at or before to, or -1 if none.
func (b *BitSet) Last(to int) int {
	max := len(b.w)*64 - 1
	if to > max {
		to = max
	}
	if to < 0 {
		return -1
	}
	for i := to / 64; i >= 0; i-- {
		w := b.w[i]
		if i == to/64 {
			keep := to%64 + 1
			w &= maskLow(keep)
		}
		if w != 0 {
			return i*64 + 63 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// Runs returns the number of maximal contiguous runs of active days: 1 for
// a continuously active key, approaching half the span for day-on/day-off
// flicker, 0 for an empty set.
func (b *BitSet) Runs() int {
	runs := 0
	carry := uint64(0) // bit 63 of the previous word, shifted into bit 0
	for _, w := range b.w {
		// A run starts at every set bit whose predecessor is clear.
		starts := w &^ (w<<1 | carry)
		runs += bits.OnesCount64(starts)
		carry = w >> 63
	}
	return runs
}

// maskLow returns a uint64 with the low n bits set (n in [0,64]).
func maskLow(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (1 << n) - 1
}

// Words exposes the raw backing words (little-endian day order) for
// serialization. The returned slice must not be modified.
func (b *BitSet) Words() []uint64 { return b.w }

// BitSetFromWords reconstructs a BitSet from serialized words.
func BitSetFromWords(w []uint64) *BitSet {
	return &BitSet{w: append([]uint64(nil), w...)}
}
