package temporal

// BitSet is a fixed-capacity bit set indexed by day number: bit i is set
// when the key was observed active on study day i. The slab-backed Store
// keeps its day bits in shared slabs rather than one BitSet per key; BitSet
// remains the standalone activity record — the unit of snapshot
// serialization and the naive reference implementation the slab's
// word-level bulk operations are property-tested against.
type BitSet struct {
	w []uint64
}

// NewBitSet returns a BitSet able to hold days [0, n).
func NewBitSet(n int) *BitSet {
	return &BitSet{w: make([]uint64, (n+63)/64)}
}

// Set marks day i active. Out-of-range days are ignored.
func (b *BitSet) Set(i int) {
	wordSet(b.w, i)
}

// Get reports whether day i is active.
func (b *BitSet) Get(i int) bool {
	return wordGet(b.w, i)
}

// Count returns the number of active days.
func (b *BitSet) Count() int {
	return wordsCount(b.w)
}

// AnyInRange reports whether any day in [from, to] (inclusive) is active.
func (b *BitSet) AnyInRange(from, to int) bool {
	return wordsAnyInRange(b.w, from, to)
}

// First returns the first active day at or after from, or -1 if none.
func (b *BitSet) First(from int) int {
	return wordsFirst(b.w, from)
}

// Last returns the last active day at or before to, or -1 if none.
func (b *BitSet) Last(to int) int {
	return wordsLast(b.w, to)
}

// Runs returns the number of maximal contiguous runs of active days: 1 for
// a continuously active key, approaching half the span for day-on/day-off
// flicker, 0 for an empty set.
func (b *BitSet) Runs() int {
	return wordsRuns(b.w)
}

// Words exposes the raw backing words (little-endian day order) for
// serialization. The returned slice must not be modified.
func (b *BitSet) Words() []uint64 { return b.w }
