package temporal

import "math/bits"

// Attach-from-buffer construction: the snapshot v2 readers hand a Store its
// key table and day-word slab exactly as they sit in the file (or an mmap of
// it), and the Store adopts them instead of replaying key-by-key Restores.
// The only copies are the partial tail chunk (so addRow can still grow the
// store for the daily-pipeline workflow) and, on ShardedStore, the per-shard
// scatter. The per-day counters rebuild in one O(set bits) pass and the
// key -> row map builds lazily on first point access (see Store.index).

// AttachStore constructs a Store over a deserialized snapshot: keys is the
// row -> key table and slab the contiguous day-word matrix, len(keys)*stride
// words at stride ceil(numDays/64). Both slices are adopted, not copied —
// the caller must not reuse them — and slab must be writable (a MAP_PRIVATE
// mapping qualifies: in-place Observes dirty private pages, never the file).
// retain, when non-nil, is pinned by the store for the lifetime of the slab
// memory, which is how a file mapping outlives its *os.File.
//
// The resulting store is ingestion-ready: Observe and Restore work on
// existing and new keys alike, and Compact on an untouched attach re-adopts
// the slab in place (no copy), so open → freeze costs O(1) in the matrix.
func AttachStore[K comparable](numDays int, keys []K, slab []uint64, retain any) *Store[K] {
	if numDays <= 0 {
		panic("temporal: study period must have at least one day")
	}
	stride := (numDays + 63) / 64
	if len(slab) != len(keys)*stride {
		panic("temporal: attach slab does not match key count")
	}
	s := &Store[K]{
		numDays:  numDays,
		stride:   stride,
		keys:     keys,
		perDay:   make([]int, numDays),
		shift:    chunkShift,
		mask:     1<<chunkShift - 1,
		attached: slab,
		retain:   retain,
	}
	// Full chunks view the slab in place; a partial tail chunk is copied
	// into a growable full-size chunk so addRow still works after attach.
	chunkWords := (1 << chunkShift) * stride
	full := len(keys) >> chunkShift
	for c := 0; c < full; c++ {
		s.chunks = append(s.chunks, slab[c*chunkWords:(c+1)*chunkWords:(c+1)*chunkWords])
	}
	if tail := len(keys) & (1<<chunkShift - 1); tail > 0 {
		ch := make([]uint64, chunkWords)
		copy(ch, slab[full*chunkWords:])
		s.chunks = append(s.chunks, ch)
	}
	// Rebuild the per-day distinct-key counters: word i of the slab holds
	// days [64*(i%stride), 64*(i%stride)+63) of row i/stride. Bits beyond
	// numDays are ignored, matching Restore's counting semantics.
	for i, w := range slab {
		base := i % stride * 64
		for ; w != 0; w &= w - 1 {
			if d := base + bits.TrailingZeros64(w); d < numDays {
				s.perDay[d]++
			}
		}
	}
	return s
}

// AttachShardedStore constructs a ShardedStore from the same snapshot
// sections AttachStore takes, scattering rows to their hash shards. Unlike
// the sequential attach this copies each row once (a shard partition cannot
// alias one contiguous file section), but it still replaces the per-key
// decode-and-route of the v1 reader with two linear passes. Within each
// shard, rows keep their slab order, so a census read through either
// reader serializes identically. shardCount rounds up to a power of two;
// zero selects the GOMAXPROCS-scaled default.
func AttachShardedStore[K comparable](numDays, shardCount int, hash func(K) uint64, keys []K, slab []uint64) *ShardedStore[K] {
	if shardCount <= 0 {
		shardCount = DefaultShardCount()
	}
	s := NewShardedStoreN(numDays, shardCount, hash)
	stride := (numDays + 63) / 64
	if len(slab) != len(keys)*stride {
		panic("temporal: attach slab does not match key count")
	}
	n := len(s.shards)
	shardOf := make([]uint16, len(keys))
	counts := make([]int, n)
	for i, k := range keys {
		sh := uint16(hash(k) & uint64(n-1))
		shardOf[i] = sh
		counts[sh]++
	}
	type part struct {
		keys []K
		slab []uint64
	}
	parts := make([]part, n)
	for i := range parts {
		parts[i] = part{
			keys: make([]K, 0, counts[i]),
			slab: make([]uint64, 0, counts[i]*stride),
		}
	}
	for i, k := range keys {
		p := &parts[shardOf[i]]
		p.keys = append(p.keys, k)
		p.slab = append(p.slab, slab[i*stride:(i+1)*stride]...)
	}
	for i := range s.shards {
		s.shards[i].st = AttachStore(numDays, parts[i].keys, parts[i].slab, nil)
	}
	return s
}
