package temporal

import "math/bits"

// Word-level primitives over a day-bit row: a []uint64 in little-endian day
// order (bit i of word i/64 is study day i). These are shared by BitSet and
// by the slab-backed Store, whose rows are windows of one contiguous slab;
// keeping them as free functions lets the bulk analytics run branch-free
// over dense memory without materializing a BitSet per key.

// wordGet reports whether day i is set. Out-of-range days are inactive.
func wordGet(w []uint64, i int) bool {
	return i >= 0 && i < len(w)*64 && w[i/64]&(1<<(i%64)) != 0
}

// wordSet marks day i and reports whether it was newly set. Out-of-range
// days are ignored.
func wordSet(w []uint64, i int) bool {
	if i < 0 || i >= len(w)*64 {
		return false
	}
	if w[i/64]&(1<<(i%64)) != 0 {
		return false
	}
	w[i/64] |= 1 << (i % 64)
	return true
}

// wordsAnyInRange reports whether any day in [from, to] (inclusive) is set.
func wordsAnyInRange(w []uint64, from, to int) bool {
	if from < 0 {
		from = 0
	}
	max := len(w)*64 - 1
	if to > max {
		to = max
	}
	for i := from; i <= to; {
		word, bit := i/64, i%64
		v := w[word] >> bit
		// Bits remaining in this word that are still within range.
		remain := 64 - bit
		if span := to - i + 1; span < remain {
			remain = span
		}
		if v&maskLow(remain) != 0 {
			return true
		}
		i += remain
	}
	return false
}

// wordsCountRange returns the number of set days in [from, to] (inclusive).
func wordsCountRange(w []uint64, from, to int) int {
	if from < 0 {
		from = 0
	}
	max := len(w)*64 - 1
	if to > max {
		to = max
	}
	n := 0
	for i := from; i <= to; {
		word, bit := i/64, i%64
		v := w[word] >> bit
		remain := 64 - bit
		if span := to - i + 1; span < remain {
			remain = span
		}
		n += bits.OnesCount64(v & maskLow(remain))
		i += remain
	}
	return n
}

// wordsCount returns the number of set days.
func wordsCount(w []uint64) int {
	n := 0
	for _, v := range w {
		n += bits.OnesCount64(v)
	}
	return n
}

// wordsFirst returns the first set day at or after from, or -1 if none.
func wordsFirst(w []uint64, from int) int {
	if from < 0 {
		from = 0
	}
	for i := from / 64; i < len(w); i++ {
		v := w[i]
		if i == from/64 {
			v &^= maskLow(from % 64)
		}
		if v != 0 {
			return i*64 + bits.TrailingZeros64(v)
		}
	}
	return -1
}

// wordsLast returns the last set day at or before to, or -1 if none.
func wordsLast(w []uint64, to int) int {
	max := len(w)*64 - 1
	if to > max {
		to = max
	}
	if to < 0 {
		return -1
	}
	for i := to / 64; i >= 0; i-- {
		v := w[i]
		if i == to/64 {
			keep := to%64 + 1
			v &= maskLow(keep)
		}
		if v != 0 {
			return i*64 + 63 - bits.LeadingZeros64(v)
		}
	}
	return -1
}

// wordsRuns returns the number of maximal contiguous runs of set days.
func wordsRuns(w []uint64) int {
	runs := 0
	carry := uint64(0) // bit 63 of the previous word, shifted into bit 0
	for _, v := range w {
		// A run starts at every set bit whose predecessor is clear.
		starts := v &^ (v<<1 | carry)
		runs += bits.OnesCount64(starts)
		carry = v >> 63
	}
	return runs
}

// maskLow returns a uint64 with the low n bits set (n in [0,64]).
func maskLow(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (1 << n) - 1
}
