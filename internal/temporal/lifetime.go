package temporal

import "sort"

// Lifetime analysis: the paper's temporal dimension is motivated by "the
// vast majority of IPv6 addresses exist for short periods, e.g., 24 hours
// or less, and in all likelihood will never be used again" (Section 1).
// These helpers quantify exactly that over a Store: observed lifespans
// (from first to last sighting), active-day counts, and single-day shares.

// LifetimeStats summarizes the observed lifetimes of a key population over
// a day range.
type LifetimeStats struct {
	// Keys is the number of distinct keys observed in the range.
	Keys int
	// SingleDay is the number observed on exactly one day — the
	// ephemeral class that likely "will never be used again".
	SingleDay int
	// SpanHistogram[s] counts keys whose observed span (last day - first
	// day + 1) equals s+1; index 0 is a single day.
	SpanHistogram []int
	// ActiveDaysHistogram[d] counts keys observed on exactly d+1 days.
	ActiveDaysHistogram []int
}

// SingleDayShare returns the fraction of keys seen on only one day.
func (s LifetimeStats) SingleDayShare() float64 {
	if s.Keys == 0 {
		return 0
	}
	return float64(s.SingleDay) / float64(s.Keys)
}

// MedianSpan returns the median observed span in days (1 = one day);
// 0 for an empty population.
func (s LifetimeStats) MedianSpan() int {
	total := 0
	for _, n := range s.SpanHistogram {
		total += n
	}
	if total == 0 {
		return 0
	}
	half := (total + 1) / 2
	seen := 0
	for span, n := range s.SpanHistogram {
		seen += n
		if seen >= half {
			return span + 1
		}
	}
	return len(s.SpanHistogram)
}

// Lifetimes computes lifetime statistics for all keys with any activity in
// [from, to] (inclusive), using only observations within the range.
func (s *Store[K]) Lifetimes(from, to Day) LifetimeStats {
	return s.LifetimesRows(from, to, 0, len(s.keys))
}

// LifetimesRows is Lifetimes restricted to rows [r0, r1), the additive
// merge unit of a partitioned sweep: partial stats over disjoint row ranges
// merge with mergeLifetimes.
func (s *Store[K]) LifetimesRows(from, to Day, r0, r1 int) LifetimeStats {
	if int(from) < 0 {
		from = 0
	}
	if int(to) >= s.numDays {
		to = Day(s.numDays - 1)
	}
	span := int(to-from) + 1
	if span <= 0 {
		return LifetimeStats{}
	}
	out := LifetimeStats{
		SpanHistogram:       make([]int, span),
		ActiveDaysHistogram: make([]int, span),
	}
	for r := r0; r < r1; r++ {
		w := s.row(uint32(r))
		first := wordsFirst(w, int(from))
		if first < 0 || first > int(to) {
			continue
		}
		last := wordsLast(w, int(to))
		out.Keys++
		life := last - first // 0-based span
		out.SpanHistogram[life]++
		days := wordsCountRange(w, first, int(to))
		out.ActiveDaysHistogram[days-1]++
		if days == 1 {
			out.SingleDay++
		}
	}
	return out
}

// mergeLifetimes adds partial lifetime stats from a disjoint row range into
// dst (Keys, SingleDay and both histograms are all sums over keys).
func mergeLifetimes(dst *LifetimeStats, p LifetimeStats) {
	dst.Keys += p.Keys
	dst.SingleDay += p.SingleDay
	if dst.SpanHistogram == nil {
		dst.SpanHistogram = make([]int, len(p.SpanHistogram))
		dst.ActiveDaysHistogram = make([]int, len(p.ActiveDaysHistogram))
	}
	for i, n := range p.SpanHistogram {
		dst.SpanHistogram[i] += n
	}
	for i, n := range p.ActiveDaysHistogram {
		dst.ActiveDaysHistogram[i] += n
	}
}

// gapCounts is the additive partial result behind ReturnProbability: per-gap
// return and opportunity counts over a row range.
type gapCounts struct {
	num, den []int
}

// returnCountsRows tallies, over rows [r0, r1), how often a key active on a
// day of [from, to-g] was active again exactly g days later.
func (s *Store[K]) returnCountsRows(from, to Day, maxGap, r0, r1 int) gapCounts {
	gc := gapCounts{num: make([]int, maxGap+1), den: make([]int, maxGap+1)}
	for r := r0; r < r1; r++ {
		w := s.row(uint32(r))
		for d := wordsFirst(w, int(from)); d >= 0 && d <= int(to); d = wordsFirst(w, d+1) {
			for g := 1; g <= maxGap; g++ {
				if d+g > int(to) {
					break
				}
				gc.den[g]++
				if wordGet(w, d+g) {
					gc.num[g]++
				}
			}
		}
	}
	return gc
}

// ReturnProbability returns, for each gap g in [1, maxGap], the probability
// that a key active on some day is active again exactly g days later,
// estimated over the day range [from, to-maxGap]. This is the per-day decay
// behind Figure 4's stepwise overlap curves.
func (s *Store[K]) ReturnProbability(from, to Day, maxGap int) []float64 {
	return s.returnCountsRows(from, to, maxGap, 0, len(s.keys)).probabilities()
}

// probabilities converts tallied counts into per-gap probabilities.
func (gc gapCounts) probabilities() []float64 {
	out := make([]float64, len(gc.num))
	for g := 1; g < len(gc.num); g++ {
		if gc.den[g] > 0 {
			out[g] = float64(gc.num[g]) / float64(gc.den[g])
		}
	}
	return out
}

// Lifetimes computes lifetime statistics over every shard, partitioned into
// row tiles post-freeze like the other bulk sweeps.
func (s *ShardedStore[K]) Lifetimes(from, to Day) LifetimeStats {
	var out LifetimeStats
	for _, p := range sweepTiles(s, func(st *Store[K], r0, r1 int) LifetimeStats {
		return st.LifetimesRows(from, to, r0, r1)
	}) {
		mergeLifetimes(&out, p)
	}
	return out
}

// ReturnProbability estimates per-gap return probabilities over every
// shard, merging the per-tile return and opportunity counts before
// dividing.
func (s *ShardedStore[K]) ReturnProbability(from, to Day, maxGap int) []float64 {
	total := gapCounts{num: make([]int, maxGap+1), den: make([]int, maxGap+1)}
	for _, p := range sweepTiles(s, func(st *Store[K], r0, r1 int) gapCounts {
		return st.returnCountsRows(from, to, maxGap, r0, r1)
	}) {
		for g := range p.num {
			total.num[g] += p.num[g]
			total.den[g] += p.den[g]
		}
	}
	return total.probabilities()
}

// TopRecurring returns up to limit keys with the most active days in
// [from, to], most active first — a target-selection helper complementing
// nd-stable classes.
func (s *Store[K]) TopRecurring(from, to Day, limit int) []K {
	type kc struct {
		k K
		n int
	}
	var all []kc
	for r := range s.keys {
		w := s.row(uint32(r))
		lo := int(from)
		if lo < 0 {
			lo = 0
		}
		n := wordsCountRange(w, lo, int(to))
		if n > 1 {
			all = append(all, kc{s.keys[r], n})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
	if limit > len(all) {
		limit = len(all)
	}
	out := make([]K, limit)
	for i := range out {
		out[i] = all[i].k
	}
	return out
}
