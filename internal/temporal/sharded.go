package temporal

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ShardedStore is a Store partitioned across several independent shards by
// key hash, so that ingestion can proceed on many goroutines at once: each
// key deterministically belongs to exactly one shard, writers synchronize
// per shard, and every analysis merges per-shard results (the stability
// classes, overlap series and epoch counts are all sums over disjoint key
// partitions).
//
// Concurrency model:
//
//   - Before Freeze, Observe/ApplyBatch/Restore may be called from any
//     number of goroutines; each locks only the shard it touches. Queries
//     are also safe (they lock each shard while reading it) but see an
//     in-progress census.
//   - Freeze flips the store into its read-only phase: it compacts every
//     shard's slab into one read-optimized contiguous block, subsequent
//     writes panic, and queries stop taking locks entirely. Call it once
//     ingestion has completed (after any ingesting goroutines have been
//     joined).
//   - Post-freeze bulk sweeps partition the frozen row space into
//     row-range tiles — splitting within shards when there are fewer
//     shards than GOMAXPROCS — and run them on a bounded worker pool, so
//     analyses parallelize to the machine regardless of shard count.
type ShardedStore[K comparable] struct {
	numDays int
	hash    func(K) uint64
	frozen  atomic.Bool
	shards  []storeShard[K]
}

type storeShard[K comparable] struct {
	mu sync.Mutex
	st *Store[K]
	// Pad to a full 64-byte cache line (8B mutex + 8B pointer + 48B) so
	// neighboring shard locks don't false-share.
	_ [48]byte
}

// Obs is one routed observation: key k was active on day d. It is the batch
// element type of ApplyBatch.
type Obs[K comparable] struct {
	Key K
	Day Day
}

// DefaultShardCount returns the shard count used by NewShardedStore: the
// smallest power of two >= GOMAXPROCS, so the hash's low bits spread keys
// evenly and every core can own a shard.
func DefaultShardCount() int {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n && s < 128 {
		s <<= 1
	}
	return s
}

// NewShardedStore returns a ShardedStore with DefaultShardCount shards.
// hash must be a deterministic, well-mixed function of the key; equal
// configurations then produce identical shard layouts.
func NewShardedStore[K comparable](numDays int, hash func(K) uint64) *ShardedStore[K] {
	return NewShardedStoreN(numDays, DefaultShardCount(), hash)
}

// NewShardedStoreN returns a ShardedStore with an explicit shard count,
// rounded up to a power of two.
func NewShardedStoreN[K comparable](numDays, shardCount int, hash func(K) uint64) *ShardedStore[K] {
	if numDays <= 0 {
		panic("temporal: study period must have at least one day")
	}
	if hash == nil {
		panic("temporal: ShardedStore needs a key hash")
	}
	n := 1
	for n < shardCount && n < 1<<16 {
		n <<= 1
	}
	s := &ShardedStore[K]{numDays: numDays, hash: hash, shards: make([]storeShard[K], n)}
	for i := range s.shards {
		s.shards[i].st = NewStore[K](numDays)
	}
	return s
}

// NumDays returns the length of the study period.
func (s *ShardedStore[K]) NumDays() int { return s.numDays }

// NumShards returns the shard count.
func (s *ShardedStore[K]) NumShards() int { return len(s.shards) }

// ShardFor returns the index of the shard owning key k.
func (s *ShardedStore[K]) ShardFor(k K) int {
	return int(s.hash(k) & uint64(len(s.shards)-1))
}

// Freeze ends the ingestion phase. After Freeze, writes panic and queries
// run lock-free over compacted slabs: every shard's arena chunks are fused
// into one exactly-sized contiguous block (in parallel across shards)
// before the store flips read-only. Callers must join all ingesting
// goroutines first; Freeze acquires every shard lock for the duration of
// compaction so that all effects are visible to subsequent lock-free
// readers.
func (s *ShardedStore[K]) Freeze() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.shards[i].st.Compact()
		}(i)
	}
	wg.Wait()
	s.frozen.Store(true)
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
}

// Frozen reports whether Freeze has been called.
func (s *ShardedStore[K]) Frozen() bool { return s.frozen.Load() }

func (s *ShardedStore[K]) writable() {
	if s.frozen.Load() {
		panic("temporal: write to frozen ShardedStore")
	}
}

// Observe records that k was active on day d. Safe for concurrent use
// before Freeze.
func (s *ShardedStore[K]) Observe(k K, d Day) {
	s.writable()
	sh := &s.shards[s.ShardFor(k)]
	sh.mu.Lock()
	sh.st.Observe(k, d)
	sh.mu.Unlock()
}

// ApplyBatch records a batch of observations that all belong to the given
// shard (every key must satisfy ShardFor(key) == shard, as produced by a
// routing stage). The shard lock is taken once for the whole batch, which
// is what makes channel-routed pipelines cheap.
func (s *ShardedStore[K]) ApplyBatch(shard int, batch []Obs[K]) {
	s.writable()
	sh := &s.shards[shard]
	sh.mu.Lock()
	for _, o := range batch {
		sh.st.Observe(o.Key, o.Day)
	}
	sh.mu.Unlock()
}

// Restore installs deserialized activity words for k, routing to its
// shard. Safe for concurrent use before Freeze.
func (s *ShardedStore[K]) Restore(k K, days []uint64) {
	s.writable()
	sh := &s.shards[s.ShardFor(k)]
	sh.mu.Lock()
	sh.st.Restore(k, days)
	sh.mu.Unlock()
}

// withShard runs fn on the shard owning k, locking unless frozen.
func (s *ShardedStore[K]) withShard(k K, fn func(st *Store[K])) {
	sh := &s.shards[s.ShardFor(k)]
	if s.frozen.Load() {
		fn(sh.st)
		return
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fn(sh.st)
}

// withShard0 is withShard by shard index.
func (s *ShardedStore[K]) withShard0(i int, fn func(st *Store[K])) {
	sh := &s.shards[i]
	if s.frozen.Load() {
		fn(sh.st)
		return
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fn(sh.st)
}

// shardMap runs fn over every shard in shard order and returns the
// per-shard results. It is the merge scaffold for the cheap aggregates
// (lengths, per-day counters) whose cost is far below goroutine overhead;
// the per-key sweeps go through sweepTiles instead. Before Freeze each
// shard is read under its lock.
func shardMap[K comparable, T any](s *ShardedStore[K], fn func(st *Store[K]) T) []T {
	out := make([]T, len(s.shards))
	for i := range s.shards {
		s.withShard0(i, func(st *Store[K]) { out[i] = fn(st) })
	}
	return out
}

// minTileRows is the smallest row count worth splitting into a further
// tile: below this the sweep is cheaper than the goroutine handoff.
const minTileRows = 1 << 12

// rowTile is one unit of a partitioned sweep: rows [r0, r1) of one shard.
type rowTile struct {
	shard, r0, r1 int
}

// sweepTiles runs fn over disjoint row ranges covering every shard and
// returns the per-tile results in deterministic (shard, row) order, to be
// merged additively by the caller. Post-freeze the frozen row space is cut
// into enough tiles that every core participates even when shards are
// fewer than GOMAXPROCS, and the tiles run on a bounded worker pool.
// Before Freeze each shard is one tile read under its lock on the calling
// goroutine (an in-progress census; cheap consistency over parallelism).
func sweepTiles[K comparable, T any](s *ShardedStore[K], fn func(st *Store[K], r0, r1 int) T) []T {
	if !s.frozen.Load() {
		out := make([]T, len(s.shards))
		for i := range s.shards {
			s.withShard0(i, func(st *Store[K]) { out[i] = fn(st, 0, st.Rows()) })
		}
		return out
	}
	procs := runtime.GOMAXPROCS(0)
	perShard := (procs + len(s.shards) - 1) / len(s.shards)
	tiles := make([]rowTile, 0, len(s.shards)*perShard)
	for i := range s.shards {
		rows := s.shards[i].st.Rows()
		nt := perShard
		if most := (rows + minTileRows - 1) / minTileRows; nt > most {
			nt = most
		}
		if nt < 1 {
			nt = 1
		}
		for t := 0; t < nt; t++ {
			tiles = append(tiles, rowTile{shard: i, r0: rows * t / nt, r1: rows * (t + 1) / nt})
		}
	}
	out := make([]T, len(tiles))
	workers := procs
	if workers > len(tiles) {
		workers = len(tiles)
	}
	if workers <= 1 {
		for i, t := range tiles {
			out[i] = fn(s.shards[t.shard].st, t.r0, t.r1)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tiles) {
					return
				}
				t := tiles[i]
				out[i] = fn(s.shards[t.shard].st, t.r0, t.r1)
			}
		}()
	}
	wg.Wait()
	return out
}

// sumInts merges per-tile int results.
func sumInts(parts []int) int {
	n := 0
	for _, p := range parts {
		n += p
	}
	return n
}

// sumVecs merges per-tile []int results element-wise.
func sumVecs(parts [][]int) []int {
	if len(parts) == 0 {
		return nil
	}
	out := make([]int, len(parts[0]))
	for _, p := range parts {
		for i, v := range p {
			out[i] += v
		}
	}
	return out
}

// concat merges per-tile key slices (nil when all empty, matching Store's
// nil results).
func concat[K any](parts [][]K) []K {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	if n == 0 {
		return nil
	}
	out := make([]K, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Len returns the number of distinct keys ever observed.
func (s *ShardedStore[K]) Len() int {
	return sumInts(shardMap(s, func(st *Store[K]) int { return st.Len() }))
}

// Active reports whether k was observed on day d.
func (s *ShardedStore[K]) Active(k K, d Day) bool {
	var out bool
	s.withShard(k, func(st *Store[K]) { out = st.Active(k, d) })
	return out
}

// Days returns the sorted active days of k.
func (s *ShardedStore[K]) Days(k K) []Day {
	var out []Day
	s.withShard(k, func(st *Store[K]) { out = st.Days(k) })
	return out
}

// Activity returns the activity profile of k. Like every point query it
// touches only k's shard: under its lock before Freeze, lock-free after.
func (s *ShardedStore[K]) Activity(k K) (Activity, bool) {
	var out Activity
	var ok bool
	s.withShard(k, func(st *Store[K]) { out, ok = st.Activity(k) })
	return out, ok
}

// NDStable reports whether k is nd-stable with respect to ref under opts.
func (s *ShardedStore[K]) NDStable(k K, ref Day, n int, opts Options) bool {
	var out bool
	s.withShard(k, func(st *Store[K]) { out = st.NDStable(k, ref, n, opts) })
	return out
}

// ActiveCount returns the number of distinct keys observed on day d.
func (s *ShardedStore[K]) ActiveCount(d Day) int {
	return sumInts(shardMap(s, func(st *Store[K]) int { return st.ActiveCount(d) }))
}

// ActivePerDay returns the per-day distinct key counts.
func (s *ShardedStore[K]) ActivePerDay() []int {
	return sumVecs(shardMap(s, func(st *Store[K]) []int { return st.ActivePerDay() }))
}

// ClassifyDay computes the nd-stable split of the population active on ref
// by summing the disjoint per-tile splits.
func (s *ShardedStore[K]) ClassifyDay(ref Day, n int, opts Options) DailyStability {
	out := DailyStability{Ref: ref, N: n}
	for _, p := range sweepTiles(s, func(st *Store[K], r0, r1 int) DailyStability {
		return st.ClassifyDayRows(ref, n, opts, r0, r1)
	}) {
		out.Active += p.Active
		out.Stable += p.Stable
	}
	out.NotStable = out.Active - out.Stable
	return out
}

// ClassifyWeek computes the weekly stability split.
func (s *ShardedStore[K]) ClassifyWeek(start Day, n int, opts Options) WeeklyStability {
	out := WeeklyStability{Start: start, N: n}
	for _, p := range sweepTiles(s, func(st *Store[K], r0, r1 int) WeeklyStability {
		return st.ClassifyWeekRows(start, n, opts, r0, r1)
	}) {
		out.Active += p.Active
		out.Stable += p.Stable
	}
	out.NotStable = out.Active - out.Stable
	return out
}

// StableKeys returns the nd-stable keys for reference day ref.
func (s *ShardedStore[K]) StableKeys(ref Day, n int, opts Options) []K {
	return concat(sweepTiles(s, func(st *Store[K], r0, r1 int) []K {
		return st.StableKeysRows(ref, n, opts, r0, r1)
	}))
}

// OverlapSeries returns the Figure 4 overlap curve around ref.
func (s *ShardedStore[K]) OverlapSeries(ref Day, before, after int) []int {
	return sumVecs(sweepTiles(s, func(st *Store[K], r0, r1 int) []int {
		return st.OverlapSeriesRows(ref, before, after, r0, r1)
	}))
}

// ActiveInRange returns the distinct keys active on at least one day of
// [from, to].
func (s *ShardedStore[K]) ActiveInRange(from, to Day) int {
	return sumInts(sweepTiles(s, func(st *Store[K], r0, r1 int) int {
		return st.ActiveInRangeRows(from, to, r0, r1)
	}))
}

// EpochStable counts keys active during both inclusive day ranges.
func (s *ShardedStore[K]) EpochStable(aFrom, aTo, bFrom, bTo Day) int {
	return sumInts(sweepTiles(s, func(st *Store[K], r0, r1 int) int {
		return st.EpochStableRows(aFrom, aTo, bFrom, bTo, r0, r1)
	}))
}

// EpochStableKeys returns the keys counted by EpochStable.
func (s *ShardedStore[K]) EpochStableKeys(aFrom, aTo, bFrom, bTo Day) []K {
	return concat(sweepTiles(s, func(st *Store[K], r0, r1 int) []K {
		return st.EpochStableKeysRows(aFrom, aTo, bFrom, bTo, r0, r1)
	}))
}

// KeysActiveOn returns the distinct keys active on day d.
func (s *ShardedStore[K]) KeysActiveOn(d Day) []K {
	return concat(sweepTiles(s, func(st *Store[K], r0, r1 int) []K {
		return st.KeysActiveOnRows(d, r0, r1)
	}))
}

// StabilitySpectrum returns, for each n in [1, maxN], the count of keys
// nd-stable on ref.
func (s *ShardedStore[K]) StabilitySpectrum(ref Day, maxN int, opts Options) []int {
	return sumVecs(sweepTiles(s, func(st *Store[K], r0, r1 int) []int {
		return st.StabilitySpectrumRows(ref, maxN, opts, r0, r1)
	}))
}

// Range visits every key with its slab row of day words, shard by shard,
// for serialization. Returning false stops the iteration. Range takes each
// shard's lock unless the store is frozen. The row slices alias the live
// slabs and must not be modified or retained.
func (s *ShardedStore[K]) Range(fn func(k K, days []uint64) bool) {
	for i := range s.shards {
		stop := false
		s.withShard0(i, func(st *Store[K]) {
			st.Range(func(k K, days []uint64) bool {
				if !fn(k, days) {
					stop = true
					return false
				}
				return true
			})
		})
		if stop {
			return
		}
	}
}
