package temporal

import (
	"fmt"
	"hash/maphash"
	"math/rand"
	"slices"
	"testing"
)

// obsSet is a reproducible random observation set over string keys.
func obsSet(r *rand.Rand, keys, perKey, numDays int) []Obs[string] {
	var out []Obs[string]
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%04d", r.Intn(keys*2))
		for j := 0; j < 1+r.Intn(perKey); j++ {
			out = append(out, Obs[string]{Key: k, Day: Day(r.Intn(numDays))})
		}
	}
	return out
}

// collect snapshots a store's full key->row-words view via Range.
func collect(s interface {
	Range(func(string, []uint64) bool)
}) map[string][]uint64 {
	out := make(map[string][]uint64)
	s.Range(func(k string, days []uint64) bool {
		out[k] = append([]uint64(nil), days...)
		return true
	})
	return out
}

func sameView(t *testing.T, got, want map[string][]uint64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d keys, want %d", label, len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("%s: missing key %q", label, k)
		}
		if !slices.Equal(g, w) {
			t.Fatalf("%s: key %q words %v, want %v", label, k, g, w)
		}
	}
}

// TestSuccessorMerge is the copy-on-freeze equivalence property: a parent
// generation extended through a successor overlay must, after Compact, be
// indistinguishable (keys, day words, per-day counters, point queries) from
// a single store that ingested both generations' observations.
func TestSuccessorMerge(t *testing.T) {
	const numDays = 90
	r := rand.New(rand.NewSource(71))
	gen1 := obsSet(r, 300, 6, numDays)
	gen2 := obsSet(r, 120, 4, numDays)

	parent := NewStore[string](numDays)
	for _, o := range gen1 {
		parent.Observe(o.Key, o.Day)
	}
	parent.Compact()
	parentView := collect(parent)

	succ := parent.Successor()
	if succ.Len() != parent.Len() {
		t.Fatalf("fresh successor Len = %d, want parent's %d", succ.Len(), parent.Len())
	}
	for _, o := range gen2 {
		succ.Observe(o.Key, o.Day)
	}

	// The reference: one store fed both generations.
	ref := NewStore[string](numDays)
	for _, o := range gen1 {
		ref.Observe(o.Key, o.Day)
	}
	for _, o := range gen2 {
		ref.Observe(o.Key, o.Day)
	}

	// Pre-compact union reads: Len, Range, per-day counters and point
	// queries must already present the union view.
	if succ.Len() != ref.Len() {
		t.Fatalf("uncompacted successor Len = %d, want %d", succ.Len(), ref.Len())
	}
	sameView(t, collect(succ), collect(ref), "uncompacted Range")
	if !slices.Equal(succ.ActivePerDay(), ref.ActivePerDay()) {
		t.Fatal("uncompacted ActivePerDay differs from reference")
	}
	for k := range collect(ref) {
		ra, rok := ref.Activity(k)
		sa, sok := succ.Activity(k)
		if rok != sok || ra != sa {
			t.Fatalf("Activity(%q) = %+v,%v want %+v,%v", k, sa, sok, ra, rok)
		}
		if !slices.Equal(succ.Days(k), ref.Days(k)) {
			t.Fatalf("Days(%q) differs", k)
		}
	}

	succ.Compact()
	ref.Compact()
	sameView(t, collect(succ), collect(ref), "compacted Range")
	if succ.Len() != ref.Len() || succ.Rows() != ref.Rows() {
		t.Fatalf("compacted Len/Rows = %d/%d, want %d/%d", succ.Len(), succ.Rows(), ref.Len(), ref.Rows())
	}
	if !slices.Equal(succ.ActivePerDay(), ref.ActivePerDay()) {
		t.Fatal("compacted ActivePerDay differs from reference")
	}
	// Parent row indices are preserved: every parent key keeps its row.
	for r := range parent.keys {
		k := parent.keys[r]
		if succ.index()[k] != uint32(r) {
			t.Fatalf("parent key %q moved from row %d to %d", k, r, succ.index()[k])
		}
	}
	// The frozen parent must not have been disturbed.
	sameView(t, collect(parent), parentView, "parent after successor Compact")

	// Bulk sweeps over the merged store match the reference.
	for _, refDay := range []Day{0, 17, 45, 89} {
		if g, w := succ.ClassifyDay(refDay, 3, Options{}), ref.ClassifyDay(refDay, 3, Options{}); g != w {
			t.Fatalf("ClassifyDay(%d) = %+v, want %+v", refDay, g, w)
		}
	}
	if g, w := succ.ActiveInRange(10, 40), ref.ActiveInRange(10, 40); g != w {
		t.Fatalf("ActiveInRange = %d, want %d", g, w)
	}
}

// TestSuccessorChanged holds Changed to its contract: it visits exactly the
// keys whose day words differ from the parent generation's, with the right
// prev/cur pairs — including brand-new keys (zero prev) — and skips keys
// only touched idempotently.
func TestSuccessorChanged(t *testing.T) {
	const numDays = 10
	parent := NewStore[string](numDays)
	parent.Observe("old-quiet", 1)
	parent.Observe("old-extended", 2)
	parent.Observe("old-touched", 3)
	parent.Compact()

	succ := parent.Successor()
	succ.Observe("old-extended", 7) // existing key, new day -> changed
	succ.Observe("old-touched", 3)  // existing key, same day -> unchanged
	succ.Observe("brand-new", 5)    // new key -> changed, zero prev
	succ.Compact()

	got := make(map[string][2][]uint64)
	succ.Changed(func(k string, prev, cur []uint64) bool {
		got[k] = [2][]uint64{append([]uint64(nil), prev...), append([]uint64(nil), cur...)}
		return true
	})
	if len(got) != 2 {
		t.Fatalf("Changed visited %d keys (%v), want 2", len(got), got)
	}
	ext, ok := got["old-extended"]
	if !ok {
		t.Fatal("Changed missed old-extended")
	}
	if ext[0][0] != 1<<2 || ext[1][0] != 1<<2|1<<7 {
		t.Fatalf("old-extended prev/cur = %b/%b, want %b/%b", ext[0][0], ext[1][0], uint64(1<<2), uint64(1<<2|1<<7))
	}
	nw, ok := got["brand-new"]
	if !ok {
		t.Fatal("Changed missed brand-new")
	}
	if nw[0][0] != 0 || nw[1][0] != 1<<5 {
		t.Fatalf("brand-new prev/cur = %b/%b, want 0/%b", nw[0][0], nw[1][0], uint64(1<<5))
	}

	// Early termination.
	visits := 0
	succ.Changed(func(string, []uint64, []uint64) bool { visits++; return false })
	if visits != 1 {
		t.Fatalf("Changed after false visited %d keys, want 1", visits)
	}

	// A plain store (no predecessor) visits nothing.
	visits = 0
	parent.Changed(func(string, []uint64, []uint64) bool { visits++; return true })
	if visits != 0 {
		t.Fatalf("Changed on a no-predecessor store visited %d keys", visits)
	}
}

// TestSuccessorGuards covers the lifecycle panics: no successor chains off
// uncompacted overlays, no Restore into an overlay, and no sharded
// successor off an unfrozen store.
func TestSuccessorGuards(t *testing.T) {
	mustPanic := func(label string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", label)
			}
		}()
		fn()
	}

	parent := NewStore[string](5)
	parent.Observe("a", 1)
	parent.Compact()
	succ := parent.Successor()
	mustPanic("Successor of uncompacted successor", func() { succ.Successor() })
	mustPanic("Restore into successor", func() { succ.Restore("a", []uint64{1}) })
	succ.Compact()
	// A compacted successor is a first-class frozen store and may spawn the
	// next generation.
	succ.Successor()

	var seed maphash.Seed = maphash.MakeSeed()
	hash := func(k string) uint64 { return maphash.String(seed, k) }
	sh := NewShardedStoreN[string](5, 4, hash)
	sh.Observe("a", 1)
	mustPanic("sharded Successor before Freeze", func() { sh.Successor() })
	mustPanic("sharded Changed before Freeze", func() { sh.Changed(func(string, []uint64, []uint64) bool { return true }) })
}

// TestShardedSuccessor runs the generational cycle through the sharded
// store: freeze, successor, concurrent-style ingest, freeze again; the
// merged view must match a single-generation reference and Changed must
// surface exactly the delta.
func TestShardedSuccessor(t *testing.T) {
	const numDays = 60
	var seed maphash.Seed = maphash.MakeSeed()
	hash := func(k string) uint64 { return maphash.String(seed, k) }
	r := rand.New(rand.NewSource(72))
	gen1 := obsSet(r, 500, 5, numDays)
	gen2 := obsSet(r, 200, 3, numDays)

	parent := NewShardedStoreN[string](numDays, 8, hash)
	for _, o := range gen1 {
		parent.Observe(o.Key, o.Day)
	}
	parent.Freeze()

	succ := parent.Successor()
	if succ.Frozen() {
		t.Fatal("fresh sharded successor is frozen")
	}
	if succ.NumShards() != parent.NumShards() {
		t.Fatalf("successor has %d shards, want %d", succ.NumShards(), parent.NumShards())
	}
	for _, o := range gen2 {
		succ.Observe(o.Key, o.Day)
	}
	succ.Freeze()

	ref := NewShardedStoreN[string](numDays, 8, hash)
	for _, o := range gen1 {
		ref.Observe(o.Key, o.Day)
	}
	for _, o := range gen2 {
		ref.Observe(o.Key, o.Day)
	}
	ref.Freeze()

	sameView(t, collect(succ), collect(ref), "sharded merged Range")
	if succ.Len() != ref.Len() {
		t.Fatalf("Len = %d, want %d", succ.Len(), ref.Len())
	}
	if !slices.Equal(succ.ActivePerDay(), ref.ActivePerDay()) {
		t.Fatal("ActivePerDay differs from reference")
	}
	if g, w := succ.ClassifyDay(30, 3, Options{}), ref.ClassifyDay(30, 3, Options{}); g != w {
		t.Fatalf("ClassifyDay = %+v, want %+v", g, w)
	}

	// Changed across shards: every visited key's cur must differ from prev,
	// and replaying the prev->cur transitions onto the parent view must
	// reproduce the merged view.
	parentView := collect(parent)
	mergedView := collect(succ)
	visited := make(map[string]bool)
	succ.Changed(func(k string, prev, cur []uint64) bool {
		if visited[k] {
			t.Fatalf("Changed visited %q twice", k)
		}
		visited[k] = true
		if slices.Equal(prev, cur) {
			t.Fatalf("Changed visited %q with prev == cur", k)
		}
		pw := parentView[k] // nil (all-zero) for new keys
		for i := range prev {
			var want uint64
			if pw != nil {
				want = pw[i]
			}
			if prev[i] != want {
				t.Fatalf("key %q prev word %d = %x, want parent's %x", k, i, prev[i], want)
			}
		}
		if !slices.Equal(cur, mergedView[k]) {
			t.Fatalf("key %q cur differs from merged view", k)
		}
		return true
	})
	// Completeness: every key whose merged words differ from the parent's
	// must have been visited.
	for k, mw := range mergedView {
		pw, had := parentView[k]
		if (!had || !slices.Equal(pw, mw)) != visited[k] {
			t.Fatalf("key %q: changed=%v but visited=%v", k, !had || !slices.Equal(pw, mw), visited[k])
		}
	}

	// Early termination stops across shard boundaries.
	visits := 0
	succ.Changed(func(string, []uint64, []uint64) bool { visits++; return false })
	if visits != 1 {
		t.Fatalf("Changed after false visited %d keys, want 1", visits)
	}
}
