package temporal

import (
	"cmp"
	"math/rand"
	"slices"
	"testing"
)

// fillRandom observes nKeys random int keys over random days and returns
// the key set, identically into every supplied observer.
func fillRandom(t *testing.T, numDays, nKeys int, seed int64, observe ...func(k int, d Day)) []int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	keys := rng.Perm(nKeys * 4)[:nKeys]
	for _, k := range keys {
		for d := 0; d < numDays; d++ {
			if rng.Intn(3) == 0 {
				for _, ob := range observe {
					ob(k, Day(d))
				}
			}
		}
		// Guarantee at least one observation so the key exists.
		d := Day(rng.Intn(numDays))
		for _, ob := range observe {
			ob(k, d)
		}
	}
	return keys
}

func TestStoreOrderedMatchesUnordered(t *testing.T) {
	const numDays = 30
	s := NewStore[int](numDays)
	fillRandom(t, numDays, 200, 1, s.Observe)
	s.Compact()

	want := slices.Sorted(s.KeysSeq())
	got := slices.Collect(s.KeysOrderedSeq(cmp.Compare[int], nil))
	if !slices.Equal(got, want) {
		t.Fatalf("KeysOrderedSeq mismatch:\n got %v\nwant %v", got, want)
	}

	days := []Day{3, 7, 19}
	wantAct := slices.Sorted(s.KeysActiveAnySeq(days))
	gotAct := slices.Collect(s.KeysActiveAnyOrderedSeq(cmp.Compare[int], days, nil))
	if !slices.Equal(gotAct, wantAct) {
		t.Fatalf("KeysActiveAnyOrderedSeq mismatch:\n got %v\nwant %v", gotAct, wantAct)
	}

	opts := Options{Window: Window{Before: 7, After: 7}}
	wantStable := slices.Sorted(s.StableKeysSeq(10, 3, opts))
	gotStable := slices.Collect(s.StableKeysOrderedSeq(cmp.Compare[int], 10, 3, opts, nil))
	if !slices.Equal(gotStable, wantStable) {
		t.Fatalf("StableKeysOrderedSeq mismatch:\n got %v\nwant %v", gotStable, wantStable)
	}
}

func TestStoreOrderedResume(t *testing.T) {
	const numDays = 20
	s := NewStore[int](numDays)
	fillRandom(t, numDays, 120, 2, s.Observe)
	s.Compact()

	full := slices.Collect(s.KeysOrderedSeq(cmp.Compare[int], nil))
	// Resume from every position, including after the last key.
	for i, k := range full {
		after := k
		got := slices.Collect(s.KeysOrderedSeq(cmp.Compare[int], &after))
		if !slices.Equal(got, full[i+1:]) {
			t.Fatalf("resume after %d: got %v, want %v", k, got, full[i+1:])
		}
	}
	// Resume from a value that is not a key: strictly-after semantics.
	mid := full[len(full)/2] - 1
	if slices.Contains(full, mid) {
		mid = full[len(full)/2]
	}
	got := slices.Collect(s.KeysOrderedSeq(cmp.Compare[int], &mid))
	want := full[sortSearchAfter(full, mid):]
	if !slices.Equal(got, want) {
		t.Fatalf("resume after non-key %d: got %v, want %v", mid, got, want)
	}
}

func sortSearchAfter(xs []int, v int) int {
	i, _ := slices.BinarySearch(xs, v)
	for i < len(xs) && xs[i] == v {
		i++
	}
	return i
}

func TestShardedOrderedMergesGlobally(t *testing.T) {
	const numDays = 25
	hash := func(k int) uint64 { return uint64(k) * 0x9E3779B97F4A7C15 }
	sh := NewShardedStoreN[int](numDays, 8, hash)
	seq := NewStore[int](numDays)
	fillRandom(t, numDays, 300, 3, sh.Observe, seq.Observe)
	sh.Freeze()
	seq.Compact()

	want := slices.Collect(seq.KeysOrderedSeq(cmp.Compare[int], nil))
	got := slices.Collect(sh.KeysOrderedSeq(cmp.Compare[int], nil))
	if !slices.Equal(got, want) {
		t.Fatalf("sharded ordered merge mismatch:\n got %v\nwant %v", got, want)
	}
	if !slices.IsSorted(got) {
		t.Fatal("sharded ordered merge is not globally sorted")
	}

	// Resumption across the merge.
	after := want[len(want)/3]
	gotR := slices.Collect(sh.KeysOrderedSeq(cmp.Compare[int], &after))
	if !slices.Equal(gotR, want[len(want)/3+1:]) {
		t.Fatalf("sharded resume mismatch: got %d keys, want %d", len(gotR), len(want)-len(want)/3-1)
	}

	days := []Day{0, 12, 24}
	wantAct := slices.Sorted(seq.KeysActiveAnySeq(days))
	gotAct := slices.Collect(sh.KeysActiveAnyOrderedSeq(cmp.Compare[int], days, nil))
	if !slices.Equal(gotAct, wantAct) {
		t.Fatal("sharded KeysActiveAnyOrderedSeq mismatch")
	}

	opts := Options{Window: Window{Before: 7, After: 7}}
	wantStable := slices.Sorted(seq.StableKeysSeq(12, 3, opts))
	gotStable := slices.Collect(sh.StableKeysOrderedSeq(cmp.Compare[int], 12, 3, opts, nil))
	if !slices.Equal(gotStable, wantStable) {
		t.Fatal("sharded StableKeysOrderedSeq mismatch")
	}
}

func TestActivityOrderedSeq(t *testing.T) {
	const numDays = 15
	hash := func(k int) uint64 { return uint64(k) * 0x9E3779B97F4A7C15 }
	sh := NewShardedStoreN[int](numDays, 4, hash)
	seq := NewStore[int](numDays)
	fillRandom(t, numDays, 80, 4, sh.Observe, seq.Observe)
	sh.Freeze()
	seq.Compact()

	type ka struct {
		k   int
		act Activity
	}
	collect := func(it func(func(int, Activity) bool)) []ka {
		var out []ka
		for k, act := range it {
			out = append(out, ka{k, act})
		}
		return out
	}
	want := collect(seq.ActivityOrderedSeq(cmp.Compare[int], nil))
	got := collect(sh.ActivityOrderedSeq(cmp.Compare[int], nil))
	if !slices.Equal(got, want) {
		t.Fatalf("ActivityOrderedSeq mismatch: got %d rows, want %d", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].k >= got[i].k {
			t.Fatal("ActivityOrderedSeq not strictly ascending")
		}
	}
}

func TestReturnCountsMatchProbability(t *testing.T) {
	const numDays = 30
	hash := func(k int) uint64 { return uint64(k) * 0x9E3779B97F4A7C15 }
	sh := NewShardedStoreN[int](numDays, 4, hash)
	seq := NewStore[int](numDays)
	fillRandom(t, numDays, 150, 5, sh.Observe, seq.Observe)
	sh.Freeze()
	seq.Compact()

	num, den := seq.ReturnCounts(0, 29, 7)
	numSh, denSh := sh.ReturnCounts(0, 29, 7)
	if !slices.Equal(num, numSh) || !slices.Equal(den, denSh) {
		t.Fatalf("ReturnCounts differ: seq %v/%v sharded %v/%v", num, den, numSh, denSh)
	}
	probs := seq.ReturnProbability(0, 29, 7)
	for g := 1; g < len(probs); g++ {
		want := 0.0
		if den[g] > 0 {
			want = float64(num[g]) / float64(den[g])
		}
		if probs[g] != want {
			t.Fatalf("gap %d: probability %v, counts give %v", g, probs[g], want)
		}
	}
}

func TestOrderedEarlyBreakStopsSweep(t *testing.T) {
	const numDays = 10
	hash := func(k int) uint64 { return uint64(k) * 0x9E3779B97F4A7C15 }
	sh := NewShardedStoreN[int](numDays, 4, hash)
	fillRandom(t, numDays, 50, 6, sh.Observe)
	sh.Freeze()

	var got []int
	for k := range sh.KeysOrderedSeq(cmp.Compare[int], nil) {
		got = append(got, k)
		if len(got) == 5 {
			break
		}
	}
	if len(got) != 5 || !slices.IsSorted(got) {
		t.Fatalf("early break collected %v", got)
	}
}
