// Package temporal implements the stability analysis of Section 5.1 of
// Plonka & Berger (IMC 2015): classifying addresses (and prefixes of any
// length) as "nd-stable" from their instances of activity over time.
//
// Definition (paper): an address is nd-stable when there exist observations
// of activity on two different days with an intervening period of at least
// n-1 days, i.e. on days d1 < d2 with d2-d1 >= n. The daily analysis anchors
// one of the pair at a reference day r and considers a sliding window around
// it — the paper's "3d-stable (-7d,+7d)" — while the weekly analysis unions
// the per-day classes over the seven reference days of a week (Table 2c/2d).
//
// The Store is generic over the classified key so the same machinery serves
// full 128-bit addresses and /64 prefixes (or any other aggregate).
package temporal

import "sort"

// Day is a zero-based day index within a study period.
type Day int

// Store records which days each key was observed active. The zero Store is
// not usable; construct with NewStore. Store is not safe for concurrent
// mutation.
type Store[K comparable] struct {
	numDays int
	keys    map[K]*BitSet
	perDay  []int // observations of distinct keys per day
}

// NewStore returns a Store for a study period of numDays days.
func NewStore[K comparable](numDays int) *Store[K] {
	if numDays <= 0 {
		panic("temporal: study period must have at least one day")
	}
	return &Store[K]{
		numDays: numDays,
		keys:    make(map[K]*BitSet),
		perDay:  make([]int, numDays),
	}
}

// NumDays returns the length of the study period.
func (s *Store[K]) NumDays() int { return s.numDays }

// Len returns the number of distinct keys ever observed.
func (s *Store[K]) Len() int { return len(s.keys) }

// Observe records that k was active on day d. Observations outside the study
// period are ignored. Duplicate observations are idempotent.
func (s *Store[K]) Observe(k K, d Day) {
	if d < 0 || int(d) >= s.numDays {
		return
	}
	b := s.keys[k]
	if b == nil {
		b = NewBitSet(s.numDays)
		s.keys[k] = b
	}
	if !b.Get(int(d)) {
		b.Set(int(d))
		s.perDay[d]++
	}
}

// Active reports whether k was observed on day d.
func (s *Store[K]) Active(k K, d Day) bool {
	b := s.keys[k]
	return b != nil && b.Get(int(d))
}

// ActiveCount returns the number of distinct keys observed on day d.
func (s *Store[K]) ActiveCount(d Day) int {
	if d < 0 || int(d) >= s.numDays {
		return 0
	}
	return s.perDay[d]
}

// ActivePerDay returns the per-day distinct key counts for the whole study
// period (the "active per day" series of Figure 4).
func (s *Store[K]) ActivePerDay() []int {
	return append([]int(nil), s.perDay...)
}

// Days returns the sorted active days of k (empty when never observed).
func (s *Store[K]) Days(k K) []Day {
	b := s.keys[k]
	if b == nil {
		return nil
	}
	var out []Day
	for d := b.First(0); d >= 0; d = b.First(d + 1) {
		out = append(out, Day(d))
	}
	return out
}

// Activity is the temporal activity profile of one key: its extent within
// the study period, how many days it was observed, and in how many maximal
// contiguous runs those observations cluster. It is the point-query result
// behind per-prefix availability and volatility reporting.
type Activity struct {
	First, Last Day // first and last active day
	ActiveDays  int // distinct active days
	Runs        int // maximal contiguous runs of active days
}

// SpanDays returns the inclusive length of the activity span.
func (a Activity) SpanDays() int { return int(a.Last-a.First) + 1 }

// Availability returns the fraction of the span's days the key was active,
// in (0, 1]: 1 for continuously active keys.
func (a Activity) Availability() float64 {
	if a.ActiveDays == 0 {
		return 0
	}
	return float64(a.ActiveDays) / float64(a.SpanDays())
}

// Volatility returns the key's activity fragmentation: runs per day of
// span, in (0, 1]. A continuously active key scores 1/span (low); perfect
// day-on/day-off flicker approaches 1/2; a single-day key scores 1.
func (a Activity) Volatility() float64 {
	if a.ActiveDays == 0 {
		return 0
	}
	return float64(a.Runs) / float64(a.SpanDays())
}

// Activity returns the activity profile of k; ok is false when k was never
// observed.
func (s *Store[K]) Activity(k K) (Activity, bool) {
	b := s.keys[k]
	if b == nil {
		return Activity{}, false
	}
	first := b.First(0)
	if first < 0 {
		return Activity{}, false
	}
	return Activity{
		First:      Day(first),
		Last:       Day(b.Last(s.numDays - 1)),
		ActiveDays: b.Count(),
		Runs:       b.Runs(),
	}, true
}

// Window is a sliding observation window around a reference day, expressed
// as day offsets: the paper's "(-7d,+7d)" is Window{Before: 7, After: 7}.
type Window struct {
	Before int
	After  int
}

// DefaultWindow is the paper's 15-day sliding window.
var DefaultWindow = Window{Before: 7, After: 7}

// Options configures stability classification.
type Options struct {
	// Window is the sliding window around the reference day. The zero
	// value means DefaultWindow.
	Window Window
	// SlewDays widens the required gap to accommodate the aggregated
	// logs' timestamp slew (observations can land on the processing day
	// rather than the activity day, per Section 4.1): a gap of g days is
	// only accepted as evidence of nd-stability when g >= n + SlewDays.
	SlewDays int
	// AnyPair, when true, accepts any pair of active days within the
	// window as evidence; when false (the default) one day of the pair
	// must be the reference day, matching the Figure 4 / Table 2
	// intersect-with-reference-day methodology.
	AnyPair bool
}

func (o Options) window() Window {
	if o.Window == (Window{}) {
		return DefaultWindow
	}
	return o.Window
}

// NDStable reports whether k is nd-stable with respect to reference day ref
// under opts. A key inactive on ref is never nd-stable for that reference
// day (the daily analysis classifies the population active on ref).
func (s *Store[K]) NDStable(k K, ref Day, n int, opts Options) bool {
	b := s.keys[k]
	if b == nil || !b.Get(int(ref)) {
		return false
	}
	return s.ndStableActive(b, ref, n, opts)
}

// ndStableActive assumes b.Get(ref) and applies the pair test.
func (s *Store[K]) ndStableActive(b *BitSet, ref Day, n int, opts Options) bool {
	w := opts.window()
	need := n + opts.SlewDays
	lo, hi := int(ref)-w.Before, int(ref)+w.After
	if !opts.AnyPair {
		// A partner day at distance >= need on either side of ref.
		return b.AnyInRange(lo, int(ref)-need) || b.AnyInRange(int(ref)+need, hi)
	}
	// Any pair: the extremal active days within the window decide.
	first := b.First(lo)
	if first < 0 || first > hi {
		return false
	}
	last := b.Last(hi)
	return last-first >= need
}

// DailyStability summarizes stability of the population active on a
// reference day.
type DailyStability struct {
	Ref       Day
	N         int // the "n" of nd-stable
	Active    int // keys active on Ref
	Stable    int // of those, nd-stable
	NotStable int // Active - Stable
}

// ClassifyDay computes the nd-stable split of the population active on ref,
// the shape of one column of Table 2a/2b.
func (s *Store[K]) ClassifyDay(ref Day, n int, opts Options) DailyStability {
	out := DailyStability{Ref: ref, N: n}
	for _, b := range s.keys {
		if !b.Get(int(ref)) {
			continue
		}
		out.Active++
		if s.ndStableActive(b, ref, n, opts) {
			out.Stable++
		}
	}
	out.NotStable = out.Active - out.Stable
	return out
}

// StableKeys returns the nd-stable keys for reference day ref, in no
// particular order.
func (s *Store[K]) StableKeys(ref Day, n int, opts Options) []K {
	var out []K
	for k, b := range s.keys {
		if b.Get(int(ref)) && s.ndStableActive(b, ref, n, opts) {
			out = append(out, k)
		}
	}
	return out
}

// WeeklyStability summarizes stability over a 7-day span of reference days.
type WeeklyStability struct {
	Start     Day
	N         int
	Active    int // distinct keys active during the week
	Stable    int // distinct keys nd-stable on at least one reference day
	NotStable int // Active - Stable
}

// ClassifyWeek computes the weekly stability split per the paper's Table
// 2c/2d methodology: for each of the seven days starting at start, the
// nd-stable keys are determined; the count of unique nd-stable keys over
// those days is reported, and "not stable" is the remainder of the week's
// unique active keys.
func (s *Store[K]) ClassifyWeek(start Day, n int, opts Options) WeeklyStability {
	out := WeeklyStability{Start: start, N: n}
	for _, b := range s.keys {
		activeInWeek := false
		stable := false
		for d := start; d < start+7; d++ {
			if int(d) >= s.numDays {
				break
			}
			if !b.Get(int(d)) {
				continue
			}
			activeInWeek = true
			if s.ndStableActive(b, d, n, opts) {
				stable = true
				break
			}
		}
		if activeInWeek {
			out.Active++
			if stable {
				out.Stable++
			}
		}
	}
	out.NotStable = out.Active - out.Stable
	return out
}

// OverlapSeries returns, for each day d in [ref-before, ref+after], the
// number of keys active on both d and ref — the "Mar 17 active" overlap
// curve of Figure 4. Days outside the study period report zero. The result
// has before+after+1 entries; entry before corresponds to ref itself.
func (s *Store[K]) OverlapSeries(ref Day, before, after int) []int {
	out := make([]int, before+after+1)
	for _, b := range s.keys {
		if !b.Get(int(ref)) {
			continue
		}
		for i := range out {
			d := int(ref) - before + i
			if d >= 0 && d < s.numDays && b.Get(d) {
				out[i]++
			}
		}
	}
	return out
}

// ActiveInRange returns the number of distinct keys active on at least one
// day of [from, to] (inclusive).
func (s *Store[K]) ActiveInRange(from, to Day) int {
	n := 0
	for _, b := range s.keys {
		if b.AnyInRange(int(from), int(to)) {
			n++
		}
	}
	return n
}

// EpochStable counts keys active during both [aFrom,aTo] and [bFrom,bTo]
// (inclusive ranges): the paper's 6m-stable and 1y-stable classes, where the
// two ranges are the same calendar window six months or a year apart.
func (s *Store[K]) EpochStable(aFrom, aTo, bFrom, bTo Day) int {
	n := 0
	for _, b := range s.keys {
		if b.AnyInRange(int(aFrom), int(aTo)) && b.AnyInRange(int(bFrom), int(bTo)) {
			n++
		}
	}
	return n
}

// EpochStableKeys returns the keys counted by EpochStable.
func (s *Store[K]) EpochStableKeys(aFrom, aTo, bFrom, bTo Day) []K {
	var out []K
	for k, b := range s.keys {
		if b.AnyInRange(int(aFrom), int(aTo)) && b.AnyInRange(int(bFrom), int(bTo)) {
			out = append(out, k)
		}
	}
	return out
}

// KeysActiveOn returns the distinct keys active on day d, in no particular
// order.
func (s *Store[K]) KeysActiveOn(d Day) []K {
	var out []K
	for k, b := range s.keys {
		if b.Get(int(d)) {
			out = append(out, k)
		}
	}
	return out
}

// StabilitySpectrum returns, for each n in [1, maxN], the count of keys that
// are nd-stable on ref — the monotone non-increasing spectrum used by the
// window-sweep ablation. (nd-stable implies (n-1)d-stable, Section 5.1.)
func (s *Store[K]) StabilitySpectrum(ref Day, maxN int, opts Options) []int {
	out := make([]int, maxN)
	for _, b := range s.keys {
		if !b.Get(int(ref)) {
			continue
		}
		// Find the largest n for which the key qualifies; it then counts
		// toward every smaller n.
		for n := maxN; n >= 1; n-- {
			if s.ndStableActive(b, ref, n, opts) {
				for i := 0; i < n; i++ {
					out[i]++
				}
				break
			}
		}
	}
	return out
}

// LongestGapStable returns keys sorted by their maximum observed activity
// gap (descending), up to limit keys — a helper for selecting probe targets
// with the longest demonstrated lifetimes.
func (s *Store[K]) LongestGapStable(limit int) []K {
	type kg struct {
		k   K
		gap int
	}
	var all []kg
	for k, b := range s.keys {
		first := b.First(0)
		last := b.Last(s.numDays - 1)
		if first >= 0 && last > first {
			all = append(all, kg{k: k, gap: last - first})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].gap > all[j].gap })
	if limit > len(all) {
		limit = len(all)
	}
	out := make([]K, limit)
	for i := 0; i < limit; i++ {
		out[i] = all[i].k
	}
	return out
}

// Range visits every key with its activity bitset, for serialization.
// Returning false stops the iteration. The bitsets must not be modified.
func (s *Store[K]) Range(fn func(k K, days *BitSet) bool) {
	for k, b := range s.keys {
		if !fn(k, b) {
			return
		}
	}
}

// Restore installs a deserialized activity bitset for k, replacing any
// existing record and updating the per-day counters.
func (s *Store[K]) Restore(k K, b *BitSet) {
	if old := s.keys[k]; old != nil {
		for d := old.First(0); d >= 0 && d < s.numDays; d = old.First(d + 1) {
			s.perDay[d]--
		}
	}
	s.keys[k] = b
	for d := b.First(0); d >= 0 && d < s.numDays; d = b.First(d + 1) {
		s.perDay[d]++
	}
}
