// Package temporal implements the stability analysis of Section 5.1 of
// Plonka & Berger (IMC 2015): classifying addresses (and prefixes of any
// length) as "nd-stable" from their instances of activity over time.
//
// Definition (paper): an address is nd-stable when there exist observations
// of activity on two different days with an intervening period of at least
// n-1 days, i.e. on days d1 < d2 with d2-d1 >= n. The daily analysis anchors
// one of the pair at a reference day r and considers a sliding window around
// it — the paper's "3d-stable (-7d,+7d)" — while the weekly analysis unions
// the per-day classes over the seven reference days of a week (Table 2c/2d).
//
// The Store is generic over the classified key so the same machinery serves
// full 128-bit addresses and /64 prefixes (or any other aggregate).
//
// # Storage layout
//
// Since the study length is fixed per Store, every key's day bits occupy a
// fixed-stride window of a shared slab: stride = ceil(numDays/64) words.
// Keys map to dense row indices (map[K]uint32) in insertion order, and rows
// live contiguously in arena chunks of 1<<chunkShift rows each, so growth
// never copies existing rows and a million keys cost a few hundred
// allocations instead of a million BitSets. Every bulk analysis
// (ClassifyDay, ClassifyWeek, OverlapSeries, EpochStable, ActiveInRange,
// StabilitySpectrum, Lifetimes) is a linear sweep of dense rows using
// word-level AND/OR and popcount — no per-key pointer chasing — and each
// has a row-range form so ShardedStore can partition sweeps across cores.
package temporal

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Day is a zero-based day index within a study period.
type Day int

// chunkShift is the log2 row count of one arena chunk: 4096 rows per chunk
// keeps small stores cheap (one chunk is 32 KiB at stride 1) while a
// million-row store needs only a few hundred chunk allocations.
const chunkShift = 12

// Store records which days each key was observed active. The zero Store is
// not usable; construct with NewStore. Store is not safe for concurrent
// mutation.
type Store[K comparable] struct {
	numDays int
	stride  int // slab words per key: ceil(numDays/64)

	// rowIdx points at the key -> dense row index map. Stores built by
	// NewStore allocate it eagerly; stores built by AttachStore leave it
	// nil and index() derives it from keys on first point access, so a
	// snapshot attach stays O(1) and bulk sweeps never pay for a map they
	// don't read. The atomic pointer makes the lazy build safe under
	// concurrent post-freeze point queries; mutation (addRow) stays
	// single-threaded per the Store contract.
	rowIdx   atomic.Pointer[map[K]uint32]
	rowIdxMu sync.Mutex
	keys     []K // row index -> key, in insertion order

	// The slab arena: row r's words are chunks[r>>shift][(r&mask)*stride :
	// +stride]. Before Compact, shift/mask select fixed-size growth chunks;
	// Compact fuses them into one exactly-sized slab (shift wide enough
	// that every row lands in chunk 0) for read-optimized sweeps.
	chunks [][]uint64
	shift  uint
	mask   uint32

	perDay []int // observations of distinct keys per day
	sealed bool  // set by Compact: no further keys may be added

	// Attach state (attach.go). attached is the adopted contiguous slab a
	// snapshot reader handed to AttachStore — typically a view of an
	// mmap'd file — and retain pins whatever object owns that memory (the
	// mapping holder) for as long as the store can reference it. Compact
	// re-adopts the attached slab in place when no keys were added since
	// attach, so the open → freeze → serve path never copies the matrix.
	attached []uint64
	retain   any

	// Successor overlay state (successor.go). parent is the immutable
	// predecessor generation this store copies rows from on first write;
	// it is non-nil only between Successor and Compact. newKeys counts own
	// keys absent from the parent, so Len stays the union size during
	// ingestion. Compact merges the overlay into the parent's row space,
	// records the per-key deltas in changed/prevRows, and drops parent.
	parent   *Store[K]
	newKeys  int
	changed  []K
	prevRows []uint64

	// orderedRows memoizes the cmp-sorted row permutation behind the
	// ordered sweeps (ordered.go): built lazily by the first ordered
	// enumeration, rebuilt only if keys were added since (which ordered
	// callers must not allow — see KeysOrderedSeq).
	orderedMu   sync.Mutex
	orderedRows atomic.Pointer[[]uint32]
}

// NewStore returns a Store for a study period of numDays days.
func NewStore[K comparable](numDays int) *Store[K] {
	if numDays <= 0 {
		panic("temporal: study period must have at least one day")
	}
	s := &Store[K]{
		numDays: numDays,
		stride:  (numDays + 63) / 64,
		perDay:  make([]int, numDays),
		shift:   chunkShift,
		mask:    1<<chunkShift - 1,
	}
	m := make(map[K]uint32)
	s.rowIdx.Store(&m)
	return s
}

// index returns the key -> row map, deriving it from the key table on
// first use for attached stores. The double-checked build is safe for any
// number of concurrent readers; writers (addRow) are single-threaded per
// the Store contract and only ever add entries.
func (s *Store[K]) index() map[K]uint32 {
	if m := s.rowIdx.Load(); m != nil {
		return *m
	}
	s.rowIdxMu.Lock()
	defer s.rowIdxMu.Unlock()
	if m := s.rowIdx.Load(); m != nil {
		return *m
	}
	m := make(map[K]uint32, len(s.keys))
	for r, k := range s.keys {
		m[k] = uint32(r)
	}
	s.rowIdx.Store(&m)
	return m
}

// NumDays returns the length of the study period.
func (s *Store[K]) NumDays() int { return s.numDays }

// Len returns the number of distinct keys ever observed, counting the
// parent generation's keys on an uncompacted successor.
func (s *Store[K]) Len() int {
	if s.parent != nil {
		return s.parent.Len() + s.newKeys
	}
	return len(s.keys)
}

// Rows returns the number of slab rows, equal to Len; rows index the keys
// in insertion order. Row-range sweep partitioning is defined over [0,
// Rows()).
func (s *Store[K]) Rows() int { return len(s.keys) }

// row returns the slab window of row r.
func (s *Store[K]) row(r uint32) []uint64 {
	ch := s.chunks[r>>s.shift]
	off := int(r&s.mask) * s.stride
	return ch[off : off+s.stride : off+s.stride]
}

// addRow assigns the next dense row to k, growing the arena by one chunk
// when the current one is full.
func (s *Store[K]) addRow(k K) uint32 {
	if s.sealed {
		panic("temporal: new key after Compact")
	}
	r := uint32(len(s.keys))
	if r == ^uint32(0)>>1 {
		panic("temporal: too many keys")
	}
	if int(r>>s.shift) == len(s.chunks) {
		s.chunks = append(s.chunks, make([]uint64, (1<<s.shift)*s.stride))
	}
	s.keys = append(s.keys, k)
	s.index()[k] = r
	return r
}

// Compact fuses the arena chunks into one exactly-sized contiguous slab and
// trims slack, the read-optimized layout for bulk sweeps. After Compact no
// new keys may be added (Observe on existing keys still works); it is
// called by ShardedStore.Freeze on every shard.
func (s *Store[K]) Compact() {
	if s.sealed {
		return
	}
	if s.parent != nil {
		s.compactSuccessor()
		return
	}
	if s.attached != nil && len(s.keys)*s.stride == len(s.attached) {
		// No keys were added since AttachStore: re-adopt the attached slab
		// as the compact flat in place. Only the copied tail chunk is
		// written back (in-place Observes already landed in the full-chunk
		// views); on an mmap'd slab those writes dirty private
		// copy-on-write pages, never the file.
		if tail := len(s.keys) & (1<<chunkShift - 1); tail > 0 {
			full := len(s.keys) >> chunkShift
			copy(s.attached[(full<<chunkShift)*s.stride:], s.chunks[full][:tail*s.stride])
		}
		s.chunks = [][]uint64{s.attached}
		s.shift = 31
		s.mask = 1<<31 - 1
		s.sealed = true
		return
	}
	chunkWords := (1 << s.shift) * s.stride
	flat := make([]uint64, len(s.keys)*s.stride)
	for c, ch := range s.chunks {
		copy(flat[c*chunkWords:], ch)
	}
	s.chunks = [][]uint64{flat}
	// A grown attached store has fully copied off the adopted slab; drop
	// the reference so an underlying file mapping can be reclaimed.
	s.attached, s.retain = nil, nil
	s.shift = 31
	s.mask = 1<<31 - 1
	s.keys = append(make([]K, 0, len(s.keys)), s.keys...)
	s.sealed = true
}

// Observe records that k was active on day d. Observations outside the study
// period are ignored. Duplicate observations are idempotent.
func (s *Store[K]) Observe(k K, d Day) {
	if d < 0 || int(d) >= s.numDays {
		return
	}
	r, ok := s.index()[k]
	if !ok {
		r = s.addRow(k)
		if s.parent != nil {
			if pr, pok := s.parent.index()[k]; pok {
				// Copy-on-first-write: seed the overlay row with the
				// parent's day words so the row stays the union view.
				copy(s.row(r), s.parent.row(pr))
			} else {
				s.newKeys++
			}
		}
	}
	if wordSet(s.row(r), int(d)) {
		s.perDay[d]++
	}
}

// lookup returns k's day words: the overlay row when the key has been
// written this generation, the parent generation's frozen row otherwise.
func (s *Store[K]) lookup(k K) ([]uint64, bool) {
	if r, ok := s.index()[k]; ok {
		return s.row(r), true
	}
	if s.parent != nil {
		if r, ok := s.parent.index()[k]; ok {
			return s.parent.row(r), true
		}
	}
	return nil, false
}

// Active reports whether k was observed on day d.
func (s *Store[K]) Active(k K, d Day) bool {
	w, ok := s.lookup(k)
	return ok && wordGet(w, int(d))
}

// ActiveCount returns the number of distinct keys observed on day d.
func (s *Store[K]) ActiveCount(d Day) int {
	if d < 0 || int(d) >= s.numDays {
		return 0
	}
	return s.perDay[d]
}

// ActivePerDay returns the per-day distinct key counts for the whole study
// period (the "active per day" series of Figure 4).
func (s *Store[K]) ActivePerDay() []int {
	return append([]int(nil), s.perDay...)
}

// Days returns the sorted active days of k (empty when never observed).
func (s *Store[K]) Days(k K) []Day {
	w, ok := s.lookup(k)
	if !ok {
		return nil
	}
	var out []Day
	for d := wordsFirst(w, 0); d >= 0; d = wordsFirst(w, d+1) {
		out = append(out, Day(d))
	}
	return out
}

// Activity is the temporal activity profile of one key: its extent within
// the study period, how many days it was observed, and in how many maximal
// contiguous runs those observations cluster. It is the point-query result
// behind per-prefix availability and volatility reporting.
type Activity struct {
	First, Last Day // first and last active day
	ActiveDays  int // distinct active days
	Runs        int // maximal contiguous runs of active days
}

// SpanDays returns the inclusive length of the activity span.
func (a Activity) SpanDays() int { return int(a.Last-a.First) + 1 }

// Availability returns the fraction of the span's days the key was active,
// in (0, 1]: 1 for continuously active keys.
func (a Activity) Availability() float64 {
	if a.ActiveDays == 0 {
		return 0
	}
	return float64(a.ActiveDays) / float64(a.SpanDays())
}

// Volatility returns the key's activity fragmentation: runs per day of
// span, in (0, 1]. A continuously active key scores 1/span (low); perfect
// day-on/day-off flicker approaches 1/2; a single-day key scores 1.
func (a Activity) Volatility() float64 {
	if a.ActiveDays == 0 {
		return 0
	}
	return float64(a.Runs) / float64(a.SpanDays())
}

// Activity returns the activity profile of k; ok is false when k was never
// observed.
func (s *Store[K]) Activity(k K) (Activity, bool) {
	w, rok := s.lookup(k)
	if !rok {
		return Activity{}, false
	}
	first := wordsFirst(w, 0)
	if first < 0 {
		return Activity{}, false
	}
	return Activity{
		First:      Day(first),
		Last:       Day(wordsLast(w, s.numDays-1)),
		ActiveDays: wordsCount(w),
		Runs:       wordsRuns(w),
	}, true
}

// Window is a sliding observation window around a reference day, expressed
// as day offsets: the paper's "(-7d,+7d)" is Window{Before: 7, After: 7}.
type Window struct {
	Before int
	After  int
}

// DefaultWindow is the paper's 15-day sliding window.
var DefaultWindow = Window{Before: 7, After: 7}

// Options configures stability classification.
type Options struct {
	// Window is the sliding window around the reference day. The zero
	// value means DefaultWindow.
	Window Window
	// SlewDays widens the required gap to accommodate the aggregated
	// logs' timestamp slew (observations can land on the processing day
	// rather than the activity day, per Section 4.1): a gap of g days is
	// only accepted as evidence of nd-stability when g >= n + SlewDays.
	SlewDays int
	// AnyPair, when true, accepts any pair of active days within the
	// window as evidence; when false (the default) one day of the pair
	// must be the reference day, matching the Figure 4 / Table 2
	// intersect-with-reference-day methodology.
	AnyPair bool
}

func (o Options) window() Window {
	if o.Window == (Window{}) {
		return DefaultWindow
	}
	return o.Window
}

// NDStable reports whether k is nd-stable with respect to reference day ref
// under opts. A key inactive on ref is never nd-stable for that reference
// day (the daily analysis classifies the population active on ref).
func (s *Store[K]) NDStable(k K, ref Day, n int, opts Options) bool {
	w, ok := s.lookup(k)
	if !ok {
		return false
	}
	return wordGet(w, int(ref)) && ndStableActive(w, ref, n, opts)
}

// ndStableActive assumes day ref is set in w and applies the pair test.
func ndStableActive(w []uint64, ref Day, n int, opts Options) bool {
	win := opts.window()
	need := n + opts.SlewDays
	lo, hi := int(ref)-win.Before, int(ref)+win.After
	if !opts.AnyPair {
		// A partner day at distance >= need on either side of ref.
		return wordsAnyInRange(w, lo, int(ref)-need) || wordsAnyInRange(w, int(ref)+need, hi)
	}
	// Any pair: the extremal active days within the window decide.
	first := wordsFirst(w, lo)
	if first < 0 || first > hi {
		return false
	}
	last := wordsLast(w, hi)
	return last-first >= need
}

// DailyStability summarizes stability of the population active on a
// reference day.
type DailyStability struct {
	Ref       Day
	N         int // the "n" of nd-stable
	Active    int // keys active on Ref
	Stable    int // of those, nd-stable
	NotStable int // Active - Stable
}

// ClassifyDay computes the nd-stable split of the population active on ref,
// the shape of one column of Table 2a/2b.
func (s *Store[K]) ClassifyDay(ref Day, n int, opts Options) DailyStability {
	out := s.ClassifyDayRows(ref, n, opts, 0, len(s.keys))
	out.NotStable = out.Active - out.Stable
	return out
}

// ClassifyDayRows is the partial ClassifyDay over rows [r0, r1): the
// additive merge unit of a partitioned sweep. NotStable is left zero; the
// merger derives it after summing.
func (s *Store[K]) ClassifyDayRows(ref Day, n int, opts Options, r0, r1 int) DailyStability {
	out := DailyStability{Ref: ref, N: n}
	if int(ref) < 0 || int(ref) >= s.stride*64 {
		return out
	}
	wi, bit := int(ref)/64, uint(int(ref)%64)
	for r := r0; r < r1; r++ {
		w := s.row(uint32(r))
		if w[wi]>>bit&1 == 0 {
			continue
		}
		out.Active++
		if ndStableActive(w, ref, n, opts) {
			out.Stable++
		}
	}
	return out
}

// StableKeys returns the nd-stable keys for reference day ref, in row
// (insertion) order.
func (s *Store[K]) StableKeys(ref Day, n int, opts Options) []K {
	return s.StableKeysRows(ref, n, opts, 0, len(s.keys))
}

// StableKeysRows is StableKeys restricted to rows [r0, r1).
func (s *Store[K]) StableKeysRows(ref Day, n int, opts Options, r0, r1 int) []K {
	var out []K
	for r := r0; r < r1; r++ {
		w := s.row(uint32(r))
		if wordGet(w, int(ref)) && ndStableActive(w, ref, n, opts) {
			out = append(out, s.keys[r])
		}
	}
	return out
}

// WeeklyStability summarizes stability over a 7-day span of reference days.
type WeeklyStability struct {
	Start     Day
	N         int
	Active    int // distinct keys active during the week
	Stable    int // distinct keys nd-stable on at least one reference day
	NotStable int // Active - Stable
}

// ClassifyWeek computes the weekly stability split per the paper's Table
// 2c/2d methodology: for each of the seven days starting at start, the
// nd-stable keys are determined; the count of unique nd-stable keys over
// those days is reported, and "not stable" is the remainder of the week's
// unique active keys.
func (s *Store[K]) ClassifyWeek(start Day, n int, opts Options) WeeklyStability {
	out := s.ClassifyWeekRows(start, n, opts, 0, len(s.keys))
	out.NotStable = out.Active - out.Stable
	return out
}

// ClassifyWeekRows is the partial ClassifyWeek over rows [r0, r1), the
// additive merge unit of a partitioned sweep (NotStable left zero).
func (s *Store[K]) ClassifyWeekRows(start Day, n int, opts Options, r0, r1 int) WeeklyStability {
	out := WeeklyStability{Start: start, N: n}
	for r := r0; r < r1; r++ {
		w := s.row(uint32(r))
		activeInWeek := false
		stable := false
		for d := start; d < start+7; d++ {
			if int(d) >= s.numDays {
				break
			}
			if !wordGet(w, int(d)) {
				continue
			}
			activeInWeek = true
			if ndStableActive(w, d, n, opts) {
				stable = true
				break
			}
		}
		if activeInWeek {
			out.Active++
			if stable {
				out.Stable++
			}
		}
	}
	return out
}

// OverlapSeries returns, for each day d in [ref-before, ref+after], the
// number of keys active on both d and ref — the "Mar 17 active" overlap
// curve of Figure 4. Days outside the study period report zero. The result
// has before+after+1 entries; entry before corresponds to ref itself.
func (s *Store[K]) OverlapSeries(ref Day, before, after int) []int {
	return s.OverlapSeriesRows(ref, before, after, 0, len(s.keys))
}

// OverlapSeriesRows is OverlapSeries restricted to rows [r0, r1); partial
// series merge by element-wise addition.
func (s *Store[K]) OverlapSeriesRows(ref Day, before, after, r0, r1 int) []int {
	out := make([]int, before+after+1)
	base := int(ref) - before
	// Clamp the counted window to the study period; the tail of the last
	// in-period word is masked off below.
	lo, hi := base, int(ref)+after
	if lo < 0 {
		lo = 0
	}
	if hi >= s.numDays {
		hi = s.numDays - 1
	}
	if hi < lo || int(ref) < 0 || int(ref) >= s.stride*64 {
		return out
	}
	refW, refBit := int(ref)/64, uint(int(ref)%64)
	loW, hiW := lo/64, hi/64
	for r := r0; r < r1; r++ {
		w := s.row(uint32(r))
		if w[refW]>>refBit&1 == 0 {
			continue
		}
		for wi := loW; wi <= hiW; wi++ {
			v := w[wi]
			if wi == loW {
				v &^= maskLow(lo % 64)
			}
			if wi == hiW {
				v &= maskLow(hi%64 + 1)
			}
			for v != 0 {
				d := wi*64 + bits.TrailingZeros64(v)
				out[d-base]++
				v &= v - 1
			}
		}
	}
	return out
}

// ActiveInRange returns the number of distinct keys active on at least one
// day of [from, to] (inclusive).
func (s *Store[K]) ActiveInRange(from, to Day) int {
	return s.ActiveInRangeRows(from, to, 0, len(s.keys))
}

// ActiveInRangeRows is ActiveInRange restricted to rows [r0, r1).
func (s *Store[K]) ActiveInRangeRows(from, to Day, r0, r1 int) int {
	n := 0
	for r := r0; r < r1; r++ {
		if wordsAnyInRange(s.row(uint32(r)), int(from), int(to)) {
			n++
		}
	}
	return n
}

// EpochStable counts keys active during both [aFrom,aTo] and [bFrom,bTo]
// (inclusive ranges): the paper's 6m-stable and 1y-stable classes, where the
// two ranges are the same calendar window six months or a year apart.
func (s *Store[K]) EpochStable(aFrom, aTo, bFrom, bTo Day) int {
	return s.EpochStableRows(aFrom, aTo, bFrom, bTo, 0, len(s.keys))
}

// EpochStableRows is EpochStable restricted to rows [r0, r1).
func (s *Store[K]) EpochStableRows(aFrom, aTo, bFrom, bTo Day, r0, r1 int) int {
	n := 0
	for r := r0; r < r1; r++ {
		w := s.row(uint32(r))
		if wordsAnyInRange(w, int(aFrom), int(aTo)) && wordsAnyInRange(w, int(bFrom), int(bTo)) {
			n++
		}
	}
	return n
}

// EpochStableKeys returns the keys counted by EpochStable.
func (s *Store[K]) EpochStableKeys(aFrom, aTo, bFrom, bTo Day) []K {
	return s.EpochStableKeysRows(aFrom, aTo, bFrom, bTo, 0, len(s.keys))
}

// EpochStableKeysRows is EpochStableKeys restricted to rows [r0, r1).
func (s *Store[K]) EpochStableKeysRows(aFrom, aTo, bFrom, bTo Day, r0, r1 int) []K {
	var out []K
	for r := r0; r < r1; r++ {
		w := s.row(uint32(r))
		if wordsAnyInRange(w, int(aFrom), int(aTo)) && wordsAnyInRange(w, int(bFrom), int(bTo)) {
			out = append(out, s.keys[r])
		}
	}
	return out
}

// KeysActiveOn returns the distinct keys active on day d, in row
// (insertion) order.
func (s *Store[K]) KeysActiveOn(d Day) []K {
	return s.KeysActiveOnRows(d, 0, len(s.keys))
}

// KeysActiveOnRows is KeysActiveOn restricted to rows [r0, r1).
func (s *Store[K]) KeysActiveOnRows(d Day, r0, r1 int) []K {
	var out []K
	if int(d) < 0 || int(d) >= s.stride*64 {
		return out
	}
	wi, bit := int(d)/64, uint(int(d)%64)
	for r := r0; r < r1; r++ {
		if s.row(uint32(r))[wi]>>bit&1 != 0 {
			out = append(out, s.keys[r])
		}
	}
	return out
}

// StabilitySpectrum returns, for each n in [1, maxN], the count of keys that
// are nd-stable on ref — the monotone non-increasing spectrum used by the
// window-sweep ablation. (nd-stable implies (n-1)d-stable, Section 5.1.)
func (s *Store[K]) StabilitySpectrum(ref Day, maxN int, opts Options) []int {
	return s.StabilitySpectrumRows(ref, maxN, opts, 0, len(s.keys))
}

// StabilitySpectrumRows is StabilitySpectrum restricted to rows [r0, r1);
// partial spectra merge by element-wise addition.
func (s *Store[K]) StabilitySpectrumRows(ref Day, maxN int, opts Options, r0, r1 int) []int {
	out := make([]int, maxN)
	for r := r0; r < r1; r++ {
		w := s.row(uint32(r))
		if !wordGet(w, int(ref)) {
			continue
		}
		// Find the largest n for which the key qualifies; it then counts
		// toward every smaller n.
		for n := maxN; n >= 1; n-- {
			if ndStableActive(w, ref, n, opts) {
				for i := 0; i < n; i++ {
					out[i]++
				}
				break
			}
		}
	}
	return out
}

// LongestGapStable returns keys sorted by their maximum observed activity
// gap (descending), up to limit keys — a helper for selecting probe targets
// with the longest demonstrated lifetimes.
func (s *Store[K]) LongestGapStable(limit int) []K {
	type kg struct {
		k   K
		gap int
	}
	var all []kg
	for r := range s.keys {
		w := s.row(uint32(r))
		first := wordsFirst(w, 0)
		last := wordsLast(w, s.numDays-1)
		if first >= 0 && last > first {
			all = append(all, kg{k: s.keys[r], gap: last - first})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].gap > all[j].gap })
	if limit > len(all) {
		limit = len(all)
	}
	out := make([]K, limit)
	for i := 0; i < limit; i++ {
		out[i] = all[i].k
	}
	return out
}

// Range visits every key with its slab row of day words (little-endian day
// order), in insertion order, for serialization. Returning false stops the
// iteration. The row slices alias the live slab and must not be modified or
// retained.
func (s *Store[K]) Range(fn func(k K, days []uint64) bool) {
	if s.parent != nil {
		// Uncompacted successor: the union view is the parent's rows not
		// yet overridden by the overlay, then the overlay's rows (which
		// include the copied-on-write ones).
		own := s.index()
		for r := range s.parent.keys {
			k := s.parent.keys[r]
			if _, ok := own[k]; ok {
				continue
			}
			if !fn(k, s.parent.row(uint32(r))) {
				return
			}
		}
	}
	for r := range s.keys {
		if !fn(s.keys[r], s.row(uint32(r))) {
			return
		}
	}
}

// Restore installs deserialized activity words for k, replacing any
// existing record and updating the per-day counters. Words beyond the
// store's stride (possible only when the snapshot's study period was
// longer) are dropped. Restore deserializes into fresh stores only; on a
// successor overlay it panics (the replace semantics cannot compose with
// copy-on-write rows).
func (s *Store[K]) Restore(k K, days []uint64) {
	if s.parent != nil {
		panic("temporal: Restore into a successor store")
	}
	r, ok := s.index()[k]
	if !ok {
		r = s.addRow(k)
	}
	w := s.row(r)
	if ok {
		for d := wordsFirst(w, 0); d >= 0 && d < s.numDays; d = wordsFirst(w, d+1) {
			s.perDay[d]--
		}
	}
	n := copy(w, days)
	for i := n; i < len(w); i++ {
		w[i] = 0
	}
	for d := wordsFirst(w, 0); d >= 0 && d < s.numDays; d = wordsFirst(w, d+1) {
		s.perDay[d]++
	}
}
