package temporal

import (
	"math/rand"
	"testing"
)

func TestLifetimesBasics(t *testing.T) {
	s := obs(30, map[string][]int{
		"once":   {10},
		"twice":  {10, 12},    // span 3, active 2
		"long":   {5, 10, 20}, // span 16, active 3
		"border": {0, 29},     // span 30, active 2
	})
	st := s.Lifetimes(0, 29)
	if st.Keys != 4 {
		t.Fatalf("Keys = %d", st.Keys)
	}
	if st.SingleDay != 1 {
		t.Errorf("SingleDay = %d", st.SingleDay)
	}
	if got := st.SingleDayShare(); got != 0.25 {
		t.Errorf("SingleDayShare = %v", got)
	}
	if st.SpanHistogram[0] != 1 { // "once"
		t.Errorf("span-1 count = %d", st.SpanHistogram[0])
	}
	if st.SpanHistogram[2] != 1 { // "twice": days 10..12
		t.Errorf("span-3 count = %d", st.SpanHistogram[2])
	}
	if st.SpanHistogram[29] != 1 { // "border"
		t.Errorf("span-30 count = %d", st.SpanHistogram[29])
	}
	if st.ActiveDaysHistogram[1] != 2 { // twice + border
		t.Errorf("active-2 count = %d", st.ActiveDaysHistogram[1])
	}
	if st.ActiveDaysHistogram[2] != 1 { // long
		t.Errorf("active-3 count = %d", st.ActiveDaysHistogram[2])
	}
}

func TestLifetimesRangeRestriction(t *testing.T) {
	s := obs(30, map[string][]int{
		"early": {2, 3},
		"mid":   {10, 15},
		"late":  {25},
	})
	st := s.Lifetimes(8, 20)
	if st.Keys != 1 {
		t.Fatalf("Keys = %d (only mid is inside)", st.Keys)
	}
	if st.SpanHistogram[5] != 1 { // 10..15
		t.Errorf("span hist = %v", st.SpanHistogram)
	}
	// Clamping out-of-range arguments.
	if got := s.Lifetimes(-5, 100); got.Keys != 3 {
		t.Errorf("clamped Keys = %d", got.Keys)
	}
	if got := s.Lifetimes(20, 10); got.Keys != 0 {
		t.Errorf("inverted range Keys = %d", got.Keys)
	}
}

func TestMedianSpan(t *testing.T) {
	s := obs(30, map[string][]int{
		"a": {1}, "b": {2}, "c": {3}, // three single-day keys
		"d": {5, 14}, // span 10
	})
	st := s.Lifetimes(0, 29)
	if got := st.MedianSpan(); got != 1 {
		t.Errorf("MedianSpan = %d", got)
	}
	if (LifetimeStats{}).MedianSpan() != 0 {
		t.Error("empty MedianSpan should be 0")
	}
}

func TestReturnProbability(t *testing.T) {
	// Key active every day: return probability 1 at every gap.
	s := NewStore[string](20)
	for d := 0; d < 20; d++ {
		s.Observe("always", Day(d))
	}
	// Key active on alternating days: gap-2 probability 1, gap-1 ~0.
	for d := 0; d < 20; d += 2 {
		s.Observe("alternating", Day(d))
	}
	rp := s.ReturnProbability(0, 19, 3)
	if rp[1] < 0.5 || rp[1] > 0.8 {
		t.Errorf("gap-1 probability = %v (always=1, alternating=0)", rp[1])
	}
	if rp[2] != 1 {
		t.Errorf("gap-2 probability = %v, want 1", rp[2])
	}
}

func TestReturnProbabilityDecay(t *testing.T) {
	// Synthetic privacy-like population: addresses live 1-3 consecutive
	// days and never return. Return probability must decay to zero by
	// gap 3.
	r := rand.New(rand.NewSource(6))
	s := NewStore[int](60)
	key := 0
	for start := 0; start < 50; start++ {
		for i := 0; i < 20; i++ {
			life := 1 + r.Intn(3)
			for d := start; d < start+life && d < 60; d++ {
				s.Observe(key, Day(d))
			}
			key++
		}
	}
	rp := s.ReturnProbability(0, 59, 5)
	if rp[1] <= rp[3] {
		t.Errorf("gap-1 %v should exceed gap-3 %v", rp[1], rp[3])
	}
	if rp[4] != 0 || rp[5] != 0 {
		t.Errorf("beyond max lifetime, probability should be 0: %v", rp)
	}
}

func TestTopRecurring(t *testing.T) {
	s := obs(30, map[string][]int{
		"best": {1, 2, 3, 4, 5},
		"good": {1, 5, 9},
		"meh":  {1, 2},
		"once": {7},
	})
	top := s.TopRecurring(0, 29, 2)
	if len(top) != 2 || top[0] != "best" || top[1] != "good" {
		t.Errorf("TopRecurring = %v", top)
	}
	// Single-day keys never qualify.
	all := s.TopRecurring(0, 29, 10)
	for _, k := range all {
		if k == "once" {
			t.Error("single-day key included")
		}
	}
}
