package temporal

import (
	"slices"
	"testing"
)

// seqStore builds a store whose key k is active on days k, 2k, 3k... — a
// deterministic mix of activity shapes.
func seqStore(t *testing.T, keys, days int) *Store[int] {
	t.Helper()
	s := NewStore[int](days)
	for k := 1; k <= keys; k++ {
		for d := k; d < days; d += k {
			s.Observe(k, Day(d))
		}
	}
	return s
}

// TestSeqFormsMatchSliceForms asserts every streaming form enumerates
// exactly what its slice sibling returns, in the same order.
func TestSeqFormsMatchSliceForms(t *testing.T) {
	s := seqStore(t, 40, 60)
	opts := Options{}

	if got, want := slices.Collect(s.KeysSeq()), len(s.keys); len(got) != want {
		t.Errorf("KeysSeq yielded %d keys, want %d", len(got), want)
	}
	if got, want := slices.Collect(s.StableKeysSeq(12, 3, opts)), s.StableKeys(12, 3, opts); !slices.Equal(got, want) {
		t.Errorf("StableKeysSeq %v, want %v", got, want)
	}
	if got, want := slices.Collect(s.KeysActiveAnySeq([]Day{12})), s.KeysActiveOn(12); !slices.Equal(got, want) {
		t.Errorf("KeysActiveAnySeq([12]) %v, want KeysActiveOn %v", got, want)
	}

	// Union semantics: any-of-days equals the dedup'd union of the
	// per-day slices, in row order.
	days := []Day{10, 15, 30}
	want := []int{}
	seen := map[int]bool{}
	for _, d := range days {
		for _, k := range s.KeysActiveOn(d) {
			if !seen[k] {
				seen[k] = true
				want = append(want, k)
			}
		}
	}
	slices.Sort(want) // row order == key insertion order == sorted here
	if got := slices.Collect(s.KeysActiveAnySeq(days)); !slices.Equal(got, want) {
		t.Errorf("KeysActiveAnySeq(%v) = %v, want %v", days, got, want)
	}

	// Out-of-period days contribute nothing; an all-out-of-period mask
	// yields an empty sweep.
	if got := slices.Collect(s.KeysActiveAnySeq([]Day{-3, 1000})); len(got) != 0 {
		t.Errorf("out-of-period mask yielded %v", got)
	}

	// ActivitySeq vs the point query.
	n := 0
	for k, act := range s.ActivitySeq() {
		wantAct, ok := s.Activity(k)
		if !ok || act != wantAct {
			t.Fatalf("ActivitySeq(%d) = %+v, want %+v (ok %v)", k, act, wantAct, ok)
		}
		n++
	}
	if n != s.Len() {
		t.Errorf("ActivitySeq yielded %d keys, want %d", n, s.Len())
	}
}

// TestSeqEarlyBreak asserts breaking after k elements stops the row scan:
// the yield function runs exactly k times and the same Seq value restarts
// from row 0 on the next range.
func TestSeqEarlyBreak(t *testing.T) {
	s := seqStore(t, 40, 60)
	seq := s.KeysActiveAnySeq([]Day{12})
	all := slices.Collect(seq)
	if len(all) < 5 {
		t.Fatalf("need at least 5 active keys, have %d", len(all))
	}
	yields := 0
	seq(func(k int) bool {
		yields++
		return yields < 3
	})
	if yields != 3 {
		t.Errorf("yield ran %d times after break at 3", yields)
	}
	if again := slices.Collect(seq); !slices.Equal(again, all) {
		t.Errorf("re-iteration differs: %v vs %v", again, all)
	}
}

// TestShardedSeqForms asserts the sharded streaming forms agree with the
// sharded slice forms post-freeze, and panic before Freeze (the unfrozen
// shards would race).
func TestShardedSeqForms(t *testing.T) {
	hash := func(k int) uint64 { return uint64(k) * 0x9e3779b97f4a7c15 }
	s := NewShardedStoreN(60, 4, hash)
	for k := 1; k <= 40; k++ {
		for d := k; d < 60; d += k {
			s.Observe(k, Day(d))
		}
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("KeysSeq on an unfrozen ShardedStore should panic")
			}
		}()
		s.KeysSeq()
	}()

	s.Freeze()
	sortInts := func(v []int) []int { slices.Sort(v); return v }
	if got, want := sortInts(slices.Collect(s.KeysSeq())), s.Len(); len(got) != want {
		t.Errorf("KeysSeq yielded %d, want %d", len(got), want)
	}
	got := sortInts(slices.Collect(s.StableKeysSeq(12, 3, Options{})))
	want := sortInts(s.StableKeys(12, 3, Options{}))
	if !slices.Equal(got, want) {
		t.Errorf("sharded StableKeysSeq %v, want %v", got, want)
	}
	gotAny := sortInts(slices.Collect(s.KeysActiveAnySeq([]Day{10, 15, 30})))
	wantAny := []int{}
	for k := 1; k <= 40; k++ {
		if s.Active(k, 10) || s.Active(k, 15) || s.Active(k, 30) {
			wantAny = append(wantAny, k)
		}
	}
	if !slices.Equal(gotAny, wantAny) {
		t.Errorf("sharded KeysActiveAnySeq %v, want %v", gotAny, wantAny)
	}
	n := 0
	for k, act := range s.ActivitySeq() {
		wantAct, ok := s.Activity(k)
		if !ok || act != wantAct {
			t.Fatalf("sharded ActivitySeq(%d) = %+v, want %+v", k, act, wantAct)
		}
		n++
	}
	if n != s.Len() {
		t.Errorf("sharded ActivitySeq yielded %d, want %d", n, s.Len())
	}
}

// TestShardedLifetimes asserts the tiled Lifetimes/ReturnProbability
// sweeps agree with a sequential store over the same observations.
func TestShardedLifetimes(t *testing.T) {
	hash := func(k int) uint64 { return uint64(k) * 0x9e3779b97f4a7c15 }
	sh := NewShardedStoreN(60, 4, hash)
	seq := NewStore[int](60)
	for k := 1; k <= 40; k++ {
		for d := k; d < 60; d += k {
			sh.Observe(k, Day(d))
			seq.Observe(k, Day(d))
		}
	}
	sh.Freeze()

	gotL, wantL := sh.Lifetimes(0, 59), seq.Lifetimes(0, 59)
	if gotL.Keys != wantL.Keys || gotL.SingleDay != wantL.SingleDay {
		t.Errorf("sharded Lifetimes %+v, want %+v", gotL, wantL)
	}
	if !slices.Equal(gotL.SpanHistogram, wantL.SpanHistogram) {
		t.Errorf("span histogram %v, want %v", gotL.SpanHistogram, wantL.SpanHistogram)
	}
	if !slices.Equal(gotL.ActiveDaysHistogram, wantL.ActiveDaysHistogram) {
		t.Errorf("active-days histogram %v, want %v", gotL.ActiveDaysHistogram, wantL.ActiveDaysHistogram)
	}
	gotRP, wantRP := sh.ReturnProbability(0, 59, 5), seq.ReturnProbability(0, 59, 5)
	if !slices.Equal(gotRP, wantRP) {
		t.Errorf("sharded ReturnProbability %v, want %v", gotRP, wantRP)
	}
}
