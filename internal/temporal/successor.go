package temporal

import "slices"

// The generational write path: a frozen census spawns an ingesting
// successor store that layers new observations over the predecessor's
// immutable slab instead of re-ingesting the whole study. The overlay holds
// only the rows touched this generation — a key's row is copied from the
// parent on first write (copy-on-write) or allocated fresh when the parent
// never saw it — so memory during ingestion is proportional to the day's
// churn, not the population. Compact then performs the copy-on-freeze row
// extension: the parent slab is copied once into an exactly-sized flat
// slab, dirty overlay rows are patched into their parent slots, genuinely
// new keys extend the row space, and the per-key deltas (previous day
// words of every changed key) are retained for Changed so downstream
// incremental consumers (the spatial delta build) can see exactly what this
// generation added. The parent pointer is dropped at that point, so
// generation chains never accumulate: each frozen store is self-contained
// and can spawn the next successor.

// Successor returns a new ingesting Store layered over s. The parent must
// not be mutated afterwards (it is typically frozen/compacted already; any
// immutable store works). An uncompacted successor cannot itself spawn a
// successor — Compact first — which keeps lookup chains one level deep.
func (s *Store[K]) Successor() *Store[K] {
	if s.parent != nil {
		panic("temporal: Successor of an uncompacted successor store")
	}
	t := NewStore[K](s.numDays)
	t.parent = s
	copy(t.perDay, s.perDay)
	return t
}

// compactSuccessor is Compact for a successor overlay: it merges the
// overlay into the parent's row space. Parent keys keep their row indices
// (patched with overlay words where dirty); new keys append in overlay
// insertion order. The per-key deltas are recorded for Changed and the
// parent pointer is dropped.
func (s *Store[K]) compactSuccessor() {
	p := s.parent
	total := len(p.keys) + s.newKeys
	flat := make([]uint64, total*s.stride)

	// Copy the parent rows row-by-row through p.row, which handles any
	// parent geometry (compacted flat slab or growth chunks alike).
	for r := range p.keys {
		copy(flat[r*s.stride:(r+1)*s.stride], p.row(uint32(r)))
	}

	keys := make([]K, len(p.keys), total)
	copy(keys, p.keys)
	pIdx := p.index()
	rowOf := make(map[K]uint32, total)
	for k, r := range pIdx {
		rowOf[k] = r
	}

	// Patch dirty rows and extend with new keys, recording each key whose
	// final words differ from its parent words (zeros for new keys).
	next := len(p.keys)
	for i, k := range s.keys {
		src := s.row(uint32(i))
		var dst []uint64
		var prev []uint64 // parent words; nil means all-zero
		if pr, ok := pIdx[k]; ok {
			dst = flat[int(pr)*s.stride : (int(pr)+1)*s.stride]
			prev = p.row(pr)
		} else {
			dst = flat[next*s.stride : (next+1)*s.stride]
			keys = append(keys, k)
			rowOf[k] = uint32(next)
			next++
		}
		if dirty := prev == nil || !slices.Equal(src, prev); dirty {
			s.changed = append(s.changed, k)
			off := len(s.prevRows)
			s.prevRows = append(s.prevRows, make([]uint64, s.stride)...)
			copy(s.prevRows[off:], prev)
		}
		copy(dst, src)
	}

	s.chunks = [][]uint64{flat}
	s.shift = 31
	s.mask = 1<<31 - 1
	s.keys = keys
	s.rowIdx.Store(&rowOf)
	s.parent = nil
	s.newKeys = 0
	s.sealed = true
}

// Changed visits every key whose day words this generation differ from the
// parent generation's — keys with newly set day bits, including keys the
// parent never observed (their prev words are all zero). prev and cur alias
// internal storage and must not be modified or retained. Valid on a
// compacted successor; a store with no predecessor (or an uncompacted
// overlay) visits nothing. Returning false stops the iteration.
func (s *Store[K]) Changed(fn func(k K, prev, cur []uint64) bool) {
	if len(s.changed) == 0 {
		return
	}
	idx := s.index()
	for i, k := range s.changed {
		cur := s.row(idx[k])
		prev := s.prevRows[i*s.stride : (i+1)*s.stride]
		if !fn(k, prev, cur) {
			return
		}
	}
}

// Successor returns a new ingesting ShardedStore layered shard-by-shard
// over s, which must be frozen (the per-shard overlays read the parent
// slabs without locks). The shard count and key hash carry over, so every
// key's overlay shard matches its parent shard. The successor follows the
// usual sharded lifecycle: concurrent Observe/ApplyBatch, then Freeze,
// which compacts every overlay into its parent's row space.
func (s *ShardedStore[K]) Successor() *ShardedStore[K] {
	if !s.Frozen() {
		panic("temporal: Successor of an unfrozen ShardedStore")
	}
	t := &ShardedStore[K]{numDays: s.numDays, hash: s.hash, shards: make([]storeShard[K], len(s.shards))}
	for i := range s.shards {
		t.shards[i].st = s.shards[i].st.Successor()
	}
	return t
}

// Changed visits every key whose day words differ from the parent
// generation's, shard by shard; it requires Freeze (the sweep reads every
// shard without locks). See Store.Changed for the contract.
func (s *ShardedStore[K]) Changed(fn func(k K, prev, cur []uint64) bool) {
	if !s.Frozen() {
		panic("temporal: Changed on an unfrozen ShardedStore")
	}
	for i := range s.shards {
		stop := false
		s.shards[i].st.Changed(func(k K, prev, cur []uint64) bool {
			if !fn(k, prev, cur) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}
