package temporal

import "testing"

func TestBitSetRuns(t *testing.T) {
	for _, tc := range []struct {
		days []int
		want int
	}{
		{nil, 0},
		{[]int{5}, 1},
		{[]int{5, 6, 7}, 1},
		{[]int{5, 7, 9}, 3},
		{[]int{0, 1, 2, 10, 11, 30}, 3},
		{[]int{63, 64}, 1}, // run across a word boundary
		{[]int{63, 65}, 2}, // gap at the word boundary
		{[]int{0, 63, 64, 127}, 3},
	} {
		b := NewBitSet(128)
		for _, d := range tc.days {
			b.Set(d)
		}
		if got := b.Runs(); got != tc.want {
			t.Errorf("Runs(%v) = %d, want %d", tc.days, got, tc.want)
		}
	}
}

func TestStoreActivity(t *testing.T) {
	s := NewStore[string](30)
	if _, ok := s.Activity("nobody"); ok {
		t.Error("unknown key should report no activity")
	}
	for _, d := range []Day{3, 4, 5, 9, 20, 21} {
		s.Observe("k", d)
	}
	act, ok := s.Activity("k")
	if !ok {
		t.Fatal("observed key should report activity")
	}
	want := Activity{First: 3, Last: 21, ActiveDays: 6, Runs: 3}
	if act != want {
		t.Errorf("Activity = %+v, want %+v", act, want)
	}
	if act.SpanDays() != 19 {
		t.Errorf("SpanDays = %d, want 19", act.SpanDays())
	}
	if got := act.Availability(); got != 6.0/19 {
		t.Errorf("Availability = %v, want %v", got, 6.0/19)
	}
	if got := act.Volatility(); got != 3.0/19 {
		t.Errorf("Volatility = %v, want %v", got, 3.0/19)
	}
}

func TestShardedActivityMatchesStore(t *testing.T) {
	plain := NewStore[int](60)
	sharded := NewShardedStoreN(60, 8, func(k int) uint64 { return uint64(k) * 0x9e3779b97f4a7c15 })
	for k := 0; k < 200; k++ {
		for d := 0; d < 60; d += 1 + k%7 {
			plain.Observe(k, Day(d))
			sharded.Observe(k, Day(d))
		}
	}
	sharded.Freeze()
	for k := 0; k < 200; k++ {
		a, aok := plain.Activity(k)
		b, bok := sharded.Activity(k) // lock-free: the store is frozen
		if aok != bok || a != b {
			t.Fatalf("key %d: store %+v/%v vs sharded %+v/%v", k, a, aok, b, bok)
		}
	}
}
