package temporal

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
)

// Property tests for the slab-backed Store: every word-level bulk
// operation must agree with a naive per-bit reference computed over plain
// BitSets (the pre-slab representation), across randomized stores, day
// ranges, and windows; and Compact must be invisible to every query.

// refStore is the naive reference: one BitSet per key, per-bit loops only.
type refStore struct {
	numDays int
	keys    map[uint64]*BitSet
}

func newRefStore(numDays int) *refStore {
	return &refStore{numDays: numDays, keys: make(map[uint64]*BitSet)}
}

func (r *refStore) observe(k uint64, d Day) {
	if d < 0 || int(d) >= r.numDays {
		return
	}
	b := r.keys[k]
	if b == nil {
		b = NewBitSet(r.numDays)
		r.keys[k] = b
	}
	b.Set(int(d))
}

// anyIn is the per-bit reference for AnyInRange.
func anyIn(b *BitSet, from, to int) bool {
	for d := from; d <= to; d++ {
		if b.Get(d) {
			return true
		}
	}
	return false
}

func (r *refStore) activeInRange(from, to Day) int {
	n := 0
	for _, b := range r.keys {
		if anyIn(b, int(from), int(to)) {
			n++
		}
	}
	return n
}

func (r *refStore) epochStable(aFrom, aTo, bFrom, bTo Day) int {
	n := 0
	for _, b := range r.keys {
		if anyIn(b, int(aFrom), int(aTo)) && anyIn(b, int(bFrom), int(bTo)) {
			n++
		}
	}
	return n
}

func (r *refStore) overlapSeries(ref Day, before, after int) []int {
	out := make([]int, before+after+1)
	for _, b := range r.keys {
		if !b.Get(int(ref)) {
			continue
		}
		for i := range out {
			d := int(ref) - before + i
			if d >= 0 && d < r.numDays && b.Get(d) {
				out[i]++
			}
		}
	}
	return out
}

// ndStableRef is the per-bit reference for the pair test.
func ndStableRef(b *BitSet, ref Day, n int, opts Options) bool {
	if !b.Get(int(ref)) {
		return false
	}
	w := opts.window()
	need := n + opts.SlewDays
	lo, hi := int(ref)-w.Before, int(ref)+w.After
	if !opts.AnyPair {
		for d := lo; d <= hi; d++ {
			if b.Get(d) && abs(d-int(ref)) >= need {
				return true
			}
		}
		return false
	}
	first, last := -1, -1
	for d := lo; d <= hi; d++ {
		if d >= 0 && b.Get(d) {
			if first < 0 {
				first = d
			}
			last = d
		}
	}
	return first >= 0 && last-first >= need
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func (r *refStore) classifyDay(ref Day, n int, opts Options) DailyStability {
	out := DailyStability{Ref: ref, N: n}
	for _, b := range r.keys {
		if !b.Get(int(ref)) {
			continue
		}
		out.Active++
		if ndStableRef(b, ref, n, opts) {
			out.Stable++
		}
	}
	out.NotStable = out.Active - out.Stable
	return out
}

// randomSlabStores builds a Store and its reference from one random
// observation stream.
func randomSlabStores(seed int64, keys, obs, numDays int) (*Store[uint64], *refStore) {
	rng := rand.New(rand.NewSource(seed))
	st := NewStore[uint64](numDays)
	ref := newRefStore(numDays)
	for i := 0; i < obs; i++ {
		k := uint64(rng.Intn(keys))
		d := Day(rng.Intn(numDays))
		st.Observe(k, d)
		ref.observe(k, d)
	}
	return st, ref
}

// TestPropSlabMatchesBitwiseReference drives randomized stores through
// every bulk word-level operation and checks each against the per-bit
// reference, over randomized day ranges and windows, both before and after
// Compact.
func TestPropSlabMatchesBitwiseReference(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		numDays := 20 + int(seed*31)%300
		st, ref := randomSlabStores(seed, 200, 4000, numDays)
		rng := rand.New(rand.NewSource(seed * 977))
		check := func(phase string) {
			for trial := 0; trial < 40; trial++ {
				from := Day(rng.Intn(numDays))
				to := from + Day(rng.Intn(numDays-int(from)))
				if got, want := st.ActiveInRange(from, to), ref.activeInRange(from, to); got != want {
					t.Fatalf("%s seed %d: ActiveInRange(%d,%d) = %d, want %d", phase, seed, from, to, got, want)
				}
				bFrom := Day(rng.Intn(numDays))
				bTo := bFrom + Day(rng.Intn(numDays-int(bFrom)))
				if got, want := st.EpochStable(from, to, bFrom, bTo), ref.epochStable(from, to, bFrom, bTo); got != want {
					t.Fatalf("%s seed %d: EpochStable = %d, want %d", phase, seed, got, want)
				}
				refDay := Day(rng.Intn(numDays))
				before, after := rng.Intn(12), rng.Intn(12)
				if got, want := st.OverlapSeries(refDay, before, after), ref.overlapSeries(refDay, before, after); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s seed %d: OverlapSeries(%d,%d,%d) = %v, want %v", phase, seed, refDay, before, after, got, want)
				}
				opts := Options{
					Window:   Window{Before: 1 + rng.Intn(10), After: 1 + rng.Intn(10)},
					SlewDays: rng.Intn(2),
					AnyPair:  rng.Intn(2) == 0,
				}
				n := 1 + rng.Intn(5)
				if got, want := st.ClassifyDay(refDay, n, opts), ref.classifyDay(refDay, n, opts); got != want {
					t.Fatalf("%s seed %d: ClassifyDay(%d,%d,%+v) = %+v, want %+v", phase, seed, refDay, n, opts, got, want)
				}
			}
			// Per-key agreement: days and activity against the BitSets.
			for k, b := range ref.keys {
				days := st.Days(k)
				var want []Day
				for d := 0; d < numDays; d++ {
					if b.Get(d) {
						want = append(want, Day(d))
					}
				}
				if !reflect.DeepEqual(days, want) {
					t.Fatalf("%s seed %d: Days(%d) = %v, want %v", phase, seed, k, days, want)
				}
				act, ok := st.Activity(k)
				if !ok {
					t.Fatalf("%s seed %d: Activity(%d) unknown", phase, seed, k)
				}
				if act.ActiveDays != b.Count() || act.Runs != b.Runs() {
					t.Fatalf("%s seed %d: Activity(%d) = %+v, want count %d runs %d", phase, seed, k, act, b.Count(), b.Runs())
				}
			}
		}
		check("chunked")
		st.Compact()
		check("compacted")
		// The key set is sealed, but existing keys remain observable.
		var anyKey uint64
		for k := range ref.keys {
			anyKey = k
			break
		}
		st.Observe(anyKey, Day(numDays-1))
		ref.observe(anyKey, Day(numDays-1))
		check("post-compact-observe")
	}
}

// TestSlabCompactSealsNewKeys verifies Compact's growth seal.
func TestSlabCompactSealsNewKeys(t *testing.T) {
	st := NewStore[uint64](10)
	st.Observe(1, 2)
	st.Compact()
	defer func() {
		if recover() == nil {
			t.Fatal("Observe of a new key after Compact did not panic")
		}
	}()
	st.Observe(2, 3)
}

// TestSlabGrowthAcrossChunks exercises row allocation across several arena
// chunks and row identity after growth.
func TestSlabGrowthAcrossChunks(t *testing.T) {
	const numDays = 130 // stride 3
	const keys = 3*(1<<chunkShift) + 17
	st := NewStore[uint64](numDays)
	for k := uint64(0); k < keys; k++ {
		st.Observe(k, Day(k%numDays))
	}
	if st.Len() != keys {
		t.Fatalf("Len = %d, want %d", st.Len(), keys)
	}
	for k := uint64(0); k < keys; k += 97 {
		if !st.Active(k, Day(k%numDays)) {
			t.Fatalf("key %d lost its day %d", k, k%numDays)
		}
		if st.Active(k, Day((k+1)%numDays)) {
			t.Fatalf("key %d has a stray day", k)
		}
	}
	st.Compact()
	for k := uint64(0); k < keys; k += 97 {
		if !st.Active(k, Day(k%numDays)) {
			t.Fatalf("key %d lost its day %d after Compact", k, k%numDays)
		}
	}
}

// TestShardedParallelSweepTiles runs the post-freeze sweeps with enough
// rows and GOMAXPROCS to force multi-tile row-range partitioning within
// shards, from several goroutines at once — the -race workhorse for the
// tiled sweep path — and checks results against a sequential Store.
func TestShardedParallelSweepTiles(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	const numDays = 60
	const keys = 3 * minTileRows // forces several tiles per shard at 2 shards
	seq := NewStore[uint64](numDays)
	sh := NewShardedStoreN[uint64](numDays, 2, hash64)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 6*keys; i++ {
		k := uint64(rng.Intn(keys))
		d := Day(rng.Intn(numDays))
		seq.Observe(k, d)
		sh.Observe(k, d)
	}
	sh.Freeze()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			opts := Options{Window: Window{Before: 7, After: 7}}
			for d := 0; d < numDays; d += 5 {
				day := Day(d)
				if got, want := sh.ClassifyDay(day, 3, opts), seq.ClassifyDay(day, 3, opts); got != want {
					t.Errorf("ClassifyDay(%d) = %+v, want %+v", d, got, want)
					return
				}
				if got, want := sh.ClassifyWeek(day, 3, opts), seq.ClassifyWeek(day, 3, opts); got != want {
					t.Errorf("ClassifyWeek(%d) = %+v, want %+v", d, got, want)
					return
				}
				if got, want := sh.ActiveInRange(day, day+10), seq.ActiveInRange(day, day+10); got != want {
					t.Errorf("ActiveInRange(%d) = %d, want %d", d, got, want)
					return
				}
				if got, want := sh.OverlapSeries(day, 7, 7), seq.OverlapSeries(day, 7, 7); !reflect.DeepEqual(got, want) {
					t.Errorf("OverlapSeries(%d) = %v, want %v", d, got, want)
					return
				}
				if got, want := sh.StabilitySpectrum(day, 5, opts), seq.StabilitySpectrum(day, 5, opts); !reflect.DeepEqual(got, want) {
					t.Errorf("StabilitySpectrum(%d) = %v, want %v", d, got, want)
					return
				}
			}
			a := seq.KeysActiveOn(10)
			b := sh.KeysActiveOn(10)
			sortKeys(a)
			sortKeys(b)
			if !reflect.DeepEqual(a, b) {
				t.Error("KeysActiveOn mismatch under parallel sweep")
			}
		}()
	}
	wg.Wait()
}
