package temporal

import (
	"iter"
	"slices"
	"sort"

	"v6class/internal/merge"
)

// Ordered enumeration sweeps: every …OrderedSeq method yields the same
// elements as its row-order sibling in seq.go, but in ascending cmp order
// and resumable from any previously yielded key. This is the primitive the
// cluster tier is built on — a remote pager serves one page per request
// and resumes strictly after the last key of the previous page, and a
// cross-shard (or cross-backend) gather k-way-merges per-source ordered
// streams into one globally ordered stream.
//
// The order is defined entirely by the caller's cmp, which must be a total
// order over K and must be the same function for every ordered sweep of
// one store: each Store memoizes a single sorted row permutation (built
// lazily on first use, O(n log n) once, O(1) thereafter) and the binary
// searches that implement resumption assume the permutation matches cmp.
// The key set must be final before the first ordered sweep — frozen
// sharded stores and the façade's frozen-engine gate both guarantee this.
//
// after, when non-nil, restarts the sweep strictly after *after: the
// resumed stream yields exactly the keys that a full sweep would have
// yielded after it passed *after, whether or not *after itself is a key of
// the store. Nil means from the beginning.

// orderedRowsFor returns the memoized row permutation sorting s.keys by
// cmp, building it on first call.
func (s *Store[K]) orderedRowsFor(cmp func(a, b K) int) []uint32 {
	if p := s.orderedRows.Load(); p != nil && len(*p) == len(s.keys) {
		return *p
	}
	s.orderedMu.Lock()
	defer s.orderedMu.Unlock()
	if p := s.orderedRows.Load(); p != nil && len(*p) == len(s.keys) {
		return *p
	}
	rows := make([]uint32, len(s.keys))
	for i := range rows {
		rows[i] = uint32(i)
	}
	slices.SortFunc(rows, func(a, b uint32) int { return cmp(s.keys[a], s.keys[b]) })
	s.orderedRows.Store(&rows)
	return rows
}

// orderedFrom returns the permutation and the position of the first key
// strictly greater than *after (0 when after is nil).
func (s *Store[K]) orderedFrom(cmp func(a, b K) int, after *K) ([]uint32, int) {
	perm := s.orderedRowsFor(cmp)
	if after == nil {
		return perm, 0
	}
	start := sort.Search(len(perm), func(i int) bool {
		return cmp(s.keys[perm[i]], *after) > 0
	})
	return perm, start
}

// KeysOrderedSeq yields every key ever observed in ascending cmp order,
// resuming strictly after *after when non-nil.
func (s *Store[K]) KeysOrderedSeq(cmp func(a, b K) int, after *K) iter.Seq[K] {
	return func(yield func(K) bool) {
		perm, start := s.orderedFrom(cmp, after)
		for _, r := range perm[start:] {
			if !yield(s.keys[r]) {
				return
			}
		}
	}
}

// KeysActiveAnyOrderedSeq yields every key active on at least one of the
// given days — each exactly once, like KeysActiveAnySeq — in ascending cmp
// order, resuming strictly after *after when non-nil.
func (s *Store[K]) KeysActiveAnyOrderedSeq(cmp func(a, b K) int, days []Day, after *K) iter.Seq[K] {
	mask, any := s.dayMask(days)
	return func(yield func(K) bool) {
		if !any {
			return
		}
		perm, start := s.orderedFrom(cmp, after)
		for _, r := range perm[start:] {
			w := s.row(r)
			for wi, m := range mask {
				if m != 0 && w[wi]&m != 0 {
					if !yield(s.keys[r]) {
						return
					}
					break
				}
			}
		}
	}
}

// StableKeysOrderedSeq yields the nd-stable keys for reference day ref in
// ascending cmp order, resuming strictly after *after when non-nil — the
// ordered form of StableKeysSeq.
func (s *Store[K]) StableKeysOrderedSeq(cmp func(a, b K) int, ref Day, n int, opts Options, after *K) iter.Seq[K] {
	return func(yield func(K) bool) {
		perm, start := s.orderedFrom(cmp, after)
		for _, r := range perm[start:] {
			w := s.row(r)
			if wordGet(w, int(ref)) && ndStableActive(w, ref, n, opts) {
				if !yield(s.keys[r]) {
					return
				}
			}
		}
	}
}

// ActivityOrderedSeq yields every key with its activity profile in
// ascending cmp order, resuming strictly after *after when non-nil — the
// ordered form of ActivitySeq.
func (s *Store[K]) ActivityOrderedSeq(cmp func(a, b K) int, after *K) iter.Seq2[K, Activity] {
	return func(yield func(K, Activity) bool) {
		perm, start := s.orderedFrom(cmp, after)
		for _, r := range perm[start:] {
			w := s.row(r)
			first := wordsFirst(w, 0)
			if first < 0 {
				continue
			}
			act := Activity{
				First:      Day(first),
				Last:       Day(wordsLast(w, s.numDays-1)),
				ActiveDays: wordsCount(w),
				Runs:       wordsRuns(w),
			}
			if !yield(s.keys[r], act) {
				return
			}
		}
	}
}

// ReturnCounts exposes the additive tallies behind ReturnProbability: for
// each gap g in [1, maxGap], num[g] counts returns after exactly g days and
// den[g] the opportunities. Unlike the probabilities, the counts merge
// across disjoint key partitions by element-wise addition, which is what a
// cluster coordinator sums over backends before dividing once.
func (s *Store[K]) ReturnCounts(from, to Day, maxGap int) (num, den []int) {
	gc := s.returnCountsRows(from, to, maxGap, 0, len(s.keys))
	return gc.num, gc.den
}

// KeysOrderedSeq yields every key ever observed in ascending cmp order —
// a k-way heap merge over the per-shard ordered sweeps. Requires Freeze.
func (s *ShardedStore[K]) KeysOrderedSeq(cmp func(a, b K) int, after *K) iter.Seq[K] {
	s.seqFrozen()
	seqs := make([]iter.Seq[K], len(s.shards))
	for i := range s.shards {
		seqs[i] = s.shards[i].st.KeysOrderedSeq(cmp, after)
	}
	return merge.Ordered(cmp, seqs...)
}

// KeysActiveAnyOrderedSeq yields every key active on at least one of the
// given days, each exactly once, in ascending cmp order. Requires Freeze.
func (s *ShardedStore[K]) KeysActiveAnyOrderedSeq(cmp func(a, b K) int, days []Day, after *K) iter.Seq[K] {
	s.seqFrozen()
	seqs := make([]iter.Seq[K], len(s.shards))
	for i := range s.shards {
		seqs[i] = s.shards[i].st.KeysActiveAnyOrderedSeq(cmp, days, after)
	}
	return merge.Ordered(cmp, seqs...)
}

// StableKeysOrderedSeq yields the nd-stable keys for reference day ref in
// ascending cmp order. Requires Freeze.
func (s *ShardedStore[K]) StableKeysOrderedSeq(cmp func(a, b K) int, ref Day, n int, opts Options, after *K) iter.Seq[K] {
	s.seqFrozen()
	seqs := make([]iter.Seq[K], len(s.shards))
	for i := range s.shards {
		seqs[i] = s.shards[i].st.StableKeysOrderedSeq(cmp, ref, n, opts, after)
	}
	return merge.Ordered(cmp, seqs...)
}

// keyed carries a key/activity pair through the generic merge.
type keyed[K comparable] struct {
	k   K
	act Activity
}

// ActivityOrderedSeq yields every key with its activity profile in
// ascending cmp order. Requires Freeze.
func (s *ShardedStore[K]) ActivityOrderedSeq(cmp func(a, b K) int, after *K) iter.Seq2[K, Activity] {
	s.seqFrozen()
	seqs := make([]iter.Seq[keyed[K]], len(s.shards))
	for i := range s.shards {
		st := s.shards[i].st
		seqs[i] = func(yield func(keyed[K]) bool) {
			for k, act := range st.ActivityOrderedSeq(cmp, after) {
				if !yield(keyed[K]{k, act}) {
					return
				}
			}
		}
	}
	m := merge.Ordered(func(a, b keyed[K]) int { return cmp(a.k, b.k) }, seqs...)
	return func(yield func(K, Activity) bool) {
		for p := range m {
			if !yield(p.k, p.act) {
				return
			}
		}
	}
}

// ReturnCounts merges the per-tile return and opportunity counts over
// every shard — the count form of ReturnProbability.
func (s *ShardedStore[K]) ReturnCounts(from, to Day, maxGap int) (num, den []int) {
	num = make([]int, maxGap+1)
	den = make([]int, maxGap+1)
	for _, p := range sweepTiles(s, func(st *Store[K], r0, r1 int) gapCounts {
		return st.returnCountsRows(from, to, maxGap, r0, r1)
	}) {
		for g := range p.num {
			num[g] += p.num[g]
			den[g] += p.den[g]
		}
	}
	return num, den
}
