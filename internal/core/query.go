package core

import (
	"v6class/internal/addrclass"
	"v6class/internal/ipaddr"
	"v6class/internal/temporal"
)

// The exported read-only query API over censusState: per-key point lookups
// (classification, activity, availability/volatility, nd-stability) and
// top-k aggregate queries, shared by both engines. These are the primitives
// an online service needs to answer questions about a built census without
// re-running batch analyses; on a frozen ShardedCensus every one of them is
// lock-free and safe under unbounded read concurrency.

// KeyReport is everything the census knows about one key's activity: its
// temporal extent, the days themselves, and the derived availability and
// volatility measures. The zero KeyReport (Known false) means the key was
// never observed.
type KeyReport struct {
	Known      bool    `json:"known"`
	First      int     `json:"first"`          // first active day
	Last       int     `json:"last"`           // last active day
	ActiveDays int     `json:"activeDays"`     // distinct active days
	SpanDays   int     `json:"spanDays"`       // Last-First+1
	Runs       int     `json:"runs"`           // contiguous activity runs
	Available  float64 `json:"availability"`   // ActiveDays / SpanDays
	Volatility float64 `json:"volatility"`     // Runs / SpanDays
	Days       []int   `json:"days,omitempty"` // sorted active days
}

func reportOf[K comparable](st keyStore[K], k K) KeyReport {
	act, ok := st.Activity(k)
	if !ok {
		return KeyReport{}
	}
	days := st.Days(k)
	out := KeyReport{
		Known:      true,
		First:      int(act.First),
		Last:       int(act.Last),
		ActiveDays: act.ActiveDays,
		SpanDays:   act.SpanDays(),
		Runs:       act.Runs,
		Available:  act.Availability(),
		Volatility: act.Volatility(),
		Days:       make([]int, len(days)),
	}
	for i, d := range days {
		out.Days[i] = int(d)
	}
	return out
}

// AddrLookup is the full point-lookup result for one address: its format
// classification, its own activity, and the activity of its /64 prefix.
type AddrLookup struct {
	Addr     ipaddr.Addr    `json:"-"`
	Kind     addrclass.Kind `json:"-"`
	Report   KeyReport      `json:"address"`
	Prefix64 KeyReport      `json:"prefix64"`
}

// LookupAddr reports everything the census knows about one address. The
// format classification is computed from the address bits, so it is present
// even for addresses the census never observed (Report.Known false).
func (c *censusState) LookupAddr(a ipaddr.Addr) AddrLookup {
	return AddrLookup{
		Addr:     a,
		Kind:     addrclass.Classify(a),
		Report:   reportOf(c.addrs, a),
		Prefix64: reportOf(c.p64s, ipaddr.PrefixFrom(a, 64)),
	}
}

// LookupPrefix64 reports the activity of one /64 prefix.
func (c *censusState) LookupPrefix64(p ipaddr.Prefix) KeyReport {
	return reportOf(c.p64s, p)
}

// AddrStable reports whether an address is nd-stable with respect to ref
// under opts (the per-key form of Stability).
func (c *censusState) AddrStable(a ipaddr.Addr, ref, n int, opts temporal.Options) bool {
	return c.addrs.NDStable(a, temporal.Day(ref), n, opts)
}

// Prefix64Stable reports whether a /64 prefix is nd-stable with respect to
// ref under opts.
func (c *censusState) Prefix64Stable(p ipaddr.Prefix, ref, n int, opts temporal.Options) bool {
	return c.p64s.NDStable(p, temporal.Day(ref), n, opts)
}

// Keys returns the number of distinct keys of the population ever observed.
func (c *censusState) Keys(pop Population) int {
	if pop == Addresses {
		return c.addrs.Len()
	}
	return c.p64s.Len()
}

// TopAggregate is one occupied /p aggregate with its population, a row of a
// top-k aggregate query.
type TopAggregate struct {
	Prefix ipaddr.Prefix `json:"-"`
	Count  uint64        `json:"count"`
}

// TopAggregates returns the k most populated /p aggregates of the selected
// population over the given days, largest first (ties broken by prefix
// order, so equal censuses rank identically). k <= 0 returns every occupied
// aggregate.
func (c *censusState) TopAggregates(pop Population, p, k int, days ...int) []TopAggregate {
	src := c.NativeSet
	if pop == Prefixes64 {
		src = c.Prefix64Set
	}
	ranked := src(days...).TopAggregates(p, k)
	dense := make([]TopAggregate, len(ranked))
	for i, pc := range ranked {
		dense[i] = TopAggregate{Prefix: pc.Prefix, Count: pc.Count}
	}
	return dense
}
