// Package core is the public face of the library: a Census ingests
// aggregated daily logs of active IPv6 client addresses and answers the
// temporal and spatial classification questions of Plonka & Berger
// (IMC 2015).
//
// A Census tracks, per study day, both full addresses and their /64
// prefixes, segregates the early transition mechanisms (Teredo, ISATAP,
// 6to4) exactly as the paper does, and exposes:
//
//   - temporal classification: nd-stable classes over sliding windows,
//     weekly roll-ups, epoch (6-month / 1-year) stability — for addresses
//     and /64s (Section 5.1);
//   - spatial classification: MRA count ratios and plots, n@/p-dense prefix
//     classes, aggregate population distributions (Section 5.2);
//   - format classification per Table 1;
//   - the combined "longest stable prefixes" discovery sketched as future
//     work in Section 7.2.
//
// Typical use:
//
//	c := core.NewCensus(core.CensusConfig{StudyDays: 30})
//	for day, log := range logs {
//		c.AddDay(log)
//	}
//	daily := c.Stability(core.Addresses, 17, 3)   // Table 2a cell
//	set := c.NativeSet(17)                        // spatial population
//	dense := set.DenseFixed(spatial.DensityClass{N: 2, P: 112})
//
// # Concurrency model
//
// Two ingestion engines share one analysis layer:
//
//   - Census is the sequential engine: AddDay runs on the caller's
//     goroutine and is not safe for concurrent mutation. Analyses may run
//     concurrently with each other once ingestion is complete.
//   - ShardedCensus is the concurrent engine: records are classified by a
//     pool of workers and routed by key hash over per-shard channels into
//     temporal.ShardedStore shards, so ingestion scales with GOMAXPROCS.
//     AddDays and Ingest may themselves be called from several goroutines
//     at once. Analyses are permitted only after Freeze, which ends the
//     ingestion phase and makes every query lock-free; post-freeze
//     analyses may run concurrently and internally fan out across shards.
//
// Both engines produce identical analysis results for the same logs (the
// equivalence suite in census_equivalence_test.go holds them to that), so
// callers choose purely on workload: Census for small or incremental
// studies, ShardedCensus for bulk ingestion of large ones.
package core

import (
	"fmt"
	"io"
	"iter"
	"runtime"

	"v6class/internal/addrclass"
	"v6class/internal/cdnlog"
	"v6class/internal/ipaddr"
	"v6class/internal/spatial"
	"v6class/internal/temporal"
	"v6class/internal/trie"
)

// Population selects which key population a temporal query classifies.
type Population int

const (
	// Addresses classifies full /128 client addresses.
	Addresses Population = iota
	// Prefixes64 classifies the /64 prefixes extracted from them.
	Prefixes64
)

// CensusConfig configures a Census.
type CensusConfig struct {
	// StudyDays is the length of the study period in days (required).
	StudyDays int
	// KeepTransition retains Teredo/ISATAP/6to4 addresses in the
	// temporal stores instead of segregating them. The paper's analyses
	// run with this false (the default): transition mechanisms are
	// tallied for Table 1 but excluded from classification.
	KeepTransition bool
	// StabilityOptions configures nd-stable classification; the zero
	// value uses the paper's (-7d,+7d) window.
	StabilityOptions temporal.Options
}

// keyStore is the temporal-store surface the analysis layer needs; both
// *temporal.Store and *temporal.ShardedStore satisfy it, which is how the
// sequential and sharded censuses share every analysis method.
type keyStore[K comparable] interface {
	Observe(k K, d temporal.Day)
	Len() int
	ActiveCount(d temporal.Day) int
	ActiveInRange(from, to temporal.Day) int
	ClassifyDay(ref temporal.Day, n int, opts temporal.Options) temporal.DailyStability
	ClassifyWeek(start temporal.Day, n int, opts temporal.Options) temporal.WeeklyStability
	EpochStable(aFrom, aTo, bFrom, bTo temporal.Day) int
	OverlapSeries(ref temporal.Day, before, after int) []int
	StableKeys(ref temporal.Day, n int, opts temporal.Options) []K
	KeysActiveOn(d temporal.Day) []K
	// Slab-row serialization surface: Range yields each key's day words
	// (aliasing the live slab; read-only), Restore installs them.
	Range(fn func(k K, days []uint64) bool)
	Restore(k K, days []uint64)
	// Generational delta surface (internal/temporal/successor.go): on a
	// compacted successor store, Changed visits every key whose day words
	// differ from the predecessor generation's. Other stores visit nothing.
	Changed(fn func(k K, prev, cur []uint64) bool)
	// Point queries (per-key, lock-free after a ShardedStore freeze).
	Active(k K, d temporal.Day) bool
	Days(k K) []temporal.Day
	NDStable(k K, ref temporal.Day, n int, opts temporal.Options) bool
	Activity(k K) (temporal.Activity, bool)
	// Lifetime aggregates (row sweeps, tiled on a ShardedStore).
	Lifetimes(from, to temporal.Day) temporal.LifetimeStats
	ReturnProbability(from, to temporal.Day, maxGap int) []float64
	// Streaming enumerations (see internal/temporal/seq.go); on a
	// ShardedStore these require Freeze and panic otherwise, which the
	// module-root façade converts into its typed ErrNotFrozen.
	KeysSeq() iter.Seq[K]
	StableKeysSeq(ref temporal.Day, n int, opts temporal.Options) iter.Seq[K]
	KeysActiveAnySeq(days []temporal.Day) iter.Seq[K]
	KeysActiveAnySeqs(n int, days []temporal.Day) []iter.Seq[K]
	ActivitySeq() iter.Seq2[K, temporal.Activity]
	// Ordered, resumable enumerations (internal/temporal/ordered.go): the
	// same elements in ascending cmp order, restarting strictly after
	// *after when non-nil. The key set must be final (frozen) first.
	KeysOrderedSeq(cmp func(a, b K) int, after *K) iter.Seq[K]
	KeysActiveAnyOrderedSeq(cmp func(a, b K) int, days []temporal.Day, after *K) iter.Seq[K]
	StableKeysOrderedSeq(cmp func(a, b K) int, ref temporal.Day, n int, opts temporal.Options, after *K) iter.Seq[K]
	ActivityOrderedSeq(cmp func(a, b K) int, after *K) iter.Seq2[K, temporal.Activity]
	// ReturnCounts exposes the additive tallies behind ReturnProbability,
	// mergeable across disjoint key partitions by element-wise addition.
	ReturnCounts(from, to temporal.Day, maxGap int) (num, den []int)
}

// censusState is the engine-independent census: the two key stores plus the
// per-day format tallies, with every analysis defined against the keyStore
// interface. Census and ShardedCensus embed it.
type censusState struct {
	cfg   CensusConfig
	addrs keyStore[ipaddr.Addr]
	p64s  keyStore[ipaddr.Prefix]

	// Per-day format tallies for Table 1, over all ingested addresses
	// (including transition mechanisms).
	kinds map[int]addrclass.Summary
	// Per-day EUI-64 distinct MAC tallies.
	macs map[int]map[addrclass.MAC]bool
	// parentMacs is the predecessor generation's per-day MAC view on a
	// successor census (successor.go). Days ingested this generation get a
	// copy-on-write clone in macs; untouched days read through to the
	// parent's (immutable) sets, so summaries and snapshots stay whole.
	parentMacs map[int]map[addrclass.MAC]bool
}

// Analyzer is the full analysis interface shared by Census and
// ShardedCensus: everything but ingestion. Callers that only classify can
// accept an Analyzer and stay agnostic of the ingestion engine.
type Analyzer interface {
	StudyDays() int
	StabilityDefaults() temporal.Options
	Summary(day int) DaySummary
	Stability(pop Population, ref, n int) temporal.DailyStability
	StabilityWith(pop Population, ref, n int, opts temporal.Options) temporal.DailyStability
	WeeklyStability(pop Population, start, n int) temporal.WeeklyStability
	WeeklyStabilityWith(pop Population, start, n int, opts temporal.Options) temporal.WeeklyStability
	EpochStable(pop Population, aFrom, aTo, bFrom, bTo int) int
	ActiveCount(pop Population, day int) int
	ActiveInRange(pop Population, from, to int) int
	OverlapSeries(pop Population, ref, before, after int) []int
	StableAddrs(ref, n int) []ipaddr.Addr
	AddrsActiveOn(day int) []ipaddr.Addr
	NativeSet(days ...int) *spatial.AddressSet
	Prefix64Set(days ...int) *spatial.AddressSet
	LongestStablePrefixes(aFrom, aTo, bFrom, bTo int, minBits int, minSupport uint64) []LongestStablePrefix
	// Read-only point and aggregate queries (query.go); on a frozen
	// ShardedCensus these are lock-free and safe for any concurrency.
	Keys(pop Population) int
	LookupAddr(a ipaddr.Addr) AddrLookup
	LookupPrefix64(p ipaddr.Prefix) KeyReport
	AddrStable(a ipaddr.Addr, ref, n int, opts temporal.Options) bool
	Prefix64Stable(p ipaddr.Prefix, ref, n int, opts temporal.Options) bool
	TopAggregates(pop Population, p, k int, days ...int) []TopAggregate
	// Lifetime aggregates over an inclusive day range.
	LifetimeStats(pop Population, from, to int) temporal.LifetimeStats
	ReturnProbability(pop Population, from, to, maxGap int) []float64
	// Streaming enumerations (seq.go): allocation-free per element, backed
	// by the slab row sweeps. On an unfrozen ShardedCensus they panic; the
	// module-root façade gates them behind its freeze lifecycle instead.
	StableAddrsSeq(ref, n int, opts temporal.Options) iter.Seq[ipaddr.Addr]
	AddrsActiveAnySeq(days ...int) iter.Seq[ipaddr.Addr]
	Prefix64sActiveAnySeq(days ...int) iter.Seq[ipaddr.Prefix]
	AddrsActiveAnySeqs(n int, days ...int) []iter.Seq[ipaddr.Addr]
	Prefix64sActiveAnySeqs(n int, days ...int) []iter.Seq[ipaddr.Prefix]
	AddrsSeq() iter.Seq[ipaddr.Addr]
	Prefix64sSeq() iter.Seq[ipaddr.Prefix]
	AddrLifetimesSeq() iter.Seq2[ipaddr.Addr, temporal.Activity]
	Prefix64LifetimesSeq() iter.Seq2[ipaddr.Prefix, temporal.Activity]
	// Ordered, resumable enumerations (ordered.go): ascending numeric
	// address order (prefixes: base address, then prefix length),
	// restarting strictly after *after when non-nil. An empty days slice
	// enumerates every key ever observed; a non-empty one the union of
	// keys active on any listed day. These are the streams a remote pager
	// serves one page at a time and a cluster coordinator k-way merges.
	AddrsOrderedSeq(days []int, after *ipaddr.Addr) iter.Seq[ipaddr.Addr]
	Prefix64sOrderedSeq(days []int, after *ipaddr.Prefix) iter.Seq[ipaddr.Prefix]
	StableAddrsOrderedSeq(ref, n int, opts temporal.Options, after *ipaddr.Addr) iter.Seq[ipaddr.Addr]
	AddrLifetimesOrderedSeq(after *ipaddr.Addr) iter.Seq2[ipaddr.Addr, temporal.Activity]
	Prefix64LifetimesOrderedSeq(after *ipaddr.Prefix) iter.Seq2[ipaddr.Prefix, temporal.Activity]
	// ReturnCounts is the count form of ReturnProbability: per-gap return
	// and opportunity tallies that merge across partitions by addition.
	ReturnCounts(pop Population, from, to, maxGap int) (num, den []int)
	// Generational delta enumerations (successor.go): on a frozen successor
	// census they visit every key whose day words this generation differ
	// from the predecessor's; on a first-generation census they visit
	// nothing. The word slices alias internal storage (read-only).
	ChangedAddrs(fn func(a ipaddr.Addr, prev, cur []uint64) bool)
	ChangedPrefix64s(fn func(p ipaddr.Prefix, prev, cur []uint64) bool)
	io.WriterTo
}

// Census is the sequential analysis engine. It is not safe for concurrent
// mutation; analyses may run concurrently once ingestion is complete. For
// concurrent bulk ingestion use ShardedCensus.
type Census struct {
	censusState
}

var _ Analyzer = (*Census)(nil)

func checkConfig(cfg CensusConfig) {
	if cfg.StudyDays <= 0 {
		panic("core: CensusConfig.StudyDays must be positive")
	}
}

// NewCensus returns an empty sequential Census for a study period.
func NewCensus(cfg CensusConfig) *Census {
	checkConfig(cfg)
	return &Census{censusState{
		cfg:   cfg,
		addrs: temporal.NewStore[ipaddr.Addr](cfg.StudyDays),
		p64s:  temporal.NewStore[ipaddr.Prefix](cfg.StudyDays),
		kinds: make(map[int]addrclass.Summary),
		macs:  make(map[int]map[addrclass.MAC]bool),
	}}
}

// StudyDays returns the configured study length.
func (c *censusState) StudyDays() int { return c.cfg.StudyDays }

// StabilityDefaults returns the configured default classification options
// (the zero value means the paper's (-7d,+7d) window), so adopters of an
// already built census can answer Stability exactly as it would.
func (c *censusState) StabilityDefaults() temporal.Options { return c.cfg.StabilityOptions }

// classifyRecord applies the Table 1 bookkeeping for one record into sum and
// the day's MAC set (allocated through getMACs on first use), and reports
// whether the address belongs in the temporal stores.
func (c *censusState) classifyRecord(r cdnlog.Record, sum *addrclass.Summary, getMACs func() map[addrclass.MAC]bool) bool {
	kind := addrclass.Classify(r.Addr)
	sum.Total++
	sum.ByKind[kind]++
	if kind == addrclass.KindEUI64 {
		if mac, ok := addrclass.EUI64MAC(r.Addr); ok {
			getMACs()[mac] = true
		}
	}
	return !kind.IsTransition() || c.cfg.KeepTransition
}

// AddDay ingests one aggregated daily log.
func (c *Census) AddDay(log cdnlog.DayLog) {
	day := log.Day
	sum := c.kinds[day]
	if sum.ByKind == nil {
		sum = addrclass.Summary{ByKind: make(map[addrclass.Kind]int, addrclass.NumKinds)}
	}
	getMACs := func() map[addrclass.MAC]bool {
		m := c.macs[day]
		if m == nil {
			m = c.cowDayMACs(day, 0)
		}
		return m
	}
	for _, r := range log.Records {
		if c.classifyRecord(r, &sum, getMACs) {
			c.addrs.Observe(r.Addr, temporal.Day(day))
			c.p64s.Observe(ipaddr.PrefixFrom(r.Addr, 64), temporal.Day(day))
		}
	}
	c.kinds[day] = sum
}

// DaySummary returns the Table 1 format tally of one ingested day, with
// distinct-MAC count for the EUI-64 rows.
type DaySummary struct {
	Day     int
	Total   int
	ByKind  map[addrclass.Kind]int
	Native  int
	Addrs64 int // distinct /64s of native addresses
	MACs    int // distinct EUI-64 MACs
}

// Summary returns the format tally for a day. Days never ingested yield a
// zero summary.
func (c *censusState) Summary(day int) DaySummary {
	sum := c.kinds[day]
	return DaySummary{
		Day:     day,
		Total:   sum.Total,
		ByKind:  sum.ByKind,
		Native:  sum.Native(),
		Addrs64: c.p64s.ActiveCount(temporal.Day(day)),
		MACs:    c.macCount(day),
	}
}

// Stability computes the daily nd-stable split of the selected population
// for a reference day (a Table 2a/2b cell).
func (c *censusState) Stability(pop Population, ref, n int) temporal.DailyStability {
	return c.StabilityWith(pop, ref, n, c.cfg.StabilityOptions)
}

// StabilityWith is Stability with explicit classification options,
// overriding the configured StabilityOptions (snapshots do not record
// options, so post-restore callers use this to pick their window).
func (c *censusState) StabilityWith(pop Population, ref, n int, opts temporal.Options) temporal.DailyStability {
	switch pop {
	case Addresses:
		return c.addrs.ClassifyDay(temporal.Day(ref), n, opts)
	case Prefixes64:
		return c.p64s.ClassifyDay(temporal.Day(ref), n, opts)
	}
	panic(fmt.Sprintf("core: unknown population %d", pop))
}

// WeeklyStability computes the weekly nd-stable split (a Table 2c/2d cell).
func (c *censusState) WeeklyStability(pop Population, start, n int) temporal.WeeklyStability {
	return c.WeeklyStabilityWith(pop, start, n, c.cfg.StabilityOptions)
}

// WeeklyStabilityWith is WeeklyStability with explicit classification
// options, overriding the configured StabilityOptions (the post-restore
// counterpart of StabilityWith: snapshots do not record options).
func (c *censusState) WeeklyStabilityWith(pop Population, start, n int, opts temporal.Options) temporal.WeeklyStability {
	switch pop {
	case Addresses:
		return c.addrs.ClassifyWeek(temporal.Day(start), n, opts)
	case Prefixes64:
		return c.p64s.ClassifyWeek(temporal.Day(start), n, opts)
	}
	panic(fmt.Sprintf("core: unknown population %d", pop))
}

// EpochStable counts keys active in both inclusive day ranges — the 6m- and
// 1y-stable classes.
func (c *censusState) EpochStable(pop Population, aFrom, aTo, bFrom, bTo int) int {
	switch pop {
	case Addresses:
		return c.addrs.EpochStable(temporal.Day(aFrom), temporal.Day(aTo), temporal.Day(bFrom), temporal.Day(bTo))
	case Prefixes64:
		return c.p64s.EpochStable(temporal.Day(aFrom), temporal.Day(aTo), temporal.Day(bFrom), temporal.Day(bTo))
	}
	panic(fmt.Sprintf("core: unknown population %d", pop))
}

// ActiveCount returns the distinct active keys on a day.
func (c *censusState) ActiveCount(pop Population, day int) int {
	if pop == Addresses {
		return c.addrs.ActiveCount(temporal.Day(day))
	}
	return c.p64s.ActiveCount(temporal.Day(day))
}

// ActiveInRange returns the distinct keys active on at least one day of the
// inclusive range.
func (c *censusState) ActiveInRange(pop Population, from, to int) int {
	if pop == Addresses {
		return c.addrs.ActiveInRange(temporal.Day(from), temporal.Day(to))
	}
	return c.p64s.ActiveInRange(temporal.Day(from), temporal.Day(to))
}

// OverlapSeries returns the Figure 4 overlap curve of the selected
// population around a reference day.
func (c *censusState) OverlapSeries(pop Population, ref, before, after int) []int {
	if pop == Addresses {
		return c.addrs.OverlapSeries(temporal.Day(ref), before, after)
	}
	return c.p64s.OverlapSeries(temporal.Day(ref), before, after)
}

// StableAddrs returns the nd-stable addresses for a reference day (probe
// target selection, Section 6.1.1).
func (c *censusState) StableAddrs(ref, n int) []ipaddr.Addr {
	return c.addrs.StableKeys(temporal.Day(ref), n, c.cfg.StabilityOptions)
}

// AddrsActiveOn returns the native addresses active on a day.
func (c *censusState) AddrsActiveOn(day int) []ipaddr.Addr {
	return c.addrs.KeysActiveOn(temporal.Day(day))
}

// NativeSet builds the spatial population of native addresses active on the
// given days (e.g. one day, or a 7-day week). Each distinct address counts
// once regardless of how many of the days it was active, matching the
// paper's distinct-address populations: the day-mask row sweeps behind
// AddrsActiveAnySeqs deduplicate by construction. The trie is built through
// the partitioned parallel build, with each worker consuming its own
// row-range (or shard) sweep; a radix trie's shape is a pure function of
// the item set, so the result is identical to sequential insertion.
func (c *censusState) NativeSet(days ...int) *spatial.AddressSet {
	workers := runtime.GOMAXPROCS(0)
	return spatial.BuildAddressSet(workers, c.AddrsActiveAnySeqs(workers, days...)...)
}

// Prefix64Set builds the spatial population of distinct active /64s on the
// given days (for Figure 3's "/64s" curves), through the same parallel
// build as NativeSet.
func (c *censusState) Prefix64Set(days ...int) *spatial.AddressSet {
	workers := runtime.GOMAXPROCS(0)
	return spatial.BuildPrefixSet(workers, c.Prefix64sActiveAnySeqs(workers, days...)...)
}

// LongestStablePrefix is one discovered stable network-identifier prefix
// (Section 7.2): a prefix observed active in two separated periods, with
// the number of period-B addresses supporting it.
type LongestStablePrefix struct {
	Prefix  ipaddr.Prefix
	Support uint64
}

// LongestStablePrefixes implements the paper's future-work proposal: find
// the longest prefixes stable across two periods, without relying on
// long-lived IIDs. For every address active in period B, the longest common
// prefix with any address active in period A is computed (one trie walk);
// the resulting stable prefixes are tallied and those with at least
// minSupport supporting addresses and at least minBits length are returned,
// deduplicated to the least-specific non-overlapping set, in prefix order.
func (c *censusState) LongestStablePrefixes(aFrom, aTo, bFrom, bTo int, minBits int, minSupport uint64) []LongestStablePrefix {
	return LongestStablePrefixesFrom(
		c.AddrsActiveAnySeq(rangeDays(aFrom, aTo)...),
		c.AddrsActiveAnySeq(rangeDays(bFrom, bTo)...),
		minBits, minSupport)
}

// LongestStablePrefixesFrom is the stream form of LongestStablePrefixes:
// it computes the same report from any two address streams — period A and
// period B — each yielding every address exactly once. A cluster
// coordinator uses this to run the analysis over the merged per-backend
// enumeration streams, since the per-backend reports cannot be merged (the
// longest common prefix of a B address may be with an A address held by a
// different backend).
func LongestStablePrefixesFrom(periodA, periodB iter.Seq[ipaddr.Addr], minBits int, minSupport uint64) []LongestStablePrefix {
	// Build the period-A address trie; the streams yield each address
	// once, so no seen-set is needed.
	var aTrie trie.Trie
	for a := range periodA {
		aTrie.AddAddr(a)
	}
	if aTrie.Len() == 0 {
		return nil
	}
	// Tally stable prefixes from period-B addresses.
	var support trie.Trie
	for b := range periodB {
		cpl := aTrie.MaxCommonPrefixLen(b)
		if cpl >= minBits {
			support.Add(ipaddr.PrefixFrom(b, cpl), 1)
		}
	}
	// Report the least-specific prefixes meeting the support floor; the
	// aguri aggregation rolls thin support upward so a /64 supported by
	// many slightly-different /68 observations still surfaces.
	var out []LongestStablePrefix
	for _, pc := range support.AguriAggregate(minSupport) {
		if pc.Prefix.Bits() >= minBits && pc.Count >= minSupport {
			out = append(out, LongestStablePrefix{Prefix: pc.Prefix, Support: pc.Count})
		}
	}
	return out
}
