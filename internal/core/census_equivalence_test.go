package core

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"v6class/internal/cdnlog"
	"v6class/internal/ipaddr"
	"v6class/internal/spatial"
	"v6class/synth"
)

// The equivalence suite: for several seeded synthetic worlds, the sharded
// concurrent census must answer every analysis identically to the
// sequential census over the same logs — the contract that lets later
// scaling work refactor the pipeline against a fixed reference.

// equivWorlds are the synthetic worlds the suite sweeps: varying seeds,
// scales, shard counts and timestamp slew.
var equivWorlds = []struct {
	name    string
	cfg     synth.Config
	days    int // ingested days [0, days)
	shards  int
	workers int
}{
	{"small", synth.Config{Seed: 1, Scale: 0.01, StudyDays: 30}, 25, 0, 0},
	{"one-shard", synth.Config{Seed: 2, Scale: 0.01, StudyDays: 20}, 15, 1, 2},
	{"many-shards", synth.Config{Seed: 3, Scale: 0.02, StudyDays: 24}, 20, 16, 3},
	{"slewed", synth.Config{Seed: 4, Scale: 0.015, StudyDays: 28, SlewProb: 0.3}, 22, 4, 4},
}

func worldLogs(t testing.TB, cfg synth.Config, days int) []cdnlog.DayLog {
	t.Helper()
	return synth.NewWorld(cfg).Days(0, days)
}

func buildBoth(t testing.TB, cfg CensusConfig, logs []cdnlog.DayLog, shards, workers int) (*Census, *ShardedCensus) {
	t.Helper()
	seq := NewCensus(cfg)
	for _, l := range logs {
		seq.AddDay(l)
	}
	sh := NewShardedCensusN(cfg, shards, workers)
	sh.AddDays(logs)
	sh.Freeze()
	return seq, sh
}

func TestShardedCensusEquivalence(t *testing.T) {
	for _, w := range equivWorlds {
		t.Run(w.name, func(t *testing.T) {
			logs := worldLogs(t, w.cfg, w.days)
			cfg := CensusConfig{StudyDays: w.cfg.StudyDays}
			seq, sh := buildBoth(t, cfg, logs, w.shards, w.workers)
			assertCensusesAgree(t, seq, sh, w.days)
		})
	}
}

// TestShardedCensusEquivalenceKeepTransition covers the KeepTransition
// configuration, where transition-mechanism addresses enter the stores.
func TestShardedCensusEquivalenceKeepTransition(t *testing.T) {
	cfg := synth.Config{Seed: 5, Scale: 0.01, StudyDays: 20}
	logs := worldLogs(t, cfg, 15)
	seq, sh := buildBoth(t, CensusConfig{StudyDays: 20, KeepTransition: true}, logs, 0, 0)
	assertCensusesAgree(t, seq, sh, 15)
}

// assertCensusesAgree compares the full Analyzer surface of the two
// engines.
func assertCensusesAgree(t *testing.T, seq, sh Analyzer, days int) {
	t.Helper()
	if seq.StudyDays() != sh.StudyDays() {
		t.Fatal("StudyDays mismatch")
	}
	for d := 0; d < days; d++ {
		if !reflect.DeepEqual(seq.Summary(d), sh.Summary(d)) {
			t.Fatalf("Summary(%d): sequential %+v, sharded %+v", d, seq.Summary(d), sh.Summary(d))
		}
		for _, pop := range []Population{Addresses, Prefixes64} {
			if seq.ActiveCount(pop, d) != sh.ActiveCount(pop, d) {
				t.Fatalf("ActiveCount(%v, %d) mismatch", pop, d)
			}
			if seq.Stability(pop, d, 3) != sh.Stability(pop, d, 3) {
				t.Fatalf("Stability(%v, %d): sequential %+v, sharded %+v",
					pop, d, seq.Stability(pop, d, 3), sh.Stability(pop, d, 3))
			}
		}
	}
	mid := days / 2
	for _, pop := range []Population{Addresses, Prefixes64} {
		if seq.WeeklyStability(pop, mid-3, 3) != sh.WeeklyStability(pop, mid-3, 3) {
			t.Fatalf("WeeklyStability(%v) mismatch", pop)
		}
		if seq.EpochStable(pop, 0, 3, days-4, days-1) != sh.EpochStable(pop, 0, 3, days-4, days-1) {
			t.Fatalf("EpochStable(%v) mismatch", pop)
		}
		if seq.ActiveInRange(pop, 1, days-2) != sh.ActiveInRange(pop, 1, days-2) {
			t.Fatalf("ActiveInRange(%v) mismatch", pop)
		}
		if !reflect.DeepEqual(seq.OverlapSeries(pop, mid, 5, 5), sh.OverlapSeries(pop, mid, 5, 5)) {
			t.Fatalf("OverlapSeries(%v) mismatch", pop)
		}
	}
	a, b := seq.StableAddrs(mid, 3), sh.StableAddrs(mid, 3)
	sortAddrSlice(a)
	sortAddrSlice(b)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("StableAddrs mismatch")
	}
	a, b = seq.AddrsActiveOn(mid), sh.AddrsActiveOn(mid)
	sortAddrSlice(a)
	sortAddrSlice(b)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("AddrsActiveOn mismatch")
	}
	week := []int{mid, mid + 1, mid + 2, mid + 3, mid + 4, mid + 5, mid + 6}
	if !sameSet(seq.NativeSet(week...), sh.NativeSet(week...)) {
		t.Fatal("NativeSet mismatch")
	}
	if !sameSet(seq.Prefix64Set(week...), sh.Prefix64Set(week...)) {
		t.Fatal("Prefix64Set mismatch")
	}
	lspSeq := seq.LongestStablePrefixes(0, 4, days-5, days-1, 24, 2)
	lspSh := sh.LongestStablePrefixes(0, 4, days-5, days-1, 24, 2)
	if !reflect.DeepEqual(lspSeq, lspSh) {
		t.Fatalf("LongestStablePrefixes: sequential %v, sharded %v", lspSeq, lspSh)
	}
}

// sameSet compares two spatial populations item-by-item (the trie walk is
// in prefix order, so equal sets render equal item lists).
func sameSet(a, b *spatial.AddressSet) bool {
	return reflect.DeepEqual(a.Trie().Items(), b.Trie().Items())
}

func sortAddrSlice(s []ipaddr.Addr) {
	sort.Slice(s, func(i, j int) bool { return s[i].Less(s[j]) })
}

// TestShardedCensusPersistRoundTrip writes a sharded census and reads it
// back through both readers; analyses must survive unchanged.
func TestShardedCensusPersistRoundTrip(t *testing.T) {
	cfg := synth.Config{Seed: 6, Scale: 0.01, StudyDays: 20}
	const days = 16
	logs := worldLogs(t, cfg, days)
	seq, sh := buildBoth(t, CensusConfig{StudyDays: 20}, logs, 0, 0)

	var buf bytes.Buffer
	if _, err := sh.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	seqBack, err := ReadCensus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertCensusesAgree(t, seq, seqBack, days)

	shBack, err := ReadShardedCensus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	shBack.Freeze()
	assertCensusesAgree(t, seq, shBack, days)
}

// TestShardedCensusIncremental checks that a snapshot-restored sharded
// census can keep ingesting and still matches the sequential engine fed
// the same split.
func TestShardedCensusIncremental(t *testing.T) {
	cfg := synth.Config{Seed: 7, Scale: 0.01, StudyDays: 24}
	const days = 20
	logs := worldLogs(t, cfg, days)

	seq := NewCensus(CensusConfig{StudyDays: 24})
	for _, l := range logs {
		seq.AddDay(l)
	}

	first := NewShardedCensus(CensusConfig{StudyDays: 24})
	first.AddDays(logs[:days/2])
	var buf bytes.Buffer
	if _, err := first.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	second, err := ReadShardedCensus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	second.AddDays(logs[days/2:])
	second.Freeze()
	assertCensusesAgree(t, seq, second, days)
}
