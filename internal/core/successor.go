package core

import (
	"v6class/internal/addrclass"
	"v6class/internal/ipaddr"
	"v6class/internal/temporal"
)

// The generational census lifecycle behind the serve service's live write
// path: a frozen census spawns an ingesting successor that layers new daily
// observations over the predecessor's immutable slabs (see
// internal/temporal/successor.go for the storage mechanics). The successor
// shares nothing mutable with its parent — Table 1 tallies are deep-copied,
// MAC sets are copy-on-write per day — so the parent keeps serving reads
// untouched while the successor ingests, and freezing the successor yields
// a self-contained census that can spawn the next generation.

// Freeze ends the sequential census's ingestion phase, compacting both key
// stores into their read-optimized slabs (and, on a successor, merging the
// overlay into the parent's row space). After Freeze new keys panic; it is
// the sequential counterpart of ShardedCensus.Freeze and is what arms
// ChangedAddrs/ChangedPrefix64s on a successor.
func (c *Census) Freeze() {
	c.addrs.(*temporal.Store[ipaddr.Addr]).Compact()
	c.p64s.(*temporal.Store[ipaddr.Prefix]).Compact()
}

// Successor returns a new ingesting Census layered over c, which must be
// frozen (Successor freezes it defensively; Compact is idempotent). The
// parent census is never mutated again by either side.
func (c *Census) Successor() *Census {
	c.Freeze()
	return &Census{censusState{
		cfg:        c.cfg,
		addrs:      c.addrs.(*temporal.Store[ipaddr.Addr]).Successor(),
		p64s:       c.p64s.(*temporal.Store[ipaddr.Prefix]).Successor(),
		kinds:      cloneKinds(c.kinds),
		macs:       make(map[int]map[addrclass.MAC]bool),
		parentMacs: c.macsView(),
	}}
}

// Successor returns a new ingesting ShardedCensus layered over c, which
// must be frozen (it panics otherwise, matching the sharded store's
// lock-free read contract). The successor follows the usual lifecycle:
// concurrent AddDays/Ingest, then Freeze.
func (c *ShardedCensus) Successor() *ShardedCensus {
	if !c.Frozen() {
		panic("core: Successor of an unfrozen ShardedCensus")
	}
	saddrs := c.saddrs.Successor()
	sp64s := c.sp64s.Successor()
	return &ShardedCensus{
		censusState: censusState{
			cfg:        c.cfg,
			addrs:      saddrs,
			p64s:       sp64s,
			kinds:      cloneKinds(c.kinds),
			macs:       make(map[int]map[addrclass.MAC]bool),
			parentMacs: c.macsView(),
		},
		saddrs:  saddrs,
		sp64s:   sp64s,
		workers: c.workers,
	}
}

// ChangedAddrs visits every address whose day words this generation differ
// from the predecessor generation's (newly observed addresses have all-zero
// prev words). On a first-generation census it visits nothing. The word
// slices alias internal storage and must not be modified or retained.
func (c *censusState) ChangedAddrs(fn func(a ipaddr.Addr, prev, cur []uint64) bool) {
	c.addrs.Changed(fn)
}

// ChangedPrefix64s is ChangedAddrs for the /64 prefix population.
func (c *censusState) ChangedPrefix64s(fn func(p ipaddr.Prefix, prev, cur []uint64) bool) {
	c.p64s.Changed(fn)
}

// cowDayMACs installs day's generation-local MAC set, seeding it from the
// predecessor's set for that day when one exists (copy-on-write: the
// parent's sets are immutable and shared until a day is re-ingested).
func (c *censusState) cowDayMACs(day, sizeHint int) map[addrclass.MAC]bool {
	var m map[addrclass.MAC]bool
	if pm := c.parentMacs[day]; pm != nil {
		m = make(map[addrclass.MAC]bool, len(pm)+sizeHint)
		for mac := range pm {
			m[mac] = true
		}
	} else {
		m = make(map[addrclass.MAC]bool, sizeHint)
	}
	c.macs[day] = m
	return m
}

// macCount returns the distinct EUI-64 MAC count for a day through the
// generational view: the generation-local set when the day was re-ingested,
// the predecessor's otherwise.
func (c *censusState) macCount(day int) int {
	if m, ok := c.macs[day]; ok {
		return len(m)
	}
	return len(c.parentMacs[day])
}

// macsView returns the merged per-day MAC view: generation-local sets where
// present, the predecessor's elsewhere. On a first-generation census it is
// the macs map itself; the returned maps must be treated as read-only.
func (c *censusState) macsView() map[int]map[addrclass.MAC]bool {
	if len(c.parentMacs) == 0 {
		return c.macs
	}
	out := make(map[int]map[addrclass.MAC]bool, len(c.parentMacs)+len(c.macs))
	for day, m := range c.parentMacs {
		out[day] = m
	}
	for day, m := range c.macs {
		out[day] = m
	}
	return out
}

// cloneKinds deep-copies the per-day Table 1 tallies (the ByKind maps are
// mutated in place during ingestion, so a successor needs its own).
func cloneKinds(kinds map[int]addrclass.Summary) map[int]addrclass.Summary {
	out := make(map[int]addrclass.Summary, len(kinds))
	for day, sum := range kinds {
		byKind := make(map[addrclass.Kind]int, len(sum.ByKind))
		for k, n := range sum.ByKind {
			byKind[k] = n
		}
		sum.ByKind = byKind
		out[day] = sum
	}
	return out
}
