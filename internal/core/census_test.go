package core

import (
	"testing"

	"v6class/internal/addrclass"
	"v6class/internal/cdnlog"
	"v6class/internal/ipaddr"
	"v6class/internal/spatial"
	"v6class/synth"
)

func day(dayNum int, addrs ...string) cdnlog.DayLog {
	l := cdnlog.DayLog{Day: dayNum}
	for _, s := range addrs {
		l.Records = append(l.Records, cdnlog.Record{Addr: ipaddr.MustParseAddr(s), Hits: 1})
	}
	return l
}

func TestCensusIngestAndSummary(t *testing.T) {
	c := NewCensus(CensusConfig{StudyDays: 30})
	c.AddDay(day(10,
		"2001:db8:1:1::1",                      // low-iid native
		"2001:db8:1:1:21e:c2ff:fec0:11db",      // eui-64 native
		"2001:db8:1:2:3031:f3fd:bbdd:2c2a",     // privacy native
		"2002:c000:204::1",                     // 6to4 (segregated)
		"2001:0:4136:e378:8000:63bf:3fff:fdd2", // teredo (segregated)
	))
	s := c.Summary(10)
	if s.Total != 5 {
		t.Errorf("Total = %d", s.Total)
	}
	if s.Native != 3 {
		t.Errorf("Native = %d", s.Native)
	}
	if s.ByKind[addrclass.Kind6to4] != 1 || s.ByKind[addrclass.KindTeredo] != 1 {
		t.Errorf("transition tallies: %v", s.ByKind)
	}
	if s.MACs != 1 {
		t.Errorf("MACs = %d", s.MACs)
	}
	// Native /64s: 2001:db8:1:1::/64 and 2001:db8:1:2::/64.
	if s.Addrs64 != 2 {
		t.Errorf("Addrs64 = %d", s.Addrs64)
	}
	// Transition addresses excluded from temporal stores by default.
	if c.ActiveCount(Addresses, 10) != 3 {
		t.Errorf("ActiveCount = %d, want 3 native", c.ActiveCount(Addresses, 10))
	}
	// Missing day gives zero summary.
	if z := c.Summary(29); z.Total != 0 || z.Addrs64 != 0 {
		t.Errorf("missing day summary = %+v", z)
	}
}

func TestKeepTransitionOption(t *testing.T) {
	c := NewCensus(CensusConfig{StudyDays: 30, KeepTransition: true})
	c.AddDay(day(10, "2002:c000:204::1"))
	if c.ActiveCount(Addresses, 10) != 1 {
		t.Error("KeepTransition should retain 6to4 in temporal store")
	}
}

func TestCensusStability(t *testing.T) {
	c := NewCensus(CensusConfig{StudyDays: 30})
	// stable appears on days 14 and 17; ephemeral only on 17.
	c.AddDay(day(14, "2001:db8::1"))
	c.AddDay(day(17, "2001:db8::1", "2001:db8:0:1:aaaa:bbbb:cccc:dddd"))

	st := c.Stability(Addresses, 17, 3)
	if st.Active != 2 || st.Stable != 1 || st.NotStable != 1 {
		t.Errorf("address stability = %+v", st)
	}
	// Both /64s distinct; only the first is stable.
	st64 := c.Stability(Prefixes64, 17, 3)
	if st64.Active != 2 || st64.Stable != 1 {
		t.Errorf("prefix stability = %+v", st64)
	}
	stable := c.StableAddrs(17, 3)
	if len(stable) != 1 || stable[0] != ipaddr.MustParseAddr("2001:db8::1") {
		t.Errorf("StableAddrs = %v", stable)
	}
}

func TestCensusWeeklyAndEpoch(t *testing.T) {
	c := NewCensus(CensusConfig{StudyDays: 400})
	c.AddDay(day(10, "2001:db8::1"))
	c.AddDay(day(13, "2001:db8::1"))
	c.AddDay(day(375, "2001:db8::1", "2001:db8::2"))

	w := c.WeeklyStability(Addresses, 10, 3)
	if w.Active != 1 || w.Stable != 1 {
		t.Errorf("weekly = %+v", w)
	}
	if got := c.EpochStable(Addresses, 8, 15, 370, 380); got != 1 {
		t.Errorf("EpochStable = %d", got)
	}
	if got := c.EpochStable(Prefixes64, 8, 15, 370, 380); got != 1 {
		t.Errorf("EpochStable /64 = %d", got)
	}
	if got := c.ActiveInRange(Addresses, 370, 380); got != 2 {
		t.Errorf("ActiveInRange = %d", got)
	}
}

func TestCensusOverlapSeries(t *testing.T) {
	c := NewCensus(CensusConfig{StudyDays: 30})
	c.AddDay(day(15, "2001:db8::1"))
	c.AddDay(day(17, "2001:db8::1", "2001:db8::2"))
	series := c.OverlapSeries(Addresses, 17, 7, 7)
	if len(series) != 15 {
		t.Fatalf("series = %v", series)
	}
	if series[7] != 2 {
		t.Errorf("ref overlap = %d", series[7])
	}
	if series[5] != 1 {
		t.Errorf("day-15 overlap = %d", series[5])
	}
}

func TestNativeSetAndPrefixSet(t *testing.T) {
	c := NewCensus(CensusConfig{StudyDays: 30})
	c.AddDay(day(10, "2001:db8::1", "2001:db8::2", "2002:c000:204::1"))
	c.AddDay(day(11, "2001:db8:0:1::1"))
	set := c.NativeSet(10, 11)
	if set.Len() != 3 {
		t.Errorf("NativeSet len = %d (6to4 must be excluded)", set.Len())
	}
	p64 := c.Prefix64Set(10, 11)
	if p64.Len() != 2 {
		t.Errorf("Prefix64Set len = %d", p64.Len())
	}
	// Spatial classes compose with the set.
	dense := set.DenseFixed(spatial.DensityClass{N: 2, P: 112})
	if len(dense.Prefixes) != 1 {
		t.Errorf("dense = %+v", dense)
	}
}

func TestAddrsActiveOn(t *testing.T) {
	c := NewCensus(CensusConfig{StudyDays: 30})
	c.AddDay(day(10, "2001:db8::1", "2001:db8::2"))
	if got := c.AddrsActiveOn(10); len(got) != 2 {
		t.Errorf("AddrsActiveOn = %v", got)
	}
}

func TestLongestStablePrefixes(t *testing.T) {
	c := NewCensus(CensusConfig{StudyDays: 400})
	// A /64 whose hosts rotate privacy IIDs between periods: the /64 is
	// the longest stable prefix.
	c.AddDay(day(10,
		"2001:db8:42:1:1111:2222:3333:4444",
		"2001:db8:42:1:5555:6666:7777:8888",
		"2001:db8:42:1:9999:aaaa:bbbb:cccc",
	))
	c.AddDay(day(370,
		"2001:db8:42:1:dddd:eeee:ffff:1111",
		"2001:db8:42:1:2222:3333:4444:5555",
		"2001:db8:42:1:6666:7777:8888:9999",
	))
	// An unrelated network active only in period B.
	c.AddDay(day(371, "2600:1::1", "2600:2::2"))

	got := c.LongestStablePrefixes(8, 15, 365, 375, 48, 2)
	if len(got) != 1 {
		t.Fatalf("LSP = %+v", got)
	}
	if got[0].Prefix.Bits() < 64 {
		t.Errorf("stable prefix /%d, want >= /64", got[0].Prefix.Bits())
	}
	if !got[0].Prefix.Contains(ipaddr.MustParseAddr("2001:db8:42:1::")) {
		t.Errorf("stable prefix %v misses the stable /64", got[0].Prefix)
	}
	if got[0].Support < 2 {
		t.Errorf("support = %d", got[0].Support)
	}
	// Empty period A.
	if got := c.LongestStablePrefixes(0, 5, 365, 375, 48, 2); got != nil {
		t.Errorf("empty period A should yield nil, got %v", got)
	}
}

func TestCensusEndToEndWithSynth(t *testing.T) {
	// Smoke: ingest a synthetic week and check the headline proportions.
	w := synth.NewWorld(synth.Config{Seed: 7, Scale: 0.01})
	c := NewCensus(CensusConfig{StudyDays: synth.StudyDays})
	ref := synth.EpochMar2015
	for d := ref - 7; d <= ref+7; d++ {
		c.AddDay(w.Day(d))
	}
	st := c.Stability(Addresses, ref, 3)
	if st.Active == 0 {
		t.Fatal("no active addresses")
	}
	frac := float64(st.Stable) / float64(st.Active)
	// Paper: 9.44% of daily addresses are 3d-stable; accept a broad band.
	if frac < 0.01 || frac > 0.6 {
		t.Errorf("3d-stable address fraction = %v", frac)
	}
	st64 := c.Stability(Prefixes64, ref, 3)
	frac64 := float64(st64.Stable) / float64(st64.Active)
	// Paper: 89.8% of daily /64s are 3d-stable; /64s must be far stabler
	// than addresses.
	if frac64 < frac*2 {
		t.Errorf("/64 stability %v not much above address stability %v", frac64, frac)
	}
}

func TestNewCensusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("StudyDays 0 should panic")
		}
	}()
	NewCensus(CensusConfig{})
}

func TestNativeSetDistinctAcrossDays(t *testing.T) {
	// An address active on several days must count once in the spatial
	// population (the paper's populations are distinct addresses).
	c := NewCensus(CensusConfig{StudyDays: 30})
	c.AddDay(day(10, "2001:db8::1", "2001:db8::2"))
	c.AddDay(day(11, "2001:db8::1"))
	c.AddDay(day(12, "2001:db8::1"))
	set := c.NativeSet(10, 11, 12)
	if set.Len() != 2 {
		t.Errorf("Len = %d", set.Len())
	}
	if set.Total() != 2 {
		t.Errorf("Total = %d, want 2 (distinct, not per-day)", set.Total())
	}
	pops := set.AggregatePopulations(112)
	if len(pops) != 1 || pops[0] != 2 {
		t.Errorf("populations = %v, want [2]", pops)
	}
	p64 := c.Prefix64Set(10, 11, 12)
	if p64.Total() != 1 {
		t.Errorf("p64 Total = %d, want 1", p64.Total())
	}
}
