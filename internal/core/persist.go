package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"slices"

	"v6class/internal/addrclass"
	"v6class/internal/ipaddr"
)

// sortedKeys returns a map's integer keys in ascending order.
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// Census persistence: a compact binary snapshot of the ingested state so a
// daily pipeline can extend a census incrementally (ingest today's log,
// save, classify) without replaying the whole study. The format is
// versioned and self-describing enough to reject foreign files.

// censusMagic identifies the legacy v1 stream snapshot format; bump the
// trailing digit on incompatible changes. The current default format is v2
// (persistv2.go), a section-table layout the readers attach without
// decoding; both magics are accepted by ReadCensus/ReadShardedCensus.
const censusMagic = "v6census-state-1"

// WriteTo serializes the census state in the current default format (v2).
// It implements io.WriterTo. The method is shared by Census and
// ShardedCensus (the snapshot format does not record sharding; a snapshot
// written by either engine is readable by ReadCensus and ReadShardedCensus
// alike). A ShardedCensus must not be ingesting concurrently while it is
// written.
func (c *censusState) WriteTo(w io.Writer) (int64, error) {
	return c.writeToV2(w)
}

// WriteToV1 serializes the census state in the legacy v1 stream format, for
// interoperability with pre-v2 readers (and the v1 half of the format
// conversion tooling). New snapshots should use WriteTo.
func (c *censusState) WriteToV1(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(v any) {
		if cw.err == nil {
			cw.err = binary.Write(cw, binary.LittleEndian, v)
		}
	}

	cw.WriteString(censusMagic)
	write(uint32(c.cfg.StudyDays))
	write(boolByte(c.cfg.KeepTransition))

	// Address store: each key's slab row serializes directly, no
	// intermediate bitset.
	write(uint64(c.addrs.Len()))
	c.addrs.Range(func(k ipaddr.Addr, days []uint64) bool {
		buf := k.As16()
		cw.Write(buf[:])
		writeWords(cw, days)
		return cw.err == nil
	})

	// /64 store: keys serialize as their 8-byte network identifiers.
	write(uint64(c.p64s.Len()))
	c.p64s.Range(func(k ipaddr.Prefix, days []uint64) bool {
		write(k.Addr().NetworkID())
		writeWords(cw, days)
		return cw.err == nil
	})

	// Per-day format summaries. Map sections iterate in sorted key order
	// so the same census always serializes to the same bytes — snapshot
	// byte-equality is how callers (and the measurement-loop conformance
	// suite) prove an engine untouched.
	write(uint32(len(c.kinds)))
	for _, day := range sortedKeys(c.kinds) {
		sum := c.kinds[day]
		write(uint32(day))
		write(uint32(sum.Total))
		write(uint8(len(sum.ByKind)))
		kinds := make([]addrclass.Kind, 0, len(sum.ByKind))
		for kind := range sum.ByKind {
			kinds = append(kinds, kind)
		}
		slices.Sort(kinds)
		for _, kind := range kinds {
			write(uint8(kind))
			write(uint32(sum.ByKind[kind]))
		}
	}

	// Per-day EUI-64 MAC sets, through the merged generational view: on a
	// successor census, days not re-ingested this generation read through
	// to the predecessor's sets, so a snapshot is always whole.
	macsView := c.macsView()
	write(uint32(len(macsView)))
	for _, day := range sortedKeys(macsView) {
		macs := macsView[day]
		write(uint32(day))
		write(uint32(len(macs)))
		sorted := make([]addrclass.MAC, 0, len(macs))
		for mac := range macs {
			sorted = append(sorted, mac)
		}
		slices.SortFunc(sorted, func(a, b addrclass.MAC) int { return bytes.Compare(a[:], b[:]) })
		for _, mac := range sorted {
			cw.Write(mac[:])
		}
	}

	if cw.err == nil {
		cw.err = cw.w.(*bufio.Writer).Flush()
	}
	return cw.n, cw.err
}

// ReadCensus deserializes a census snapshot written by WriteTo (either
// format version; the leading magic selects the decoder) into a sequential
// Census.
func ReadCensus(r io.Reader) (*Census, error) {
	br, v2, err := sniffSnapshot(r)
	if err != nil {
		return nil, err
	}
	if v2 {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("core: reading snapshot: %w", err)
		}
		return OpenCensusBytes(data, nil)
	}
	var c *Census
	err = readSnapshot(br, func(cfg CensusConfig) *censusState {
		c = NewCensus(cfg)
		return &c.censusState
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// sniffSnapshot peeks a stream's magic and reports whether it is a v2
// snapshot. Streams too short to hold a magic fall through to the v1 decoder
// for its header error.
func sniffSnapshot(r io.Reader) (*bufio.Reader, bool, error) {
	br := bufio.NewReader(r)
	prefix, err := br.Peek(len(censusMagicV2))
	if err != nil && len(prefix) < len(censusMagicV2) {
		return br, false, nil
	}
	return br, SnapshotVersion(prefix) == 2, nil
}

// ReadShardedCensus deserializes a census snapshot into a concurrent
// ShardedCensus ready for further ingestion (call Freeze before analyses).
func ReadShardedCensus(r io.Reader) (*ShardedCensus, error) {
	return ReadShardedCensusN(r, 0, 0)
}

// ReadShardedCensusN is ReadShardedCensus with explicit shard and worker
// counts (zero selects the GOMAXPROCS-scaled default for either), for
// callers that size the engine rather than the snapshot.
func ReadShardedCensusN(r io.Reader, shards, workers int) (*ShardedCensus, error) {
	br, v2, err := sniffSnapshot(r)
	if err != nil {
		return nil, err
	}
	if v2 {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("core: reading snapshot: %w", err)
		}
		return OpenShardedCensusBytes(data, shards, workers)
	}
	var c *ShardedCensus
	err = readSnapshot(br, func(cfg CensusConfig) *censusState {
		c = NewShardedCensusN(cfg, shards, workers)
		return &c.censusState
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// readSnapshot parses a snapshot, calling build with the decoded config to
// obtain the state to restore into.
func readSnapshot(r io.Reader, build func(CensusConfig) *censusState) error {
	br := bufio.NewReader(r)
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	magic := make([]byte, len(censusMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("core: reading snapshot header: %w", err)
	}
	if string(magic) != censusMagic {
		return fmt.Errorf("core: not a census snapshot (magic %q)", magic)
	}
	var studyDays uint32
	var keep uint8
	if err := read(&studyDays); err != nil {
		return err
	}
	if err := read(&keep); err != nil {
		return err
	}
	if studyDays == 0 || studyDays > 1<<20 {
		return fmt.Errorf("core: implausible study length %d", studyDays)
	}
	c := build(CensusConfig{StudyDays: int(studyDays), KeepTransition: keep != 0})

	// Address store. Restore copies the words into the slab, so one
	// scratch buffer serves every key.
	var nAddrs uint64
	if err := read(&nAddrs); err != nil {
		return err
	}
	var scratch []uint64
	for i := uint64(0); i < nAddrs; i++ {
		var buf [16]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return err
		}
		words, err := readWords(br, scratch)
		if err != nil {
			return err
		}
		scratch = words
		c.addrs.Restore(ipaddr.AddrFrom16(buf), words)
	}

	// /64 store.
	var n64 uint64
	if err := read(&n64); err != nil {
		return err
	}
	for i := uint64(0); i < n64; i++ {
		var net uint64
		if err := read(&net); err != nil {
			return err
		}
		words, err := readWords(br, scratch)
		if err != nil {
			return err
		}
		scratch = words
		p := ipaddr.PrefixFrom(ipaddr.AddrFromSegments([8]uint16{
			uint16(net >> 48), uint16(net >> 32), uint16(net >> 16), uint16(net),
		}), 64)
		c.p64s.Restore(p, words)
	}

	// Per-day format summaries.
	var nDays uint32
	if err := read(&nDays); err != nil {
		return err
	}
	for i := uint32(0); i < nDays; i++ {
		var day, total uint32
		var nKinds uint8
		if err := read(&day); err != nil {
			return err
		}
		if err := read(&total); err != nil {
			return err
		}
		if err := read(&nKinds); err != nil {
			return err
		}
		sum := addrclass.Summary{Total: int(total), ByKind: make(map[addrclass.Kind]int, nKinds)}
		for j := uint8(0); j < nKinds; j++ {
			var kind uint8
			var n uint32
			if err := read(&kind); err != nil {
				return err
			}
			if err := read(&n); err != nil {
				return err
			}
			sum.ByKind[addrclass.Kind(kind)] = int(n)
		}
		c.kinds[int(day)] = sum
	}

	// Per-day EUI-64 MAC sets.
	var nMacDays uint32
	if err := read(&nMacDays); err != nil {
		return err
	}
	for i := uint32(0); i < nMacDays; i++ {
		var day, n uint32
		if err := read(&day); err != nil {
			return err
		}
		if err := read(&n); err != nil {
			return err
		}
		set := make(map[addrclass.MAC]bool, n)
		for j := uint32(0); j < n; j++ {
			var mac addrclass.MAC
			if _, err := io.ReadFull(br, mac[:]); err != nil {
				return err
			}
			set[mac] = true
		}
		c.macs[int(day)] = set
	}
	return nil
}

func writeWords(cw *countingWriter, words []uint64) {
	if cw.err != nil {
		return
	}
	cw.err = binary.Write(cw, binary.LittleEndian, uint16(len(words)))
	if cw.err == nil {
		cw.err = binary.Write(cw, binary.LittleEndian, words)
	}
}

// readWords decodes one length-prefixed word row, reusing scratch's backing
// array when it is large enough.
func readWords(r io.Reader, scratch []uint64) ([]uint64, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<14 {
		return nil, fmt.Errorf("core: implausible bitset size %d", n)
	}
	words := scratch
	if cap(words) < int(n) {
		words = make([]uint64, n)
	}
	words = words[:n]
	if err := binary.Read(r, binary.LittleEndian, words); err != nil {
		return nil, err
	}
	return words, nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// countingWriter tracks bytes written and sticks on the first error.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.err = err
	return n, err
}

func (cw *countingWriter) WriteString(s string) {
	cw.Write([]byte(s))
}
