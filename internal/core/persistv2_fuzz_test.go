package core

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSnapshotV2 drives the v2 header/section-table decoder with arbitrary
// bytes: every input must either parse cleanly — in which case the opened
// census must re-serialize to a snapshot that parses again — or fail with an
// error wrapping ErrCorruptSnapshot. Nothing may panic.
func FuzzSnapshotV2(f *testing.F) {
	valid := v2Bytes(f)
	f.Add(valid)
	f.Add([]byte(censusMagicV2))
	f.Add(append([]byte(censusMagicV2), make([]byte, v2MinFileSize)...))
	truncated := bytes.Clone(valid[:len(valid)-8])
	f.Add(truncated)
	flipped := bytes.Clone(valid)
	flipped[v2DataStart+3] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := parseSnapshotV2(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("parse error %v does not wrap ErrCorruptSnapshot", err)
			}
			return
		}
		if snap.cfg.StudyDays <= 0 {
			t.Fatalf("accepted snapshot with study length %d", snap.cfg.StudyDays)
		}
		c, err := OpenCensusBytes(bytes.Clone(data), nil)
		if err != nil {
			t.Fatalf("parse accepted but open rejected: %v", err)
		}
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			t.Fatalf("re-serializing an opened snapshot: %v", err)
		}
		if _, err := parseSnapshotV2(buf.Bytes()); err != nil {
			t.Fatalf("re-serialized snapshot does not parse: %v", err)
		}
	})
}
