package core

import (
	"bytes"
	"strings"
	"testing"

	"v6class/synth"
)

func TestCensusSnapshotRoundTrip(t *testing.T) {
	w := synth.NewWorld(synth.Config{Seed: 7, Scale: 0.01})
	orig := NewCensus(CensusConfig{StudyDays: synth.StudyDays})
	ref := synth.EpochMar2015
	for d := ref - 7; d <= ref+7; d++ {
		orig.AddDay(w.Day(d))
	}

	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	got, err := ReadCensus(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Every analysis must agree between original and restored census.
	if got.StudyDays() != orig.StudyDays() {
		t.Errorf("StudyDays: %d vs %d", got.StudyDays(), orig.StudyDays())
	}
	for _, pop := range []Population{Addresses, Prefixes64} {
		so, sg := orig.Stability(pop, ref, 3), got.Stability(pop, ref, 3)
		if so != sg {
			t.Errorf("pop %d stability: %+v vs %+v", pop, so, sg)
		}
		if orig.ActiveCount(pop, ref) != got.ActiveCount(pop, ref) {
			t.Errorf("pop %d active counts differ", pop)
		}
		wo, wg := orig.WeeklyStability(pop, ref, 3), got.WeeklyStability(pop, ref, 3)
		if wo != wg {
			t.Errorf("pop %d weekly: %+v vs %+v", pop, wo, wg)
		}
	}
	sumO, sumG := orig.Summary(ref), got.Summary(ref)
	if sumO.Total != sumG.Total || sumO.Native != sumG.Native || sumO.MACs != sumG.MACs {
		t.Errorf("summary: %+v vs %+v", sumO, sumG)
	}
	for k, v := range sumO.ByKind {
		if sumG.ByKind[k] != v {
			t.Errorf("kind %v: %d vs %d", k, sumG.ByKind[k], v)
		}
	}
	// Overlap series (exercises restored per-day counters).
	oo := orig.OverlapSeries(Addresses, ref, 7, 7)
	og := got.OverlapSeries(Addresses, ref, 7, 7)
	for i := range oo {
		if oo[i] != og[i] {
			t.Fatalf("overlap[%d]: %d vs %d", i, oo[i], og[i])
		}
	}
}

func TestCensusSnapshotIncremental(t *testing.T) {
	// Ingest half the window, snapshot, restore, ingest the rest: must
	// equal a single-pass census.
	w := synth.NewWorld(synth.Config{Seed: 7, Scale: 0.01})
	ref := synth.EpochMar2015

	full := NewCensus(CensusConfig{StudyDays: synth.StudyDays})
	for d := ref - 7; d <= ref+7; d++ {
		full.AddDay(w.Day(d))
	}

	part := NewCensus(CensusConfig{StudyDays: synth.StudyDays})
	for d := ref - 7; d <= ref; d++ {
		part.AddDay(w.Day(d))
	}
	var buf bytes.Buffer
	if _, err := part.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := ReadCensus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for d := ref + 1; d <= ref+7; d++ {
		resumed.AddDay(w.Day(d))
	}

	if a, b := full.Stability(Addresses, ref, 3), resumed.Stability(Addresses, ref, 3); a != b {
		t.Errorf("incremental stability: %+v vs %+v", a, b)
	}
	if a, b := full.ActiveCount(Prefixes64, ref+5), resumed.ActiveCount(Prefixes64, ref+5); a != b {
		t.Errorf("incremental /64 count: %d vs %d", a, b)
	}
}

// validSnapshot serializes a small census in the v1 stream format for the
// v1 decoder's corruption tests (persistv2_test.go sweeps the v2 format).
func validSnapshot(t *testing.T) []byte {
	t.Helper()
	c := NewCensus(CensusConfig{StudyDays: 20})
	c.AddDay(day(3,
		"2001:db8:1:1::1",
		"2001:db8:1:1:21e:c2ff:fec0:11db",
		"2001:db8:9:2:3031:f3fd:bbdd:2c2a",
		"2002:c000:204::1",
	))
	c.AddDay(day(7, "2001:db8:1:1::1", "2001:db8:42::7"))
	var buf bytes.Buffer
	if _, err := c.WriteToV1(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// readers holds both snapshot readers; every error path must fail through
// each, since a serving layer may load with either engine.
var readers = []struct {
	name string
	read func(r *strings.Reader) error
}{
	{"sequential", func(r *strings.Reader) error { _, err := ReadCensus(r); return err }},
	{"sharded", func(r *strings.Reader) error { _, err := ReadShardedCensus(r); return err }},
}

// TestReadCensusTruncated sweeps prefixes of a valid snapshot: every
// truncation point must produce an error, never a panic or a silently
// partial census.
func TestReadCensusTruncated(t *testing.T) {
	full := validSnapshot(t)
	cuts := []int{0, 1, len(censusMagic) - 1, len(censusMagic), len(censusMagic) + 2}
	for n := len(censusMagic) + 5; n < len(full)-1; n += 13 {
		cuts = append(cuts, n)
	}
	cuts = append(cuts, len(full)-1)
	for _, rd := range readers {
		for _, n := range cuts {
			if err := rd.read(strings.NewReader(string(full[:n]))); err == nil {
				t.Errorf("%s: reading %d of %d bytes should fail", rd.name, n, len(full))
			}
		}
		// The untruncated snapshot still reads, so the sweep is honest.
		if err := rd.read(strings.NewReader(string(full))); err != nil {
			t.Errorf("%s: full snapshot failed: %v", rd.name, err)
		}
	}
}

// TestReadCensusVersionMismatch rejects snapshots of a different format
// version (the magic's trailing digit) and of foreign kinds entirely.
func TestReadCensusVersionMismatch(t *testing.T) {
	full := validSnapshot(t)
	futureVersion := "v6census-state-3" + string(full[len(censusMagic):])
	wrongKind := "v6report-resultsX" + string(full[len(censusMagic):])
	textFile := "#day 3\n2001:db8::1 5\n"
	for _, rd := range readers {
		for name, in := range map[string]string{
			"future version": futureVersion,
			"wrong kind":     wrongKind,
			"text log":       textFile,
		} {
			err := rd.read(strings.NewReader(in))
			if err == nil {
				t.Errorf("%s: %s should be rejected", rd.name, name)
				continue
			}
			if !strings.Contains(err.Error(), "not a census snapshot") {
				t.Errorf("%s: %s: error should identify the foreign magic, got %v", rd.name, name, err)
			}
		}
	}
}

// TestReadCensusImplausibleSizes rejects headers whose counts would make
// the reader allocate or loop absurdly.
func TestReadCensusImplausibleSizes(t *testing.T) {
	full := validSnapshot(t)
	// The bitset word count lives right after the first 16-byte address
	// key; overwrite it with a huge value.
	corrupt := []byte(string(full))
	off := len(censusMagic) + 4 + 1 + 8 + 16 // header + addr count + first key
	corrupt[off] = 0xff
	corrupt[off+1] = 0xff
	for _, rd := range readers {
		if err := rd.read(strings.NewReader(string(corrupt))); err == nil ||
			!strings.Contains(err.Error(), "implausible") {
			t.Errorf("%s: huge bitset should be rejected as implausible, got %v", rd.name, err)
		}
	}
}

func TestReadCensusRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a census at all, definitely",
		censusMagic, // truncated after magic
	}
	for _, in := range cases {
		if _, err := ReadCensus(strings.NewReader(in)); err == nil {
			t.Errorf("ReadCensus(%q) should fail", in)
		}
	}
	// Corrupt study length.
	bad := censusMagic + "\xff\xff\xff\xff\x00"
	if _, err := ReadCensus(strings.NewReader(bad)); err == nil {
		t.Error("implausible study length should fail")
	}
}
