package core

import (
	"bytes"
	"strings"
	"testing"

	"v6class/internal/synth"
)

func TestCensusSnapshotRoundTrip(t *testing.T) {
	w := synth.NewWorld(synth.Config{Seed: 7, Scale: 0.01})
	orig := NewCensus(CensusConfig{StudyDays: synth.StudyDays})
	ref := synth.EpochMar2015
	for d := ref - 7; d <= ref+7; d++ {
		orig.AddDay(w.Day(d))
	}

	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	got, err := ReadCensus(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Every analysis must agree between original and restored census.
	if got.StudyDays() != orig.StudyDays() {
		t.Errorf("StudyDays: %d vs %d", got.StudyDays(), orig.StudyDays())
	}
	for _, pop := range []Population{Addresses, Prefixes64} {
		so, sg := orig.Stability(pop, ref, 3), got.Stability(pop, ref, 3)
		if so != sg {
			t.Errorf("pop %d stability: %+v vs %+v", pop, so, sg)
		}
		if orig.ActiveCount(pop, ref) != got.ActiveCount(pop, ref) {
			t.Errorf("pop %d active counts differ", pop)
		}
		wo, wg := orig.WeeklyStability(pop, ref, 3), got.WeeklyStability(pop, ref, 3)
		if wo != wg {
			t.Errorf("pop %d weekly: %+v vs %+v", pop, wo, wg)
		}
	}
	sumO, sumG := orig.Summary(ref), got.Summary(ref)
	if sumO.Total != sumG.Total || sumO.Native != sumG.Native || sumO.MACs != sumG.MACs {
		t.Errorf("summary: %+v vs %+v", sumO, sumG)
	}
	for k, v := range sumO.ByKind {
		if sumG.ByKind[k] != v {
			t.Errorf("kind %v: %d vs %d", k, sumG.ByKind[k], v)
		}
	}
	// Overlap series (exercises restored per-day counters).
	oo := orig.OverlapSeries(Addresses, ref, 7, 7)
	og := got.OverlapSeries(Addresses, ref, 7, 7)
	for i := range oo {
		if oo[i] != og[i] {
			t.Fatalf("overlap[%d]: %d vs %d", i, oo[i], og[i])
		}
	}
}

func TestCensusSnapshotIncremental(t *testing.T) {
	// Ingest half the window, snapshot, restore, ingest the rest: must
	// equal a single-pass census.
	w := synth.NewWorld(synth.Config{Seed: 7, Scale: 0.01})
	ref := synth.EpochMar2015

	full := NewCensus(CensusConfig{StudyDays: synth.StudyDays})
	for d := ref - 7; d <= ref+7; d++ {
		full.AddDay(w.Day(d))
	}

	part := NewCensus(CensusConfig{StudyDays: synth.StudyDays})
	for d := ref - 7; d <= ref; d++ {
		part.AddDay(w.Day(d))
	}
	var buf bytes.Buffer
	if _, err := part.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := ReadCensus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for d := ref + 1; d <= ref+7; d++ {
		resumed.AddDay(w.Day(d))
	}

	if a, b := full.Stability(Addresses, ref, 3), resumed.Stability(Addresses, ref, 3); a != b {
		t.Errorf("incremental stability: %+v vs %+v", a, b)
	}
	if a, b := full.ActiveCount(Prefixes64, ref+5), resumed.ActiveCount(Prefixes64, ref+5); a != b {
		t.Errorf("incremental /64 count: %d vs %d", a, b)
	}
}

func TestReadCensusRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a census at all, definitely",
		censusMagic, // truncated after magic
	}
	for _, in := range cases {
		if _, err := ReadCensus(strings.NewReader(in)); err == nil {
			t.Errorf("ReadCensus(%q) should fail", in)
		}
	}
	// Corrupt study length.
	bad := censusMagic + "\xff\xff\xff\xff\x00"
	if _, err := ReadCensus(strings.NewReader(bad)); err == nil {
		t.Error("implausible study length should fail")
	}
}
