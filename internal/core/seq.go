package core

import (
	"fmt"
	"iter"

	"v6class/internal/ipaddr"
	"v6class/internal/temporal"
)

// Streaming forms of the bulk enumerations, shared by both engines through
// the keyStore interface. Each returns an iter.Seq backed directly by the
// slab row sweeps of internal/temporal: enumeration allocates nothing per
// element, and breaking out of the range stops the sweep at the current
// row. On an unfrozen ShardedCensus the underlying store panics (see
// temporal/seq.go); the module-root façade gates these behind its freeze
// lifecycle and surfaces typed errors instead.

// rangeDays expands an inclusive day range into the day list the
// day-mask sweeps take.
func rangeDays(from, to int) []int {
	if to < from {
		return nil
	}
	out := make([]int, 0, to-from+1)
	for d := from; d <= to; d++ {
		out = append(out, d)
	}
	return out
}

// toDays converts façade day ints to temporal days.
func toDays(days []int) []temporal.Day {
	out := make([]temporal.Day, len(days))
	for i, d := range days {
		out[i] = temporal.Day(d)
	}
	return out
}

// StableAddrsSeq yields the nd-stable addresses for reference day ref under
// opts — the streaming form of StableAddrs with explicit options.
func (c *censusState) StableAddrsSeq(ref, n int, opts temporal.Options) iter.Seq[ipaddr.Addr] {
	return c.addrs.StableKeysSeq(temporal.Day(ref), n, opts)
}

// AddrsActiveAnySeq yields every native address active on at least one of
// the given days, each exactly once, in row (insertion) order.
func (c *censusState) AddrsActiveAnySeq(days ...int) iter.Seq[ipaddr.Addr] {
	return c.addrs.KeysActiveAnySeq(toDays(days))
}

// Prefix64sActiveAnySeq yields every /64 prefix active on at least one of
// the given days, each exactly once, in row (insertion) order.
func (c *censusState) Prefix64sActiveAnySeq(days ...int) iter.Seq[ipaddr.Prefix] {
	return c.p64s.KeysActiveAnySeq(toDays(days))
}

// AddrsActiveAnySeqs splits AddrsActiveAnySeq into up to n independent
// row-range streams for bounded fan-out consumers: together the streams
// yield exactly the single sweep's addresses, and each may be consumed on
// its own goroutine (post-freeze on the sharded engine).
func (c *censusState) AddrsActiveAnySeqs(n int, days ...int) []iter.Seq[ipaddr.Addr] {
	return c.addrs.KeysActiveAnySeqs(n, toDays(days))
}

// Prefix64sActiveAnySeqs is AddrsActiveAnySeqs for the /64 population.
func (c *censusState) Prefix64sActiveAnySeqs(n int, days ...int) []iter.Seq[ipaddr.Prefix] {
	return c.p64s.KeysActiveAnySeqs(n, toDays(days))
}

// AddrsSeq yields every address ever observed, in row (insertion) order.
func (c *censusState) AddrsSeq() iter.Seq[ipaddr.Addr] {
	return c.addrs.KeysSeq()
}

// Prefix64sSeq yields every /64 prefix ever observed, in row (insertion)
// order.
func (c *censusState) Prefix64sSeq() iter.Seq[ipaddr.Prefix] {
	return c.p64s.KeysSeq()
}

// AddrLifetimesSeq yields every observed address with its activity profile.
func (c *censusState) AddrLifetimesSeq() iter.Seq2[ipaddr.Addr, temporal.Activity] {
	return c.addrs.ActivitySeq()
}

// Prefix64LifetimesSeq yields every observed /64 with its activity profile.
func (c *censusState) Prefix64LifetimesSeq() iter.Seq2[ipaddr.Prefix, temporal.Activity] {
	return c.p64s.ActivitySeq()
}

// LifetimeStats computes lifetime statistics of the selected population
// over the inclusive day range [from, to].
func (c *censusState) LifetimeStats(pop Population, from, to int) temporal.LifetimeStats {
	switch pop {
	case Addresses:
		return c.addrs.Lifetimes(temporal.Day(from), temporal.Day(to))
	case Prefixes64:
		return c.p64s.Lifetimes(temporal.Day(from), temporal.Day(to))
	}
	panic(fmt.Sprintf("core: unknown population %d", pop))
}

// ReturnProbability estimates, for each gap g in [1, maxGap], the
// probability that a key of the population active on some day of [from,
// to-g] is active again exactly g days later.
func (c *censusState) ReturnProbability(pop Population, from, to, maxGap int) []float64 {
	switch pop {
	case Addresses:
		return c.addrs.ReturnProbability(temporal.Day(from), temporal.Day(to), maxGap)
	case Prefixes64:
		return c.p64s.ReturnProbability(temporal.Day(from), temporal.Day(to), maxGap)
	}
	panic(fmt.Sprintf("core: unknown population %d", pop))
}
