package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"slices"
	"unsafe"

	"v6class/internal/addrclass"
	"v6class/internal/ipaddr"
	"v6class/internal/temporal"
	"v6class/internal/uint128"
)

// Snapshot format v2: a section-table layout whose payload sections are the
// engine's in-memory representations, so opening a snapshot is one read (or
// mmap) plus pointer fixup instead of a per-key decode loop.
//
//	[  0, 16)  magic "v6census-state-2"
//	[ 16, 20)  uint32 flags           bit 0 = KeepTransition; others reserved 0
//	[ 20, 24)  uint32 studyDays
//	[ 24, 28)  uint32 sectionCount    always 6
//	[ 28, 32)  uint32 reserved        0
//	[ 32,176)  section table, 6 x 24 bytes:
//	             uint32 kind, uint32 count, uint64 offset, uint64 length
//	sections   8-byte-aligned, tightly packed in table order
//	trailer    6 x uint32 per-section CRC-32C, then uint32 CRC-32C of [0,176)
//
// All integers are little-endian. Section kinds, in their fixed file order:
//
//	1 addrKeys  count addresses, 16 bytes each: uint64 Hi, uint64 Lo
//	2 addrRows  count day-word rows, stride = ceil(studyDays/64) words each
//	3 p64Keys   count /64s, 8 bytes each: uint64 network identifier
//	4 p64Rows   count day-word rows, same stride
//	5 kinds     count per-day format summaries, v1 body layout
//	6 macs      count per-day EUI-64 MAC sets, v1 body layout
//
// The key and row sections are exactly what temporal.AttachStore adopts: on a
// little-endian host the openers alias the row sections in place (zero-copy;
// under a MAP_PRIVATE mapping post-open writes dirty private pages, never the
// file), and on big-endian or misaligned buffers they fall back to a linear
// copy-decode. Sections are tightly packed (each offset is the 8-aligned end
// of its predecessor) and the file length is exactly trailer end, so any
// truncation, hole, or overlap is detected structurally before checksums run.

// censusMagicV2 identifies the v2 section-table snapshot format.
const censusMagicV2 = "v6census-state-2"

const (
	v2HeaderSize    = 32
	v2TableEntry    = 24
	v2SectionCount  = 6
	v2DataStart     = v2HeaderSize + v2SectionCount*v2TableEntry // 176
	v2TrailerSize   = (v2SectionCount + 1) * 4                   // 28
	v2MinFileSize   = v2DataStart + v2TrailerSize
	v2FlagKeepTrans = 1 << 0
)

// Section kinds, in their required file order.
const (
	secAddrKeys = 1 + iota
	secAddrRows
	secP64Keys
	secP64Rows
	secKinds
	secMACs
)

// ErrCorruptSnapshot is wrapped by every structural, checksum, or bounds
// failure while parsing a v2 snapshot; match with errors.Is.
var ErrCorruptSnapshot = errors.New("core: corrupt census snapshot")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var le = binary.LittleEndian

// SnapshotVersion inspects the leading bytes of a snapshot (at least 16) and
// reports its format version: 1 or 2, or 0 when the prefix is not a census
// snapshot.
func SnapshotVersion(prefix []byte) int {
	if len(prefix) < len(censusMagic) {
		return 0
	}
	switch string(prefix[:len(censusMagic)]) {
	case censusMagic:
		return 1
	case censusMagicV2:
		return 2
	}
	return 0
}

// corruptf wraps ErrCorruptSnapshot with detail.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorruptSnapshot, fmt.Sprintf(format, args...))
}

func align8(n uint64) uint64 { return (n + 7) &^ 7 }

// hostLE reports whether the host is little-endian, deciding whether row
// sections may be aliased as []uint64 without a byte swap.
var hostLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// wordsView returns b (whose length must be a multiple of 8) as a []uint64 of
// little-endian words: a zero-copy alias when the host representation matches
// (little-endian and 8-aligned), a copy-decode otherwise. zeroCopy reports
// which, so callers know whether the result pins b's backing memory.
func wordsView(b []byte) (words []uint64, zeroCopy bool) {
	n := len(b) / 8
	if n == 0 {
		return nil, false
	}
	if hostLE && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n), true
	}
	words = make([]uint64, n)
	for i := range words {
		words[i] = le.Uint64(b[i*8:])
	}
	return words, false
}

// writeToV2 serializes the census state in the v2 section-table format. The
// writer streams front to back — section lengths are computable up front and
// checksums accumulate as payload bytes pass through — so it needs no seek
// and works over any io.Writer (files, HTTP responses, pipes).
func (c *censusState) writeToV2(w io.Writer) (int64, error) {
	nAddrs := uint64(c.addrs.Len())
	n64 := uint64(c.p64s.Len())
	stride := uint64((c.cfg.StudyDays + 63) / 64)
	kindsBuf := encodeKindsV2(c.kinds)
	macsView := c.macsView()
	macsBuf := encodeMACsV2(macsView)

	type section struct {
		kind, count uint32
		off, length uint64
	}
	secs := [v2SectionCount]section{
		{kind: secAddrKeys, count: uint32(nAddrs), length: nAddrs * 16},
		{kind: secAddrRows, count: uint32(nAddrs), length: nAddrs * stride * 8},
		{kind: secP64Keys, count: uint32(n64), length: n64 * 8},
		{kind: secP64Rows, count: uint32(n64), length: n64 * stride * 8},
		{kind: secKinds, count: uint32(len(c.kinds)), length: uint64(len(kindsBuf))},
		{kind: secMACs, count: uint32(len(macsView)), length: uint64(len(macsBuf))},
	}
	off := uint64(v2DataStart)
	for i := range secs {
		secs[i].off = off
		off = align8(off + secs[i].length)
	}

	hdr := make([]byte, v2DataStart)
	copy(hdr, censusMagicV2)
	var flags uint32
	if c.cfg.KeepTransition {
		flags |= v2FlagKeepTrans
	}
	le.PutUint32(hdr[16:], flags)
	le.PutUint32(hdr[20:], uint32(c.cfg.StudyDays))
	le.PutUint32(hdr[24:], v2SectionCount)
	for i, s := range secs {
		e := hdr[v2HeaderSize+i*v2TableEntry:]
		le.PutUint32(e[0:], s.kind)
		le.PutUint32(e[4:], s.count)
		le.PutUint64(e[8:], s.off)
		le.PutUint64(e[16:], s.length)
	}

	cw := &countingWriter{w: bufio.NewWriterSize(w, 1<<16)}
	cw.Write(hdr)
	var crcs [v2SectionCount + 1]uint32
	crcs[v2SectionCount] = crc32.Checksum(hdr, castagnoli)

	sw := sectionWriterV2{cw: cw}
	// Address keys, then address rows: two passes over the store, in the
	// same Range order, so row i's words belong to key i.
	sw.begin()
	c.addrs.Range(func(k ipaddr.Addr, _ []uint64) bool {
		u := k.Uint128()
		sw.putUint64(u.Hi)
		sw.putUint64(u.Lo)
		return cw.err == nil
	})
	crcs[0] = sw.end()
	sw.begin()
	c.addrs.Range(func(_ ipaddr.Addr, days []uint64) bool {
		sw.putWords(days)
		return cw.err == nil
	})
	crcs[1] = sw.end()

	// /64 keys and rows.
	sw.begin()
	c.p64s.Range(func(k ipaddr.Prefix, _ []uint64) bool {
		sw.putUint64(k.Addr().NetworkID())
		return cw.err == nil
	})
	crcs[2] = sw.end()
	sw.begin()
	c.p64s.Range(func(_ ipaddr.Prefix, days []uint64) bool {
		sw.putWords(days)
		return cw.err == nil
	})
	crcs[3] = sw.end()

	sw.begin()
	sw.putBytes(kindsBuf)
	crcs[4] = sw.end()
	sw.begin()
	sw.putBytes(macsBuf)
	crcs[5] = sw.end()

	trailer := make([]byte, v2TrailerSize)
	for i, crc := range crcs {
		le.PutUint32(trailer[i*4:], crc)
	}
	cw.Write(trailer)
	if cw.err == nil {
		cw.err = cw.w.(*bufio.Writer).Flush()
	}
	return cw.n, cw.err
}

// sectionWriterV2 streams one section: payload bytes accumulate a CRC-32C and
// the section pads with zeros to the 8-byte boundary on end.
type sectionWriterV2 struct {
	cw  *countingWriter
	buf []byte
	crc uint32
	n   uint64
}

func (s *sectionWriterV2) begin() {
	s.crc, s.n = 0, 0
	if s.buf == nil {
		s.buf = make([]byte, 0, 1<<15)
	}
}

func (s *sectionWriterV2) flush() {
	if len(s.buf) == 0 {
		return
	}
	s.crc = crc32.Update(s.crc, castagnoli, s.buf)
	s.cw.Write(s.buf)
	s.n += uint64(len(s.buf))
	s.buf = s.buf[:0]
}

func (s *sectionWriterV2) putUint64(v uint64) {
	if len(s.buf)+8 > cap(s.buf) {
		s.flush()
	}
	s.buf = le.AppendUint64(s.buf, v)
}

func (s *sectionWriterV2) putWords(words []uint64) {
	for _, w := range words {
		s.putUint64(w)
	}
}

func (s *sectionWriterV2) putBytes(p []byte) {
	s.flush()
	s.crc = crc32.Update(s.crc, castagnoli, p)
	s.cw.Write(p)
	s.n += uint64(len(p))
}

// end flushes, pads to 8 bytes, and returns the section's CRC (over payload
// only, not padding).
func (s *sectionWriterV2) end() uint32 {
	s.flush()
	if pad := int(align8(s.n) - s.n); pad > 0 {
		var z [8]byte
		s.cw.Write(z[:pad])
	}
	return s.crc
}

// encodeKindsV2 serializes the per-day format summaries in the v1 body
// layout (sorted day order, sorted kinds within a day — snapshot bytes stay
// a deterministic function of state).
func encodeKindsV2(kinds map[int]addrclass.Summary) []byte {
	var b []byte
	for _, day := range sortedKeys(kinds) {
		sum := kinds[day]
		b = le.AppendUint32(b, uint32(day))
		b = le.AppendUint32(b, uint32(sum.Total))
		b = append(b, uint8(len(sum.ByKind)))
		ks := make([]addrclass.Kind, 0, len(sum.ByKind))
		for kind := range sum.ByKind {
			ks = append(ks, kind)
		}
		slices.Sort(ks)
		for _, kind := range ks {
			b = append(b, uint8(kind))
			b = le.AppendUint32(b, uint32(sum.ByKind[kind]))
		}
	}
	return b
}

// encodeMACsV2 serializes the per-day EUI-64 MAC sets in the v1 body layout.
func encodeMACsV2(view map[int]map[addrclass.MAC]bool) []byte {
	var b []byte
	for _, day := range sortedKeys(view) {
		macs := view[day]
		b = le.AppendUint32(b, uint32(day))
		b = le.AppendUint32(b, uint32(len(macs)))
		sorted := make([]addrclass.MAC, 0, len(macs))
		for mac := range macs {
			sorted = append(sorted, mac)
		}
		slices.SortFunc(sorted, func(x, y addrclass.MAC) int { return bytes.Compare(x[:], y[:]) })
		for _, mac := range sorted {
			b = append(b, mac[:]...)
		}
	}
	return b
}

// snapshotV2 is a parsed (but not yet attached) v2 snapshot. The key and row
// word slices may alias the input buffer (see wordsView).
type snapshotV2 struct {
	cfg      CensusConfig
	addrKeys []uint64 // count x (Hi, Lo)
	addrRows []uint64
	p64Keys  []uint64 // count x network identifier
	p64Rows  []uint64
	kinds    map[int]addrclass.Summary
	macs     map[int]map[addrclass.MAC]bool
}

// parseSnapshotV2 validates and decodes a complete v2 snapshot image. Every
// failure wraps ErrCorruptSnapshot; no input can make it panic (the fuzz
// target in persistv2_fuzz_test.go holds it to that).
func parseSnapshotV2(data []byte) (*snapshotV2, error) {
	if len(data) < v2MinFileSize {
		return nil, corruptf("truncated header: %d bytes", len(data))
	}
	if string(data[:len(censusMagicV2)]) != censusMagicV2 {
		return nil, corruptf("bad magic %q", data[:len(censusMagicV2)])
	}
	flags := le.Uint32(data[16:])
	if flags&^uint32(v2FlagKeepTrans) != 0 {
		return nil, corruptf("unknown flags %#x", flags)
	}
	studyDays := le.Uint32(data[20:])
	if studyDays == 0 || studyDays > 1<<20 {
		return nil, corruptf("implausible study length %d", studyDays)
	}
	if n := le.Uint32(data[24:]); n != v2SectionCount {
		return nil, corruptf("section count %d, want %d", n, v2SectionCount)
	}
	if r := le.Uint32(data[28:]); r != 0 {
		return nil, corruptf("nonzero reserved header field %#x", r)
	}

	type section struct {
		count       uint32
		off, length uint64
	}
	var secs [v2SectionCount]section
	cursor := uint64(v2DataStart)
	for i := range secs {
		e := data[v2HeaderSize+i*v2TableEntry:]
		kind := le.Uint32(e[0:])
		if kind != uint32(i+1) {
			return nil, corruptf("section %d has kind %d, want %d", i, kind, i+1)
		}
		secs[i] = section{count: le.Uint32(e[4:]), off: le.Uint64(e[8:]), length: le.Uint64(e[16:])}
		if secs[i].off%8 != 0 {
			return nil, corruptf("misaligned section %d offset %d", i, secs[i].off)
		}
		if secs[i].off != cursor {
			return nil, corruptf("section %d offset %d, want %d", i, secs[i].off, cursor)
		}
		if secs[i].length > uint64(len(data)) || secs[i].off+secs[i].length > uint64(len(data)) {
			return nil, corruptf("section %d [%d,+%d) exceeds snapshot size %d",
				i, secs[i].off, secs[i].length, len(data))
		}
		cursor = align8(secs[i].off + secs[i].length)
	}
	if uint64(len(data)) != cursor+v2TrailerSize {
		return nil, corruptf("snapshot size %d, want %d", len(data), cursor+v2TrailerSize)
	}

	trailer := data[cursor:]
	if got, want := crc32.Checksum(data[:v2DataStart], castagnoli), le.Uint32(trailer[v2SectionCount*4:]); got != want {
		return nil, corruptf("header checksum %#x, want %#x", got, want)
	}
	body := make([][]byte, v2SectionCount)
	for i, s := range secs {
		body[i] = data[s.off : s.off+s.length]
		if got, want := crc32.Checksum(body[i], castagnoli), le.Uint32(trailer[i*4:]); got != want {
			return nil, corruptf("section %d checksum %#x, want %#x", i, got, want)
		}
	}

	stride := uint64((studyDays + 63) / 64)
	nAddrs := uint64(secs[0].count)
	if secs[0].length != nAddrs*16 {
		return nil, corruptf("address key section length %d for %d keys", secs[0].length, nAddrs)
	}
	if secs[1].count != secs[0].count || secs[1].length != nAddrs*stride*8 {
		return nil, corruptf("address row section %d x %d does not match %d keys at stride %d",
			secs[1].count, secs[1].length, nAddrs, stride)
	}
	n64 := uint64(secs[2].count)
	if secs[2].length != n64*8 {
		return nil, corruptf("/64 key section length %d for %d keys", secs[2].length, n64)
	}
	if secs[3].count != secs[2].count || secs[3].length != n64*stride*8 {
		return nil, corruptf("/64 row section %d x %d does not match %d keys at stride %d",
			secs[3].count, secs[3].length, n64, stride)
	}

	kinds, err := decodeKindsV2(body[4], secs[4].count)
	if err != nil {
		return nil, err
	}
	macs, err := decodeMACsV2(body[5], secs[5].count)
	if err != nil {
		return nil, err
	}

	snap := &snapshotV2{
		cfg:   CensusConfig{StudyDays: int(studyDays), KeepTransition: flags&v2FlagKeepTrans != 0},
		kinds: kinds,
		macs:  macs,
	}
	snap.addrKeys, _ = wordsView(body[0])
	snap.addrRows, _ = wordsView(body[1])
	snap.p64Keys, _ = wordsView(body[2])
	snap.p64Rows, _ = wordsView(body[3])
	return snap, nil
}

// decodeKindsV2 decodes the per-day format summary section, requiring exact
// consumption of the section bytes.
func decodeKindsV2(sec []byte, count uint32) (map[int]addrclass.Summary, error) {
	kinds := make(map[int]addrclass.Summary, min(int(count), len(sec)/9+1))
	cur := 0
	for i := uint32(0); i < count; i++ {
		if cur+9 > len(sec) {
			return nil, corruptf("kind summary %d truncated", i)
		}
		day := le.Uint32(sec[cur:])
		total := le.Uint32(sec[cur+4:])
		nKinds := int(sec[cur+8])
		cur += 9
		if cur+nKinds*5 > len(sec) {
			return nil, corruptf("kind summary %d truncated", i)
		}
		sum := addrclass.Summary{Total: int(total), ByKind: make(map[addrclass.Kind]int, nKinds)}
		for j := 0; j < nKinds; j++ {
			sum.ByKind[addrclass.Kind(sec[cur])] = int(le.Uint32(sec[cur+1:]))
			cur += 5
		}
		kinds[int(day)] = sum
	}
	if cur != len(sec) {
		return nil, corruptf("%d trailing bytes after kind summaries", len(sec)-cur)
	}
	return kinds, nil
}

// decodeMACsV2 decodes the per-day MAC set section, requiring exact
// consumption of the section bytes.
func decodeMACsV2(sec []byte, count uint32) (map[int]map[addrclass.MAC]bool, error) {
	macs := make(map[int]map[addrclass.MAC]bool, min(int(count), len(sec)/8+1))
	cur := 0
	for i := uint32(0); i < count; i++ {
		if cur+8 > len(sec) {
			return nil, corruptf("MAC set %d truncated", i)
		}
		day := le.Uint32(sec[cur:])
		n := int(le.Uint32(sec[cur+4:]))
		cur += 8
		if n > (len(sec)-cur)/6 {
			return nil, corruptf("MAC set %d truncated", i)
		}
		set := make(map[addrclass.MAC]bool, n)
		for j := 0; j < n; j++ {
			var mac addrclass.MAC
			copy(mac[:], sec[cur:cur+6])
			set[mac] = true
			cur += 6
		}
		macs[int(day)] = set
	}
	if cur != len(sec) {
		return nil, corruptf("%d trailing bytes after MAC sets", len(sec)-cur)
	}
	return macs, nil
}

// addrList rebuilds the address key table from its (Hi, Lo) word pairs.
func addrList(words []uint64) []ipaddr.Addr {
	out := make([]ipaddr.Addr, len(words)/2)
	for i := range out {
		out[i] = ipaddr.AddrFrom128(uint128.New(words[2*i], words[2*i+1]))
	}
	return out
}

// p64List rebuilds the /64 key table from its network-identifier words.
func p64List(words []uint64) []ipaddr.Prefix {
	out := make([]ipaddr.Prefix, len(words))
	for i, net := range words {
		out[i] = ipaddr.PrefixFrom(ipaddr.AddrFrom128(uint128.New(net, 0)), 64)
	}
	return out
}

// OpenCensusBytes opens a v2 snapshot image as a sequential Census, adopting
// the row sections in place where possible (little-endian host, 8-aligned
// buffer). data must stay valid and writable for the census's lifetime when
// adopted — retain, when non-nil, is pinned by the stores for exactly that
// long (a file-mapping holder goes here). The census is immediately queryable
// and still ingestible (the daily pipeline's extend-save-classify loop).
func OpenCensusBytes(data []byte, retain any) (*Census, error) {
	snap, err := parseSnapshotV2(data)
	if err != nil {
		return nil, err
	}
	return &Census{censusState{
		cfg:   snap.cfg,
		addrs: temporal.AttachStore(snap.cfg.StudyDays, addrList(snap.addrKeys), snap.addrRows, retain),
		p64s:  temporal.AttachStore(snap.cfg.StudyDays, p64List(snap.p64Keys), snap.p64Rows, retain),
		kinds: snap.kinds,
		macs:  snap.macs,
	}}, nil
}

// OpenShardedCensusBytes opens a v2 snapshot image as a concurrent
// ShardedCensus, scattering rows to their hash shards in two linear passes
// (the rows are copied into the shards; data need not outlive the call).
// Zero shards or workers selects the GOMAXPROCS-scaled defaults.
func OpenShardedCensusBytes(data []byte, shards, workers int) (*ShardedCensus, error) {
	snap, err := parseSnapshotV2(data)
	if err != nil {
		return nil, err
	}
	if shards <= 0 {
		shards = temporal.DefaultShardCount()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	saddrs := temporal.AttachShardedStore(snap.cfg.StudyDays, shards, hashAddr, addrList(snap.addrKeys), snap.addrRows)
	sp64s := temporal.AttachShardedStore(snap.cfg.StudyDays, shards, hashP64, p64List(snap.p64Keys), snap.p64Rows)
	return &ShardedCensus{
		censusState: censusState{
			cfg:   snap.cfg,
			addrs: saddrs,
			p64s:  sp64s,
			kinds: snap.kinds,
			macs:  snap.macs,
		},
		saddrs:  saddrs,
		sp64s:   sp64s,
		workers: workers,
	}, nil
}
