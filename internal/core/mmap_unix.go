//go:build unix

package core

import (
	"os"
	"runtime"
	"syscall"
)

// MapFile maps f read-write-private: reads hit the page cache, writes are
// copy-on-write into anonymous pages and never reach the file, which is
// exactly the contract temporal.AttachStore needs for adopted slabs. The
// returned holder keeps the mapping alive — pass it to OpenCensusBytes as
// retain (a finalizer unmaps when the census is collected). ok is false when
// the platform or file refuses the mapping (empty files included); callers
// then fall back to reading the whole file.
func MapFile(f *os.File) (data []byte, holder any, ok bool) {
	fi, err := f.Stat()
	if err != nil || fi.Size() <= 0 || fi.Size() != int64(int(fi.Size())) {
		return nil, nil, false
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(fi.Size()), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, false
	}
	h := &mmapHolder{data: b}
	runtime.SetFinalizer(h, (*mmapHolder).unmap)
	return b, h, true
}

// mmapHolder pins a mapping until the owning census is garbage collected.
type mmapHolder struct {
	data []byte
}

func (h *mmapHolder) unmap() {
	if h.data != nil {
		_ = syscall.Munmap(h.data)
		h.data = nil
	}
}
