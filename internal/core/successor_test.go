package core

import (
	"bytes"
	"slices"
	"testing"

	"v6class/internal/ipaddr"
	"v6class/synth"
)

// The generational equivalence suite: a census grown through a frozen
// parent plus an ingesting successor must answer the full Analyzer surface
// identically to one census fed every day directly, through both engines —
// and the parent generation must keep answering as if the successor never
// existed.

func TestSuccessorCensusEquivalence(t *testing.T) {
	cfg := synth.Config{Seed: 11, Scale: 0.01, StudyDays: 30}
	const days, split = 25, 17
	logs := worldLogs(t, cfg, days)
	ccfg := CensusConfig{StudyDays: 30}

	ref := NewCensus(ccfg)
	for _, l := range logs {
		ref.AddDay(l)
	}
	refParent := NewCensus(ccfg)
	for _, l := range logs[:split] {
		refParent.AddDay(l)
	}

	t.Run("sequential", func(t *testing.T) {
		parent := NewCensus(ccfg)
		for _, l := range logs[:split] {
			parent.AddDay(l)
		}
		parent.Freeze()
		succ := parent.Successor()
		for _, l := range logs[split:] {
			succ.AddDay(l)
		}
		succ.Freeze()
		assertCensusesAgree(t, ref, succ, days)
		// The frozen parent generation is untouched by the successor.
		assertCensusesAgree(t, refParent, parent, split)
		assertChangedDelta(t, parent, succ)
	})

	t.Run("sharded", func(t *testing.T) {
		parent := NewShardedCensusN(ccfg, 8, 3)
		parent.AddDays(logs[:split])
		parent.Freeze()
		succ := parent.Successor()
		succ.AddDays(logs[split:])
		succ.Freeze()
		assertCensusesAgree(t, ref, succ, days)
		assertCensusesAgree(t, refParent, parent, split)
		assertChangedDelta(t, parent, succ)
	})

	t.Run("sharded-successor-of-sequential-snapshot", func(t *testing.T) {
		// The serve reload path: a snapshot written by one engine is
		// restored and extended generationally by the other.
		parent := NewCensus(ccfg)
		for _, l := range logs[:split] {
			parent.AddDay(l)
		}
		var buf bytes.Buffer
		if _, err := parent.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		restored, err := ReadShardedCensus(&buf)
		if err != nil {
			t.Fatal(err)
		}
		restored.Freeze()
		succ := restored.Successor()
		succ.AddDays(logs[split:])
		succ.Freeze()
		assertCensusesAgree(t, ref, succ, days)
	})
}

// assertChangedDelta holds ChangedAddrs to its contract against the two
// generations' ground truth: it must visit exactly the addresses whose day
// words differ between parent and successor, with the parent's words as
// prev and the successor's as cur.
func assertChangedDelta(t *testing.T, parent, succ Analyzer) {
	t.Helper()
	collect := func(a Analyzer) map[ipaddr.Addr][]uint64 {
		// Range is not on Analyzer; rebuild rows from per-day activity.
		out := make(map[ipaddr.Addr][]uint64)
		days := a.StudyDays()
		stride := (days + 63) / 64
		for addr := range a.AddrsSeq() {
			w := make([]uint64, stride)
			for _, d := range a.LookupAddr(addr).Report.Days {
				w[int(d)/64] |= 1 << (uint(d) % 64)
			}
			out[addr] = w
		}
		return out
	}
	parentRows, succRows := collect(parent), collect(succ)

	visited := make(map[ipaddr.Addr]bool)
	succ.ChangedAddrs(func(a ipaddr.Addr, prev, cur []uint64) bool {
		if visited[a] {
			t.Fatalf("ChangedAddrs visited %v twice", a)
		}
		visited[a] = true
		pw := parentRows[a] // nil (all-zero) for addresses new this generation
		for i := range prev {
			var want uint64
			if pw != nil {
				want = pw[i]
			}
			if prev[i] != want {
				t.Fatalf("addr %v prev word %d = %x, want parent's %x", a, i, prev[i], want)
			}
		}
		if !slices.Equal(cur, succRows[a]) {
			t.Fatalf("addr %v cur differs from successor's row", a)
		}
		return true
	})
	for a, sw := range succRows {
		pw, had := parentRows[a]
		changed := !had || !slices.Equal(pw, sw)
		if changed != visited[a] {
			t.Fatalf("addr %v: changed=%v, visited=%v", a, changed, visited[a])
		}
	}
	if len(visited) == 0 {
		t.Fatal("ChangedAddrs visited nothing; the synthetic world should add addresses every day")
	}

	// A first-generation census visits nothing.
	parent.ChangedAddrs(func(ipaddr.Addr, []uint64, []uint64) bool {
		t.Fatal("ChangedAddrs on a first-generation census visited a key")
		return false
	})
}

// TestSuccessorSnapshotRoundTrip writes a frozen successor census and reads
// it back: the snapshot must carry the merged generational state — in
// particular the MAC sets of days only the parent generation ingested.
func TestSuccessorSnapshotRoundTrip(t *testing.T) {
	cfg := synth.Config{Seed: 12, Scale: 0.01, StudyDays: 24}
	const days, split = 20, 14
	logs := worldLogs(t, cfg, days)
	ccfg := CensusConfig{StudyDays: 24}

	parent := NewCensus(ccfg)
	for _, l := range logs[:split] {
		parent.AddDay(l)
	}
	succ := parent.Successor()
	for _, l := range logs[split:] {
		succ.AddDay(l)
	}
	succ.Freeze()

	var buf bytes.Buffer
	if _, err := succ.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCensus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	ref := NewCensus(ccfg)
	for _, l := range logs {
		ref.AddDay(l)
	}
	assertCensusesAgree(t, ref, back, days)
}

// TestSuccessorGuards covers the lifecycle panics at the census level.
func TestSuccessorCensusGuards(t *testing.T) {
	sh := NewShardedCensus(CensusConfig{StudyDays: 5})
	defer func() {
		if recover() == nil {
			t.Fatal("Successor of an unfrozen ShardedCensus did not panic")
		}
	}()
	sh.Successor()
}
