package core

import (
	"runtime"
	"sync"

	"v6class/internal/addrclass"
	"v6class/internal/cdnlog"
	"v6class/internal/ipaddr"
	"v6class/internal/netmodel"
	"v6class/internal/temporal"
)

// The sharded ingestion pipeline: daily logs are split into record chunks,
// a pool of classify workers formats-classifies each chunk (Table 1
// bookkeeping stays worker-local), and surviving observations are routed by
// key hash over per-shard channels to applier goroutines, each of which owns
// its temporal shard for the duration of a batch. The shape is
//
//	logs -> [chunk] -> classify workers -> per-shard channels -> appliers
//
// and every stage is deterministic in aggregate: observations are
// idempotent day-bits, tallies are sums, so the result is independent of
// scheduling and equal to what the sequential Census produces.

const (
	// ingestChunk is the record count of one classification job.
	ingestChunk = 4096
	// shardBatch is the observation count of one routed shard batch; the
	// shard lock is taken once per batch.
	shardBatch = 1024
)

// hashAddr mixes an address into the shard hash space (the netmodel
// splitmix64 mixer, so equal runs shard identically).
func hashAddr(a ipaddr.Addr) uint64 {
	u := a.Uint128()
	return netmodel.Hash(u.Hi, u.Lo)
}

// hashP64 mixes a /64 prefix into the shard hash space.
func hashP64(p ipaddr.Prefix) uint64 {
	return netmodel.Hash(p.Addr().NetworkID(), uint64(p.Bits()))
}

// ShardedCensus is the concurrent analysis engine: the same analyses as
// Census over temporal.ShardedStore shards, fed by a parallel ingestion
// pipeline. AddDay, AddDays and Ingest are safe to call from any number of
// goroutines. Analyses require Freeze first; once frozen the census is
// immutable and every query is lock-free and internally parallel.
type ShardedCensus struct {
	censusState
	saddrs *temporal.ShardedStore[ipaddr.Addr]
	sp64s  *temporal.ShardedStore[ipaddr.Prefix]

	workers int
	mu      sync.Mutex // guards kinds/macs during ingestion
}

var _ Analyzer = (*ShardedCensus)(nil)

// NewShardedCensus returns an empty concurrent Census with GOMAXPROCS-scaled
// shard and worker counts.
func NewShardedCensus(cfg CensusConfig) *ShardedCensus {
	return NewShardedCensusN(cfg, 0, 0)
}

// NewShardedCensusN sizes the engine explicitly: shards temporal shards
// (rounded up to a power of two) and workers classification workers. Zero
// selects the GOMAXPROCS-scaled default for either.
func NewShardedCensusN(cfg CensusConfig, shards, workers int) *ShardedCensus {
	checkConfig(cfg)
	if shards <= 0 {
		shards = temporal.DefaultShardCount()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	saddrs := temporal.NewShardedStoreN(cfg.StudyDays, shards, hashAddr)
	sp64s := temporal.NewShardedStoreN(cfg.StudyDays, shards, hashP64)
	return &ShardedCensus{
		censusState: censusState{
			cfg:   cfg,
			addrs: saddrs,
			p64s:  sp64s,
			kinds: make(map[int]addrclass.Summary),
			macs:  make(map[int]map[addrclass.MAC]bool),
		},
		saddrs:  saddrs,
		sp64s:   sp64s,
		workers: workers,
	}
}

// Freeze ends the ingestion phase: all AddDay/AddDays/Ingest calls must
// have returned. After Freeze, ingestion panics and analyses are lock-free.
func (c *ShardedCensus) Freeze() {
	c.saddrs.Freeze()
	c.sp64s.Freeze()
	// Publish the tallies written under mu to lock-free readers.
	c.mu.Lock()
	defer c.mu.Unlock()
}

// Frozen reports whether Freeze has been called.
func (c *ShardedCensus) Frozen() bool { return c.saddrs.Frozen() }

// NumShards returns the temporal shard count of each key store.
func (c *ShardedCensus) NumShards() int { return c.saddrs.NumShards() }

// AddDay ingests one aggregated daily log through the pipeline.
func (c *ShardedCensus) AddDay(log cdnlog.DayLog) { c.AddDays([]cdnlog.DayLog{log}) }

// AddDays ingests a batch of daily logs concurrently.
func (c *ShardedCensus) AddDays(logs []cdnlog.DayLog) {
	ch := make(chan cdnlog.DayLog, len(logs))
	for _, l := range logs {
		ch <- l
	}
	close(ch)
	c.Ingest(ch)
}

// ingestJob is one classification unit: a chunk of records of one day.
type ingestJob struct {
	day  int
	recs []cdnlog.Record
}

// Ingest consumes daily logs from a channel until it is closed, running the
// full classify/route/apply pipeline, and returns when every observation
// has been applied. Several Ingest calls may run at once; call Freeze after
// they have all returned.
func (c *ShardedCensus) Ingest(logs <-chan cdnlog.DayLog) {
	if c.Frozen() {
		panic("core: ingest into frozen ShardedCensus")
	}
	nShards := c.saddrs.NumShards()
	jobs := make(chan ingestJob, 2*c.workers)
	addrCh := make([]chan []temporal.Obs[ipaddr.Addr], nShards)
	p64Ch := make([]chan []temporal.Obs[ipaddr.Prefix], c.sp64s.NumShards())

	// Applied batches recycle to the classify workers through free lists,
	// so steady-state routing allocates no batch memory: an applier
	// returns each emptied batch (dropping it only when the list is
	// full), and workers prefer a recycled batch over a fresh one.
	addrFree := make(chan []temporal.Obs[ipaddr.Addr], 2*len(addrCh)+2*c.workers)
	p64Free := make(chan []temporal.Obs[ipaddr.Prefix], 2*len(p64Ch)+2*c.workers)

	var appliers sync.WaitGroup
	for i := range addrCh {
		addrCh[i] = make(chan []temporal.Obs[ipaddr.Addr], 4)
		appliers.Add(1)
		go func(i int) {
			defer appliers.Done()
			for batch := range addrCh[i] {
				c.saddrs.ApplyBatch(i, batch)
				select {
				case addrFree <- batch[:0]:
				default:
				}
			}
		}(i)
	}
	for i := range p64Ch {
		p64Ch[i] = make(chan []temporal.Obs[ipaddr.Prefix], 4)
		appliers.Add(1)
		go func(i int) {
			defer appliers.Done()
			for batch := range p64Ch[i] {
				c.sp64s.ApplyBatch(i, batch)
				select {
				case p64Free <- batch[:0]:
				default:
				}
			}
		}(i)
	}

	var workers sync.WaitGroup
	for w := 0; w < c.workers; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			c.classifyWorker(jobs, addrCh, p64Ch, addrFree, p64Free)
		}()
	}

	for l := range logs {
		c.ensureDay(l.Day)
		for off := 0; off < len(l.Records); off += ingestChunk {
			end := min(off+ingestChunk, len(l.Records))
			jobs <- ingestJob{day: l.Day, recs: l.Records[off:end]}
		}
	}
	close(jobs)
	workers.Wait()
	for i := range addrCh {
		close(addrCh[i])
	}
	for i := range p64Ch {
		close(p64Ch[i])
	}
	appliers.Wait()
}

// ensureDay records that a day was ingested (possibly with zero records),
// matching the sequential Census's per-day summary presence.
func (c *ShardedCensus) ensureDay(day int) {
	c.mu.Lock()
	if c.kinds[day].ByKind == nil {
		c.kinds[day] = addrclass.Summary{ByKind: make(map[addrclass.Kind]int, addrclass.NumKinds)}
	}
	c.mu.Unlock()
}

// dayTally is one worker's private Table 1 bookkeeping for one day.
type dayTally struct {
	sum  addrclass.Summary
	macs map[addrclass.MAC]bool
}

// classifyWorker drains jobs, classifying records into worker-local tallies
// and routing surviving observations to shard batches; on exit it flushes
// the batches and merges the tallies (both merges commute, so worker
// scheduling cannot change the result). New shard batches come from the
// free lists when an applier has recycled one.
func (c *ShardedCensus) classifyWorker(jobs <-chan ingestJob, addrCh []chan []temporal.Obs[ipaddr.Addr], p64Ch []chan []temporal.Obs[ipaddr.Prefix], addrFree chan []temporal.Obs[ipaddr.Addr], p64Free chan []temporal.Obs[ipaddr.Prefix]) {
	tallies := make(map[int]*dayTally)
	addrBuf := make([][]temporal.Obs[ipaddr.Addr], len(addrCh))
	p64Buf := make([][]temporal.Obs[ipaddr.Prefix], len(p64Ch))
	newAddrBatch := func() []temporal.Obs[ipaddr.Addr] {
		select {
		case b := <-addrFree:
			return b
		default:
			return make([]temporal.Obs[ipaddr.Addr], 0, shardBatch)
		}
	}
	newP64Batch := func() []temporal.Obs[ipaddr.Prefix] {
		select {
		case b := <-p64Free:
			return b
		default:
			return make([]temporal.Obs[ipaddr.Prefix], 0, shardBatch)
		}
	}

	for j := range jobs {
		t := tallies[j.day]
		if t == nil {
			t = &dayTally{sum: addrclass.Summary{ByKind: make(map[addrclass.Kind]int, addrclass.NumKinds)}}
			tallies[j.day] = t
		}
		getMACs := func() map[addrclass.MAC]bool {
			if t.macs == nil {
				t.macs = make(map[addrclass.MAC]bool)
			}
			return t.macs
		}
		d := temporal.Day(j.day)
		for _, r := range j.recs {
			if !c.classifyRecord(r, &t.sum, getMACs) {
				continue
			}
			ai := c.saddrs.ShardFor(r.Addr)
			if addrBuf[ai] == nil {
				addrBuf[ai] = newAddrBatch()
			}
			addrBuf[ai] = append(addrBuf[ai], temporal.Obs[ipaddr.Addr]{Key: r.Addr, Day: d})
			if len(addrBuf[ai]) >= shardBatch {
				addrCh[ai] <- addrBuf[ai]
				addrBuf[ai] = nil
			}
			p := ipaddr.PrefixFrom(r.Addr, 64)
			pi := c.sp64s.ShardFor(p)
			if p64Buf[pi] == nil {
				p64Buf[pi] = newP64Batch()
			}
			p64Buf[pi] = append(p64Buf[pi], temporal.Obs[ipaddr.Prefix]{Key: p, Day: d})
			if len(p64Buf[pi]) >= shardBatch {
				p64Ch[pi] <- p64Buf[pi]
				p64Buf[pi] = nil
			}
		}
	}
	for i, b := range addrBuf {
		if len(b) > 0 {
			addrCh[i] <- b
		}
	}
	for i, b := range p64Buf {
		if len(b) > 0 {
			p64Ch[i] <- b
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	for day, t := range tallies {
		sum := c.kinds[day]
		if sum.ByKind == nil {
			sum = addrclass.Summary{ByKind: make(map[addrclass.Kind]int, addrclass.NumKinds)}
		}
		sum.Total += t.sum.Total
		for k, n := range t.sum.ByKind {
			sum.ByKind[k] += n
		}
		c.kinds[day] = sum
		if len(t.macs) > 0 {
			m := c.macs[day]
			if m == nil {
				m = c.cowDayMACs(day, len(t.macs))
			}
			for mac := range t.macs {
				m[mac] = true
			}
		}
	}
}
