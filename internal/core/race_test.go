package core

import (
	"sync"
	"testing"

	"v6class/internal/cdnlog"
	"v6class/synth"
)

// Race coverage for the concurrent census: several Ingest pipelines running
// at once, AddDay from many goroutines, and post-freeze analyses fanning
// out in parallel. Run with -race; the equivalence assertions double as a
// determinism check under scheduling chaos.

func TestShardedCensusConcurrentIngest(t *testing.T) {
	cfg := synth.Config{Seed: 11, Scale: 0.01, StudyDays: 24}
	const days = 18
	logs := worldLogs(t, cfg, days)

	seq := NewCensus(CensusConfig{StudyDays: 24})
	for _, l := range logs {
		seq.AddDay(l)
	}

	sh := NewShardedCensus(CensusConfig{StudyDays: 24})
	// Three concurrent Ingest pipelines over interleaved slices, plus a
	// goroutine hammering AddDay — every entry is ingested exactly once.
	var wg sync.WaitGroup
	for part := 0; part < 3; part++ {
		ch := make(chan cdnlog.DayLog)
		wg.Add(2)
		go func(part int, ch chan<- cdnlog.DayLog) {
			defer wg.Done()
			defer close(ch)
			for i := part; i < len(logs); i += 4 {
				ch <- logs[i]
			}
		}(part, ch)
		go func(ch <-chan cdnlog.DayLog) {
			defer wg.Done()
			sh.Ingest(ch)
		}(ch)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 3; i < len(logs); i += 4 {
			sh.AddDay(logs[i])
		}
	}()
	wg.Wait()
	sh.Freeze()

	// Post-freeze analyses from many goroutines at once.
	var ag sync.WaitGroup
	for g := 0; g < 8; g++ {
		ag.Add(1)
		go func(g int) {
			defer ag.Done()
			d := g % days
			if got, want := sh.Summary(d), seq.Summary(d); got.Total != want.Total {
				t.Errorf("Summary(%d).Total = %d, want %d", d, got.Total, want.Total)
			}
			if got, want := sh.Stability(Addresses, d, 3), seq.Stability(Addresses, d, 3); got != want {
				t.Errorf("Stability(%d) = %+v, want %+v", d, got, want)
			}
			_ = sh.OverlapSeries(Prefixes64, days/2, 5, 5)
			_ = sh.ActiveInRange(Addresses, 0, days-1)
			_ = sh.NativeSet(d)
		}(g)
	}
	ag.Wait()
	if t.Failed() {
		return
	}
	assertCensusesAgree(t, seq, sh, days)
}

func TestShardedCensusIngestAfterFreezePanics(t *testing.T) {
	sh := NewShardedCensus(CensusConfig{StudyDays: 5})
	sh.AddDay(cdnlog.DayLog{Day: 1})
	sh.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("AddDays after Freeze did not panic")
		}
	}()
	sh.AddDays(worldLogs(t, synth.Config{Seed: 1, Scale: 0.01, StudyDays: 5}, 2))
}
