//go:build !unix

package core

import "os"

// MapFile is the portable stub: no mapping support, callers read the whole
// file instead.
func MapFile(f *os.File) (data []byte, holder any, ok bool) {
	return nil, nil, false
}
