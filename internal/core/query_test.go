package core

import (
	"bytes"
	"reflect"
	"testing"

	"v6class/internal/addrclass"
	"v6class/internal/ipaddr"
	"v6class/internal/temporal"
	"v6class/synth"
)

// queryWorld builds matched sequential and sharded censuses over the same
// days, as the equivalence suite does.
func queryWorld(t *testing.T) (*Census, *ShardedCensus) {
	t.Helper()
	w := synth.NewWorld(synth.Config{Seed: 5, Scale: 0.01, StudyDays: 30})
	seq := NewCensus(CensusConfig{StudyDays: 30})
	sh := NewShardedCensus(CensusConfig{StudyDays: 30})
	for d := 4; d <= 18; d++ {
		log := w.Day(d)
		seq.AddDay(log)
		sh.AddDay(log)
	}
	sh.Freeze()
	return seq, sh
}

func TestLookupAddrReport(t *testing.T) {
	seq, _ := queryWorld(t)
	addrs := seq.AddrsActiveOn(11)
	if len(addrs) == 0 {
		t.Fatal("no active addresses")
	}
	a := addrs[0]
	lk := seq.LookupAddr(a)
	if !lk.Report.Known {
		t.Fatal("active address must be known")
	}
	if lk.Kind != addrclass.Classify(a) {
		t.Errorf("kind %v, want %v", lk.Kind, addrclass.Classify(a))
	}
	days := seq.addrs.Days(a)
	if lk.Report.ActiveDays != len(days) || len(lk.Report.Days) != len(days) {
		t.Errorf("report days %v vs store %v", lk.Report.Days, days)
	}
	if lk.Report.First != int(days[0]) || lk.Report.Last != int(days[len(days)-1]) {
		t.Errorf("extent [%d,%d] vs store %v", lk.Report.First, lk.Report.Last, days)
	}
	if lk.Report.SpanDays != lk.Report.Last-lk.Report.First+1 {
		t.Errorf("span %d inconsistent with extent", lk.Report.SpanDays)
	}
	if lk.Report.Available <= 0 || lk.Report.Available > 1 || lk.Report.Volatility <= 0 || lk.Report.Volatility > 1 {
		t.Errorf("availability %v / volatility %v out of range", lk.Report.Available, lk.Report.Volatility)
	}
	if !lk.Prefix64.Known {
		t.Error("the /64 of an active address must be known")
	}

	// An address never observed: unknown report, but still classified.
	missing := seq.LookupAddr(ipaddr.MustParseAddr("2001:db8:dead:beef::1"))
	if missing.Report.Known || missing.Report.ActiveDays != 0 {
		t.Errorf("missing address report %+v", missing.Report)
	}
}

// TestQueryEquivalence holds the new query API to the same standard as the
// rest of the analysis layer: identical answers from both engines.
func TestQueryEquivalence(t *testing.T) {
	seq, sh := queryWorld(t)

	if seq.Keys(Addresses) != sh.Keys(Addresses) || seq.Keys(Prefixes64) != sh.Keys(Prefixes64) {
		t.Errorf("key counts differ: %d/%d vs %d/%d",
			seq.Keys(Addresses), seq.Keys(Prefixes64), sh.Keys(Addresses), sh.Keys(Prefixes64))
	}

	opts := temporal.Options{Window: temporal.Window{Before: 7, After: 7}}
	addrs := seq.AddrsActiveOn(11)
	if len(addrs) < 10 {
		t.Fatalf("want >= 10 active addresses, have %d", len(addrs))
	}
	for _, a := range addrs[:10] {
		la, lb := seq.LookupAddr(a), sh.LookupAddr(a)
		if !reflect.DeepEqual(la, lb) {
			t.Fatalf("LookupAddr(%v): %+v vs %+v", a, la, lb)
		}
		if seq.AddrStable(a, 11, 3, opts) != sh.AddrStable(a, 11, 3, opts) {
			t.Fatalf("AddrStable(%v) disagrees", a)
		}
		p := ipaddr.PrefixFrom(a, 64)
		if !reflect.DeepEqual(seq.LookupPrefix64(p), sh.LookupPrefix64(p)) {
			t.Fatalf("LookupPrefix64(%v) disagrees", p)
		}
		if seq.Prefix64Stable(p, 11, 3, opts) != sh.Prefix64Stable(p, 11, 3, opts) {
			t.Fatalf("Prefix64Stable(%v) disagrees", p)
		}
	}

	for _, pop := range []Population{Addresses, Prefixes64} {
		ta := seq.TopAggregates(pop, 48, 10, 10, 11, 12)
		tb := sh.TopAggregates(pop, 48, 10, 10, 11, 12)
		if !reflect.DeepEqual(ta, tb) {
			t.Fatalf("TopAggregates(pop %d): %v vs %v", pop, ta, tb)
		}
	}
}

// TestQueriesSurviveSnapshot asserts the point queries answer identically
// after a persistence round trip (the serving path: write, load, query).
func TestQueriesSurviveSnapshot(t *testing.T) {
	seq, _ := queryWorld(t)
	var buf bytes.Buffer
	if _, err := seq.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadShardedCensus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored.Freeze()

	addrs := seq.AddrsActiveOn(11)
	for _, a := range addrs[:5] {
		if !reflect.DeepEqual(seq.LookupAddr(a), restored.LookupAddr(a)) {
			t.Fatalf("LookupAddr(%v) changed across snapshot", a)
		}
	}
	if !reflect.DeepEqual(seq.TopAggregates(Addresses, 48, 5, 11), restored.TopAggregates(Addresses, 48, 5, 11)) {
		t.Error("TopAggregates changed across snapshot")
	}
}

func TestTopAggregatesOrdering(t *testing.T) {
	c := NewCensus(CensusConfig{StudyDays: 3})
	c.AddDay(day(0,
		"2001:db8:1::1", "2001:db8:1::2", "2001:db8:1::3",
		"2001:db8:2::1", "2001:db8:2::2",
		"2001:db8:3::1", "2001:db8:4::1"))
	got := c.TopAggregates(Addresses, 48, 3, 0)
	if len(got) != 3 {
		t.Fatalf("want 3 rows, got %d", len(got))
	}
	if got[0].Count != 3 || got[0].Prefix.String() != "2001:db8:1::/48" {
		t.Errorf("row 0: %v %d", got[0].Prefix, got[0].Count)
	}
	if got[1].Count != 2 {
		t.Errorf("row 1 count %d, want 2", got[1].Count)
	}
	// The tie between :3:: and :4:: (count 1) breaks in prefix order.
	if got[2].Prefix.String() != "2001:db8:3::/48" {
		t.Errorf("row 2 tie-break: %v", got[2].Prefix)
	}
	// k=0 returns every occupied aggregate.
	if all := c.TopAggregates(Addresses, 48, 0, 0); len(all) != 4 {
		t.Errorf("k=0 rows %d, want 4", len(all))
	}
}
