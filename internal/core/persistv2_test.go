package core

import (
	"bytes"
	"errors"
	"hash/crc32"
	"strings"
	"testing"
)

// buildV2TestCensus ingests a small census covering every section: native
// addresses (some EUI-64 so the MAC section is populated), transition
// mechanisms (so kinds tally beyond the temporal stores), and two days.
func buildV2TestCensus(t testing.TB) *Census {
	t.Helper()
	c := NewCensus(CensusConfig{StudyDays: 20})
	c.AddDay(day(3,
		"2001:db8:1:1::1",
		"2001:db8:1:1:21e:c2ff:fec0:11db",
		"2001:db8:9:2:3031:f3fd:bbdd:2c2a",
		"2002:c000:204::1",
	))
	c.AddDay(day(7, "2001:db8:1:1::1", "2001:db8:42::7"))
	return c
}

// v2Bytes serializes the test census in the v2 format.
func v2Bytes(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buildV2TestCensus(t).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fixHeaderCRC recomputes the trailing header checksum after a test mutates
// header or table bytes, so the mutation reaches the check it targets.
func fixHeaderCRC(b []byte) {
	le.PutUint32(b[len(b)-4:], crc32.Checksum(b[:v2DataStart], castagnoli))
}

func TestSnapshotVersionSniff(t *testing.T) {
	if v := SnapshotVersion([]byte(censusMagic)); v != 1 {
		t.Errorf("v1 magic sniffed as %d", v)
	}
	if v := SnapshotVersion(v2Bytes(t)); v != 2 {
		t.Errorf("v2 snapshot sniffed as %d", v)
	}
	for _, in := range []string{"", "v6census", "v6report-resultsX", "v6census-state-3"} {
		if v := SnapshotVersion([]byte(in)); v != 0 {
			t.Errorf("SnapshotVersion(%q) = %d, want 0", in, v)
		}
	}
}

// TestSnapshotV2ByteIdentity proves the formats describe one state: a census
// opened from either format re-serializes to byte-identical snapshots in
// both formats, through both engine shapes.
func TestSnapshotV2ByteIdentity(t *testing.T) {
	orig := buildV2TestCensus(t)
	var v1, v2 bytes.Buffer
	if _, err := orig.WriteToV1(&v1); err != nil {
		t.Fatal(err)
	}
	if n, err := orig.WriteTo(&v2); err != nil || n != int64(v2.Len()) {
		t.Fatalf("WriteTo = (%d, %v), buffered %d", n, err, v2.Len())
	}

	open := func(t *testing.T, b []byte) *Census {
		c, err := ReadCensus(bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	for name, src := range map[string][]byte{"from-v1": v1.Bytes(), "from-v2": v2.Bytes()} {
		t.Run(name, func(t *testing.T) {
			c := open(t, src)
			var gotV1, gotV2 bytes.Buffer
			if _, err := c.WriteToV1(&gotV1); err != nil {
				t.Fatal(err)
			}
			if _, err := c.WriteTo(&gotV2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotV1.Bytes(), v1.Bytes()) {
				t.Error("reopened census writes different v1 bytes")
			}
			if !bytes.Equal(gotV2.Bytes(), v2.Bytes()) {
				t.Error("reopened census writes different v2 bytes")
			}
		})
	}
}

// TestSnapshotV2ShardedByteIdentity is the sharded-shape identity: a sharded
// census reopened at the same shard count re-serializes identically (rows
// route to the same shards in the same per-shard order).
func TestSnapshotV2ShardedByteIdentity(t *testing.T) {
	sc := NewShardedCensusN(CensusConfig{StudyDays: 20}, 8, 2)
	sc.AddDay(day(3,
		"2001:db8:1:1::1",
		"2001:db8:1:1:21e:c2ff:fec0:11db",
		"2002:c000:204::1",
	))
	sc.AddDay(day(7, "2001:db8:1:1::1", "2001:db8:42::7"))
	sc.Freeze()
	var first bytes.Buffer
	if _, err := sc.WriteTo(&first); err != nil {
		t.Fatal(err)
	}
	re, err := ReadShardedCensusN(bytes.NewReader(first.Bytes()), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	re.Freeze()
	var second bytes.Buffer
	if _, err := re.WriteTo(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("sharded census reopened at the same shard count writes different bytes")
	}
}

// TestSnapshotV2AttachedIngestion extends a v2-opened census (the daily
// pipeline's restore-and-continue path) and checks it matches a single-pass
// census — including through a freeze via the sharded shape.
func TestSnapshotV2AttachedIngestion(t *testing.T) {
	resumed, err := ReadCensus(bytes.NewReader(v2Bytes(t)))
	if err != nil {
		t.Fatal(err)
	}
	full := buildV2TestCensus(t)
	extra := day(11, "2001:db8:1:1::1", "2001:db8:77::9")
	resumed.AddDay(extra)
	full.AddDay(extra)
	var a, b bytes.Buffer
	if _, err := resumed.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := full.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("extended v2-opened census diverges from single-pass census")
	}
}

// v2Readers drives each snapshot entry point an error-path must fail
// through: the raw parser and both engine readers.
var v2Readers = []struct {
	name string
	read func(b []byte) error
}{
	{"parse", func(b []byte) error { _, err := parseSnapshotV2(b); return err }},
	{"sequential", func(b []byte) error {
		_, err := ReadCensus(bytes.NewReader(b))
		return err
	}},
	{"sharded", func(b []byte) error {
		_, err := ReadShardedCensusN(bytes.NewReader(b), 4, 1)
		return err
	}},
}

// TestSnapshotV2TruncationSweep cuts a valid snapshot at and around every
// section boundary (plus header, table, and trailer edges): every cut must
// yield a typed error, never a panic or a silently partial census.
func TestSnapshotV2TruncationSweep(t *testing.T) {
	full := v2Bytes(t)
	cuts := []int{0, 1, 15, 16, 20, v2HeaderSize, v2DataStart - 1, v2DataStart,
		len(full) - v2TrailerSize, len(full) - 4, len(full) - 1}
	for i := 0; i < v2SectionCount; i++ {
		e := full[v2HeaderSize+i*v2TableEntry:]
		off, ln := int(le.Uint64(e[8:])), int(le.Uint64(e[16:]))
		cuts = append(cuts, off-1, off, off+1, off+ln-1, off+ln)
	}
	for _, n := range cuts {
		if n < 0 || n >= len(full) {
			continue
		}
		if err := v2Readers[0].read(full[:n]); err == nil || !errors.Is(err, ErrCorruptSnapshot) {
			t.Errorf("parse of %d/%d bytes: got %v, want ErrCorruptSnapshot", n, len(full), err)
		}
		// The engine readers must error too (cuts below the magic fall
		// through to the v1 decoder's header error).
		for _, rd := range v2Readers[1:] {
			if err := rd.read(full[:n]); err == nil {
				t.Errorf("%s: reading %d of %d bytes should fail", rd.name, n, len(full))
			}
		}
	}
	for _, rd := range v2Readers {
		if err := rd.read(full); err != nil {
			t.Errorf("%s: full snapshot failed: %v", rd.name, err)
		}
	}
}

// TestSnapshotV2BadChecksum flips one payload byte in every non-empty
// section, and the stored header checksum itself; each flip must surface as
// a checksum mismatch.
func TestSnapshotV2BadChecksum(t *testing.T) {
	full := v2Bytes(t)
	for i := 0; i < v2SectionCount; i++ {
		e := full[v2HeaderSize+i*v2TableEntry:]
		off, ln := int(le.Uint64(e[8:])), int(le.Uint64(e[16:]))
		if ln == 0 {
			t.Fatalf("test census leaves section %d empty; grow the fixture", i)
		}
		bad := bytes.Clone(full)
		bad[off+ln/2] ^= 0x40
		for _, rd := range v2Readers {
			err := rd.read(bad)
			if err == nil || !strings.Contains(err.Error(), "checksum") {
				t.Errorf("%s: section %d bit flip: got %v, want checksum mismatch", rd.name, i, err)
			}
			if rd.name == "parse" && !errors.Is(err, ErrCorruptSnapshot) {
				t.Errorf("section %d: %v is not ErrCorruptSnapshot", i, err)
			}
		}
	}
	bad := bytes.Clone(full)
	bad[len(bad)-2] ^= 0x01 // stored header CRC
	if err := v2Readers[0].read(bad); err == nil || !strings.Contains(err.Error(), "header checksum") {
		t.Errorf("corrupt stored header CRC: got %v, want header checksum mismatch", err)
	}
}

// TestSnapshotV2MisalignedOffset rejects section offsets off the 8-byte
// grid, and aligned offsets that leave holes or overlap.
func TestSnapshotV2MisalignedOffset(t *testing.T) {
	for i := 0; i < v2SectionCount; i++ {
		bad := v2Bytes(t)
		e := bad[v2HeaderSize+i*v2TableEntry:]
		le.PutUint64(e[8:], le.Uint64(e[8:])+4)
		err := v2Readers[0].read(bad)
		if err == nil || !errors.Is(err, ErrCorruptSnapshot) || !strings.Contains(err.Error(), "misaligned") {
			t.Errorf("section %d offset +4: got %v, want misaligned-offset error", i, err)
		}
		le.PutUint64(e[8:], le.Uint64(e[8:])+4) // now +8: aligned but displaced
		err = v2Readers[0].read(bad)
		if err == nil || !errors.Is(err, ErrCorruptSnapshot) {
			t.Errorf("section %d offset +8: got %v, want ErrCorruptSnapshot", i, err)
		}
	}
}

// TestSnapshotV2WrongMagic covers cross-version confusion: a v1 magic in
// front of a v2 body routes to the v1 decoder and must error (not panic,
// not half-parse); unknown magics are rejected outright.
func TestSnapshotV2WrongMagic(t *testing.T) {
	full := v2Bytes(t)
	v1Magic := bytes.Clone(full)
	copy(v1Magic, censusMagic)
	for _, rd := range v2Readers[1:] {
		if err := rd.read(v1Magic); err == nil {
			t.Errorf("%s: v1 magic over a v2 body should be rejected", rd.name)
		}
	}
	if err := v2Readers[0].read(v1Magic); err == nil || !errors.Is(err, ErrCorruptSnapshot) {
		t.Errorf("parse: v1 magic: got %v, want ErrCorruptSnapshot", err)
	}
	future := bytes.Clone(full)
	copy(future, "v6census-state-9")
	for _, rd := range v2Readers {
		if err := rd.read(future); err == nil {
			t.Errorf("%s: unknown magic should be rejected", rd.name)
		}
	}
}

// TestSnapshotV2ImplausibleHeader rejects headers whose fields would make
// the reader allocate or loop absurdly, or that disagree with the sections.
func TestSnapshotV2ImplausibleHeader(t *testing.T) {
	mutate := func(fn func(b []byte)) []byte {
		b := v2Bytes(t)
		fn(b)
		fixHeaderCRC(b)
		return b
	}
	cases := map[string][]byte{
		"zero study days":     mutate(func(b []byte) { le.PutUint32(b[20:], 0) }),
		"huge study days":     mutate(func(b []byte) { le.PutUint32(b[20:], 1<<20+1) }),
		"wrong section count": mutate(func(b []byte) { le.PutUint32(b[24:], 5) }),
		"nonzero reserved":    mutate(func(b []byte) { le.PutUint32(b[28:], 7) }),
		"unknown flags":       mutate(func(b []byte) { le.PutUint32(b[16:], 0x80) }),
		"wrong section kind":  mutate(func(b []byte) { le.PutUint32(b[v2HeaderSize:], 9) }),
		"key/row count skew":  mutate(func(b []byte) { le.PutUint32(b[v2HeaderSize+4:], le.Uint32(b[v2HeaderSize+4:])+1) }),
		// Shrinking studyDays changes the stride the row sections must
		// match.
		"stride mismatch": mutate(func(b []byte) { le.PutUint32(b[20:], 200) }),
	}
	for name, b := range cases {
		for _, rd := range v2Readers {
			if err := rd.read(b); err == nil {
				t.Errorf("%s: %s should be rejected", rd.name, name)
			}
		}
		if err := v2Readers[0].read(b); !errors.Is(err, ErrCorruptSnapshot) {
			t.Errorf("parse: %s: %v is not ErrCorruptSnapshot", name, err)
		}
	}
}

// TestSnapshotV2TrailingGarbage rejects bytes appended after the trailer.
func TestSnapshotV2TrailingGarbage(t *testing.T) {
	full := append(v2Bytes(t), 0, 0, 0, 0)
	for _, rd := range v2Readers {
		if err := rd.read(full); err == nil {
			t.Errorf("%s: trailing garbage should be rejected", rd.name)
		}
	}
}
