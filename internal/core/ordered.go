package core

import (
	"fmt"
	"iter"

	"v6class/internal/ipaddr"
	"v6class/internal/temporal"
)

// Ordered, resumable forms of the streaming enumerations. The total order
// is the canonical one of internal/ipaddr: addresses ascend numerically
// (uint128 compare) and prefixes ascend by base address, then prefix
// length — a binary-trie in-order walk. Both engines share one memoized
// sorted row permutation per store, so the sequential engine pays one
// O(n log n) sort on first use and the sharded engine a k-way heap merge
// of per-shard sorted sweeps. These orderings are the contract the serve
// pagination cursors and the cluster coordinator's gather merges rely on.

func addrCmp(a, b ipaddr.Addr) int     { return a.Cmp(b) }
func prefixCmp(a, b ipaddr.Prefix) int { return a.Cmp(b) }

// AddrsOrderedSeq yields native addresses in ascending numeric order,
// strictly after *after when non-nil. An empty days slice enumerates every
// address ever observed; a non-empty one the union of addresses active on
// any listed day, each exactly once.
func (c *censusState) AddrsOrderedSeq(days []int, after *ipaddr.Addr) iter.Seq[ipaddr.Addr] {
	if len(days) == 0 {
		return c.addrs.KeysOrderedSeq(addrCmp, after)
	}
	return c.addrs.KeysActiveAnyOrderedSeq(addrCmp, toDays(days), after)
}

// Prefix64sOrderedSeq is AddrsOrderedSeq for the /64 population, ascending
// by base address then prefix length.
func (c *censusState) Prefix64sOrderedSeq(days []int, after *ipaddr.Prefix) iter.Seq[ipaddr.Prefix] {
	if len(days) == 0 {
		return c.p64s.KeysOrderedSeq(prefixCmp, after)
	}
	return c.p64s.KeysActiveAnyOrderedSeq(prefixCmp, toDays(days), after)
}

// StableAddrsOrderedSeq yields the nd-stable addresses for reference day
// ref under opts in ascending numeric order, strictly after *after when
// non-nil — the ordered form of StableAddrsSeq.
func (c *censusState) StableAddrsOrderedSeq(ref, n int, opts temporal.Options, after *ipaddr.Addr) iter.Seq[ipaddr.Addr] {
	return c.addrs.StableKeysOrderedSeq(addrCmp, temporal.Day(ref), n, opts, after)
}

// AddrLifetimesOrderedSeq yields every observed address with its activity
// profile in ascending numeric order, strictly after *after when non-nil.
func (c *censusState) AddrLifetimesOrderedSeq(after *ipaddr.Addr) iter.Seq2[ipaddr.Addr, temporal.Activity] {
	return c.addrs.ActivityOrderedSeq(addrCmp, after)
}

// Prefix64LifetimesOrderedSeq yields every observed /64 with its activity
// profile in ascending prefix order, strictly after *after when non-nil.
func (c *censusState) Prefix64LifetimesOrderedSeq(after *ipaddr.Prefix) iter.Seq2[ipaddr.Prefix, temporal.Activity] {
	return c.p64s.ActivityOrderedSeq(prefixCmp, after)
}

// ReturnCounts returns the per-gap return and opportunity tallies behind
// ReturnProbability. Unlike the probabilities, the counts are additive
// across disjoint key partitions, which is how a cluster coordinator
// recovers exact probabilities: sum counts over backends, divide once.
func (c *censusState) ReturnCounts(pop Population, from, to, maxGap int) (num, den []int) {
	switch pop {
	case Addresses:
		return c.addrs.ReturnCounts(temporal.Day(from), temporal.Day(to), maxGap)
	case Prefixes64:
		return c.p64s.ReturnCounts(temporal.Day(from), temporal.Day(to), maxGap)
	}
	panic(fmt.Sprintf("core: unknown population %d", pop))
}
