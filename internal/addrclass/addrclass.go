// Package addrclass classifies IPv6 addresses by their standards-defined
// format, reproducing the address-content analysis of Sections 3 and 4 of
// Plonka & Berger (IMC 2015): the transition mechanisms that the study culls
// (Teredo, ISATAP, 6to4), the EUI-64 addresses whose embedded MAC addresses
// guide the study's reverse engineering of operator practice, and heuristics
// for the remaining "Other" (native) addresses.
package addrclass

import (
	"fmt"
	"math/bits"

	"v6class/internal/ipaddr"
)

// Kind is a format-derived address class. Transition-mechanism kinds are
// authoritative (their formats are reserved); the IID kinds for native
// addresses are heuristic, per the paper's observation that randomness in 63
// bits cannot be detected reliably from a single address.
type Kind uint8

const (
	// KindOther is native IPv6 whose IID fits no recognized pattern;
	// overwhelmingly SLAAC privacy addresses (RFC 4941) in client
	// populations.
	KindOther Kind = iota
	// KindTeredo is an RFC 4380 Teredo address (2001::/32).
	KindTeredo
	// Kind6to4 is an RFC 3056 6to4 address (2002::/16).
	Kind6to4
	// KindISATAP is an RFC 5214 ISATAP address (IID ::0200:5efe:a.b.c.d or
	// ::0000:5efe:a.b.c.d).
	KindISATAP
	// KindEUI64 is a SLAAC address with an EUI-64 expansion of an Ethernet
	// MAC in its IID (ff:fe in the middle bytes).
	KindEUI64
	// KindLowIID is native IPv6 with a small integer IID (all IID bits
	// above the bottom 16 are zero), the typical shape of manually
	// assigned or DHCPv6 sequential addresses such as the paper's
	// Figure 1 example "2001:db8:10:1::103".
	KindLowIID
	// KindStructuredIID is native IPv6 whose IID is neither tiny nor
	// random-looking: few distinct nybble values or long zero runs,
	// suggesting an operator-structured value such as Figure 1's
	// "2001:db8:167:1109::10:901".
	KindStructuredIID
	// KindEmbeddedIPv4 is native IPv6 whose IID embeds a dotted-quad IPv4
	// address in its low 32 bits by the ad hoc conventions of Section 3
	// (only claimed when the low 32 bits resemble a public unicast IPv4
	// address and the rest of the IID is zero).
	KindEmbeddedIPv4
)

// NumKinds is the number of distinct Kind values, for pre-sizing per-kind
// tallies.
const NumKinds = int(KindEmbeddedIPv4) + 1

var kindNames = [...]string{
	KindOther:         "other",
	KindTeredo:        "teredo",
	Kind6to4:          "6to4",
	KindISATAP:        "isatap",
	KindEUI64:         "eui64",
	KindLowIID:        "low-iid",
	KindStructuredIID: "structured-iid",
	KindEmbeddedIPv4:  "embedded-ipv4",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind inverts Kind.String: it returns the Kind named by s, or false
// for an unrecognized name. This is how wire clients reconstruct typed
// kinds from the serve API's JSON, so the names here are a compatibility
// surface.
func ParseKind(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// IsTransition reports whether k is one of the early transition mechanisms
// the paper culls from its census (Teredo, ISATAP, 6to4).
func (k Kind) IsTransition() bool {
	return k == KindTeredo || k == Kind6to4 || k == KindISATAP
}

var (
	teredoPrefix = ipaddr.MustParsePrefix("2001::/32")
	sixToFour    = ipaddr.MustParsePrefix("2002::/16")
)

// Classify returns the format class of a. Transition mechanisms are
// detected first (they are authoritative), then EUI-64, then the native-IID
// heuristics.
func Classify(a ipaddr.Addr) Kind {
	switch {
	case teredoPrefix.Contains(a):
		return KindTeredo
	case sixToFour.Contains(a):
		return Kind6to4
	case isISATAP(a):
		return KindISATAP
	case IsEUI64(a):
		return KindEUI64
	}
	iid := a.IID()
	switch {
	case iid&^0xffff == 0:
		return KindLowIID
	case isEmbeddedIPv4(iid):
		return KindEmbeddedIPv4
	case isStructured(iid):
		return KindStructuredIID
	}
	return KindOther
}

// isISATAP matches the RFC 5214 IID format ::[02]00:5efe:a.b.c.d — the
// first 32 bits of the IID are 0000:5efe or 0200:5efe (the u bit may be
// set for administered addresses).
func isISATAP(a ipaddr.Addr) bool {
	top := uint32(a.IID() >> 32)
	return top&^0x02000000 == 0x00005efe
}

// IsEUI64 reports whether a's IID has the EUI-64 expansion signature: the
// bytes 0xff, 0xfe in IID byte positions 3 and 4 (address bytes 11 and 12).
// Per RFC 4291 an Ethernet MAC m0:m1:m2:m3:m4:m5 expands to
// m0^02:m1:m2:ff:fe:m3:m4:m5.
func IsEUI64(a ipaddr.Addr) bool {
	return (a.IID()>>24)&0xffff == 0xfffe
}

// MAC is a 48-bit Ethernet hardware address recovered from an EUI-64 IID.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// EUI64MAC extracts the embedded MAC address from an EUI-64 IID, undoing
// the u-bit (universal/local) inversion. ok is false when a is not EUI-64.
func EUI64MAC(a ipaddr.Addr) (MAC, bool) {
	if !IsEUI64(a) {
		return MAC{}, false
	}
	iid := a.IID()
	return MAC{
		byte(iid>>56) ^ 0x02, // u bit flipped back
		byte(iid >> 48),
		byte(iid >> 40),
		byte(iid >> 16),
		byte(iid >> 8),
		byte(iid),
	}, true
}

// EUI64FromMAC builds the 64-bit EUI-64 IID for a MAC address, flipping the
// u bit per RFC 4291. It is the inverse of EUI64MAC and is used by the
// synthetic workload generator.
func EUI64FromMAC(m MAC) uint64 {
	return uint64(m[0]^0x02)<<56 | uint64(m[1])<<48 | uint64(m[2])<<40 |
		0xfffe<<24 | uint64(m[3])<<16 | uint64(m[4])<<8 | uint64(m[5])
}

// Embedded6to4IPv4 extracts the IPv4 address embedded in bits 16..48 of a
// 6to4 address. ok is false for non-6to4 addresses.
func Embedded6to4IPv4(a ipaddr.Addr) (uint32, bool) {
	if !sixToFour.Contains(a) {
		return 0, false
	}
	return uint32(a.NetworkID() >> 16), true
}

// EmbeddedISATAPIPv4 extracts the IPv4 address embedded in the low 32 bits
// of an ISATAP IID. ok is false for non-ISATAP addresses.
func EmbeddedISATAPIPv4(a ipaddr.Addr) (uint32, bool) {
	if !isISATAP(a) {
		return 0, false
	}
	return uint32(a.IID()), true
}

// isEmbeddedIPv4 heuristically detects an IPv4 address stored in the low 32
// bits of an otherwise zero IID, the common router/dual-stack convenience
// described in Section 3. The candidate's first octet must be a plausible
// public unicast value.
func isEmbeddedIPv4(iid uint64) bool {
	if iid>>32 != 0 {
		return false
	}
	v4 := uint32(iid)
	first := byte(v4 >> 24)
	switch {
	case first == 0, first == 10, first == 127, first >= 224:
		return false
	case first == 192 && byte(v4>>16) == 168:
		return false
	case first == 172 && byte(v4>>16)&0xf0 == 16:
		return false
	}
	// Require a nonzero host part beyond 16 bits to distinguish from
	// operator-structured 32-bit values; dotted quads in practice have
	// high-entropy low octets.
	return v4 > 0xffff
}

// isStructured flags IIDs that look operator-assigned rather than
// pseudorandom: a long run of zero nybbles (8 or more of the 16), or very
// few distinct nybble values. RFC 4941 privacy IIDs are near-uniform and
// fail both tests with overwhelming probability.
func isStructured(iid uint64) bool {
	var distinct uint16
	zeros := 0
	for i := 0; i < 16; i++ {
		nyb := (iid >> (60 - 4*i)) & 0xf
		distinct |= 1 << nyb
		if nyb == 0 {
			zeros++
		}
	}
	return zeros >= 8 || bits.OnesCount16(distinct) <= 4
}

// Summary tallies a population of addresses by Kind, the shape of the
// paper's Table 1 rows.
type Summary struct {
	Total  int
	ByKind map[Kind]int
}

// Summarize classifies every address and tallies the result.
func Summarize(addrs []ipaddr.Addr) Summary {
	s := Summary{Total: len(addrs), ByKind: make(map[Kind]int)}
	for _, a := range addrs {
		s.ByKind[Classify(a)]++
	}
	return s
}

// Native reports the count of addresses using native end-to-end transport
// (everything but the culled transition mechanisms), the paper's "Other
// addresses" row in Table 1.
func (s Summary) Native() int {
	return s.Total - s.ByKind[KindTeredo] - s.ByKind[Kind6to4] - s.ByKind[KindISATAP]
}
