package addrclass

import (
	"math/rand"
	"testing"

	"v6class/internal/ipaddr"
)

func a(t *testing.T, s string) ipaddr.Addr {
	t.Helper()
	x, err := ipaddr.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestClassifyKnownFormats(t *testing.T) {
	cases := []struct {
		addr string
		want Kind
	}{
		// Transition mechanisms.
		{"2001:0:4136:e378:8000:63bf:3fff:fdd2", KindTeredo},
		{"2002:c000:204::1", Kind6to4},
		{"2001:db8::5efe:c000:204", KindISATAP},     // 0000:5efe
		{"2001:db8::200:5efe:c000:204", KindISATAP}, // 0200:5efe
		// EUI-64 (paper Figure 1 (iii)).
		{"2001:db8:0:1cdf:21e:c2ff:fec0:11db", KindEUI64},
		// Low IID (Figure 1 (i)).
		{"2001:db8:10:1::103", KindLowIID},
		// Structured IID (Figure 1 (ii)).
		{"2001:db8:167:1109::10:901", KindStructuredIID},
		// Privacy / pseudorandom (Figure 1 (iv)).
		{"2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a", KindOther},
		// Embedded IPv4 convenience.
		{"2001:db8::c000:204", KindEmbeddedIPv4}, // ::192.0.2.4
		// 2001:db8::/32 must NOT be Teredo (2001::/32 is 2001:0::).
		{"2001:db8::1", KindLowIID},
	}
	for _, c := range cases {
		if got := Classify(a(t, c.addr)); got != c.want {
			t.Errorf("Classify(%s) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestTransitionPrecedence(t *testing.T) {
	// A 6to4 address whose IID happens to look EUI-64 must classify as 6to4:
	// the reserved prefix is authoritative.
	x := a(t, "2002:c000:204:1:21e:c2ff:fec0:11db")
	if got := Classify(x); got != Kind6to4 {
		t.Errorf("Classify = %v, want 6to4", got)
	}
	if !Kind6to4.IsTransition() || !KindTeredo.IsTransition() || !KindISATAP.IsTransition() {
		t.Error("transition kinds misreported")
	}
	if KindEUI64.IsTransition() || KindOther.IsTransition() {
		t.Error("non-transition kinds misreported")
	}
}

func TestEUI64MACRoundTrip(t *testing.T) {
	// 2001:db8:0:1cdf:21e:c2ff:fec0:11db embeds MAC 00:1e:c2:c0:11:db
	// (u bit: IID byte 0x02 ^ 0x02 = 0x00).
	x := a(t, "2001:db8:0:1cdf:21e:c2ff:fec0:11db")
	mac, ok := EUI64MAC(x)
	if !ok {
		t.Fatal("EUI64MAC should succeed")
	}
	if got := mac.String(); got != "00:1e:c2:c0:11:db" {
		t.Errorf("MAC = %s", got)
	}
	// Round trip through EUI64FromMAC.
	iid := EUI64FromMAC(mac)
	if iid != x.IID() {
		t.Errorf("EUI64FromMAC = %x, want %x", iid, x.IID())
	}
	// Non-EUI-64 must fail.
	if _, ok := EUI64MAC(a(t, "2001:db8::1")); ok {
		t.Error("EUI64MAC of low-IID address should fail")
	}
}

func TestEUI64FromMACPaperOutlier(t *testing.T) {
	// The paper's footnote: MAC 00:11:22:33:44:56 was the most prevalent
	// (duplicated) MAC. Verify the expansion we generate for it.
	mac := MAC{0x00, 0x11, 0x22, 0x33, 0x44, 0x56}
	iid := EUI64FromMAC(mac)
	x := ipaddr.AddrFrom128(a(t, "2001:db8::").Uint128()).WithIID(iid)
	if !IsEUI64(x) {
		t.Fatal("expansion should be EUI-64")
	}
	back, _ := EUI64MAC(x)
	if back != mac {
		t.Errorf("round trip = %v", back)
	}
	if x.String() != "2001:db8::211:22ff:fe33:4456" {
		t.Errorf("expanded = %s", x)
	}
}

func TestEmbedded6to4IPv4(t *testing.T) {
	// 2002:c000:0204::/48 embeds 192.0.2.4.
	v4, ok := Embedded6to4IPv4(a(t, "2002:c000:204::1"))
	if !ok || v4 != 0xc0000204 {
		t.Errorf("Embedded6to4IPv4 = %x, %v", v4, ok)
	}
	if _, ok := Embedded6to4IPv4(a(t, "2001:db8::1")); ok {
		t.Error("non-6to4 should fail")
	}
}

func TestEmbeddedISATAPIPv4(t *testing.T) {
	v4, ok := EmbeddedISATAPIPv4(a(t, "2001:db8::5efe:c000:204"))
	if !ok || v4 != 0xc0000204 {
		t.Errorf("EmbeddedISATAPIPv4 = %x, %v", v4, ok)
	}
	if _, ok := EmbeddedISATAPIPv4(a(t, "2001:db8::1")); ok {
		t.Error("non-ISATAP should fail")
	}
}

func TestEmbeddedIPv4Heuristic(t *testing.T) {
	// Private/special first octets must not be claimed.
	private := []string{
		"2001:db8::a00:1",    // 10.0.0.1
		"2001:db8::7f00:1",   // 127.0.0.1
		"2001:db8::c0a8:101", // 192.168.1.1
		"2001:db8::ac10:101", // 172.16.1.1
		"2001:db8::e000:1",   // 224.0.0.1
	}
	for _, s := range private {
		if got := Classify(a(t, s)); got == KindEmbeddedIPv4 {
			t.Errorf("Classify(%s) claimed embedded IPv4 for special range", s)
		}
	}
	if got := Classify(a(t, "2001:db8::801:203")); got != KindEmbeddedIPv4 { // 8.1.2.3
		t.Errorf("8.1.2.3 embed = %v", got)
	}
}

func TestPrivacyAddressesClassifyOther(t *testing.T) {
	// Pseudorandom IIDs must classify as Other with overwhelming
	// probability; test a sample of 10k.
	r := rand.New(rand.NewSource(4))
	net := a(t, "2001:db8:1:2::")
	other := 0
	const n = 10000
	for i := 0; i < n; i++ {
		iid := r.Uint64()
		// RFC 4941 clears the u bit (bit 70 of the address, bit 6 of the
		// IID's top byte).
		iid &^= 1 << 57
		if Classify(net.WithIID(iid)) == KindOther {
			other++
		}
	}
	if float64(other)/n < 0.99 {
		t.Errorf("only %d/%d random IIDs classified Other", other, n)
	}
}

func TestSummarize(t *testing.T) {
	addrs := []ipaddr.Addr{
		a(t, "2001:0:4136:e378:8000:63bf:3fff:fdd2"),   // teredo
		a(t, "2002:c000:204::1"),                       // 6to4
		a(t, "2002:c000:204::2"),                       // 6to4
		a(t, "2001:db8::5efe:c000:204"),                // isatap
		a(t, "2001:db8:0:1cdf:21e:c2ff:fec0:11db"),     // eui64
		a(t, "2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a"), // other
		a(t, "2001:db8:10:1::103"),                     // low-iid
	}
	s := Summarize(addrs)
	if s.Total != 7 {
		t.Errorf("Total = %d", s.Total)
	}
	if s.ByKind[Kind6to4] != 2 || s.ByKind[KindTeredo] != 1 || s.ByKind[KindISATAP] != 1 {
		t.Errorf("transition counts: %v", s.ByKind)
	}
	if got := s.Native(); got != 3 {
		t.Errorf("Native = %d, want 3", got)
	}
}

func TestKindString(t *testing.T) {
	if KindEUI64.String() != "eui64" || KindOther.String() != "other" {
		t.Error("kind names wrong")
	}
	if Kind(200).String() != "kind(200)" {
		t.Errorf("unknown kind = %s", Kind(200))
	}
}

func BenchmarkClassify(b *testing.B) {
	x := ipaddr.MustParseAddr("2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a")
	for i := 0; i < b.N; i++ {
		_ = Classify(x)
	}
}
