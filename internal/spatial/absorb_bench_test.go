package spatial

import (
	"math/rand"
	"testing"

	"v6class/internal/ipaddr"
)

// The incremental-build benchmarks: a live freeze carries each memoized
// population into the next generation by cloning the predecessor's set and
// absorbing only the day's delta, instead of rebuilding the whole trie.
// BenchmarkSpatialAbsorb is that path; BenchmarkSpatialAbsorbRebuild is
// the from-scratch comparator over the identical final population. The
// write path's acceptance bar is absorb ≥5x cheaper in both ns/op and
// allocs/op (the clone is two slab copies; the rebuild is one trie insert
// per address). Committed numbers live in BENCH_live_baseline.json.

const (
	absorbBaseN  = 200000 // predecessor population
	absorbDeltaN = 10000  // one day's newly observed addresses (5% churn)
)

// absorbFixtures builds the predecessor set, the day's delta set, and the
// flat address list of the final population.
func absorbFixtures() (base, delta *AddressSet, all []ipaddr.Addr) {
	r := rand.New(rand.NewSource(2))
	net := ipaddr.MustParseAddr("2001:db8::")
	all = make([]ipaddr.Addr, absorbBaseN+absorbDeltaN)
	for i := range all {
		all[i] = net.WithIID(r.Uint64())
	}
	base, delta = new(AddressSet), new(AddressSet)
	for _, a := range all[:absorbBaseN] {
		base.Add(a)
	}
	for _, a := range all[absorbBaseN:] {
		delta.Add(a)
	}
	return base, delta, all
}

func BenchmarkSpatialAbsorb(b *testing.B) {
	base, delta, _ := absorbFixtures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := base.Clone()
		out.Absorb(delta)
		if out.Len() != absorbBaseN+absorbDeltaN {
			b.Fatalf("absorbed set has %d keys", out.Len())
		}
	}
}

func BenchmarkSpatialAbsorbRebuild(b *testing.B) {
	_, _, all := absorbFixtures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s AddressSet
		for _, a := range all {
			s.Add(a)
		}
		if s.Len() != absorbBaseN+absorbDeltaN {
			b.Fatalf("rebuilt set has %d keys", s.Len())
		}
	}
}
