// Package spatial implements the spatial classification of Section 5.2 of
// Plonka & Berger (IMC 2015): Multi-Resolution Aggregate (MRA) count ratios
// over an address population, prefix-density classes ("n@/p-dense"), the
// aggregate population distributions of Kohler et al. used in Figure 3,
// and the MRA-signature classifier of signature.go.
//
// An AddressSet sits on the arena-backed counting trie of internal/trie.
// Populations are built either incrementally (Add/AddPrefix) or in bulk
// from streaming enumerations via BuildAddressSet/BuildPrefixSet, which
// feed the trie's partitioned parallel build: one worker per source sweep,
// items routed by top address bits into private sub-arenas, sub-roots
// grafted under a spine. Either way the resulting trie — and so every
// classification — is a pure function of the population. A built set is
// safe for unbounded concurrent readers; the module-root façade re-exports
// this package's types and lifts the bulk build to Engine.SpatialSet.
package spatial

import (
	"fmt"
	"iter"
	"math"
	"sort"

	"v6class/internal/ipaddr"
	"v6class/internal/trie"
)

// AddressSet is a population of observed addresses (or fixed-length
// prefixes) under spatial analysis. The zero value is an empty set.
type AddressSet struct {
	tr trie.Trie
}

// Add records one observation of address a. Repeated additions of the same
// address increase its observation count but not the population's distinct
// size.
func (s *AddressSet) Add(a ipaddr.Addr) { s.tr.AddAddr(a) }

// AddPrefix records one observation of a fixed-length aggregate, e.g. a /64;
// used when the population under analysis is a set of prefixes rather than
// full addresses (Figure 3's "/64s" curves).
func (s *AddressSet) AddPrefix(p ipaddr.Prefix) { s.tr.Add(p, 1) }

// Len returns the number of distinct addresses (or prefixes) in the set.
func (s *AddressSet) Len() int { return s.tr.Len() }

// Total returns the total observation count including repeats.
func (s *AddressSet) Total() uint64 { return s.tr.Total() }

// Trie exposes the underlying counting trie for advanced operations
// (aguri aggregation, custom walks).
func (s *AddressSet) Trie() *trie.Trie { return &s.tr }

// BuildAddressSet constructs an address population by consuming the given
// streams concurrently through the partitioned trie build (see
// trie.BuildFromSeq): parallelism is bounded by workers (<= 0 means
// GOMAXPROCS) and by the stream count, and the result is identical to
// sequential Add calls in any order. The streams are typically the
// engine's per-shard/per-row-range day-mask sweeps, which yield each
// address exactly once.
func BuildAddressSet(workers int, sources ...iter.Seq[ipaddr.Addr]) *AddressSet {
	srcs := make([]iter.Seq[trie.PrefixCount], len(sources))
	for i, src := range sources {
		srcs[i] = addrItems(src)
	}
	return &AddressSet{tr: *trie.BuildFromSeq(workers, srcs...)}
}

// BuildPrefixSet is BuildAddressSet for fixed-length aggregate populations
// (e.g. the active /64s of a day range).
func BuildPrefixSet(workers int, sources ...iter.Seq[ipaddr.Prefix]) *AddressSet {
	srcs := make([]iter.Seq[trie.PrefixCount], len(sources))
	for i, src := range sources {
		srcs[i] = prefixItems(src)
	}
	return &AddressSet{tr: *trie.BuildFromSeq(workers, srcs...)}
}

func addrItems(src iter.Seq[ipaddr.Addr]) iter.Seq[trie.PrefixCount] {
	return func(yield func(trie.PrefixCount) bool) {
		for a := range src {
			if !yield(trie.PrefixCount{Prefix: ipaddr.PrefixFrom(a, 128), Count: 1}) {
				return
			}
		}
	}
}

func prefixItems(src iter.Seq[ipaddr.Prefix]) iter.Seq[trie.PrefixCount] {
	return func(yield func(trie.PrefixCount) bool) {
		for p := range src {
			if !yield(trie.PrefixCount{Prefix: p, Count: 1}) {
				return
			}
		}
	}
}

// MRA holds the active-aggregate counts n_p of a population for every
// prefix length p in [0, 128], from which MRA count ratios are derived.
type MRA struct {
	// Counts[p] is n_p: the number of /p prefixes covering the set.
	Counts [129]uint64
	// N is the number of distinct items; equal to Counts[128] for full
	// address sets.
	N uint64
}

// MRA computes the multi-resolution aggregate counts of the set.
func (s *AddressSet) MRA() MRA {
	return MRA{Counts: s.tr.AggregateCounts(), N: uint64(s.tr.Len())}
}

// Ratio returns the MRA count ratio γ^k_p = n_{p+k} / n_p. The result is in
// [1, 2^k] for a non-empty set; it is 0 for an empty set or out-of-range
// arguments.
func (m MRA) Ratio(p, k int) float64 {
	if p < 0 || k <= 0 || p+k > 128 || m.Counts[p] == 0 {
		return 0
	}
	return float64(m.Counts[p+k]) / float64(m.Counts[p])
}

// RatioPoint is one plotted MRA ratio: the ratio γ^k_p at horizontal
// position p (the paper plots the ratio of segment [p, p+k) at x = p).
type RatioPoint struct {
	P     int
	Ratio float64
}

// Series returns the canonical ratio series for resolution k (1, 4, 8, or
// 16 in the paper): γ^k_p for p = 0, k, 2k, ..., 128-k. Empty sets yield
// all-zero ratios.
func (m MRA) Series(k int) []RatioPoint {
	if k <= 0 || 128%k != 0 {
		panic(fmt.Sprintf("spatial: resolution %d does not divide 128", k))
	}
	out := make([]RatioPoint, 0, 128/k)
	for p := 0; p+k <= 128; p += k {
		out = append(out, RatioPoint{P: p, Ratio: m.Ratio(p, k)})
	}
	return out
}

// DensityClass identifies the paper's "n@/p-dense" spatial class: prefixes
// of length P containing at least N observed addresses.
type DensityClass struct {
	N uint64
	P int
}

func (c DensityClass) String() string { return fmt.Sprintf("%d @ /%d", c.N, c.P) }

// DensityResult summarizes a density classification, mirroring a row of the
// paper's Table 3.
type DensityResult struct {
	Class DensityClass
	// Prefixes are the dense prefixes with their covered address counts.
	Prefixes []trie.PrefixCount
	// CoveredAddresses is the number of observed addresses inside dense
	// prefixes (Table 3's "Router Addresses" column).
	CoveredAddresses uint64
	// PossibleAddresses is the total address capacity of the dense
	// prefixes (Table 3's "Possible Addresses"), as a float64 because /p
	// capacities overflow uint64 for p < 64.
	PossibleAddresses float64
}

// Density returns the ratio of covered to possible addresses (Table 3's
// "Address Density"); 0 when no prefixes are dense.
func (r DensityResult) Density() float64 {
	if r.PossibleAddresses == 0 {
		return 0
	}
	return float64(r.CoveredAddresses) / r.PossibleAddresses
}

// DenseFixed computes the n@/p-dense class with the prefix length fixed at
// exactly P, the methodology behind Table 3.
func (s *AddressSet) DenseFixed(c DensityClass) DensityResult {
	return summarizeDense(c, s.tr.FixedLengthDense(c.N, c.P))
}

// DenseLeastSpecific computes the generalized density class via the
// densify operation: the least-specific non-overlapping prefixes meeting
// the class density (Section 5.2.3).
func (s *AddressSet) DenseLeastSpecific(c DensityClass) DensityResult {
	return summarizeDense(c, s.tr.DensePrefixes(c.N, c.P))
}

func summarizeDense(c DensityClass, prefixes []trie.PrefixCount) DensityResult {
	r := DensityResult{Class: c, Prefixes: prefixes}
	for _, pc := range prefixes {
		r.CoveredAddresses += pc.Count
		r.PossibleAddresses += prefixSizeFloat(pc.Prefix.Bits())
	}
	return r
}

// prefixSizeFloat returns 2^(128-bits): the address capacity of a /bits
// prefix. Ldexp sets the exponent directly — exact (powers of two are
// representable up to 2^128) and O(1).
func prefixSizeFloat(bits int) float64 {
	return math.Ldexp(1, 128-bits)
}

// TopAggregates returns the occupied /p aggregates of the set ranked by
// covered item count, largest first (ties in prefix order); k <= 0 returns
// all. It is the ranking behind the census and serve top-k queries.
func (s *AddressSet) TopAggregates(p, k int) []trie.PrefixCount {
	out := s.tr.FixedLengthDense(1, p)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Prefix.Cmp(out[j].Prefix) < 0
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// AggregatePopulations returns the per-/p-prefix item counts of the set —
// Kohler et al.'s aggregate population — for aggregate length p. Each
// element is the number of items in one occupied /p; feeding the result to
// stats.CCDF reproduces Figure 3's curves.
func (s *AddressSet) AggregatePopulations(p int) []uint64 {
	dense := s.tr.FixedLengthDense(1, p)
	out := make([]uint64, len(dense))
	for i, pc := range dense {
		out[i] = pc.Count
	}
	return out
}

// ScanTargets expands dense prefixes into the total number of probe-able
// addresses they span (the "Possible Addresses" a scanner would sweep),
// saturating at math.MaxUint64-representable sizes via float64. It also
// returns up to limit concrete example target prefixes for tooling output.
func ScanTargets(r DensityResult, limit int) (total float64, examples []ipaddr.Prefix) {
	total = r.PossibleAddresses
	for i := 0; i < len(r.Prefixes) && i < limit; i++ {
		examples = append(examples, r.Prefixes[i].Prefix)
	}
	return total, examples
}

// AguriProfile runs the aguri aggregation of Cho et al. with the threshold
// expressed as a fraction of total observations, the profiler's native
// parameterization.
func (s *AddressSet) AguriProfile(fraction float64) []trie.PrefixCount {
	if fraction <= 0 {
		fraction = 0.01
	}
	min := uint64(float64(s.Total()) * fraction)
	if min == 0 {
		min = 1
	}
	return s.tr.AguriAggregate(min)
}
