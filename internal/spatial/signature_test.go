package spatial

import (
	"math/rand"
	"testing"

	"v6class/internal/ipaddr"
)

// populations below mirror the synthetic operator plans so the classifier
// is tested against exactly the shapes it will meet.

func privacyPopulation(n int) *AddressSet {
	var s AddressSet
	r := rand.New(rand.NewSource(11))
	for subnet := 0; subnet < 32; subnet++ {
		net := ipaddr.AddrFromSegments([8]uint16{0x2001, 0xdb8, 0, uint16(subnet)})
		for h := 0; h < n/32+1; h++ {
			s.Add(net.WithIID(r.Uint64() &^ (1 << 57)))
		}
	}
	return &s
}

func densePopulation() *AddressSet {
	var s AddressSet
	base := ipaddr.MustParseAddr("2001:db8:100:64::1000")
	for i := 0; i < 100; i++ {
		s.Add(ipaddr.AddrFrom128(base.Uint128().Add64(uint64(i))))
	}
	return &s
}

func TestUBitNotch(t *testing.T) {
	if !privacyPopulation(2000).MRA().UBitNotch() {
		t.Error("privacy population should show the u-bit notch")
	}
	if densePopulation().MRA().UBitNotch() {
		t.Error("dense population should not show the notch")
	}
}

func TestSegmentWeightSumsToOne(t *testing.T) {
	m := privacyPopulation(1000).MRA()
	total := 0.0
	for p := 0; p < 128; p += 16 {
		total += m.SegmentWeight(p, p+16)
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("segment weights sum to %v", total)
	}
	if got := m.SegmentWeight(0, 128); got < 0.999 {
		t.Errorf("full-window weight = %v", got)
	}
	var empty AddressSet
	if got := empty.MRA().SegmentWeight(0, 128); got != 0 {
		t.Errorf("empty population weight = %v", got)
	}
}

func TestClassifySignaturePrivacy(t *testing.T) {
	if got := ClassifySignature(privacyPopulation(2000).MRA()); got != SigPrivacySparse {
		t.Errorf("privacy population = %v", got)
	}
}

func TestClassifySignatureDense(t *testing.T) {
	if got := ClassifySignature(densePopulation().MRA()); got != SigDensePacked {
		t.Errorf("dense population = %v", got)
	}
}

func TestClassifySignaturePool(t *testing.T) {
	// A saturated pool: contiguous /64s each holding one fixed-IID
	// address — the mobile-carrier shape.
	var s AddressSet
	base := ipaddr.MustParseAddr("2600:1000::")
	for slot := 0; slot < 4096; slot++ {
		net := base.Uint128()
		net.Hi += uint64(slot)
		s.Add(ipaddr.AddrFrom128(net).WithIID(uint64(1 + slot%6)))
	}
	if got := ClassifySignature(s.MRA()); got != SigPoolSaturated {
		t.Errorf("pool population = %v", got)
	}
}

func TestClassifySignatureEmbeddedIPv4(t *testing.T) {
	// 6to4: random embedded IPv4s, subnet 0, a fixed IID.
	var s AddressSet
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 2000; i++ {
		v4 := uint64(r.Uint32())
		net := uint64(0x2002)<<48 | v4<<16
		s.Add(addrFromNet(net, 1))
	}
	if got := ClassifySignature(s.MRA()); got != SigEmbeddedIPv4 {
		t.Errorf("6to4 population = %v", got)
	}
}

// addrFromNet assembles an address from its 64-bit halves.
func addrFromNet(net, iid uint64) ipaddr.Addr {
	a := ipaddr.AddrFromSegments([8]uint16{
		uint16(net >> 48), uint16(net >> 32), uint16(net >> 16), uint16(net),
	})
	return a.WithIID(iid)
}

func TestClassifySignatureStructured(t *testing.T) {
	// A university-like plan: few subnet values, a handful of stable
	// low-IID hosts per subnet (so deep bits neither random nor packed).
	var s AddressSet
	r := rand.New(rand.NewSource(17))
	for sub := 0; sub < 300; sub++ {
		net := uint64(0x2607f010)<<32 | uint64(sub%3)<<28 | uint64(r.Intn(200))<<16
		for h := 0; h < 2; h++ {
			s.Add(addrFromNet(net, uint64(0x100+r.Intn(64)*16)))
		}
	}
	if got := ClassifySignature(s.MRA()); got != SigStructuredSubnet {
		t.Errorf("structured population = %v", got)
	}
}

func TestClassifySignatureEmpty(t *testing.T) {
	var s AddressSet
	if got := ClassifySignature(s.MRA()); got != SigEmpty {
		t.Errorf("empty = %v", got)
	}
	s.Add(ipaddr.MustParseAddr("2001:db8::1"))
	if got := ClassifySignature(s.MRA()); got != SigEmpty {
		t.Errorf("tiny population = %v", got)
	}
}

func TestSignatureString(t *testing.T) {
	if SigPrivacySparse.String() != "privacy-sparse" || SigEmpty.String() != "empty" {
		t.Error("signature names wrong")
	}
	if Signature(99).String() != "signature(99)" {
		t.Error("unknown signature name wrong")
	}
}
