package spatial

// The incremental-build path mirroring trie.Clone/Absorb at the population
// level: a frozen generation's AddressSet becomes the next generation's by
// cloning the arena and absorbing a small delta set of newly observed keys,
// instead of a from-scratch BuildAddressSet over the whole population. The
// trie's canonical-shape guarantee carries over: the absorbed set is
// bit-identical to one built from scratch over the union.

// Clone returns a deep copy of the set; mutating the clone (Add, AddPrefix,
// Absorb) never disturbs the original.
func (s *AddressSet) Clone() *AddressSet {
	return &AddressSet{tr: *s.tr.Clone()}
}

// Absorb merges every item of delta into s, as if each had been added
// directly; delta is not modified. Keys present in both sets accumulate
// their observation counts, so delta sets meant to extend a distinct-key
// population must contain only keys absent from s.
func (s *AddressSet) Absorb(delta *AddressSet) {
	if delta == nil {
		return
	}
	s.tr.Absorb(&delta.tr)
}
