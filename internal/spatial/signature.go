package spatial

import (
	"fmt"
	"math"
)

// This file implements the future work deferred at the end of the paper's
// Section 5.2.1: "While defining MRA-based address classes is left for
// future work, we begin by developing spatial classification by identifying
// dense prefixes." Here the underlying (x, y) values of the MRA plot are
// turned into a prefix classifier: each population is labelled by the
// addressing practice its MRA signature reveals, mechanizing the visual
// reading of Figures 2 and 5.

// Signature is an MRA-derived spatial class for an address population
// (typically the addresses of one BGP prefix or operator).
type Signature uint8

const (
	// SigEmpty is a population too small to classify (fewer than
	// MinSignatureAddrs addresses).
	SigEmpty Signature = iota
	// SigPrivacySparse is the RFC 4941 shape of Figure 2a: IIDs are
	// pseudorandom, so single-bit ratios sit near 2 just after bit 64,
	// drop to 1 at the cleared "u" bit (bit 70), and flat-line at 1 in
	// the deep bits where every address is alone in its prefix.
	SigPrivacySparse
	// SigDensePacked is the Figure 5g shape: addresses numerically
	// adjacent in the low bits (static assignment or DHCPv6), with the
	// 112-128 segment carrying heavy aggregation.
	SigDensePacked
	// SigPoolSaturated is the Figure 5e mobile-carrier shape: the 44-64
	// bit segment is densely utilized by dynamic /64 pools.
	SigPoolSaturated
	// SigStructuredSubnet is the Figure 2a left-half shape without heavy
	// pool usage: moderate aggregation concentrated in the subnetting
	// bits (32-64), sparse IIDs below.
	SigStructuredSubnet
	// SigEmbeddedIPv4 is the Figure 5d 6to4 shape: aggregation dominated
	// by the embedded IPv4 address in bits 16-48.
	SigEmbeddedIPv4
)

var signatureNames = [...]string{
	SigEmpty:            "empty",
	SigPrivacySparse:    "privacy-sparse",
	SigDensePacked:      "dense-packed",
	SigPoolSaturated:    "pool-saturated",
	SigStructuredSubnet: "structured-subnet",
	SigEmbeddedIPv4:     "embedded-ipv4",
}

func (s Signature) String() string {
	if int(s) < len(signatureNames) {
		return signatureNames[s]
	}
	return fmt.Sprintf("signature(%d)", uint8(s))
}

// MinSignatureAddrs is the smallest population the signature classifier
// will label; smaller sets return SigEmpty.
const MinSignatureAddrs = 32

// UBitNotch reports whether the population shows the RFC 4941 "u bit
// cleared" notch: substantial splitting just after bit 64 but essentially
// none at bit 70.
func (m MRA) UBitNotch() bool {
	after64 := (m.Ratio(64, 1) + m.Ratio(65, 1) + m.Ratio(66, 1)) / 3
	return after64 > 1.5 && m.Ratio(70, 1) < 1.05
}

// SegmentWeight returns the fraction of the population's total log2
// "splitting mass" carried by the 16-bit segments within [from, to). The
// weights over the eight segments sum to 1 for a non-trivial population,
// because the product of the segment ratios is N.
func (m MRA) SegmentWeight(from, to int) float64 {
	total := 0.0
	window := 0.0
	for p := 0; p+16 <= 128; p += 16 {
		r := m.Ratio(p, 16)
		if r < 1 {
			return 0 // empty population
		}
		mass := log2(r)
		total += mass
		if p >= from && p+16 <= to {
			window += mass
		}
	}
	if total == 0 {
		return 0
	}
	return window / total
}

func log2(x float64) float64 { return math.Log2(x) }

// ClassifySignature labels a population by its MRA shape. Rules are
// applied most-specific first; they mirror the visual reading the paper
// gives for each figure.
func ClassifySignature(m MRA) Signature {
	if m.N < MinSignatureAddrs {
		return SigEmpty
	}
	// 6to4-style: the embedded IPv4 spans bits 16-48, so the 16-32
	// segment — fixed inside any ordinary allocation — splits heavily.
	if m.SegmentWeight(16, 32) > 0.25 && m.SegmentWeight(16, 48) > 0.5 {
		return SigEmbeddedIPv4
	}
	// Dense low-bit packing: the 112-128 segment carries a large share
	// and a strong absolute ratio.
	if m.Ratio(112, 16) >= 8 && m.SegmentWeight(112, 128) > 0.3 {
		return SigDensePacked
	}
	// Saturated dynamic pools: very heavy splitting in 48-64.
	if m.Ratio(48, 16) >= 64 {
		return SigPoolSaturated
	}
	// The privacy shape: the u-bit notch plus deep-bit sparsity.
	if m.UBitNotch() && m.Ratio(120, 1) < 1.1 {
		return SigPrivacySparse
	}
	// Otherwise: subnet-structured if the 32-64 window leads.
	if m.SegmentWeight(32, 64) >= 0.3 {
		return SigStructuredSubnet
	}
	return SigPrivacySparse
}
