package spatial

import (
	"math"
	"math/rand"
	"testing"

	"v6class/internal/ipaddr"
)

func a(t *testing.T, s string) ipaddr.Addr {
	t.Helper()
	x, err := ipaddr.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestMRARatioBounds(t *testing.T) {
	var s AddressSet
	r := rand.New(rand.NewSource(1))
	net := a(t, "2001:db8::")
	for i := 0; i < 1000; i++ {
		s.Add(net.WithIID(r.Uint64()))
	}
	m := s.MRA()
	for _, k := range []int{1, 4, 8, 16} {
		for _, pt := range m.Series(k) {
			if pt.Ratio < 1 || pt.Ratio > math.Pow(2, float64(k))+1e-9 {
				t.Errorf("γ^%d_%d = %v out of [1, 2^%d]", k, pt.P, pt.Ratio, k)
			}
		}
	}
}

// TestMRAProductInvariant checks the paper's note: for a given resolution k,
// the product of the ratios equals the total number of addresses in the set.
func TestMRAProductInvariant(t *testing.T) {
	var s AddressSet
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		var b [16]byte
		r.Read(b[:])
		b[0], b[1] = 0x20, 0x01
		s.Add(ipaddr.AddrFrom16(b))
	}
	m := s.MRA()
	for _, k := range []int{1, 4, 8, 16} {
		prod := 1.0
		for _, pt := range m.Series(k) {
			prod *= pt.Ratio
		}
		if math.Abs(prod-float64(m.N))/float64(m.N) > 1e-9 {
			t.Errorf("k=%d: product of ratios = %v, want %d", k, prod, m.N)
		}
	}
}

// TestPrivacySignature reproduces the Figure 2a discussion: many privacy
// addresses per /64 make the single-bit ratio ~2 just after bit 64, with a
// drop to ~1 at bit 70 (the cleared "u" bit), then a decline to 1 as
// prefixes empty out.
func TestPrivacySignature(t *testing.T) {
	var s AddressSet
	r := rand.New(rand.NewSource(3))
	// 64 /64s x 200 pseudorandom-IID hosts; u bit (IID bit 6, address bit
	// 70) cleared per RFC 4941.
	for subnet := 0; subnet < 64; subnet++ {
		net := ipaddr.AddrFromSegments([8]uint16{0x2001, 0x0db8, 0, uint16(subnet)})
		for h := 0; h < 200; h++ {
			iid := r.Uint64() &^ (1 << 57) // clear u bit
			s.Add(net.WithIID(iid))
		}
	}
	m := s.MRA()
	// Ratios for bits 64..69 should be near 2.
	for p := 64; p < 70; p++ {
		if got := m.Ratio(p, 1); got < 1.9 {
			t.Errorf("γ_%d = %v, want ~2 for dense privacy population", p, got)
		}
	}
	// Bit 70 ("u" bit cleared everywhere) must not split: ratio 1.
	if got := m.Ratio(70, 1); got != 1 {
		t.Errorf("γ_70 = %v, want exactly 1 (u bit cleared)", got)
	}
	// Deep bits: every address alone in its prefix; ratio returns to 1.
	if got := m.Ratio(120, 1); got > 1.001 {
		t.Errorf("γ_120 = %v, want ~1", got)
	}
}

func TestDensePackedSignature(t *testing.T) {
	// The Figure 2b / 5g scenario: addresses tightly packed in the low 16
	// bits produce prominent ratios in the 112-128 segment.
	var s AddressSet
	base := a(t, "2001:db8:10:8::")
	for i := 0; i < 256; i++ {
		s.Add(ipaddr.AddrFrom128(base.Uint128().Add64(uint64(i))))
	}
	m := s.MRA()
	if got := m.Ratio(112, 16); got < 255 {
		t.Errorf("γ^16_112 = %v, want ~256 for a packed /112", got)
	}
	if got := m.Ratio(96, 16); got != 1 {
		t.Errorf("γ^16_96 = %v, want 1", got)
	}
}

func TestSeriesPanicsOnBadResolution(t *testing.T) {
	var s AddressSet
	s.Add(a(t, "2001:db8::1"))
	m := s.MRA()
	defer func() {
		if recover() == nil {
			t.Error("Series(5) should panic (5 does not divide 128)")
		}
	}()
	m.Series(5)
}

func TestEmptySetMRA(t *testing.T) {
	var s AddressSet
	m := s.MRA()
	if m.N != 0 {
		t.Error("empty set N != 0")
	}
	if got := m.Ratio(64, 1); got != 0 {
		t.Errorf("empty ratio = %v", got)
	}
	for _, pt := range m.Series(16) {
		if pt.Ratio != 0 {
			t.Errorf("empty series ratio at %d = %v", pt.P, pt.Ratio)
		}
	}
}

func TestDenseFixedTable3Arithmetic(t *testing.T) {
	// Build 3 dense /124 blocks of 4 addresses each plus scattered noise,
	// then verify the Table 3 row arithmetic: possible = prefixes * 16.
	var s AddressSet
	bases := []string{"2001:db8::10", "2001:db8::40", "2001:db8:0:1::"}
	for _, b := range bases {
		x := a(t, b)
		for i := 0; i < 4; i++ {
			s.Add(ipaddr.AddrFrom128(x.Uint128().Add64(uint64(i))))
		}
	}
	s.Add(a(t, "2600::1")) // lone noise address
	r := s.DenseFixed(DensityClass{N: 2, P: 124})
	if len(r.Prefixes) != 3 {
		t.Fatalf("dense prefixes = %v", r.Prefixes)
	}
	if r.CoveredAddresses != 12 {
		t.Errorf("covered = %d, want 12", r.CoveredAddresses)
	}
	if r.PossibleAddresses != 48 {
		t.Errorf("possible = %v, want 48", r.PossibleAddresses)
	}
	if math.Abs(r.Density()-0.25) > 1e-12 {
		t.Errorf("density = %v, want 0.25", r.Density())
	}
	if r.Class.String() != "2 @ /124" {
		t.Errorf("class string = %q", r.Class)
	}
}

func TestDenseLeastSpecific(t *testing.T) {
	var s AddressSet
	base := a(t, "2001:db8::")
	for i := 0; i < 64; i++ {
		s.Add(ipaddr.AddrFrom128(base.Uint128().Add64(uint64(i))))
	}
	r := s.DenseLeastSpecific(DensityClass{N: 2, P: 122})
	if len(r.Prefixes) != 1 {
		t.Fatalf("prefixes = %v", r.Prefixes)
	}
	if got := r.Prefixes[0].Prefix.Bits(); got > 122 {
		t.Errorf("least-specific should be <= /122, got /%d", got)
	}
	if r.CoveredAddresses != 64 {
		t.Errorf("covered = %d", r.CoveredAddresses)
	}
}

func TestAggregatePopulations(t *testing.T) {
	var s AddressSet
	// Two /48s: one with 3 addresses, one with 1.
	for _, x := range []string{"2001:db8:1::1", "2001:db8:1::2", "2001:db8:1:2::3", "2001:db8:2::1"} {
		s.Add(a(t, x))
	}
	pops := s.AggregatePopulations(48)
	if len(pops) != 2 {
		t.Fatalf("pops = %v", pops)
	}
	// Sorted by prefix: 2001:db8:1::/48 first with 3, then /48 with 1.
	if pops[0] != 3 || pops[1] != 1 {
		t.Errorf("pops = %v, want [3 1]", pops)
	}
}

func TestAggregatePopulationsOfPrefixSet(t *testing.T) {
	// Population of /64s aggregated at /48: Figure 3's "48-agg. of /64s".
	var s AddressSet
	for _, x := range []string{"2001:db8:1:1::/64", "2001:db8:1:2::/64", "2001:db8:2:1::/64"} {
		p, err := ipaddr.ParsePrefix(x)
		if err != nil {
			t.Fatal(err)
		}
		s.AddPrefix(p)
	}
	pops := s.AggregatePopulations(48)
	if len(pops) != 2 || pops[0] != 2 || pops[1] != 1 {
		t.Errorf("pops = %v, want [2 1]", pops)
	}
}

func TestScanTargets(t *testing.T) {
	var s AddressSet
	base := a(t, "2001:db8::")
	for i := 0; i < 4; i++ {
		s.Add(ipaddr.AddrFrom128(base.Uint128().Add64(uint64(i))))
	}
	r := s.DenseFixed(DensityClass{N: 2, P: 112})
	total, examples := ScanTargets(r, 10)
	if total != 65536 {
		t.Errorf("total = %v", total)
	}
	if len(examples) != 1 || examples[0].String() != "2001:db8::/112" {
		t.Errorf("examples = %v", examples)
	}
	// Limit smaller than result set.
	_, ex0 := ScanTargets(r, 0)
	if len(ex0) != 0 {
		t.Errorf("limit 0 gave %v", ex0)
	}
}

func TestAddressSetAccessors(t *testing.T) {
	var s AddressSet
	s.Add(a(t, "2001:db8::1"))
	s.Add(a(t, "2001:db8::1"))
	s.Add(a(t, "2001:db8::2"))
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Total() != 3 {
		t.Errorf("Total = %d", s.Total())
	}
	if s.Trie() == nil {
		t.Error("Trie accessor nil")
	}
}

// BenchmarkMRA100k measures the end-to-end spatial-classification unit: a
// 100k-address population built from scratch and its 129 aggregate counts
// computed, per iteration. Construction dominates, so allocs/op tracks the
// trie's node-allocation strategy (the acceptance gauge of the arena trie;
// pre-arena numbers are committed in BENCH_spatial_baseline.json).
func BenchmarkMRA100k(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	net := ipaddr.MustParseAddr("2001:db8::")
	addrs := make([]ipaddr.Addr, 100000)
	for i := range addrs {
		addrs[i] = net.WithIID(r.Uint64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s AddressSet
		for _, a := range addrs {
			s.Add(a)
		}
		if m := s.MRA(); m.N == 0 {
			b.Fatal("bad result")
		}
	}
}

func TestAguriProfile(t *testing.T) {
	var s AddressSet
	base := a(t, "2001:db8::")
	for i := 0; i < 90; i++ {
		s.Add(ipaddr.AddrFrom128(base.Uint128().Add64(uint64(i))))
	}
	s.Add(a(t, "2600::1"))
	prof := s.AguriProfile(0.5)
	var total uint64
	for _, pc := range prof {
		total += pc.Count
	}
	if total != s.Total() {
		t.Errorf("profile total %d != %d", total, s.Total())
	}
	// Some non-root prefix must meet the threshold (45 of 91 observations).
	found := false
	for _, pc := range prof {
		if pc.Prefix.Bits() > 0 && pc.Count >= 45 {
			found = true
		}
	}
	if !found {
		t.Errorf("no prefix met the aguri threshold in %v", prof)
	}
	// Degenerate fraction falls back to a sane default.
	if got := s.AguriProfile(0); len(got) == 0 {
		t.Error("zero fraction should still profile")
	}
}
