// Package merge provides ordered k-way merging of sorted streaming
// iterators. It is the gather half of every cross-shard and cross-backend
// ordered enumeration: each shard (or cluster backend) sweeps its own rows
// in key order, and a heap merge over the per-source heads yields one
// globally ordered stream without materializing any source.
package merge

import (
	"container/heap"
	"iter"
)

// Ordered merges already-sorted sequences into one sorted sequence.
//
// cmp must be a total order and every seq must already yield its elements
// in ascending cmp order; the merged sequence is then globally ascending.
// Duplicates are preserved — ties between sources yield in source index
// order, so the merge is deterministic. The result is re-iterable: each
// range restarts every source from its beginning.
//
// The merge is streaming: at any moment only one pending element per
// source is held (via iter.Pull), so merging k shards costs O(k) space and
// O(log k) comparisons per element regardless of stream length. An early
// break from the consumer stops every source iterator.
func Ordered[T any](cmp func(a, b T) int, seqs ...iter.Seq[T]) iter.Seq[T] {
	if len(seqs) == 1 {
		return seqs[0]
	}
	return func(yield func(T) bool) {
		h := &mergeHeap[T]{cmp: cmp}
		stops := make([]func(), 0, len(seqs))
		defer func() {
			for _, stop := range stops {
				stop()
			}
		}()
		for i, s := range seqs {
			if s == nil {
				continue
			}
			next, stop := iter.Pull(s)
			stops = append(stops, stop)
			if v, ok := next(); ok {
				h.items = append(h.items, head[T]{v: v, src: i, next: next})
			}
		}
		heap.Init(h)
		for h.Len() > 0 {
			it := h.items[0]
			if !yield(it.v) {
				return
			}
			if v, ok := it.next(); ok {
				h.items[0].v = v
				heap.Fix(h, 0)
			} else {
				heap.Pop(h)
			}
		}
	}
}

// OrderedUnique is Ordered with equal elements collapsed: when several
// sources carry the same element, it is yielded exactly once. The sources
// must each be duplicate-free for the output to be a set.
func OrderedUnique[T any](cmp func(a, b T) int, seqs ...iter.Seq[T]) iter.Seq[T] {
	src := Ordered(cmp, seqs...)
	return func(yield func(T) bool) {
		var last T
		have := false
		for v := range src {
			if have && cmp(v, last) == 0 {
				continue
			}
			last, have = v, true
			if !yield(v) {
				return
			}
		}
	}
}

// head is one source's pending element inside the merge heap.
type head[T any] struct {
	v    T
	src  int
	next func() (T, bool)
}

type mergeHeap[T any] struct {
	cmp   func(a, b T) int
	items []head[T]
}

func (h *mergeHeap[T]) Len() int { return len(h.items) }

func (h *mergeHeap[T]) Less(i, j int) bool {
	if c := h.cmp(h.items[i].v, h.items[j].v); c != 0 {
		return c < 0
	}
	return h.items[i].src < h.items[j].src
}

func (h *mergeHeap[T]) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *mergeHeap[T]) Push(x any) { h.items = append(h.items, x.(head[T])) }

func (h *mergeHeap[T]) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
