package merge

import (
	"cmp"
	"iter"
	"math/rand"
	"slices"
	"testing"
)

func seqOf(xs ...int) iter.Seq[int] {
	return func(yield func(int) bool) {
		for _, x := range xs {
			if !yield(x) {
				return
			}
		}
	}
}

func TestOrderedBasic(t *testing.T) {
	got := slices.Collect(Ordered(cmp.Compare[int],
		seqOf(1, 4, 9),
		seqOf(2, 4, 8, 16),
		seqOf(),
		seqOf(3),
	))
	want := []int{1, 2, 3, 4, 4, 8, 9, 16}
	if !slices.Equal(got, want) {
		t.Fatalf("Ordered = %v, want %v", got, want)
	}
}

func TestOrderedRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(6)
		var all []int
		seqs := make([]iter.Seq[int], k)
		for i := range seqs {
			n := rng.Intn(20)
			xs := make([]int, n)
			for j := range xs {
				xs[j] = rng.Intn(50)
			}
			slices.Sort(xs)
			all = append(all, xs...)
			seqs[i] = seqOf(xs...)
		}
		slices.Sort(all)
		got := slices.Collect(Ordered(cmp.Compare[int], seqs...))
		if !slices.Equal(got, all) {
			t.Fatalf("trial %d: Ordered = %v, want %v", trial, got, all)
		}
	}
}

func TestOrderedReiterable(t *testing.T) {
	s := Ordered(cmp.Compare[int], seqOf(1, 3), seqOf(2))
	first := slices.Collect(s)
	second := slices.Collect(s)
	if !slices.Equal(first, second) {
		t.Fatalf("second iteration %v differs from first %v", second, first)
	}
}

func TestOrderedEarlyBreak(t *testing.T) {
	s := Ordered(cmp.Compare[int], seqOf(1, 3, 5), seqOf(2, 4, 6))
	var got []int
	for v := range s {
		got = append(got, v)
		if len(got) == 3 {
			break
		}
	}
	if want := []int{1, 2, 3}; !slices.Equal(got, want) {
		t.Fatalf("early break collected %v, want %v", got, want)
	}
}

func TestOrderedUnique(t *testing.T) {
	got := slices.Collect(OrderedUnique(cmp.Compare[int],
		seqOf(1, 2, 5),
		seqOf(2, 3, 5),
		seqOf(5),
	))
	want := []int{1, 2, 3, 5}
	if !slices.Equal(got, want) {
		t.Fatalf("OrderedUnique = %v, want %v", got, want)
	}
}

func TestOrderedEmpty(t *testing.T) {
	if got := slices.Collect(Ordered(cmp.Compare[int])); len(got) != 0 {
		t.Fatalf("empty merge yielded %v", got)
	}
}
