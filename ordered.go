package v6class

import (
	"fmt"
	"iter"

	"v6class/internal/core"
	"v6class/internal/merge"
)

// Ordered enumeration surface of the local engine, plus the generic merge
// helper the cluster tier composes per-backend ordered streams with. The
// total order is documented on the Engine interface: addresses ascend
// numerically, prefixes by (base address, prefix length). Under the hood
// the sequential engine sorts one memoized row permutation and the sharded
// engine k-way heap-merges per-shard sorted sweeps, so a million-key
// enumeration still allocates nothing per element.

// MergeOrdered merges already-sorted iterators into one sorted iterator
// with a k-way heap merge: O(k) space, O(log k) comparisons per element,
// streaming (an early break stops every source). cmp must be a total order
// and every source must already be ascending under it. Ties yield in
// source order, so the merge is deterministic — the property that lets a
// cluster coordinator gather per-backend ordered pages into one stream
// that is byte-identical to a single-box enumeration. Addr.Cmp and
// Prefix.Cmp are the canonical comparators for the key streams.
func MergeOrdered[T any](cmp func(a, b T) int, seqs ...iter.Seq[T]) iter.Seq[T] {
	return merge.Ordered(cmp, seqs...)
}

// checkAfter validates a resumption key against the population: /128 for
// Addresses, /64 for Prefixes64 — a mismatched key would silently resume
// the wrong stream.
func checkAfter(pop Population, after Prefix) error {
	want := 128
	if pop == Prefixes64 {
		want = 64
	}
	if after.Bits() != want {
		return fmt.Errorf("%w: resume key %v of a /%d population", ErrConfig, after, want)
	}
	return nil
}

func (e *engine) KeysOrdered(pop Population, days ...int) (iter.Seq[Prefix], error) {
	if err := e.popQuery(pop); err != nil {
		return nil, err
	}
	return e.keysOrdered(pop, nil, nil, days), nil
}

func (e *engine) KeysOrderedAfter(pop Population, after Prefix, days ...int) (iter.Seq[Prefix], error) {
	if err := e.popQuery(pop); err != nil {
		return nil, err
	}
	if err := checkAfter(pop, after); err != nil {
		return nil, err
	}
	if pop == Prefixes64 {
		return e.keysOrdered(pop, nil, &after, days), nil
	}
	a := after.Addr()
	return e.keysOrdered(pop, &a, nil, days), nil
}

// keysOrdered dispatches to the population's ordered sweep; exactly one of
// afterAddr/afterP64 may be set, matching pop.
func (e *engine) keysOrdered(pop Population, afterAddr *Addr, afterP64 *Prefix, days []int) iter.Seq[Prefix] {
	if pop == Prefixes64 {
		return e.a.Prefix64sOrderedSeq(days, afterP64)
	}
	return prefixed(e.a.AddrsOrderedSeq(days, afterAddr))
}

func (e *engine) LifetimesOrdered(pop Population) (iter.Seq2[Prefix, Activity], error) {
	if err := e.popQuery(pop); err != nil {
		return nil, err
	}
	return e.lifetimesOrdered(pop, nil, nil), nil
}

func (e *engine) LifetimesOrderedAfter(pop Population, after Prefix) (iter.Seq2[Prefix, Activity], error) {
	if err := e.popQuery(pop); err != nil {
		return nil, err
	}
	if err := checkAfter(pop, after); err != nil {
		return nil, err
	}
	if pop == Prefixes64 {
		return e.lifetimesOrdered(pop, nil, &after), nil
	}
	a := after.Addr()
	return e.lifetimesOrdered(pop, &a, nil), nil
}

func (e *engine) lifetimesOrdered(pop Population, afterAddr *Addr, afterP64 *Prefix) iter.Seq2[Prefix, Activity] {
	if pop == Prefixes64 {
		return e.a.Prefix64LifetimesOrderedSeq(afterP64)
	}
	src := e.a.AddrLifetimesOrderedSeq(afterAddr)
	return func(yield func(Prefix, Activity) bool) {
		for a, act := range src {
			if !yield(PrefixFrom(a, 128), act) {
				return
			}
		}
	}
}

func (e *engine) StableAddrsOrdered(ref, n int) (iter.Seq[Addr], error) {
	if err := e.queryable(); err != nil {
		return nil, err
	}
	return e.a.StableAddrsOrderedSeq(ref, n, e.opts, nil), nil
}

func (e *engine) StableAddrsOrderedAfter(ref, n int, after Addr) (iter.Seq[Addr], error) {
	if err := e.queryable(); err != nil {
		return nil, err
	}
	return e.a.StableAddrsOrderedSeq(ref, n, e.opts, &after), nil
}

func (e *engine) ReturnCounts(pop Population, from, to, maxGap int) (num, den []int, err error) {
	if err := e.popQuery(pop); err != nil {
		return nil, nil, err
	}
	if maxGap < 0 {
		return nil, nil, fmt.Errorf("%w: negative maxGap %d", ErrConfig, maxGap)
	}
	num, den = e.a.ReturnCounts(pop, from, to, maxGap)
	return num, den, nil
}

// LongestStablePrefixesFrom computes the Section 7.2 longest-stable-prefix
// report from two explicit address streams (period A and period B), each
// yielding every address exactly once. This is the engine-agnostic form of
// Engine.LongestStablePrefixes: a cluster coordinator feeds it the merged
// per-backend ordered enumerations, since per-backend reports cannot be
// combined after the fact.
func LongestStablePrefixesFrom(periodA, periodB iter.Seq[Addr], minBits int, minSupport uint64) []LongestStablePrefix {
	return core.LongestStablePrefixesFrom(periodA, periodB, minBits, minSupport)
}
