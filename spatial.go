package v6class

import (
	"runtime"

	"v6class/internal/spatial"
	"v6class/internal/trie"
)

// The spatial façade: the Section 5.2 classification surface lifted to the
// module root, so no main package needs internal/spatial. An AddressSet is
// built either incrementally (Add/AddPrefix on the zero value) or in one
// shot from a frozen Engine via SpatialSet, which partitions the engine's
// row sweeps across a bounded worker pool and assembles the arena trie in
// parallel. Aliases (not definitions) keep the façade and the internal
// layers interchangeable within the module.

// AddressSet is a population of observed addresses (or fixed-length
// prefixes) under spatial analysis: MRA aggregate counts, n@/p-dense
// classes, aguri profiles. The zero value is an empty set ready for Add.
type AddressSet = spatial.AddressSet

// MRAResult holds the active-aggregate counts n_p of a population for every
// prefix length p in [0, 128], from which MRA count ratios, ratio series
// and signatures are derived.
type MRAResult = spatial.MRA

// RatioPoint is one plotted MRA ratio: γ^k_p at horizontal position p.
type RatioPoint = spatial.RatioPoint

// DensityClass identifies the paper's "n@/p-dense" spatial class: prefixes
// of length P containing at least N observed addresses.
type DensityClass = spatial.DensityClass

// DensityResult summarizes a density classification (a Table 3 row).
type DensityResult = spatial.DensityResult

// PrefixCount pairs a prefix with an observation count; it is the element
// type of densification and aggregation results.
type PrefixCount = trie.PrefixCount

// Signature is an MRA-derived spatial class for an address population,
// mechanizing the visual reading of the paper's Figures 2 and 5.
type Signature = spatial.Signature

// The signature classes (see internal/spatial for the figure each mirrors).
const (
	SigEmpty            = spatial.SigEmpty
	SigPrivacySparse    = spatial.SigPrivacySparse
	SigDensePacked      = spatial.SigDensePacked
	SigPoolSaturated    = spatial.SigPoolSaturated
	SigStructuredSubnet = spatial.SigStructuredSubnet
	SigEmbeddedIPv4     = spatial.SigEmbeddedIPv4
)

// MinSignatureAddrs is the smallest population ClassifySignature will
// label; smaller sets return SigEmpty.
const MinSignatureAddrs = spatial.MinSignatureAddrs

// ClassifySignature labels a population by its MRA shape.
func ClassifySignature(m MRAResult) Signature { return spatial.ClassifySignature(m) }

// ScanTargets expands dense prefixes into the total number of probe-able
// addresses they span, plus up to limit concrete example prefixes.
func ScanTargets(r DensityResult, limit int) (total float64, examples []Prefix) {
	return spatial.ScanTargets(r, limit)
}

// SpatialSet builds the spatial population of the selected kind active on
// at least one of the given days: native addresses for Addresses, distinct
// /64s for Prefixes64. Each distinct key counts once however many of the
// days it was active (the day-mask sweeps deduplicate by construction).
//
// The underlying trie is assembled by the partitioned parallel build —
// every worker consumes its own shard/row-range sweep — but a radix trie's
// shape is a pure function of the item set, so the result is bit-identical
// to sequential insertion. The returned set is immutable in practice
// (callers must not Add to it) and safe for concurrent readers.
func (e *engine) SpatialSet(pop Population, days ...int) (*AddressSet, error) {
	if err := e.popQuery(pop); err != nil {
		return nil, err
	}
	workers := runtime.GOMAXPROCS(0)
	if pop == Prefixes64 {
		return spatial.BuildPrefixSet(workers, e.a.Prefix64sActiveAnySeqs(workers, days...)...), nil
	}
	return spatial.BuildAddressSet(workers, e.a.AddrsActiveAnySeqs(workers, days...)...), nil
}
