package v6class

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"v6class/internal/core"
)

// Persistence at the façade: Open/Read restore an Engine from a snapshot
// written by Save/WriteTo (the format is engine-agnostic — either
// implementation reads either's snapshots), selecting the implementation
// from the same functional options New takes. An opened engine is still
// ingesting — extend it with more days and Save again (the daily-pipeline
// workflow), or Freeze immediately to query.
//
// Two snapshot formats exist. Save and WriteTo emit the v2 section-table
// format, whose payload sections are the engines' in-memory layouts: Open
// maps (or reads) a v2 file in one step and adopts the sections in place
// instead of decoding key by key. The legacy v1 stream format remains fully
// supported — Open and Read sniff the leading magic and accept either — and
// SaveSnapshot/WriteSnapshot write it on request for older readers. See the
// package documentation's persistence-format section for the layouts.

// Open restores an Engine from a snapshot file. WithStudyDays and
// WithKeepTransition are rejected: both come from the snapshot.
//
// A v2 snapshot opens O(1) in the census size: the file is memory-mapped
// where the platform supports it (private, copy-on-write — later ingestion
// never touches the file) and read whole otherwise, and the engine adopts
// the mapped sections directly. Use Read to force the streaming path.
func Open(path string, opts ...Option) (Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("v6class: opening snapshot: %w", err)
	}
	defer f.Close()
	var magic [16]byte
	if n, _ := io.ReadFull(f, magic[:]); n == len(magic) && core.SnapshotVersion(magic[:]) == 2 {
		eng, err := openV2(f, opts)
		if err != nil {
			return nil, fmt.Errorf("v6class: reading snapshot %s: %w", path, err)
		}
		return eng, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("v6class: opening snapshot: %w", err)
	}
	eng, err := Read(f, opts...)
	if err != nil {
		return nil, fmt.Errorf("v6class: reading snapshot %s: %w", path, err)
	}
	return eng, nil
}

// openV2 opens a v2 snapshot file by mapping (preferred) or reading it
// whole, then attaching the selected engine to the image.
func openV2(f *os.File, opts []Option) (Engine, error) {
	cfg, err := resolve(opts, true)
	if err != nil {
		return nil, err
	}
	data, holder, mapped := core.MapFile(f)
	if !mapped {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		if data, err = io.ReadAll(f); err != nil {
			return nil, err
		}
	}
	e := &engine{opts: cfg.stability, keep: cfg.macFilter}
	if cfg.sequential {
		// The sequential engine aliases the image; holder pins the mapping
		// for the engine's lifetime.
		c, err := core.OpenCensusBytes(data, holder)
		if err != nil {
			return nil, err
		}
		e.seq, e.a = c, c
		return e, nil
	}
	// The sharded engine scatters rows into its shards — the image is not
	// referenced afterwards, so a mapping unmaps when holder is collected.
	c, err := core.OpenShardedCensusBytes(data, cfg.shards, cfg.workers)
	if err != nil {
		return nil, err
	}
	e.sh, e.a = c, c
	return e, nil
}

// Read restores an Engine from a snapshot stream; see Open.
func Read(r io.Reader, opts ...Option) (Engine, error) {
	cfg, err := resolve(opts, true)
	if err != nil {
		return nil, err
	}
	e := &engine{opts: cfg.stability, keep: cfg.macFilter}
	if cfg.sequential {
		c, err := core.ReadCensus(r)
		if err != nil {
			return nil, err
		}
		e.seq, e.a = c, c
		return e, nil
	}
	c, err := core.ReadShardedCensusN(r, cfg.shards, cfg.workers)
	if err != nil {
		return nil, err
	}
	e.sh, e.a = c, c
	return e, nil
}

func (e *engine) WriteTo(w io.Writer) (int64, error) {
	return e.a.WriteTo(w)
}

// Save writes the snapshot (v2 format) to a temp file in path's directory
// and renames it over path, so a failed or interrupted write can never
// destroy an existing snapshot. The file lands world-readable (0644), the
// conventional snapshot mode for downstream serving and backups. To persist
// the legacy v1 format use SaveSnapshot.
func (e *engine) Save(path string) error {
	return saveAtomic(path, e.a.WriteTo)
}

// saveAtomic implements the temp-file-plus-rename snapshot write around any
// serializer.
func saveAtomic(path string, write func(io.Writer) (int64, error)) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".v6class-state-*")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := write(tmp); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// SnapshotFormat selects the on-disk snapshot format for SaveSnapshot and
// WriteSnapshot.
type SnapshotFormat int

const (
	// FormatDefault is the library's current default format (v2).
	FormatDefault SnapshotFormat = iota
	// FormatV1 is the legacy per-key stream format, readable by pre-v2
	// releases.
	FormatV1
	// FormatV2 is the section-table format Open maps in O(1).
	FormatV2
)

// v1Writer is satisfied by engines that can emit the legacy stream format.
type v1Writer interface {
	WriteToV1(w io.Writer) (int64, error)
}

// WriteSnapshot serializes an engine's snapshot in an explicit format.
// FormatV1 requires a local engine (sequential or sharded); remote engines
// stream their backend's format and return ErrConfig for it.
func WriteSnapshot(eng Engine, w io.Writer, format SnapshotFormat) (int64, error) {
	switch format {
	case FormatDefault, FormatV2:
		return eng.WriteTo(w)
	case FormatV1:
		if e, ok := eng.(*engine); ok {
			if v1, ok := e.a.(v1Writer); ok {
				return v1.WriteToV1(w)
			}
		}
		return 0, fmt.Errorf("%w: engine cannot write snapshot format v1", ErrConfig)
	}
	return 0, fmt.Errorf("%w: unknown snapshot format %d", ErrConfig, format)
}

// SaveSnapshot is Save with an explicit format choice, with the same
// atomic temp-file-plus-rename write.
func SaveSnapshot(eng Engine, path string, format SnapshotFormat) error {
	if format == FormatDefault || format == FormatV2 {
		return eng.Save(path)
	}
	return saveAtomic(path, func(w io.Writer) (int64, error) {
		return WriteSnapshot(eng, w, format)
	})
}

// SnapshotInfo describes a snapshot file without opening it.
type SnapshotInfo struct {
	// Version is the snapshot format version (1 or 2).
	Version int
	// Size is the file size in bytes.
	Size int64
}

// SniffSnapshot inspects a snapshot file's magic and size. Files that are
// not census snapshots return an error.
func SniffSnapshot(path string) (SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("v6class: opening snapshot: %w", err)
	}
	defer f.Close()
	var magic [16]byte
	n, _ := io.ReadFull(f, magic[:])
	v := core.SnapshotVersion(magic[:n])
	if v == 0 {
		return SnapshotInfo{}, fmt.Errorf("v6class: %s is not a census snapshot", path)
	}
	fi, err := f.Stat()
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("v6class: inspecting snapshot: %w", err)
	}
	return SnapshotInfo{Version: v, Size: fi.Size()}, nil
}
