package v6class

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"v6class/internal/core"
)

// Persistence at the façade: Open/Read restore an Engine from a snapshot
// written by Save/WriteTo (the format is engine-agnostic — either
// implementation reads either's snapshots), selecting the implementation
// from the same functional options New takes. An opened engine is still
// ingesting — extend it with more days and Save again (the daily-pipeline
// workflow), or Freeze immediately to query.

// Open restores an Engine from a snapshot file. WithStudyDays and
// WithKeepTransition are rejected: both come from the snapshot.
func Open(path string, opts ...Option) (Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("v6class: opening snapshot: %w", err)
	}
	defer f.Close()
	eng, err := Read(f, opts...)
	if err != nil {
		return nil, fmt.Errorf("v6class: reading snapshot %s: %w", path, err)
	}
	return eng, nil
}

// Read restores an Engine from a snapshot stream; see Open.
func Read(r io.Reader, opts ...Option) (Engine, error) {
	cfg, err := resolve(opts, true)
	if err != nil {
		return nil, err
	}
	e := &engine{opts: cfg.stability, keep: cfg.macFilter}
	if cfg.sequential {
		c, err := core.ReadCensus(r)
		if err != nil {
			return nil, err
		}
		e.seq, e.a = c, c
		return e, nil
	}
	c, err := core.ReadShardedCensusN(r, cfg.shards, cfg.workers)
	if err != nil {
		return nil, err
	}
	e.sh, e.a = c, c
	return e, nil
}

func (e *engine) WriteTo(w io.Writer) (int64, error) {
	return e.a.WriteTo(w)
}

// Save writes the snapshot to a temp file in path's directory and renames
// it over path, so a failed or interrupted write can never destroy an
// existing snapshot. The file lands world-readable (0644), the
// conventional snapshot mode for downstream serving and backups.
func (e *engine) Save(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".v6class-state-*")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := e.a.WriteTo(tmp); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
