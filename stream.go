package v6class

import (
	"fmt"
	"iter"
)

// The streaming query surface: every method returns an iterator backed
// directly by the engine's slab row sweeps (see internal/temporal/seq.go).
// Enumeration allocates nothing per element; breaking out of the range
// stops the sweep at the current row, with no goroutines to leak. The
// TopAggregates and OverlapSeries forms compute their (bounded) result
// once up front — ranking and series are inherently materialized — and
// stream the rendering.

// prefixed lifts an address iterator to the uniform Prefix key form
// (/128s), allocation-free per element.
func prefixed(src iter.Seq[Addr]) iter.Seq[Prefix] {
	return func(yield func(Prefix) bool) {
		for a := range src {
			if !yield(PrefixFrom(a, 128)) {
				return
			}
		}
	}
}

func (e *engine) StableAddrs(ref, n int) (iter.Seq[Addr], error) {
	if err := e.queryable(); err != nil {
		return nil, err
	}
	return e.a.StableAddrsSeq(ref, n, e.opts), nil
}

func (e *engine) AddrsActiveOn(days ...int) (iter.Seq[Addr], error) {
	if err := e.queryable(); err != nil {
		return nil, err
	}
	return e.a.AddrsActiveAnySeq(days...), nil
}

func (e *engine) Prefixes64ActiveOn(days ...int) (iter.Seq[Prefix], error) {
	if err := e.queryable(); err != nil {
		return nil, err
	}
	return e.a.Prefix64sActiveAnySeq(days...), nil
}

func (e *engine) Keys(pop Population) (iter.Seq[Prefix], error) {
	if err := e.popQuery(pop); err != nil {
		return nil, err
	}
	if pop == Prefixes64 {
		return e.a.Prefix64sSeq(), nil
	}
	return prefixed(e.a.AddrsSeq()), nil
}

func (e *engine) Lifetimes(pop Population) (iter.Seq2[Prefix, Activity], error) {
	if err := e.popQuery(pop); err != nil {
		return nil, err
	}
	if pop == Prefixes64 {
		return e.a.Prefix64LifetimesSeq(), nil
	}
	src := e.a.AddrLifetimesSeq()
	return func(yield func(Prefix, Activity) bool) {
		for a, act := range src {
			if !yield(PrefixFrom(a, 128), act) {
				return
			}
		}
	}, nil
}

func (e *engine) TopAggregates(pop Population, p, k int, days ...int) (iter.Seq[TopAggregate], error) {
	if err := e.popQuery(pop); err != nil {
		return nil, err
	}
	if p < 0 || p > 128 {
		return nil, fmt.Errorf("%w: aggregate prefix length %d outside [0, 128]", ErrConfig, p)
	}
	ranked := e.a.TopAggregates(pop, p, k, days...)
	return func(yield func(TopAggregate) bool) {
		for _, agg := range ranked {
			if !yield(agg) {
				return
			}
		}
	}, nil
}

func (e *engine) OverlapSeries(pop Population, ref, before, after int) (iter.Seq2[int, int], error) {
	if err := e.popQuery(pop); err != nil {
		return nil, err
	}
	if before < 0 || after < 0 {
		return nil, fmt.Errorf("%w: negative overlap window (-%d, +%d)", ErrConfig, before, after)
	}
	series := e.a.OverlapSeries(pop, ref, before, after)
	return func(yield func(int, int) bool) {
		for i, n := range series {
			if !yield(ref-before+i, n) {
				return
			}
		}
	}, nil
}
