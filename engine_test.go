package v6class

import (
	"errors"
	"runtime"
	"slices"
	"sync"
	"testing"

	"v6class/internal/core"
	"v6class/synth"
)

// testLogs generates a small deterministic study.
func testLogs(t testing.TB, days int) []DayLog {
	t.Helper()
	w := synth.NewWorld(synth.Config{Seed: 5, Scale: 0.005, StudyDays: days})
	logs := make([]DayLog, days)
	for d := 0; d < days; d++ {
		logs[d] = w.Day(d)
	}
	return logs
}

// frozenEngine builds an engine over logs and freezes it.
func frozenEngine(t testing.TB, logs []DayLog, opts ...Option) Engine {
	t.Helper()
	eng, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddDays(logs); err != nil {
		t.Fatal(err)
	}
	if err := eng.Freeze(); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestLifecycleErrors asserts the typed freeze errors: every query before
// Freeze reports ErrNotFrozen, every ingestion afterwards ErrFrozen, and
// none of it panics out of the internal layers.
func TestLifecycleErrors(t *testing.T) {
	logs := testLogs(t, 10)
	for _, shape := range []struct {
		name string
		opt  Option
	}{{"sequential", WithSequential()}, {"sharded", WithShards(4)}} {
		t.Run(shape.name, func(t *testing.T) {
			eng, err := New(WithStudyDays(10), shape.opt)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.AddDays(logs); err != nil {
				t.Fatal(err)
			}

			// Scalar and streaming queries both refuse before Freeze.
			if _, err := eng.Stability(Addresses, 5, 3); !errors.Is(err, ErrNotFrozen) {
				t.Errorf("Stability before Freeze: %v, want ErrNotFrozen", err)
			}
			if _, err := eng.Summary(5); !errors.Is(err, ErrNotFrozen) {
				t.Errorf("Summary before Freeze: %v, want ErrNotFrozen", err)
			}
			if _, err := eng.StableAddrs(5, 3); !errors.Is(err, ErrNotFrozen) {
				t.Errorf("StableAddrs before Freeze: %v, want ErrNotFrozen", err)
			}
			if _, err := eng.Keys(Addresses); !errors.Is(err, ErrNotFrozen) {
				t.Errorf("Keys before Freeze: %v, want ErrNotFrozen", err)
			}
			if _, err := eng.TopAggregates(Addresses, 48, 5, 5); !errors.Is(err, ErrNotFrozen) {
				t.Errorf("TopAggregates before Freeze: %v, want ErrNotFrozen", err)
			}

			if err := eng.Freeze(); err != nil {
				t.Fatal(err)
			}
			if err := eng.Freeze(); err != nil {
				t.Errorf("second Freeze should be idempotent, got %v", err)
			}
			if !eng.Frozen() {
				t.Error("Frozen() false after Freeze")
			}

			// Ingestion now refuses.
			if err := eng.AddDay(logs[0]); !errors.Is(err, ErrFrozen) {
				t.Errorf("AddDay after Freeze: %v, want ErrFrozen", err)
			}
			if err := eng.AddDays(logs); !errors.Is(err, ErrFrozen) {
				t.Errorf("AddDays after Freeze: %v, want ErrFrozen", err)
			}
			ch := make(chan DayLog)
			close(ch)
			if err := eng.Ingest(ch); !errors.Is(err, ErrFrozen) {
				t.Errorf("Ingest after Freeze: %v, want ErrFrozen", err)
			}

			// Queries now succeed.
			if _, err := eng.Stability(Addresses, 5, 3); err != nil {
				t.Errorf("Stability after Freeze: %v", err)
			}

			// Unknown populations are a typed error, not an internal panic.
			if _, err := eng.Stability(Population(99), 5, 3); !errors.Is(err, ErrConfig) {
				t.Errorf("bad population: %v, want ErrConfig", err)
			}
		})
	}
}

// TestDayRangeRefused asserts ingestion refuses out-of-period logs with
// the typed ErrDayRange instead of silently dropping their observations,
// on every ingestion path of both engine shapes.
func TestDayRangeRefused(t *testing.T) {
	logs := testLogs(t, 5)
	late := DayLog{Day: 9, Records: logs[0].Records}
	negative := DayLog{Day: -1, Records: logs[0].Records}
	for _, shape := range []struct {
		name string
		opt  Option
	}{{"sequential", WithSequential()}, {"sharded", WithShards(2)}} {
		t.Run(shape.name, func(t *testing.T) {
			eng, err := New(WithStudyDays(5), shape.opt)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.AddDay(late); !errors.Is(err, ErrDayRange) {
				t.Errorf("AddDay(day 9): %v, want ErrDayRange", err)
			}
			if err := eng.AddDay(negative); !errors.Is(err, ErrDayRange) {
				t.Errorf("AddDay(day -1): %v, want ErrDayRange", err)
			}
			// AddDays is atomic: one bad day refuses the whole batch.
			if err := eng.AddDays(append(slices.Clone(logs), late)); !errors.Is(err, ErrDayRange) {
				t.Errorf("AddDays with a late day: %v, want ErrDayRange", err)
			}
			if err := eng.Freeze(); err != nil {
				t.Fatal(err)
			}
			if n := must(eng.NumKeys(Addresses)); n != 0 {
				t.Errorf("refused batch still ingested %d keys", n)
			}

			// Ingest drains the channel (producers never block) and
			// reports the refusal; in-period logs still land.
			eng2, err := New(WithStudyDays(5), shape.opt)
			if err != nil {
				t.Fatal(err)
			}
			ch := make(chan DayLog)
			go func() {
				defer close(ch)
				ch <- late
				for _, l := range logs {
					ch <- l
				}
			}()
			if err := eng2.Ingest(ch); !errors.Is(err, ErrDayRange) {
				t.Errorf("Ingest with a late day: %v, want ErrDayRange", err)
			}
			eng2.Freeze()
			if n := must(eng2.NumKeys(Addresses)); n == 0 {
				t.Error("Ingest dropped the in-period logs along with the refusal")
			}
		})
	}
}

// TestQueryParameterValidation asserts out-of-domain scalar parameters are
// typed errors, never makeslice panics out of the temporal layer.
func TestQueryParameterValidation(t *testing.T) {
	eng := frozenEngine(t, testLogs(t, 10), WithStudyDays(10), WithSequential())
	if _, err := eng.ReturnProbability(Addresses, 0, 9, -2); !errors.Is(err, ErrConfig) {
		t.Errorf("ReturnProbability(maxGap=-2): %v, want ErrConfig", err)
	}
	if _, err := eng.OverlapSeries(Addresses, 5, -3, -4); !errors.Is(err, ErrConfig) {
		t.Errorf("OverlapSeries(-3,-4): %v, want ErrConfig", err)
	}
	if _, err := eng.TopAggregates(Addresses, 200, 5, 5); !errors.Is(err, ErrConfig) {
		t.Errorf("TopAggregates(p=200): %v, want ErrConfig", err)
	}
	if _, err := eng.TopAggregates(Addresses, -1, 5, 5); !errors.Is(err, ErrConfig) {
		t.Errorf("TopAggregates(p=-1): %v, want ErrConfig", err)
	}
}

// TestConcurrentFreezeBlocksUntilFrozen asserts an idempotent Freeze call
// racing the first one never returns while shard compaction is still in
// flight: every racer must be able to query immediately after its Freeze
// returns, with no internal panic.
func TestConcurrentFreezeBlocksUntilFrozen(t *testing.T) {
	logs := testLogs(t, 10)
	eng, err := New(WithStudyDays(10), WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddDays(logs); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := eng.Freeze(); err != nil {
				t.Errorf("concurrent Freeze: %v", err)
				return
			}
			// The engine must be fully frozen here: streaming queries
			// panic inside temporal if compaction has not finished.
			addrs, err := eng.AddrsActiveOn(5)
			if err != nil {
				t.Errorf("query after Freeze returned: %v", err)
				return
			}
			for range addrs {
				break
			}
		}()
	}
	wg.Wait()
}

// TestFromAnalyzerAdoptsStabilityDefaults asserts adopting a census built
// with custom classification options answers Stability exactly as the
// census itself would, not with the paper defaults.
func TestFromAnalyzerAdoptsStabilityDefaults(t *testing.T) {
	logs := testLogs(t, 14)
	narrow := StabilityOptions{Window: StabilityWindow{Before: 2, After: 2}}
	direct := core.NewCensus(core.CensusConfig{StudyDays: 14, StabilityOptions: narrow})
	for _, l := range logs {
		direct.AddDay(l)
	}
	eng := FromAnalyzer(direct)
	want := direct.Stability(core.Addresses, 7, 3)
	// Precondition: the narrow window must be distinguishable from the
	// default one, or the equality below could not catch a regression.
	if wide := direct.StabilityWith(core.Addresses, 7, 3, StabilityOptions{}); wide == want {
		t.Fatalf("test world cannot distinguish windows (both split %+v)", wide)
	}
	if got := must(eng.Stability(Addresses, 7, 3)); got != want {
		t.Errorf("adopted Stability %+v, want the census's own %+v", got, want)
	}
	gotW := must(eng.WeeklyStability(Addresses, 4, 3))
	if want := direct.WeeklyStability(core.Addresses, 4, 3); gotW != want {
		t.Errorf("adopted WeeklyStability %+v, want %+v", gotW, want)
	}
}

// TestIteratorsMatchSliceForms is the equivalence test of the streaming
// redesign: on both engine shapes, every iterator yields exactly what the
// old slice-returning core analyses produce for the same census.
func TestIteratorsMatchSliceForms(t *testing.T) {
	logs := testLogs(t, 14)
	// The reference: a sequential core census ingested directly.
	direct := core.NewCensus(core.CensusConfig{StudyDays: 14})
	for _, l := range logs {
		direct.AddDay(l)
	}

	for _, shape := range []struct {
		name string
		opt  Option
	}{{"sequential", WithSequential()}, {"sharded", WithShards(4)}} {
		t.Run(shape.name, func(t *testing.T) {
			eng := frozenEngine(t, logs, WithStudyDays(14), shape.opt)

			// StableAddrs vs core.StableAddrs (sorted: the sharded engine
			// enumerates in shard order).
			wantStable := direct.StableAddrs(7, 3)
			gotStable := slices.Collect(must(eng.StableAddrs(7, 3)))
			assertSameAddrs(t, "StableAddrs", gotStable, wantStable)

			// AddrsActiveOn vs core.AddrsActiveOn, single day.
			assertSameAddrs(t, "AddrsActiveOn", slices.Collect(must(eng.AddrsActiveOn(7))), direct.AddrsActiveOn(7))

			// Multi-day union vs the deduplicating spatial set build.
			multi := slices.Collect(must(eng.AddrsActiveOn(3, 7, 11)))
			if got, want := len(multi), direct.NativeSet(3, 7, 11).Len(); got != want {
				t.Errorf("AddrsActiveOn(3,7,11): %d addrs, want %d distinct", got, want)
			}
			if dup := len(multi) - len(dedup(multi)); dup != 0 {
				t.Errorf("AddrsActiveOn yielded %d duplicate addresses", dup)
			}

			// Keys count vs core.Keys for both populations.
			for _, pop := range []Population{Addresses, Prefixes64} {
				if got, want := len(slices.Collect(must(eng.Keys(pop)))), direct.Keys(pop); got != want {
					t.Errorf("Keys(%v): %d, want %d", pop, got, want)
				}
			}

			// TopAggregates vs the slice form (ordering included: ranked
			// results are deterministic on both engines).
			wantTop := direct.TopAggregates(core.Addresses, 48, 10, 7)
			gotTop := slices.Collect(must(eng.TopAggregates(Addresses, 48, 10, 7)))
			if !slices.Equal(gotTop, wantTop) {
				t.Errorf("TopAggregates: %v, want %v", gotTop, wantTop)
			}

			// OverlapSeries pairs vs the slice form.
			wantSeries := direct.OverlapSeries(core.Addresses, 7, 5, 5)
			i := 0
			for day, n := range must(eng.OverlapSeries(Addresses, 7, 5, 5)) {
				if day != 7-5+i || n != wantSeries[i] {
					t.Errorf("OverlapSeries[%d] = (%d, %d), want (%d, %d)", i, day, n, 7-5+i, wantSeries[i])
				}
				i++
			}
			if i != len(wantSeries) {
				t.Errorf("OverlapSeries yielded %d entries, want %d", i, len(wantSeries))
			}

			// Lifetimes: every key's activity must match the point query.
			seen := 0
			for p, act := range must(eng.Lifetimes(Prefixes64)) {
				seen++
				rep := direct.LookupPrefix64(p)
				if !rep.Known || rep.ActiveDays != act.ActiveDays || rep.Runs != act.Runs {
					t.Fatalf("Lifetimes(%v) = %+v disagrees with lookup %+v", p, act, rep)
				}
			}
			if seen != direct.Keys(core.Prefixes64) {
				t.Errorf("Lifetimes yielded %d keys, want %d", seen, direct.Keys(core.Prefixes64))
			}

			// Scalar parity spot checks.
			st := must(eng.Stability(Addresses, 7, 3))
			if want := direct.Stability(core.Addresses, 7, 3); st != want {
				t.Errorf("Stability %+v, want %+v", st, want)
			}
			lt := must(eng.LifetimeStats(Addresses, 0, 13))
			if want := direct.LifetimeStats(core.Addresses, 0, 13); lt.Keys != want.Keys || lt.SingleDay != want.SingleDay {
				t.Errorf("LifetimeStats %+v, want %+v", lt, want)
			}
			rp := must(eng.ReturnProbability(Addresses, 0, 13, 3))
			if want := direct.ReturnProbability(core.Addresses, 0, 13, 3); !slices.Equal(rp, want) {
				t.Errorf("ReturnProbability %v, want %v", rp, want)
			}
		})
	}
}

// TestIteratorEarlyBreak asserts a consumer breaking after k elements
// stops the sweep — the iterator yields exactly k times, re-iterating
// restarts from the beginning, and no goroutine is left behind.
func TestIteratorEarlyBreak(t *testing.T) {
	logs := testLogs(t, 10)
	for _, shape := range []struct {
		name string
		opt  Option
	}{{"sequential", WithSequential()}, {"sharded", WithShards(4)}} {
		t.Run(shape.name, func(t *testing.T) {
			eng := frozenEngine(t, logs, WithStudyDays(10), shape.opt)
			total := len(slices.Collect(must(eng.AddrsActiveOn(5))))
			if total < 10 {
				t.Fatalf("test world too small: %d active addresses", total)
			}

			before := runtime.NumGoroutine()
			seq := must(eng.AddrsActiveOn(5))
			yields := 0
			for range seq {
				yields++
				if yields == 3 {
					break
				}
			}
			if yields != 3 {
				t.Errorf("broke after 3, saw %d yields", yields)
			}
			// The same Seq restarts from the beginning.
			if again := len(slices.Collect(seq)); again != total {
				t.Errorf("re-iteration yielded %d, want %d", again, total)
			}
			if after := runtime.NumGoroutine(); after > before {
				t.Errorf("iterator leaked goroutines: %d -> %d", before, after)
			}

			// Seq2 break behaves the same.
			pairs := 0
			for range must(eng.Lifetimes(Addresses)) {
				pairs++
				if pairs == 2 {
					break
				}
			}
			if pairs != 2 {
				t.Errorf("Lifetimes broke after 2, saw %d", pairs)
			}
		})
	}
}

// TestMACFilter asserts WithMACFilter drops exactly the EUI-64 records
// whose hardware address fails the predicate, on both engine shapes and
// on every ingestion path.
func TestMACFilter(t *testing.T) {
	logs := testLogs(t, 8)
	// Find one MAC of a native EUI-64 address to filter out (transition
	// addresses never reach the temporal stores, so filtering one would be
	// invisible to key counts).
	var victim MAC
	found := false
	for _, l := range logs {
		for _, r := range l.Records {
			if mac, ok := EUI64MAC(r.Addr); ok && !Classify(r.Addr).IsTransition() {
				victim, found = mac, true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("no EUI-64 records in the test world")
	}

	for _, shape := range []struct {
		name string
		opt  Option
	}{{"sequential", WithSequential()}, {"sharded", WithShards(2)}} {
		t.Run(shape.name, func(t *testing.T) {
			filtered := frozenEngine(t, logs, WithStudyDays(8), shape.opt,
				WithMACFilter(func(m MAC) bool { return m != victim }))
			keys, err := filtered.Keys(Addresses)
			if err != nil {
				t.Fatal(err)
			}
			for p := range keys {
				if mac, ok := EUI64MAC(p.Addr()); ok && mac == victim {
					t.Fatalf("filtered engine still contains MAC %v (key %v)", victim, p)
				}
			}
			// The filter must have removed something relative to baseline.
			baseline := frozenEngine(t, logs, WithStudyDays(8), shape.opt)
			nb := must(baseline.NumKeys(Addresses))
			nf := must(filtered.NumKeys(Addresses))
			if nf >= nb {
				t.Errorf("MAC filter removed nothing: %d vs %d keys", nf, nb)
			}
		})
	}
}

// TestSaveOpenRoundTrip persists through the façade and restores into both
// implementations, checking query parity.
func TestSaveOpenRoundTrip(t *testing.T) {
	logs := testLogs(t, 12)
	eng := frozenEngine(t, logs, WithStudyDays(12), WithShards(4))
	path := t.TempDir() + "/census.state"
	if err := eng.Save(path); err != nil {
		t.Fatal(err)
	}
	want := must(eng.Stability(Addresses, 6, 3))

	for _, shape := range []struct {
		name string
		opts []Option
	}{{"sequential", []Option{WithSequential()}}, {"sharded", []Option{WithShards(2)}}, {"auto", nil}} {
		t.Run(shape.name, func(t *testing.T) {
			got, err := Open(path, shape.opts...)
			if err != nil {
				t.Fatal(err)
			}
			// An opened engine is ingesting; queries need Freeze first.
			if _, err := got.Stability(Addresses, 6, 3); !errors.Is(err, ErrNotFrozen) {
				t.Errorf("query on opened engine: %v, want ErrNotFrozen", err)
			}
			if err := got.Freeze(); err != nil {
				t.Fatal(err)
			}
			if st := must(got.Stability(Addresses, 6, 3)); st != want {
				t.Errorf("restored stability %+v, want %+v", st, want)
			}
		})
	}
}

// must unwraps façade results inside tests; a panic here fails the test
// with the lifecycle error and its stack.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// assertSameAddrs compares address sets ignoring order (the sharded engine
// enumerates shard by shard).
func assertSameAddrs(t *testing.T, what string, got, want []Addr) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d addrs, want %d", what, len(got), len(want))
		return
	}
	cmp := func(a, b Addr) int { return a.Cmp(b) }
	g := slices.Clone(got)
	w := slices.Clone(want)
	slices.SortFunc(g, cmp)
	slices.SortFunc(w, cmp)
	if !slices.Equal(g, w) {
		t.Errorf("%s: address sets differ", what)
	}
}

// dedup returns the distinct addresses of s.
func dedup(s []Addr) []Addr {
	seen := make(map[Addr]bool, len(s))
	var out []Addr
	for _, a := range s {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}
