package remote

import (
	"bytes"
	"fmt"
	"io"
	"iter"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"

	"encoding/json"

	"v6class"
	"v6class/serve"
)

// Engine is a v6class.Engine whose census lives behind a serve instance.
// Scalar queries are one HTTP request each; the ordered enumerations
// stream the cursor-paged endpoints one page window at a time, so memory
// stays bounded by the page size however large the census. A snapshot
// reload that expires the cursor mid-stream resumes strictly after the
// last yielded key against the new generation (within the retry budget):
// the stream stays strictly ascending and duplicate-free, but rows before
// and after the reload may come from different generations. Mid-stream
// failures past the retry budget panic with an error wrapping
// v6class.ErrUnavailable — iter.Seq has no error channel — which the
// serve layer converts to a 503 when a coordinator relays the stream.
// Returned iterators are re-iterable; each iteration walks the pages
// afresh.
//
// Two documented deviations from a local engine: Stability and StableAddrs
// answer under the server's wire defaults (the paper's ±7d window) rather
// than this process's engine options — configure the server if its
// defaults must differ — and NumKeys/Summary reflect the snapshot
// generation serving at call time, so results may advance across a reload.
type Engine struct {
	c         *client
	studyDays int
	frozen    atomic.Bool
}

var _ v6class.Engine = (*Engine)(nil)

// BaseURL returns the server base URL this engine was dialed with. The
// coordinator stamps it into backend failures and Coverage reports, so an
// operator reading "backend 2 (http://census-c:8470) unavailable" knows
// exactly which partition to fix.
func (e *Engine) BaseURL() string { return e.c.base }

type metaResponse struct {
	Snapshot   string `json:"snapshot"`
	Epoch      uint64 `json:"epoch"`
	StudyDays  int    `json:"studyDays"`
	Addresses  int    `json:"addresses"`
	Prefixes64 int    `json:"prefixes64"`
	Shards     int    `json:"shards"`
}

func (e *Engine) meta() (metaResponse, error) {
	var m metaResponse
	err := e.c.get("/v1/meta", nil, &m)
	return m, err
}

// StudyDays returns the study period length observed at Dial time.
func (e *Engine) StudyDays() int { return e.studyDays }

// Shards reports 1: the backend's internal sharding is its own business,
// and a remote engine is one backend.
func (e *Engine) Shards() int { return 1 }

// Frozen reports whether this client has ingestion in flight: true from
// Dial (a serving snapshot is always frozen), false between the first
// AddDay and the next Freeze.
func (e *Engine) Frozen() bool { return e.frozen.Load() }

// AddDay streams one daily log into the server's live successor
// generation (POST /v1/ingest). The serving snapshot keeps answering
// queries; nothing ingested is visible until Freeze.
func (e *Engine) AddDay(log v6class.DayLog) error { return e.AddDays([]v6class.DayLog{log}) }

// AddDays streams a batch of daily logs into the live successor.
func (e *Engine) AddDays(logs []v6class.DayLog) error {
	if len(logs) == 0 {
		return nil
	}
	var buf bytes.Buffer
	if err := v6class.FormatLogs(&buf, logs); err != nil {
		return err
	}
	if err := e.c.call(http.MethodPost, "/v1/ingest", nil, buf.Bytes(), nil); err != nil {
		return err
	}
	e.frozen.Store(false)
	return nil
}

// Ingest drains the channel in batches until it closes.
func (e *Engine) Ingest(logs <-chan v6class.DayLog) error {
	batch := make([]v6class.DayLog, 0, 16)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := e.AddDays(batch)
		batch = batch[:0]
		return err
	}
	for l := range logs {
		batch = append(batch, l)
		if len(batch) == cap(batch) {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// Freeze installs the live successor as the serving generation (POST
// /v1/freeze). With no ingestion in flight it is a no-op, mirroring local
// Freeze idempotence.
func (e *Engine) Freeze() error {
	if e.frozen.Load() {
		return nil
	}
	if err := e.c.call(http.MethodPost, "/v1/freeze", nil, nil, nil); err != nil {
		return err
	}
	e.frozen.Store(true)
	return nil
}

// WriteTo streams the server's serialized census snapshot (GET
// /v1/snapshot, the format Open and LoadFile read).
func (e *Engine) WriteTo(w io.Writer) (int64, error) {
	resp, err := e.c.roundTrip(http.MethodGet, "/v1/snapshot", nil, nil)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return 0, serve.DecodeError(resp.StatusCode, data)
	}
	return io.Copy(w, resp.Body)
}

// Save persists the streamed snapshot atomically (temp file + rename).
func (e *Engine) Save(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".v6class-remote-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := e.WriteTo(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

type summaryResponse struct {
	Day     int            `json:"day"`
	Total   int            `json:"total"`
	Native  int            `json:"native"`
	Addrs64 int            `json:"addrs64"`
	MACs    int            `json:"macs"`
	ByKind  map[string]int `json:"byKind"`
}

func (e *Engine) Summary(day int) (v6class.DaySummary, error) {
	q := url.Values{}
	q.Set("day", strconv.Itoa(day))
	var resp summaryResponse
	if err := e.c.get("/v1/summary", q, &resp); err != nil {
		return v6class.DaySummary{}, err
	}
	out := v6class.DaySummary{
		Day:     resp.Day,
		Total:   resp.Total,
		Native:  resp.Native,
		Addrs64: resp.Addrs64,
		MACs:    resp.MACs,
		ByKind:  make(map[v6class.Kind]int, len(resp.ByKind)),
	}
	for name, n := range resp.ByKind {
		k, ok := v6class.ParseKind(name)
		if !ok {
			return v6class.DaySummary{}, fmt.Errorf("remote: server reported unknown address kind %q", name)
		}
		out.ByKind[k] = n
	}
	return out, nil
}

func (e *Engine) NumKeys(pop v6class.Population) (int, error) {
	m, err := e.meta()
	if err != nil {
		return 0, err
	}
	if pop == v6class.Prefixes64 {
		return m.Prefixes64, nil
	}
	return m.Addresses, nil
}

type activeResponse struct {
	Count int `json:"count"`
}

func (e *Engine) ActiveCount(pop v6class.Population, day int) (int, error) {
	q := url.Values{}
	serve.EncodePop(q, pop)
	q.Set("day", strconv.Itoa(day))
	var resp activeResponse
	if err := e.c.get("/v1/active", q, &resp); err != nil {
		return 0, err
	}
	return resp.Count, nil
}

func (e *Engine) ActiveInRange(pop v6class.Population, from, to int) (int, error) {
	q := url.Values{}
	serve.EncodePop(q, pop)
	q.Set("from", strconv.Itoa(from))
	q.Set("to", strconv.Itoa(to))
	var resp activeResponse
	if err := e.c.get("/v1/active", q, &resp); err != nil {
		return 0, err
	}
	return resp.Count, nil
}

type stabilityResponse struct {
	Active    int `json:"active"`
	Stable    int `json:"stable"`
	NotStable int `json:"notStable"`
}

// Stability answers under the wire default options (the paper's ±7d
// window) — the server's engine defaults are not consulted.
func (e *Engine) Stability(pop v6class.Population, ref, n int) (v6class.DailyStability, error) {
	return e.StabilityWith(pop, ref, n, v6class.StabilityOptions{})
}

func (e *Engine) StabilityWith(pop v6class.Population, ref, n int, opts v6class.StabilityOptions) (v6class.DailyStability, error) {
	q := url.Values{}
	serve.EncodePop(q, pop)
	q.Set("ref", strconv.Itoa(ref))
	q.Set("n", strconv.Itoa(n))
	serve.EncodeWindow(q, opts)
	var resp stabilityResponse
	if err := e.c.get("/v1/stability", q, &resp); err != nil {
		return v6class.DailyStability{}, err
	}
	return v6class.DailyStability{
		Ref: v6class.Day(ref), N: n,
		Active: resp.Active, Stable: resp.Stable, NotStable: resp.NotStable,
	}, nil
}

func (e *Engine) WeeklyStability(pop v6class.Population, start, n int) (v6class.WeeklyStability, error) {
	q := url.Values{}
	serve.EncodePop(q, pop)
	q.Set("ref", strconv.Itoa(start))
	q.Set("n", strconv.Itoa(n))
	q.Set("weekly", "true")
	var resp stabilityResponse
	if err := e.c.get("/v1/stability", q, &resp); err != nil {
		return v6class.WeeklyStability{}, err
	}
	return v6class.WeeklyStability{
		Start: v6class.Day(start), N: n,
		Active: resp.Active, Stable: resp.Stable, NotStable: resp.NotStable,
	}, nil
}

type epochResponse struct {
	Count int `json:"count"`
}

func (e *Engine) EpochStable(pop v6class.Population, aFrom, aTo, bFrom, bTo int) (int, error) {
	q := url.Values{}
	serve.EncodePop(q, pop)
	q.Set("afrom", strconv.Itoa(aFrom))
	q.Set("ato", strconv.Itoa(aTo))
	q.Set("bfrom", strconv.Itoa(bFrom))
	q.Set("bto", strconv.Itoa(bTo))
	var resp epochResponse
	if err := e.c.get("/v1/epoch", q, &resp); err != nil {
		return 0, err
	}
	return resp.Count, nil
}

type lookupResponse struct {
	Addr           string             `json:"addr"`
	Kind           string             `json:"kind"`
	Prefix         string             `json:"prefix"`
	Address        *v6class.KeyReport `json:"address"`
	Prefix64       v6class.KeyReport  `json:"prefix64"`
	Stable         *bool              `json:"stable"`
	Prefix64Stable *bool              `json:"prefix64Stable"`
}

func (e *Engine) LookupAddr(a v6class.Addr) (v6class.AddrLookup, error) {
	q := url.Values{}
	q.Set("addr", a.String())
	var resp lookupResponse
	if err := e.c.get("/v1/lookup", q, &resp); err != nil {
		return v6class.AddrLookup{}, err
	}
	out := v6class.AddrLookup{Addr: a, Kind: v6class.Classify(a), Prefix64: resp.Prefix64}
	if resp.Address != nil {
		out.Report = *resp.Address
	}
	return out, nil
}

func (e *Engine) LookupPrefix64(p v6class.Prefix) (v6class.KeyReport, error) {
	q := url.Values{}
	q.Set("p64", p.String())
	var resp lookupResponse
	if err := e.c.get("/v1/lookup", q, &resp); err != nil {
		return v6class.KeyReport{}, err
	}
	return resp.Prefix64, nil
}

func (e *Engine) AddrStable(a v6class.Addr, ref, n int, opts v6class.StabilityOptions) (bool, error) {
	q := url.Values{}
	q.Set("addr", a.String())
	q.Set("ref", strconv.Itoa(ref))
	q.Set("n", strconv.Itoa(n))
	serve.EncodeWindow(q, opts)
	var resp lookupResponse
	if err := e.c.get("/v1/lookup", q, &resp); err != nil {
		return false, err
	}
	if resp.Stable == nil {
		return false, fmt.Errorf("remote: lookup response missing stability verdict")
	}
	return *resp.Stable, nil
}

func (e *Engine) Prefix64Stable(p v6class.Prefix, ref, n int, opts v6class.StabilityOptions) (bool, error) {
	q := url.Values{}
	q.Set("p64", p.String())
	q.Set("ref", strconv.Itoa(ref))
	q.Set("n", strconv.Itoa(n))
	serve.EncodeWindow(q, opts)
	var resp lookupResponse
	if err := e.c.get("/v1/lookup", q, &resp); err != nil {
		return false, err
	}
	if resp.Prefix64Stable == nil {
		return false, fmt.Errorf("remote: lookup response missing stability verdict")
	}
	return *resp.Prefix64Stable, nil
}

type lifetimeStatsResponse struct {
	Keys                int   `json:"keys"`
	SingleDay           int   `json:"singleDay"`
	SpanHistogram       []int `json:"spanHistogram"`
	ActiveDaysHistogram []int `json:"activeDaysHistogram"`
}

func (e *Engine) LifetimeStats(pop v6class.Population, from, to int) (v6class.LifetimeStats, error) {
	q := url.Values{}
	serve.EncodePop(q, pop)
	q.Set("from", strconv.Itoa(from))
	q.Set("to", strconv.Itoa(to))
	var resp lifetimeStatsResponse
	if err := e.c.get("/v1/lifetimes/stats", q, &resp); err != nil {
		return v6class.LifetimeStats{}, err
	}
	return v6class.LifetimeStats{
		Keys: resp.Keys, SingleDay: resp.SingleDay,
		SpanHistogram: resp.SpanHistogram, ActiveDaysHistogram: resp.ActiveDaysHistogram,
	}, nil
}

type returnProbResponse struct {
	Probabilities []float64 `json:"probabilities"`
	Num           []int     `json:"num"`
	Den           []int     `json:"den"`
}

func (e *Engine) returnProb(pop v6class.Population, from, to, maxGap int) (returnProbResponse, error) {
	q := url.Values{}
	serve.EncodePop(q, pop)
	q.Set("from", strconv.Itoa(from))
	q.Set("to", strconv.Itoa(to))
	q.Set("maxgap", strconv.Itoa(maxGap))
	var resp returnProbResponse
	err := e.c.get("/v1/returnprob", q, &resp)
	return resp, err
}

func (e *Engine) ReturnProbability(pop v6class.Population, from, to, maxGap int) ([]float64, error) {
	resp, err := e.returnProb(pop, from, to, maxGap)
	if err != nil {
		return nil, err
	}
	return resp.Probabilities, nil
}

func (e *Engine) ReturnCounts(pop v6class.Population, from, to, maxGap int) (num, den []int, err error) {
	resp, err := e.returnProb(pop, from, to, maxGap)
	if err != nil {
		return nil, nil, err
	}
	return resp.Num, resp.Den, nil
}

type lspResponse struct {
	Rows []struct {
		Prefix  string `json:"prefix"`
		Support uint64 `json:"support"`
	} `json:"rows"`
}

func (e *Engine) LongestStablePrefixes(aFrom, aTo, bFrom, bTo, minBits int, minSupport uint64) ([]v6class.LongestStablePrefix, error) {
	q := url.Values{}
	q.Set("afrom", strconv.Itoa(aFrom))
	q.Set("ato", strconv.Itoa(aTo))
	q.Set("bfrom", strconv.Itoa(bFrom))
	q.Set("bto", strconv.Itoa(bTo))
	q.Set("minbits", strconv.Itoa(minBits))
	q.Set("minsupport", strconv.FormatUint(minSupport, 10))
	var resp lspResponse
	if err := e.c.get("/v1/lsp", q, &resp); err != nil {
		return nil, err
	}
	out := make([]v6class.LongestStablePrefix, 0, len(resp.Rows))
	for _, row := range resp.Rows {
		p, err := v6class.ParsePrefix(row.Prefix)
		if err != nil {
			return nil, fmt.Errorf("remote: bad prefix %q in lsp response: %v", row.Prefix, err)
		}
		out = append(out, v6class.LongestStablePrefix{Prefix: p, Support: row.Support})
	}
	return out, nil
}

type overlapResponse struct {
	Ref    int   `json:"ref"`
	Before int   `json:"before"`
	Series []int `json:"series"`
}

func (e *Engine) OverlapSeries(pop v6class.Population, ref, before, after int) (iter.Seq2[int, int], error) {
	q := url.Values{}
	serve.EncodePop(q, pop)
	q.Set("ref", strconv.Itoa(ref))
	q.Set("before", strconv.Itoa(before))
	q.Set("after", strconv.Itoa(after))
	var resp overlapResponse
	if err := e.c.get("/v1/overlap", q, &resp); err != nil {
		return nil, err
	}
	first := resp.Ref - resp.Before
	series := resp.Series
	return func(yield func(int, int) bool) {
		for i, n := range series {
			if !yield(first+i, n) {
				return
			}
		}
	}, nil
}

type topkPageResponse struct {
	Rows []struct {
		Prefix string `json:"prefix"`
		Count  uint64 `json:"count"`
	} `json:"rows"`
	Cursor string `json:"cursor"`
}

// TopAggregates walks the paged form of /v1/topk. The server memoizes and
// offset-pages the full deterministic ranking, so the walk stops as soon
// as k rows are in hand.
func (e *Engine) TopAggregates(pop v6class.Population, p, k int, days ...int) (iter.Seq[v6class.TopAggregate], error) {
	rows, err := retryExpired(e.c.retries, func() ([]v6class.TopAggregate, error) {
		q := url.Values{}
		serve.EncodePop(q, pop)
		serve.EncodeDays(q, days)
		q.Set("p", strconv.Itoa(p))
		q.Set("page", "true")
		q.Set("limit", strconv.Itoa(e.c.pageSize))
		var out []v6class.TopAggregate
		err := e.c.walkPages("/v1/topk", q, func(body []byte) (string, error) {
			var page topkPageResponse
			if err := json.Unmarshal(body, &page); err != nil {
				return "", fmt.Errorf("remote: decoding topk page: %w", err)
			}
			for _, row := range page.Rows {
				pfx, err := v6class.ParsePrefix(row.Prefix)
				if err != nil {
					return "", fmt.Errorf("remote: bad prefix %q in topk page: %v", row.Prefix, err)
				}
				out = append(out, v6class.TopAggregate{Prefix: pfx, Count: row.Count})
				if k > 0 && len(out) == k {
					return "", nil // enough rows; stop paging
				}
			}
			return page.Cursor, nil
		})
		return out, err
	})
	if err != nil {
		return nil, err
	}
	return sliceSeq(rows), nil
}

// SpatialSet rebuilds the spatial population locally from the ordered key
// enumeration: a radix trie's shape is a pure function of its item set, so
// the result is bit-identical to the server building it.
func (e *Engine) SpatialSet(pop v6class.Population, days ...int) (*v6class.AddressSet, error) {
	seq, err := e.KeysOrdered(pop, days...)
	if err != nil {
		return nil, err
	}
	set := &v6class.AddressSet{}
	for p := range seq {
		if pop == v6class.Prefixes64 {
			set.AddPrefix(p)
		} else {
			set.Add(p.Addr())
		}
	}
	return set, nil
}

// sliceSeq adapts a materialized slice to a re-iterable sequence.
func sliceSeq[T any](items []T) iter.Seq[T] {
	return func(yield func(T) bool) {
		for _, v := range items {
			if !yield(v) {
				return
			}
		}
	}
}
