package remote

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"v6class"
)

// The coordinator's resilience policy: every scatter-gather runs through
// per-backend circuit breakers and a fan-out deadline, and the caller
// chooses between strict mode (the default — any backend failure fails the
// query, naming the backend) and opt-in degraded mode (WithPartialResults —
// merges proceed when a minority of partitions is down, annotated with a
// Coverage report behind a typed v6class.ErrDegraded).

// CoordinatorOption configures NewCoordinator beyond the backend list.
type CoordinatorOption func(*Coordinator)

// WithPartialResults turns on degraded mode: scalar, ranking and
// enumeration merges proceed when a minority of partitions is unavailable.
// The result then covers only the answering partitions and the returned
// error wraps v6class.ErrDegraded; errors.As against *DegradedError yields
// the exact Coverage. Failures that are not availability faults (a bad
// parameter, a day outside the study) still fail the whole query — they
// would be wrong on every partition alike — as does a majority outage.
// Point queries never degrade: the owning partition is the only source.
// Writes (AddDays, Ingest, Freeze) never degrade either: a partially
// ingested batch would be quiet data loss.
func WithPartialResults() CoordinatorOption {
	return func(c *Coordinator) { c.partial = true }
}

// WithFanoutTimeout bounds one scatter-gather fan-out (default 30s): a
// backend that has not answered by the deadline is treated as unavailable
// and the merge proceeds (degraded mode) or fails fast (strict mode)
// instead of blocking forever on a hung backend. Zero or negative disables
// the bound.
func WithFanoutTimeout(d time.Duration) CoordinatorOption {
	return func(c *Coordinator) { c.fanout = d }
}

// WithHedge enables hedged point queries: a point query still unanswered
// after d is sent a second time to the same backend, and the first success
// wins. Tames tail latency from a slow replica or a dropped packet at the
// cost of occasional duplicate (idempotent, read-only) requests. Zero
// disables hedging (the default).
func WithHedge(d time.Duration) CoordinatorOption {
	return func(c *Coordinator) { c.hedge = d }
}

// WithBreaker sets the per-backend circuit breaker policy (see
// BreakerPolicy; the zero value means the defaults: open after 5
// consecutive availability failures, half-open probe after 10s).
func WithBreaker(p BreakerPolicy) CoordinatorOption {
	return func(c *Coordinator) { c.breakerPolicy = p }
}

// Coverage reports how much of the partitioned census contributed to a
// degraded answer: exactly which partitions are missing and why.
type Coverage struct {
	// Backends is the cluster fan-out.
	Backends int
	// Answered is how many partitions contributed to the merge.
	Answered int
	// Failed lists the partitions missing from the answer.
	Failed []BackendFailure
}

func (c Coverage) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d/%d partitions", c.Answered, c.Backends)
	for i, f := range c.Failed {
		if i == 0 {
			sb.WriteString(" (missing ")
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(f.name())
	}
	if len(c.Failed) > 0 {
		sb.WriteString(")")
	}
	return sb.String()
}

// BackendFailure identifies one unavailable partition.
type BackendFailure struct {
	// Index is the backend's position in NewCoordinator order.
	Index int
	// URL is the backend's base URL when it is a remote.Engine (or
	// anything else exposing BaseURL() string); empty otherwise.
	URL string
	// Err is what the backend failed with.
	Err error
}

func (f BackendFailure) name() string {
	if f.URL != "" {
		return fmt.Sprintf("backend %d (%s)", f.Index, f.URL)
	}
	return fmt.Sprintf("backend %d", f.Index)
}

// DegradedError annotates a successful-but-partial merge in
// WithPartialResults mode. It unwraps to v6class.ErrDegraded, so
// errors.Is(err, v6class.ErrDegraded) detects degradation and
// errors.As(err, &de) reaches the Coverage.
type DegradedError struct {
	Coverage Coverage
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("remote: degraded results: %s: %v", e.Coverage, firstFailure(e.Coverage))
}

func (e *DegradedError) Unwrap() error { return v6class.ErrDegraded }

func firstFailure(c Coverage) error {
	if len(c.Failed) == 0 {
		return nil
	}
	return c.Failed[0].Err
}

// backendError names the backend behind a failure, so an operator reading
// a strict-mode cluster error knows which partition to fix. It unwraps to
// the underlying error, preserving every typed sentinel.
type backendError struct {
	index int
	url   string
	err   error
}

func (e *backendError) Error() string {
	return fmt.Sprintf("remote: %s: %v", BackendFailure{Index: e.index, URL: e.url}.name(), e.err)
}

func (e *backendError) Unwrap() error { return e.err }

// baseURLOf extracts a backend's dial URL when it has one.
func baseURLOf(b v6class.Engine) string {
	if r, ok := b.(interface{ BaseURL() string }); ok {
		return r.BaseURL()
	}
	return ""
}

// The availability faults the coordinator itself raises.
var (
	errCircuitOpen   = fmt.Errorf("%w: circuit open (backend failing consecutively; half-open probe pending)", v6class.ErrUnavailable)
	errFanoutTimeout = fmt.Errorf("%w: no reply within the fan-out deadline", v6class.ErrUnavailable)
)

// available is the breaker's verdict on one call outcome: only
// availability faults count against a backend's health.
func available(err error) bool {
	return err == nil || !errors.Is(err, v6class.ErrUnavailable)
}

// degradedOnly reports whether err is nil or only a degradation
// annotation — i.e. the accompanying result is usable.
func degradedOnly(err error) bool {
	return err == nil || errors.Is(err, v6class.ErrDegraded)
}

// firstDegraded propagates the first degradation annotation of a
// multi-gather query (both errors, when non-nil, are degraded-only).
func firstDegraded(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// gather scatter-gathers fn over every backend under the coordinator's
// policy and returns the answered results in backend order. The error is
// nil (full coverage), a *DegradedError (partial mode, minority missing —
// the results are usable), or fatal (strict mode, non-availability fault,
// or majority outage — the results are nil). Breakers are consulted before
// calling and fed the verdict after; backends that miss the fan-out
// deadline count as unavailable, and their late replies are discarded
// without blocking anyone.
func gather[T any](c *Coordinator, fn func(i int, b v6class.Engine) (T, error)) ([]T, error) {
	return gatherMode(c, c.partial, fn)
}

// gatherStrict is gather with degraded mode forced off — the write path
// (AddDays, Freeze) must never partially apply.
func gatherStrict[T any](c *Coordinator, fn func(i int, b v6class.Engine) (T, error)) ([]T, error) {
	return gatherMode(c, false, fn)
}

func gatherMode[T any](c *Coordinator, partial bool, fn func(i int, b v6class.Engine) (T, error)) ([]T, error) {
	n := len(c.backends)
	type reply struct {
		i   int
		v   T
		err error
	}
	// Buffered to the fan-out, so goroutines finishing after a deadline
	// abandon never block on the send.
	ch := make(chan reply, n)
	sem := make(chan struct{}, min(n, scatterLimit))
	fails := make([]error, n)
	launched := 0
	for i, b := range c.backends {
		br := c.breakers[i]
		if !br.allow() {
			fails[i] = errCircuitOpen
			continue
		}
		launched++
		go func() {
			sem <- struct{}{}
			defer func() { <-sem }()
			v, err := fn(i, b)
			// The breaker hears every verdict, even one arriving after the
			// gather gave up on this backend: a late success after a
			// timeout still proves the backend alive.
			br.record(available(err))
			ch <- reply{i, v, err}
		}()
	}
	vals := make([]T, n)
	done := make([]bool, n)
	var deadline <-chan time.Time
	if c.fanout > 0 {
		t := time.NewTimer(c.fanout)
		defer t.Stop()
		deadline = t.C
	}
collect:
	for got := 0; got < launched; got++ {
		select {
		case r := <-ch:
			if r.err != nil {
				fails[r.i] = r.err
			} else {
				vals[r.i] = r.v
				done[r.i] = true
			}
		case <-deadline:
			break collect
		}
	}
	for i := range fails {
		if !done[i] && fails[i] == nil {
			fails[i] = errFanoutTimeout
		}
	}
	return resolveGather(c, partial, vals, done, fails)
}

// resolveGather applies the strict/degraded policy to one gather outcome.
func resolveGather[T any](c *Coordinator, partial bool, vals []T, done []bool, fails []error) ([]T, error) {
	cov := Coverage{Backends: len(vals)}
	out := make([]T, 0, len(vals))
	for i := range vals {
		if done[i] {
			out = append(out, vals[i])
			cov.Answered++
			continue
		}
		cov.Failed = append(cov.Failed, BackendFailure{
			Index: i, URL: baseURLOf(c.backends[i]), Err: fails[i],
		})
	}
	if len(cov.Failed) == 0 {
		return out, nil
	}
	strictErr := func() error {
		errs := make([]error, len(cov.Failed))
		for i, f := range cov.Failed {
			errs[i] = &backendError{index: f.Index, url: f.URL, err: f.Err}
		}
		return errors.Join(errs...)
	}
	if !partial {
		return nil, strictErr()
	}
	// A failure that is not an availability fault (bad parameter, day
	// range) would be wrong on every partition alike; degrading would mask
	// the caller's bug. Fail fast regardless of mode.
	for _, f := range cov.Failed {
		if !errors.Is(f.Err, v6class.ErrUnavailable) {
			return nil, strictErr()
		}
	}
	// Degrade only past a minority outage: answering from a minority of
	// the census would be more misleading than failing.
	if 2*len(cov.Failed) >= cov.Backends {
		return nil, fmt.Errorf("%w: %d of %d partitions down: %w",
			v6class.ErrUnavailable, len(cov.Failed), cov.Backends, strictErr())
	}
	return out, &DegradedError{Coverage: cov}
}

// pointCall routes one key-owned query through the owner's breaker, with
// an optional hedged second attempt. Point queries never degrade — the
// owning partition is the only holder of the answer — so any availability
// fault surfaces as a strict error naming the backend.
func pointCall[T any](c *Coordinator, p v6class.Prefix, fn func(b v6class.Engine) (T, error)) (T, error) {
	i := c.part(p)
	b := c.backends[i]
	br := c.breakers[i]
	var zero T
	if !br.allow() {
		return zero, &backendError{index: i, url: baseURLOf(b), err: errCircuitOpen}
	}
	call := func() (T, error) {
		v, err := fn(b)
		br.record(available(err))
		return v, err
	}
	if c.hedge <= 0 {
		v, err := call()
		if err != nil {
			return zero, &backendError{index: i, url: baseURLOf(b), err: err}
		}
		return v, nil
	}
	type reply struct {
		v   T
		err error
	}
	ch := make(chan reply, 2)
	launch := func() {
		go func() {
			v, err := call()
			ch <- reply{v, err}
		}()
	}
	launch()
	hedge := time.NewTimer(c.hedge)
	defer hedge.Stop()
	pending := 1
	var firstErr error
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				return r.v, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if pending--; pending == 0 {
				return zero, &backendError{index: i, url: baseURLOf(b), err: firstErr}
			}
		case <-hedge.C:
			launch()
			pending++
		}
	}
}
