package remote

import (
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"v6class"
)

// The client's retry-delay policy. A struggling backend must never be
// hammered with back-to-back requests: every retry waits a capped
// exponentially growing delay with full jitter, and a server that answers
// 429/503 with Retry-After gets at least the wait it asked for (clamped to
// Max, so a confused server cannot park the client for an hour).

// Backoff is the retry delay policy applied between request attempts.
// The zero value means the defaults; configure with WithBackoff.
type Backoff struct {
	// Base caps the delay before the first retry (default 100ms).
	Base time.Duration
	// Max caps every delay, including a server-requested Retry-After
	// (default 5s).
	Max time.Duration
	// Factor grows the cap per attempt (default 2: 100ms, 200ms, 400ms…).
	Factor float64
}

// norm resolves zero fields to the defaults.
func (b Backoff) norm() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	return b
}

// delay computes the sleep before retry number attempt (0-based): full
// jitter — uniform in [0, cap) where cap = Base·Factor^attempt clamped to
// Max — with a server-requested Retry-After as the floor. Full jitter
// desynchronizes a fleet of clients retrying against the same struggling
// backend; the Retry-After floor keeps an explicit server hint authoritative.
func (b Backoff) delay(attempt int, retryAfter time.Duration) time.Duration {
	b = b.norm()
	ceil := float64(b.Base) * math.Pow(b.Factor, float64(attempt))
	if ceil > float64(b.Max) {
		ceil = float64(b.Max)
	}
	d := time.Duration(rand.Float64() * ceil)
	if retryAfter > d {
		d = retryAfter
	}
	if d > b.Max {
		d = b.Max
	}
	return d
}

// parseRetryAfter decodes a Retry-After header: delay-seconds or an HTTP
// date. Absent or malformed values mean no server hint.
func parseRetryAfter(h string) time.Duration {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// unavailableError is the budget-exhausted classification: every attempt
// failed with a retryable fault (transport error, 5xx, 429) and either the
// retry budget or the whole-call timeout ran out. It unwraps to both
// v6class.ErrUnavailable and the last attempt's error, so callers can test
// the sentinel with errors.Is and still reach the underlying wire code.
type unavailableError struct {
	method, path string
	attempts     int
	last         error
}

func (e *unavailableError) Error() string {
	return fmt.Sprintf("remote: %s %s unavailable after %d attempt(s): %v",
		e.method, e.path, e.attempts, e.last)
}

func (e *unavailableError) Unwrap() []error {
	return []error{v6class.ErrUnavailable, e.last}
}
